/* fsfuzz corpus entry (replayed by the corpus regression runner)
 * check: sym/depend
 * detail: regression: symbolic analysis once reported line-conflict for this
 * empty unit-step loop (n=0): per-atom Banerjee endpoints cannot see
 * an empty distance interval; fixed by the two-iteration guard
 * seed: 42 case: 24
 * threads: 1
 * chunk: pragma
 * reproduce: fsdetect fuzz --seed 42 --count 25
 */
int n;

double a0[5];

void f() {
  int i;
  #pragma omp parallel for schedule(static)
  for (i = 0; i < n; i += 1) {
    a0[2 * i] = a0[i];
  }
}

/* fsfuzz corpus entry (replayed by the corpus regression runner)
 * check: full oracle matrix
 * detail: adversarial fixture promoted from test/fixtures/racy_stencil.c
 * threads: 4
 * chunk: pragma
 * reproduce: fsdetect fuzz --corpus test/corpus --count 0
 */
/* In-place smoothing: every parallel iteration reads its neighbours'
   slots while other iterations write them — a loop-carried dependence,
   not (just) false sharing.  The lint must flag the race and must NOT
   suggest schedule tuning for this nest. */

double v[4096];

void init() {
  int i;
  for (i = 0; i < 4096; i += 1) {
    v[i] = 0.001 * i;
  }
}

void smooth() {
  int i;
  #pragma omp parallel for private(i) schedule(static,1)
  for (i = 1; i < 4096 - 1; i += 1) {
    v[i] = 0.5 * v[i - 1] + 0.5 * v[i + 1];
  }
}

/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 57 -> 31 (45.6% removed), cost 1.19x
 * seed: 7 case: 91
 * threads: 3
 * chunk: 1
 * reproduce: fsdetect fuzz --seed 7 --count 92
 */
int a0[26];

int a1[75];

void f() {
  int i;
  int j;
  #pragma omp parallel for schedule(static,1)
  for (i = 0; i < 5; i += 1) {
    for (j = 0; j < 6; j += 1) {
      a0[i + j] += a1[i + j + 65];
    }
  }
}

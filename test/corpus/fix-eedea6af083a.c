/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 48 -> 4 (91.7% removed), cost 1.09x
 * seed: 7 case: 247
 * threads: 4
 * chunk: 1
 * reproduce: fsdetect fuzz --seed 7 --count 248
 */
float a0[9];

double a1[21];

void f() {
  int i;
  int j;
  #pragma omp parallel for private(i) schedule(static,1)
  for (i = 0; i < 5; i += 1) {
    for (j = 0; j < 2; j += 1) {
      a0[i + 3] += 0.5;
      a1[i + j] = a1[i + j + 15];
    }
  }
}

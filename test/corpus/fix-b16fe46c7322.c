/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 14 -> 8 (42.9% removed), cost 1.06x
 * seed: 7 case: 234
 * threads: 5
 * chunk: pragma
 * reproduce: fsdetect fuzz --seed 7 --count 235
 */
struct s_a0 {
  double f0;
  double f1;
  double f2;
  double f3;
};

struct s_a0 a0[24];

void f() {
  int i;
  int t;
  for (t = 0; t < 2; t += 1) {
    #pragma omp parallel for schedule(static)
    for (i = 0; i < 21; i += 1) {
      a0[i + t + 2].f1 += a0[i + 2].f2 * sqrt(a0[i + 1].f1);
    }
  }
}

/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 149 -> 8 (94.6% removed), cost 1.09x
 * seed: 7 case: 260
 * threads: 7
 * chunk: 2
 * reproduce: fsdetect fuzz --seed 7 --count 261
 */
double a0[122];

void f() {
  int i;
  int j;
  #pragma omp parallel for schedule(static,2)
  for (i = 1; i < 15; i += 1) {
    for (j = 0; j < i + 1; j += 1) {
      a0[i + 7] += a0[8 * i + 8] + a0[i + j + 9];
      a0[i + 33] += 0;
    }
  }
}

/* fsfuzz corpus entry (replayed by the corpus regression runner)
 * check: full oracle matrix
 * detail: adversarial fixture promoted from test/fixtures/nonaffine.c
 * threads: 4
 * chunk: pragma
 * reproduce: fsdetect fuzz --corpus test/corpus --count 0
 */
/* Two ways out of the affine world.  [scatter]'s quadratic subscript is
   rejected by the lowering itself; [tri]'s quadratic inner bound lowers
   fine but defeats the dependence analyzer's interval reasoning.  Both
   must degrade to "unknown" findings, never to a silent pass. */

double a[4096];

void scatter() {
  int i;
  #pragma omp parallel for private(i) schedule(static,1)
  for (i = 0; i < 64; i += 1) {
    a[i * i] = 2.0 * a[i * i];
  }
}

void tri() {
  int i;
  int j;
  #pragma omp parallel for private(i) schedule(static,1)
  for (i = 0; i < 64; i += 1) {
    for (j = 0; j < i * i; j += 1) {
      a[i] = a[i] + 1.0;
    }
  }
}

/* fsfuzz corpus entry (replayed by the corpus regression runner)
 * check: full oracle matrix
 * detail: adversarial fixture promoted from test/fixtures/parametric_stride.c
 * threads: 4
 * chunk: pragma
 * reproduce: fsdetect fuzz --corpus test/corpus --count 0
 */
/* Parametric nests: [n] is bound neither by a #define nor by -p, so the
   lint must analyze both loops symbolically.  [scale]'s unit-stride
   writes are a false-sharing candidate for every n large enough that
   two parallel iterations land on one line; [strided]'s stride-2 writes
   conflict sooner per element but stay byte-disjoint all the same.
   Neither nest may produce an "unknown" finding. */

int n;
double src[65536];
double dst[65536];

void scale() {
  int i;
  #pragma omp parallel for private(i) schedule(static,2)
  for (i = 0; i < n; i += 1) {
    dst[i] = 2.0 * src[i];
  }
}

void strided() {
  int i;
  #pragma omp parallel for private(i) schedule(static,1)
  for (i = 0; i < n; i += 1) {
    dst[2 * i] = src[i] + 1.0;
  }
}

/* fsfuzz corpus entry (replayed by the corpus regression runner)
 * check: sym/depend
 * detail: regression: with unbounded companion hulls the Banerjee fallback
 * reports loop-carried at n=2 where the concrete 2-variable solve
 * proves line-conflict; the symbolic contract is refinement, so the
 * oracle accepts the more severe verdict
 * seed: 42 case: 191
 * threads: 1
 * chunk: pragma
 * reproduce: fsdetect fuzz --seed 42 --count 192
 */
int n;

double a0[10];

void f() {
  int i;
  #pragma omp parallel for schedule(static)
  for (i = 0; i < n; i += 1) {
    a0[2 * i] = a0[3 * i];
    a0[i] = 0.125;
  }
}

/* fsfuzz corpus entry (replayed by the corpus regression runner)
 * check: sym/depend
 * detail: regression: symbolic analysis once reported line-conflict for this
 * single-iteration step-3 loop (n=2 runs only i=0); fixed by the
 * two-iteration guard in Depend.classify_sym
 * seed: 42 case: 3
 * threads: 1
 * chunk: pragma
 * reproduce: fsdetect fuzz --seed 42 --count 4
 */
int n;

double a0[1];

double a1[1];

void f() {
  int i;
  #pragma omp parallel for schedule(static)
  for (i = 0; i < n; i += 3) {
    a1[i] = a0[i];
  }
}

/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 107 -> 12 (88.8% removed), cost 1.00x
 * seed: 7 case: 78
 * threads: 8
 * chunk: 2
 * reproduce: fsdetect fuzz --seed 7 --count 79
 */
double a0[63];

void f() {
  int i;
  int t;
  for (t = 0; t < 3; t += 1) {
    #pragma omp parallel for schedule(static,2)
    for (i = 0; i < 31; i += 2) {
      a0[i + 3] += 1.0 + a0[2 * i + 1];
    }
  }
}

/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 45 -> 15 (66.7% removed), cost 1.10x
 * seed: 7 case: 299
 * threads: 3
 * chunk: pragma
 * reproduce: fsdetect fuzz --seed 7 --count 300
 */
struct s_a0 {
  double f0;
  double f1;
  double f2;
  double f3;
};

struct s_a0 a0[41];

double a1[26];

void f() {
  int i;
  int j;
  int t;
  for (t = 0; t < 2; t += 1) {
    #pragma omp parallel for private(i) schedule(static)
    for (i = 2; i < 25; i += 1) {
      for (j = 0; j < 1; j += 1) {
        a0[i + j + 1].f0 += a0[i + 2 * j + 16].f1;
        a1[i + j + 1] = 3.0 + 2;
      }
    }
  }
}

/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 590 -> 186 (68.5% removed), cost 1.05x
 * seed: 7 case: 286
 * threads: 8
 * chunk: 2
 * reproduce: fsdetect fuzz --seed 7 --count 287
 */
double a0[140];

void f() {
  int i;
  int j;
  int t;
  for (t = 0; t < 1; t += 1) {
    #pragma omp parallel for private(i) schedule(static,2)
    for (i = 0; i < 64; i += 1) {
      for (j = 0; j < 6; j += 1) {
        a0[2 * i + j] *= 4 + 0.125;
      }
    }
  }
}

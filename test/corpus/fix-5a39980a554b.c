/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 20 -> 12 (40.0% removed), cost 1.20x
 * seed: 7 case: 182
 * threads: 7
 * chunk: pragma
 * reproduce: fsdetect fuzz --seed 7 --count 183
 */
struct s_a0 {
  float f0;
  float f1;
  float f2;
  float f3;
};

struct s_a0 a0[176];

void f() {
  int i;
  #pragma omp parallel for schedule(static)
  for (i = 1; i < 95; i += 1) {
    a0[i + 3].f2 += a0[i + 65].f1;
  }
}

/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 12 -> 5 (58.3% removed), cost 1.00x
 * seed: 7 case: 312
 * threads: 8
 * chunk: 1
 * reproduce: fsdetect fuzz --seed 7 --count 313
 */
struct s_a0 {
  double f0;
  double f1;
  double f2;
};

double acc;

struct s_a0 a0[82];

void f() {
  int i;
  #pragma omp parallel for reduction(+:acc) schedule(static,1)
  for (i = 0; i < num_threads; i += 1) {
    a0[i].f2 = a0[8 * i + 16].f0;
    a0[3 * i + 2].f1 = a0[i + 1].f1;
    acc += 0.5;
  }
}

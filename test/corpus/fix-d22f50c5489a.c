/* fsfuzz counterexample (replayed by the corpus regression runner)
 * check: fix/underdelivers
 * detail: fix underdelivers in f: N_fs 339 -> 35 (89.7% removed), cost 1.19x
 * seed: 7 case: 273
 * threads: 7
 * chunk: 4
 * reproduce: fsdetect fuzz --seed 7 --count 274
 */
float a0[459];

int a1[111];

void f() {
  int i;
  int t;
  for (t = 0; t < 1; t += 1) {
    #pragma omp parallel for schedule(static,4)
    for (i = 0; i < 56; i += 1) {
      a0[i + 65] += a0[2 * i + 32] + a0[2 * i];
      a1[2 * i] = a0[3 * i + 16] + 3.0 + a0[8 * i + 2];
    }
  }
}

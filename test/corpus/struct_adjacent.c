/* fsfuzz corpus entry (replayed by the corpus regression runner)
 * check: full oracle matrix
 * detail: adversarial fixture promoted from test/fixtures/struct_adjacent.c
 * threads: 4
 * chunk: pragma
 * reproduce: fsdetect fuzz --corpus test/corpus --count 0
 */
/* Per-thread accumulators packed back to back: 16-byte structs, four to
   a 64-byte cache line, written by four different threads — the classic
   false-sharing layout (race-free).  The lint should quantify the FS
   and suggest struct padding. */

struct tally {
  double sum;
  double sumsq;
};

double data[8192];

struct tally tallies[64];

void init() {
  int i;
  for (i = 0; i < 8192; i += 1) {
    data[i] = 0.25 * i;
  }
}

void reduce() {
  int t;
  int i;
  #pragma omp parallel for private(t) schedule(static,1)
  for (t = 0; t < num_threads; t += 1) {
    for (i = 0; i < 8192 / num_threads; i += 1) {
      tallies[t].sum += data[i];
      tallies[t].sumsq += data[i] * data[i];
    }
  }
}

(* Tests for the Open64-style cost models: operation census, processor
   model, cache/TLB footprint models, and the Eq. 1 total. *)

open Costmodel

let check = Alcotest.check
let fail = Alcotest.fail

let checked_of src =
  Minic.Typecheck.check_program (Minic.Parser.parse_program src)

let lower ?(threads = 4) ~func checked =
  Loopir.Lower.lower checked ~func ~params:[ ("num_threads", threads) ]

let heat_checked = Kernels.Kernel.parse (Kernels.Heat.kernel ~rows:10 ~cols:66 ())
let heat_nest = lower ~func:"heat_step" heat_checked

let type_of_in checked (f : Minic.Ast.func) =
  let locals = Minic.Typecheck.locals_of_func checked f in
  fun v ->
    match List.assoc_opt v locals with
    | Some t -> Some t
    | None ->
        List.assoc_opt v checked.Minic.Typecheck.global_types

let ops_of checked ~func =
  let f = Option.get (Minic.Ast.find_func checked.Minic.Typecheck.prog func) in
  let nest = lower ~func checked in
  Op_count.of_body checked.Minic.Typecheck.structs
    ~type_of:(type_of_in checked f) ~core:Archspec.Latency.default
    nest.Loopir.Loop_nest.body

(* ------------------------------------------------------------------ *)
(* Op_count                                                            *)
(* ------------------------------------------------------------------ *)

let test_opcount_heat () =
  let ops = ops_of heat_checked ~func:"heat_step" in
  check Alcotest.int "loads" 4 (Op_count.get ops Archspec.Latency.Load);
  check Alcotest.int "stores" 1 (Op_count.get ops Archspec.Latency.Store);
  check Alcotest.int "fp adds" 3 (Op_count.get ops Archspec.Latency.Fp_add);
  check Alcotest.int "fp muls" 1 (Op_count.get ops Archspec.Latency.Fp_mul);
  (* B[i][j] = ... has no loop-carried recurrence *)
  check Alcotest.int "no recurrence" 0 ops.Op_count.recurrence_latency

let test_opcount_reduction_recurrence () =
  let checked =
    checked_of
      "double s[8];\ndouble a[64];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 64; i++) { s[0] += a[i]; } }"
  in
  let ops = ops_of checked ~func:"f" in
  (* s[0] += e is a recurrence through an fp add *)
  check Alcotest.int "recurrence = fp_add latency"
    (Archspec.Latency.default.Archspec.Latency.latency Archspec.Latency.Fp_add)
    ops.Op_count.recurrence_latency

let test_opcount_explicit_recurrence () =
  let checked =
    checked_of
      "double s[8];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 64; i++) { s[1] = s[1] * 1.5 + 2.0; } }"
  in
  let ops = ops_of checked ~func:"f" in
  let core = Archspec.Latency.default in
  check Alcotest.int "mul+add chain"
    (core.Archspec.Latency.latency Archspec.Latency.Fp_mul
    + core.Archspec.Latency.latency Archspec.Latency.Fp_add)
    ops.Op_count.recurrence_latency

let test_opcount_call () =
  let checked =
    checked_of
      "double a[8];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 8; i++) { a[i] = sin(1.0 * i); } }"
  in
  let ops = ops_of checked ~func:"f" in
  check Alcotest.int "special" 1 (Op_count.get ops Archspec.Latency.Fp_special)

let test_opcount_int_ops () =
  let checked =
    checked_of
      "int a[8];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 8; i++) { a[i] = i * 3 + i / 2; } }"
  in
  let ops = ops_of checked ~func:"f" in
  (* i*3 (mul), i/2 (counted as int_mul), + (alu), plus address arith *)
  check Alcotest.bool "int muls >= 2" true
    (Op_count.get ops Archspec.Latency.Int_mul >= 2);
  check Alcotest.bool "alu > 0" true
    (Op_count.get ops Archspec.Latency.Int_alu > 0)

(* ------------------------------------------------------------------ *)
(* Processor model                                                     *)
(* ------------------------------------------------------------------ *)

let test_processor_resource_bound () =
  let pm =
    Processor_model.of_nest heat_checked ~core:Archspec.Latency.default
      heat_nest
  in
  (* 3 fp adds on one fp-add unit: at least 3 cycles *)
  check Alcotest.bool "at least 3 cycles" true
    (pm.Processor_model.cycles_per_iter >= 3.);
  check Alcotest.bool "resource dominates (no recurrence)" true
    (pm.Processor_model.cycles_per_iter = pm.Processor_model.resource_cycles)

let test_processor_dependency_bound () =
  let checked =
    checked_of
      "double s[8];\ndouble a[64];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 64; i++) { s[0] += a[i]; } }"
  in
  let nest = lower ~func:"f" checked in
  let pm =
    Processor_model.of_nest checked ~core:Archspec.Latency.default nest
  in
  check (Alcotest.float 0.001) "dependency = 4" 4.
    pm.Processor_model.dependency_cycles;
  check Alcotest.bool "dependency bound" true
    (pm.Processor_model.cycles_per_iter >= 4.)

(* ------------------------------------------------------------------ *)
(* Cache model                                                         *)
(* ------------------------------------------------------------------ *)

let env4 v = if v = "num_threads" then Some 4 else None

let test_trips_of_nest () =
  let trips = Cache_model.trips_of_nest ~env:env4 heat_nest in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "trips" [ ("i", 8); ("j", 64) ] trips

let test_footprint () =
  (* one ref marching 8B per j over 64 iters: 512B -> 8 lines = 512B *)
  let refs =
    [ Loopir.Array_ref.v ~base:"a"
        ~offset:(Loopir.Affine.scale 8 (Loopir.Affine.var "j"))
        ~size_bytes:8 ~access:Loopir.Array_ref.Read ~repr:"a[j]" () ]
  in
  check Alcotest.int "footprint" 512
    (Cache_model.footprint_bytes ~line_bytes:64 ~trips:[ ("j", 64) ]
       ~levels:[ "j" ] refs)

let test_cache_model_heat () =
  let r = Cache_model.analyze ~arch:Archspec.Arch.paper_machine ~env:env4 heat_nest in
  check Alcotest.int "four groups" 4 (List.length r.Cache_model.groups);
  (* the small 10x66 grid fits everywhere; every group's misses resolve at
     some level and the total cost is finite and non-negative *)
  check Alcotest.bool "non-negative" true (r.Cache_model.cycles_per_iter >= 0.)

let test_cache_model_invariant_ref_free () =
  (* tid_args[j].sx with inner loop i: invariant in i => reuse carried by i,
     fits L1 => no cache penalty *)
  let k = Kernels.Linreg_kernel.kernel ~nacc:64 ~m:256 () in
  let checked = Kernels.Kernel.parse k in
  let nest = lower ~func:"linear_regression" checked in
  let r = Cache_model.analyze ~arch:Archspec.Arch.paper_machine ~env:env4 nest in
  List.iter
    (fun g ->
      if g.Cache_model.group.Loopir.Ref_group.leader.Loopir.Array_ref.base
         = "tid_args"
      then begin
        check Alcotest.bool "tid_args from L1" true
          (g.Cache_model.source = Cachesim.Coherence.L1);
        check (Alcotest.float 0.0001) "no penalty" 0.
          g.Cache_model.penalty_per_iter
      end)
    r.Cache_model.groups

let test_cache_model_streaming_from_memory () =
  (* a huge array touched once: no reuse, misses served by memory *)
  let checked =
    checked_of
      "double a[2000000];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 2000000; i++) { a[i] = 1.0; } }"
  in
  let nest = lower ~func:"f" checked in
  let r = Cache_model.analyze ~arch:Archspec.Arch.paper_machine ~env:env4 nest in
  match r.Cache_model.groups with
  | [ g ] ->
      check Alcotest.bool "memory" true
        (g.Cache_model.source = Cachesim.Coherence.Memory);
      check Alcotest.bool "1/8 lines per iter" true
        (abs_float (g.Cache_model.lines_per_iter -. 0.125) < 1e-9)
  | _ -> fail "one group"

let test_cache_model_temporal_reuse_level () =
  (* in_re[n] re-read every k: working set ~ 3 arrays; sized to fit L2 but
     not L1 *)
  let k = Kernels.Dft.kernel ~freqs:4 ~samples:8192 () in
  (* 3 * 64KB = 192KB: > L1 (64KB), <= L2 (512KB) *)
  let checked = Kernels.Kernel.parse k in
  let nest = lower ~func:"dft" checked in
  let r = Cache_model.analyze ~arch:Archspec.Arch.paper_machine ~env:env4 nest in
  List.iter
    (fun g ->
      if g.Cache_model.group.Loopir.Ref_group.leader.Loopir.Array_ref.base
         = "in_re"
      then
        check Alcotest.bool "reuse at L2" true
          (g.Cache_model.source = Cachesim.Coherence.L2))
    r.Cache_model.groups

let test_cache_model_cross_group_reuse () =
  (* A[i-1][j] re-touches A[i+1][j]'s lines two outer iterations later *)
  let r = Cache_model.analyze ~arch:Archspec.Arch.paper_machine ~env:env4 heat_nest in
  let lagging =
    List.find_opt
      (fun g ->
        g.Cache_model.group.Loopir.Ref_group.leader.Loopir.Array_ref.repr
        = "A[i - 1][j]")
      r.Cache_model.groups
  in
  match lagging with
  | Some g ->
      check Alcotest.bool "has reuse volume" true
        (g.Cache_model.reuse_volume_bytes <> None)
  | None -> fail "A[i-1][j] group not found"

(* ------------------------------------------------------------------ *)
(* TLB model                                                           *)
(* ------------------------------------------------------------------ *)

let test_tlb_small_fits () =
  let r = Tlb_model.analyze ~arch:Archspec.Arch.paper_machine ~env:env4 heat_nest in
  check Alcotest.bool "fits reach" true r.Tlb_model.fits_reach;
  check (Alcotest.float 1e-9) "no cost" 0. r.Tlb_model.cycles_per_iter

let test_tlb_large_exceeds () =
  let checked =
    checked_of
      "double a[4000000];\ndouble b[4000000];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 4000000; i++) { a[i] = b[i]; } }"
  in
  let nest = lower ~func:"f" checked in
  let r = Tlb_model.analyze ~arch:Archspec.Arch.paper_machine ~env:env4 nest in
  check Alcotest.bool "exceeds reach" false r.Tlb_model.fits_reach;
  check Alcotest.bool "cost > 0" true (r.Tlb_model.cycles_per_iter > 0.)

(* ------------------------------------------------------------------ *)
(* Total cost                                                          *)
(* ------------------------------------------------------------------ *)

let test_total_cost_components () =
  let b =
    Total_cost.compute ~arch:Archspec.Arch.paper_machine ~threads:4
      ~fs_cases:1000 ~env:env4 ~checked:heat_checked heat_nest
  in
  check Alcotest.bool "machine > 0" true (b.Total_cost.machine_cycles > 0.);
  check Alcotest.bool "fs > 0" true (b.Total_cost.false_sharing_cycles > 0.);
  check Alcotest.bool "total = sum" true
    (abs_float
       (b.Total_cost.total_cycles
       -. (b.Total_cost.machine_cycles +. b.Total_cost.cache_cycles
          +. b.Total_cost.tlb_cycles +. b.Total_cost.parallel_overhead_cycles
          +. b.Total_cost.loop_overhead_cycles
          +. b.Total_cost.false_sharing_cycles))
    < 1e-6);
  (* 8 regions (outer i), 64/4 = 16 parallel iters per thread *)
  check Alcotest.int "regions" 8 b.Total_cost.regions;
  check Alcotest.int "iters per thread" (8 * 16) b.Total_cost.iters_per_thread;
  check Alcotest.bool "seconds consistent" true
    (abs_float
       (b.Total_cost.seconds
       -. Archspec.Arch.cycles_to_seconds Archspec.Arch.paper_machine
            b.Total_cost.total_cycles)
    < 1e-12)

let test_total_cost_fs_factor () =
  let compute f =
    Total_cost.compute ~fs_cost_factor:f ~arch:Archspec.Arch.paper_machine
      ~threads:4 ~fs_cases:1000 ~env:env4 ~checked:heat_checked heat_nest
  in
  let a = compute 0.1 and b = compute 0.2 in
  check (Alcotest.float 1e-6) "fs cycles scale linearly"
    (2. *. a.Total_cost.false_sharing_cycles)
    b.Total_cost.false_sharing_cycles

let test_fs_percent () =
  let b =
    Total_cost.compute ~arch:Archspec.Arch.paper_machine ~threads:4
      ~fs_cases:0 ~env:env4 ~checked:heat_checked heat_nest
  in
  check (Alcotest.float 1e-9) "no fs, 0%" 0. (Total_cost.fs_percent ~fs:b)

(* ------------------------------------------------------------------ *)
(* Contention (§VI extension)                                          *)
(* ------------------------------------------------------------------ *)

let streaming_checked =
  checked_of
    "double a[4000000];\ndouble b[4000000];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 4000000; i++) { a[i] = 2.0 * b[i]; } }"

let test_contention_single_thread_free () =
  let nest = lower ~func:"f" streaming_checked in
  let c =
    Contention.analyze ~arch:Archspec.Arch.paper_machine ~threads:1 ~env:env4
      ~checked:streaming_checked nest
  in
  check (Alcotest.float 1e-9) "no shared-cache cost alone" 0.
    c.Contention.shared_cache_cycles_per_iter

let test_contention_bandwidth_saturates () =
  let nest = lower ~func:"f" streaming_checked in
  let at threads =
    Contention.analyze ~arch:Archspec.Arch.paper_machine ~threads ~env:env4
      ~checked:streaming_checked nest
  in
  let c1 = at 1 and c48 = at 48 in
  check Alcotest.bool "demand grows with team" true
    (c48.Contention.demand_bytes_per_cycle
    > c1.Contention.demand_bytes_per_cycle);
  check Alcotest.bool "48 streaming threads saturate the bus" true
    (c48.Contention.oversubscription > 1.);
  check Alcotest.bool "stalls inflate" true
    (c48.Contention.bandwidth_cycles_per_iter > 0.);
  check (Alcotest.float 1e-9) "one thread does not" 0.
    c1.Contention.bandwidth_cycles_per_iter

let test_contention_cache_resident_free () =
  (* a small array re-traversed under an outer loop: reuse carried by the
     outer level keeps it cache-resident, so there is no steady-state DRAM
     demand and no bandwidth stall even at 48 threads *)
  let checked =
    checked_of
      {|double a[64];
void f(void) {
  int t;
  int i;
  for (t = 0; t < 100; t++) {
    #pragma omp parallel for private(i) schedule(static,1)
    for (i = 0; i < 64; i++) {
      a[i] = a[i] + 1.0;
    }
  }
}
|}
  in
  let nest = lower ~func:"f" checked in
  let c =
    Contention.analyze ~arch:Archspec.Arch.paper_machine ~threads:48 ~env:env4
      ~checked nest
  in
  check (Alcotest.float 1e-9) "no DRAM demand" 0.
    c.Contention.demand_bytes_per_cycle;
  check (Alcotest.float 1e-9) "no bandwidth stall" 0.
    c.Contention.bandwidth_cycles_per_iter

let test_total_cost_contention_flag () =
  let nest = lower ~func:"f" streaming_checked in
  let compute c =
    Total_cost.compute ~contention:c ~arch:Archspec.Arch.paper_machine
      ~threads:48 ~fs_cases:0 ~env:env4 ~checked:streaming_checked nest
  in
  let off = compute false and on = compute true in
  check (Alcotest.float 1e-9) "off = zero term" 0.
    off.Total_cost.contention_cycles;
  check Alcotest.bool "on > off" true
    (on.Total_cost.total_cycles > off.Total_cost.total_cycles)

let test_with_line_bytes () =
  let a32 = Archspec.Arch.with_line_bytes Archspec.Arch.paper_machine 32 in
  check Alcotest.int "line" 32 (Archspec.Arch.line_bytes a32);
  check Alcotest.int "capacity kept"
    Archspec.Arch.paper_machine.Archspec.Arch.l1.Archspec.Cache_geom.size_bytes
    a32.Archspec.Arch.l1.Archspec.Cache_geom.size_bytes;
  match Archspec.Arch.with_line_bytes Archspec.Arch.paper_machine 37 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-power-of-two line must be rejected"

let () =
  Alcotest.run "costmodel"
    [
      ( "op_count",
        [
          Alcotest.test_case "heat census" `Quick test_opcount_heat;
          Alcotest.test_case "reduction recurrence" `Quick
            test_opcount_reduction_recurrence;
          Alcotest.test_case "explicit recurrence" `Quick
            test_opcount_explicit_recurrence;
          Alcotest.test_case "builtin call" `Quick test_opcount_call;
          Alcotest.test_case "integer ops" `Quick test_opcount_int_ops;
        ] );
      ( "processor",
        [
          Alcotest.test_case "resource bound" `Quick
            test_processor_resource_bound;
          Alcotest.test_case "dependency bound" `Quick
            test_processor_dependency_bound;
        ] );
      ( "cache",
        [
          Alcotest.test_case "trips" `Quick test_trips_of_nest;
          Alcotest.test_case "footprint" `Quick test_footprint;
          Alcotest.test_case "heat analysis" `Quick test_cache_model_heat;
          Alcotest.test_case "invariant ref free" `Quick
            test_cache_model_invariant_ref_free;
          Alcotest.test_case "streaming from memory" `Quick
            test_cache_model_streaming_from_memory;
          Alcotest.test_case "temporal reuse level" `Quick
            test_cache_model_temporal_reuse_level;
          Alcotest.test_case "cross-group reuse" `Quick
            test_cache_model_cross_group_reuse;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "small fits" `Quick test_tlb_small_fits;
          Alcotest.test_case "large exceeds" `Quick test_tlb_large_exceeds;
        ] );
      ( "total",
        [
          Alcotest.test_case "components" `Quick test_total_cost_components;
          Alcotest.test_case "fs factor" `Quick test_total_cost_fs_factor;
          Alcotest.test_case "fs percent" `Quick test_fs_percent;
        ] );
      ( "contention",
        [
          Alcotest.test_case "single thread free" `Quick
            test_contention_single_thread_free;
          Alcotest.test_case "bandwidth saturates" `Quick
            test_contention_bandwidth_saturates;
          Alcotest.test_case "cache resident free" `Quick
            test_contention_cache_resident_free;
          Alcotest.test_case "total-cost flag" `Quick
            test_total_cost_contention_flag;
          Alcotest.test_case "with_line_bytes" `Quick test_with_line_bytes;
        ] );
    ]

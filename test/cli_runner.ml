(* Drives the fsdetect binary through its user-facing exit-code paths —
   the --fail-on gate, malformed input, unbound identifiers, bad flags —
   and records exit status plus stderr into a transcript that runtest
   diffs against golden/cli.out.

   Stderr is captured only where the text is produced by fsdetect
   itself; cmdliner's own usage errors (exit 124) are recorded as exit
   codes alone so the golden file does not depend on the installed
   cmdliner version. *)

type capture = Code_only | With_stderr

let scenarios =
  [
    (* the --fail-on gate: race (default), fs, never *)
    (With_stderr, "lint --no-fixits --fail-on race fixtures/racy_stencil.c");
    (With_stderr, "lint --no-fixits --fail-on race fixtures/struct_adjacent.c");
    (With_stderr, "lint --no-fixits --fail-on fs fixtures/struct_adjacent.c");
    (With_stderr, "lint --no-fixits --fail-on never fixtures/racy_stencil.c");
    (* --fail-on never must not mask hard errors *)
    (With_stderr, "lint --no-fixits --fail-on never fixtures/bad_syntax.c");
    (* malformed input: parse and type errors *)
    (With_stderr, "lint --no-fixits fixtures/bad_syntax.c");
    (With_stderr, "lint --no-fixits fixtures/bad_type.c");
    (* unbound size parameter: clean diagnostic, not an internal error *)
    (With_stderr, "analyze fixtures/parametric_stride.c --func scale");
    (With_stderr, "lint --no-fixits -p n=1024 fixtures/parametric_stride.c");
    (* cmdliner-level errors: missing file, invalid enum value *)
    (Code_only, "lint --no-fixits fixtures/no_such_file.c");
    (Code_only, "lint --fail-on bogus fixtures/racy_stencil.c");
    (* schedule flags are validated by fsdetect itself: actionable
       stderr and exit 2 *)
    (With_stderr, "lint --no-fixits --schedule bogus fixtures/struct_adjacent.c");
    (With_stderr,
     "lint --no-fixits --schedule dynamic,0 fixtures/struct_adjacent.c");
    (With_stderr, "lint --no-fixits --seeds 0 fixtures/struct_adjacent.c");
    (With_stderr,
     "lint --no-fixits --schedule static,4 --chunk 2 fixtures/struct_adjacent.c");
    (With_stderr,
     "explain --schedule work-stealing,nope fixtures/struct_adjacent.c");
    (* eliminate/fix on a nest with nothing to fix: explicit notice on
       stderr, exit 0 (the bugfix pinned here: an empty plan is not
       silence) *)
    (With_stderr, "eliminate fixtures/padded_struct.c");
    (With_stderr, "fix fixtures/padded_struct.c");
    (* a verified fix exits 0; an unbound size parameter gets the same
       clean diagnostic (and exit 1) as analyze *)
    (With_stderr, "fix fixtures/struct_adjacent.c");
    (With_stderr, "fix fixtures/parametric_stride.c --func scale");
  ]

let () =
  let exe = Sys.argv.(1) and out = Sys.argv.(2) in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (cap, args) ->
      let tmp = Filename.temp_file "fsdetect_cli" ".err" in
      let code =
        Sys.command
          (Printf.sprintf "%s %s > /dev/null 2> %s" (Filename.quote exe) args
             (Filename.quote tmp))
      in
      Buffer.add_string buf
        (Printf.sprintf "== fsdetect %s\nexit: %d\n" args code);
      (match cap with
      | Code_only -> ()
      | With_stderr ->
          let ic = open_in_bin tmp in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          if String.length s > 0 then
            Buffer.add_string buf ("stderr:\n" ^ s));
      Buffer.add_char buf '\n';
      Sys.remove tmp)
    scenarios;
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc

(* Drives `fsdetect serve` as a subprocess through the JSON-RPC protocol.

   Three modes:

     serve_runner.exe EXE OUT
       Scripted single-worker session (--jobs 1, so the transcript is
       FIFO-deterministic): happy path, cache hits, parse / type /
       unbound-parameter errors carried as payloads, malformed JSON and
       protocol errors, a mixed batch, cache_stats, shutdown.  The raw
       request/response transcript is written to OUT and diffed against
       golden/serve.out by runtest, followed by a deterministic summary
       of a concurrent 4-worker session (all ids answered exactly once).

     serve_runner.exe --smoke EXE
       Two identical mixed batches over every bundled kernel in one
       session; asserts the second (cache-warm) pass is at least 5x
       faster and byte-identical, and prints the timings.  Wired into
       `make serve-smoke`. *)

module J = Analysis.Json

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let obj fields = J.Obj fields
let line j = Service.Jsonp.to_line j

let request id meth params =
  line
    (obj
       [ ("id", id); ("method", J.Str meth); ("params", obj params) ])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spawn exe args =
  Unix.open_process_args exe (Array.of_list (exe :: args))

(* ------------------------------------------------------------------ *)
(* Golden transcript (one worker: deterministic order)                 *)
(* ------------------------------------------------------------------ *)

let fixture_params ?(extra = []) path =
  [ ("source", J.Str (read_file path)); ("name", J.Str path) ] @ extra

let transcript exe buf =
  let ((ic, oc) as proc) = spawn exe [ "serve"; "--jobs"; "1" ] in
  let req ?(expect = 1) r =
    Buffer.add_string buf ("<< " ^ r ^ "\n");
    send oc r;
    for _ = 1 to expect do
      Buffer.add_string buf (">> " ^ input_line ic ^ "\n")
    done
  in
  let int_id i = J.Int i in
  (* protocol basics *)
  req (request (int_id 1) "ping" []);
  req (request (int_id 2) "version" []);
  req "this is not json";
  req (line (obj [ ("id", int_id 3) ]));
  req (line (obj [ ("id", int_id 4); ("method", J.Int 42) ]));
  req (request (int_id 5) "frobnicate" []);
  (* analyses: a kernel lint twice (second is a cache hit, same bytes) *)
  req (request (int_id 6) "lint" [ ("kernel", J.Str "saxpy") ]);
  req (request (int_id 7) "lint" [ ("kernel", J.Str "saxpy") ]);
  (* inline sources: clean, parse error, type error, unbound parameter *)
  req
    (request (int_id 8) "lint"
       (fixture_params "fixtures/struct_adjacent.c"));
  req (request (int_id 9) "lint" (fixture_params "fixtures/bad_syntax.c"));
  req (request (int_id 10) "lint" (fixture_params "fixtures/bad_type.c"));
  req
    (request (int_id 11) "analyze"
       (fixture_params "fixtures/parametric_stride.c"
          ~extra:[ ("func", J.Str "scale") ]));
  (* bad params *)
  req (request (int_id 12) "dump" [ ("kernel", J.Str "bogus") ]);
  req
    (request (int_id 13) "lint"
       [ ("kernel", J.Str "saxpy"); ("source", J.Str "int x;") ]);
  (* a mixed batch: results stream in order with one worker *)
  req ~expect:5
    (request (int_id 14) "batch"
       [
         ( "requests",
           J.List
             [
               obj
                 [
                   ("method", J.Str "advise");
                   ("params", obj [ ("kernel", J.Str "saxpy") ]);
                 ];
               obj
                 [
                   ("method", J.Str "lint");
                   ("params", obj [ ("kernel", J.Str "saxpy") ]);
                 ];
               obj
                 [
                   ("method", J.Str "dump");
                   ("params", obj [ ("kernel", J.Str "bogus") ]);
                 ];
               obj [ ("method", J.Str "frobnicate") ];
             ] );
       ]);
  req (request (int_id 15) "batch" []);
  (* deterministic counters after a deterministic script *)
  req (request (int_id 16) "cache_stats" []);
  req (request (int_id 17) "shutdown" []);
  (try
     while true do
       Buffer.add_string buf (">> " ^ input_line ic ^ "\n")
     done
   with End_of_file -> ());
  ignore (Unix.close_process proc)

(* ------------------------------------------------------------------ *)
(* Concurrent session: every id answered exactly once                  *)
(* ------------------------------------------------------------------ *)

let member name j = Service.Jsonp.member name j

let concurrent exe buf =
  let singles = 20 and batches = 2 and items = 4 in
  let kernels = [| "saxpy"; "stencil1d"; "transpose"; "matvec" |] in
  let ((ic, oc) as proc) = spawn exe [ "serve"; "--jobs"; "4" ] in
  let writer () =
    for i = 0 to singles - 1 do
      send oc
        (request
           (J.Str (Printf.sprintf "s%d" i))
           "lint"
           [
             ("kernel", J.Str kernels.(i mod Array.length kernels));
             ("threads", J.Int (2 + (i mod 3)));
           ])
    done;
    for b = 0 to batches - 1 do
      send oc
        (request
           (J.Str (Printf.sprintf "b%d" b))
           "batch"
           [
             ( "requests",
               J.List
                 (List.init items (fun i ->
                      obj
                        [
                          ("method", J.Str "advise");
                          ( "params",
                            obj
                              [
                                ( "kernel",
                                  J.Str kernels.(i mod Array.length kernels)
                                );
                              ] );
                        ])) );
           ])
    done;
    send oc "{broken";
    send oc (request (J.Str "quit") "shutdown" [])
  in
  let w = Domain.spawn writer in
  let tally = Hashtbl.create 64 in
  let count key = Hashtbl.replace tally key (1 + try Hashtbl.find tally key with Not_found -> 0) in
  let lines = ref 0 in
  (try
     while true do
       let l = input_line ic in
       incr lines;
       match Service.Jsonp.parse l with
       | Error e -> failwith ("unparsable response: " ^ e)
       | Ok j -> (
           let id =
             match member "id" j with
             | Some (J.Str s) -> s
             | Some J.Null -> "<null>"
             | _ -> failwith ("response without id: " ^ l)
           in
           match (member "item" j, member "done" j) with
           | Some (J.Int i), _ -> count (Printf.sprintf "%s#%d" id i)
           | _, Some (J.Bool true) -> count (id ^ "#done")
           | _ -> count id)
     done
   with End_of_file -> ());
  Domain.join w;
  ignore (Unix.close_process proc);
  let expect = ref [] in
  for i = 0 to singles - 1 do
    expect := Printf.sprintf "s%d" i :: !expect
  done;
  for b = 0 to batches - 1 do
    expect := Printf.sprintf "b%d#done" b :: !expect;
    for i = 0 to items - 1 do
      expect := Printf.sprintf "b%d#%d" b i :: !expect
    done
  done;
  expect := "<null>" :: "quit" :: !expect;
  List.iter
    (fun key ->
      match Hashtbl.find_opt tally key with
      | Some 1 -> ()
      | Some n -> failwith (Printf.sprintf "id %s answered %d times" key n)
      | None -> failwith (Printf.sprintf "id %s never answered" key))
    !expect;
  if Hashtbl.length tally <> List.length !expect then
    failwith "unexpected extra responses";
  Buffer.add_string buf
    (Printf.sprintf
       "== concurrent (4 jobs): %d singles + %d batches of %d + 1 \
        protocol error: %d responses, every id exactly once\n"
       singles batches items !lines)

(* ------------------------------------------------------------------ *)
(* Smoke: warm pass >= 5x faster, byte-identical                       *)
(* ------------------------------------------------------------------ *)

let smoke exe =
  let ((ic, oc) as proc) = spawn exe [ "serve" ] in
  let names = Kernels.Registry.names () in
  let batch id =
    request (J.Str id) "batch"
      [
        ( "requests",
          J.List
            (List.concat_map
               (fun k ->
                 [
                   obj
                     [
                       ("method", J.Str "lint");
                       ("params", obj [ ("kernel", J.Str k) ]);
                     ];
                   obj
                     [
                       ("method", J.Str "explain");
                       ("params", obj [ ("kernel", J.Str k) ]);
                     ];
                 ])
               names) );
      ]
  in
  let items = 2 * List.length names in
  let run_pass id =
    let results = Hashtbl.create items in
    let t0 = Unix.gettimeofday () in
    send oc (batch id);
    let rec drain () =
      let l = input_line ic in
      match Service.Jsonp.parse l with
      | Error e -> failwith ("unparsable response: " ^ e)
      | Ok j -> (
          match (member "item" j, member "done" j) with
          | Some (J.Int i), _ ->
              Hashtbl.replace results i l;
              drain ()
          | _, Some (J.Bool true) -> ()
          | _ -> failwith ("unexpected response: " ^ l))
    in
    drain ();
    let dt = Unix.gettimeofday () -. t0 in
    if Hashtbl.length results <> items then
      failwith
        (Printf.sprintf "pass %s: %d/%d items answered" id
           (Hashtbl.length results) items);
    (dt, results)
  in
  let cold_t, cold = run_pass "cold" in
  let warm_t, warm = run_pass "warm" in
  send oc (request (J.Str "quit") "shutdown" []);
  ignore (input_line ic);
  ignore (Unix.close_process proc);
  let strip_id l =
    (* responses differ only in the batch id; normalize before compare *)
    match Service.Jsonp.parse l with
    | Ok (J.Obj fields) ->
        line (J.Obj (List.filter (fun (k, _) -> k <> "id") fields))
    | _ -> l
  in
  for i = 0 to items - 1 do
    let c = strip_id (Hashtbl.find cold i)
    and w = strip_id (Hashtbl.find warm i) in
    if c <> w then failwith (Printf.sprintf "item %d differs warm vs cold" i)
  done;
  let speedup = cold_t /. warm_t in
  Printf.printf
    "serve-smoke: %d requests  cold %.3fs  warm %.3fs  speedup %.0fx\n"
    items cold_t warm_t speedup;
  if speedup < 5.0 then begin
    Printf.eprintf "serve-smoke: warm pass only %.1fx faster (need >= 5x)\n"
      speedup;
    exit 1
  end

let () =
  match Array.to_list Sys.argv with
  | [ _; "--smoke"; exe ] -> smoke exe
  | [ _; exe; out ] ->
      let buf = Buffer.create 65536 in
      transcript exe buf;
      concurrent exe buf;
      let oc = open_out out in
      output_string oc (Buffer.contents buf);
      close_out oc
  | _ ->
      prerr_endline "usage: serve_runner.exe [--smoke] FSDETECT_EXE [OUT]";
      exit 2

(* Tests for the execution simulator: values, memory, the interpreter's
   computed results (against OCaml recomputations), determinism, and the
   measurement harness. *)

open Execsim

let check = Alcotest.check
let fail = Alcotest.fail

let checked_of src =
  Minic.Typecheck.check_program (Minic.Parser.parse_program src)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_binops () =
  (match Value.binop Minic.Ast.Div (Value.V_int 7) (Value.V_int 2) with
  | Value.V_int 3 -> ()
  | _ -> fail "int division truncates");
  (match Value.binop Minic.Ast.Div (Value.V_int 7) (Value.V_float 2.) with
  | Value.V_float f -> check (Alcotest.float 1e-9) "promotes" 3.5 f
  | _ -> fail "mixed promotes to float");
  (match Value.binop Minic.Ast.Mod (Value.V_int 7) (Value.V_int 0) with
  | exception Division_by_zero -> ()
  | _ -> fail "mod by zero");
  (match Value.binop Minic.Ast.Lt (Value.V_int 1) (Value.V_float 1.5) with
  | Value.V_int 1 -> ()
  | _ -> fail "comparison yields 1");
  match Value.unop Minic.Ast.Not (Value.V_float 0.) with
  | Value.V_int 1 -> ()
  | _ -> fail "!0.0 = 1"

let test_value_convert () =
  (match Value.convert Minic.Ast.Tint (Value.V_float 3.9) with
  | Value.V_int 3 -> ()
  | _ -> fail "float->int truncates");
  match Value.convert Minic.Ast.Tdouble (Value.V_int 3) with
  | Value.V_float 3. -> ()
  | _ -> fail "int->double"

let test_value_builtin () =
  (match Value.builtin "sqrt" [ Value.V_float 9. ] with
  | Value.V_float f -> check (Alcotest.float 1e-9) "sqrt" 3. f
  | _ -> fail "sqrt");
  (match Value.builtin "pow" [ Value.V_int 2; Value.V_int 10 ] with
  | Value.V_float f -> check (Alcotest.float 1e-9) "pow" 1024. f
  | _ -> fail "pow");
  match Value.builtin "sin" [] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "arity"

(* ------------------------------------------------------------------ *)
(* Mem                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mem_roundtrip () =
  let m = Mem.create 64 in
  Mem.store m ~ty:Minic.Ast.Tdouble ~addr:0 (Value.V_float 3.25);
  (match Mem.load m ~ty:Minic.Ast.Tdouble ~addr:0 with
  | Value.V_float f -> check (Alcotest.float 1e-12) "double" 3.25 f
  | _ -> fail "double");
  Mem.store m ~ty:Minic.Ast.Tint ~addr:8 (Value.V_int (-42));
  (match Mem.load m ~ty:Minic.Ast.Tint ~addr:8 with
  | Value.V_int (-42) -> ()
  | _ -> fail "int");
  Mem.store m ~ty:Minic.Ast.Tlong ~addr:16 (Value.V_int 1_000_000_000_000);
  (match Mem.load m ~ty:Minic.Ast.Tlong ~addr:16 with
  | Value.V_int 1_000_000_000_000 -> ()
  | _ -> fail "long");
  Mem.store m ~ty:Minic.Ast.Tfloat ~addr:24 (Value.V_float 1.5);
  (match Mem.load m ~ty:Minic.Ast.Tfloat ~addr:24 with
  | Value.V_float 1.5 -> ()
  | _ -> fail "float");
  Mem.store m ~ty:Minic.Ast.Tchar ~addr:30 (Value.V_int 65);
  (match Mem.load m ~ty:Minic.Ast.Tchar ~addr:30 with
  | Value.V_int 65 -> ()
  | _ -> fail "char");
  check Alcotest.bool "zero init" true
    (Mem.load m ~ty:Minic.Ast.Tint ~addr:60 = Value.V_int 0)

(* ------------------------------------------------------------------ *)
(* Interp correctness                                                  *)
(* ------------------------------------------------------------------ *)

let test_interp_saxpy_values () =
  List.iter
    (fun (threads, chunk, window) ->
      let k = Kernels.Saxpy.kernel ~n:64 () in
      let checked = Kernels.Kernel.parse k in
      let it =
        Interp.create ~threads ~chunk_override:chunk
          ~interleave_window:window checked
      in
      Interp.exec it ~func:"init";
      Interp.exec it ~func:"saxpy";
      List.iter
        (fun i ->
          match Interp.read_global it "y" [ Interp.Idx i ] with
          | Value.V_float f ->
              check (Alcotest.float 1e-9)
                (Printf.sprintf "y[%d] t%d c%d w%d" i threads chunk window)
                ((0.5 *. float_of_int i) +. (2.5 *. float_of_int i))
                f
          | _ -> fail "not a float")
        [ 0; 1; 31; 63 ])
    [ (1, 1, 1); (2, 1, 1); (4, 3, 2); (8, 8, 4) ]

let test_interp_linreg_values () =
  let k = Kernels.Linreg_kernel.kernel ~nacc:8 ~m:64 () in
  let threads = 4 in
  let checked = Kernels.Kernel.parse k in
  let it = Interp.create ~threads checked in
  Interp.exec it ~func:"init";
  Interp.exec it ~func:"linear_regression";
  (* every unit j accumulates over i < 64/4 = 16 points *)
  let expected_sx = ref 0. and expected_sxy = ref 0. in
  for i = 0 to 15 do
    let x = 0.01 *. float_of_int i in
    let y = 3.0 +. (0.5 *. x) in
    expected_sx := !expected_sx +. x;
    expected_sxy := !expected_sxy +. (x *. y)
  done;
  List.iter
    (fun j ->
      (match Interp.read_global it "tid_args" [ Interp.Idx j; Interp.Fld "sx" ] with
      | Value.V_float f ->
          check (Alcotest.float 1e-9) (Printf.sprintf "sx[%d]" j) !expected_sx f
      | _ -> fail "sx");
      match
        Interp.read_global it "tid_args" [ Interp.Idx j; Interp.Fld "sxy" ]
      with
      | Value.V_float f ->
          check (Alcotest.float 1e-9) (Printf.sprintf "sxy[%d]" j)
            !expected_sxy f
      | _ -> fail "sxy")
    [ 0; 3; 7 ]

let test_interp_heat_values () =
  let k = Kernels.Heat.kernel ~rows:6 ~cols:10 () in
  let checked = Kernels.Kernel.parse k in
  let it = Interp.create ~threads:2 checked in
  Interp.exec it ~func:"init";
  Interp.exec it ~func:"heat_step";
  let a i j = (0.001 *. float_of_int i) +. (0.002 *. float_of_int j) in
  let expect i j = 0.25 *. (a (i-1) j +. a (i+1) j +. a i (j-1) +. a i (j+1)) in
  List.iter
    (fun (i, j) ->
      match Interp.read_global it "B" [ Interp.Idx i; Interp.Idx j ] with
      | Value.V_float f ->
          check (Alcotest.float 1e-9) (Printf.sprintf "B[%d][%d]" i j)
            (expect i j) f
      | _ -> fail "B")
    [ (1, 1); (2, 5); (4, 8) ];
  (* boundary untouched *)
  match Interp.read_global it "B" [ Interp.Idx 0; Interp.Idx 3 ] with
  | Value.V_float 0. -> ()
  | _ -> fail "boundary must remain zero"

let test_interp_reduction_clause () =
  let src =
    {|double a[32];
void init(void) {
  int i;
  for (i = 0; i < 32; i++) { a[i] = 1.0 * i; }
}
void f(void) {
  int i;
  double s;
  s = 100.0;
  #pragma omp parallel for reduction(+:s)
  for (i = 0; i < 32; i++) {
    s += a[i];
  }
  a[0] = s;
}
|}
  in
  let checked = checked_of src in
  let it = Interp.create ~threads:4 checked in
  Interp.exec it ~func:"init";
  Interp.exec it ~func:"f";
  match Interp.read_global it "a" [ Interp.Idx 0 ] with
  | Value.V_float f ->
      (* 100 + sum 0..31 = 100 + 496 *)
      check (Alcotest.float 1e-9) "reduction" 596. f
  | _ -> fail "reduction result"

let test_interp_if_and_locals () =
  let src =
    {|int out[8];
void f(void) {
  int i;
  for (i = 0; i < 8; i++) {
    int v = i * 2;
    if (v >= 8) { out[i] = v; } else { out[i] = 0 - v; }
  }
}
|}
  in
  let checked = checked_of src in
  let it = Interp.create checked in
  Interp.exec it ~func:"f";
  (match Interp.read_global it "out" [ Interp.Idx 2 ] with
  | Value.V_int (-4) -> ()
  | v -> fail (Format.asprintf "out[2] = %a" Value.pp v));
  match Interp.read_global it "out" [ Interp.Idx 5 ] with
  | Value.V_int 10 -> ()
  | _ -> fail "out[5]"

let test_interp_out_of_bounds () =
  let src = "int a[4];\nvoid f(void) { a[7] = 1; }" in
  let checked = checked_of src in
  let it = Interp.create checked in
  match Interp.exec it ~func:"f" with
  | exception Interp.Runtime_error _ -> ()
  | _ -> fail "out of bounds must raise"

let test_interp_errors () =
  let checked = checked_of "int a;\nvoid g(int x) { a = x; }" in
  let it = Interp.create checked in
  (match Interp.exec it ~func:"g" with
  | exception Interp.Runtime_error _ -> ()
  | _ -> fail "parameterized function rejected");
  match Interp.exec it ~func:"nope" with
  | exception Interp.Runtime_error _ -> ()
  | _ -> fail "unknown function"

(* ------------------------------------------------------------------ *)
(* Run / measurement                                                   *)
(* ------------------------------------------------------------------ *)

let small_saxpy = Kernels.Saxpy.kernel ~n:512 ()

let test_measure_deterministic () =
  let m1 = Run.measure ~threads:4 ~chunk:1 small_saxpy in
  let m2 = Run.measure ~threads:4 ~chunk:1 small_saxpy in
  check (Alcotest.float 0.) "deterministic wall" m1.Run.wall_cycles
    m2.Run.wall_cycles;
  check Alcotest.int "deterministic misses"
    (Cachesim.Stats.misses m1.Run.stats)
    (Cachesim.Stats.misses m2.Run.stats)

let test_measure_exact_access_counts () =
  (* saxpy body: read x[i], read y[i] (compound), write y[i] *)
  let m = Run.measure ~threads:2 ~chunk:1 small_saxpy in
  check Alcotest.int "loads" (2 * 512) m.Run.stats.Cachesim.Stats.loads;
  check Alcotest.int "stores" 512 m.Run.stats.Cachesim.Stats.stores

let test_measure_fs_effect_positive () =
  let c = Run.measured_fs_percent ~threads:4 small_saxpy in
  check Alcotest.bool "chunk1 slower than chunk8" true
    (c.Run.fs.Run.wall_cycles > c.Run.nfs.Run.wall_cycles);
  check Alcotest.bool "percent positive" true (c.Run.percent > 0.);
  check Alcotest.bool "fs misses present" true
    (c.Run.fs.Run.stats.Cachesim.Stats.coherence_false > 0);
  check Alcotest.int "no fs misses with line-aligned chunks" 0
    c.Run.nfs.Run.stats.Cachesim.Stats.coherence_false

let test_measure_single_thread_no_coherence () =
  let m = Run.measure ~threads:1 ~chunk:1 small_saxpy in
  check Alcotest.int "no coherence misses" 0
    (Cachesim.Stats.coherence_misses m.Run.stats);
  check Alcotest.int "no invalidations" 0
    m.Run.stats.Cachesim.Stats.invalidations_sent

let test_measure_wall_is_max () =
  let m = Run.measure ~threads:4 ~chunk:1 small_saxpy in
  let mx = Array.fold_left Float.max 0. m.Run.per_thread_cycles in
  check (Alcotest.float 0.) "wall = max thread" mx m.Run.wall_cycles

let dyn_src kind =
  Printf.sprintf
    {|double a[100];
int count[100];
void f(void) {
  int i;
  #pragma omp parallel for private(i) schedule(%s)
  for (i = 0; i < 100; i++) {
    a[i] = 3.0 * i;
    count[i] += 1;
  }
}
|}
    kind

let test_dynamic_and_guided_schedules () =
  (* every iteration executes exactly once and computes the right value,
     whatever the schedule *)
  List.iter
    (fun kind ->
      let checked = checked_of (dyn_src kind) in
      let it = Interp.create ~threads:4 checked in
      Interp.exec it ~func:"f";
      List.iter
        (fun i ->
          (match Interp.read_global it "count" [ Interp.Idx i ] with
          | Value.V_int 1 -> ()
          | Value.V_int n ->
              fail (Printf.sprintf "%s: count[%d] = %d" kind i n)
          | _ -> fail "count type");
          match Interp.read_global it "a" [ Interp.Idx i ] with
          | Value.V_float f ->
              check (Alcotest.float 1e-9)
                (Printf.sprintf "%s a[%d]" kind i)
                (3.0 *. float_of_int i)
                f
          | _ -> fail "a type")
        [ 0; 1; 37; 99 ])
    [ "dynamic"; "dynamic,7"; "guided"; "guided,3" ]

let test_dynamic_spreads_work () =
  (* compound update under dynamic scheduling and windowed interleaving *)
  let src =
    {|double x[64];
double y[64];
void init(void) {
  int i;
  for (i = 0; i < 64; i++) { x[i] = 1.0 * i; y[i] = 0.5 * i; }
}
void saxpy(void) {
  int i;
  #pragma omp parallel for private(i) schedule(dynamic,2)
  for (i = 0; i < 64; i++) {
    y[i] += 2.5 * x[i];
  }
}
|}
  in
  let checked = checked_of src in
  let it = Interp.create ~threads:4 checked in
  Interp.exec it ~func:"init";
  Interp.exec it ~func:"saxpy";
  match Interp.read_global it "y" [ Interp.Idx 33 ] with
  | Value.V_float f -> check (Alcotest.float 1e-9) "y[33]" (33. *. 3.0) f
  | _ -> fail "float"

let test_model_replays_dynamic () =
  (* a schedule(dynamic) pragma is replayed at seed 0 instead of being
     rejected: the run matches an explicit sched override at seed 0 *)
  let checked = checked_of (dyn_src "dynamic") in
  let nest =
    Loopir.Lower.lower checked ~func:"f" ~params:[ ("num_threads", 4) ]
  in
  let cfg = Fsmodel.Model.default_config ~threads:4 () in
  let pragma = Fsmodel.Model.run cfg ~nest ~checked in
  let explicit =
    Fsmodel.Model.run
      {
        cfg with
        Fsmodel.Model.sched =
          Some (Ompsched.Dispatch.Dynamic { chunk = 1 }, 0);
      }
      ~nest ~checked
  in
  check Alcotest.int "pragma replay = explicit seed 0"
    explicit.Fsmodel.Model.fs_cases pragma.Fsmodel.Model.fs_cases

let test_window_reduces_fs () =
  (* larger interleave window batches a thread's writes to a line, so FS
     misses cannot increase *)
  let w1 = Run.measure ~interleave_window:1 ~threads:2 ~chunk:1 small_saxpy in
  let w8 = Run.measure ~interleave_window:8 ~threads:2 ~chunk:1 small_saxpy in
  check Alcotest.bool "window batches transfers" true
    (w8.Run.stats.Cachesim.Stats.coherence_false
    <= w1.Run.stats.Cachesim.Stats.coherence_false)

let test_exec_twice_accumulates () =
  (* compiled functions are cached and re-runnable; the compound update
     accumulates across runs *)
  let k = Kernels.Saxpy.kernel ~n:32 () in
  let checked = Kernels.Kernel.parse k in
  let it = Interp.create ~threads:2 checked in
  Interp.exec it ~func:"init";
  Interp.exec it ~func:"saxpy";
  Interp.exec it ~func:"saxpy";
  match Interp.read_global it "y" [ Interp.Idx 9 ] with
  | Value.V_float f ->
      check (Alcotest.float 1e-9) "two updates" ((0.5 +. 5.0) *. 9.) f
  | _ -> fail "float"

let test_read_global_errors () =
  let checked = checked_of "struct s { int a; };\nstruct s v[2];\nint g;\n" in
  let it = Interp.create checked in
  (match Interp.read_global it "zzz" [] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> fail "unknown global");
  (match Interp.read_global it "v" [ Interp.Idx 5 ] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> fail "oob");
  (match Interp.read_global it "g" [ Interp.Fld "a" ] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> fail "field of scalar");
  match Interp.read_global it "g" [] with
  | Value.V_int 0 -> ()
  | _ -> fail "zero-initialized"

let test_while_break_continue () =
  let src =
    {|int out[16];
int evens;
void f(void) {
  int i;
  i = 0;
  while (1) {
    if (i >= 16) { break; }
    out[i] = i * i;
    i = i + 1;
  }
  evens = 0;
  for (i = 0; i < 16; i++) {
    if (i % 2 == 1) { continue; }
    evens = evens + 1;
  }
  out[0] = evens;
}
|}
  in
  let checked = checked_of src in
  let it = Interp.create checked in
  Interp.exec it ~func:"f";
  (match Interp.read_global it "out" [ Interp.Idx 5 ] with
  | Value.V_int 25 -> ()
  | v -> fail (Format.asprintf "out[5] = %a" Value.pp v));
  (match Interp.read_global it "out" [ Interp.Idx 15 ] with
  | Value.V_int 225 -> ()
  | _ -> fail "while covered all 16");
  match Interp.read_global it "out" [ Interp.Idx 0 ] with
  | Value.V_int 8 -> ()
  | v -> fail (Format.asprintf "evens = %a" Value.pp v)

let test_break_in_parallel_rejected () =
  let src =
    "int a[8];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 8; i++) { if (i == 3) { break; } a[i] = 1; } }"
  in
  let checked = checked_of src in
  let it = Interp.create ~threads:2 checked in
  match Interp.exec it ~func:"f" with
  | exception Interp.Runtime_error _ -> ()
  | _ -> fail "break out of a worksharing loop must be rejected"

let test_continue_in_parallel_ok () =
  let src =
    "int a[16];\nvoid f(void) {\n#pragma omp parallel for schedule(static,1)\nfor (int i = 0; i < 16; i++) { if (i % 4 == 0) { continue; } a[i] = i; } }"
  in
  let checked = checked_of src in
  let it = Interp.create ~threads:4 checked in
  Interp.exec it ~func:"f";
  (match Interp.read_global it "a" [ Interp.Idx 8 ] with
  | Value.V_int 0 -> ()
  | _ -> fail "skipped iteration");
  match Interp.read_global it "a" [ Interp.Idx 9 ] with
  | Value.V_int 9 -> ()
  | _ -> fail "executed iteration"

let test_triangular_loop () =
  (* inner bound depends on the parallel variable *)
  let src =
    {|double a[16][16];
double rowsum[16];
void f(void) {
  int i;
  int j;
  #pragma omp parallel for private(i,j) schedule(static,1)
  for (i = 0; i < 16; i++) {
    for (j = 0; j <= i; j++) {
      rowsum[i] += 1.0;
    }
  }
}
|}
  in
  let checked = checked_of src in
  let it = Interp.create ~threads:4 checked in
  Interp.exec it ~func:"f";
  List.iter
    (fun i ->
      match Interp.read_global it "rowsum" [ Interp.Idx i ] with
      | Value.V_float f ->
          check (Alcotest.float 1e-9)
            (Printf.sprintf "rowsum[%d]" i)
            (float_of_int (i + 1))
            f
      | _ -> fail "float")
    [ 0; 7; 15 ]

let () =
  Alcotest.run "execsim"
    [
      ( "value",
        [
          Alcotest.test_case "binops" `Quick test_value_binops;
          Alcotest.test_case "convert" `Quick test_value_convert;
          Alcotest.test_case "builtins" `Quick test_value_builtin;
        ] );
      ("mem", [ Alcotest.test_case "roundtrip" `Quick test_mem_roundtrip ]);
      ( "interp",
        [
          Alcotest.test_case "saxpy values" `Quick test_interp_saxpy_values;
          Alcotest.test_case "linreg values" `Quick test_interp_linreg_values;
          Alcotest.test_case "heat values" `Quick test_interp_heat_values;
          Alcotest.test_case "reduction clause" `Quick
            test_interp_reduction_clause;
          Alcotest.test_case "if + locals" `Quick test_interp_if_and_locals;
          Alcotest.test_case "bounds check" `Quick test_interp_out_of_bounds;
          Alcotest.test_case "errors" `Quick test_interp_errors;
        ] );
      ( "run",
        [
          Alcotest.test_case "deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "exact access counts" `Quick
            test_measure_exact_access_counts;
          Alcotest.test_case "fs effect positive" `Quick
            test_measure_fs_effect_positive;
          Alcotest.test_case "single thread" `Quick
            test_measure_single_thread_no_coherence;
          Alcotest.test_case "wall is max" `Quick test_measure_wall_is_max;
          Alcotest.test_case "window reduces fs" `Quick test_window_reduces_fs;
          Alcotest.test_case "dynamic and guided schedules" `Quick
            test_dynamic_and_guided_schedules;
          Alcotest.test_case "dynamic compound update" `Quick
            test_dynamic_spreads_work;
          Alcotest.test_case "model replays dynamic" `Quick
            test_model_replays_dynamic;
          Alcotest.test_case "exec twice accumulates" `Quick
            test_exec_twice_accumulates;
          Alcotest.test_case "read_global errors" `Quick
            test_read_global_errors;
          Alcotest.test_case "triangular inner bound" `Quick
            test_triangular_loop;
          Alcotest.test_case "while/break/continue" `Quick
            test_while_break_continue;
          Alcotest.test_case "break in parallel rejected" `Quick
            test_break_in_parallel_rejected;
          Alcotest.test_case "continue in parallel" `Quick
            test_continue_in_parallel_ok;
        ] );
    ]

(* The fuzzing subsystem's own tests: generator determinism, the
   pretty-printer round-trip property, a clean oracle-matrix run with
   non-vacuity floors on every check, fault injection (each mutation
   must be caught and shrink to a locally minimal spec), and replay of
   the committed counterexample corpus. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_deterministic () =
  for i = 0 to 199 do
    let a = Fuzz.Gen.spec ~seed:11 ~index:i
    and b = Fuzz.Gen.spec ~seed:11 ~index:i in
    Alcotest.(check string)
      (Printf.sprintf "case %d" i)
      (Fuzz.Spec.to_source a) (Fuzz.Spec.to_source b)
  done

(* parse (pretty ast) = erase_spans ast, over generated nests: the
   printed source must reparse to exactly the structure the generator
   built, so every other oracle check sees the program it thinks it
   sees *)
let test_roundtrip () =
  for i = 0 to 499 do
    let s = Fuzz.Gen.spec ~seed:5 ~index:i in
    let src = Fuzz.Spec.to_source s in
    let reparsed =
      try Minic.Parser.parse_program src
      with Minic.Parser.Error (m, l) ->
        Alcotest.failf "case %d does not reparse: %s (line %d)\n%s" i m l src
    in
    if
      Minic.Ast.erase_spans reparsed
      <> Minic.Ast.erase_spans (Fuzz.Spec.to_ast s)
    then Alcotest.failf "round-trip mismatch at case %d:\n%s" i src
  done

(* ------------------------------------------------------------------ *)
(* Oracle matrix                                                       *)
(* ------------------------------------------------------------------ *)

(* floors are about half the observed rate at this seed, so drift in
   the generator's mix fails loudly rather than silently devolving the
   run into a parse-only smoke test *)
let floors =
  [
    ("pipeline/parse", 300);
    ("roundtrip/pretty", 300);
    ("pipeline/typecheck", 300);
    ("lint/render", 300);
    ("lint/json", 300);
    ("engine/fast-vs-ref", 130);
    ("closed/exact", 50);
    ("depend/brute", 120);
    ("exact/refines", 120);
    ("exact/brute", 50);
    ("exact/witness", 50);
    ("exact/sym", 25);
    ("sym/depend", 25);
    ("sym/depend-sound", 25);
    ("lower/nonaffine", 15);
    ("execsim/run", 2);
    ("reuse/conserve", 100);
    ("reuse/sim", 2);
    ("sched/replay", 100);
    ("sched/static-equiv", 100);
    ("sched/steal-bound", 15);
  ]

let test_clean_run () =
  let cfg = { Fuzz.Driver.default with seed = 42; count = 300 } in
  let s = Fuzz.Driver.run cfg in
  (match s.Fuzz.Driver.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "oracle disagreement (%s, %s): %s\n%s"
        f.Fuzz.Driver.f_origin f.Fuzz.Driver.f_check f.Fuzz.Driver.f_detail
        f.Fuzz.Driver.f_source);
  let count c =
    match List.assoc_opt c s.Fuzz.Driver.exercised with
    | Some n -> n
    | None -> 0
  in
  List.iter
    (fun (c, floor) ->
      let n = count c in
      if n < floor then
        Alcotest.failf "check %s exercised on %d cases, expected >= %d" c n
          floor)
    floors

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let find_failing ~mutate count =
  let rec go i =
    if i >= count then None
    else
      let sp = Fuzz.Gen.spec ~seed:42 ~index:i in
      match (Fuzz.Oracle.check_spec ~mutate sp).Fuzz.Oracle.failure with
      | Some (check, _) -> Some (sp, check)
      | None -> go (i + 1)
  in
  go 0

(* every injected fault must (a) be detected within a modest number of
   cases, (b) trip one of the checks watching that path, and (c) shrink
   to a local minimum: a spec that still fails while every single
   shrink step of it passes *)
let test_mutation m expected () =
  match find_failing ~mutate:m 400 with
  | None ->
      Alcotest.failf "injected fault '%s' escaped 400 cases"
        (Fuzz.Oracle.mutation_name m)
  | Some (sp, check) ->
      if not (List.mem check expected) then
        Alcotest.failf "fault '%s' tripped %s, expected one of %s"
          (Fuzz.Oracle.mutation_name m)
          check (String.concat ", " expected);
      let fails s =
        match (Fuzz.Oracle.check_spec ~mutate:m s).Fuzz.Oracle.failure with
        | Some (c, _) -> c = check
        | None -> false
      in
      let small, _evals = Fuzz.Shrink.minimize ~fails sp in
      if not (fails small) then
        Alcotest.fail "shrunk spec no longer fails the same check";
      List.iter
        (fun cand ->
          if fails cand then
            Alcotest.failf
              "shrunk spec is not locally minimal: a further step still \
               fails\n%s"
              (Fuzz.Spec.to_source small))
        (Fuzz.Spec.shrink_steps small)

let mutation_cases =
  [
    (Fuzz.Oracle.Fast, [ "engine/fast-vs-ref" ]);
    (Fuzz.Oracle.Closed, [ "closed/exact" ]);
    (Fuzz.Oracle.Depend_m, [ "depend/brute" ]);
    (Fuzz.Oracle.Sym, [ "sym/depend"; "sym/depend-sound"; "sym/count" ]);
    (Fuzz.Oracle.Attrib_m, [ "attrib/conserve" ]);
    (Fuzz.Oracle.Exact_m, [ "exact/witness" ]);
    (Fuzz.Oracle.Reuse_m, [ "reuse/conserve" ]);
    (Fuzz.Oracle.Sched_m, [ "sched/replay" ]);
    (Fuzz.Oracle.Fix_m, [ "fix/verified" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

let test_scan_header () =
  let src = read_file "corpus/sym_hull_refine.c" in
  let threads, chunk = Fuzz.Oracle.scan_header src in
  Alcotest.(check int) "threads" 1 threads;
  Alcotest.(check (option int)) "chunk" None chunk;
  Alcotest.(check (pair int (option int)))
    "defaults" (4, None)
    (Fuzz.Oracle.scan_header "int n;\n")

let test_corpus () =
  let files =
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort compare
  in
  if List.length files < 7 then
    Alcotest.failf "expected the committed corpus, found %d files"
      (List.length files);
  List.iter
    (fun f ->
      let src = read_file (Filename.concat "corpus" f) in
      let threads, chunk = Fuzz.Oracle.scan_header src in
      match (Fuzz.Oracle.check_source ~threads ~chunk src).Fuzz.Oracle.failure
      with
      | None -> ()
      | Some (check, detail) -> Alcotest.failf "%s: %s: %s" f check detail)
    files

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "pretty round-trip" `Quick test_roundtrip;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean run, non-vacuous" `Quick test_clean_run;
          Alcotest.test_case "header scan" `Quick test_scan_header;
          Alcotest.test_case "corpus replay" `Quick test_corpus;
        ] );
      ( "fault injection",
        List.map
          (fun (m, expected) ->
            Alcotest.test_case (Fuzz.Oracle.mutation_name m) `Quick
              (test_mutation m expected))
          mutation_cases );
    ]

(* The fix verification gate (`make fix-verify`).

   For every registry kernel and every micro-pattern kernel: run the
   advisor, materialize the fix, and require that

   - kernels expected to have attributed FS get a verified fix:
     >= 90% attributed-FS removal on both engines, no race introduced,
     round-trip through the printer, and no analytic cost regression
     (Fixer.verify's verdict);
   - the execution simulator confirms it: false-sharing invalidation
     misses on the transformed kernel drop by >= 90% (skipped for
     sub-noise baselines);
   - control kernels (already padded / already spread) get an explicitly
     empty plan.

   Exits nonzero on the first unmet expectation, printing a per-kernel
   table either way.  The library half of the gate (engines + analytic
   model) lives in Analysis.Fixer; this executable adds the simulator
   leg, which the analysis library deliberately does not link. *)

let threads = 8

type expect = Fixes | Clean

(* Every kernel the gate runs, with what it must produce.  Micro controls
   are Clean; everything whose chunk-1 schedule false-shares must fix. *)
let expectations =
  [
    ("heat", Fixes);
    ("dft", Fixes);
    ("linear_regression", Fixes);
    ("saxpy", Fixes);
    ("stencil1d", Fixes);
    ("matvec", Fixes);
    ("transpose", Fixes);
    ("counter_slots", Fixes);
    ("bytes_adjacent", Fixes);
    ("struct_xy", Fixes);
    ("struct_xy_padded", Clean);
    ("padded_slots", Clean);
    ("histogram", Fixes);
    ("reduction_sum", Fixes);
  ]

let sim_false_misses (k : Kernels.Kernel.t) =
  let m = Execsim.Run.measure ~threads k in
  m.Execsim.Run.stats.Cachesim.Stats.coherence_false

let check failed name ok msg =
  if not ok then begin
    failed := true;
    Printf.printf "FAIL %-18s %s\n" name msg
  end

let () =
  let failed = ref false in
  Printf.printf
    "%-18s %-6s %8s %8s %8s %10s %10s %7s %10s %10s  %s\n"
    "kernel" "plan" "fs-pre" "fs-post" "removal" "cost-pre" "cost-post" "cost"
    "sim-pre" "sim-post" "verdict";
  List.iter
    (fun (name, expect) ->
      let k =
        match Kernels.Registry.find name with
        | Some k -> k
        | None ->
            failed := true;
            Printf.printf "FAIL %-18s not in registry\n" name;
            raise Exit
      in
      let checked = Kernels.Kernel.parse k in
      let func = k.Kernels.Kernel.func in
      let advice = Fsmodel.Advisor.advise ~threads ~func checked in
      match Analysis.Fixer.verify ~advice ~threads ~func checked with
      | Analysis.Fixer.Nothing_to_fix reason ->
          Printf.printf "%-18s %-6s %62s  %s\n" name "none" "" "clean";
          check failed name (expect = Clean)
            (Printf.sprintf "expected a fix, got: %s" reason)
      | Analysis.Fixer.Fix v ->
          let sim_before = sim_false_misses k in
          let sim_after =
            sim_false_misses
              {
                k with
                Kernels.Kernel.source = v.Analysis.Fixer.source;
                parametric = None;
              }
          in
          let pp_cost = function
            | Some c -> Printf.sprintf "%.4g" c
            | None -> "n/a"
          in
          Printf.printf "%-18s %-6d %8d %8d %7.1f%% %10s %10s %6s %10d %10d  %s\n"
            name
            (List.length v.Analysis.Fixer.plan.Fsmodel.Transform.rewrites)
            v.Analysis.Fixer.before.Analysis.Fixer.fs_ref
            v.Analysis.Fixer.after.Analysis.Fixer.fs_ref
            (100. *. v.Analysis.Fixer.removal)
            (pp_cost v.Analysis.Fixer.before.Analysis.Fixer.cost)
            (pp_cost v.Analysis.Fixer.after.Analysis.Fixer.cost)
            (match v.Analysis.Fixer.cost_ratio with
            | Some r -> Printf.sprintf "%.2fx" r
            | None -> "n/a")
            sim_before sim_after
            (if v.Analysis.Fixer.verified then "VERIFIED" else "UNVERIFIED");
          check failed name (expect = Fixes) "expected a clean kernel, got a fix";
          check failed name v.Analysis.Fixer.verified
            "fix did not verify (removal/cost/race/round-trip)";
          (* simulator leg: transformed kernel must drop false invalidation
             misses by >= 90% (baselines under 100 misses are noise) *)
          if sim_before >= 100 then
            check failed name
              (sim_after * 10 <= sim_before)
              (Printf.sprintf "simulator: false misses %d -> %d (< 90%% drop)"
                 sim_before sim_after))
    expectations;
  if !failed then begin
    Printf.printf "fix-verify: FAILED\n";
    exit 1
  end
  else Printf.printf "fix-verify: all %d kernels ok\n" (List.length expectations)

(* Golden-output generator for the lint pass: runs [Analysis.Lint] with
   its default options on a bundled kernel or a fixture file and writes
   the text and JSON renderings.  The dune rules diff the outputs against
   the committed files under [test/golden/]; refresh with [dune promote]. *)

let usage =
  "golden_gen (--kernel NAME | --sym-kernel NAME | FILE.c) OUT.txt OUT.json\n\
   golden_gen --analytic NAME OUT.txt OUT.json\n\
   golden_gen --sched NAME KIND OUT.txt OUT.json\n\
   golden_gen (--explain NAME | --explain-file FILE.c | --explain-sched NAME \
   KIND) OUT.txt OUT.heatmap\n\
   golden_gen --fix NAME OUT.txt"

let fail msg =
  prerr_endline msg;
  exit 2

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let parse_kind spec =
  match Ompsched.Dispatch.of_string spec with
  | Ok (`Kind k) -> k
  | Ok (`Static _) -> fail "use the plain lint/explain modes for static"
  | Error m -> fail m

(* Explain goldens: the first parallel function's first nest, default
   lint configuration (8 threads), annotated text report plus the ASCII
   heatmap.  [sched] aggregates the attribution over the fixed seed set
   0..7 of a replayed schedule. *)
let explain_outputs ?sched ~uri ~source checked outs =
  let func =
    match
      Loopir.Lower.find_parallel_functions checked.Minic.Typecheck.prog
    with
    | f :: _ -> f
    | [] -> fail ("no parallel function in " ^ uri)
  in
  let threads = 8 in
  let params = [ ("num_threads", threads) ] in
  let nest = Loopir.Lower.lower checked ~func ~params in
  let cfg = { (Fsmodel.Model.default_config ~threads ()) with params } in
  let sched =
    Option.map (fun kind -> (kind, Array.init 8 (fun i -> i))) sched
  in
  let a = Explain.analyze ?sched ~uri ~func cfg ~nest ~checked in
  if not (Explain.conservation_ok a) then
    fail ("attribution does not sum back to the engine count for " ^ uri);
  match outs with
  | [ otxt; oheat ] ->
      write_file otxt (Explain.to_text ~source a);
      write_file oheat (Explain.heatmap a)
  | _ -> fail usage

let lint_outputs argv =
  let (uri, checked), outs =
    match argv with
    | _ :: "--kernel" :: name :: rest -> (
        match Kernels.Registry.find name with
        | Some k -> ((("kernel:" ^ name), Kernels.Kernel.parse k), rest)
        | None -> fail ("unknown kernel " ^ name))
    | _ :: "--sym-kernel" :: name :: rest -> (
        (* Lint the size-free variant: the free parameter forces the
           symbolic analysis path. *)
        match Kernels.Registry.find name with
        | Some { Kernels.Kernel.parametric = Some p; _ } ->
            ( (("kernel:" ^ name ^ ":parametric"), Kernels.Kernel.parse_parametric p),
              rest )
        | Some _ -> fail ("kernel " ^ name ^ " has no parametric variant")
        | None -> fail ("unknown kernel " ^ name))
    | _ :: file :: rest ->
        ( ( file,
            Minic.Typecheck.check_program
              (Minic.Parser.parse_program (read_file file)) ),
          rest )
    | _ -> fail usage
  in
  match outs with
  | [ otxt; ojson ] ->
      let report = Analysis.Lint.run ~uri checked in
      write_file otxt (Analysis.Diag.to_text report);
      write_file ojson (Analysis.Json.to_string (Analysis.Diag.to_json report))
  | _ -> fail usage

(* Analytic lint goldens: same pass, [`Analytic] cost model — zero
   engine evaluations, findings carry the Eq. 1 cost context. *)
let analytic_outputs name outs =
  match Kernels.Registry.find name with
  | None -> fail ("unknown kernel " ^ name)
  | Some k -> (
      let uri = "kernel:" ^ name in
      let checked = Kernels.Kernel.parse k in
      let opts =
        { Analysis.Lint.default_options with cost_model = `Analytic }
      in
      let before = Fsmodel.Model.run_count () in
      let report = Analysis.Lint.run ~opts ~uri checked in
      if Fsmodel.Model.run_count () <> before then
        fail "analytic lint ran the engine";
      match outs with
      | [ otxt; ojson ] ->
          write_file otxt (Analysis.Diag.to_text report);
          write_file ojson
            (Analysis.Json.to_string (Analysis.Diag.to_json report))
      | _ -> fail usage)

(* Schedule-mode lint goldens: the same pass with a seeded replayed
   schedule and the fixed seed set 0..7, pinning the distributional
   verdict text (mean/p95) and the SARIF scheduleKind/fsDistribution
   properties. *)
let sched_outputs name spec outs =
  match Kernels.Registry.find name with
  | None -> fail ("unknown kernel " ^ name)
  | Some k -> (
      let uri = "kernel:" ^ name in
      let checked = Kernels.Kernel.parse k in
      let opts =
        {
          Analysis.Lint.default_options with
          sched = Some (parse_kind spec);
          seeds = 8;
        }
      in
      let report = Analysis.Lint.run ~opts ~uri checked in
      match outs with
      | [ otxt; ojson ] ->
          write_file otxt (Analysis.Diag.to_text report);
          write_file ojson
            (Analysis.Json.to_string (Analysis.Diag.to_json report))
      | _ -> fail usage)

(* Fix goldens: materialize and verify the elimination plan for a
   bundled (registry or micro-pattern) kernel — verdict report followed
   by the transformed source, or the explicit nothing-to-fix notice for
   kernels with no attributed false sharing. *)
let fix_outputs name outs =
  match Kernels.Registry.find name with
  | None -> fail ("unknown kernel " ^ name)
  | Some k -> (
      let checked = Kernels.Kernel.parse k in
      let func =
        match
          Loopir.Lower.find_parallel_functions checked.Minic.Typecheck.prog
        with
        | f :: _ -> f
        | [] -> fail ("no parallel function in kernel " ^ name)
      in
      let advice = Fsmodel.Advisor.advise ~threads:8 ~func checked in
      let text =
        match Analysis.Fixer.verify ~advice ~threads:8 ~func checked with
        | Analysis.Fixer.Nothing_to_fix reason -> "fsdetect: " ^ reason ^ "\n"
        | Analysis.Fixer.Fix v ->
            Analysis.Fixer.to_text v ^ "\n" ^ v.Analysis.Fixer.source
      in
      match outs with
      | [ otxt ] -> write_file otxt text
      | _ -> fail usage)

let () =
  match Array.to_list Sys.argv with
  | _ :: "--analytic" :: name :: rest -> analytic_outputs name rest
  | _ :: "--fix" :: name :: rest -> fix_outputs name rest
  | _ :: "--sched" :: name :: spec :: rest -> sched_outputs name spec rest
  | _ :: "--explain-sched" :: name :: spec :: rest -> (
      match Kernels.Registry.find name with
      | Some k ->
          explain_outputs ~sched:(parse_kind spec)
            ~uri:("kernel:" ^ name)
            ~source:k.Kernels.Kernel.source (Kernels.Kernel.parse k) rest
      | None -> fail ("unknown kernel " ^ name))
  | _ :: "--explain" :: name :: rest -> (
      match Kernels.Registry.find name with
      | Some k ->
          explain_outputs
            ~uri:("kernel:" ^ name)
            ~source:k.Kernels.Kernel.source (Kernels.Kernel.parse k) rest
      | None -> fail ("unknown kernel " ^ name))
  | _ :: "--explain-file" :: file :: rest ->
      let src = read_file file in
      explain_outputs ~uri:file ~source:src
        (Minic.Typecheck.check_program (Minic.Parser.parse_program src))
        rest
  | argv -> lint_outputs argv

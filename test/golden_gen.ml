(* Golden-output generator for the lint pass: runs [Analysis.Lint] with
   its default options on a bundled kernel or a fixture file and writes
   the text and JSON renderings.  The dune rules diff the outputs against
   the committed files under [test/golden/]; refresh with [dune promote]. *)

let usage = "golden_gen (--kernel NAME | --sym-kernel NAME | FILE.c) OUT.txt OUT.json"

let fail msg =
  prerr_endline msg;
  exit 2

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let () =
  let (uri, checked), outs =
    match Array.to_list Sys.argv with
    | _ :: "--kernel" :: name :: rest -> (
        match Kernels.Registry.find name with
        | Some k -> ((("kernel:" ^ name), Kernels.Kernel.parse k), rest)
        | None -> fail ("unknown kernel " ^ name))
    | _ :: "--sym-kernel" :: name :: rest -> (
        (* Lint the size-free variant: the free parameter forces the
           symbolic analysis path. *)
        match Kernels.Registry.find name with
        | Some { Kernels.Kernel.parametric = Some p; _ } ->
            ( (("kernel:" ^ name ^ ":parametric"), Kernels.Kernel.parse_parametric p),
              rest )
        | Some _ -> fail ("kernel " ^ name ^ " has no parametric variant")
        | None -> fail ("unknown kernel " ^ name))
    | _ :: file :: rest ->
        ( ( file,
            Minic.Typecheck.check_program
              (Minic.Parser.parse_program (read_file file)) ),
          rest )
    | _ -> fail usage
  in
  match outs with
  | [ otxt; ojson ] ->
      let report = Analysis.Lint.run ~uri checked in
      write_file otxt (Analysis.Diag.to_text report);
      write_file ojson (Analysis.Json.to_string (Analysis.Diag.to_json report))
  | _ -> fail usage

(* The closed-form FS estimator's contract is exactness: whenever it
   answers [Exact n], [n] equals what [Model.run] counts.  This suite
   enforces the contract on every registry kernel across several
   (threads, chunk) configurations, pins which kernels must stay in
   closed form, exercises the hold/reset cross-region regimes on sized-
   down kernels, and property-checks the estimator and the dependence
   analyzer on random small nests against brute force. *)

open Fsmodel

let check = Alcotest.check

let parse src = Minic.Typecheck.check_program (Minic.Parser.parse_program src)

let lower ~threads checked ~func =
  Loopir.Lower.lower checked ~func ~params:[ ("num_threads", threads) ]

let estimate_and_run cfg ~nest ~checked =
  let est = Analysis.Closed_form.estimate cfg ~nest ~checked in
  let eng = Model.run cfg ~nest ~checked in
  (est, eng.Model.fs_cases)

let assert_exact ~what cfg ~nest ~checked =
  match estimate_and_run cfg ~nest ~checked with
  | Analysis.Closed_form.Exact { fs_cases; _ }, engine ->
      check Alcotest.int (what ^ ": fs = engine") engine fs_cases
  | Analysis.Closed_form.Inapplicable reason, _ ->
      Alcotest.failf "%s: expected closed form, got fallback: %s" what reason

let assert_consistent ~what cfg ~nest ~checked =
  match estimate_and_run cfg ~nest ~checked with
  | Analysis.Closed_form.Exact { fs_cases; _ }, engine ->
      check Alcotest.int (what ^ ": fs = engine") engine fs_cases
  | Analysis.Closed_form.Inapplicable _, _ -> ()

(* ------------------------------------------------------------------ *)
(* registry kernels                                                    *)
(* ------------------------------------------------------------------ *)

(* which kernels must stay in closed form at their pragma schedule: the
   acceptance bar for the estimator (transpose writes along columns, so
   its write offsets depend on the inner variable by design) *)
let pinned =
  [
    ("saxpy", true);
    ("stencil1d", true);
    ("linear_regression", true);
    ("matvec", true);
    ("dft", true);
    ("heat", true);
    ("transpose", false);
  ]

let test_registry_pinned_applicability () =
  List.iter
    (fun (kernel : Kernels.Kernel.t) ->
      let name = kernel.Kernels.Kernel.name in
      let expect_exact = List.assoc name pinned in
      let checked = Kernels.Kernel.parse kernel in
      let nest = lower ~threads:8 checked ~func:kernel.Kernels.Kernel.func in
      let cfg = Model.default_config ~threads:8 () in
      if expect_exact then assert_exact ~what:name cfg ~nest ~checked
      else
        match Analysis.Closed_form.estimate cfg ~nest ~checked with
        | Analysis.Closed_form.Inapplicable _ -> ()
        | Analysis.Closed_form.Exact _ ->
            Alcotest.failf "%s: expected fallback" name)
    (Kernels.Registry.all ())

let test_registry_chunk_sweep () =
  List.iter
    (fun (kernel : Kernels.Kernel.t) ->
      let checked = Kernels.Kernel.parse kernel in
      List.iter
        (fun (threads, chunk) ->
          let nest =
            lower ~threads checked ~func:kernel.Kernels.Kernel.func
          in
          let cfg =
            { (Model.default_config ~threads ()) with Model.chunk }
          in
          let what =
            Printf.sprintf "%s t=%d c=%s" kernel.Kernels.Kernel.name threads
              (match chunk with Some c -> string_of_int c | None -> "pragma")
          in
          assert_consistent ~what cfg ~nest ~checked)
        [
          (2, None);
          (8, Some kernel.Kernels.Kernel.nfs_chunk);
          (5, Some 3);
          (3, Some 1);
        ])
    (Kernels.Registry.all ())

(* ------------------------------------------------------------------ *)
(* cross-region regimes on sized-down kernels                          *)
(* ------------------------------------------------------------------ *)

(* small stencil: each thread's per-region footprint (~65 lines) fits in
   the L1 stack, so nothing is ever evicted — the hold regime *)
let test_hold_regime () =
  let kernel = Kernels.Stencil1d.kernel ~n:258 ~steps:4 () in
  let checked = Kernels.Kernel.parse kernel in
  let nest = lower ~threads:8 checked ~func:"stencil" in
  assert_exact ~what:"stencil n=258 (hold)"
    (Model.default_config ~threads:8 ())
    ~nest ~checked

(* full-size stencil floods the stack every region — the reset regime *)
let test_reset_regime () =
  let kernel = Kernels.Stencil1d.kernel () in
  let checked = Kernels.Kernel.parse kernel in
  let nest = lower ~threads:8 checked ~func:"stencil" in
  assert_exact ~what:"stencil (reset)"
    (Model.default_config ~threads:8 ())
    ~nest ~checked

(* an unbounded stack can never evict either: hold, at any size *)
let test_unbounded_stack_is_hold () =
  let kernel = Kernels.Dft.kernel ~freqs:5 ~samples:1920 () in
  let checked = Kernels.Kernel.parse kernel in
  let nest = lower ~threads:6 checked ~func:"dft" in
  let cfg =
    { (Model.default_config ~threads:6 ()) with Model.stack = Model.Unbounded }
  in
  assert_exact ~what:"dft unbounded" cfg ~nest ~checked

(* a tiny stack makes holder residency uncertain: the estimator must
   refuse rather than guess *)
let test_tiny_stack_falls_back () =
  let kernel = Kernels.Saxpy.kernel ~n:768 () in
  let checked = Kernels.Kernel.parse kernel in
  let nest = lower ~threads:8 checked ~func:"saxpy" in
  let cfg =
    { (Model.default_config ~threads:8 ()) with Model.stack = Model.Lines 4 }
  in
  match Analysis.Closed_form.estimate cfg ~nest ~checked with
  | Analysis.Closed_form.Inapplicable _ -> ()
  | Analysis.Closed_form.Exact _ ->
      Alcotest.fail "4-line stack: expected fallback"

let test_invalidate_ablation_falls_back () =
  let kernel = Kernels.Saxpy.kernel ~n:768 () in
  let checked = Kernels.Kernel.parse kernel in
  let nest = lower ~threads:8 checked ~func:"saxpy" in
  let cfg =
    {
      (Model.default_config ~threads:8 ()) with
      Model.invalidate_on_write = true;
    }
  in
  match Analysis.Closed_form.estimate cfg ~nest ~checked with
  | Analysis.Closed_form.Inapplicable _ -> ()
  | Analysis.Closed_form.Exact _ -> Alcotest.fail "expected fallback"

(* ------------------------------------------------------------------ *)
(* random small nests: estimator vs engine                             *)
(* ------------------------------------------------------------------ *)

type gen_nest = {
  n : int;  (** parallel trip count *)
  m : int;  (** inner trip count; 0 = no inner loop *)
  outer : int;  (** sequential outer trip count; 0 = no outer loop *)
  chunk : int;
  threads : int;
  stmt : int;  (** statement variant *)
}

let source_of g =
  let body =
    match g.stmt with
    | 0 -> "a[i] = 1.0;"
    | 1 -> "a[i] = a[i] + b[i];"
    | 2 -> "a[2 * i] = b[i] + 1.0;"
    | 3 -> "a[i + 1] = b[i] + 2.0;"
    | 4 -> if g.m > 0 then "a[i] = a[i] + b[j];" else "a[i] = b[i];"
    | _ -> if g.m > 0 then "c[4 * i + j] = a[i] + b[j];" else "c[i] = a[i];"
  in
  let inner =
    if g.m > 0 then
      Printf.sprintf "for (int j = 0; j < %d; j++) { %s }" g.m body
    else body
  in
  let par =
    Printf.sprintf
      "#pragma omp parallel for schedule(static,%d)\n\
       for (int i = 0; i < %d; i++) { %s }"
      g.chunk g.n inner
  in
  let nest =
    if g.outer > 0 then
      Printf.sprintf "for (int t = 0; t < %d; t++) { %s }" g.outer par
    else par
  in
  Printf.sprintf
    "double a[128];\ndouble b[128];\ndouble c[256];\nvoid f(void) {\n%s }" nest

let gen_nest_gen =
  QCheck2.Gen.(
    map
      (fun ((n, m, outer), (chunk, threads, stmt)) ->
        { n; m; outer; chunk; threads; stmt })
      (tup2
         (tup3 (int_range 1 24) (int_range 0 5) (int_range 0 4))
         (tup3 (int_range 1 4) (int_range 1 9) (int_range 0 5))))

let prop_estimator_oracle =
  QCheck2.Test.make ~name:"closed form = engine on random small nests"
    ~count:150 ~print:source_of gen_nest_gen (fun g ->
      let checked = parse (source_of g) in
      let nest = lower ~threads:g.threads checked ~func:"f" in
      let cfg = Model.default_config ~threads:g.threads () in
      match Analysis.Closed_form.estimate cfg ~nest ~checked with
      | Analysis.Closed_form.Inapplicable _ -> true
      | Analysis.Closed_form.Exact { fs_cases; _ } ->
          fs_cases = (Model.run cfg ~nest ~checked).Model.fs_cases)

(* the random property must not pass vacuously: the estimator handles
   the whole single-statement grid below in closed form *)
let test_estimator_applicability_floor () =
  let hits = ref 0 and total = ref 0 in
  List.iter
    (fun stmt ->
      List.iter
        (fun threads ->
          let g = { n = 16; m = 2; outer = 2; chunk = 1; threads; stmt } in
          let checked = parse (source_of g) in
          let nest = lower ~threads checked ~func:"f" in
          let cfg = Model.default_config ~threads () in
          incr total;
          match Analysis.Closed_form.estimate cfg ~nest ~checked with
          | Analysis.Closed_form.Exact _ -> incr hits
          | Analysis.Closed_form.Inapplicable _ -> ())
        [ 1; 3; 8 ])
    (* stmt 4 reads b[j] through the inner variable, which is outside
       the cross-region certificates — keep it to the random property *)
    [ 0; 1; 2; 3 ];
  check Alcotest.int "all grid points in closed form" !total !hits

(* ------------------------------------------------------------------ *)
(* dependence analysis vs brute force                                  *)
(* ------------------------------------------------------------------ *)

type gen_dep = {
  dn : int;  (** parallel trip count *)
  dm : int;  (** inner trip count; 0 = no inner loop *)
  c1 : int;
  k1 : int;
  c2 : int;
  k2 : int;
  j_in_b : bool;  (** second subscript also uses the inner variable *)
}

let dep_source_of g =
  let sub coeff off use_j =
    let base =
      if coeff = 0 then "0" else Printf.sprintf "%d * i" coeff
    in
    let base = if use_j && g.dm > 0 then base ^ " + j" else base in
    if off = 0 then base else Printf.sprintf "%s + %d" base off
  in
  let body =
    Printf.sprintf "a[%s] = a[%s] + 1.0;" (sub g.c1 g.k1 false)
      (sub g.c2 g.k2 g.j_in_b)
  in
  let inner =
    if g.dm > 0 then
      Printf.sprintf "for (int j = 0; j < %d; j++) { %s }" g.dm body
    else body
  in
  Printf.sprintf
    "double a[512];\nvoid f(void) {\n\
     #pragma omp parallel for schedule(static,1)\n\
     for (int i = 0; i < %d; i++) { %s } }"
    g.dn inner

let gen_dep_gen =
  QCheck2.Gen.(
    map
      (fun ((dn, dm), (c1, k1), (c2, k2), j_in_b) ->
        { dn; dm; c1; k1; c2; k2; j_in_b })
      (tup4
         (tup2 (int_range 2 12) (int_range 0 4))
         (tup2 (int_range 0 3) (int_range 0 40))
         (tup2 (int_range 0 3) (int_range 0 40))
         bool))

(* brute force over all pairs of distinct parallel iterations: do the two
   references ever overlap in bytes, or share a cache line? *)
let dep_oracle (nest : Loopir.Loop_nest.t) (a : Loopir.Array_ref.t)
    (b : Loopir.Array_ref.t) ~n ~m =
  let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y) in
  let eval_off (r : Loopir.Array_ref.t) ~i ~j =
    Loopir.Affine.eval
      (fun v ->
        if v = "i" then i
        else if v = "j" then j
        else raise Not_found)
      r.Loopir.Array_ref.offset
  in
  ignore nest;
  let bytes = ref false and line = ref false in
  let inner = if m > 0 then m else 1 in
  for i1 = 0 to n - 1 do
    for i2 = 0 to n - 1 do
      if i1 <> i2 then
        for j1 = 0 to inner - 1 do
          for j2 = 0 to inner - 1 do
            let oa = eval_off a ~i:i1 ~j:j1
            and ob = eval_off b ~i:i2 ~j:j2 in
            let ea = oa + a.Loopir.Array_ref.size_bytes - 1
            and eb = ob + b.Loopir.Array_ref.size_bytes - 1 in
            if oa <= eb && ob <= ea then bytes := true;
            if fdiv oa 64 <= fdiv eb 64 && fdiv ob 64 <= fdiv ea 64 then
              line := true
          done
        done
    done
  done;
  (!bytes, !line)

let prop_depend_oracle =
  QCheck2.Test.make ~name:"dependence verdicts vs brute force" ~count:200
    ~print:dep_source_of gen_dep_gen (fun g ->
      let checked = parse (dep_source_of g) in
      let nest =
        Loopir.Lower.lower checked ~func:"f" ~params:[ ("num_threads", 4) ]
      in
      let pairs =
        Analysis.Depend.pairs ~line_bytes:64
          ~params:[ ("num_threads", 4) ]
          nest
      in
      List.for_all
        (fun (p : Analysis.Depend.pair) ->
          let bytes, line =
            dep_oracle nest p.Analysis.Depend.a p.Analysis.Depend.b ~n:g.dn
              ~m:g.dm
          in
          match p.Analysis.Depend.verdict with
          | Analysis.Depend.Independent -> (not bytes) && not line
          | Analysis.Depend.Line_conflict -> not bytes
          | Analysis.Depend.Loop_carried | Analysis.Depend.Unknown _ -> true)
        pairs)

(* pin the headline verdicts the linter builds on *)
let test_depend_verdict_examples () =
  let verdicts src =
    let checked = parse src in
    let nest =
      Loopir.Lower.lower checked ~func:"f" ~params:[ ("num_threads", 8) ]
    in
    Analysis.Depend.pairs ~line_bytes:64 ~params:[ ("num_threads", 8) ] nest
  in
  let has v ps =
    List.exists (fun (p : Analysis.Depend.pair) -> p.Analysis.Depend.verdict = v) ps
  in
  (* racy stencil: v[i] = v[i-1] + v[i+1] carries a dependence *)
  let racy =
    verdicts
      "double v[256];\nvoid f(void) {\n\
       #pragma omp parallel for schedule(static,1)\n\
       for (int i = 1; i < 255; i++) { v[i] = v[i - 1] + v[i + 1]; } }"
  in
  check Alcotest.bool "racy stencil: loop-carried" true
    (has Analysis.Depend.Loop_carried racy);
  (* disjoint writes on the same line: the false-sharing shape *)
  let fs =
    verdicts
      "double y[256];\ndouble x[256];\nvoid f(void) {\n\
       #pragma omp parallel for schedule(static,1)\n\
       for (int i = 0; i < 256; i++) { y[i] = 2.5 * x[i]; } }"
  in
  check Alcotest.bool "saxpy shape: line conflict" true
    (has Analysis.Depend.Line_conflict fs);
  check Alcotest.bool "saxpy shape: no race" false
    (has Analysis.Depend.Loop_carried fs);
  (* a non-affine inner bound degrades to unknown, not to a wrong
     verdict (non-affine subscripts are rejected one layer down, by
     Lower, and surface as unknown findings in the linter) *)
  let unknown =
    verdicts
      "double a[600];\nvoid f(void) {\n\
       #pragma omp parallel for schedule(static,1)\n\
       for (int i = 0; i < 24; i++) {\n\
       for (int j = 0; j < i * i; j++) { a[i] = a[i] + 1.0; } } }"
  in
  check Alcotest.bool "non-affine: unknown" true
    (List.exists
       (fun (p : Analysis.Depend.pair) ->
         match p.Analysis.Depend.verdict with
         | Analysis.Depend.Unknown _ -> true
         | _ -> false)
       unknown)

(* ------------------------------------------------------------------ *)
(* exact integer feasibility (the Omega test)                          *)
(* ------------------------------------------------------------------ *)

(* c + k1*v1 + ... as an affine row *)
let af terms c =
  List.fold_left
    (fun acc (k, v) ->
      Loopir.Affine.add acc (Loopir.Affine.scale k (Loopir.Affine.var v)))
    (Loopir.Affine.const c) terms

let exact_model_holds (s : Analysis.Exact.sys) model =
  let env v = match List.assoc_opt v model with Some n -> n | None -> 0 in
  List.for_all (fun e -> Loopir.Affine.eval env e = 0) s.Analysis.Exact.eqs
  && List.for_all (fun g -> Loopir.Affine.eval env g >= 0) s.Analysis.Exact.geqs

(* hand-picked systems covering each tightening: GCD normalization,
   equality elimination, dark vs real shadow, and splinters *)
let test_exact_solver_examples () =
  let solve s = Analysis.Exact.solve (Analysis.Exact.budget 1_000_000) s in
  let sat name s =
    match solve s with
    | None -> Alcotest.failf "%s: expected satisfiable" name
    | Some m ->
        check Alcotest.bool (name ^ ": model holds") true (exact_model_holds s m)
  and unsat name s =
    match solve s with
    | None -> ()
    | Some _ -> Alcotest.failf "%s: expected unsatisfiable" name
  in
  (* GCD: 6x + 10y = 1 has no integer solution, 6x + 10y = 2 does *)
  unsat "gcd" { Analysis.Exact.eqs = [ af [ (6, "x"); (10, "y") ] (-1) ]; geqs = [] };
  sat "gcd ok" { Analysis.Exact.eqs = [ af [ (6, "x"); (10, "y") ] (-2) ]; geqs = [] };
  (* no integer in the rational interval [3/11, 8/11] *)
  unsat "empty interval"
    { Analysis.Exact.eqs = []; geqs = [ af [ (11, "x") ] (-3); af [ (-11, "x") ] 8 ] };
  sat "wide interval"
    { Analysis.Exact.eqs = []; geqs = [ af [ (11, "x") ] (-3); af [ (-11, "x") ] 19 ] };
  (* Pugh's running example: 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4
     has no integer solution though the real shadow is non-empty *)
  unsat "pugh dark shadow"
    {
      Analysis.Exact.eqs = [];
      geqs =
        [
          af [ (11, "x"); (13, "y") ] (-27);
          af [ (-11, "x"); (-13, "y") ] 45;
          af [ (7, "x"); (-9, "y") ] 10;
          af [ (-7, "x"); (9, "y") ] 4;
        ];
    };
  (* same shape, relaxed enough to admit (3, 1) *)
  sat "pugh relaxed"
    {
      Analysis.Exact.eqs = [];
      geqs =
        [
          af [ (11, "x"); (13, "y") ] (-27);
          af [ (-11, "x"); (-13, "y") ] 46;
          af [ (7, "x"); (-9, "y") ] 10;
          af [ (-7, "x"); (9, "y") ] 12;
        ];
    };
  (* coupled equalities forcing mod-hat elimination *)
  sat "mod-hat"
    {
      Analysis.Exact.eqs = [ af [ (7, "x"); (12, "y"); (31, "z") ] (-50) ];
      geqs = [ af [ (1, "x") ] 0; af [ (1, "y") ] 0; af [ (1, "z") ] 0 ];
    };
  unsat "coupled parity"
    {
      Analysis.Exact.eqs = [ af [ (2, "x"); (-2, "y") ] (-1) ];
      geqs = [];
    }

(* the solver against brute force over a small box: both the decision
   and, when satisfiable, the returned model *)
let prop_exact_vs_brute =
  let gen =
    QCheck2.Gen.(
      let row =
        map
          (fun (c, k1, k2, k3) -> (c, k1, k2, k3))
          (tup4 (int_range (-10) 10) (int_range (-4) 4) (int_range (-4) 4)
             (int_range (-4) 4))
      in
      tup2 (list_size (int_range 0 1) row) (list_size (int_range 1 4) row))
  in
  let print (eqs, geqs) =
    let row (c, k1, k2, k3) = Printf.sprintf "%d + %dx + %dy + %dz" c k1 k2 k3 in
    Printf.sprintf "eqs: %s; geqs: %s"
      (String.concat ", " (List.map row eqs))
      (String.concat ", " (List.map row geqs))
  in
  QCheck2.Test.make ~name:"exact solver = brute force on boxed systems"
    ~count:300 ~print gen (fun (eqs, geqs) ->
      let mk (c, k1, k2, k3) = af [ (k1, "x"); (k2, "y"); (k3, "z") ] c in
      let box =
        List.concat_map
          (fun v -> [ af [ (1, v) ] 5; af [ (-1, v) ] 5 ])
          [ "x"; "y"; "z" ]
      in
      let sys =
        {
          Analysis.Exact.eqs = List.map mk eqs;
          geqs = List.map mk geqs @ box;
        }
      in
      let brute = ref false in
      for x = -5 to 5 do
        for y = -5 to 5 do
          for z = -5 to 5 do
            let env = function "x" -> x | "y" -> y | _ -> z in
            if
              List.for_all (fun e -> Loopir.Affine.eval env e = 0)
                sys.Analysis.Exact.eqs
              && List.for_all (fun g -> Loopir.Affine.eval env g >= 0)
                   sys.Analysis.Exact.geqs
            then brute := true
          done
        done
      done;
      match Analysis.Exact.solve (Analysis.Exact.budget 2_000_000) sys with
      | None -> not !brute
      | Some m -> !brute && exact_model_holds sys m)

(* Acceptance gate for the exact tier: the default two-tier analysis
   leaves no affine pair of any registry kernel undecided — no Unknown
   verdicts, no budget fallbacks — and every must-conflict carries a
   witness that replays: distinct parallel iterations whose evaluated
   offsets exhibit exactly the claimed overlap. *)
let test_registry_exact_gate () =
  let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y) in
  List.iter
    (fun kernel ->
      let name = kernel.Kernels.Kernel.name in
      let checked = Kernels.Kernel.parse kernel in
      let nest = lower ~threads:8 checked ~func:kernel.Kernels.Kernel.func in
      let pv = (Loopir.Loop_nest.parallel_loop nest).Loopir.Loop_nest.var in
      let pairs =
        Analysis.Depend.pairs ~line_bytes:64
          ~params:[ ("num_threads", 8) ]
          nest
      in
      List.iter
        (fun (p : Analysis.Depend.pair) ->
          let ev = p.Analysis.Depend.ev in
          (match p.Analysis.Depend.verdict with
          | Analysis.Depend.Unknown r ->
              Alcotest.failf "%s: unknown affine pair (%s)" name r
          | _ -> ());
          (match ev.Analysis.Depend.ev_backend with
          | Analysis.Depend.Fallback r ->
              Alcotest.failf "%s: exact tier fell back (%s)" name r
          | _ -> ());
          match (p.Analysis.Depend.verdict, ev.Analysis.Depend.ev_witness) with
          | (Analysis.Depend.Loop_carried | Analysis.Depend.Line_conflict), None
            when ev.Analysis.Depend.ev_must ->
              Alcotest.failf "%s: must-conflict without a witness" name
          | v, Some w ->
              let env side x =
                match List.assoc_opt x side with
                | Some n -> n
                | None -> (
                    match List.assoc_opt x w.Analysis.Depend.w_params with
                    | Some n -> n
                    | None -> List.assoc x [ ("num_threads", 8) ])
              in
              if
                List.assoc_opt pv w.Analysis.Depend.w_a
                = List.assoc_opt pv w.Analysis.Depend.w_b
              then
                Alcotest.failf "%s: witness does not separate %s" name pv;
              let offset side (r : Loopir.Array_ref.t) =
                Loopir.Affine.eval (env side) r.Loopir.Array_ref.offset
              in
              let oa = offset w.Analysis.Depend.w_a p.Analysis.Depend.a
              and ob = offset w.Analysis.Depend.w_b p.Analysis.Depend.b in
              let ea = oa + p.Analysis.Depend.a.Loopir.Array_ref.size_bytes - 1
              and eb =
                ob + p.Analysis.Depend.b.Loopir.Array_ref.size_bytes - 1
              in
              let bytes = oa <= eb && ob <= ea in
              let line =
                fdiv oa 64 <= fdiv eb 64 && fdiv ob 64 <= fdiv ea 64
              in
              let ok =
                match v with
                | Analysis.Depend.Loop_carried -> bytes
                | Analysis.Depend.Line_conflict -> line && not bytes
                | _ -> false
              in
              if not ok then
                Alcotest.failf "%s: witness does not replay (%s)" name
                  (Analysis.Depend.witness_to_string w)
          | _ -> ())
        pairs)
    (Kernels.Registry.all ())

(* ------------------------------------------------------------------ *)
(* parametric (symbolic) analyses                                      *)
(* ------------------------------------------------------------------ *)

(* Acceptance bar for the parametric certificates: every registry
   kernel's size-free variant must produce a closed-form N_fs whose
   value at the kernel's concrete size equals the engine's count
   exactly. *)
let test_sym_kernels_exact () =
  List.iter
    (fun kernel ->
      let name = kernel.Kernels.Kernel.name in
      let p = Option.get kernel.Kernels.Kernel.parametric in
      let checked = Kernels.Kernel.parse_parametric p in
      let nest = lower ~threads:8 checked ~func:kernel.Kernels.Kernel.func in
      let cfg = Model.default_config ~threads:8 () in
      match
        Analysis.Closed_form.estimate_sym cfg ~nest ~checked
          ~param:p.Kernels.Kernel.param ~hi:p.Kernels.Kernel.value ()
      with
      | Analysis.Closed_form.Sym_inapplicable reason ->
          Alcotest.failf "%s: expected a parametric certificate, got: %s" name
            reason
      | Analysis.Closed_form.Sym cert ->
          let cfg' =
            {
              cfg with
              Model.params =
                (p.Kernels.Kernel.param, p.Kernels.Kernel.value)
                :: cfg.Model.params;
            }
          in
          let engine = (Model.run cfg' ~nest ~checked).Model.fs_cases in
          check Alcotest.int
            (name ^ ": N_fs(" ^ string_of_int p.Kernels.Kernel.value
           ^ ") = engine")
            engine
            (Analysis.Closed_form.sym_eval cert p.Kernels.Kernel.value))
    (Kernels.Registry.all ())

(* Definitive verdicts with the size left free: no kernel's symbolic
   dependence tree may contain an Unknown or a spurious race region —
   in-bounds reasoning must rule the race branches out even for
   transpose's column writes. *)
let test_sym_kernels_definitive () =
  List.iter
    (fun kernel ->
      let name = kernel.Kernels.Kernel.name in
      let p = Option.get kernel.Kernels.Kernel.parametric in
      let checked = Kernels.Kernel.parse_parametric p in
      let nest = lower ~threads:8 checked ~func:kernel.Kernels.Kernel.func in
      let layout = Loopir.Layout.make checked in
      let extent_of base =
        match Loopir.Layout.size_of layout base with
        | s -> Some s
        | exception Not_found -> None
      in
      let spairs, ctx, free =
        Analysis.Depend.pairs_sym ~line_bytes:64
          ~params:[ ("num_threads", 8) ]
          ~extent_of nest
      in
      check
        Alcotest.(list string)
        (name ^ ": free parameters")
        [ p.Kernels.Kernel.param ] free;
      List.iter
        (fun (sp : Analysis.Depend.spair) ->
          List.iter
            (fun (_, (v, _)) ->
              match v with
              | Analysis.Depend.Unknown r ->
                  Alcotest.failf "%s: unknown region (%s)" name r
              | Analysis.Depend.Loop_carried ->
                  Alcotest.failf "%s: race region with size free" name
              | Analysis.Depend.Independent | Analysis.Depend.Line_conflict
                ->
                  ())
            (Analysis.Symbolic.paths ctx sp.Analysis.Depend.scases))
        spairs)
    (Kernels.Registry.all ())

(* parametric dependence: the verdict tree of a one-parameter nest,
   instantiated at many concrete trip counts, must stay sound against
   both the concrete analyzer and byte-level brute force *)
type gen_sdep = { sc1 : int; sk1 : int; sc2 : int; sk2 : int; schunk : int }

let sdep_source_of g =
  let sub coeff off =
    if coeff = 0 then string_of_int off
    else if off = 0 then Printf.sprintf "%d * i" coeff
    else Printf.sprintf "%d * i + %d" coeff off
  in
  Printf.sprintf
    "int n;\ndouble a[512];\nvoid f(void) {\n\
     #pragma omp parallel for schedule(static,%d)\n\
     for (int i = 0; i < n; i++) { a[%s] = a[%s] + 1.0; } }"
    g.schunk (sub g.sc1 g.sk1) (sub g.sc2 g.sk2)

let gen_sdep_gen =
  QCheck2.Gen.(
    map
      (fun ((sc1, sk1), (sc2, sk2), schunk) ->
        { sc1; sk1; sc2; sk2; schunk })
      (tup3
         (tup2 (int_range 0 3) (int_range 0 40))
         (tup2 (int_range 0 3) (int_range 0 40))
         (int_range 1 4)))

let prop_sym_depend_sound =
  (* 40 nest shapes x 8 instantiations = 320 parameter points *)
  QCheck2.Test.make ~name:"symbolic verdicts sound at every instantiation"
    ~count:40 ~print:sdep_source_of gen_sdep_gen (fun g ->
      let checked = parse (sdep_source_of g) in
      let nest =
        Loopir.Lower.lower checked ~func:"f" ~params:[ ("num_threads", 4) ]
      in
      let spairs, _ctx, free =
        Analysis.Depend.pairs_sym ~line_bytes:64
          ~params:[ ("num_threads", 4) ]
          nest
      in
      free = [ "n" ]
      && List.for_all
           (fun nv ->
             let cpairs =
               Analysis.Depend.pairs ~line_bytes:64
                 ~params:[ ("num_threads", 4); ("n", nv) ]
                 nest
             in
             List.length cpairs = List.length spairs
             && List.for_all2
                  (fun (cp : Analysis.Depend.pair)
                       (sp : Analysis.Depend.spair) ->
                    let sv, _ =
                      Analysis.Symbolic.eval
                        (fun _ -> nv)
                        sp.Analysis.Depend.scases
                    in
                    let bytes, line =
                      dep_oracle nest cp.Analysis.Depend.a
                        cp.Analysis.Depend.b ~n:nv ~m:0
                    in
                    match sv with
                    | Analysis.Depend.Independent ->
                        (* must-result: brute force may find nothing,
                           and the concrete analyzer must agree *)
                        (not bytes) && (not line)
                        && cp.Analysis.Depend.verdict
                           = Analysis.Depend.Independent
                    | Analysis.Depend.Line_conflict ->
                        (* the race exclusion is a must-result *)
                        (not bytes)
                        && cp.Analysis.Depend.verdict
                           <> Analysis.Depend.Loop_carried
                    | Analysis.Depend.Loop_carried
                    | Analysis.Depend.Unknown _ ->
                        true)
                  cpairs spairs)
           [ 0; 1; 2; 3; 7; 16; 33; 50 ])

(* parametric counts: certificates fitted on one-parameter nests must
   evaluate to the engine's count at every sampled trip count *)
type gen_scount = { gstride : int; goff : int; gchunk : int; gthreads : int }

let scount_source_of g =
  Printf.sprintf
    "int n;\ndouble a[4096];\ndouble b[4096];\nvoid f(void) {\n\
     #pragma omp parallel for schedule(static,%d)\n\
     for (int i = 0; i < n; i++) { a[%d * i + %d] = b[i] + 1.0; } }"
    g.gchunk g.gstride g.goff

let gen_scount_gen =
  QCheck2.Gen.(
    map
      (fun (gstride, goff, gchunk, gthreads) ->
        { gstride; goff; gchunk; gthreads })
      (tup4 (int_range 1 3) (int_range 0 8) (int_range 1 4) (int_range 2 8)))

let prop_sym_count_exact =
  (* 30 configurations x 9 instantiations = 270 parameter points *)
  QCheck2.Test.make ~name:"symbolic counts = engine at every instantiation"
    ~count:30 ~print:scount_source_of gen_scount_gen (fun g ->
      let checked = parse (scount_source_of g) in
      let nest =
        Loopir.Lower.lower checked ~func:"f"
          ~params:[ ("num_threads", g.gthreads) ]
      in
      let cfg = Model.default_config ~threads:g.gthreads () in
      let hi = (4096 - g.goff) / g.gstride in
      match
        Analysis.Closed_form.estimate_sym cfg ~nest ~checked ~param:"n" ~hi
          ()
      with
      | Analysis.Closed_form.Sym_inapplicable _ -> true
      | Analysis.Closed_form.Sym cert ->
          let lo = cert.Analysis.Closed_form.sc_base in
          List.for_all
            (fun frac ->
              let nv = lo + ((hi - lo) * frac / 8) in
              let cfg' =
                { cfg with Model.params = ("n", nv) :: cfg.Model.params }
              in
              Analysis.Closed_form.sym_eval cert nv
              = (Model.run cfg' ~nest ~checked).Model.fs_cases)
            [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ])

(* the count property must not pass vacuously: the unit-stride shape
   fits a certificate at every chunk in the generator's range *)
let test_sym_count_applicability_floor () =
  List.iter
    (fun gchunk ->
      let g = { gstride = 1; goff = 0; gchunk; gthreads = 8 } in
      let checked = parse (scount_source_of g) in
      let nest =
        Loopir.Lower.lower checked ~func:"f" ~params:[ ("num_threads", 8) ]
      in
      let cfg = Model.default_config ~threads:8 () in
      match
        Analysis.Closed_form.estimate_sym cfg ~nest ~checked ~param:"n"
          ~hi:4096 ()
      with
      | Analysis.Closed_form.Sym _ -> ()
      | Analysis.Closed_form.Sym_inapplicable r ->
          Alcotest.failf "chunk %d: expected a certificate, got: %s" gchunk r)
    [ 1; 2; 3; 4 ]

let () =
  Alcotest.run "analysis"
    [
      ( "closed_form",
        [
          Alcotest.test_case "registry pinned applicability" `Quick
            test_registry_pinned_applicability;
          Alcotest.test_case "registry chunk sweep" `Quick
            test_registry_chunk_sweep;
          Alcotest.test_case "hold regime" `Quick test_hold_regime;
          Alcotest.test_case "reset regime" `Quick test_reset_regime;
          Alcotest.test_case "unbounded stack" `Quick
            test_unbounded_stack_is_hold;
          Alcotest.test_case "tiny stack falls back" `Quick
            test_tiny_stack_falls_back;
          Alcotest.test_case "invalidate ablation falls back" `Quick
            test_invalidate_ablation_falls_back;
          Alcotest.test_case "applicability floor" `Quick
            test_estimator_applicability_floor;
          QCheck_alcotest.to_alcotest prop_estimator_oracle;
        ] );
      ( "depend",
        [
          Alcotest.test_case "verdict examples" `Quick
            test_depend_verdict_examples;
          QCheck_alcotest.to_alcotest prop_depend_oracle;
        ] );
      ( "exact",
        [
          Alcotest.test_case "solver examples" `Quick
            test_exact_solver_examples;
          Alcotest.test_case "registry kernels: no unknown, witnesses replay"
            `Quick test_registry_exact_gate;
          QCheck_alcotest.to_alcotest prop_exact_vs_brute;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "registry kernels: parametric N_fs exact"
            `Quick test_sym_kernels_exact;
          Alcotest.test_case "registry kernels: definitive with size free"
            `Quick test_sym_kernels_definitive;
          Alcotest.test_case "count applicability floor" `Quick
            test_sym_count_applicability_floor;
          QCheck_alcotest.to_alcotest prop_sym_depend_sound;
          QCheck_alcotest.to_alcotest prop_sym_count_exact;
        ] );
    ]

(* The service layer's contract: cached responses are byte-identical to
   cold ones for every analysis kind, digests invalidate exactly the
   stages they should, the LRU stays bounded, and one store is safe to
   share across domains.  Plus the protocol's JSON codec round-trips. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let text_source path =
  Service.Req.Text { name = path; content = read_file path }

let payload =
  Alcotest.testable
    (fun ppf (p : Service.Api.payload) ->
      Format.fprintf ppf "{code=%d; out=%dB; err=%S}" p.Service.Api.code
        (String.length p.Service.Api.output)
        p.Service.Api.err)
    ( = )

(* Every analysis kind over every interesting source: registry kernels,
   their parametric variants, and the adversarial fixtures (races,
   parse / type errors, unbound size parameters). *)
let requests () =
  let kinds_for source =
    let open Service.Req in
    [
      Analyze
        {
          func = None;
          threads = 8;
          fs_chunk = None;
          nfs_chunk = None;
          predict = None;
          contention = false;
          exact = `Auto;
          exact_budget = Analysis.Depend.default_exact_budget;
          cost_model = `Sim;
          json = false;
        };
      Lint
        {
          threads = 8;
          chunk = None;
          json = false;
          fixits = true;
          params = [];
          fail_on = Race;
          exact = `Auto;
          exact_budget = Analysis.Depend.default_exact_budget;
          cost_model = `Sim;
          sched = None;
          seeds = 8;
        };
      Lint
        {
          threads = 4;
          chunk = Some 16;
          json = true;
          fixits = false;
          params = [ ("n", 4096) ];
          fail_on = Fs;
          exact = `On;
          exact_budget = 2000;
          cost_model = `Analytic;
          sched = None;
          seeds = 8;
        };
      Explain
        {
          func = None;
          threads = 8;
          chunk = None;
          params = [];
          engine = `Fast;
          format = `Text;
          top = 3;
          trace_cap = None;
          sched = None;
          seeds = 8;
        };
      Explain
        {
          func = None;
          threads = 8;
          chunk = None;
          params = [];
          engine = `Reference;
          format = `Heatmap;
          top = 3;
          trace_cap = Some 64;
          sched = None;
          seeds = 8;
        };
      Advise { func = None; threads = 8; jobs = Some 1 };
      Eliminate { func = None; threads = 8 };
      Dump { threads = 8 };
    ]
    |> List.map (fun k -> Service.Req.v source k)
  in
  let sources =
    [
      Service.Req.Kernel "saxpy";
      Service.Req.Kernel "stencil1d";
      Service.Req.Sym_kernel "saxpy";
      Service.Req.Kernel "no_such_kernel";
      text_source "fixtures/racy_stencil.c";
      text_source "fixtures/struct_adjacent.c";
      text_source "fixtures/bad_syntax.c";
      text_source "fixtures/bad_type.c";
      text_source "fixtures/parametric_stride.c";
    ]
  in
  List.concat_map kinds_for sources

(* -- cache hits return the cold bytes ------------------------------- *)

let test_warm_equals_cold () =
  let shared = Service.Api.create_store () in
  List.iter
    (fun req ->
      let cold = Service.Api.exec (Service.Api.create_store ()) req in
      let first = Service.Api.exec shared req in
      let warm = Service.Api.exec shared req in
      Alcotest.check payload "cold store = shared store" cold first;
      Alcotest.check payload "warm hit = cold response" cold warm)
    (requests ())

let test_warm_is_hit () =
  let store = Service.Api.create_store () in
  let req = Service.Req.lint_defaults (Service.Req.Kernel "saxpy") in
  ignore (Service.Api.exec store req);
  let h0, m0 = Service.Api.stage_stats store "resp" in
  ignore (Service.Api.exec store req);
  let h1, m1 = Service.Api.stage_stats store "resp" in
  Alcotest.(check int) "one more resp hit" (h0 + 1) h1;
  Alcotest.(check int) "no new resp miss" m0 m1

(* -- digest changes invalidate exactly the right stages ------------- *)

let stage_delta store f =
  let stages = [ "parse"; "typecheck"; "lower"; "resp" ] in
  let before = List.map (Service.Api.stage_stats store) stages in
  f ();
  let after = List.map (Service.Api.stage_stats store) stages in
  List.map2
    (fun (h0, m0) (h1, m1) -> (h1 - h0, m1 - m0))
    before after

let analyze_req ?(threads = 8) ?(arch = Archspec.Arch.paper_machine) source =
  Service.Req.v ~arch source
    (Service.Req.Analyze
       {
         func = None;
         threads;
         fs_chunk = None;
         nfs_chunk = None;
         predict = None;
         contention = false;
         exact = `Auto;
         exact_budget = Analysis.Depend.default_exact_budget;
         cost_model = `Sim;
         json = false;
       })

let check_deltas what expected got =
  List.iter2
    (fun (stage, exp_) got ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "%s: %s (hits, misses)" what stage)
        exp_ got)
    (List.combine [ "parse"; "typecheck"; "lower"; "resp" ] expected)
    got

let test_invalidation () =
  let store = Service.Api.create_store () in
  let src = text_source "fixtures/struct_adjacent.c" in
  (* cold: every stage misses once (the typecheck hit is the parallel-
     function discovery re-reading the entry it just created) *)
  check_deltas "cold" [ (0, 1); (1, 1); (0, 1); (0, 1) ]
    (stage_delta store (fun () ->
         ignore (Service.Api.exec store (analyze_req src))));
  (* schedule-parameter change: parse/typecheck reused, lower+resp redo *)
  check_deltas "threads change" [ (0, 0); (2, 0); (0, 1); (0, 1) ]
    (stage_delta store (fun () ->
         ignore (Service.Api.exec store (analyze_req ~threads:4 src))));
  (* arch change: everything upstream of the response reused *)
  check_deltas "arch change" [ (0, 0); (2, 0); (1, 0); (0, 1) ]
    (stage_delta store (fun () ->
         ignore
           (Service.Api.exec store
              (analyze_req ~arch:Archspec.Arch.small_test_machine src))));
  (* source edit: new content digest misses every stage *)
  let edited =
    match src with
    | Service.Req.Text { name; content } ->
        Service.Req.Text { name; content = content ^ "\n" }
    | _ -> assert false
  in
  check_deltas "source edit" [ (0, 1); (1, 1); (0, 1); (0, 1) ]
    (stage_delta store (fun () ->
         ignore (Service.Api.exec store (analyze_req edited))))

(* -- bounded LRU ---------------------------------------------------- *)

let test_eviction () =
  let store = Service.Api.create_store ~capacity:4 () in
  let reqs =
    List.init 6 (fun i ->
        Service.Req.v
          (Service.Req.Text
             {
               name = Printf.sprintf "mem%d.c" i;
               content =
                 Printf.sprintf
                   "int a[1024];\n\
                    void f%d() {\n\
                    #pragma omp parallel for\n\
                    for (int i = 0; i < 64; i++) a[i] = %d;\n\
                    }\n"
                   i i;
             })
          (Service.Req.Dump { threads = 8 }))
  in
  List.iter (fun r -> ignore (Service.Api.exec store r)) reqs;
  let s = Service.Api.stats store in
  Alcotest.(check bool) "evicted something" true (s.Service.Cache.evictions > 0);
  Alcotest.(check bool)
    "entries bounded by capacity" true
    (s.Service.Cache.entries <= 4);
  (* an evicted response recomputes to the same bytes *)
  let r0 = List.hd reqs in
  let recomputed = Service.Api.exec store r0 in
  let fresh = Service.Api.exec (Service.Api.create_store ()) r0 in
  Alcotest.check payload "recomputed after eviction" fresh recomputed

(* -- one store shared across domains -------------------------------- *)

let test_cross_domain () =
  let reqs = requests () in
  let expected = List.map (Service.Api.exec (Service.Api.create_store ())) reqs in
  let store = Service.Api.create_store () in
  (* two rounds over the same shared store: misses then hits, any
     interleaving across 4 domains *)
  let round () =
    Fsmodel.Par_sweep.map ~domains:4 (Service.Api.exec store) reqs
  in
  let first = round () and second = round () in
  List.iter2
    (Alcotest.check payload "parallel cold = sequential")
    expected first;
  List.iter2 (Alcotest.check payload "parallel warm = sequential") expected
    second

(* -- Pool and map_stream -------------------------------------------- *)

let test_pool_fifo () =
  let pool = Fsmodel.Par_sweep.Pool.create ~domains:1 () in
  let seen = ref [] in
  for i = 0 to 99 do
    Fsmodel.Par_sweep.Pool.submit pool (fun () -> seen := i :: !seen)
  done;
  Fsmodel.Par_sweep.Pool.wait pool;
  Alcotest.(check (list int))
    "one worker runs FIFO"
    (List.init 100 (fun i -> 99 - i))
    !seen;
  Fsmodel.Par_sweep.Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Par_sweep.Pool.submit: pool is shut down") (fun () ->
      Fsmodel.Par_sweep.Pool.submit pool (fun () -> ()))

let test_pool_survives_exceptions () =
  let errors = Atomic.make 0 in
  let pool =
    Fsmodel.Par_sweep.Pool.create ~domains:2
      ~on_error:(fun _ -> Atomic.incr errors)
      ()
  in
  let ok = Atomic.make 0 in
  for i = 0 to 49 do
    Fsmodel.Par_sweep.Pool.submit pool (fun () ->
        if i mod 5 = 0 then failwith "poisoned" else Atomic.incr ok)
  done;
  Fsmodel.Par_sweep.Pool.wait pool;
  Fsmodel.Par_sweep.Pool.shutdown pool;
  Alcotest.(check int) "failures reported" 10 (Atomic.get errors);
  Alcotest.(check int) "other jobs unaffected" 40 (Atomic.get ok)

let test_map_stream () =
  let xs = List.init 40 (fun i -> i) in
  let fired = Array.make 40 0 in
  let m = Mutex.create () in
  let results =
    Fsmodel.Par_sweep.map_stream ~domains:4
      ~on_result:(fun i r ->
        Mutex.lock m;
        fired.(i) <- fired.(i) + r;
        Mutex.unlock m)
      (fun x -> x * x)
      xs
  in
  Alcotest.(check (list int))
    "results in input order"
    (List.map (fun x -> x * x) xs)
    results;
  Alcotest.(check (list int))
    "every callback fired exactly once"
    (List.map (fun x -> x * x) xs)
    (Array.to_list fired)

(* -- protocol JSON codec -------------------------------------------- *)

let rec json_eq a b =
  let open Analysis.Json in
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Str x, Str y -> x = y
  | List x, List y ->
      List.length x = List.length y && List.for_all2 json_eq x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_eq v1 v2)
           x y
  | _ -> false

let json_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Analysis.Json.Null;
        map (fun b -> Analysis.Json.Bool b) bool;
        map (fun i -> Analysis.Json.Int i) int;
        map (fun s -> Analysis.Json.Str s) (string_size (0 -- 12));
        map
          (fun i -> Analysis.Json.Float (float_of_int i /. 16.))
          (-1000 -- 1000);
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        oneof
          [
            scalar;
            map
              (fun l -> Analysis.Json.List l)
              (list_size (0 -- 4) (self (n / 2)));
            map
              (fun l ->
                Analysis.Json.Obj
                  (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) l))
              (list_size (0 -- 4) (self (n / 2)));
          ])

let prop_jsonp_roundtrip =
  QCheck2.Test.make ~name:"to_line/parse round-trip" ~count:500 json_gen
    (fun j ->
      let line = Service.Jsonp.to_line j in
      (not (String.contains line '\n'))
      &&
      match Service.Jsonp.parse line with
      | Ok j' -> json_eq j j'
      | Error _ -> false)

let test_jsonp_errors () =
  List.iter
    (fun s ->
      match Service.Jsonp.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse %S should fail" s)
    [
      ""; "{"; "[1,"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2";
      "{\"a\":1,}"; "nul"; "\"bad \\x escape\"";
    ]

let test_jsonp_examples () =
  let check s expected =
    match Service.Jsonp.parse s with
    | Ok j ->
        Alcotest.(check bool) (Printf.sprintf "parse %S" s) true
          (json_eq j expected)
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  let open Analysis.Json in
  check "  {\"a\": [1, -2.5, true, null], \"b\\n\": \"\\u00e9\"}  "
    (Obj
       [
         ("a", List [ Int 1; Float (-2.5); Bool true; Null ]);
         ("b\n", Str "\xc3\xa9");
       ]);
  check "\"\\ud83d\\ude00\"" (Str "\xf0\x9f\x98\x80")

let () =
  Alcotest.run "service"
    [
      ( "cache",
        [
          Alcotest.test_case "warm = cold for every kind" `Slow
            test_warm_equals_cold;
          Alcotest.test_case "second exec is a resp hit" `Quick
            test_warm_is_hit;
          Alcotest.test_case "stage-exact invalidation" `Quick
            test_invalidation;
          Alcotest.test_case "LRU eviction bounded" `Quick test_eviction;
          Alcotest.test_case "shared across domains" `Slow test_cross_domain;
        ] );
      ( "pool",
        [
          Alcotest.test_case "single worker is FIFO" `Quick test_pool_fifo;
          Alcotest.test_case "exceptions don't kill workers" `Quick
            test_pool_survives_exceptions;
          Alcotest.test_case "map_stream streams every result" `Quick
            test_map_stream;
        ] );
      ( "jsonp",
        [
          QCheck_alcotest.to_alcotest prop_jsonp_roundtrip;
          Alcotest.test_case "malformed inputs rejected" `Quick
            test_jsonp_errors;
          Alcotest.test_case "examples" `Quick test_jsonp_examples;
        ] );
    ]

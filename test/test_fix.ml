(* The fix loop's invariants beyond the golden transcripts: every
   materialized fix round-trips byte-stably through the pretty-printer,
   verdicts do not depend on the Par_sweep domain count, the
   nothing-to-fix path is an explicit exit-0 notice at the service
   layer, and the cache keys keep fix/eliminate/advise responses
   apart while excluding the jobs knob. *)

let threads = 8

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let parallel_funcs checked =
  Loopir.Lower.find_parallel_functions checked.Minic.Typecheck.prog

(* Every (kernel, function) pair across both registry tiers whose
   advised plan materializes a fix — the same population `make
   fix-verify` gates on. *)
let verdicts =
  lazy
    (List.concat_map
       (fun k ->
         let checked = Kernels.Kernel.parse k in
         List.filter_map
           (fun func ->
             let advice = Fsmodel.Advisor.advise ~threads ~func checked in
             match Analysis.Fixer.verify ~advice ~threads ~func checked with
             | Analysis.Fixer.Fix v -> Some (k.Kernels.Kernel.name, v)
             | Analysis.Fixer.Nothing_to_fix _ -> None)
           (parallel_funcs checked))
       (Kernels.Registry.all () @ Kernels.Registry.micros ()))

let reparse source =
  Minic.Typecheck.check_program (Minic.Parser.parse_program source)

(* Round-trip comparisons ignore spans and the macro table: the
   transformed program is materialized post-expansion. *)
let strip p = Minic.Ast.erase_spans { p with Minic.Ast.macros = [] }

let test_roundtrip () =
  let vs = Lazy.force verdicts in
  Alcotest.(check bool) "some fixes materialize" true (vs <> []);
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        (name ^ ": verdict says it round-trips")
        true v.Analysis.Fixer.roundtrip_ok;
      let re = reparse v.Analysis.Fixer.source in
      Alcotest.(check bool)
        (name ^ ": reparse equals transformed AST")
        true
        (strip re.Minic.Typecheck.prog
        = strip v.Analysis.Fixer.transformed.Minic.Typecheck.prog);
      (* pretty is a fixed point: printing the reparse reproduces the
         emitted source byte for byte *)
      Alcotest.(check string)
        (name ^ ": pretty-printed source is byte-stable")
        v.Analysis.Fixer.source
        (Minic.Pretty.program_to_string re.Minic.Typecheck.prog))
    vs

(* Everything a caller can observe from a verdict, minus the AST. *)
let observables v =
  let open Analysis.Fixer in
  ( ( v.before.fs_fast,
      v.before.fs_ref,
      v.after.fs_fast,
      v.after.fs_ref,
      v.before.races,
      v.after.races ),
    (v.before.cost, v.after.cost, v.removal, v.cost_ratio),
    (v.roundtrip_ok, v.engines_agree, v.verified),
    v.source )

let test_jobs_determinism () =
  let k =
    match Kernels.Registry.find "struct_xy" with
    | Some k -> k
    | None -> Alcotest.fail "struct_xy kernel missing"
  in
  let checked = Kernels.Kernel.parse k in
  let func = List.hd (parallel_funcs checked) in
  let run domains =
    let advice = Fsmodel.Advisor.advise ~domains ~threads ~func checked in
    match Analysis.Fixer.verify ~advice ~threads ~func checked with
    | Analysis.Fixer.Fix v -> observables v
    | Analysis.Fixer.Nothing_to_fix r -> Alcotest.fail ("nothing to fix: " ^ r)
  in
  Alcotest.(check bool)
    "verdict identical at 1 and 4 sweep domains" true
    (run 1 = run 4)

let test_nothing_to_fix () =
  let store = Service.Api.create_store () in
  let content = read_file "fixtures/padded_struct.c" in
  let source = Service.Req.Text { name = "padded_struct.c"; content } in
  let check label kind =
    let p = Service.Api.exec store (Service.Req.v source kind) in
    Alcotest.(check int) (label ^ " exits 0") 0 p.Service.Api.code;
    Alcotest.(check bool)
      (label ^ " prints an explicit notice")
      true
      (contains p.Service.Api.err "nothing to fix")
  in
  check "eliminate" (Service.Req.Eliminate { func = None; threads });
  check "fix" (Service.Req.Fix { func = None; threads; jobs = None; json = false })

let test_cache_keys () =
  let source = Service.Req.Kernel "struct_xy" in
  let key kind =
    match Service.Req.cache_key (Service.Req.v source kind) with
    | Ok k -> k
    | Error e -> Alcotest.fail e
  in
  let fix ?(jobs = None) ?(json = false) () =
    Service.Req.Fix { func = None; threads; jobs; json }
  in
  let kf = key (fix ()) in
  Alcotest.(check bool)
    "fix and eliminate cache separately" true
    (kf <> key (Service.Req.Eliminate { func = None; threads }));
  Alcotest.(check bool)
    "fix and advise cache separately" true
    (kf <> key (Service.Req.Advise { func = None; threads; jobs = None }));
  (* jobs only parallelizes the sweep — identical results, shared key *)
  Alcotest.(check string) "jobs is not in the fix key" kf
    (key (fix ~jobs:(Some 4) ()));
  Alcotest.(check bool)
    "json output shape is in the fix key" true
    (kf <> key (fix ~json:true ()))

let () =
  Alcotest.run "fix"
    [
      ( "fix",
        [
          Alcotest.test_case "roundtrip" `Slow test_roundtrip;
          Alcotest.test_case "jobs-determinism" `Quick test_jobs_determinism;
          Alcotest.test_case "nothing-to-fix" `Quick test_nothing_to_fix;
          Alcotest.test_case "cache-keys" `Quick test_cache_keys;
        ] );
    ]

(* Tests for the cache simulator: LRU stacks (against a reference model),
   set-associative caches, private hierarchies, and the MESI-coherent
   multicore with true/false-sharing classification. *)

open Cachesim

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Lru_stack vs a reference implementation                             *)
(* ------------------------------------------------------------------ *)

module Ref_lru = struct
  type t = { mutable entries : (int * int) list; cap : int }

  let create cap = { entries = []; cap }

  let access t k v =
    let removed = List.remove_assoc k t.entries in
    t.entries <- (k, v) :: removed;
    if List.length t.entries > t.cap then begin
      let rec split acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | x :: rest -> split (x :: acc) rest
      in
      let keep, evicted = split [] t.entries in
      t.entries <- keep;
      Some evicted
    end
    else None

  let remove t k =
    let r = List.assoc_opt k t.entries in
    t.entries <- List.remove_assoc k t.entries;
    r

  let distance t k =
    let rec go i = function
      | [] -> None
      | (k', _) :: rest -> if k' = k then Some i else go (i + 1) rest
    in
    go 0 t.entries

  let to_alist t = t.entries
end

let test_cache_geom_validation () =
  let v size line assoc =
    Archspec.Cache_geom.v ~name:"t" ~size_bytes:size ~line_bytes:line
      ~associativity:assoc ()
  in
  (match v 1024 48 2 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "non-power-of-two line");
  (match v 1000 64 2 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "size not multiple of line*assoc");
  (match v 1024 64 0 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero associativity");
  let g = v 1024 64 2 in
  check Alcotest.int "lines" 16 (Archspec.Cache_geom.lines g);
  check Alcotest.int "sets" 8 (Archspec.Cache_geom.sets g);
  check Alcotest.bool "not fully assoc" false
    (Archspec.Cache_geom.fully_associative g);
  check Alcotest.int "line of addr" 2
    (Archspec.Cache_geom.line_of_addr g 130);
  let fa = v 1024 64 16 in
  check Alcotest.bool "fully assoc" true
    (Archspec.Cache_geom.fully_associative fa)

let test_arch_helpers () =
  let a = Archspec.Arch.paper_machine in
  check Alcotest.int "sockets" 4 (Archspec.Arch.sockets a);
  check Alcotest.int "line" 64 (Archspec.Arch.line_bytes a);
  check (Alcotest.float 1e-12) "cycles to seconds" 1e-9
    (Archspec.Arch.cycles_to_seconds a 2.2);
  check Alcotest.bool "pp smoke" true
    (String.length (Format.asprintf "%a" Archspec.Arch.pp a) > 20)

let test_lru_basic () =
  let s = Lru_stack.create ~capacity:2 in
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
    "no evict" None (Lru_stack.access s 1 "a");
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
    "no evict 2" None (Lru_stack.access s 2 "b");
  (* touch 1 so 2 becomes LRU *)
  ignore (Lru_stack.access s 1 "a'");
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
    "evicts 2" (Some (2, "b")) (Lru_stack.access s 3 "c");
  check (Alcotest.option Alcotest.string) "payload updated" (Some "a'")
    (Lru_stack.find s 1);
  check (Alcotest.option Alcotest.int) "distance of MRU" (Some 0)
    (Lru_stack.distance s 3);
  check (Alcotest.option Alcotest.int) "distance of 1" (Some 1)
    (Lru_stack.distance s 1)

let test_lru_update_remove () =
  let s = Lru_stack.create ~capacity:4 in
  ignore (Lru_stack.access s 1 10);
  ignore (Lru_stack.access s 2 20);
  check Alcotest.bool "update hits" true (Lru_stack.update s 1 (fun v -> v + 1));
  check (Alcotest.option Alcotest.int) "updated" (Some 11) (Lru_stack.find s 1);
  (* update must not change recency: 1 is still LRU *)
  check (Alcotest.option Alcotest.int) "recency unchanged" (Some 1)
    (Lru_stack.distance s 1);
  check Alcotest.bool "update miss" false (Lru_stack.update s 9 Fun.id);
  check (Alcotest.option Alcotest.int) "remove" (Some 11) (Lru_stack.remove s 1);
  check Alcotest.bool "gone" false (Lru_stack.mem s 1);
  Lru_stack.clear s;
  check Alcotest.int "cleared" 0 (Lru_stack.size s)

type op = Access of int | Remove of int

let op_gen =
  QCheck2.Gen.(
    map2
      (fun b k -> if b then Access (abs k mod 12) else Remove (abs k mod 12))
      bool small_int)

let prop_lru_matches_reference =
  QCheck2.Test.make ~name:"Lru_stack matches reference model" ~count:300
    QCheck2.Gen.(pair (int_range 1 6) (list_size (int_range 0 60) op_gen))
    (fun (cap, ops) ->
      let s = Lru_stack.create ~capacity:cap in
      let r = Ref_lru.create cap in
      List.for_all
        (fun op ->
          match op with
          | Access k ->
              let e1 = Lru_stack.access s k k in
              let e2 = Ref_lru.access r k k in
              e1 = e2
              && Lru_stack.to_alist s = Ref_lru.to_alist r
              && Lru_stack.distance s k = Ref_lru.distance r k
          | Remove k ->
              let r1 = Lru_stack.remove s k in
              let r2 = Ref_lru.remove r k in
              r1 = r2 && Lru_stack.to_alist s = Ref_lru.to_alist r)
        ops)

(* Targeted properties against the naive oracle: capacity eviction,
   re-reference promotion, and distance saturation. *)

let trace_gen =
  QCheck2.Gen.(
    pair (int_range 1 8) (list_size (int_range 1 80) (int_range 0 15)))

let prop_capacity_eviction =
  QCheck2.Test.make ~name:"capacity eviction is LRU and bounded" ~count:300
    trace_gen (fun (cap, keys) ->
      let s = Lru_stack.create ~capacity:cap in
      let r = Ref_lru.create cap in
      List.for_all
        (fun k ->
          (* the incoming key must never be the eviction victim, the
             victim is the oracle's bottom entry, and size stays
             within capacity *)
          let expect =
            if Ref_lru.distance r k <> None then None
            else if List.length (Ref_lru.to_alist r) < cap then None
            else
              match List.rev (Ref_lru.to_alist r) with
              | (victim, _) :: _ -> Some victim
              | [] -> None
          in
          let evicted = Lru_stack.access s k k in
          ignore (Ref_lru.access r k k);
          Option.map fst evicted = expect
          && (match evicted with
             | Some (victim, _) -> victim <> k
             | None -> true)
          && Lru_stack.size s <= cap)
        keys)

let prop_rereference_promotion =
  QCheck2.Test.make ~name:"re-reference promotes to MRU" ~count:300
    trace_gen (fun (cap, keys) ->
      let s = Lru_stack.create ~capacity:cap in
      List.for_all
        (fun k ->
          ignore (Lru_stack.access s k k);
          (* the just-touched key is at distance 0, and a second access
             (or touch) keeps the stack unchanged *)
          Lru_stack.distance s k = Some 0
          &&
          let before = Lru_stack.to_alist s in
          Lru_stack.touch s k && Lru_stack.to_alist s = before)
        keys)

let prop_distance_saturation =
  QCheck2.Test.make ~name:"distances saturate below capacity" ~count:300
    trace_gen (fun (cap, keys) ->
      let s = Lru_stack.create ~capacity:cap in
      List.iter (fun k -> ignore (Lru_stack.access s k k)) keys;
      (* every resident distance is a distinct value in [0, size) —
         eviction keeps distances strictly below capacity, so an LRU
         cache of [cap] lines hits exactly distance < cap *)
      let ds =
        List.filter_map
          (fun (k, _) -> Lru_stack.distance s k)
          (Lru_stack.to_alist s)
      in
      List.length ds = Lru_stack.size s
      && List.for_all (fun d -> d >= 0 && d < cap) ds
      && List.sort_uniq compare ds = List.init (List.length ds) Fun.id
      && List.for_all
           (fun k ->
             match Lru_stack.distance s k with
             | Some d -> d < cap
             | None -> not (Lru_stack.mem s k))
           (List.init 16 Fun.id))

(* ------------------------------------------------------------------ *)
(* Set_assoc                                                           *)
(* ------------------------------------------------------------------ *)

let test_set_assoc () =
  (* 2 sets, 2 ways: lines 0,2,4.. map to set 0 *)
  let geom =
    Archspec.Cache_geom.v ~name:"t" ~size_bytes:(4 * 64) ~line_bytes:64
      ~associativity:2 ()
  in
  let c = Set_assoc.create geom in
  check Alcotest.int "sets" 2 (Archspec.Cache_geom.sets geom);
  (match Set_assoc.access c 0 with `Miss None -> () | _ -> fail "cold 0");
  (match Set_assoc.access c 2 with `Miss None -> () | _ -> fail "cold 2");
  (match Set_assoc.access c 0 with `Hit -> () | _ -> fail "hit 0");
  (* third line in set 0 evicts LRU (=2) *)
  (match Set_assoc.access c 4 with
  | `Miss (Some 2) -> ()
  | _ -> fail "conflict evicts 2");
  (* set 1 unaffected *)
  (match Set_assoc.access c 1 with `Miss None -> () | _ -> fail "set 1 cold");
  check Alcotest.bool "invalidate" true (Set_assoc.invalidate c 0);
  check Alcotest.bool "gone" false (Set_assoc.mem c 0)

(* ------------------------------------------------------------------ *)
(* Private_cache                                                       *)
(* ------------------------------------------------------------------ *)

let tiny_l1 =
  Archspec.Cache_geom.v ~name:"L1" ~size_bytes:(2 * 64) ~line_bytes:64
    ~associativity:2 ()

let tiny_l2 =
  Archspec.Cache_geom.v ~name:"L2" ~size_bytes:(4 * 64) ~line_bytes:64
    ~associativity:4 ()

let test_private_cache_levels () =
  let p = Private_cache.create ~l1:tiny_l1 ~l2:tiny_l2 in
  (match Private_cache.access p 1 with
  | Private_cache.Priv_miss, None -> ()
  | _ -> fail "cold miss");
  (match Private_cache.access p 1 with
  | Private_cache.L1_hit, None -> ()
  | _ -> fail "L1 hit");
  ignore (Private_cache.access p 2);
  ignore (Private_cache.access p 3);
  (* line 1 fell out of 2-line L1 but stays in 4-line L2 *)
  match Private_cache.access p 1 with
  | Private_cache.L2_hit, None -> ()
  | _ -> fail "L2 hit after L1 eviction"

let test_private_cache_eviction_reported () =
  let p = Private_cache.create ~l1:tiny_l1 ~l2:tiny_l2 in
  List.iter (fun l -> ignore (Private_cache.access p l)) [ 1; 2; 3; 4 ];
  match Private_cache.access p 5 with
  | Private_cache.Priv_miss, Some 1 ->
      check Alcotest.bool "1 fully gone" false (Private_cache.holds p 1)
  | _ -> fail "L2 eviction of line 1 must be reported"

let prop_private_inclusion =
  QCheck2.Test.make ~name:"L1 content is included in L2" ~count:200
    QCheck2.Gen.(list_size (int_range 0 80) (int_range 0 15))
    (fun lines ->
      let p = Private_cache.create ~l1:tiny_l1 ~l2:tiny_l2 in
      List.iter (fun l -> ignore (Private_cache.access p l)) lines;
      (* any line that hits in L1 must also be in the private hierarchy
         (holds), and invalidation drops both levels *)
      List.for_all
        (fun l ->
          match Private_cache.access p l with
          | Private_cache.L1_hit, _ -> Private_cache.holds p l
          | _ -> true)
        lines)

(* ------------------------------------------------------------------ *)
(* Coherence                                                           *)
(* ------------------------------------------------------------------ *)

let arch = Archspec.Arch.paper_machine

let test_word_mask () =
  check Alcotest.int "first word" 0b1
    (Coherence.word_mask ~line_bytes:64 ~addr:0 ~size:4);
  check Alcotest.int "double spans 2 words" 0b1100
    (Coherence.word_mask ~line_bytes:64 ~addr:(64 + 8) ~size:8);
  check Alcotest.int "last word" (1 lsl 15)
    (Coherence.word_mask ~line_bytes:64 ~addr:60 ~size:4)

let test_coherence_cold_then_hit () =
  let c = Coherence.create ~cores:2 arch in
  let r = Coherence.read c ~core:0 ~addr:0 ~size:8 in
  check Alcotest.bool "cold" true (r.Coherence.miss = Some Coherence.Cold);
  let r2 = Coherence.read c ~core:0 ~addr:8 ~size:8 in
  check Alcotest.bool "same line hits L1" true (r2.Coherence.miss = None);
  check Alcotest.int "L1 latency" arch.Archspec.Arch.l1.Archspec.Cache_geom.hit_latency
    r2.Coherence.latency

let test_coherence_write_invalidates () =
  let c = Coherence.create ~cores:2 arch in
  ignore (Coherence.read c ~core:0 ~addr:0 ~size:8);
  ignore (Coherence.read c ~core:1 ~addr:0 ~size:8);
  check (Alcotest.list Alcotest.int) "both hold" [ 0; 1 ]
    (Coherence.holders_of_line c 0);
  ignore (Coherence.write c ~core:0 ~addr:0 ~size:8);
  check (Alcotest.list Alcotest.int) "only writer" [ 0 ]
    (Coherence.holders_of_line c 0);
  check (Alcotest.option Alcotest.int) "dirty owner" (Some 0)
    (Coherence.dirty_owner_of_line c 0);
  let st1 = Coherence.stats_of_core c 1 in
  check Alcotest.int "inval received" 1 st1.Stats.invalidations_received

let test_false_vs_true_sharing () =
  let c = Coherence.create ~cores:2 arch in
  (* core1 caches the line, core0 writes word 0, core1 re-reads word 8:
     untouched word => false sharing *)
  ignore (Coherence.read c ~core:1 ~addr:8 ~size:8);
  ignore (Coherence.write c ~core:0 ~addr:0 ~size:8);
  let r = Coherence.read c ~core:1 ~addr:8 ~size:8 in
  check Alcotest.bool "false sharing" true
    (r.Coherence.miss = Some Coherence.Coherence_false);
  (* now core0 writes word 8 and core1 reads word 8: true sharing *)
  ignore (Coherence.write c ~core:0 ~addr:8 ~size:8);
  let r2 = Coherence.read c ~core:1 ~addr:8 ~size:8 in
  check Alcotest.bool "true sharing" true
    (r2.Coherence.miss = Some Coherence.Coherence_true);
  let agg = Coherence.aggregate_stats c in
  check Alcotest.int "one FS miss" 1 agg.Stats.coherence_false;
  check Alcotest.int "one TS miss" 1 agg.Stats.coherence_true

let test_c2c_transfer () =
  let c = Coherence.create ~cores:2 arch in
  ignore (Coherence.write c ~core:0 ~addr:0 ~size:8);
  let r = Coherence.read c ~core:1 ~addr:0 ~size:8 in
  check Alcotest.bool "c2c source" true (r.Coherence.source = Coherence.C2C);
  check Alcotest.int "c2c latency" arch.Archspec.Arch.coherence_latency
    r.Coherence.latency;
  (* the dirty copy was downgraded *)
  check (Alcotest.option Alcotest.int) "no dirty owner" None
    (Coherence.dirty_owner_of_line c 0)

let test_upgrade_on_shared_write () =
  let c = Coherence.create ~cores:2 arch in
  ignore (Coherence.read c ~core:0 ~addr:0 ~size:8);
  ignore (Coherence.read c ~core:1 ~addr:0 ~size:8);
  ignore (Coherence.write c ~core:0 ~addr:0 ~size:8);
  let st0 = Coherence.stats_of_core c 0 in
  check Alcotest.int "upgrade counted" 1 st0.Stats.upgrades

let test_silent_e_to_m () =
  let c = Coherence.create ~cores:2 arch in
  ignore (Coherence.read c ~core:0 ~addr:0 ~size:8);
  ignore (Coherence.write c ~core:0 ~addr:0 ~size:8);
  let st0 = Coherence.stats_of_core c 0 in
  check Alcotest.int "no upgrade from E" 0 st0.Stats.upgrades;
  check Alcotest.int "no invalidations" 0 st0.Stats.invalidations_sent

let test_line_straddling_access () =
  let c = Coherence.create ~cores:1 arch in
  let r = Coherence.read c ~core:0 ~addr:60 ~size:8 in
  (* touches lines 0 and 1: two cold fetches *)
  check Alcotest.bool "latency of two fetches" true
    (r.Coherence.latency >= 2 * arch.Archspec.Arch.mem_latency);
  let st = Coherence.stats_of_core c 0 in
  check Alcotest.int "two cold misses" 2 st.Stats.cold_misses

let test_l3_shared_within_socket () =
  let c = Coherence.create ~cores:2 arch in
  (* core0 loads, evicts nothing; core1's miss on a clean line should hit
     the shared L3 of the socket (cores 0 and 1 share a socket) *)
  ignore (Coherence.read c ~core:0 ~addr:0 ~size:8);
  let r = Coherence.read c ~core:1 ~addr:0 ~size:8 in
  check Alcotest.bool "L3 hit" true (r.Coherence.source = Coherence.L3)

(* qcheck: MESI invariant — at most one dirty owner, and the dirty owner
   holds the line *)
let prop_single_dirty_owner =
  let acc_gen =
    QCheck2.Gen.(
      map3
        (fun core addr write -> (abs core mod 3, abs addr mod 512 * 4, write))
        small_int small_int bool)
  in
  QCheck2.Test.make ~name:"at most one dirty owner per line" ~count:100
    QCheck2.Gen.(list_size (int_range 1 120) acc_gen)
    (fun ops ->
      let c = Coherence.create ~cores:3 Archspec.Arch.small_test_machine in
      List.iter
        (fun (core, addr, write) ->
          ignore (Coherence.access c ~core ~addr ~size:4 ~write))
        ops;
      List.for_all
        (fun line ->
          match Coherence.dirty_owner_of_line c line with
          | None -> true
          | Some o ->
              let holders = Coherence.holders_of_line c line in
              holders = [ o ])
        (List.init 40 (fun l -> l)))

let test_read_hit_keeps_dirty () =
  let c = Coherence.create ~cores:2 arch in
  ignore (Coherence.write c ~core:0 ~addr:0 ~size:8);
  (* the owner's own read hit must not disturb the Modified state *)
  ignore (Coherence.read c ~core:0 ~addr:8 ~size:8);
  check (Alcotest.option Alcotest.int) "still dirty" (Some 0)
    (Coherence.dirty_owner_of_line c 0)

let test_writeback_on_eviction () =
  let arch = Archspec.Arch.small_test_machine in
  let c = Coherence.create ~cores:1 arch in
  (* dirty a line, then push enough lines through the tiny private caches
     to evict it *)
  ignore (Coherence.write c ~core:0 ~addr:0 ~size:4);
  let lines = Archspec.Cache_geom.lines arch.Archspec.Arch.l2 in
  for l = 1 to lines + 2 do
    ignore (Coherence.read c ~core:0 ~addr:(l * 64) ~size:4)
  done;
  let st = Coherence.stats_of_core c 0 in
  check Alcotest.bool "writeback happened" true (st.Stats.writebacks >= 1);
  check (Alcotest.option Alcotest.int) "no dirty owner" None
    (Coherence.dirty_owner_of_line c 0);
  (* refetch finds it clean in L3 (written back there) *)
  let r = Coherence.read c ~core:0 ~addr:0 ~size:4 in
  check Alcotest.bool "L3 after writeback" true
    (r.Coherence.source = Coherence.L3);
  check Alcotest.bool "classified capacity" true
    (r.Coherence.miss = Some Coherence.Capacity)

let test_upgrade_latency_charged () =
  let c = Coherence.create ~cores:2 arch in
  ignore (Coherence.read c ~core:0 ~addr:0 ~size:8);
  ignore (Coherence.read c ~core:1 ~addr:0 ~size:8);
  let hit = Coherence.read c ~core:0 ~addr:0 ~size:8 in
  let upg = Coherence.write c ~core:0 ~addr:0 ~size:8 in
  check Alcotest.bool "upgrade costs more than a plain hit" true
    (upg.Coherence.latency > hit.Coherence.latency)

(* ------------------------------------------------------------------ *)
(* Int_table vs Hashtbl                                                *)
(* ------------------------------------------------------------------ *)

let prop_int_table_matches_hashtbl =
  (* random set/remove/get workloads, keys from a small range so probes
     collide and deletions exercise the backward shift *)
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map2 (fun k v -> `Set (k, v)) (int_range 0 40) (int_range 0 1000);
          map (fun k -> `Remove k) (int_range 0 40);
          map (fun k -> `Get k) (int_range 0 40);
        ])
  in
  QCheck2.Test.make ~name:"Int_table matches Hashtbl" ~count:300
    QCheck2.Gen.(list_size (int_range 0 120) op_gen)
    (fun ops ->
      let t = Int_table.create ~initial:2 () in
      let h = Hashtbl.create 16 in
      List.iter
        (function
          | `Set (k, v) ->
              Int_table.set t k v;
              Hashtbl.replace h k v
          | `Remove k ->
              let was = Int_table.remove t k in
              if was <> Hashtbl.mem h k then
                QCheck2.Test.fail_report "remove presence disagrees";
              Hashtbl.remove h k
          | `Get k ->
              if
                Int_table.find_opt t k <> Hashtbl.find_opt h k
                || Int_table.mem t k <> Hashtbl.mem h k
                || Int_table.get t k ~default:(-1)
                   <> Option.value (Hashtbl.find_opt h k) ~default:(-1)
              then QCheck2.Test.fail_report "lookup disagrees")
        ops;
      if Int_table.length t <> Hashtbl.length h then
        QCheck2.Test.fail_report "length disagrees";
      let sum = Int_table.fold (fun k v acc -> (k * 31) + v + acc) t 0 in
      let hsum = Hashtbl.fold (fun k v acc -> (k * 31) + v + acc) h 0 in
      sum = hsum)

let test_int_table_slots () =
  let t = Int_table.create () in
  Int_table.set t 7 "a";
  Int_table.set t 12 "b";
  let s = Int_table.find_slot t 7 in
  check Alcotest.bool "slot found" true (s >= 0);
  check Alcotest.int "key at slot" 7 (Int_table.key_at t s);
  check Alcotest.string "value at slot" "a" (Int_table.value_at t s);
  Int_table.set_at t s "c";
  check Alcotest.(option string) "set_at visible" (Some "c")
    (Int_table.find_opt t 7);
  check Alcotest.int "absent is -1" (-1) (Int_table.find_slot t 99);
  Int_table.clear t;
  check Alcotest.int "clear empties" 0 (Int_table.length t)

(* ------------------------------------------------------------------ *)
(* Bitset / popcount                                                   *)
(* ------------------------------------------------------------------ *)

let naive_popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let prop_popcount_matches_naive =
  (* spread bits across the full 63-bit word: the SWAR byte-sum only
     breaks when high bytes are populated, so small ints never catch the
     missing 32-bit mask *)
  QCheck2.Test.make ~name:"SWAR popcount matches the bit loop" ~count:500
    QCheck2.Gen.(
      map2
        (fun hi lo -> (hi lsl 31) lxor lo)
        (int_bound ((1 lsl 31) - 1))
        (int_bound ((1 lsl 31) - 1)))
    (fun x -> Bitset.popcount x = naive_popcount x)

let test_popcount_edges () =
  check Alcotest.int "0" 0 (Bitset.popcount 0);
  check Alcotest.int "max_int" 62 (Bitset.popcount max_int);
  check Alcotest.int "single high bit" 1 (Bitset.popcount (1 lsl 62));
  check Alcotest.int "62-thread mask" 62 (Bitset.popcount ((1 lsl 62) - 1))

let prop_bitset_matches_bool_array =
  let op_gen =
    QCheck2.Gen.(
      oneof
        [
          map (fun i -> `Set i) (int_range 0 99);
          map (fun i -> `Unset i) (int_range 0 99);
        ])
  in
  QCheck2.Test.make ~name:"Bitset matches a bool array" ~count:300
    QCheck2.Gen.(list_size (int_range 0 80) op_gen)
    (fun ops ->
      let b = Bitset.create ~bits:100 in
      let a = Array.make 100 false in
      List.iter
        (function
          | `Set i ->
              Bitset.set b i;
              a.(i) <- true
          | `Unset i ->
              Bitset.unset b i;
              a.(i) <- false)
        ops;
      let count = Array.fold_left (fun n x -> if x then n + 1 else n) 0 a in
      Bitset.count b = count
      && Bitset.is_empty b = (count = 0)
      && Array.for_all (fun i -> Bitset.mem b i = a.(i))
           (Array.init 100 Fun.id)
      && Array.for_all
           (fun i ->
             Bitset.count_excluding b i
             = count - (if a.(i) then 1 else 0))
           (Array.init 100 Fun.id))

let test_stats_sum_sub () =
  let a = Stats.create () in
  a.Stats.loads <- 5;
  a.Stats.coherence_false <- 2;
  let b = Stats.create () in
  b.Stats.loads <- 3;
  let s = Stats.sum [ a; b ] in
  check Alcotest.int "sum loads" 8 s.Stats.loads;
  let d = Stats.sub s b in
  check Alcotest.int "sub loads" 5 d.Stats.loads;
  check Alcotest.int "accesses" 8 (Stats.accesses s);
  check Alcotest.int "coh misses" 2 (Stats.coherence_misses s)

let () =
  Alcotest.run "cachesim"
    [
      ( "archspec",
        [
          Alcotest.test_case "geometry validation" `Quick
            test_cache_geom_validation;
          Alcotest.test_case "arch helpers" `Quick test_arch_helpers;
        ] );
      ( "lru_stack",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "update/remove" `Quick test_lru_update_remove;
          QCheck_alcotest.to_alcotest prop_lru_matches_reference;
          QCheck_alcotest.to_alcotest prop_capacity_eviction;
          QCheck_alcotest.to_alcotest prop_rereference_promotion;
          QCheck_alcotest.to_alcotest prop_distance_saturation;
        ] );
      ("set_assoc", [ Alcotest.test_case "sets" `Quick test_set_assoc ]);
      ( "private_cache",
        [
          Alcotest.test_case "levels" `Quick test_private_cache_levels;
          Alcotest.test_case "eviction reported" `Quick
            test_private_cache_eviction_reported;
          QCheck_alcotest.to_alcotest prop_private_inclusion;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "word mask" `Quick test_word_mask;
          Alcotest.test_case "cold then hit" `Quick
            test_coherence_cold_then_hit;
          Alcotest.test_case "write invalidates" `Quick
            test_coherence_write_invalidates;
          Alcotest.test_case "false vs true sharing" `Quick
            test_false_vs_true_sharing;
          Alcotest.test_case "cache-to-cache" `Quick test_c2c_transfer;
          Alcotest.test_case "upgrade" `Quick test_upgrade_on_shared_write;
          Alcotest.test_case "silent E->M" `Quick test_silent_e_to_m;
          Alcotest.test_case "line straddle" `Quick
            test_line_straddling_access;
          Alcotest.test_case "shared L3" `Quick test_l3_shared_within_socket;
          QCheck_alcotest.to_alcotest prop_single_dirty_owner;
          Alcotest.test_case "read hit keeps dirty" `Quick
            test_read_hit_keeps_dirty;
          Alcotest.test_case "writeback on eviction" `Quick
            test_writeback_on_eviction;
          Alcotest.test_case "upgrade latency" `Quick
            test_upgrade_latency_charged;
        ] );
      ( "int_table",
        [
          QCheck_alcotest.to_alcotest prop_int_table_matches_hashtbl;
          Alcotest.test_case "slot API" `Quick test_int_table_slots;
        ] );
      ( "bitset",
        [
          QCheck_alcotest.to_alcotest prop_popcount_matches_naive;
          Alcotest.test_case "popcount edges" `Quick test_popcount_edges;
          QCheck_alcotest.to_alcotest prop_bitset_matches_bool_array;
        ] );
      ("stats", [ Alcotest.test_case "sum/sub" `Quick test_stats_sum_sub ]);
    ]

/* Already padded: each element owns a full cache line, so the advisor
   attributes no false sharing and eliminate/fix report nothing to do. */
struct slot {
  double v;
  char pad[56];
};

struct slot acc[256];

void accumulate(void) {
  int i;
  int r;
  #pragma omp parallel for private(i,r) schedule(static,1)
  for (i = 0; i < 256; i++) {
    for (r = 0; r < 8; r++) {
      acc[i].v += 1.0;
    }
  }
}

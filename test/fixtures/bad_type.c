/* Well-formed syntax, ill-typed body: [m] is never declared — the CLI
   must fail with a type error naming the identifier and exit 1. */
double a[64];

void f() {
  int i;
  #pragma omp parallel for
  for (i = 0; i < 64; i += 1) {
    a[i] = a[m] + 1.0;
  }
}

/* Bounds that divide: both nests bound an inner loop by a quotient of
   the outer variable, which falls outside the affine fragment -- the
   Banerjee tier reports analysis/unknown for every pair here.  The
   exact tier models each quotient with an auxiliary variable and its
   two remainder inequalities, so both nests get definite verdicts:

   - thirds: the 3-variable subscript 32*i + 8*j + k reaches 256 bytes
     past the start of row i once j >= 4 (admitted when i >= 7), which
     is exactly where row i + 1 starts -- a certified loop-carried
     race, with witness.
   - pads: each iteration i touches bytes [512*i, 512*i + 63], exactly
     one cache line of its own -- certified independent, so a nest
     that used to lint as unknown now lints clean. */

double w[2048];
double z[4096];

void thirds() {
  int i;
  int j;
  int k;
  #pragma omp parallel for private(i,j,k) schedule(static,1)
  for (i = 0; i < 12; i += 1) {
    for (j = 0; j < (i + 2) / 2; j += 1) {
      for (k = 0; k < 4; k += 1) {
        w[32 * i + 8 * j + k] = 1.0;
      }
    }
  }
}

void pads() {
  int i;
  int j;
  #pragma omp parallel for private(i,j) schedule(static,1)
  for (i = 0; i < 32; i += 1) {
    for (j = 0; j < (i + 1) / 4; j += 1) {
      z[64 * i + j] = 0.5;
    }
  }
}

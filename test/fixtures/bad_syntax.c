/* Deliberately malformed: missing semicolon and unbalanced brace — the
   CLI must fail with a parse error and exit 1. */
double a[64];

void f() {
  int i;
  #pragma omp parallel for
  for (i = 0; i < 64; i += 1) {
    a[i] = a[i] + 1.0
}

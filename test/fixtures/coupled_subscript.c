/* Coupled subscripts: the write A[i][j] and the read A[j][i + 1] mix
   both loop variables in both dimensions, so dimension-by-dimension
   reasoning only establishes a may-conflict.  The exact tier solves
   the coupled system and certifies the loop-carried dependence with a
   concrete witness pair (e.g. iteration (0, 2) writes the byte that
   iteration (1, 0) reads). */

double A[64][64];

void seed() {
  int i;
  int j;
  for (i = 0; i < 64; i += 1) {
    for (j = 0; j < 64; j += 1) {
      A[i][j] = 0.5 * i + 0.25 * j;
    }
  }
}

void fold() {
  int i;
  int j;
  #pragma omp parallel for private(i,j) schedule(static,1)
  for (i = 0; i < 63; i += 1) {
    for (j = 0; j < 63; j += 1) {
      A[i][j] = A[j][i + 1] * 0.5;
    }
  }
}

(* The statistical test tier for seeded schedules: every law the
   distributional verdicts rest on, checked over the kernel registry.

   - replay determinism: a (kind, seed) pair is one value, not a sample;
   - cross-engine equality: fast and reference agree on every seed, not
     just on the static deal;
   - static equivalence: a one-thread team, or one chunk covering the
     whole trip, collapses dynamic dispatch back to the static deal;
   - the Cole-Ramachandran steal bound: work stealing departs from the
     block deal only at steals, so the extra FS cases per seed are
     bounded by O(chunk) per recorded steal — checked over >= 32 seeds
     on every registry kernel;
   - Dist summaries are consistent with their own samples. *)

open Fsmodel

let check = Alcotest.check

let threads = 4

let setup (kernel : Kernels.Kernel.t) =
  let checked = Kernels.Kernel.parse kernel in
  let nest =
    Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
      ~params:[ ("num_threads", threads) ]
  in
  (checked, nest)

let run ?engine cfg ~nest ~checked = Model.run ?engine cfg ~nest ~checked

let par_trip nest =
  Loopir.Loop_nest.trip_count
    (Loopir.Loop_nest.parallel_loop nest)
    ~env:(fun v -> if v = "num_threads" then Some threads else None)

(* small instances for the tests that also run the reference engine *)
let small_kernels () =
  [
    Kernels.Heat.kernel ~rows:6 ~cols:520 ();
    Kernels.Saxpy.kernel ~n:640 ();
    Kernels.Transpose.kernel ~n:48 ();
  ]

let kinds =
  [
    Ompsched.Dispatch.Dynamic { chunk = 1 };
    Ompsched.Dispatch.Guided { min_chunk = 2 };
    Ompsched.Dispatch.Work_stealing { chunk = 2 };
  ]

(* ------------------------------------------------------------------ *)
(* Replay determinism                                                  *)
(* ------------------------------------------------------------------ *)

let test_replay_deterministic () =
  List.iter
    (fun kernel ->
      let checked, nest = setup kernel in
      let cfg = Model.default_config ~threads () in
      List.iter
        (fun kind ->
          List.iter
            (fun seed ->
              let c = { cfg with Model.sched = Some (kind, seed) } in
              let a = run c ~nest ~checked and b = run c ~nest ~checked in
              check Alcotest.int
                (Printf.sprintf "%s %s seed %d fs"
                   kernel.Kernels.Kernel.name
                   (Ompsched.Dispatch.kind_name kind)
                   seed)
                a.Model.fs_cases b.Model.fs_cases;
              check Alcotest.int "steals replay" a.Model.steals
                b.Model.steals;
              check Alcotest.int "steps replay" a.Model.thread_steps
                b.Model.thread_steps)
            [ 0; 1; 5 ])
        kinds)
    (small_kernels ())

(* on at least one kernel the work-stealing distribution must be
   non-degenerate: distinct seeds produce distinct schedules (else the
   mean/p95 summaries are statistics of a constant) *)
let test_seeds_vary () =
  let checked, nest = setup (Kernels.Heat.kernel ~rows:6 ~cols:520 ()) in
  let cfg = Model.default_config ~threads () in
  let plans =
    List.init 16 (fun seed ->
        let c =
          {
            cfg with
            Model.sched =
              Some (Ompsched.Dispatch.Work_stealing { chunk = 2 }, seed);
          }
        in
        let r = run c ~nest ~checked in
        (r.Model.fs_cases, r.Model.steals))
  in
  let distinct = List.sort_uniq compare plans in
  if List.length distinct < 2 then
    Alcotest.fail "16 work-stealing seeds all produced the same execution"

(* ------------------------------------------------------------------ *)
(* Cross-engine equality, per seed                                     *)
(* ------------------------------------------------------------------ *)

let test_engines_agree_per_seed () =
  List.iter
    (fun kernel ->
      let checked, nest = setup kernel in
      let cfg = Model.default_config ~threads () in
      List.iter
        (fun kind ->
          List.iter
            (fun seed ->
              let c = { cfg with Model.sched = Some (kind, seed) } in
              let fast = run ~engine:`Fast c ~nest ~checked in
              let refr = run ~engine:`Reference c ~nest ~checked in
              let name =
                Printf.sprintf "%s %s seed %d" kernel.Kernels.Kernel.name
                  (Ompsched.Dispatch.kind_name kind)
                  seed
              in
              check Alcotest.int (name ^ " fs") refr.Model.fs_cases
                fast.Model.fs_cases;
              check Alcotest.int (name ^ " steps") refr.Model.thread_steps
                fast.Model.thread_steps;
              check Alcotest.int (name ^ " iters")
                refr.Model.iterations_evaluated fast.Model.iterations_evaluated;
              check Alcotest.int (name ^ " steals") refr.Model.steals
                fast.Model.steals)
            [ 0; 1; 2; 3; 4 ])
        kinds)
    (small_kernels ())

(* ------------------------------------------------------------------ *)
(* Static equivalence                                                  *)
(* ------------------------------------------------------------------ *)

let test_static_equivalence () =
  List.iter
    (fun kernel ->
      let checked, nest = setup kernel in
      let cfg = Model.default_config ~threads () in
      (* the 1-thread static deal is the common reference execution;
         keep num_threads bound to the team size the bounds were
         lowered with *)
      let solo =
        (run { cfg with Model.threads = 1 } ~nest ~checked).Model.fs_cases
      in
      let one_thread_dyn =
        (run
           {
             cfg with
             Model.threads = 1;
             sched = Some (Ompsched.Dispatch.Dynamic { chunk = 1 }, 11);
           }
           ~nest ~checked)
          .Model.fs_cases
      in
      let trip = max 1 (par_trip nest) in
      let whole_chunk =
        (run
           {
             cfg with
             Model.sched = Some (Ompsched.Dispatch.Dynamic { chunk = trip }, 7);
           }
           ~nest ~checked)
          .Model.fs_cases
      in
      let name = kernel.Kernels.Kernel.name in
      check Alcotest.int (name ^ ": 1-thread dynamic = 1-thread static") solo
        one_thread_dyn;
      check Alcotest.int (name ^ ": trip-chunk dynamic = 1-thread static")
        solo whole_chunk)
    (small_kernels ())

(* ------------------------------------------------------------------ *)
(* Cole-Ramachandran steal bound, 32 seeds, every registry kernel      *)
(* ------------------------------------------------------------------ *)

let test_steal_bound () =
  List.iter
    (fun (kernel : Kernels.Kernel.t) ->
      let checked, nest = setup kernel in
      let cfg = Model.default_config ~threads () in
      let trip = max 1 (par_trip nest) in
      (* the stealing baseline is the block deal (the partition the
         deques start from), not the kernel's schedule(static,1) pragma *)
      let block =
        {
          cfg with
          Model.chunk =
            Some (Ompsched.Schedule.block_chunk ~threads ~total:trip);
        }
      in
      let fs_block = (run block ~nest ~checked).Model.fs_cases in
      let nrefs = List.length nest.Loopir.Loop_nest.refs in
      let ws_chunk = 2 in
      (* a relocated chunk carries [ws_chunk] parallel iterations, each
         expanding to the nest's inner work: the O(chunk) of the bound
         is in units of innermost accesses, not parallel iterations *)
      let total =
        Loopir.Loop_nest.total_iterations nest ~env:(fun v ->
            if v = "num_threads" then Some threads else None)
      in
      let inner_per = max 1 (total / trip) in
      let per_steal = 2 * threads * nrefs * ws_chunk * inner_per in
      for seed = 0 to 31 do
        let r =
          run
            {
              cfg with
              Model.sched =
                Some (Ompsched.Dispatch.Work_stealing { chunk = ws_chunk }, seed);
            }
            ~nest ~checked
        in
        let bound = fs_block + (per_steal * r.Model.steals) in
        if r.Model.fs_cases > bound then
          Alcotest.failf
            "%s seed %d: %d FS case(s) with %d steal(s) exceeds block deal \
             %d + %d per steal"
            kernel.Kernels.Kernel.name seed r.Model.fs_cases r.Model.steals
            fs_block per_steal
      done)
    (Kernels.Registry.all ())

(* ------------------------------------------------------------------ *)
(* Dist summaries                                                      *)
(* ------------------------------------------------------------------ *)

let test_dist_consistent () =
  let checked, nest = setup (Kernels.Saxpy.kernel ~n:640 ()) in
  let cfg = Model.default_config ~threads () in
  let kind = Ompsched.Dispatch.Work_stealing { chunk = 2 } in
  let d =
    Analysis.Dist.run ~seeds:(Analysis.Dist.seeds_upto 16) ~kind cfg ~nest
      ~checked
  in
  check Alcotest.int "16 samples" 16 (Array.length d.Analysis.Dist.fs);
  (* every sample is an independent engine run of the same seed *)
  Array.iteri
    (fun i seed ->
      let r =
        run { cfg with Model.sched = Some (kind, seed) } ~nest ~checked
      in
      check Alcotest.int
        (Printf.sprintf "sample %d matches direct run" i)
        r.Model.fs_cases d.Analysis.Dist.fs.(i);
      check Alcotest.int
        (Printf.sprintf "steals %d match direct run" i)
        r.Model.steals d.Analysis.Dist.steals.(i))
    d.Analysis.Dist.seeds;
  (* the summary statistics describe the samples *)
  let n = Array.length d.Analysis.Dist.fs in
  let mean =
    float_of_int (Array.fold_left ( + ) 0 d.Analysis.Dist.fs)
    /. float_of_int n
  in
  check (Alcotest.float 1e-9) "mean" mean d.Analysis.Dist.mean;
  let sorted = Array.copy d.Analysis.Dist.fs in
  Array.sort compare sorted;
  check Alcotest.int "min" sorted.(0) d.Analysis.Dist.min_fs;
  check Alcotest.int "max" sorted.(n - 1) d.Analysis.Dist.max_fs;
  check Alcotest.bool "p95 within range" true
    (d.Analysis.Dist.p95 >= d.Analysis.Dist.min_fs
    && d.Analysis.Dist.p95 <= d.Analysis.Dist.max_fs);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let s = Analysis.Dist.summary d in
  check Alcotest.bool "summary mentions the seed count" true
    (contains s "16 seed(s)");
  check Alcotest.bool "summary quotes the steal rate" true
    (contains s "steal(s)/seed")

let () =
  Alcotest.run "sched"
    [
      ( "laws",
        [
          Alcotest.test_case "replay determinism" `Quick
            test_replay_deterministic;
          Alcotest.test_case "seeds vary" `Quick test_seeds_vary;
          Alcotest.test_case "engines agree per seed" `Quick
            test_engines_agree_per_seed;
          Alcotest.test_case "static equivalence" `Quick
            test_static_equivalence;
          Alcotest.test_case "steal bound (32 seeds, all kernels)" `Quick
            test_steal_bound;
          Alcotest.test_case "dist summaries" `Quick test_dist_consistent;
        ] );
    ]

(* Tests for the OpenMP scheduling model. *)

open Ompsched

let check = Alcotest.check
let fail = Alcotest.fail

let test_owner_round_robin () =
  let s = Schedule.make ~threads:3 ~chunk:2 ~total:12 in
  (* chunks: [0,1]->t0 [2,3]->t1 [4,5]->t2 [6,7]->t0 ... *)
  check Alcotest.int "iter 0" 0 (Schedule.owner s 0);
  check Alcotest.int "iter 1" 0 (Schedule.owner s 1);
  check Alcotest.int "iter 2" 1 (Schedule.owner s 2);
  check Alcotest.int "iter 5" 2 (Schedule.owner s 5);
  check Alcotest.int "iter 6 wraps" 0 (Schedule.owner s 6);
  check Alcotest.int "chunk run of 5" 0 (Schedule.chunk_run_of_iter s 5);
  check Alcotest.int "chunk run of 6" 1 (Schedule.chunk_run_of_iter s 6)

let test_iters_of_thread () =
  let s = Schedule.make ~threads:2 ~chunk:2 ~total:10 in
  check (Alcotest.list Alcotest.int) "thread 0" [ 0; 1; 4; 5; 8; 9 ]
    (Schedule.iters_of_thread s ~tid:0);
  check (Alcotest.list Alcotest.int) "thread 1" [ 2; 3; 6; 7 ]
    (Schedule.iters_of_thread s ~tid:1)

let test_nth_iter () =
  let s = Schedule.make ~threads:2 ~chunk:2 ~total:10 in
  check (Alcotest.option Alcotest.int) "t0 k2" (Some 4)
    (Schedule.nth_iter_of_thread s ~tid:0 2);
  check (Alcotest.option Alcotest.int) "t1 past end" None
    (Schedule.nth_iter_of_thread s ~tid:1 4);
  check (Alcotest.option Alcotest.int) "bad tid" None
    (Schedule.nth_iter_of_thread s ~tid:7 0)

let test_counts () =
  let s = Schedule.make ~threads:2 ~chunk:2 ~total:10 in
  check Alcotest.int "t0" 6 (Schedule.count_of_thread s ~tid:0);
  check Alcotest.int "t1" 4 (Schedule.count_of_thread s ~tid:1);
  check Alcotest.int "max steps" 6 (Schedule.max_steps_per_thread s)

let test_block_chunk () =
  check Alcotest.int "even" 25 (Schedule.block_chunk ~threads:4 ~total:100);
  check Alcotest.int "uneven rounds up" 26
    (Schedule.block_chunk ~threads:4 ~total:101);
  check Alcotest.int "never zero" 1 (Schedule.block_chunk ~threads:8 ~total:0);
  (* with the block chunk every thread gets at most one chunk *)
  let total = 101 and threads = 4 in
  let s =
    Schedule.make ~threads ~chunk:(Schedule.block_chunk ~threads ~total) ~total
  in
  check Alcotest.int "one run" 1 (Schedule.chunk_runs_total s);
  check Alcotest.bool "contiguous per thread" true
    (List.for_all
       (fun tid ->
         match Schedule.iters_of_thread s ~tid with
         | [] -> true
         | first :: _ as l ->
             List.mapi (fun k _ -> first + k) l = l)
       (List.init threads (fun t -> t)))

let test_chunk_runs_total () =
  let s = Schedule.make ~threads:4 ~chunk:3 ~total:100 in
  (* 100 / (4*3) = 8.33 -> 9 *)
  check Alcotest.int "runs" 9 (Schedule.chunk_runs_total s)

let test_degenerate () =
  let s = Schedule.make ~threads:8 ~chunk:4 ~total:0 in
  check Alcotest.int "no iters" 0 (Schedule.count_of_thread s ~tid:0);
  check Alcotest.int "no runs" 0 (Schedule.chunk_runs_total s);
  match Schedule.make ~threads:0 ~chunk:1 ~total:1 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "threads=0 must be rejected"

(* qcheck: the schedule partitions 0..total-1 exactly *)
let sched_gen =
  QCheck2.Gen.(
    map3
      (fun threads chunk total ->
        Schedule.make ~threads:(1 + (abs threads mod 8))
          ~chunk:(1 + (abs chunk mod 7))
          ~total:(abs total mod 200))
      small_int small_int small_int)

let prop_partition =
  QCheck2.Test.make ~name:"iters_of_thread partitions the iteration space"
    ~count:200 sched_gen (fun s ->
      let all =
        List.concat
          (List.init s.Schedule.threads (fun tid ->
               Schedule.iters_of_thread s ~tid))
      in
      let sorted = List.sort compare all in
      sorted = List.init s.Schedule.total (fun i -> i))

let prop_owner_consistent =
  QCheck2.Test.make ~name:"owner agrees with iters_of_thread" ~count:200
    sched_gen (fun s ->
      List.for_all
        (fun tid ->
          List.for_all
            (fun q -> Schedule.owner s q = tid)
            (Schedule.iters_of_thread s ~tid))
        (List.init s.Schedule.threads (fun t -> t)))

let prop_counts_sum =
  QCheck2.Test.make ~name:"count_of_thread sums to total" ~count:200 sched_gen
    (fun s ->
      List.fold_left
        (fun acc tid -> acc + Schedule.count_of_thread s ~tid)
        0
        (List.init s.Schedule.threads (fun t -> t))
      = s.Schedule.total)

let prop_nth_matches_list =
  QCheck2.Test.make ~name:"nth_iter_of_thread enumerates iters_of_thread"
    ~count:200 sched_gen (fun s ->
      List.for_all
        (fun tid ->
          let l = Schedule.iters_of_thread s ~tid in
          List.mapi (fun k _ -> Schedule.nth_iter_of_thread s ~tid k) l
          = List.map Option.some l
          && Schedule.nth_iter_of_thread s ~tid (List.length l) = None)
        (List.init s.Schedule.threads (fun t -> t)))

(* ------------------------------------------------------------------ *)
(* Seeded PRNG streams                                                 *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let draws () =
    let t = Prng.stream ~seed:5 ~index:3 in
    List.init 32 (fun _ -> Prng.next t)
  in
  check (Alcotest.list Alcotest.int64) "same (seed, index), same stream"
    (draws ()) (draws ())

(* distinct per-deque indices must give independent streams: across 16
   indices x 256 draws, splitmix64's finalizer makes a collision
   astronomically unlikely, so any repeat means the index folding is
   broken (e.g. two deques sharing a stream) *)
let test_prng_stream_independence () =
  let tbl = Hashtbl.create 8192 in
  for index = 0 to 15 do
    let t = Prng.stream ~seed:42 ~index in
    for draw = 0 to 255 do
      let v = Prng.next t in
      (match Hashtbl.find_opt tbl v with
      | Some (i0, d0) ->
          Alcotest.failf
            "streams %d (draw %d) and %d (draw %d) collide on %Ld" i0 d0
            index draw v
      | None -> ());
      Hashtbl.add tbl v (index, draw)
    done
  done;
  (* and the finalizer itself is not the identity on small inputs *)
  check Alcotest.bool "mix moves small inputs" true
    (Prng.mix 1L <> 1L && Prng.mix 2L <> 2L && Prng.mix 1L <> Prng.mix 2L)

(* victim selection draws uniformly from the candidate deques: over 10k
   draws every candidate's frequency is within 20% of expectation *)
let prop_pick_victim_uniform =
  QCheck2.Test.make ~name:"pick_victim is uniform over 10k draws" ~count:30
    QCheck2.Gen.(
      pair (int_range 2 8) (int_range 0 1000))
    (fun (ncand, seed) ->
      let candidates = Array.init ncand (fun i -> (i * 3) + 1) in
      let t = Prng.stream ~seed ~index:9 in
      let counts = Hashtbl.create 8 in
      let draws = 10_000 in
      for _ = 1 to draws do
        let v = Dispatch.pick_victim t ~candidates in
        if not (Array.exists (( = ) v) candidates) then
          QCheck2.Test.fail_reportf "drew %d, not a candidate" v;
        Hashtbl.replace counts v
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
      done;
      let expected = float_of_int draws /. float_of_int ncand in
      Array.for_all
        (fun c ->
          let n =
            float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts c))
          in
          Float.abs (n -. expected) <= 0.2 *. expected)
        candidates)

(* ------------------------------------------------------------------ *)
(* Dispatch plans                                                      *)
(* ------------------------------------------------------------------ *)

let dispatch_kinds =
  [
    Dispatch.Dynamic { chunk = 1 };
    Dispatch.Dynamic { chunk = 3 };
    Dispatch.Guided { min_chunk = 2 };
    Dispatch.Work_stealing { chunk = 1 };
    Dispatch.Work_stealing { chunk = 4 };
  ]

let plan_gen =
  QCheck2.Gen.(
    map3
      (fun threads total (kind, seed) ->
        (1 + (threads mod 8), total mod 150, List.nth dispatch_kinds kind, seed))
      (map abs small_int) (map abs small_int)
      (pair (int_range 0 (List.length dispatch_kinds - 1)) (int_range 0 99)))

let prop_plan_partitions =
  QCheck2.Test.make ~name:"every plan partitions the iteration space"
    ~count:300 plan_gen (fun (threads, total, kind, seed) ->
      let p = Dispatch.plan ~threads ~total ~seed kind in
      let all =
        List.concat
          (List.init threads (fun tid -> Dispatch.iters_of_thread p ~tid))
      in
      List.sort compare all = List.init total (fun i -> i))

let prop_plan_replays =
  QCheck2.Test.make ~name:"same (kind, seed), same plan" ~count:200 plan_gen
    (fun (threads, total, kind, seed) ->
      let seqs p =
        List.init threads (fun tid -> Dispatch.iters_of_thread p ~tid)
      in
      let a = Dispatch.plan ~threads ~total ~seed kind
      and b = Dispatch.plan ~threads ~total ~seed kind in
      seqs a = seqs b && Dispatch.steals a = Dispatch.steals b)

let prop_plan_static_equiv =
  QCheck2.Test.make
    ~name:"one thread, or one chunk covering the trip, is the static deal"
    ~count:200 plan_gen (fun (threads, total, kind, seed) ->
      let in_order = List.init total (fun i -> i) in
      let solo = Dispatch.plan ~threads:1 ~total ~seed kind in
      let whole =
        Dispatch.plan ~threads ~total ~seed
          (Dispatch.Dynamic { chunk = max 1 total })
      in
      Dispatch.iters_of_thread solo ~tid:0 = in_order
      && Dispatch.steals solo = 0
      && Dispatch.iters_of_thread whole ~tid:0 = in_order)

let prop_no_steals_without_stealing =
  QCheck2.Test.make ~name:"dynamic and guided plans never steal" ~count:200
    plan_gen (fun (threads, total, _, seed) ->
      Dispatch.steals (Dispatch.plan ~threads ~total ~seed
                         (Dispatch.Dynamic { chunk = 2 }))
      = 0
      && Dispatch.steals (Dispatch.plan ~threads ~total ~seed
                            (Dispatch.Guided { min_chunk = 1 }))
         = 0)

let test_team () =
  let t = Team.make ~threads:24 () in
  check Alcotest.int "socket of 0" 0 (Team.socket_of t 0);
  check Alcotest.int "socket of 12" 1 (Team.socket_of t 12);
  check Alcotest.bool "share" true (Team.share_socket t 0 11);
  check Alcotest.bool "differ" false (Team.share_socket t 11 12);
  (match Team.make ~threads:49 () with
  | exception Invalid_argument _ -> ()
  | _ -> fail "too many threads");
  match Team.make ~threads:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero threads"

let test_overhead () =
  let o = Overhead.default in
  let a = Overhead.parallel_overhead_cycles o ~threads:2 ~chunks_per_thread:1 in
  let b = Overhead.parallel_overhead_cycles o ~threads:8 ~chunks_per_thread:1 in
  check Alcotest.bool "grows with team" true (b > a);
  let c = Overhead.parallel_overhead_cycles o ~threads:2 ~chunks_per_thread:9 in
  check Alcotest.bool "grows with chunks" true (c > a);
  check Alcotest.int "loop overhead linear"
    (10 * o.Overhead.loop_per_iter)
    (Overhead.loop_overhead_cycles o ~iters:10)

let () =
  Alcotest.run "ompsched"
    [
      ( "schedule",
        [
          Alcotest.test_case "round robin" `Quick test_owner_round_robin;
          Alcotest.test_case "iters of thread" `Quick test_iters_of_thread;
          Alcotest.test_case "nth iter" `Quick test_nth_iter;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "block chunk" `Quick test_block_chunk;
          Alcotest.test_case "chunk runs" `Quick test_chunk_runs_total;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          QCheck_alcotest.to_alcotest prop_partition;
          QCheck_alcotest.to_alcotest prop_owner_consistent;
          QCheck_alcotest.to_alcotest prop_counts_sum;
          QCheck_alcotest.to_alcotest prop_nth_matches_list;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic streams" `Quick
            test_prng_deterministic;
          Alcotest.test_case "stream independence" `Quick
            test_prng_stream_independence;
          QCheck_alcotest.to_alcotest prop_pick_victim_uniform;
        ] );
      ( "dispatch",
        [
          QCheck_alcotest.to_alcotest prop_plan_partitions;
          QCheck_alcotest.to_alcotest prop_plan_replays;
          QCheck_alcotest.to_alcotest prop_plan_static_equiv;
          QCheck_alcotest.to_alcotest prop_no_steals_without_stealing;
        ] );
      ("team", [ Alcotest.test_case "sockets" `Quick test_team ]);
      ("overhead", [ Alcotest.test_case "formulas" `Quick test_overhead ]);
    ]

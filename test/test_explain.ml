(* The attribution layer's contract: per-pair counts conserve to the
   engine's fs_cases on every bundled kernel and both engines, the fast
   and reference recorders agree event for event, the trace ring is
   bounded without perturbing the aggregates, the trace_event export is
   well-formed JSON, and lint findings carry the attribution summary. *)

let check = Alcotest.check

let configs = [ (2, None); (8, Some 4) ]

let with_kernels f =
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      let checked = Kernels.Kernel.parse k in
      List.iter
        (fun (threads, chunk) ->
          let params = [ ("num_threads", threads) ] in
          let nest =
            Loopir.Lower.lower checked ~func:k.Kernels.Kernel.func ~params
          in
          let cfg =
            {
              (Fsmodel.Model.default_config ~threads ()) with
              Fsmodel.Model.chunk;
              params;
            }
          in
          let what =
            Printf.sprintf "%s t=%d c=%s" k.Kernels.Kernel.name threads
              (match chunk with Some c -> string_of_int c | None -> "pragma")
          in
          f ~what ~checked ~nest ~cfg ~uri:("kernel:" ^ k.Kernels.Kernel.name)
            ~func:k.Kernels.Kernel.func)
        configs)
    (Kernels.Registry.all ())

(* the recorder's pair histogram as a canonical sorted list *)
let pairs_list sink =
  List.sort compare
    (Fsmodel.Attrib.fold_pairs sink ~init:[]
       ~f:(fun acc ~writer_ref ~victim_ref ~writer_tid ~victim_tid ~count ->
         (writer_ref, victim_ref, writer_tid, victim_tid, count) :: acc))

let pair_t =
  Alcotest.(list (pair (pair (pair int int) (pair int int)) int))

let as_pair_t =
  List.map (fun (a, b, c, d, e) -> (((a, b), (c, d)), e))

(* Conservation: on both engines, the recorded total and every
   aggregate view equal the engine count from an attribution-free run. *)
let test_conservation () =
  with_kernels (fun ~what ~checked ~nest ~cfg ~uri ~func ->
      let plain = (Fsmodel.Model.run cfg ~nest ~checked).Fsmodel.Model.fs_cases in
      List.iter
        (fun engine ->
          let a = Explain.analyze ~engine ~uri ~func cfg ~nest ~checked in
          let ename =
            match engine with `Fast -> "fast" | `Reference -> "reference"
          in
          check Alcotest.int
            (what ^ " " ^ ename ^ ": total = plain fs_cases")
            plain a.Explain.total;
          check Alcotest.bool
            (what ^ " " ^ ename ^ ": conservation")
            true
            (Explain.conservation_ok a))
        [ `Fast; `Reference ])

(* Both engines record the same provenance, not just the same count:
   identical pair histograms and identical trace rings. *)
let test_engines_agree () =
  with_kernels (fun ~what ~checked ~nest ~cfg ~uri ~func ->
      let go engine =
        Explain.analyze ~engine ~trace_cap:4096 ~uri ~func cfg ~nest ~checked
      in
      let fast = go `Fast and refr = go `Reference in
      check pair_t
        (what ^ ": pair histograms")
        (as_pair_t (pairs_list refr.Explain.recorder))
        (as_pair_t (pairs_list fast.Explain.recorder));
      let rf = refr.Explain.recorder and ff = fast.Explain.recorder in
      check Alcotest.int (what ^ ": trace_len")
        (Fsmodel.Attrib.trace_len rf)
        (Fsmodel.Attrib.trace_len ff);
      for i = 0 to Fsmodel.Attrib.trace_len rf - 1 do
        let ev r =
          ( Fsmodel.Attrib.trace_step r i,
            Fsmodel.Attrib.trace_line r i,
            Fsmodel.Attrib.trace_writer_tid r i,
            Fsmodel.Attrib.trace_writer_ref r i,
            Fsmodel.Attrib.trace_victim_tid r i,
            Fsmodel.Attrib.trace_victim_ref r i )
        in
        if ev rf <> ev ff then
          Alcotest.failf "%s: trace event %d differs between engines" what i
      done)

(* The ring keeps the first [cap] events and only aggregates the rest;
   capping must not change any aggregate. *)
let test_ring_bounded () =
  let k = Option.get (Kernels.Registry.find "stencil1d") in
  let checked = Kernels.Kernel.parse k in
  let params = [ ("num_threads", 8) ] in
  let nest = Loopir.Lower.lower checked ~func:k.Kernels.Kernel.func ~params in
  let cfg = { (Fsmodel.Model.default_config ~threads:8 ()) with params } in
  let full =
    Explain.analyze ~uri:"k" ~func:k.Kernels.Kernel.func cfg ~nest ~checked
  in
  let capped =
    Explain.analyze ~trace_cap:5 ~uri:"k" ~func:k.Kernels.Kernel.func cfg
      ~nest ~checked
  in
  check Alcotest.int "capped ring length" 5
    (Fsmodel.Attrib.trace_len capped.Explain.recorder);
  check Alcotest.int "dropped = total - cap"
    (capped.Explain.total - 5)
    (Fsmodel.Attrib.trace_dropped capped.Explain.recorder);
  check pair_t "aggregates unchanged by the cap"
    (as_pair_t (pairs_list full.Explain.recorder))
    (as_pair_t (pairs_list capped.Explain.recorder));
  for i = 0 to 4 do
    check Alcotest.int
      (Printf.sprintf "ring entry %d is the %dth event" i i)
      (Fsmodel.Attrib.trace_step full.Explain.recorder i)
      (Fsmodel.Attrib.trace_step capped.Explain.recorder i)
  done

(* The Chrome trace export parses and its instant-event count matches
   the retained ring. *)
let test_trace_json () =
  with_kernels (fun ~what ~checked ~nest ~cfg ~uri ~func ->
      let a = Explain.analyze ~trace_cap:512 ~uri ~func cfg ~nest ~checked in
      let s = Analysis.Json.to_string (Explain.trace_json a) in
      match Fuzz.Json_check.validate_trace s with
      | Error m -> Alcotest.failf "%s: invalid trace: %s" what m
      | Ok n ->
          check Alcotest.int
            (what ^ ": instant events = trace_len")
            (Fsmodel.Attrib.trace_len a.Explain.recorder)
            n)

(* Renderers never raise and stay non-empty, whatever the verdict. *)
let test_renderers_total () =
  with_kernels (fun ~what ~checked ~nest ~cfg ~uri ~func ->
      let a = Explain.analyze ~uri ~func cfg ~nest ~checked in
      let text = Explain.to_text ~source:"int x;\n" a in
      let heat = Explain.heatmap a in
      check Alcotest.bool (what ^ ": text non-empty") true (text <> "");
      check Alcotest.bool (what ^ ": heatmap non-empty") true (heat <> ""))

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Lint's FS findings carry the top-3 attribution sentences; races and
   parametric findings do not. *)
let test_lint_attribution () =
  let k = Option.get (Kernels.Registry.find "stencil1d") in
  let checked = Kernels.Kernel.parse k in
  let report = Analysis.Lint.run ~uri:"k" checked in
  let fs =
    List.filter
      (fun (f : Analysis.Diag.finding) -> f.Analysis.Diag.rule = "fs/line-conflict")
      report.Analysis.Diag.findings
  in
  check Alcotest.bool "stencil1d has an FS finding" true (fs <> []);
  List.iter
    (fun (f : Analysis.Diag.finding) ->
      let n = List.length f.Analysis.Diag.attribution in
      check Alcotest.bool "attribution present, at most 3" true
        (n >= 1 && n <= 3);
      List.iter
        (fun s ->
          check Alcotest.bool "sentence mentions FS cases" true
            (contains_substring s "of FS cases"))
        f.Analysis.Diag.attribution)
    fs

let () =
  Alcotest.run "explain"
    [
      ( "attribution",
        [
          Alcotest.test_case "conservation on registry kernels" `Quick
            test_conservation;
          Alcotest.test_case "fast/reference recorders agree" `Quick
            test_engines_agree;
          Alcotest.test_case "trace ring bounded" `Quick test_ring_bounded;
          Alcotest.test_case "trace_event JSON valid" `Quick test_trace_json;
          Alcotest.test_case "renderers total" `Quick test_renderers_total;
          Alcotest.test_case "lint findings attributed" `Quick
            test_lint_attribution;
        ] );
    ]

(* Tests for the mini-C frontend: preprocessor, lexer, parser, type layout,
   typechecker, pretty-printer. *)

open Minic

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Preprocessor                                                        *)
(* ------------------------------------------------------------------ *)

let test_preproc_basic () =
  let macros, cleaned = Preproc.run "#define N 10\nint a[N];\n" in
  check (Alcotest.option Alcotest.int) "N" (Some 10) (Preproc.lookup macros "N");
  check Alcotest.bool "define line blanked" true
    (not (String.length cleaned > 0 && String.contains cleaned '#'))

let test_preproc_expr () =
  let macros, _ = Preproc.run "#define N 10\n#define M (N * 2 + 4)\n" in
  check (Alcotest.option Alcotest.int) "M" (Some 24) (Preproc.lookup macros "M")

let test_preproc_shadowing () =
  let macros, _ = Preproc.run "#define N 1\n#define N 2\n" in
  check (Alcotest.option Alcotest.int) "latest wins" (Some 2)
    (Preproc.lookup macros "N")

let test_preproc_line_numbers_preserved () =
  let _, cleaned = Preproc.run "#define A 1\nint x;\n" in
  let lines = String.split_on_char '\n' cleaned in
  check Alcotest.string "second line intact" "int x;" (List.nth lines 1)

let test_preproc_function_macro_rejected () =
  match Preproc.run "#define F(x) x\n" with
  | exception Preproc.Error (_, 1) -> ()
  | _ -> fail "expected Preproc.Error"

let test_preproc_undefined_macro () =
  match Preproc.run "#define A B\n" with
  | exception Preproc.Error (_, _) -> ()
  | _ -> fail "expected error for undefined macro in body"

let test_eval_const_expr () =
  let macros, _ = Preproc.run "#define N 6\n" in
  check Alcotest.int "const expr" 13 (Preproc.eval_const_expr macros "2*N+1");
  check Alcotest.int "division" 3 (Preproc.eval_const_expr macros "N / 2");
  check Alcotest.int "unary minus" (-6) (Preproc.eval_const_expr macros "-N");
  check Alcotest.int "parens" 36 (Preproc.eval_const_expr macros "(N + N) * 3");
  check Alcotest.int "modulo" 2 (Preproc.eval_const_expr macros "N % 4");
  (match Preproc.eval_const_expr macros "N N" with
  | exception Preproc.Error _ -> ()
  | _ -> fail "trailing token must be rejected");
  match Preproc.eval_const_expr macros "N / 0" with
  | exception Preproc.Error _ -> ()
  | _ -> fail "division by zero must be rejected"

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks s = List.map (fun { Token.tok; _ } -> tok) (Lexer.tokenize s)

let test_lexer_basic () =
  check Alcotest.int "count" 6 (List.length (toks "int a = 3;"));
  match toks "x += 2.5e3;" with
  | [ Token.IDENT "x"; Token.PLUSEQ; Token.FLOAT_LIT f; Token.SEMI; Token.EOF ]
    ->
      check (Alcotest.float 0.001) "float" 2500.0 f
  | _ -> fail "unexpected tokens"

let test_lexer_comments () =
  check Alcotest.int "line comment" 2 (List.length (toks "// hi\nx"));
  check Alcotest.int "block comment" 2 (List.length (toks "/* a\nb */x"))

let test_lexer_pragma () =
  match toks "#pragma omp parallel for\nx;" with
  | Token.PRAGMA p :: _ ->
      check Alcotest.string "pragma text" "omp parallel for" p
  | _ -> fail "expected PRAGMA first"

let test_lexer_two_char_ops () =
  match toks "a <= b && c != d" with
  | [ Token.IDENT "a"; Token.LE; Token.IDENT "b"; Token.AMPAMP;
      Token.IDENT "c"; Token.NE; Token.IDENT "d"; Token.EOF ] ->
      ()
  | _ -> fail "bad two-char operators"

let test_lexer_int_suffix () =
  match toks "100L" with
  | [ Token.INT_LIT 100; Token.EOF ] -> ()
  | _ -> fail "suffix not swallowed"

let test_lexer_float_forms () =
  (match toks ".5" with
  | [ Token.FLOAT_LIT f; Token.EOF ] ->
      check (Alcotest.float 1e-9) "leading dot" 0.5 f
  | _ -> fail ".5");
  (match toks "1e3" with
  | [ Token.FLOAT_LIT f; Token.EOF ] ->
      check (Alcotest.float 1e-9) "exponent" 1000. f
  | _ -> fail "1e3");
  match toks "2.5e-2" with
  | [ Token.FLOAT_LIT f; Token.EOF ] ->
      check (Alcotest.float 1e-9) "negative exponent" 0.025 f
  | _ -> fail "2.5e-2"

let test_lexer_errors () =
  (match toks "a @ b" with
  | exception Lexer.Error (_, 1) -> ()
  | _ -> fail "expected lexer error");
  match toks "/* open" with
  | exception Lexer.Error (_, 1) -> ()
  | _ -> fail "expected unterminated comment error"

let test_lexer_line_numbers () =
  let located = Lexer.tokenize "a\nb\nc" in
  let lines = List.map (fun { Token.line; _ } -> line) located in
  check (Alcotest.list Alcotest.int) "lines" [ 1; 2; 3; 3 ] lines

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_e s = Parser.parse_expr_string [] s

let test_parser_precedence () =
  (match parse_e "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Int_lit 1, Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> fail "mul binds tighter than add");
  (match parse_e "a < b + 1 && c" with
  | Ast.Binop (Ast.And, Ast.Binop (Ast.Lt, _, _), Ast.Ident "c") -> ()
  | _ -> fail "&& loosest");
  match parse_e "-a * b" with
  | Ast.Binop (Ast.Mul, Ast.Unop (Ast.Neg, _), _) -> ()
  | _ -> fail "unary binds tighter than mul"

let test_parser_postfix () =
  match parse_e "a[i+1].x" with
  | Ast.Field (Ast.Index (Ast.Ident "a", Ast.Binop (Ast.Add, _, _)), "x") -> ()
  | _ -> fail "postfix chain"

let test_parser_call () =
  match parse_e "pow(x, 2.0)" with
  | Ast.Call ("pow", [ Ast.Ident "x"; Ast.Float_lit 2.0 ]) -> ()
  | _ -> fail "call args"

let test_parser_macro_folding () =
  match Parser.parse_expr_string [ ("N", 5) ] "N + 1" with
  | Ast.Binop (Ast.Add, Ast.Int_lit 5, Ast.Int_lit 1) -> ()
  | _ -> fail "macro must fold to literal"

let test_parser_program () =
  let src =
    {|#define N 4
struct p { double x; double y; };
struct p pts[N];
double total;
void f(void) {
  int i;
  for (i = 0; i < N; i++) {
    total += pts[i].x;
  }
}
|}
  in
  let prog = Parser.parse_program src in
  check Alcotest.int "globals" 4 (List.length prog.Ast.globals);
  check Alcotest.int "structs" 1 (List.length (Ast.struct_defs prog));
  check Alcotest.bool "func exists" true (Ast.find_func prog "f" <> None)

let test_parser_for_step_forms () =
  let forms =
    [ "i++"; "i += 2"; "i = i + 2"; "i = 2 + i" ]
  in
  List.iter
    (fun step ->
      let src =
        Printf.sprintf "int a[100];\nvoid f(void) { int i; for (i = 0; i < 10; %s) { a[i] = 1; } }" step
      in
      ignore (Parser.parse_program src))
    forms

let test_parser_decl_in_for_init () =
  let src = "int a[10];\nvoid f(void) { for (int i = 0; i < 10; i++) { a[i] = i; } }" in
  ignore (Parser.parse_program src)

let test_parser_2d_array () =
  let src = "double m[3][4];\n" in
  let prog = Parser.parse_program src in
  match Ast.global_vars prog with
  | [ ("m", Ast.Tarray (Ast.Tarray (Ast.Tdouble, 4), 3)) ] -> ()
  | _ -> fail "outermost dimension first"

let test_parser_pragma_clauses () =
  let p =
    Parser.parse_pragma [ ("C", 4) ]
      "omp parallel for private(i, j) shared(a) reduction(+:s) \
       schedule(static, C) num_threads(8) nowait"
      1
  in
  check (Alcotest.list Alcotest.string) "private" [ "i"; "j" ]
    p.Ast.private_vars;
  check (Alcotest.list Alcotest.string) "shared" [ "a" ] p.Ast.shared_vars;
  (match p.Ast.reduction with
  | [ (Ast.Add, [ "s" ]) ] -> ()
  | _ -> fail "reduction");
  (match p.Ast.schedule with
  | Some (Ast.Sched_static (Some 4)) -> ()
  | _ -> fail "schedule chunk from macro");
  check (Alcotest.option Alcotest.int) "num_threads" (Some 8) p.Ast.num_threads

let test_parser_pragma_schedule_default () =
  let p = Parser.parse_pragma [] "omp parallel for schedule(static)" 1 in
  match p.Ast.schedule with
  | Some (Ast.Sched_static None) -> ()
  | _ -> fail "schedule(static) without chunk"

let test_parser_pragma_schedule_kinds () =
  (match
     (Parser.parse_pragma [] "omp parallel for schedule(dynamic)" 1)
       .Ast.schedule
   with
  | Some (Ast.Sched_dynamic None) -> ()
  | _ -> fail "dynamic");
  (match
     (Parser.parse_pragma [] "omp parallel for schedule(dynamic, 4)" 1)
       .Ast.schedule
   with
  | Some (Ast.Sched_dynamic (Some 4)) -> ()
  | _ -> fail "dynamic with chunk");
  match
    (Parser.parse_pragma [] "omp parallel for schedule(guided, 2)" 1)
      .Ast.schedule
  with
  | Some (Ast.Sched_guided (Some 2)) -> ()
  | _ -> fail "guided with min chunk"

let test_parser_pragma_errors () =
  (match Parser.parse_pragma [] "omp parallel for schedule(auto)" 1 with
  | exception Parser.Error _ -> ()
  | _ -> fail "auto schedule must be rejected");
  (match Parser.parse_pragma [] "acc kernels" 1 with
  | exception Parser.Error _ -> ()
  | _ -> fail "non-omp pragma must be rejected");
  match
    Parser.parse_program "int a[4];\nvoid f(void) {\n#pragma omp parallel for\n a[0] = 1; }"
  with
  | exception Parser.Error (_, _) -> ()
  | _ -> fail "pragma must precede a for"

let test_parser_error_position () =
  match Parser.parse_program "void f(void) { int x = ; }" with
  | exception Parser.Error (_, 1) -> ()
  | _ -> fail "expected parse error on line 1"

(* ------------------------------------------------------------------ *)
(* Ctypes / layout                                                     *)
(* ------------------------------------------------------------------ *)

let test_sizeof_scalars () =
  check Alcotest.int "char" 1 (Ctypes.sizeof [] Ast.Tchar);
  check Alcotest.int "int" 4 (Ctypes.sizeof [] Ast.Tint);
  check Alcotest.int "long" 8 (Ctypes.sizeof [] Ast.Tlong);
  check Alcotest.int "float" 4 (Ctypes.sizeof [] Ast.Tfloat);
  check Alcotest.int "double" 8 (Ctypes.sizeof [] Ast.Tdouble)

let test_sizeof_array () =
  check Alcotest.int "double[10]" 80
    (Ctypes.sizeof [] (Ast.Tarray (Ast.Tdouble, 10)));
  check Alcotest.int "int[3][5]" 60
    (Ctypes.sizeof [] (Ast.Tarray (Ast.Tarray (Ast.Tint, 5), 3)))

let test_struct_layout_padding () =
  (* char, double -> char at 0, 7 bytes padding, double at 8, size 16 *)
  let env = [ ("s", [ (Ast.Tchar, "c"); (Ast.Tdouble, "d") ]) ] in
  check Alcotest.int "offset c" 0 (Ctypes.field_offset env "s" "c");
  check Alcotest.int "offset d" 8 (Ctypes.field_offset env "s" "d");
  check Alcotest.int "size" 16 (Ctypes.sizeof env (Ast.Tstruct "s"));
  check Alcotest.int "align" 8 (Ctypes.alignof env (Ast.Tstruct "s"))

let test_struct_tail_padding () =
  (* double, char -> size rounded up to 16 *)
  let env = [ ("s", [ (Ast.Tdouble, "d"); (Ast.Tchar, "c") ]) ] in
  check Alcotest.int "size" 16 (Ctypes.sizeof env (Ast.Tstruct "s"))

let test_struct_of_five_doubles () =
  (* the linreg accumulator: 40 bytes, no padding *)
  let env =
    [ ("acc",
       [ (Ast.Tdouble, "sx"); (Ast.Tdouble, "sxx"); (Ast.Tdouble, "sy");
         (Ast.Tdouble, "syy"); (Ast.Tdouble, "sxy") ]) ]
  in
  check Alcotest.int "size" 40 (Ctypes.sizeof env (Ast.Tstruct "acc"));
  check Alcotest.int "sxy offset" 32 (Ctypes.field_offset env "acc" "sxy")

let test_ctypes_errors () =
  (match Ctypes.sizeof [] (Ast.Tstruct "nope") with
  | exception Ctypes.Unknown_struct "nope" -> ()
  | _ -> fail "unknown struct");
  let env = [ ("s", [ (Ast.Tint, "a") ]) ] in
  match Ctypes.field_offset env "s" "b" with
  | exception Ctypes.Unknown_field ("s", "b") -> ()
  | _ -> fail "unknown field"

(* ------------------------------------------------------------------ *)
(* Typecheck                                                           *)
(* ------------------------------------------------------------------ *)

let check_src src = Typecheck.check_program (Parser.parse_program src)

let expect_type_error name src =
  match check_src src with
  | exception Typecheck.Type_error _ -> ()
  | _ -> fail (name ^ ": expected Type_error")

let test_typecheck_good () =
  ignore
    (check_src
       {|struct p { double x; double y; };
struct p pts[8];
double out[8];
void f(void) {
  int i;
  for (i = 0; i < 8; i++) {
    out[i] = pts[i].x * 2.0 + sin(pts[i].y);
  }
}
|})

let test_typecheck_num_threads_implicit () =
  ignore
    (check_src
       "int a[64];\nvoid f(void) { int i; for (i = 0; i < 64 / num_threads; i++) { a[i] = i; } }")

let test_typecheck_errors () =
  expect_type_error "undeclared" "void f(void) { x = 1; }";
  expect_type_error "index non-array" "int a;\nvoid f(void) { a[0] = 1; }";
  expect_type_error "field non-struct" "int a;\nvoid f(void) { a.x = 1; }";
  expect_type_error "unknown field"
    "struct s { int a; };\nstruct s v;\nvoid f(void) { v.b = 1; }";
  expect_type_error "unknown struct" "struct nope v;\n";
  expect_type_error "dup global" "int a;\nint a;\n";
  expect_type_error "dup struct" "struct s { int a; };\nstruct s { int b; };\n";
  expect_type_error "mod float" "double d;\nvoid f(void) { d = 1.5 % 2; }";
  expect_type_error "unknown call" "void f(void) { frobnicate(1); }";
  expect_type_error "bad arity" "double d;\nvoid f(void) { d = sin(1.0, 2.0); }";
  expect_type_error "aggregate assign"
    "int a[4];\nint b[4];\nvoid f(void) { a = b; }";
  expect_type_error "mismatched step var"
    "int a[4];\nvoid f(void) { int i; int j; for (i = 0; i < 4; j++) { a[i] = 1; } }";
  expect_type_error "aggregate condition"
    "int a[4];\nvoid f(void) { if (a) { a[0] = 1; } }";
  expect_type_error "float loop var"
    "int a[4];\nvoid f(void) { double d; for (d = 0; d < 4; d++) { a[0] = 1; } }"

let test_locals_of_func () =
  let checked =
    check_src
      "int g;\nvoid f(void) { int x; double y = 1.0; for (int i = 0; i < 3; i++) { x = i; } }"
  in
  let f = Option.get (Ast.find_func checked.Typecheck.prog "f") in
  let locals = Typecheck.locals_of_func checked f in
  check Alcotest.bool "x" true (List.mem_assoc "x" locals);
  check Alcotest.bool "y" true (List.mem_assoc "y" locals);
  check Alcotest.bool "i" true (List.mem_assoc "i" locals);
  check Alcotest.bool "g not local" false (List.mem_assoc "g" locals)

(* ------------------------------------------------------------------ *)
(* Pretty round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let strip_prog (p : Ast.program) = (Ast.erase_spans p).Ast.globals

let test_pretty_roundtrip () =
  List.iter
    (fun src ->
      let p1 = Parser.parse_program src in
      let printed = Pretty.program_to_string p1 in
      let p2 =
        try Parser.parse_program printed
        with Parser.Error (m, l) ->
          fail (Printf.sprintf "reparse failed (%d: %s) of:\n%s" l m printed)
      in
      if strip_prog p1 <> strip_prog p2 then
        fail ("round-trip mismatch for:\n" ^ printed))
    [
      "int a[4];\nvoid f(void) { int i; for (i = 0; i < 4; i++) { a[i] += 2; } }";
      "struct s { double x; int n; };\nstruct s v[3];\nvoid g(void) { v[0].x = 1.5; }";
      "double d;\nvoid h(void) { if (d < 1.0) { d = d * 2.0; } else { d = 0.0; } }";
      "int a[8];\nvoid k(void) {\n#pragma omp parallel for private(i) schedule(static,2) num_threads(4)\nfor (int i = 0; i < 8; i++) { a[i] = i; } }";
      "int a[8];\nvoid k(void) {\n#pragma omp parallel for schedule(dynamic,3)\nfor (int i = 0; i < 8; i++) { a[i] = i; } }";
      "int a[8];\nvoid k(void) {\n#pragma omp parallel for schedule(guided) reduction(*:p)\nfor (int i = 0; i < 8; i++) { a[i] = i; } }";
      "double d;\nvoid m(void) { if (d < 0.0) { d = 0.0; } else if (d > 1.0) { d = 1.0; } else { d = 0.5; } }";
      "int n;\nvoid w(void) { int i; i = 0; while (i < 10) { if (i == 7) { break; } if (i == 2) { i = i + 2; continue; } n += i; i++; } }";
    ]

(* qcheck: random expressions survive print -> reparse *)
let expr_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun i -> Ast.Int_lit (abs i)) small_int;
            map (fun v -> Ast.Ident ("v" ^ string_of_int (abs v mod 4)))
              small_int ]
      else
        oneof
          [
            map (fun i -> Ast.Int_lit (abs i)) small_int;
            map3
              (fun op a b -> Ast.Binop (op, a, b))
              (oneofl
                 [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Lt; Ast.And ])
              (self (n / 2)) (self (n / 2));
            map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n - 1));
            map2 (fun a i -> Ast.Index (a, i))
              (map (fun v -> Ast.Ident ("a" ^ string_of_int (abs v mod 2)))
                 small_int)
              (self (n - 1));
          ])

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"pretty/reparse round-trip on random expressions"
    ~count:500 ~print:Pretty.expr_to_string expr_gen (fun e ->
      let s = Pretty.expr_to_string e in
      match Parser.parse_expr_string [] s with
      | e2 -> e = e2
      | exception _ -> false)

let () =
  Alcotest.run "minic"
    [
      ( "preproc",
        [
          Alcotest.test_case "basic define" `Quick test_preproc_basic;
          Alcotest.test_case "expression body" `Quick test_preproc_expr;
          Alcotest.test_case "shadowing" `Quick test_preproc_shadowing;
          Alcotest.test_case "line numbers preserved" `Quick
            test_preproc_line_numbers_preserved;
          Alcotest.test_case "function-like rejected" `Quick
            test_preproc_function_macro_rejected;
          Alcotest.test_case "undefined macro" `Quick
            test_preproc_undefined_macro;
          Alcotest.test_case "eval_const_expr" `Quick test_eval_const_expr;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "pragma" `Quick test_lexer_pragma;
          Alcotest.test_case "two-char ops" `Quick test_lexer_two_char_ops;
          Alcotest.test_case "int suffix" `Quick test_lexer_int_suffix;
          Alcotest.test_case "float forms" `Quick test_lexer_float_forms;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "postfix" `Quick test_parser_postfix;
          Alcotest.test_case "call" `Quick test_parser_call;
          Alcotest.test_case "macro folding" `Quick test_parser_macro_folding;
          Alcotest.test_case "program" `Quick test_parser_program;
          Alcotest.test_case "for step forms" `Quick
            test_parser_for_step_forms;
          Alcotest.test_case "decl in for init" `Quick
            test_parser_decl_in_for_init;
          Alcotest.test_case "2d array type" `Quick test_parser_2d_array;
          Alcotest.test_case "pragma clauses" `Quick
            test_parser_pragma_clauses;
          Alcotest.test_case "schedule(static)" `Quick
            test_parser_pragma_schedule_default;
          Alcotest.test_case "schedule kinds" `Quick
            test_parser_pragma_schedule_kinds;
          Alcotest.test_case "pragma errors" `Quick test_parser_pragma_errors;
          Alcotest.test_case "error position" `Quick
            test_parser_error_position;
        ] );
      ( "ctypes",
        [
          Alcotest.test_case "scalar sizes" `Quick test_sizeof_scalars;
          Alcotest.test_case "array sizes" `Quick test_sizeof_array;
          Alcotest.test_case "struct padding" `Quick
            test_struct_layout_padding;
          Alcotest.test_case "tail padding" `Quick test_struct_tail_padding;
          Alcotest.test_case "five doubles" `Quick
            test_struct_of_five_doubles;
          Alcotest.test_case "errors" `Quick test_ctypes_errors;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "good program" `Quick test_typecheck_good;
          Alcotest.test_case "num_threads implicit" `Quick
            test_typecheck_num_threads_implicit;
          Alcotest.test_case "errors" `Quick test_typecheck_errors;
          Alcotest.test_case "locals_of_func" `Quick test_locals_of_func;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "program round-trip" `Quick
            test_pretty_roundtrip;
          QCheck_alcotest.to_alcotest prop_expr_roundtrip;
        ] );
    ]

(* Tests for the static reuse-distance model: analytic hit/miss
   predictions validated against the execution-driven cache simulator on
   every registry kernel, conservation and Eq. 1 consistency, the
   zero-simulator guarantee of the [`Analytic] cost model, and the
   analytic overhead analogue. *)

let check = Alcotest.check
let fail = Alcotest.fail
let arch = Archspec.Arch.small_test_machine

let predict_kernel (k : Kernels.Kernel.t) ~threads =
  let checked = Kernels.Kernel.parse k in
  let params = [ ("num_threads", threads) ] in
  let nest =
    Loopir.Lower.lower checked ~func:k.Kernels.Kernel.func ~params
  in
  Analysis.Reuse.predict ~arch ~threads
    ~env:(fun v -> List.assoc_opt v params)
    nest

(* ------------------------------------------------------------------ *)
(* Accuracy against the simulator                                      *)
(* ------------------------------------------------------------------ *)

(* Per-kernel relative tolerances, pinned from the current model: [main]
   bounds the l1/l2/l3/mem buckets, [c2c] the coherence-transfer bucket
   (the analytic interleaving window underestimates line-boundary
   straddles on the stencils, hence the looser bound).  Buckets the
   simulator puts fewer than [abs_floor] events in are compared
   absolutely against that floor instead — a relative bound on a
   near-empty bucket is noise.  Tightening a tolerance is progress;
   loosening one is a regression and must be justified. *)
let tolerances =
  [
    ("heat", (0.06, 0.65));
    ("dft", (0.01, 0.01));
    ("linear_regression", (0.05, 0.05));
    ("saxpy", (0.01, 0.01));
    ("stencil1d", (0.05, 0.55));
    ("matvec", (0.05, 0.05));
    ("transpose", (0.03, 0.05));
  ]

let abs_floor = 6000.

let check_bucket ~kernel ~threads ~name ~tol pred sim =
  if sim < abs_floor then (
    if Float.abs (pred -. sim) > abs_floor then
      fail
        (Printf.sprintf
           "%s t=%d %s: predicted %.0f vs simulated %.0f (near-empty \
            bucket drifted past %.0f)"
           kernel threads name pred sim abs_floor))
  else
    let rel = Float.abs (pred -. sim) /. sim in
    if rel > tol then
      fail
        (Printf.sprintf
           "%s t=%d %s: predicted %.0f vs simulated %.0f (%.1f%% off, \
            tolerance %.0f%%)"
           kernel threads name pred sim (100. *. rel) (100. *. tol))

let test_accuracy () =
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      let name = k.Kernels.Kernel.name in
      let tol_main, tol_c2c =
        match List.assoc_opt name tolerances with
        | Some t -> t
        | None ->
            fail
              (Printf.sprintf
                 "kernel %s has no pinned tolerance — add one" name)
      in
      List.iter
        (fun threads ->
          let p = predict_kernel k ~threads in
          let m = Execsim.Run.measure ~arch ~threads k in
          let s = m.Execsim.Run.stats in
          let open Analysis.Reuse in
          check (Alcotest.float 0.5)
            (Printf.sprintf "%s t=%d accesses" name threads)
            (float_of_int (Cachesim.Stats.accesses s))
            p.accesses;
          let b ~bname ~tol pred sim =
            check_bucket ~kernel:name ~threads ~name:bname ~tol pred
              (float_of_int sim)
          in
          b ~bname:"l1" ~tol:tol_main p.l1_hits s.Cachesim.Stats.l1_hits;
          b ~bname:"l2" ~tol:tol_main p.l2_hits s.Cachesim.Stats.l2_hits;
          b ~bname:"l3" ~tol:tol_main p.l3_hits s.Cachesim.Stats.l3_hits;
          b ~bname:"c2c" ~tol:tol_c2c p.c2c_transfers
            s.Cachesim.Stats.c2c_transfers;
          b ~bname:"mem" ~tol:tol_main p.mem_fetches
            s.Cachesim.Stats.mem_fetches)
        [ 2; 4 ])
    (Kernels.Registry.all ())

(* ------------------------------------------------------------------ *)
(* Conservation and internal consistency                               *)
(* ------------------------------------------------------------------ *)

let test_conservation () =
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      List.iter
        (fun threads ->
          let p = predict_kernel k ~threads in
          let open Analysis.Reuse in
          let sum =
            p.l1_hits +. p.l2_hits +. p.l3_hits +. p.c2c_transfers
            +. p.mem_fetches
          in
          check (Alcotest.float 1e-3)
            (Printf.sprintf "%s t=%d conservation" k.Kernels.Kernel.name
               threads)
            p.accesses sum;
          if p.miss_rate < 0. || p.miss_rate > 1. then
            fail "miss rate out of [0,1]";
          if p.cache_cycles < 0. then fail "negative cache cycles")
        [ 1; 2; 4; 8 ])
    (Kernels.Registry.all ())

let analyze_kernel (k : Kernels.Kernel.t) ~threads =
  let checked = Kernels.Kernel.parse k in
  let params = [ ("num_threads", threads) ] in
  let nest =
    Loopir.Lower.lower checked ~func:k.Kernels.Kernel.func ~params
  in
  Analysis.Reuse.analyze ~arch ~threads ~params ~checked nest

let test_eq1_consistency () =
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      let a = analyze_kernel k ~threads:4 in
      let e = a.Analysis.Reuse.eq1 in
      let open Costmodel.Total_cost in
      check (Alcotest.float 1.)
        (k.Kernels.Kernel.name ^ " eq1 terms sum to total")
        e.total
        (e.loop_c +. e.cache_c +. e.machine_c +. e.fs_c);
      let fsp = fs_percent ~fs:a.Analysis.Reuse.breakdown in
      if fsp < 0. || fsp > 100. then fail "fs percent out of [0,100]")
    (Kernels.Registry.all ())

(* ------------------------------------------------------------------ *)
(* Zero-simulator guarantee                                            *)
(* ------------------------------------------------------------------ *)

let test_zero_engine_calls () =
  List.iter
    (fun name ->
      match Kernels.Registry.find name with
      | None -> fail ("unknown kernel " ^ name)
      | Some k ->
          let checked = Kernels.Kernel.parse k in
          let before = Fsmodel.Model.run_count () in
          let opts =
            {
              Analysis.Lint.default_options with
              cost_model = `Analytic;
            }
          in
          let report =
            Analysis.Lint.run ~opts ~uri:("kernel:" ^ name) checked
          in
          check Alcotest.int
            (name ^ ": analytic lint never runs the engine")
            before
            (Fsmodel.Model.run_count ());
          ignore (Analysis.Diag.to_text report))
    [ "heat"; "saxpy"; "transpose" ]

let test_analytic_attaches_cost () =
  match Kernels.Registry.find "heat" with
  | None -> fail "no heat kernel"
  | Some k ->
      let checked = Kernels.Kernel.parse k in
      let opts =
        { Analysis.Lint.default_options with cost_model = `Analytic }
      in
      let report = Analysis.Lint.run ~opts ~uri:"kernel:heat" checked in
      let costed =
        List.filter
          (fun (f : Analysis.Diag.finding) -> f.cost <> None)
          report.Analysis.Diag.findings
      in
      if costed = [] then fail "no finding carries the analytic cost";
      List.iter
        (fun (f : Analysis.Diag.finding) ->
          match f.Analysis.Diag.cost with
          | None -> ()
          | Some c ->
              check Alcotest.string "model tag" "analytic"
                c.Analysis.Diag.cost_model;
              if c.Analysis.Diag.fs_percent <= 0. then
                fail "heat FS share should be positive")
        costed

(* ------------------------------------------------------------------ *)
(* Analytic overhead (the Eq. 5 analogue)                              *)
(* ------------------------------------------------------------------ *)

let test_overhead_heat () =
  match Kernels.Registry.find "heat" with
  | None -> fail "no heat kernel"
  | Some k -> (
      let checked = Kernels.Kernel.parse k in
      match
        (* paper machine: the closed form certifies heat there (the tiny
           test machine's L1 makes line residency uncertain) *)
        Analysis.Reuse.overhead ~threads:4
          ~fs_chunk:k.Kernels.Kernel.fs_chunk
          ~nfs_chunk:k.Kernels.Kernel.nfs_chunk
          ~func:k.Kernels.Kernel.func checked
      with
      | None -> fail "heat should be closed-form certifiable"
      | Some o ->
          if o.Analysis.Reuse.n_fs <= o.Analysis.Reuse.n_nfs then
            fail "FS-prone chunk should show more FS cases";
          if o.Analysis.Reuse.percent <= 0. then
            fail "heat overhead should be positive")

let () =
  Alcotest.run "reuse"
    [
      ( "reuse",
        [
          Alcotest.test_case "accuracy vs simulator" `Slow test_accuracy;
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "eq1 consistency" `Quick test_eq1_consistency;
          Alcotest.test_case "zero engine calls" `Quick
            test_zero_engine_calls;
          Alcotest.test_case "analytic cost attached" `Quick
            test_analytic_attaches_cost;
          Alcotest.test_case "analytic overhead" `Quick test_overhead_heat;
        ] );
    ]

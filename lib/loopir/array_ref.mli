(** A memory reference of the innermost loop body: a named global array (or
    scalar) plus an affine byte offset in the loop induction variables.

    This is the "array reference list" of the paper's step 1 (§III-A): base
    name, indices, access type, and — for arrays of structured types — the
    field's byte offset folded into [offset]. *)

type access = Read | Write

type t = {
  base : string;  (** global symbol the access is rooted at *)
  offset : Affine.t;  (** byte offset from the base, affine in loop vars *)
  size_bytes : int;  (** bytes touched (the scalar element size) *)
  access : access;
  repr : string;  (** source-level rendering, e.g. ["A[i][j+1]"] *)
  span : Minic.Span.t;  (** statement the access occurs in; may be [none] *)
}

val v :
  ?span:Minic.Span.t ->
  base:string ->
  offset:Affine.t ->
  size_bytes:int ->
  access:access ->
  repr:string ->
  unit ->
  t

val is_write : t -> bool
val access_name : access -> string
val pp : Format.formatter -> t -> unit

val byte_addr : addr_of_base:(string -> int) -> env:(string -> int) -> t -> int
(** Concrete byte address of the reference for given loop index values. *)

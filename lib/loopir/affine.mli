(** Affine integer expressions [c0 + c1*v1 + ... + cn*vn] over named
    variables (loop induction variables).

    Array subscripts and byte offsets are represented this way so the model
    can compute, for any assignment of loop indices, the exact cache line a
    reference touches. *)

type t
(** Immutable; terms with zero coefficients are never stored. *)

val const : int -> t
val var : string -> t
val zero : t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val mul : t -> t -> t option
(** [mul a b] is [Some] product when at least one side is constant. *)

val is_const : t -> int option
val const_part : t -> int
val coeff : t -> string -> int
val vars : t -> string list
(** Variables with non-zero coefficient, sorted. *)

val eval : (string -> int) -> t -> int
(** @raise Not_found if a variable is unbound. *)

val subst : (string -> t option) -> t -> t
(** Substitute variables by affine expressions. *)

val fold_terms : (string -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the (variable, coefficient) terms; the constant is not
    visited. *)

val partition : (string -> bool) -> t -> t * t
(** [partition keep a] splits [a] into the sub-expression over the
    variables satisfying [keep] (which also receives the constant) and
    the remaining terms (with constant [0]).  Adding the two halves
    gives back [a].  Used by the symbolic layer to separate the
    parameter-dependent part of a bound from its loop-variable part. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_expr : (string -> t option) -> Minic.Ast.expr -> t option
(** [of_expr lookup e] converts an integer AST expression to affine form;
    [lookup] resolves identifiers (loop variables to themselves, parameters
    to constants).  Returns [None] when [e] is not affine (e.g. a product of
    two variables) or contains unsupported constructs.  Division and modulo
    by constants are folded only when the operand is itself constant. *)

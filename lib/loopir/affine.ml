module Smap = Map.Make (String)

type t = { const : int; terms : int Smap.t }
(* invariant: no zero coefficients in [terms] *)

let normalize terms = Smap.filter (fun _ c -> c <> 0) terms
let const c = { const = c; terms = Smap.empty }
let zero = const 0
let var v = { const = 0; terms = Smap.singleton v 1 }

let add a b =
  {
    const = a.const + b.const;
    terms =
      normalize
        (Smap.union (fun _ ca cb -> Some (ca + cb)) a.terms b.terms);
  }

let neg a = { const = -a.const; terms = Smap.map (fun c -> -c) a.terms }
let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero
  else { const = k * a.const; terms = Smap.map (fun c -> k * c) a.terms }

let is_const a = if Smap.is_empty a.terms then Some a.const else None

let mul a b =
  match (is_const a, is_const b) with
  | Some ka, _ -> Some (scale ka b)
  | _, Some kb -> Some (scale kb a)
  | None, None -> None

let const_part a = a.const
let coeff a v = match Smap.find_opt v a.terms with Some c -> c | None -> 0
let vars a = List.map fst (Smap.bindings a.terms)

let eval env a =
  Smap.fold (fun v c acc -> acc + (c * env v)) a.terms a.const

let subst f a =
  Smap.fold
    (fun v c acc ->
      match f v with
      | Some e -> add acc (scale c e)
      | None -> add acc (scale c (var v)))
    a.terms (const a.const)

let fold_terms f a init = Smap.fold f a.terms init

let partition keep a =
  let yes, no = Smap.partition (fun v _ -> keep v) a.terms in
  ({ const = a.const; terms = yes }, { const = 0; terms = no })

let equal a b = a.const = b.const && Smap.equal Int.equal a.terms b.terms

let compare a b =
  let c = Int.compare a.const b.const in
  if c <> 0 then c else Smap.compare Int.compare a.terms b.terms

let pp ppf a =
  let open Format in
  let first = ref true in
  let sep ppf c =
    if !first then begin
      first := false;
      if c < 0 then pp_print_string ppf "-"
    end
    else pp_print_string ppf (if c < 0 then " - " else " + ")
  in
  Smap.iter
    (fun v c ->
      sep ppf c;
      let m = abs c in
      if m = 1 then pp_print_string ppf v else fprintf ppf "%d*%s" m v)
    a.terms;
  if a.const <> 0 || !first then begin
    sep ppf a.const;
    pp_print_int ppf (abs a.const)
  end

let to_string a = Format.asprintf "%a" pp a

let rec of_expr lookup expr =
  let open Minic.Ast in
  match expr with
  | Int_lit n -> Some (const n)
  | Float_lit _ -> None
  | Ident v -> lookup v
  | Unop (Neg, e) -> Option.map neg (of_expr lookup e)
  | Unop (Not, _) -> None
  | Binop (Add, a, b) -> (
      match (of_expr lookup a, of_expr lookup b) with
      | Some a, Some b -> Some (add a b)
      | _ -> None)
  | Binop (Sub, a, b) -> (
      match (of_expr lookup a, of_expr lookup b) with
      | Some a, Some b -> Some (sub a b)
      | _ -> None)
  | Binop (Mul, a, b) -> (
      match (of_expr lookup a, of_expr lookup b) with
      | Some a, Some b -> mul a b
      | _ -> None)
  | Binop (Div, a, b) -> (
      (* only constant / constant folds; affine / constant is not affine in
         general because of integer truncation *)
      match (of_expr lookup a, of_expr lookup b) with
      | Some a, Some b -> (
          match (is_const a, is_const b) with
          | Some ka, Some kb when kb <> 0 -> Some (const (ka / kb))
          | _ -> None)
      | _ -> None)
  | Binop (Mod, a, b) -> (
      match (of_expr lookup a, of_expr lookup b) with
      | Some a, Some b -> (
          match (is_const a, is_const b) with
          | Some ka, Some kb when kb <> 0 -> Some (const (ka mod kb))
          | _ -> None)
      | _ -> None)
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) -> None
  | Index _ | Field _ | Call _ -> None

(** A normalized loop nest with one OpenMP-parallel level.

    Bounds are kept as AST expressions because they may involve parameters
    (e.g. [M / num_threads] in the Phoenix linear-regression kernel) and
    outer induction variables (triangular nests); they are evaluated on
    demand against an environment. *)

type loop = {
  var : string;
  lower : Minic.Ast.expr;  (** first value of [var] *)
  upper_excl : Minic.Ast.expr;  (** iteration continues while [var < upper] *)
  step : int;  (** positive constant *)
  span : Minic.Span.t;  (** the source [for] header; may be [none] *)
}

type t = {
  func : string;
  loops : loop list;  (** outermost first; never empty *)
  parallel_depth : int;  (** index into [loops] of the pragma'd loop *)
  pragma : Minic.Ast.pragma;
  refs : Array_ref.t list;  (** innermost-body references, program order *)
  body : Minic.Ast.stmt list;  (** innermost-body statements *)
}

val depth : t -> int
val parallel_loop : t -> loop
val inner_loops : t -> loop list
(** Loops strictly below the parallel level, outermost first. *)

val outer_loops : t -> loop list
(** Sequential loops strictly above the parallel level. *)

val trip_count : loop -> env:(string -> int option) -> int
(** Number of iterations of one loop under [env] (which must bind parameters
    and any outer induction variables appearing in the bounds); 0 when the
    bounds are empty.  @raise Expr_eval.Unbound when the environment is
    incomplete. *)

val total_iterations : t -> env:(string -> int option) -> int
(** Total innermost iterations of the whole nest (the paper's
    [All_num_of_iters]); handles triangular bounds by recursive expansion. *)

val schedule_kind : t -> [ `Static | `Dynamic | `Guided ]
(** The worksharing kind; no schedule clause means [`Static] (the OpenMP
    default for this construct on most runtimes, and the paper's setting). *)

val chunk_spec : t -> int option
(** The [schedule(static,c)] chunk size; [None] for [schedule(static)]
    without a chunk (or no schedule clause), which OpenMP distributes in
    contiguous per-thread blocks — resolve with
    {!Ompsched.Schedule.block_chunk} once the trip count is known. *)

val chunk_size : t -> int
(** [chunk_spec] with the block case collapsed to 1 — only meaningful for
    nests known to carry an explicit chunk (kept for reporting). *)

val pp : Format.formatter -> t -> unit

type access = Read | Write

type t = {
  base : string;
  offset : Affine.t;
  size_bytes : int;
  access : access;
  repr : string;
  span : Minic.Span.t;
}

let v ?(span = Minic.Span.none) ~base ~offset ~size_bytes ~access ~repr () =
  { base; offset; size_bytes; access; repr; span }

let is_write r = r.access = Write
let access_name = function Read -> "R" | Write -> "W"

let pp ppf r =
  Format.fprintf ppf "%s %s (%s + %a, %dB)" (access_name r.access) r.repr
    r.base Affine.pp r.offset r.size_bytes

let byte_addr ~addr_of_base ~env r =
  addr_of_base r.base + Affine.eval env r.offset

exception Lower_error of string

let err fmt = Format.kasprintf (fun s -> raise (Lower_error s)) fmt

open Minic

(* ---------------------------------------------------------------- *)
(* Locating the pragma'd loop and its enclosing sequential loops      *)
(* ---------------------------------------------------------------- *)

let rec all_chains_in_stmts stmts = List.concat_map all_chains_in_stmt stmts

and all_chains_in_stmt = function
  | Ast.Sfor loop ->
      if loop.Ast.pragma <> None then [ ([], loop) ]
      else
        List.map
          (fun (encl, p) -> (loop :: encl, p))
          (all_chains_in_stmt loop.Ast.body)
  | Ast.Sblock stmts -> all_chains_in_stmts stmts
  | Ast.Sif (_, then_, else_) ->
      all_chains_in_stmt then_
      @ (match else_ with Some s -> all_chains_in_stmt s | None -> [])
  | Ast.Swhile (_, body) -> all_chains_in_stmt body
  | Ast.Sexpr _ | Ast.Sassign _ | Ast.Sdecl _ | Ast.Sbreak | Ast.Scontinue
  | Ast.Sreturn _ ->
      []

let find_chain_in_stmts stmts =
  match all_chains_in_stmts stmts with [] -> None | c :: _ -> Some c

(* Collect the perfect nest below a loop: descend while the body is exactly
   one [for]; anything else is the innermost body. *)
let body_stmts = function Ast.Sblock l -> l | s -> [ s ]

let rec collect_nest (loop : Ast.for_loop) =
  match body_stmts loop.Ast.body with
  | [ Ast.Sfor inner ] ->
      let loops, body = collect_nest inner in
      (loop :: loops, body)
  | stmts -> ([ loop ], stmts)

(* ---------------------------------------------------------------- *)
(* Loop normalization                                                 *)
(* ---------------------------------------------------------------- *)

let normalize_loop params (loop : Ast.for_loop) : Loop_nest.loop =
  let v = loop.Ast.init_var in
  let step =
    let env x = List.assoc_opt x params in
    try Expr_eval.eval env loop.Ast.step.Ast.step_by with
    | Expr_eval.Unbound x ->
        err "step of loop %s references unbound identifier %s" v x
    | Expr_eval.Not_integer m -> err "step of loop %s is not integral (%s)" v m
  in
  if step <= 0 then err "loop %s has non-positive step %d" v step;
  let upper_excl =
    match loop.Ast.cond with
    | Ast.Binop (Ast.Lt, Ast.Ident x, e) when x = v -> e
    | Ast.Binop (Ast.Le, Ast.Ident x, e) when x = v ->
        Ast.Binop (Ast.Add, e, Ast.Int_lit 1)
    | Ast.Binop (Ast.Gt, e, Ast.Ident x) when x = v -> e
    | Ast.Binop (Ast.Ge, e, Ast.Ident x) when x = v ->
        Ast.Binop (Ast.Add, e, Ast.Int_lit 1)
    | _ ->
        err "condition of loop %s must have the form '%s < bound' or '%s <= bound'"
          v v v
  in
  {
    Loop_nest.var = v;
    lower = loop.Ast.init_expr;
    upper_excl;
    step;
    span = loop.Ast.span;
  }

(* ---------------------------------------------------------------- *)
(* Reference collection                                               *)
(* ---------------------------------------------------------------- *)

type ref_ctx = {
  structs : Ctypes.struct_env;
  type_of : string -> Ast.ctype option;  (* full scope: locals over globals *)
  shared_global : string -> bool;
  loop_vars : string list;
  params : (string * int) list;
  acc : Array_ref.t list ref;
  cur_span : Span.t ref;  (* span of the statement being collected *)
}

let affine_of_subscript ctx repr e =
  let lookup v =
    if List.mem v ctx.loop_vars then Some (Affine.var v)
    else
      match List.assoc_opt v ctx.params with
      | Some k -> Some (Affine.const k)
      | None -> None
  in
  match Affine.of_expr lookup e with
  | Some a -> a
  | None ->
      err "subscript %s of reference %s is not affine in the loop variables"
        (Pretty.expr_to_string e) repr

(* Analyze an access path (Ident/Index/Field chain).  Returns the resolved
   (base, byte-offset, element-type) when the root is a shared global, and
   the subscript expressions encountered (whose own reads must be
   collected). *)
let rec analyze_path ctx e :
    (string * Affine.t * Ast.ctype) option * Ast.expr list =
  match e with
  | Ast.Ident v ->
      if ctx.shared_global v then
        match ctx.type_of v with
        | Some t -> (Some (v, Affine.zero, t), [])
        | None -> (None, [])
      else (None, [])
  | Ast.Index (p, idx) -> (
      let root, subs = analyze_path ctx p in
      match root with
      | Some (base, off, Ast.Tarray (elem, _)) ->
          let repr = Pretty.expr_to_string e in
          let ia = affine_of_subscript ctx repr idx in
          let esz = Ctypes.sizeof ctx.structs elem in
          (Some (base, Affine.add off (Affine.scale esz ia), elem), idx :: subs)
      | Some (base, _, _) -> err "subscript applied to non-array %s" base
      | None -> (None, idx :: subs))
  | Ast.Field (p, f) -> (
      let root, subs = analyze_path ctx p in
      match root with
      | Some (base, off, Ast.Tstruct s) ->
          let foff = Ctypes.field_offset ctx.structs s f in
          let ft = Ctypes.field_type ctx.structs s f in
          (Some (base, Affine.add off (Affine.const foff), ft), subs)
      | Some (base, _, _) -> err "field .%s applied to non-struct %s" f base
      | None -> (None, subs))
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Binop _ | Ast.Unop _ | Ast.Call _ ->
      (None, [])

let emit ctx access e =
  match analyze_path ctx e with
  | Some (base, offset, elem), subs ->
      let size =
        match elem with
        | Ast.Tarray _ | Ast.Tstruct _ ->
            err "reference %s does not resolve to a scalar element"
              (Pretty.expr_to_string e)
        | t -> Ctypes.sizeof ctx.structs t
      in
      let r =
        Array_ref.v ~span:!(ctx.cur_span) ~base ~offset ~size_bytes:size
          ~access ~repr:(Pretty.expr_to_string e) ()
      in
      ctx.acc := r :: !(ctx.acc);
      subs
  | None, subs -> subs

let rec collect_reads ctx e =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ -> ()
  | Ast.Ident _ | Ast.Index _ | Ast.Field _ ->
      let subs = emit ctx Array_ref.Read e in
      List.iter (collect_reads ctx) subs
  | Ast.Binop (_, a, b) ->
      collect_reads ctx a;
      collect_reads ctx b
  | Ast.Unop (_, a) -> collect_reads ctx a
  | Ast.Call (_, args) -> List.iter (collect_reads ctx) args

let collect_write ctx lhs ~compound =
  match lhs with
  | Ast.Ident _ | Ast.Index _ | Ast.Field _ ->
      (* subscript reads happen once for the address computation *)
      let subs =
        if compound then emit ctx Array_ref.Read lhs else []
      in
      List.iter (collect_reads ctx) subs;
      let subs_w = emit ctx Array_ref.Write lhs in
      if not compound then List.iter (collect_reads ctx) subs_w
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Binop _ | Ast.Unop _ | Ast.Call _ ->
      err "assignment target %s is not an access path"
        (Pretty.expr_to_string lhs)

let rec collect_stmt ctx = function
  | Ast.Sexpr e -> collect_reads ctx e
  | Ast.Sassign (sp, lhs, op, rhs) ->
      ctx.cur_span := sp;
      collect_reads ctx rhs;
      collect_write ctx lhs ~compound:(op <> Ast.A_set);
      ctx.cur_span := Span.none
  | Ast.Sdecl (_, _, init) -> Option.iter (collect_reads ctx) init
  | Ast.Sblock stmts -> List.iter (collect_stmt ctx) stmts
  | Ast.Sif (c, then_, else_) ->
      collect_reads ctx c;
      collect_stmt ctx then_;
      Option.iter (collect_stmt ctx) else_
  | Ast.Sfor _ | Ast.Swhile _ ->
      err "imperfect loop nest: a further loop inside the innermost body"
  | Ast.Sbreak | Ast.Scontinue ->
      err "break/continue inside a modeled loop body is not supported"
  | Ast.Sreturn e -> Option.iter (collect_reads ctx) e

(* ---------------------------------------------------------------- *)
(* Entry points                                                       *)
(* ---------------------------------------------------------------- *)

let find_parallel_functions (prog : Ast.program) =
  List.filter_map
    (fun (f : Ast.func) ->
      match find_chain_in_stmts f.Ast.body with
      | Some _ -> Some f.Ast.fname
      | None -> None)
    (Ast.funcs prog)

let lower_chain (checked : Typecheck.checked) ~func ~params (f : Ast.func)
    (outer, (ploop : Ast.for_loop)) =
  let pragma = Option.get ploop.Ast.pragma in
  let nest_loops, innermost_body = collect_nest ploop in
  let all_loops = outer @ nest_loops in
  let loops = List.map (normalize_loop params) all_loops in
  let parallel_depth = List.length outer in
  let loop_vars = List.map (fun (l : Loop_nest.loop) -> l.Loop_nest.var) loops in
  let locals = Typecheck.locals_of_func checked f in
  let type_of v =
    match List.assoc_opt v locals with
    | Some t -> Some t
    | None -> List.assoc_opt v checked.Typecheck.global_types
  in
  let privatized =
    pragma.Ast.private_vars
    @ List.concat_map snd pragma.Ast.reduction
    @ loop_vars
  in
  let shared_global v =
    List.mem_assoc v checked.Typecheck.global_types
    && (not (List.mem_assoc v locals))
    && not (List.mem v privatized)
  in
  let ctx =
    {
      structs = checked.Typecheck.structs;
      type_of;
      shared_global;
      loop_vars;
      params;
      acc = ref [];
      cur_span = ref Span.none;
    }
  in
  List.iter (collect_stmt ctx) innermost_body;
  {
    Loop_nest.func;
    loops;
    parallel_depth;
    pragma;
    refs = List.rev !(ctx.acc);
    body = innermost_body;
  }

let func_of (checked : Typecheck.checked) func =
  match Ast.find_func checked.Typecheck.prog func with
  | Some f -> f
  | None -> err "no function named %s" func

let lower (checked : Typecheck.checked) ~func ~params =
  let f = func_of checked func in
  match find_chain_in_stmts f.Ast.body with
  | Some chain -> lower_chain checked ~func ~params f chain
  | None -> err "function %s contains no omp parallel for" func

let lower_all (checked : Typecheck.checked) ~func ~params =
  let f = func_of checked func in
  List.map
    (lower_chain checked ~func ~params f)
    (all_chains_in_stmts f.Ast.body)

type loop = {
  var : string;
  lower : Minic.Ast.expr;
  upper_excl : Minic.Ast.expr;
  step : int;
  span : Minic.Span.t;
}

type t = {
  func : string;
  loops : loop list;
  parallel_depth : int;
  pragma : Minic.Ast.pragma;
  refs : Array_ref.t list;
  body : Minic.Ast.stmt list;
}

let depth t = List.length t.loops
let parallel_loop t = List.nth t.loops t.parallel_depth

let inner_loops t =
  List.filteri (fun i _ -> i > t.parallel_depth) t.loops

let outer_loops t =
  List.filteri (fun i _ -> i < t.parallel_depth) t.loops

let trip_count loop ~env =
  let lo = Expr_eval.eval env loop.lower in
  let hi = Expr_eval.eval env loop.upper_excl in
  if hi <= lo then 0 else (hi - lo + loop.step - 1) / loop.step

let total_iterations t ~env =
  (* recursive expansion handles bounds that depend on outer indices *)
  let rec go env = function
    | [] -> 1
    | loop :: rest ->
        let lo = Expr_eval.eval env loop.lower in
        let hi = Expr_eval.eval env loop.upper_excl in
        if hi <= lo then 0
        else begin
          (* fast path: inner bounds independent of this variable *)
          let n = (hi - lo + loop.step - 1) / loop.step in
          let env_of v value x = if x = v then Some value else env x in
          let depends =
            List.exists
              (fun (l : loop) ->
                let uses e =
                  let rec go = function
                    | Minic.Ast.Ident x -> x = loop.var
                    | Minic.Ast.Int_lit _ | Minic.Ast.Float_lit _ -> false
                    | Minic.Ast.Binop (_, a, b) -> go a || go b
                    | Minic.Ast.Unop (_, a) -> go a
                    | Minic.Ast.Index (a, b) -> go a || go b
                    | Minic.Ast.Field (a, _) -> go a
                    | Minic.Ast.Call (_, args) -> List.exists go args
                  in
                  go e
                in
                uses l.lower || uses l.upper_excl)
              rest
          in
          if not depends then n * go (env_of loop.var lo) rest
          else begin
            let total = ref 0 in
            let v = ref lo in
            while !v < hi do
              total := !total + go (env_of loop.var !v) rest;
              v := !v + loop.step
            done;
            !total
          end
        end
  in
  go env t.loops

let schedule_kind t =
  match t.pragma.Minic.Ast.schedule with
  | Some (Minic.Ast.Sched_static _) | None -> `Static
  | Some (Minic.Ast.Sched_dynamic _) -> `Dynamic
  | Some (Minic.Ast.Sched_guided _) -> `Guided

let chunk_spec t =
  match t.pragma.Minic.Ast.schedule with
  | Some (Minic.Ast.Sched_static (Some c))
  | Some (Minic.Ast.Sched_dynamic (Some c))
  | Some (Minic.Ast.Sched_guided (Some c)) ->
      Some c
  | Some (Minic.Ast.Sched_static None)
  | Some (Minic.Ast.Sched_dynamic None)
  | Some (Minic.Ast.Sched_guided None)
  | None ->
      None

let chunk_size t = Option.value ~default:1 (chunk_spec t)

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>nest in %s (parallel at depth %d, chunk %d):@," t.func
    t.parallel_depth (chunk_size t);
  List.iteri
    (fun i (l : loop) ->
      fprintf ppf "%s%sfor %s in [%s, %s) step %d@,"
        (String.make (2 * i) ' ')
        (if i = t.parallel_depth then "#omp " else "")
        l.var
        (Minic.Pretty.expr_to_string l.lower)
        (Minic.Pretty.expr_to_string l.upper_excl)
        l.step)
    t.loops;
  fprintf ppf "refs:@,";
  List.iter (fun r -> fprintf ppf "  %a@," Array_ref.pp r) t.refs;
  fprintf ppf "@]"

type t = {
  name : string;
  cores : int;
  cores_per_socket : int;
  freq_ghz : float;
  core : Latency.t;
  l1 : Cache_geom.t;
  l2 : Cache_geom.t;
  l3 : Cache_geom.t;
  mem_latency : int;
  mem_bandwidth_bytes_per_cycle : float;
  coherence_latency : int;
  tlb_entries : int;
  page_bytes : int;
  tlb_miss_latency : int;
}

let paper_machine =
  {
    name = "opteron-48core";
    cores = 48;
    cores_per_socket = 12;
    freq_ghz = 2.2;
    core = Latency.default;
    l1 =
      Cache_geom.v ~hit_latency:3 ~name:"L1d" ~size_bytes:(64 * 1024)
        ~line_bytes:64 ~associativity:2 ();
    l2 =
      Cache_geom.v ~hit_latency:14 ~name:"L2" ~size_bytes:(512 * 1024)
        ~line_bytes:64 ~associativity:16 ();
    l3 =
      Cache_geom.v ~hit_latency:50 ~name:"L3" ~size_bytes:(10240 * 1024)
        ~line_bytes:64 ~associativity:20 ();
    mem_latency = 220;
    mem_bandwidth_bytes_per_cycle = 12.;
    coherence_latency = 130;
    tlb_entries = 48;
    page_bytes = 4096;
    tlb_miss_latency = 30;
  }

let small_test_machine =
  {
    name = "tiny-4core";
    cores = 4;
    cores_per_socket = 4;
    freq_ghz = 1.0;
    core = Latency.default;
    l1 =
      Cache_geom.v ~hit_latency:2 ~name:"L1d" ~size_bytes:1024 ~line_bytes:64
        ~associativity:2 ();
    l2 =
      Cache_geom.v ~hit_latency:8 ~name:"L2" ~size_bytes:4096 ~line_bytes:64
        ~associativity:4 ();
    l3 =
      Cache_geom.v ~hit_latency:20 ~name:"L3" ~size_bytes:16384 ~line_bytes:64
        ~associativity:8 ();
    mem_latency = 100;
    mem_bandwidth_bytes_per_cycle = 3.;
    coherence_latency = 60;
    tlb_entries = 8;
    page_bytes = 4096;
    tlb_miss_latency = 20;
  }

let with_line_bytes t bytes =
  let redo (g : Cache_geom.t) =
    Cache_geom.v ~hit_latency:g.Cache_geom.hit_latency ~name:g.Cache_geom.name
      ~size_bytes:g.Cache_geom.size_bytes ~line_bytes:bytes
      ~associativity:g.Cache_geom.associativity ()
  in
  { t with l1 = redo t.l1; l2 = redo t.l2; l3 = redo t.l3 }

let sockets t =
  (t.cores + t.cores_per_socket - 1) / t.cores_per_socket

let line_bytes t =
  let b = t.l1.Cache_geom.line_bytes in
  if t.l2.Cache_geom.line_bytes <> b || t.l3.Cache_geom.line_bytes <> b then
    invalid_arg "Arch.line_bytes: cache levels disagree on line size";
  b

let l3_sharers t ~threads =
  if threads < 1 then invalid_arg "Arch.l3_sharers: threads < 1";
  max 1 (min threads t.cores_per_socket)

let capacity_lines t level =
  let g = match level with `L1 -> t.l1 | `L2 -> t.l2 | `L3 -> t.l3 in
  Cache_geom.lines g

let cycles_to_seconds t cycles = cycles /. (t.freq_ghz *. 1e9)

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d cores (%d/socket) @@ %.1f GHz@ %a %a %a@ mem=%dcy coherence=%dcy@]"
    t.name t.cores t.cores_per_socket t.freq_ghz Cache_geom.pp t.l1
    Cache_geom.pp t.l2 Cache_geom.pp t.l3 t.mem_latency t.coherence_latency

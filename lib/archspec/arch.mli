(** Whole-machine description: core count, clock, cache hierarchy, memory and
    coherence latencies, TLB.

    [paper_machine] reproduces the geometry of the paper's testbed (§IV-B):
    four 2.2 GHz 12-core processors (48 cores), per-core 64 KB L1 and 512 KB
    L2, a 10240 KB L3 shared by the 12 cores of a socket, and 64-byte lines
    at every level. *)

type t = {
  name : string;
  cores : int;  (** total hardware cores *)
  cores_per_socket : int;
  freq_ghz : float;  (** core clock, used to convert cycles to seconds *)
  core : Latency.t;  (** per-core issue/latency model *)
  l1 : Cache_geom.t;  (** private, per core *)
  l2 : Cache_geom.t;  (** private, per core *)
  l3 : Cache_geom.t;  (** shared by the cores of one socket *)
  mem_latency : int;  (** cycles to fetch a line from DRAM *)
  mem_bandwidth_bytes_per_cycle : float;
      (** sustainable DRAM bandwidth of the whole machine, used by the
          contention extension to detect bus saturation *)
  coherence_latency : int;
      (** cycles for an invalidation-induced refetch: the cost of one
          false-sharing (or true-sharing) coherence miss — a cache-to-cache
          transfer or a refetch after invalidation *)
  tlb_entries : int;
  page_bytes : int;
  tlb_miss_latency : int;  (** cycles per TLB miss (page-walk) *)
}

val paper_machine : t
(** The 48-core machine of the paper's evaluation. *)

val small_test_machine : t
(** A tiny machine (4 cores, small caches) used by unit tests so that
    capacity effects are reachable with small workloads. *)

val with_line_bytes : t -> int -> t
(** The same machine with a different cache-line size at every level (for
    line-size sensitivity studies).  @raise Invalid_argument if the new
    size is not a power of two or does not divide the cache capacities. *)

val sockets : t -> int

val l3_sharers : t -> threads:int -> int
(** Number of active cores sharing one L3 when a team of [threads] fills
    cores in order: [min threads cores_per_socket], at least 1.  The
    shared-cache reuse-distance model scales private stack distances by
    this factor.  @raise Invalid_argument if [threads < 1]. *)

val capacity_lines : t -> [ `L1 | `L2 | `L3 ] -> int
(** Capacity of one cache at that level, in lines — the stack width [W]
    a reuse distance is compared against. *)

val line_bytes : t -> int
(** Line size shared by all levels. @raise Invalid_argument if levels
    disagree (the paper's model assumes one line size, §IV-B). *)

val cycles_to_seconds : t -> float -> float
val pp : Format.formatter -> t -> unit

type breakdown = {
  machine_cycles : float;
  cache_cycles : float;
  tlb_cycles : float;
  contention_cycles : float;
  parallel_overhead_cycles : float;
  loop_overhead_cycles : float;
  false_sharing_cycles : float;
  total_cycles : float;
  seconds : float;
  iters_per_thread : int;
  regions : int;
}

(* Calibrated once against the MESI execution simulator: geometric mean of
   the per-configuration optimal factors for the heat and DFT kernels over
   2..48 threads (bench/main.exe --only calib reproduces the fit). *)
let default_fs_cost_factor = 0.6

let compute ?(overhead = Ompsched.Overhead.default)
    ?(fs_cost_factor = default_fs_cost_factor) ?(contention = false)
    ?cache_cycles:provided_cache_cycles ~(arch : Archspec.Arch.t) ~threads
    ~fs_cases ~env ~checked (nest : Loopir.Loop_nest.t) =
  let trips = Cache_model.trips_of_nest ~env nest in
  let d = nest.Loopir.Loop_nest.parallel_depth in
  let trip_at i = snd (List.nth trips i) in
  let regions =
    let rec go i acc = if i >= d then acc else go (i + 1) (acc * trip_at i) in
    go 0 1
  in
  let parallel_trip = trip_at d in
  let inner_per_parallel =
    let rec go i acc =
      if i >= List.length trips then acc else go (i + 1) (acc * trip_at i)
    in
    go (d + 1) 1
  in
  let chunk =
    match Loopir.Loop_nest.chunk_spec nest with
    | Some c -> c
    | None -> Ompsched.Schedule.block_chunk ~threads ~total:parallel_trip
  in
  let sched = Ompsched.Schedule.make ~threads ~chunk ~total:parallel_trip in
  let max_par_iters = Ompsched.Schedule.max_steps_per_thread sched in
  let iters_per_thread = regions * max_par_iters * inner_per_parallel in
  let proc =
    Processor_model.of_nest checked ~core:arch.Archspec.Arch.core nest
  in
  let tlb = Tlb_model.analyze ~arch ~env nest in
  let fpt = float_of_int iters_per_thread in
  let machine_cycles = proc.Processor_model.cycles_per_iter *. fpt in
  let cache_cycles =
    match provided_cache_cycles with
    | Some c -> c
    | None -> (Cache_model.analyze ~arch ~env nest).Cache_model.cycles_per_iter *. fpt
  in
  let tlb_cycles = tlb.Tlb_model.cycles_per_iter *. fpt in
  let contention_cycles =
    if not contention then 0.
    else
      (Contention.analyze ~arch ~threads ~env ~checked nest)
        .Contention.cycles_per_iter *. fpt
  in
  let chunks_per_thread = (max_par_iters + chunk - 1) / chunk in
  let parallel_overhead_cycles =
    float_of_int
      (regions
      * Ompsched.Overhead.parallel_overhead_cycles overhead ~threads
          ~chunks_per_thread)
  in
  let loop_overhead_cycles =
    float_of_int
      (Ompsched.Overhead.loop_overhead_cycles overhead ~iters:iters_per_thread)
  in
  let false_sharing_cycles =
    (* each FS case costs an effective fraction of one coherence miss;
       stalls spread across the team *)
    float_of_int fs_cases
    *. float_of_int arch.Archspec.Arch.coherence_latency
    *. fs_cost_factor
    /. float_of_int threads
  in
  let total_cycles =
    machine_cycles +. cache_cycles +. tlb_cycles +. contention_cycles
    +. parallel_overhead_cycles +. loop_overhead_cycles
    +. false_sharing_cycles
  in
  {
    machine_cycles;
    cache_cycles;
    tlb_cycles;
    contention_cycles;
    parallel_overhead_cycles;
    loop_overhead_cycles;
    false_sharing_cycles;
    total_cycles;
    seconds = Archspec.Arch.cycles_to_seconds arch total_cycles;
    iters_per_thread;
    regions;
  }

let fs_percent ~fs =
  if fs.total_cycles <= 0. then 0.
  else 100. *. fs.false_sharing_cycles /. fs.total_cycles

type eq1 = {
  loop_c : float;
  cache_c : float;
  machine_c : float;
  fs_c : float;
  total : float;
}

let eq1_of b =
  {
    loop_c = b.parallel_overhead_cycles +. b.loop_overhead_cycles;
    cache_c = b.cache_cycles +. b.tlb_cycles +. b.contention_cycles;
    machine_c = b.machine_cycles;
    fs_c = b.false_sharing_cycles;
    total = b.total_cycles;
  }

let eq1_percent e term = if e.total <= 0. then 0. else 100. *. term /. e.total

let pp_eq1 ppf e =
  Format.fprintf ppf
    "@[<v>Total_c %.0f cy = Loop_c %.0f (%.1f%%) + Cache_c %.0f (%.1f%%) + \
     Machine_c %.0f (%.1f%%) + FS_c %.0f (%.1f%%)@]"
    e.total e.loop_c (eq1_percent e e.loop_c) e.cache_c
    (eq1_percent e e.cache_c) e.machine_c (eq1_percent e e.machine_c) e.fs_c
    (eq1_percent e e.fs_c)

let pp ppf b =
  Format.fprintf ppf
    "@[<v>total %.0f cycles (%.4f s), %d iters/thread, %d region(s)@,\
     machine %.0f | cache %.0f | tlb %.0f | contention %.0f | par-ovh %.0f \
     | loop-ovh %.0f | false-sharing %.0f@]"
    b.total_cycles b.seconds b.iters_per_thread b.regions b.machine_cycles
    b.cache_cycles b.tlb_cycles b.contention_cycles
    b.parallel_overhead_cycles b.loop_overhead_cycles b.false_sharing_cycles

(** The combined cost model — paper Eq. 1:

    [Total_c = FalseSharing_c + Machine_c + Cache_c + TLB_c
             + Parallel_Overhead_c + Loop_Overhead_c]

    All terms are wall-clock (critical-path) cycles for the whole loop nest
    executed by a team of [threads]: per-iteration terms are multiplied by
    the maximum number of innermost iterations any single thread executes;
    the false-sharing term converts the FS-case count of the paper's model
    (supplied by the caller, normally {!Fsmodel}) into cycles at one
    coherence miss per case, divided across the team. *)

type breakdown = {
  machine_cycles : float;
  cache_cycles : float;
  tlb_cycles : float;
  contention_cycles : float;
      (** shared-cache + bandwidth interference (§VI extension); 0 unless
          [~contention:true] *)
  parallel_overhead_cycles : float;
  loop_overhead_cycles : float;
  false_sharing_cycles : float;
  total_cycles : float;
  seconds : float;
  iters_per_thread : int;  (** innermost iterations on the busiest thread *)
  regions : int;  (** number of parallel-region entries (outer trips) *)
}

val default_fs_cost_factor : float
(** Effective fraction of one coherence-miss latency charged per modeled FS
    case.  The paper's model counts one FS case per φ-positive insertion —
    an adversarial lockstep count; on real hardware consecutive cases on
    the same line batch into one transfer and out-of-order execution
    overlaps part of the stall, so one counted case costs a fraction of a
    full [coherence_latency].  Calibrated once against the MESI execution
    simulator (see DESIGN.md), then held fixed for all kernels. *)

val compute :
  ?overhead:Ompsched.Overhead.t ->
  ?fs_cost_factor:float ->
  ?contention:bool ->
  ?cache_cycles:float ->
  arch:Archspec.Arch.t ->
  threads:int ->
  fs_cases:int ->
  env:(string -> int option) ->
  checked:Minic.Typecheck.checked ->
  Loopir.Loop_nest.t ->
  breakdown
(** [env] must bind every parameter in the nest's bounds; bind
    ["num_threads"] to [threads] yourself if the source uses it.
    [cache_cycles], when given, replaces the {!Cache_model} heuristic's
    per-thread cache-stall total — the hook {!Analysis.Reuse} folds its
    reuse-distance miss prediction through (total cycles for the busiest
    thread, beyond-L1 penalties only). *)

val fs_percent : fs:breakdown -> float
(** Share of the total time attributed to false sharing, in percent. *)

type eq1 = {
  loop_c : float;  (** parallel + loop overhead *)
  cache_c : float;  (** cache + TLB + contention stalls *)
  machine_c : float;  (** in-core execution *)
  fs_c : float;  (** false-sharing coherence stalls *)
  total : float;
}
(** Paper Eq. 1 folded to its four reported terms:
    [Total_c = Loop_c + Cache_c + Machine_c + FS_c]. *)

val eq1_of : breakdown -> eq1

val pp_eq1 : Format.formatter -> eq1 -> unit
(** One line: each term with its share of the total in percent. *)

val pp : Format.formatter -> breakdown -> unit

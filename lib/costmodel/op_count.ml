open Archspec

type t = {
  counts : (Latency.op_class * int) list;
  recurrence_latency : int;
}

type ctx = {
  structs : Minic.Ctypes.struct_env;
  type_of : string -> Minic.Ast.ctype option;
  core : Latency.t;
  tally : (Latency.op_class, int) Hashtbl.t;
}

let bump ctx cls n =
  let cur = Option.value ~default:0 (Hashtbl.find_opt ctx.tally cls) in
  Hashtbl.replace ctx.tally cls (cur + n)

let expr_is_float ctx e =
  try
    Minic.Ctypes.is_float
      (Minic.Typecheck.type_of_expr ctx.structs ctx.type_of e)
  with Minic.Typecheck.Type_error _ -> false

let class_of_binop ctx op a b =
  let fl = expr_is_float ctx a || expr_is_float ctx b in
  match op with
  | Minic.Ast.Add | Minic.Ast.Sub ->
      if fl then Latency.Fp_add else Latency.Int_alu
  | Minic.Ast.Mul -> if fl then Latency.Fp_mul else Latency.Int_mul
  | Minic.Ast.Div -> if fl then Latency.Fp_div else Latency.Int_mul
  | Minic.Ast.Mod -> Latency.Int_mul
  | Minic.Ast.Lt | Minic.Ast.Le | Minic.Ast.Gt | Minic.Ast.Ge | Minic.Ast.Eq
  | Minic.Ast.Ne | Minic.Ast.And | Minic.Ast.Or ->
      Latency.Int_alu

let is_memory_access = function
  | Minic.Ast.Index _ | Minic.Ast.Field _ -> true
  | Minic.Ast.Ident _ | Minic.Ast.Int_lit _ | Minic.Ast.Float_lit _
  | Minic.Ast.Binop _ | Minic.Ast.Unop _ | Minic.Ast.Call _ ->
      false

(* Count operations of an expression evaluated for its value. *)
let rec count_expr ctx e =
  match e with
  | Minic.Ast.Int_lit _ | Minic.Ast.Float_lit _ | Minic.Ast.Ident _ -> ()
  | Minic.Ast.Binop (op, a, b) ->
      bump ctx (class_of_binop ctx op a b) 1;
      count_expr ctx a;
      count_expr ctx b
  | Minic.Ast.Unop (Minic.Ast.Neg, a) ->
      bump ctx (if expr_is_float ctx a then Latency.Fp_add else Latency.Int_alu) 1;
      count_expr ctx a
  | Minic.Ast.Unop (Minic.Ast.Not, a) ->
      bump ctx Latency.Int_alu 1;
      count_expr ctx a
  | Minic.Ast.Call (_, args) ->
      bump ctx Latency.Fp_special 1;
      List.iter (count_expr ctx) args
  | Minic.Ast.Index _ | Minic.Ast.Field _ ->
      count_path ctx e;
      bump ctx Latency.Load 1

(* Address arithmetic of an access path; subscripts are value reads. *)
and count_path ctx e =
  match e with
  | Minic.Ast.Index (p, idx) ->
      bump ctx Latency.Int_mul 1;
      bump ctx Latency.Int_alu 1;
      count_expr ctx idx;
      count_path ctx p
  | Minic.Ast.Field (p, _) ->
      bump ctx Latency.Int_alu 1;
      count_path ctx p
  | Minic.Ast.Ident _ -> ()
  | Minic.Ast.Int_lit _ | Minic.Ast.Float_lit _ | Minic.Ast.Binop _
  | Minic.Ast.Unop _ | Minic.Ast.Call _ ->
      count_expr ctx e

(* Longest dependence chain of [rhs] along paths that start at [target]
   (structural equality); None when [rhs] does not read [target]. *)
let rec chain_latency ctx target rhs =
  if rhs = target then Some 0
  else
    match rhs with
    | Minic.Ast.Binop (op, a, b) -> (
        let lat = ctx.core.Latency.latency (class_of_binop ctx op a b) in
        match (chain_latency ctx target a, chain_latency ctx target b) with
        | Some la, Some lb -> Some (max la lb + lat)
        | Some la, None -> Some (la + lat)
        | None, Some lb -> Some (lb + lat)
        | None, None -> None)
    | Minic.Ast.Unop (_, a) ->
        Option.map
          (fun l -> l + ctx.core.Latency.latency Latency.Int_alu)
          (chain_latency ctx target a)
    | Minic.Ast.Call (_, args) ->
        let sub = List.filter_map (chain_latency ctx target) args in
        if sub = [] then None
        else
          Some
            (List.fold_left max 0 sub
            + ctx.core.Latency.latency Latency.Fp_special)
    | Minic.Ast.Int_lit _ | Minic.Ast.Float_lit _ | Minic.Ast.Ident _
    | Minic.Ast.Index _ | Minic.Ast.Field _ ->
        None

let assign_class ctx op lhs =
  let fl = expr_is_float ctx lhs in
  match op with
  | Minic.Ast.A_add | Minic.Ast.A_sub ->
      Some (if fl then Latency.Fp_add else Latency.Int_alu)
  | Minic.Ast.A_mul -> Some (if fl then Latency.Fp_mul else Latency.Int_mul)
  | Minic.Ast.A_div -> Some (if fl then Latency.Fp_div else Latency.Int_mul)
  | Minic.Ast.A_set -> None

let rec count_stmt ctx recur = function
  | Minic.Ast.Sexpr e ->
      count_expr ctx e;
      recur
  | Minic.Ast.Sassign (_, lhs, op, rhs) ->
      count_expr ctx rhs;
      (* the store (and, for compound assignment, the extra load + op) *)
      if is_memory_access lhs then begin
        count_path ctx lhs;
        bump ctx Latency.Store 1
      end;
      let recur =
        match assign_class ctx op lhs with
        | Some cls ->
            bump ctx cls 1;
            if is_memory_access lhs then bump ctx Latency.Load 1;
            (* s (op)= e is a loop-carried recurrence through (op) *)
            max recur (ctx.core.Latency.latency cls)
        | None -> (
            (* s = f(s, ...): recurrence through the chain reading s *)
            match chain_latency ctx lhs rhs with
            | Some l -> max recur l
            | None -> recur)
      in
      recur
  | Minic.Ast.Sdecl (_, _, init) ->
      Option.iter (count_expr ctx) init;
      recur
  | Minic.Ast.Sblock stmts -> List.fold_left (count_stmt ctx) recur stmts
  | Minic.Ast.Sif (c, then_, else_) ->
      count_expr ctx c;
      bump ctx Latency.Branch 1;
      let recur = count_stmt ctx recur then_ in
      (match else_ with Some s -> count_stmt ctx recur s | None -> recur)
  | Minic.Ast.Sfor _ | Minic.Ast.Swhile _ ->
      recur (* nested loops are not part of one iteration *)
  | Minic.Ast.Sbreak | Minic.Ast.Scontinue ->
      bump ctx Latency.Branch 1;
      recur
  | Minic.Ast.Sreturn e ->
      Option.iter (count_expr ctx) e;
      recur

let of_body structs ~type_of ~core stmts =
  let ctx = { structs; type_of; core; tally = Hashtbl.create 16 } in
  let recurrence_latency = List.fold_left (count_stmt ctx) 0 stmts in
  let counts =
    List.filter_map
      (fun cls ->
        match Hashtbl.find_opt ctx.tally cls with
        | Some n when n > 0 -> Some (cls, n)
        | _ -> None)
      Latency.all_classes
  in
  { counts; recurrence_latency }

let get t cls = Option.value ~default:0 (List.assoc_opt cls t.counts)
let total_ops t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.counts

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  List.iter
    (fun (cls, n) -> Format.fprintf ppf "%s=%d " (Latency.op_class_name cls) n)
    t.counts;
  Format.fprintf ppf "recurrence=%dcy@]" t.recurrence_latency

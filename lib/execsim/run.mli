(** The "measured" side of the paper's evaluation, on the simulated
    machine: execute a kernel through {!Interp}, feed every memory access
    into the MESI simulator, and account per-thread cycles
    (CPU + memory stalls + OpenMP overheads).  Wall time is the barrier-
    synchronized critical path.

    [measured_fs_percent] reproduces the left-hand side of paper Eq. 5:
    [(T_fs − T_nfs) / T_fs]. *)

type measurement = {
  threads : int;
  chunk : int option;  (** the override used; [None] = the pragma's clause *)
  sched : (Ompsched.Dispatch.kind * int) option;
      (** the seeded schedule replayed, when one overrode the pragma *)
  steals : int;  (** steal events (0 unless work stealing ran) *)
  wall_cycles : float;
  seconds : float;
  per_thread_cycles : float array;
  stats : Cachesim.Stats.t;  (** kernel-phase aggregate (init excluded) *)
}

val measure :
  ?arch:Archspec.Arch.t ->
  ?interleave_window:int ->
  ?run_init:bool ->
  ?chunk:int ->
  ?sched:Ompsched.Dispatch.kind * int ->
  threads:int ->
  Kernels.Kernel.t ->
  measurement
(** Run (optionally) the kernel's init function untimed-but-traced (warm
    caches, realistic first-touch), then the kernel function timed.
    [chunk] overrides the pragma's chunk size; omitted, the pragma's own
    schedule clause applies unchanged.  [sched] replays a seeded
    {!Ompsched.Dispatch} plan instead of the pragma's schedule — the
    simulated coherence traffic then corresponds to the same execution
    the cost model counts for that (kind, seed).  [interleave_window]
    defaults to 4 parallel iterations between thread switches. *)

type comparison = {
  fs : measurement;  (** the FS-prone chunk *)
  nfs : measurement;  (** the optimized chunk *)
  percent : float;  (** measured FS effect on execution time, % *)
}

val measured_fs_percent :
  ?arch:Archspec.Arch.t ->
  ?interleave_window:int ->
  ?fs_chunk:int ->
  ?nfs_chunk:int ->
  threads:int ->
  Kernels.Kernel.t ->
  comparison
(** Chunk sizes default to the kernel's paper configuration. *)

val pp_measurement : Format.formatter -> measurement -> unit

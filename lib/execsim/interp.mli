(** A mini-C interpreter with OpenMP semantics, instrumented for the cache
    simulator.

    Sequential code runs on thread 0.  A [#pragma omp parallel for] loop
    spawns the configured team: iterations are dealt according to the
    schedule clause — [static] round-robin chunks (contiguous blocks when
    no chunk is given, per the OpenMP default), [dynamic] from a shared
    chunk counter, or [guided] with decaying chunk sizes — and the threads
    are interleaved in windows of [interleave_window] parallel iterations,
    modeling that real threads execute several of their own iterations
    between coherence interactions (window 1 = adversarial lockstep,
    larger = more slack).  The kernels are race-free, so the interleaving
    does not affect computed values, only the simulated cache behaviour.
    Functions are compiled to closures once (locals in array frames,
    addresses and costs resolved statically), so repeated execution is
    cheap.

    Every access to a memory-resident global is reported through the
    {!sink}, along with estimated CPU cycles per executed statement
    (processor model) and region boundaries for overhead accounting. *)

type sink = {
  mem_access : tid:int -> addr:int -> size:int -> write:bool -> unit;
  cpu : tid:int -> float -> unit;
  region_begin : threads:int -> unit;
  region_end : chunks_per_thread:int -> unit;
}

val null_sink : sink

type t

val create :
  ?threads:int ->
  ?chunk_override:int ->
  ?sched_override:Ompsched.Dispatch.kind * int ->
  ?interleave_window:int ->
  ?sink:sink ->
  Minic.Typecheck.checked ->
  t
(** Defaults: 1 thread, pragma chunk, window 4, no instrumentation.
    [sched_override] replays a seeded {!Ompsched.Dispatch} plan
    ((kind, seed)) instead of the pragma's schedule: every parallel loop
    executes the exact per-thread iteration sequences of the plan, so a
    simulated run is comparable to an {!Fsmodel.Model} run seed for
    seed. *)

val steals : t -> int
(** Steal events accumulated across executed parallel regions (0 unless
    a work-stealing [sched_override] ran). *)

val layout : t -> Loopir.Layout.t
val memory : t -> Mem.t

exception Runtime_error of string

val exec : t -> func:string -> unit
(** Execute a function body (arguments are not supported — kernels take
    none).  @raise Runtime_error on unsupported constructs. *)

type sel = Idx of int | Fld of string

val read_global : t -> string -> sel list -> Value.t
(** [read_global t "a" [Idx 3; Fld "x"]] reads [a\[3\].x] — for checking
    results in tests and examples. *)

exception Runtime_error of string

let err fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type sink = {
  mem_access : tid:int -> addr:int -> size:int -> write:bool -> unit;
  cpu : tid:int -> float -> unit;
  region_begin : threads:int -> unit;
  region_end : chunks_per_thread:int -> unit;
}

let null_sink =
  {
    mem_access = (fun ~tid:_ ~addr:_ ~size:_ ~write:_ -> ());
    cpu = (fun ~tid:_ _ -> ());
    region_begin = (fun ~threads:_ -> ());
    region_end = (fun ~chunks_per_thread:_ -> ());
  }

type t = {
  checked : Minic.Typecheck.checked;
  layout : Loopir.Layout.t;
  mem : Mem.t;
  threads : int;
  chunk_override : int option;
  sched_override : (Ompsched.Dispatch.kind * int) option;
  window : int;
  sink : sink;
  compiled : (string, compiled_func) Hashtbl.t;
  loop_iter_cost : float;
  mutable steals : int;
}

(* Functions compile once into closures over (tid, frame); a frame is the
   function's locals as a value array — no hashing on the hot path. *)
and frame = Value.t array
and compiled_func = { nslots : int; body : t -> int -> frame -> unit }

let create ?(threads = 1) ?chunk_override ?sched_override
    ?(interleave_window = 4) ?(sink = null_sink) checked =
  if threads < 1 then invalid_arg "Interp.create: threads < 1";
  if interleave_window < 1 then invalid_arg "Interp.create: window < 1";
  let layout = Loopir.Layout.make checked in
  {
    checked;
    layout;
    mem = Mem.create (Loopir.Layout.total_bytes layout);
    threads;
    chunk_override;
    sched_override;
    window = interleave_window;
    sink;
    compiled = Hashtbl.create 8;
    loop_iter_cost =
      float_of_int Ompsched.Overhead.default.Ompsched.Overhead.loop_per_iter;
    steals = 0;
  }

let steals t = t.steals

let layout t = t.layout
let memory t = t.mem
let structs t = t.checked.Minic.Typecheck.structs

let global_type t name =
  List.assoc_opt name t.checked.Minic.Typecheck.global_types

(* ---------------------------------------------------------------- *)
(* Compilation                                                        *)
(* ---------------------------------------------------------------- *)

type ctx = {
  rt : t;
  mutable slots : (string * Minic.Ast.ctype) list;  (* name, static type *)
}

let slot_of ctx name =
  let rec go i = function
    | [] -> None
    | (n, _) :: _ when n = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 ctx.slots

let slot_type ctx name = List.assoc_opt name ctx.slots

let add_slot ctx name ty =
  if slot_of ctx name = None then ctx.slots <- ctx.slots @ [ (name, ty) ]

(* compiled address of an access path rooted at a global; bounds checks are
   compiled in with the statically-known dimensions *)
let rec compile_addr ctx e : (int -> frame -> int) * Minic.Ast.ctype =
  match e with
  | Minic.Ast.Ident v -> (
      match global_type ctx.rt v with
      | Some ty ->
          let base = Loopir.Layout.addr_of ctx.rt.layout v in
          ((fun _ _ -> base), ty)
      | None -> err "%s is not a global (locals have no address)" v)
  | Minic.Ast.Index (p, idx) -> (
      let addr_p, ty = compile_addr ctx p in
      let idx_v = compile_expr_i ctx idx in
      match ty with
      | Minic.Ast.Tarray (elem, n) ->
          let esz = Minic.Ctypes.sizeof (structs ctx.rt) elem in
          let repr = Minic.Pretty.expr_to_string e in
          ( (fun tid frame ->
              let i = idx_v tid frame in
              if i < 0 || i >= n then
                err "index %d out of bounds [0,%d) in %s" i n repr;
              addr_p tid frame + (i * esz)),
            elem )
      | _ -> err "subscript of non-array %s" (Minic.Pretty.expr_to_string p))
  | Minic.Ast.Field (p, f) -> (
      let addr_p, ty = compile_addr ctx p in
      match ty with
      | Minic.Ast.Tstruct s ->
          let off = Minic.Ctypes.field_offset (structs ctx.rt) s f in
          let fty = Minic.Ctypes.field_type (structs ctx.rt) s f in
          ((fun tid frame -> addr_p tid frame + off), fty)
      | _ -> err "field of non-struct %s" (Minic.Pretty.expr_to_string p))
  | _ -> err "not an access path: %s" (Minic.Pretty.expr_to_string e)

and compile_load ctx e : int -> frame -> Value.t =
  let addr, ty = compile_addr ctx e in
  match ty with
  | Minic.Ast.Tarray _ | Minic.Ast.Tstruct _ ->
      err "reading aggregate %s" (Minic.Pretty.expr_to_string e)
  | _ ->
      let size = Minic.Ctypes.sizeof (structs ctx.rt) ty in
      let rt = ctx.rt in
      fun tid frame ->
        let a = addr tid frame in
        rt.sink.mem_access ~tid ~addr:a ~size ~write:false;
        Mem.load rt.mem ~ty ~addr:a

and compile_expr ctx e : int -> frame -> Value.t =
  match e with
  | Minic.Ast.Int_lit n ->
      let v = Value.V_int n in
      fun _ _ -> v
  | Minic.Ast.Float_lit f ->
      let v = Value.V_float f in
      fun _ _ -> v
  | Minic.Ast.Ident name -> (
      match slot_of ctx name with
      | Some slot -> fun _ frame -> frame.(slot)
      | None -> (
          if name = "num_threads" then begin
            let v = Value.V_int ctx.rt.threads in
            fun _ _ -> v
          end
          else
            match global_type ctx.rt name with
            | Some _ -> compile_load ctx e
            | None -> err "unbound identifier %s" name))
  | Minic.Ast.Binop (Minic.Ast.And, a, b) ->
      let ca = compile_expr ctx a and cb = compile_expr ctx b in
      fun tid frame ->
        if Value.truthy (ca tid frame) then
          Value.of_bool (Value.truthy (cb tid frame))
        else Value.V_int 0
  | Minic.Ast.Binop (Minic.Ast.Or, a, b) ->
      let ca = compile_expr ctx a and cb = compile_expr ctx b in
      fun tid frame ->
        if Value.truthy (ca tid frame) then Value.V_int 1
        else Value.of_bool (Value.truthy (cb tid frame))
  | Minic.Ast.Binop (op, a, b) ->
      let ca = compile_expr ctx a and cb = compile_expr ctx b in
      fun tid frame -> Value.binop op (ca tid frame) (cb tid frame)
  | Minic.Ast.Unop (op, a) ->
      let ca = compile_expr ctx a in
      fun tid frame -> Value.unop op (ca tid frame)
  | Minic.Ast.Index _ | Minic.Ast.Field _ -> compile_load ctx e
  | Minic.Ast.Call (f, args) ->
      let cargs = List.map (compile_expr ctx) args in
      (* specialize the common unary case *)
      (match cargs with
      | [ one ] ->
          fun tid frame -> Value.builtin f [ one tid frame ]
      | _ -> fun tid frame -> Value.builtin f (List.map (fun c -> c tid frame) cargs))

(* ---- typed compilation ---------------------------------------------
   Mini-C is statically typed, so most expressions are known int or known
   float at compile time.  Compiling them to [int]/[float]-returning
   closures removes the per-node [Value.t] boxing that dominated the
   interpreter's allocation (~8 GB per quick bench run).  The generic
   [compile_expr] remains the semantics reference and the fallback for
   anything the typed paths don't cover; the typed closures perform the
   same sink accesses in the same order (operands right-to-left, matching
   the generic applications; rhs before lhs-read before lhs-write). *)

(* static type of an access path, mirroring compile_addr's resolution *)
and path_type ctx e : Minic.Ast.ctype option =
  match e with
  | Minic.Ast.Ident v -> global_type ctx.rt v
  | Minic.Ast.Index (p, _) -> (
      match path_type ctx p with
      | Some (Minic.Ast.Tarray (elem, _)) -> Some elem
      | _ -> None)
  | Minic.Ast.Field (p, f) -> (
      match path_type ctx p with
      | Some (Minic.Ast.Tstruct s) ->
          Some (Minic.Ctypes.field_type (structs ctx.rt) s f)
      | _ -> None)
  | _ -> None

(* whether the generic evaluator would produce a V_float; mirrors the
   resolution order of compile_expr (slots shadow num_threads and
   globals) and the promotion rules of Value.binop *)
and expr_is_float ctx e =
  match e with
  | Minic.Ast.Int_lit _ -> false
  | Minic.Ast.Float_lit _ -> true
  | Minic.Ast.Ident name -> (
      match slot_type ctx name with
      | Some ty -> Value.is_float_type ty
      | None ->
          if name = "num_threads" then false
          else (
            match global_type ctx.rt name with
            | Some ty -> Value.is_float_type ty
            | None -> false))
  | Minic.Ast.Binop
      ((Minic.Ast.Add | Minic.Ast.Sub | Minic.Ast.Mul | Minic.Ast.Div
       | Minic.Ast.Mod), a, b) ->
      expr_is_float ctx a || expr_is_float ctx b
  | Minic.Ast.Binop (_, _, _) -> false (* comparisons and &&/|| are ints *)
  | Minic.Ast.Unop (Minic.Ast.Neg, a) -> expr_is_float ctx a
  | Minic.Ast.Unop (Minic.Ast.Not, _) -> false
  | Minic.Ast.Index _ | Minic.Ast.Field _ -> (
      match path_type ctx e with
      | Some ty -> Value.is_float_type ty
      | None -> false)
  | Minic.Ast.Call (_, _) -> true (* every builtin returns a float *)

and compile_load_i ctx e : int -> frame -> int =
  let addr, ty = compile_addr ctx e in
  let size = Minic.Ctypes.sizeof (structs ctx.rt) ty in
  let rt = ctx.rt in
  fun tid frame ->
    let a = addr tid frame in
    rt.sink.mem_access ~tid ~addr:a ~size ~write:false;
    Mem.load_int rt.mem ~ty ~addr:a

and compile_load_f ctx e : int -> frame -> float =
  let addr, ty = compile_addr ctx e in
  let size = Minic.Ctypes.sizeof (structs ctx.rt) ty in
  let rt = ctx.rt in
  fun tid frame ->
    let a = addr tid frame in
    rt.sink.mem_access ~tid ~addr:a ~size ~write:false;
    Mem.load_float rt.mem ~ty ~addr:a

and compile_expr_i ctx e : int -> frame -> int =
  let fallback () =
    let ce = compile_expr ctx e in
    fun tid frame -> Value.to_int (ce tid frame)
  in
  match e with
  | Minic.Ast.Int_lit n -> fun _ _ -> n
  | Minic.Ast.Ident name -> (
      match slot_of ctx name with
      | Some slot -> fun _ frame -> Value.to_int frame.(slot)
      | None ->
          if name = "num_threads" then begin
            let n = ctx.rt.threads in
            fun _ _ -> n
          end
          else (
            match path_type ctx e with
            | Some (Minic.Ast.Tchar | Minic.Ast.Tint | Minic.Ast.Tlong) ->
                compile_load_i ctx e
            | _ -> fallback ()))
  | Minic.Ast.Binop
      ((Minic.Ast.Add | Minic.Ast.Sub | Minic.Ast.Mul) as op, a, b)
    when not (expr_is_float ctx a || expr_is_float ctx b) ->
      let ca = compile_expr_i ctx a and cb = compile_expr_i ctx b in
      (* operands right-to-left, like the generic application *)
      (match op with
      | Minic.Ast.Add ->
          fun tid frame ->
            let y = cb tid frame in
            ca tid frame + y
      | Minic.Ast.Sub ->
          fun tid frame ->
            let y = cb tid frame in
            ca tid frame - y
      | _ ->
          fun tid frame ->
            let y = cb tid frame in
            ca tid frame * y)
  | Minic.Ast.Binop ((Minic.Ast.Div | Minic.Ast.Mod) as op, a, b)
    when not (expr_is_float ctx a || expr_is_float ctx b) ->
      let ca = compile_expr_i ctx a and cb = compile_expr_i ctx b in
      (match op with
      | Minic.Ast.Div ->
          fun tid frame ->
            let y = cb tid frame in
            if y = 0 then raise Division_by_zero;
            ca tid frame / y
      | _ ->
          fun tid frame ->
            let y = cb tid frame in
            if y = 0 then raise Division_by_zero;
            ca tid frame mod y)
  | Minic.Ast.Binop
      ((Minic.Ast.Lt | Minic.Ast.Le | Minic.Ast.Gt | Minic.Ast.Ge
       | Minic.Ast.Eq | Minic.Ast.Ne | Minic.Ast.And | Minic.Ast.Or),
       _, _)
  | Minic.Ast.Unop (Minic.Ast.Not, _) ->
      let cc = compile_cond ctx e in
      fun tid frame -> if cc tid frame then 1 else 0
  | Minic.Ast.Unop (Minic.Ast.Neg, a) when not (expr_is_float ctx a) ->
      let ca = compile_expr_i ctx a in
      fun tid frame -> -ca tid frame
  | Minic.Ast.Index _ | Minic.Ast.Field _ -> (
      match path_type ctx e with
      | Some (Minic.Ast.Tchar | Minic.Ast.Tint | Minic.Ast.Tlong) ->
          compile_load_i ctx e
      | _ -> fallback ())
  | _ -> fallback ()

(* evaluate as float, promoting a statically-int expression *)
and compile_expr_as_f ctx e : int -> frame -> float =
  if expr_is_float ctx e then compile_expr_f ctx e
  else
    let ci = compile_expr_i ctx e in
    fun tid frame -> float_of_int (ci tid frame)

and compile_expr_f ctx e : int -> frame -> float =
  let fallback () =
    let ce = compile_expr ctx e in
    fun tid frame -> Value.to_float (ce tid frame)
  in
  match e with
  | Minic.Ast.Float_lit f -> fun _ _ -> f
  | Minic.Ast.Int_lit n ->
      let f = float_of_int n in
      fun _ _ -> f
  | Minic.Ast.Ident name -> (
      match slot_of ctx name with
      | Some slot -> fun _ frame -> Value.to_float frame.(slot)
      | None -> (
          match path_type ctx e with
          | Some (Minic.Ast.Tfloat | Minic.Ast.Tdouble) ->
              compile_load_f ctx e
          | _ -> fallback ()))
  | Minic.Ast.Binop
      ((Minic.Ast.Add | Minic.Ast.Sub | Minic.Ast.Mul | Minic.Ast.Div) as op,
       a, b) ->
      let ca = compile_expr_as_f ctx a and cb = compile_expr_as_f ctx b in
      (match op with
      | Minic.Ast.Add ->
          fun tid frame ->
            let y = cb tid frame in
            ca tid frame +. y
      | Minic.Ast.Sub ->
          fun tid frame ->
            let y = cb tid frame in
            ca tid frame -. y
      | Minic.Ast.Mul ->
          fun tid frame ->
            let y = cb tid frame in
            ca tid frame *. y
      | _ ->
          fun tid frame ->
            let y = cb tid frame in
            ca tid frame /. y)
  | Minic.Ast.Binop (Minic.Ast.Mod, a, b) ->
      let ca = compile_expr_as_f ctx a and cb = compile_expr_as_f ctx b in
      fun tid frame ->
        let y = cb tid frame in
        Float.rem (ca tid frame) y
  | Minic.Ast.Unop (Minic.Ast.Neg, a) ->
      let ca = compile_expr_as_f ctx a in
      fun tid frame -> -.(ca tid frame)
  | Minic.Ast.Index _ | Minic.Ast.Field _ -> (
      match path_type ctx e with
      | Some (Minic.Ast.Tfloat | Minic.Ast.Tdouble) -> compile_load_f ctx e
      | _ -> fallback ())
  | Minic.Ast.Call (name, [ a ]) -> (
      let g =
        match name with
        | "sin" -> Some sin
        | "cos" -> Some cos
        | "tan" -> Some tan
        | "sqrt" -> Some sqrt
        | "fabs" -> Some Float.abs
        | "exp" -> Some exp
        | "log" -> Some log
        | _ -> None
      in
      match g with
      | Some g ->
          let ca = compile_expr_as_f ctx a in
          fun tid frame -> g (ca tid frame)
      | None -> fallback ())
  | Minic.Ast.Call (name, [ a; b ]) -> (
      let g =
        match name with
        | "pow" -> Some Float.pow
        | "fmin" -> Some Float.min
        | "fmax" -> Some Float.max
        | _ -> None
      in
      match g with
      | Some g ->
          let ca = compile_expr_as_f ctx a
          and cb = compile_expr_as_f ctx b in
          fun tid frame ->
            let y = cb tid frame in
            g (ca tid frame) y
      | None -> fallback ())
  | _ -> fallback ()

and compile_cond ctx e : int -> frame -> bool =
  match e with
  | Minic.Ast.Binop
      ((Minic.Ast.Lt | Minic.Ast.Le | Minic.Ast.Gt | Minic.Ast.Ge
       | Minic.Ast.Eq | Minic.Ast.Ne) as op, a, b) ->
      if expr_is_float ctx a || expr_is_float ctx b then begin
        let ca = compile_expr_as_f ctx a and cb = compile_expr_as_f ctx b in
        match op with
        | Minic.Ast.Lt ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame < y
        | Minic.Ast.Le ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame <= y
        | Minic.Ast.Gt ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame > y
        | Minic.Ast.Ge ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame >= y
        | Minic.Ast.Eq ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame = y
        | _ ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame <> y
      end
      else begin
        let ca = compile_expr_i ctx a and cb = compile_expr_i ctx b in
        match op with
        | Minic.Ast.Lt ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame < y
        | Minic.Ast.Le ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame <= y
        | Minic.Ast.Gt ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame > y
        | Minic.Ast.Ge ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame >= y
        | Minic.Ast.Eq ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame = y
        | _ ->
            fun tid frame ->
              let y = cb tid frame in
              ca tid frame <> y
      end
  | Minic.Ast.Binop (Minic.Ast.And, a, b) ->
      let ca = compile_cond ctx a and cb = compile_cond ctx b in
      fun tid frame -> ca tid frame && cb tid frame
  | Minic.Ast.Binop (Minic.Ast.Or, a, b) ->
      let ca = compile_cond ctx a and cb = compile_cond ctx b in
      fun tid frame -> ca tid frame || cb tid frame
  | Minic.Ast.Unop (Minic.Ast.Not, a) ->
      let ca = compile_cond ctx a in
      fun tid frame -> not (ca tid frame)
  | _ ->
      if expr_is_float ctx e then begin
        let cf = compile_expr_f ctx e in
        fun tid frame -> cf tid frame <> 0.
      end
      else
        let ci = compile_expr_i ctx e in
        fun tid frame -> ci tid frame <> 0

(* compiled store into an lvalue *)
let compile_store ctx lhs : (int -> frame -> Value.t) * (int -> frame -> Value.t -> unit) =
  match lhs with
  | Minic.Ast.Ident name when slot_of ctx name <> None ->
      let slot = Option.get (slot_of ctx name) in
      ( (fun _ frame -> frame.(slot)),
        fun _ frame v -> frame.(slot) <- v )
  | Minic.Ast.Ident _ | Minic.Ast.Index _ | Minic.Ast.Field _ ->
      let addr, ty = compile_addr ctx lhs in
      (match ty with
      | Minic.Ast.Tarray _ | Minic.Ast.Tstruct _ ->
          err "assigning aggregate %s" (Minic.Pretty.expr_to_string lhs)
      | _ -> ());
      let size = Minic.Ctypes.sizeof (structs ctx.rt) ty in
      let rt = ctx.rt in
      ( (fun tid frame ->
          let a = addr tid frame in
          rt.sink.mem_access ~tid ~addr:a ~size ~write:false;
          Mem.load rt.mem ~ty ~addr:a),
        fun tid frame v ->
          let a = addr tid frame in
          rt.sink.mem_access ~tid ~addr:a ~size ~write:true;
          Mem.store rt.mem ~ty ~addr:a (Value.convert ty v) )
  | _ -> err "invalid assignment target %s" (Minic.Pretty.expr_to_string lhs)

exception Return_exc
exception Break_exc
exception Continue_exc

let binop_of_assign = function
  | Minic.Ast.A_add -> Minic.Ast.Add
  | Minic.Ast.A_sub -> Minic.Ast.Sub
  | Minic.Ast.A_mul -> Minic.Ast.Mul
  | Minic.Ast.A_div -> Minic.Ast.Div
  | Minic.Ast.A_set -> assert false

let float_fn_of = function
  | Minic.Ast.Add -> ( +. )
  | Minic.Ast.Sub -> ( -. )
  | Minic.Ast.Mul -> ( *. )
  | Minic.Ast.Div -> ( /. )
  | _ -> assert false

(* typed assignment: evaluate the rhs unboxed and store without building
   a Value.t.  Sink order matches the generic path exactly: rhs accesses,
   then (for compound ops) the lhs read, then the lhs write.  Falls back
   to the generic compile_store path whenever static types get exotic
   (e.g. an int lvalue with a float rhs). *)
let compile_assign ctx lhs op rhs : int -> frame -> unit =
  let generic () =
    match op with
    | Minic.Ast.A_set ->
        let crhs = compile_expr ctx rhs in
        let _, store = compile_store ctx lhs in
        fun tid frame -> store tid frame (crhs tid frame)
    | _ ->
        let crhs = compile_expr ctx rhs in
        let load, store = compile_store ctx lhs in
        let bop = binop_of_assign op in
        fun tid frame ->
          let rv = crhs tid frame in
          let old = load tid frame in
          store tid frame (Value.binop bop old rv)
  in
  match lhs with
  | Minic.Ast.Ident name when slot_of ctx name <> None -> (
      let slot = Option.get (slot_of ctx name) in
      let slot_is_float =
        match slot_type ctx name with
        | Some ty -> Value.is_float_type ty
        | None -> false
      in
      let rhs_is_float = expr_is_float ctx rhs in
      match op with
      | Minic.Ast.A_set ->
          if slot_is_float || rhs_is_float then
            if rhs_is_float then begin
              (* the generic path stores the rhs value unconverted, so a
                 float rhs lands as V_float whatever the slot type *)
              let cf = compile_expr_f ctx rhs in
              fun tid frame -> frame.(slot) <- Value.V_float (cf tid frame)
            end
            else generic ()
          else begin
            let ci = compile_expr_i ctx rhs in
            fun tid frame -> frame.(slot) <- Value.V_int (ci tid frame)
          end
      | _ ->
          if slot_is_float || rhs_is_float then begin
            (* Value.binop promotes to float when either side is *)
            let cf = compile_expr_as_f ctx rhs in
            let apply = float_fn_of (binop_of_assign op) in
            if slot_is_float then
              fun tid frame ->
                let rv = cf tid frame in
                frame.(slot) <-
                  Value.V_float (apply (Value.to_float frame.(slot)) rv)
            else generic ()
          end
          else begin
            let ci = compile_expr_i ctx rhs in
            let bop = binop_of_assign op in
            fun tid frame ->
              let rv = ci tid frame in
              let old = Value.to_int frame.(slot) in
              frame.(slot) <-
                (match bop with
                | Minic.Ast.Add -> Value.V_int (old + rv)
                | Minic.Ast.Sub -> Value.V_int (old - rv)
                | Minic.Ast.Mul -> Value.V_int (old * rv)
                | _ ->
                    if rv = 0 then raise Division_by_zero;
                    Value.V_int (old / rv))
          end)
  | Minic.Ast.Ident _ | Minic.Ast.Index _ | Minic.Ast.Field _ -> (
      match path_type ctx lhs with
      | Some ((Minic.Ast.Tfloat | Minic.Ast.Tdouble) as ty) ->
          let addr, _ = compile_addr ctx lhs in
          let size = Minic.Ctypes.sizeof (structs ctx.rt) ty in
          let rt = ctx.rt in
          (match op with
          | Minic.Ast.A_set ->
              let cf = compile_expr_as_f ctx rhs in
              fun tid frame ->
                let v = cf tid frame in
                let a = addr tid frame in
                rt.sink.mem_access ~tid ~addr:a ~size ~write:true;
                Mem.store_float rt.mem ~ty ~addr:a v
          | _ ->
              let cf = compile_expr_as_f ctx rhs in
              let apply = float_fn_of (binop_of_assign op) in
              (* the address is computed once per access, like the
                 generic load/store pair — an index expression that
                 itself reads memory must hit the sink twice *)
              fun tid frame ->
                let rv = cf tid frame in
                let a = addr tid frame in
                rt.sink.mem_access ~tid ~addr:a ~size ~write:false;
                let old = Mem.load_float rt.mem ~ty ~addr:a in
                let a = addr tid frame in
                rt.sink.mem_access ~tid ~addr:a ~size ~write:true;
                Mem.store_float rt.mem ~ty ~addr:a (apply old rv))
      | Some ((Minic.Ast.Tchar | Minic.Ast.Tint | Minic.Ast.Tlong) as ty)
        when not (expr_is_float ctx rhs) -> (
          let addr, _ = compile_addr ctx lhs in
          let size = Minic.Ctypes.sizeof (structs ctx.rt) ty in
          let rt = ctx.rt in
          match op with
          | Minic.Ast.A_set ->
              let ci = compile_expr_i ctx rhs in
              fun tid frame ->
                let v = ci tid frame in
                let a = addr tid frame in
                rt.sink.mem_access ~tid ~addr:a ~size ~write:true;
                Mem.store_int rt.mem ~ty ~addr:a v
          | _ ->
              let ci = compile_expr_i ctx rhs in
              let bop = binop_of_assign op in
              fun tid frame ->
                let rv = ci tid frame in
                let a = addr tid frame in
                rt.sink.mem_access ~tid ~addr:a ~size ~write:false;
                let old = Mem.load_int rt.mem ~ty ~addr:a in
                let res =
                  match bop with
                  | Minic.Ast.Add -> old + rv
                  | Minic.Ast.Sub -> old - rv
                  | Minic.Ast.Mul -> old * rv
                  | _ ->
                      if rv = 0 then raise Division_by_zero;
                      old / rv
                in
                let a = addr tid frame in
                rt.sink.mem_access ~tid ~addr:a ~size ~write:true;
                Mem.store_int rt.mem ~ty ~addr:a res)
      | _ -> generic ())
  | _ -> generic ()

(* estimated CPU cost of one execution of a statement, from the processor
   model (computed once at compile time) *)
let stmt_cost ctx stmt =
  let type_of_var v =
    match slot_type ctx v with
    | Some ty -> Some ty
    | None -> (
        match global_type ctx.rt v with
        | Some ty -> Some ty
        | None -> List.assoc_opt v Minic.Typecheck.implicit_params)
  in
  let ops =
    Costmodel.Op_count.of_body (structs ctx.rt) ~type_of:type_of_var
      ~core:Archspec.Latency.default [ stmt ]
  in
  (Costmodel.Processor_model.of_op_count ~core:Archspec.Latency.default ops)
    .Costmodel.Processor_model.cycles_per_iter

type compiled_stmt = t -> int -> frame -> unit

let rec compile_stmt ctx stmt : compiled_stmt =
  (* charge each statement's own work exactly once: compound statements
     delegate to their children, an [if] owns only its condition *)
  let cost =
    match stmt with
    | Minic.Ast.Sexpr _ | Minic.Ast.Sassign _ | Minic.Ast.Sdecl _
    | Minic.Ast.Sreturn _ ->
        stmt_cost ctx stmt
    | Minic.Ast.Sif (c, _, _) -> stmt_cost ctx (Minic.Ast.Sexpr c) +. 1.
    | Minic.Ast.Sbreak | Minic.Ast.Scontinue -> 1.
    | Minic.Ast.Sblock _ | Minic.Ast.Sfor _ | Minic.Ast.Swhile _ -> 0.
  in
  let body : compiled_stmt =
    match stmt with
    | Minic.Ast.Sexpr e ->
        let ce = compile_expr ctx e in
        fun _ tid frame -> ignore (ce tid frame)
    | Minic.Ast.Sassign (_, lhs, op, rhs) ->
        let ca = compile_assign ctx lhs op rhs in
        fun _ tid frame -> ca tid frame
    | Minic.Ast.Sdecl (ty, name, init) -> (
        add_slot ctx name ty;
        let slot = Option.get (slot_of ctx name) in
        match init with
        | Some e when Value.is_float_type ty ->
            let cf = compile_expr_as_f ctx e in
            fun _ tid frame -> frame.(slot) <- Value.V_float (cf tid frame)
        | Some e ->
            (* Value.convert to a non-float type is to_int *)
            let ci = compile_expr_i ctx e in
            fun _ tid frame -> frame.(slot) <- Value.V_int (ci tid frame)
        | None ->
            let zero = Value.zero_of ty in
            fun _ _ frame -> frame.(slot) <- zero)
    | Minic.Ast.Sblock stmts ->
        let cs = List.map (compile_stmt ctx) stmts in
        let arr = Array.of_list cs in
        fun rt tid frame ->
          for i = 0 to Array.length arr - 1 do
            arr.(i) rt tid frame
          done
    | Minic.Ast.Sif (c, then_, else_) -> (
        let cc = compile_cond ctx c in
        let ct = compile_stmt ctx then_ in
        match else_ with
        | Some e ->
            let ce = compile_stmt ctx e in
            fun rt tid frame ->
              if cc tid frame then ct rt tid frame else ce rt tid frame
        | None ->
            fun rt tid frame -> if cc tid frame then ct rt tid frame)
    | Minic.Ast.Sfor loop -> (
        match loop.Minic.Ast.pragma with
        | Some pragma -> compile_parallel_for ctx loop pragma
        | None -> compile_seq_for ctx loop)
    | Minic.Ast.Swhile (c, body) ->
        let cc = compile_cond ctx c in
        let cbody = compile_stmt ctx body in
        fun rt tid frame ->
          (try
             while cc tid frame do
               rt.sink.cpu ~tid rt.loop_iter_cost;
               try cbody rt tid frame with Continue_exc -> ()
             done
           with Break_exc -> ())
    | Minic.Ast.Sbreak -> fun _ _ _ -> raise Break_exc
    | Minic.Ast.Scontinue -> fun _ _ _ -> raise Continue_exc
    | Minic.Ast.Sreturn _ -> fun _ _ _ -> raise Return_exc
  in
  if cost = 0. then body
  else
    fun rt tid frame ->
      rt.sink.cpu ~tid cost;
      body rt tid frame

and induction_slot ctx loop =
  let v = loop.Minic.Ast.init_var in
  (* the induction variable always lives in a slot, mirroring the
     tree-walking interpreter's environment semantics *)
  add_slot ctx v Minic.Ast.Tint;
  Option.get (slot_of ctx v)

and compile_seq_for ctx loop : compiled_stmt =
  let slot = induction_slot ctx loop in
  let cinit = compile_expr_i ctx loop.Minic.Ast.init_expr in
  let ccond = compile_cond ctx loop.Minic.Ast.cond in
  let cstep = compile_expr_i ctx loop.Minic.Ast.step.Minic.Ast.step_by in
  let cbody = compile_stmt ctx loop.Minic.Ast.body in
  fun rt tid frame ->
    frame.(slot) <- Value.V_int (cinit tid frame);
    (try
       while ccond tid frame do
         rt.sink.cpu ~tid rt.loop_iter_cost;
         (try cbody rt tid frame with Continue_exc -> ());
         frame.(slot) <-
           Value.V_int (Value.to_int frame.(slot) + cstep tid frame)
       done
     with Break_exc -> ())

and compile_parallel_for ctx loop (pragma : Minic.Ast.pragma) : compiled_stmt =
  let slot = induction_slot ctx loop in
  let cinit = compile_expr_i ctx loop.Minic.Ast.init_expr in
  let cstep = compile_expr_i ctx loop.Minic.Ast.step.Minic.Ast.step_by in
  let var = loop.Minic.Ast.init_var in
  let cupper =
    match loop.Minic.Ast.cond with
    | Minic.Ast.Binop (Minic.Ast.Lt, Minic.Ast.Ident v, e) when v = var ->
        compile_expr_i ctx e
    | Minic.Ast.Binop (Minic.Ast.Le, Minic.Ast.Ident v, e) when v = var ->
        let ce = compile_expr_i ctx e in
        fun tid frame -> ce tid frame + 1
    | _ ->
        err "parallel loop condition must be 'var < bound' or 'var <= bound'"
  in
  let cbody = compile_stmt ctx loop.Minic.Ast.body in
  let reduction = pragma.Minic.Ast.reduction in
  let reduction_slots =
    List.concat_map
      (fun (op, vars) ->
        List.filter_map
          (fun v ->
            Option.map (fun s -> (op, s)) (slot_of ctx v))
          vars)
      reduction
  in
  fun rt tid0 frame ->
    let lower = cinit tid0 frame in
    let step = cstep tid0 frame in
    if step <= 0 then err "parallel loop with non-positive step";
    let upper = cupper tid0 frame in
    let total = if upper <= lower then 0 else (upper - lower + step - 1) / step in
    let threads = rt.threads in
    let chunk_clause =
      match rt.chunk_override with
      | Some c -> Some c
      | None -> (
          match pragma.Minic.Ast.schedule with
          | Some
              ( Minic.Ast.Sched_static c
              | Minic.Ast.Sched_dynamic c
              | Minic.Ast.Sched_guided c ) ->
              c
          | None -> None)
    in
    let kind =
      match pragma.Minic.Ast.schedule with
      | Some (Minic.Ast.Sched_dynamic _) -> `Dynamic
      | Some (Minic.Ast.Sched_guided _) -> `Guided
      | Some (Minic.Ast.Sched_static _) | None -> `Static
    in
    rt.sink.region_begin ~threads;
    let chunks_grabbed = Array.make threads 0 in
    (* next_iter tid: the iteration a thread executes next, or -1 when the
       thread is out of work; each kind deals chunks its own way *)
    let next_iter =
      match rt.sched_override with
      | Some (k, seed) ->
          (* seeded replay: execute the exact per-thread iteration
             sequences of the dispenser plan the cost model counts, so a
             simulated run is comparable to a Model run seed for seed *)
          let plan = Ompsched.Dispatch.plan ~threads ~total ~seed k in
          rt.steals <- rt.steals + Ompsched.Dispatch.steals plan;
          let granule = Ompsched.Dispatch.kind_chunk k in
          let cursors = Array.make threads 0 in
          fun tid ->
            let kth = cursors.(tid) in
            let q = Ompsched.Dispatch.nth_iter_int plan ~tid kth in
            if q >= 0 then begin
              if kth mod granule = 0 then
                chunks_grabbed.(tid) <- chunks_grabbed.(tid) + 1;
              cursors.(tid) <- kth + 1
            end;
            q
      | None -> (
      match kind with
      | `Static ->
          let chunk =
            match chunk_clause with
            | Some c -> c
            | None -> Ompsched.Schedule.block_chunk ~threads ~total
          in
          let sched = Ompsched.Schedule.make ~threads ~chunk ~total in
          let cursors = Array.make threads 0 in
          fun tid ->
            let k = cursors.(tid) in
            let q = Ompsched.Schedule.nth_iter_int sched ~tid k in
            if q >= 0 then begin
              if k mod chunk = 0 then
                chunks_grabbed.(tid) <- chunks_grabbed.(tid) + 1;
              cursors.(tid) <- k + 1
            end;
            q
      | `Dynamic ->
          (* threads grab the next [chunk] iterations from a shared
             counter whenever their current chunk is exhausted *)
          let chunk = max 1 (Option.value ~default:1 chunk_clause) in
          let next = ref 0 in
          let pos = Array.make threads 0 in
          let stop = Array.make threads 0 in
          fun tid ->
            if pos.(tid) < stop.(tid) then begin
              let q = pos.(tid) in
              pos.(tid) <- q + 1;
              q
            end
            else if !next >= total then -1
            else begin
              let s = !next in
              let len = min chunk (total - s) in
              next := s + len;
              chunks_grabbed.(tid) <- chunks_grabbed.(tid) + 1;
              pos.(tid) <- s + 1;
              stop.(tid) <- s + len;
              s
            end
      | `Guided ->
          (* chunk ~ remaining/threads, decaying, bounded below by the
             clause's minimum *)
          let min_chunk = max 1 (Option.value ~default:1 chunk_clause) in
          let next = ref 0 in
          let pos = Array.make threads 0 in
          let stop = Array.make threads 0 in
          fun tid ->
            if pos.(tid) < stop.(tid) then begin
              let q = pos.(tid) in
              pos.(tid) <- q + 1;
              q
            end
            else if !next >= total then -1
            else begin
              let s = !next in
              let remaining = total - s in
              let len =
                min remaining
                  (max min_chunk ((remaining + threads - 1) / threads))
              in
              next := s + len;
              chunks_grabbed.(tid) <- chunks_grabbed.(tid) + 1;
              pos.(tid) <- s + 1;
              stop.(tid) <- s + len;
              s
            end)
    in
    (* firstprivate-style frames *)
    let frames = Array.init threads (fun _ -> Array.copy frame) in
    List.iter
      (fun (op, s) ->
        let neutral =
          match op with
          | Minic.Ast.Mul -> Value.V_float 1.
          | _ -> Value.V_float 0.
        in
        Array.iter (fun f -> f.(s) <- neutral) frames)
      reduction_slots;
    let live = ref threads in
    let done_ = Array.make threads false in
    while !live > 0 do
      for tid = 0 to threads - 1 do
        if not done_.(tid) then begin
          let w = ref 0 in
          let continue_ = ref true in
          while !continue_ && !w < rt.window do
            let q = next_iter tid in
            if q >= 0 then begin
              frames.(tid).(slot) <- Value.V_int (lower + (q * step));
              rt.sink.cpu ~tid rt.loop_iter_cost;
              (try cbody rt tid frames.(tid) with
              | Continue_exc -> ()
              | Break_exc -> err "break out of an OpenMP worksharing loop");
              incr w
            end
            else begin
              done_.(tid) <- true;
              decr live;
              continue_ := false
            end
          done
        end
      done
    done;
    (* fold reductions back into the caller's frame *)
    List.iter
      (fun (op, s) ->
        let acc =
          Array.fold_left
            (fun acc f -> Value.binop op acc f.(s))
            frame.(s) frames
        in
        frame.(s) <- acc)
      reduction_slots;
    let chunks_per_thread = Array.fold_left max 0 chunks_grabbed in
    rt.sink.region_end ~chunks_per_thread

let compile_func t (f : Minic.Ast.func) : compiled_func =
  let locals = Minic.Typecheck.locals_of_func t.checked f in
  let ctx = { rt = t; slots = locals } in
  let cs = List.map (compile_stmt ctx) f.Minic.Ast.body in
  let arr = Array.of_list cs in
  let nslots = List.length ctx.slots in
  {
    nslots;
    body =
      (fun rt tid frame ->
        try
          for i = 0 to Array.length arr - 1 do
            arr.(i) rt tid frame
          done
        with Return_exc -> ());
  }

let compiled_of t ~func =
  match Hashtbl.find_opt t.compiled func with
  | Some c -> c
  | None ->
      let f =
        match Minic.Ast.find_func t.checked.Minic.Typecheck.prog func with
        | Some f -> f
        | None -> err "no function named %s" func
      in
      if f.Minic.Ast.params <> [] then
        err "%s takes parameters; only parameterless kernels can be executed"
          func;
      let c = compile_func t f in
      Hashtbl.replace t.compiled func c;
      c

let exec t ~func =
  let c = compiled_of t ~func in
  let frame = Array.make (max 1 c.nslots) (Value.V_int 0) in
  c.body t 0 frame

type sel = Idx of int | Fld of string

let read_global t name sels =
  let addr0 =
    try Loopir.Layout.addr_of t.layout name
    with Not_found -> err "unknown global %s" name
  in
  let ty0 =
    match global_type t name with Some ty -> ty | None -> assert false
  in
  let addr, ty =
    List.fold_left
      (fun (addr, ty) sel ->
        match (sel, ty) with
        | Idx i, Minic.Ast.Tarray (elem, n) ->
            if i < 0 || i >= n then err "read_global: index out of bounds";
            (addr + (i * Minic.Ctypes.sizeof (structs t) elem), elem)
        | Fld f, Minic.Ast.Tstruct s ->
            ( addr + Minic.Ctypes.field_offset (structs t) s f,
              Minic.Ctypes.field_type (structs t) s f )
        | Idx _, _ -> err "read_global: index into non-array"
        | Fld _, _ -> err "read_global: field of non-struct")
      (addr0, ty0) sels
  in
  Mem.load t.mem ~ty ~addr

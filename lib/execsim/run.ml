type measurement = {
  threads : int;
  chunk : int option;
  sched : (Ompsched.Dispatch.kind * int) option;
  steals : int;
  wall_cycles : float;
  seconds : float;
  per_thread_cycles : float array;
  stats : Cachesim.Stats.t;
}

let overhead = Ompsched.Overhead.default

let measure ?(arch = Archspec.Arch.paper_machine) ?(interleave_window = 4)
    ?(run_init = true) ?chunk ?sched ~threads (kernel : Kernels.Kernel.t) =
  let checked = Kernels.Kernel.parse kernel in
  let coherence = Cachesim.Coherence.create ~cores:threads arch in
  let cycles = Array.make threads 0. in
  let timing = ref false in
  let sink =
    {
      Interp.mem_access =
        (fun ~tid ~addr ~size ~write ->
          let r = Cachesim.Coherence.access coherence ~core:tid ~addr ~size ~write in
          if !timing then
            cycles.(tid) <- cycles.(tid) +. float_of_int r.Cachesim.Coherence.latency);
      cpu =
        (fun ~tid c -> if !timing then cycles.(tid) <- cycles.(tid) +. c);
      region_begin =
        (fun ~threads:team ->
          if !timing then begin
            (* workers wait at the fork while the master runs ahead *)
            let m = cycles.(0) in
            for t = 1 to min team threads - 1 do
              cycles.(t) <- Float.max cycles.(t) m
            done
          end);
      region_end =
        (fun ~chunks_per_thread ->
          if !timing then begin
            let ovh =
              float_of_int
                (Ompsched.Overhead.parallel_overhead_cycles overhead ~threads
                   ~chunks_per_thread)
            in
            (* implicit barrier at region end *)
            let m = Array.fold_left Float.max 0. cycles +. ovh in
            Array.fill cycles 0 threads m
          end);
    }
  in
  let interp =
    Interp.create ~threads ?chunk_override:chunk ?sched_override:sched
      ~interleave_window ~sink checked
  in
  (match (run_init, kernel.Kernels.Kernel.init_func) with
  | true, Some init -> Interp.exec interp ~func:init
  | true, None | false, _ -> ());
  let before = Cachesim.Stats.copy (Cachesim.Coherence.aggregate_stats coherence) in
  timing := true;
  Interp.exec interp ~func:kernel.Kernels.Kernel.func;
  timing := false;
  let stats =
    Cachesim.Stats.sub (Cachesim.Coherence.aggregate_stats coherence) before
  in
  let wall = Array.fold_left Float.max 0. cycles in
  {
    threads;
    chunk;
    sched;
    steals = Interp.steals interp;
    wall_cycles = wall;
    seconds = Archspec.Arch.cycles_to_seconds arch wall;
    per_thread_cycles = cycles;
    stats;
  }

type comparison = { fs : measurement; nfs : measurement; percent : float }

let measured_fs_percent ?arch ?interleave_window ?fs_chunk ?nfs_chunk ~threads
    (kernel : Kernels.Kernel.t) =
  let fs_chunk =
    Option.value ~default:kernel.Kernels.Kernel.fs_chunk fs_chunk
  in
  let nfs_chunk =
    Option.value ~default:kernel.Kernels.Kernel.nfs_chunk nfs_chunk
  in
  let fs = measure ?arch ?interleave_window ~chunk:fs_chunk ~threads kernel in
  let nfs = measure ?arch ?interleave_window ~chunk:nfs_chunk ~threads kernel in
  let percent =
    if fs.wall_cycles <= 0. then 0.
    else 100. *. (fs.wall_cycles -. nfs.wall_cycles) /. fs.wall_cycles
  in
  { fs; nfs; percent }

let pp_measurement ppf m =
  match m.sched with
  | Some (k, seed) ->
      Format.fprintf ppf
        "@[<v>%d threads, schedule(%s) seed %d%s: wall %.0f cycles (%.4f \
         s)@,%a@]"
        m.threads
        (Ompsched.Dispatch.kind_name k)
        seed
        (if m.steals > 0 then Printf.sprintf ", %d steal(s)" m.steals else "")
        m.wall_cycles m.seconds Cachesim.Stats.pp m.stats
  | None ->
      Format.fprintf ppf
        "@[<v>%d threads, chunk %s: wall %.0f cycles (%.4f s)@,%a@]" m.threads
        (match m.chunk with Some c -> string_of_int c | None -> "(pragma)")
        m.wall_cycles m.seconds Cachesim.Stats.pp m.stats

(** Minimal JSON tree and deterministic printer for the lint reports.

    The repository deliberately avoids external JSON dependencies; this is
    just enough to emit the SARIF-shaped diagnostics of {!Diag} with stable,
    golden-testable output (two-space indentation, object keys in insertion
    order, no trailing whitespace). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation and a trailing newline. *)

val escape : string -> string
(** JSON string-literal escaping (without the surrounding quotes). *)

(** Exact integer feasibility of affine constraint systems — the Omega
    test.

    A system is a conjunction of equalities [e = 0] and inequalities
    [g >= 0] over {!Loopir.Affine} forms; variables range over all of
    [Z] (callers add explicit non-negativity rows where needed).  The
    decision procedure is Fourier–Motzkin elimination with Pugh's
    integer tightenings:

    - every row is normalized by the GCD of its coefficients (the
      constant of an inequality is floor-divided — integer tightening;
      an equality whose constant is not divisible is immediately
      unsatisfiable);
    - equalities are eliminated first, by substitution when some
      coefficient is [±1] and otherwise by the mod-hat reduction that
      introduces a fresh variable with a unit coefficient;
    - eliminating a variable [x] from lower bounds [a x + L >= 0] and
      upper bounds [-b x + U >= 0] takes the {e dark shadow}
      [a U + b L >= (a-1)(b-1)] when it differs from the {e real
      shadow} [a U + b L >= 0]; when [a = 1] for all lower bounds or
      [b = 1] for all upper bounds the two coincide and the projection
      is exact;
    - when the real shadow is satisfiable but the dark shadow is not,
      the remaining {e splinters} are enumerated: for each lower bound
      [(a, L)] and each [i] in [0 .. (a*bmax - a - bmax)/bmax] the
      equality [a x + L = i] is added and the system re-solved.

    The procedure is a complete decision procedure for integer linear
    arithmetic conjunctions, so both answers are {e must} results — and
    a satisfiable system yields a concrete integer witness, rebuilt by
    back-substitution through the eliminations.  Work is metered by a
    {!budget}: every normalization, combination and splinter costs a
    step, and {!Out_of_budget} escapes when the allowance is spent, so
    callers can fall back to a conservative answer on blowup. *)

type sys = {
  eqs : Loopir.Affine.t list;  (** each constraint [e = 0] *)
  geqs : Loopir.Affine.t list;  (** each constraint [g >= 0] *)
}

type budget
(** Mutable step allowance, shared across the solver calls of one
    analysis so a pathological pair cannot stall the pipeline. *)

exception Out_of_budget

val budget : int -> budget
(** A fresh allowance of [n] elementary steps. *)

val spent : budget -> int
(** Steps consumed so far. *)

val solve : budget -> sys -> (string * int) list option
(** [Some model] with a satisfying integer assignment (variables that
    vanished during elimination default to [0] and may be absent), or
    [None] when the system has no integer solution.  Exact in both
    directions.
    @raise Out_of_budget when the allowance runs out. *)

val decide : budget -> sys -> bool
(** [solve b s <> None]. *)

(** Closed-form false-sharing estimator for constant-stride nests.

    For loop nests whose written references advance by a constant byte
    stride per parallel iteration, the number of FS cases {!Fsmodel.Model}
    would count can be computed analytically: every cache line of a written
    array is touched by a short, contiguous window of parallel iterations
    (the chunk-boundary-crossing window), the static schedule maps each of
    those iterations to a (thread, lockstep-step) pair in closed form, and
    the model's 1-to-All comparison reduces to prefix counting of distinct
    earlier writers per line — no cache state is simulated.

    The estimator is {e certifying}: it returns [Exact] only when it can
    prove its count equals [Model.run]'s, and otherwise reports why not so
    the caller can fall back to the engine.  The certificates are:

    - {e in-window residency}: between a holder's consecutive touches of a
      line, fewer distinct lines are inserted than the stack capacity, so
      no holder is evicted while a line's window is live;
    - {e cross-region eviction} (sequential outer loops): every thread
      touches at least [capacity + 1] distinct lines per region, so lines
      are always evicted between regions and regions contribute
      independently; or
    - {e cross-region residency}: every thread touches at most [capacity]
      distinct lines, so nothing is ever evicted and steady-state regions
      count full writer sets.

    Irregular nests — non-affine or inner-variable-dependent writes,
    non-constant strides, dynamic schedules — are [Inapplicable]. *)

type info = {
  fs_cases : int;  (** provably equal to [Model.run]'s [fs_cases] *)
  lines_analyzed : int;  (** cache lines enumerated *)
  regions : int;  (** sequential outer-loop regions *)
}

type result = Exact of info | Inapplicable of string

val estimate :
  Fsmodel.Model.config ->
  nest:Loopir.Loop_nest.t ->
  checked:Minic.Typecheck.checked ->
  result

(** Closed-form false-sharing estimator for constant-stride nests.

    For loop nests whose written references advance by a constant byte
    stride per parallel iteration, the number of FS cases {!Fsmodel.Model}
    would count can be computed analytically: every cache line of a written
    array is touched by a short, contiguous window of parallel iterations
    (the chunk-boundary-crossing window), the static schedule maps each of
    those iterations to a (thread, lockstep-step) pair in closed form, and
    the model's 1-to-All comparison reduces to prefix counting of distinct
    earlier writers per line — no cache state is simulated.

    The estimator is {e certifying}: it returns [Exact] only when it can
    prove its count equals [Model.run]'s, and otherwise reports why not so
    the caller can fall back to the engine.  The certificates are:

    - {e in-window residency}: between a holder's consecutive touches of a
      line, fewer distinct lines are inserted than the stack capacity, so
      no holder is evicted while a line's window is live;
    - {e cross-region eviction} (sequential outer loops): every thread
      touches at least [capacity + 1] distinct lines per region, so lines
      are always evicted between regions and regions contribute
      independently; or
    - {e cross-region residency}: every thread touches at most [capacity]
      distinct lines, so nothing is ever evicted and steady-state regions
      count full writer sets.

    Irregular nests — non-affine or inner-variable-dependent writes,
    non-constant strides, dynamic schedules — are [Inapplicable]. *)

type info = {
  fs_cases : int;  (** provably equal to [Model.run]'s [fs_cases] *)
  lines_analyzed : int;  (** cache lines enumerated *)
  regions : int;  (** sequential outer-loop regions *)
  regime : string;
      (** which certificate applied: ["empty"], ["single"], ["reset"],
          ["hold"] or ["multi"] *)
}

type result = Exact of info | Inapplicable of string

val estimate :
  Fsmodel.Model.config ->
  nest:Loopir.Loop_nest.t ->
  checked:Minic.Typecheck.checked ->
  result

(** {1 Parametric certificates}

    With all parameters but one fixed, the exact count is a
    {e quasi-polynomial} in the free parameter [p]: writing
    [p = base + r + M*q] with [0 <= r < M], the count is a polynomial in
    [q] for each residue [r].  [M] is the least common period of the
    static round-robin schedule ([chunk * threads] parallel iterations)
    and of each constant stride's cache-line phase
    ([line_bytes / gcd(line_bytes, stride)]); growing [p] by [M] extends
    every written array by a whole number of cache lines carrying the
    same thread-interleaving pattern.  The polynomial degree is bounded
    by the number of loops whose bounds mention [p].

    [estimate_sym] fits the per-residue polynomials from [degree + 1]
    oracle samples and cross-checks each residue at interior points; the
    far end of the domain is then scanned downward until a full period
    agrees with the fit, tabulating any boundary points that deviate
    (near [hi], written segments of adjacent outer iterations can come
    within a cache line of each other, adding cross-row sharing the bulk
    quasi-polynomial cannot see).  The oracle is the certifying concrete
    {!estimate} where it applies and {!Fsmodel.Model.run} itself where
    it does not ([sc_regime = "engine"]) — both are the exact count the
    certificate promises, the engine is just slower.  A certificate is
    returned only when every sample succeeds under one regime and every
    check matches. *)

type sym_cert = {
  sc_param : string;
  sc_base : int;  (** domain lower bound *)
  sc_hi : int;  (** domain upper bound, inclusive *)
  sc_modulus : int;  (** the period [M] *)
  sc_coeffs : int array array;
      (** [sc_coeffs.(r).(j)]: j-th Newton forward difference of the
          residue-[r] polynomial; the count at [base + r + M*q] is
          [sum_j sc_coeffs.(r).(j) * C(q, j)] *)
  sc_tail : (int * int) list;
      (** exact counts at the boundary points near [sc_hi] where the
          oracle deviates from the fitted quasi-polynomial; at most two
          periods' worth, and they override the polynomial in
          {!sym_eval} *)
  sc_regime : string;
}

type sym_result = Sym of sym_cert | Sym_inapplicable of string

val estimate_sym :
  Fsmodel.Model.config ->
  nest:Loopir.Loop_nest.t ->
  checked:Minic.Typecheck.checked ->
  param:string ->
  ?hi:int ->
  unit ->
  sym_result
(** [estimate_sym cfg ~nest ~checked ~param ?hi ()] fits a certificate
    for free parameter [param] over a domain ending at [hi] (default
    32768 — pass the in-bounds limit when one is known).  The domain's
    lower end is chosen automatically, climbing past cache-regime
    transitions until the count is uniform. *)

val sym_eval : sym_cert -> int -> int
(** Exact count at one parameter value.
    @raise Invalid_argument outside [[sc_base, sc_hi]]. *)

val sym_to_string : sym_cert -> string
(** Human form of the closed-form count, e.g.
    ["112*q + [0, 14, 28, ...][r]  where q = (n - 256) / 8, ..."]. *)

(** The whole-program lint pass: discover every [omp parallel for] nest,
    classify reference pairs with {!Depend}, quantify false sharing with
    {!Closed_form} (falling back to the {!Fsmodel.Model} engine), and
    emit severity-ranked {!Diag} findings with fix-its from the advisor
    and the elimination planner.

    Rules:
    - ["race/loop-carried"] (error): a write and another access to the
      same base may touch the same bytes in different parallel
      iterations — the loop is not safely parallel.
    - ["fs/line-conflict"] (warning; note when the model counts zero
      cases): accesses proven byte-disjoint across parallel iterations
      may still share a cache line.
    - ["analysis/unknown"] (warning): the nest or a dependence could not
      be analyzed (non-affine bounds or subscripts).
    - ["analysis/exact-budget"] (warning, [`On] mode only): the exact
      dependence tier gave up on a pair (budget exhaustion or an
      unsupported construct) and the Banerjee verdict was kept.

    Fix-its (a [schedule(static, c)] chunk from {!Fsmodel.Advisor} and
    padding/spreading from {!Fsmodel.Eliminate}) are attached to
    ["fs/line-conflict"] findings only when the nest has no race
    findings: tuning the schedule of a racy loop would legitimize a
    transformation that is unsound to begin with.

    {b Parametric nests.}  A nest whose loop bounds mention identifiers
    bound neither by [params] nor by a [#define] is analyzed
    symbolically instead of rejected: verdicts come from
    {!Depend.pairs_sym} and hold for {e every} admissible value of the
    free parameters, findings carry the parameter region they hold in
    ({!Diag.finding.region}), and when a single free parameter remains
    the count is the certified quasi-polynomial of
    {!Closed_form.estimate_sym} ({!Diag.finding.symbolic}).  Fix-its are
    concrete-only. *)

type cost_model = [ `Sim | `Analytic | `Both ]
(** How findings are quantified and costed:
    - [`Sim] (default): closed form when certified, the
      {!Fsmodel.Model} engine otherwise; no Eq. 1 context attached.
    - [`Analytic]: zero engine evaluations — FS counts come only from
      {!Closed_form} certificates, the Eq. 1 breakdown from
      {!Reuse.analyze}, and findings report why when no certificate
      applies.  Fix-its lose the advisor's chunk sweep (engine-backed).
    - [`Both]: engine-backed counts {e and} the analytic Eq. 1 context.
*)

val cost_model_name : cost_model -> string
val cost_model_of_string : string -> cost_model option

type options = {
  arch : Archspec.Arch.t;
  threads : int;
  chunk : int option;  (** overrides the pragma's [schedule] chunk *)
  fixits : bool;  (** run the advisor / planner for remediations *)
  params : (string * int) list;
      (** extra [-p NAME=VAL] bindings for identifiers in loop bounds;
          ["num_threads"] is always bound to [threads] *)
  exact : Depend.exact_mode;
      (** exact dependence tier: [`Auto] (default) runs it and reports
          fallbacks silently, [`On] additionally emits
          ["analysis/exact-budget"] warnings, [`Off] disables it *)
  exact_budget : int;  (** solver step allowance per reference pair *)
  cost_model : cost_model;
  sched : Ompsched.Dispatch.kind option;
      (** replay a nondeterministic schedule instead of the static
          round-robin deal: FS counts become a {!Dist} distribution over
          the seed set.  [None] follows the pragma — a
          [schedule(dynamic)]/[(guided)] pragma is replayed too; only
          [schedule(static)] stays on the closed-form path *)
  seeds : int;  (** seed-set size for distribution-valued verdicts *)
}

val default_options : options
(** Paper machine, 8 threads, pragma chunk, fix-its on, no extra
    parameters, [`Sim] cost model, pragma schedule, 8 seeds. *)

val run :
  ?opts:options -> uri:string -> Minic.Typecheck.checked -> Diag.report
(** Lint every parallel function of the program.  Findings are sorted
    with {!Diag.sort}; [uri] is only used for rendering. *)

open Loopir

type options = {
  arch : Archspec.Arch.t;
  threads : int;
  chunk : int option;
  fixits : bool;
}

let default_options =
  {
    arch = Archspec.Arch.paper_machine;
    threads = 8;
    chunk = None;
    fixits = true;
  }

let access_word r = if Array_ref.is_write r then "write" else "read"

let span_of_pair (p : Depend.pair) =
  Minic.Span.join p.Depend.a.Array_ref.span p.Depend.b.Array_ref.span

(* One finding per racy pair. *)
let race_finding ~func (p : Depend.pair) =
  {
    Diag.rule = "race/loop-carried";
    severity = Diag.Error;
    span = span_of_pair p;
    func;
    message =
      Printf.sprintf
        "loop-carried dependence: %s (%s) and %s (%s) may touch the same \
         bytes in different iterations of the parallel loop"
        p.Depend.a.Array_ref.repr (access_word p.Depend.a)
        p.Depend.b.Array_ref.repr (access_word p.Depend.b);
    fixits = [];
  }

(* Unknown verdicts collapse to one finding per distinct reason. *)
let unknown_findings ~func pairs =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (p : Depend.pair) ->
      match p.Depend.verdict with
      | Depend.Unknown reason when not (Hashtbl.mem seen reason) ->
          Hashtbl.add seen reason ();
          Some
            {
              Diag.rule = "analysis/unknown";
              severity = Diag.Warning;
              span = span_of_pair p;
              func;
              message =
                Printf.sprintf
                  "cannot prove %s and %s independent: %s"
                  p.Depend.a.Array_ref.repr p.Depend.b.Array_ref.repr reason;
              fixits = [];
            }
      | _ -> None)
    pairs

(* Quantify a nest's false sharing: certified closed form when it
   applies, the exact engine otherwise. *)
let fs_count cfg ~nest ~checked =
  match Closed_form.estimate cfg ~nest ~checked with
  | Closed_form.Exact info -> (info.Closed_form.fs_cases, "closed form")
  | Closed_form.Inapplicable _ ->
      ((Fsmodel.Model.run cfg ~nest ~checked).Fsmodel.Model.fs_cases, "engine")

let fixits_for ~opts ~checked ~base advice =
  match advice with
  | None -> []
  | Some (a : Fsmodel.Advisor.advice) ->
      let chunk_fix =
        match a.Fsmodel.Advisor.best_chunk with
        | Some c ->
            [
              {
                Diag.title = Printf.sprintf "schedule(static, %d)" c;
                detail =
                  Printf.sprintf
                    "smallest chunk whose predicted false sharing falls \
                     below 5%% of the chunk-1 level at %d threads"
                    opts.threads;
              };
            ]
        | None -> []
      in
      let victims =
        List.filter
          (fun (v : Fsmodel.Advisor.victim) -> v.Fsmodel.Advisor.base = base)
          a.Fsmodel.Advisor.victims
      in
      let line_bytes = Archspec.Arch.line_bytes opts.arch in
      let pad_fix =
        match Fsmodel.Eliminate.plan_for checked ~line_bytes victims with
        | plan ->
            List.map
              (function
                | Fsmodel.Eliminate.Pad_struct { struct_name; pad_bytes } ->
                    {
                      Diag.title =
                        Printf.sprintf "pad struct %s by %d byte(s)"
                          struct_name pad_bytes;
                      detail =
                        "a char tail field pushes consecutive elements onto \
                         distinct cache lines";
                    }
                | Fsmodel.Eliminate.Spread_array { base; factor } ->
                    {
                      Diag.title =
                        Printf.sprintf "spread %s by a factor of %d" base
                          factor;
                      detail =
                        "inter-element padding: one element per cache line";
                    })
              plan.Fsmodel.Eliminate.rewrites
        | exception Fsmodel.Eliminate.Unsupported _ -> []
      in
      pad_fix @ chunk_fix

(* One finding per conflicting base of the nest. *)
let fs_findings ~opts ~checked ~func ~advice ~races conflicts cfg nest =
  if conflicts = [] then []
  else
    let fs, how = fs_count cfg ~nest ~checked in
    let bases =
      List.sort_uniq compare
        (List.map (fun (p : Depend.pair) -> p.Depend.a.Array_ref.base)
           conflicts)
    in
    List.map
      (fun base ->
        let ps =
          List.filter
            (fun (p : Depend.pair) -> p.Depend.a.Array_ref.base = base)
            conflicts
        in
        let example = List.hd ps in
        let span =
          List.fold_left
            (fun s p -> Minic.Span.join s (span_of_pair p))
            Minic.Span.none ps
        in
        let severity = if fs > 0 then Diag.Warning else Diag.Info in
        let quant =
          if fs > 0 then
            Printf.sprintf
              "the cost model counts %d false-sharing case(s) in this nest \
               at %d threads (%s)"
              fs opts.threads how
          else
            Printf.sprintf
              "but the cost model counts no false-sharing case at %d \
               threads (%s)"
              opts.threads how
        in
        let fixits =
          if opts.fixits && races = [] && fs > 0 then
            fixits_for ~opts ~checked ~base advice
          else []
        in
        {
          Diag.rule = "fs/line-conflict";
          severity;
          span;
          func;
          message =
            Printf.sprintf
              "%s and %s are byte-disjoint across parallel iterations but \
               may share a cache line; %s"
              example.Depend.a.Array_ref.repr
              example.Depend.b.Array_ref.repr quant;
          fixits;
        })
      bases

let lint_nest ~opts ~checked ~func ~advice nest =
  let line_bytes = Archspec.Arch.line_bytes opts.arch in
  let params = [ ("num_threads", opts.threads) ] in
  let pairs = Depend.pairs ~line_bytes ~params nest in
  let with_verdict v =
    List.filter (fun (p : Depend.pair) -> p.Depend.verdict = v) pairs
  in
  let races = with_verdict Depend.Loop_carried in
  let conflicts = with_verdict Depend.Line_conflict in
  let cfg =
    { (Fsmodel.Model.default_config ~arch:opts.arch ~threads:opts.threads ())
      with chunk = opts.chunk }
  in
  let advice = if races = [] then advice else None in
  List.map (race_finding ~func) races
  @ unknown_findings ~func pairs
  @ fs_findings ~opts ~checked ~func ~advice ~races conflicts cfg nest

let lint_function ~opts ~checked func =
  match
    Lower.lower_all checked ~func
      ~params:[ ("num_threads", opts.threads) ]
  with
  | exception Lower.Lower_error m ->
      [
        {
          Diag.rule = "analysis/unknown";
          severity = Diag.Warning;
          span = Minic.Span.none;
          func;
          message = Printf.sprintf "cannot analyze %s: %s" func m;
          fixits = [];
        };
      ]
  | nests ->
      (* the advisor sweep is per function; share it across its nests
         and skip it entirely when fix-its are off *)
      let advice =
        if opts.fixits then
          try
            Some
              (Fsmodel.Advisor.advise ~arch:opts.arch ~threads:opts.threads
                 ~func checked)
          with _ -> None
        else None
      in
      List.concat_map (lint_nest ~opts ~checked ~func ~advice) nests

let run ?(opts = default_options) ~uri checked =
  let funcs =
    Lower.find_parallel_functions checked.Minic.Typecheck.prog
  in
  let findings = List.concat_map (lint_function ~opts ~checked) funcs in
  { Diag.uri; findings = Diag.sort findings }

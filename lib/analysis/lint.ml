open Loopir

type cost_model = [ `Sim | `Analytic | `Both ]

let cost_model_name = function
  | `Sim -> "sim"
  | `Analytic -> "analytic"
  | `Both -> "both"

let cost_model_of_string = function
  | "sim" -> Some `Sim
  | "analytic" -> Some `Analytic
  | "both" -> Some `Both
  | _ -> None

type options = {
  arch : Archspec.Arch.t;
  threads : int;
  chunk : int option;
  fixits : bool;
  params : (string * int) list;  (* extra -p NAME=VAL bindings *)
  exact : Depend.exact_mode;
  exact_budget : int;
  cost_model : cost_model;
  sched : Ompsched.Dispatch.kind option;
      (* replay a nondeterministic schedule instead of the static deal *)
  seeds : int;  (* seed-set size for distribution-valued FS verdicts *)
}

let default_options =
  {
    arch = Archspec.Arch.paper_machine;
    threads = 8;
    chunk = None;
    fixits = true;
    params = [];
    exact = `Auto;
    exact_budget = Depend.default_exact_budget;
    cost_model = `Sim;
    sched = None;
    seeds = 8;
  }

(* The dispatcher kind a nest is analyzed under: an explicit --schedule
   wins; otherwise a dynamic/guided pragma in the source is replayed
   with its own chunk (or --chunk).  Static stays on the closed-form
   round-robin path. *)
let sched_kind_of ~opts nest =
  let granule default =
    match opts.chunk with
    | Some c -> c
    | None -> (
        match Loop_nest.chunk_spec nest with Some c -> c | None -> default)
  in
  match opts.sched with
  | Some k -> Some k
  | None -> (
      match Loop_nest.schedule_kind nest with
      | `Static -> None
      | `Dynamic -> Some (Ompsched.Dispatch.Dynamic { chunk = granule 1 })
      | `Guided -> Some (Ompsched.Dispatch.Guided { min_chunk = granule 1 }))

let all_params opts = ("num_threads", opts.threads) :: opts.params

let access_word r = if Array_ref.is_write r then "write" else "read"

let span_of_refs (a : Array_ref.t) (b : Array_ref.t) =
  Minic.Span.join a.Array_ref.span b.Array_ref.span

let span_of_pair (p : Depend.pair) = span_of_refs p.Depend.a p.Depend.b

(* Diag backend/witness fields from a pair's evidence: the backend is
   only noteworthy past the default tier. *)
let ev_fields (ev : Depend.evidence) =
  let backend =
    match ev.Depend.ev_backend with
    | Depend.Banerjee -> None
    | b -> Some (Depend.backend_name b)
  in
  (backend, Option.map Depend.witness_to_string ev.Depend.ev_witness)

(* With --exact on (not auto), budget fallbacks become findings of
   their own instead of silent SARIF properties. *)
let fallback_findings ~opts ~func pairs_ev =
  if opts.exact <> `On then []
  else
    List.filter_map
      (fun (span, repr_a, repr_b, (ev : Depend.evidence)) ->
        match ev.Depend.ev_backend with
        | Depend.Fallback msg ->
            Some
              {
                Diag.rule = "analysis/exact-budget";
                severity = Diag.Warning;
                span;
                func;
                message =
                  Printf.sprintf
                    "exact backend fell back to banerjee for %s vs %s: %s \
                     (raise --exact-budget)"
                    repr_a repr_b msg;
                fixits = [];
                region = None;
                symbolic = None;
                attribution = [];
                backend = Some (Depend.backend_name ev.Depend.ev_backend);
                witness = None;
                reason = None;
                cost = None;
                sched = None;
                dist = None;
                fix_verified = None;
              }
        | _ -> None)
      pairs_ev

(* One finding per racy pair. *)
let race_finding ~func ?region ?(ev = Depend.banerjee_ev ~must:false)
    (a : Array_ref.t) (b : Array_ref.t) =
  let backend, witness = ev_fields ev in
  {
    Diag.rule = "race/loop-carried";
    severity = Diag.Error;
    span = span_of_refs a b;
    func;
    message =
      Printf.sprintf
        "loop-carried dependence: %s (%s) and %s (%s) %s the same bytes in \
         different iterations of the parallel loop"
        a.Array_ref.repr (access_word a) b.Array_ref.repr (access_word b)
        (if ev.Depend.ev_must then "provably touch" else "may touch");
    fixits = [];
    region;
    symbolic = None;
    attribution = [];
    backend;
    witness;
    reason = None;
    cost = None;
    sched = None;
    dist = None;
    fix_verified = None;
  }

(* Unknown verdicts collapse to one finding per distinct reason. *)
let unknown_findings ~func pairs =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (p : Depend.pair) ->
      match p.Depend.verdict with
      | Depend.Unknown reason when not (Hashtbl.mem seen reason) ->
          Hashtbl.add seen reason ();
          let backend, witness = ev_fields p.Depend.ev in
          Some
            {
              Diag.rule = "analysis/unknown";
              severity = Diag.Warning;
              span = span_of_pair p;
              func;
              message =
                Printf.sprintf
                  "cannot prove %s and %s independent: %s"
                  p.Depend.a.Array_ref.repr p.Depend.b.Array_ref.repr reason;
              fixits = [];
              region = None;
              symbolic = None;
              attribution = [];
              backend;
              witness;
              reason = Some reason;
              cost = None;
              sched = None;
              dist = None;
              fix_verified = None;
            }
      | _ -> None)
    pairs

(* Quantify a nest's false sharing: certified closed form when it
   applies, the exact engine otherwise — except under [--cost-model
   analytic], which promises zero engine evaluations and reports the
   certificate gap instead of falling back. *)
let fs_count ~cost_model cfg ~nest ~checked =
  match Closed_form.estimate cfg ~nest ~checked with
  | Closed_form.Exact info -> (info.Closed_form.fs_cases, "closed form")
  | Closed_form.Inapplicable reason when cost_model = `Analytic ->
      ( -1,
        Printf.sprintf
          "no closed-form certificate (%s); rerun with --cost-model sim for \
           an engine count"
          reason )
  | Closed_form.Inapplicable _ ->
      ((Fsmodel.Model.run cfg ~nest ~checked).Fsmodel.Model.fs_cases, "engine")

(* The analytic Eq. 1 context attached to findings under [--cost-model
   analytic|both]; [None] when the nest's parameters are incomplete. *)
let cost_of ~opts ~checked nest =
  match opts.cost_model with
  | `Sim -> None
  | `Analytic | `Both -> (
      match
        Reuse.analyze ~arch:opts.arch ?chunk:opts.chunk ~threads:opts.threads
          ~params:(all_params opts) ~checked nest
      with
      | a ->
          Some
            {
              Diag.cost_model = "analytic";
              eq1 = a.Reuse.eq1;
              fs_percent =
                Costmodel.Total_cost.fs_percent ~fs:a.Reuse.breakdown;
              miss_rate = a.Reuse.prediction.Reuse.miss_rate;
              mem_fetches = a.Reuse.prediction.Reuse.mem_fetches;
            }
      | exception _ -> None)

let fixits_for ~opts ~checked ~base advice =
  match advice with
  | None -> []
  | Some (a : Fsmodel.Advisor.advice) ->
      let chunk_fix =
        match a.Fsmodel.Advisor.best_chunk with
        | Some c ->
            [
              {
                Diag.title = Printf.sprintf "schedule(static, %d)" c;
                detail =
                  Printf.sprintf
                    "smallest chunk whose predicted false sharing falls \
                     below 5%% of the chunk-1 level at %d threads"
                    opts.threads;
              };
            ]
        | None -> []
      in
      let victims =
        List.filter
          (fun (v : Fsmodel.Advisor.victim) -> v.Fsmodel.Advisor.base = base)
          a.Fsmodel.Advisor.victims
      in
      let line_bytes = Archspec.Arch.line_bytes opts.arch in
      let pad_fix =
        match Fsmodel.Eliminate.plan_for checked ~line_bytes victims with
        | plan ->
            List.map
              (function
                | Fsmodel.Eliminate.Pad_struct { struct_name; pad_bytes } ->
                    {
                      Diag.title =
                        Printf.sprintf "pad struct %s by %d byte(s)"
                          struct_name pad_bytes;
                      detail =
                        "a char tail field pushes consecutive elements onto \
                         distinct cache lines";
                    }
                | Fsmodel.Eliminate.Spread_array { base; factor } ->
                    {
                      Diag.title =
                        Printf.sprintf "spread %s by a factor of %d" base
                          factor;
                      detail =
                        "inter-element padding: one element per cache line";
                    })
              plan.Fsmodel.Eliminate.rewrites
        | exception Fsmodel.Eliminate.Unsupported _ -> []
      in
      pad_fix @ chunk_fix

(* Attribution for a concrete nest: rerun the engine with a recorder
   (aggregates only, no trace ring) and collapse the (writer reference,
   victim reference, thread pair) histogram to reference pairs, keeping
   the heaviest thread pair of each as its representative.  Returns the
   compiled references, the case total and the pairs sorted by
   descending weight. *)
let attribution_pairs ~checked cfg nest =
  let refs = Array.of_list nest.Loop_nest.refs in
  let sink =
    Fsmodel.Attrib.create ~trace_cap:0 ~threads:cfg.Fsmodel.Model.threads
      ~nrefs:(Array.length refs) ()
  in
  match Fsmodel.Model.run ~attrib:sink cfg ~nest ~checked with
  | exception _ -> None
  | _ ->
      let total = Fsmodel.Attrib.total sink in
      if total = 0 then None
      else begin
        let agg = Hashtbl.create 16 in
        let order = ref [] in
        List.iter
          (fun (p : Fsmodel.Attrib.pair_stat) ->
            let key = (p.writer_ref, p.victim_ref) in
            match Hashtbl.find_opt agg key with
            | Some (c, tp, wt, vt) ->
                Hashtbl.replace agg key (c + p.count, tp + 1, wt, vt)
            | None ->
                order := key :: !order;
                Hashtbl.add agg key (p.count, 1, p.writer_tid, p.victim_tid))
          (Fsmodel.Attrib.top_pairs ~n:max_int sink);
        let pairs =
          List.sort
            (fun (k1, (c1, _, _, _)) (k2, (c2, _, _, _)) ->
              let c = compare c2 c1 in
              if c <> 0 then c else compare k1 k2)
            (List.rev_map (fun key -> (key, Hashtbl.find agg key)) !order)
        in
        Some (refs, total, pairs)
      end

(* The top-3 sentences for one base's finding, phrased exactly like
   [fsdetect explain]'s reference-pair report. *)
let attribution_sentences ~refs ~total ~base pairs =
  let touches ((wr, vr), _) =
    (wr >= 0 && refs.(wr).Array_ref.base = base)
    || refs.(vr).Array_ref.base = base
  in
  List.filteri (fun i _ -> i < 3) (List.filter touches pairs)
  |> List.map (fun ((wr, vr), (count, tps, wt, vt)) ->
         let writer_part =
           if wr >= 0 then
             Printf.sprintf "%s written by T%d" refs.(wr).Array_ref.repr wt
           else Printf.sprintf "a write by T%d" wt
         in
         let more =
           if tps <= 1 then ""
           else Printf.sprintf " and %d more thread pair(s)" (tps - 1)
         in
         let victim_word =
           if Array_ref.is_write refs.(vr) then "written" else "read"
         in
         Printf.sprintf
           "%.1f%% of FS cases: %s invalidates %s %s by T%d (%d case(s)%s)"
           (100. *. float_of_int count /. float_of_int total)
           writer_part refs.(vr).Array_ref.repr victim_word vt count more)

(* One finding per conflicting base of the nest.  [fixv] is the lazy
   function-level fix verification (Fixer.verify on the materialized
   plan); it is forced only when a finding actually attaches fix-its,
   so race-gated and fixits-off lints never pay for it. *)
let fs_findings ~opts ~checked ~func ~advice ~fixv ~races conflicts cfg nest =
  if conflicts = [] then []
  else
    (* a nondeterministic schedule (from --schedule or a
       dynamic/guided pragma) turns the count into a distribution over
       the replayed seed set; the static path keeps the closed
       form/engine split *)
    let replayed =
      match sched_kind_of ~opts nest with
      | None -> None
      | Some kind -> (
          match
            Dist.run ~seeds:(Dist.seeds_upto opts.seeds) ~kind cfg ~nest
              ~checked
          with
          | d -> Some (kind, d)
          | exception _ -> None)
    in
    let warn, fix, quant, attrib, cost, sched_name, dist =
      match replayed with
      | Some (kind, d) ->
          let name = Ompsched.Dispatch.kind_name kind in
          let nseeds = Array.length d.Dist.seeds in
          let quant =
            if d.Dist.max_fs > 0 then
              Printf.sprintf
                "replaying schedule(%s) over %d seed(s) at %d threads, the \
                 engine counts %.1f false-sharing case(s) on average (p95 %d)"
                name nseeds opts.threads d.Dist.mean d.Dist.p95
            else
              Printf.sprintf
                "but replaying schedule(%s) over %d seed(s) at %d threads \
                 the engine counts no false-sharing case"
                name nseeds opts.threads
          in
          (* attribution is per-execution; seed 0 is the canonical
             representative.  The analytic cost model is static-schedule
             semantics, so no Eq. 1 context here. *)
          let attrib =
            if d.Dist.max_fs > 0 && opts.cost_model <> `Analytic then
              attribution_pairs ~checked
                { cfg with Fsmodel.Model.sched = Some (kind, 0) }
                nest
            else None
          in
          let hot = d.Dist.max_fs > 0 in
          (hot, hot, quant, attrib, None, Some name, Some d)
      | None ->
          (* a nest rescued by the exact backend (unbound identifiers
             treated as free parameters) has no concrete count to run *)
          let fs, how =
            try fs_count ~cost_model:opts.cost_model cfg ~nest ~checked
            with _ -> (-1, "the nest references identifiers not bound by -p")
          in
          (* the analytic path never touches the engine, so no
             attribution *)
          let attrib =
            if fs > 0 && opts.cost_model <> `Analytic then
              attribution_pairs ~checked cfg nest
            else None
          in
          let cost = cost_of ~opts ~checked nest in
          let quant =
            if fs > 0 then
              Printf.sprintf
                "the cost model counts %d false-sharing case(s) in this \
                 nest at %d threads (%s)"
                fs opts.threads how
            else if fs = 0 then
              Printf.sprintf
                "but the cost model counts no false-sharing case at %d \
                 threads (%s)"
                opts.threads how
            else Printf.sprintf "no concrete count (%s)" how
          in
          (fs <> 0, fs > 0, quant, attrib, cost, None, None)
    in
    let bases =
      List.sort_uniq compare
        (List.map (fun (p : Depend.pair) -> p.Depend.a.Array_ref.base)
           conflicts)
    in
    List.map
      (fun base ->
        let ps =
          List.filter
            (fun (p : Depend.pair) -> p.Depend.a.Array_ref.base = base)
            conflicts
        in
        let example = List.hd ps in
        let span =
          List.fold_left
            (fun s p -> Minic.Span.join s (span_of_pair p))
            Minic.Span.none ps
        in
        let severity = if warn then Diag.Warning else Diag.Info in
        let fixits =
          if opts.fixits && races = [] && fix then
            fixits_for ~opts ~checked ~base advice
          else []
        in
        (* fix verification is static-schedule semantics: attached only
           where fix-its are, and never on a replayed schedule *)
        let fix_verified =
          if opts.fixits && races = [] && fix && sched_name = None then
            Lazy.force fixv
          else None
        in
        let backend, witness = ev_fields example.Depend.ev in
        {
          Diag.rule = "fs/line-conflict";
          severity;
          span;
          func;
          message =
            Printf.sprintf
              "%s and %s are byte-disjoint across parallel iterations %s; %s"
              example.Depend.a.Array_ref.repr
              example.Depend.b.Array_ref.repr
              (if example.Depend.ev.Depend.ev_must then
                 "and provably share a cache line"
               else "but may share a cache line")
              quant;
          fixits;
          region = None;
          symbolic = None;
          attribution =
            (match attrib with
            | None -> []
            | Some (refs, total, pairs) ->
                attribution_sentences ~refs ~total ~base pairs);
          backend;
          witness;
          reason = None;
          cost;
          sched = sched_name;
          dist;
          fix_verified;
        })
      bases

(* ---------------------------------------------------------------- *)
(* Parametric (symbolic) nests                                       *)
(* ---------------------------------------------------------------- *)

(* Human form of the parameter region a finding holds in: the
   context-refined per-parameter bounds, plus any multi-parameter path
   atoms that cannot be folded into a single bound. *)
let region_string ~ctx ~free conds =
  let refined = List.fold_left Symbolic.assume ctx conds in
  let bounds =
    List.filter_map
      (fun p ->
        match Symbolic.bounds_of refined p with
        | Some (Some lo, Some hi) ->
            Some (Printf.sprintf "%d <= %s <= %d" lo p hi)
        | Some (Some lo, None) -> Some (Printf.sprintf "%s >= %d" p lo)
        | Some (None, Some hi) -> Some (Printf.sprintf "%s <= %d" p hi)
        | _ -> None)
      free
  in
  let rest =
    List.filter_map
      (fun c ->
        match Affine.vars c with
        | [ _ ] -> None (* already folded into the bounds above *)
        | _ -> Some (Symbolic.cond_to_string c))
      conds
  in
  match bounds @ rest with
  | [] -> "all parameter values"
  | parts -> String.concat " and " parts

(* Parametric count of a conflicting nest: a certified quasi-polynomial
   when one free parameter remains, an actionable message otherwise. *)
let sym_count ~opts ~checked ~ctx ~free cfg nest =
  match free with
  | [ p ] -> (
      let hi =
        match Symbolic.bounds_of ctx p with
        | Some (_, Some hi) -> Some hi
        | _ -> None
      in
      let est =
        match hi with
        | Some hi -> Closed_form.estimate_sym cfg ~nest ~checked ~param:p ~hi ()
        | None -> Closed_form.estimate_sym cfg ~nest ~checked ~param:p ()
      in
      match est with
      | Closed_form.Sym cert ->
          let zero =
            Array.for_all
              (fun c -> Array.for_all (fun x -> x = 0) c)
              cert.Closed_form.sc_coeffs
          in
          let formula = Closed_form.sym_to_string cert in
          if zero then
            ( Printf.sprintf
                "and the cost model counts no false-sharing case for %d <= \
                 %s <= %d at %d threads (parametric closed form)"
                cert.Closed_form.sc_base p cert.Closed_form.sc_hi opts.threads,
              Some formula,
              false )
          else
            ( Printf.sprintf
                "the cost model counts N_fs(%s) false-sharing case(s) in \
                 closed form at %d threads (parametric, %s regime)"
                p opts.threads cert.Closed_form.sc_regime,
              Some formula,
              true )
      | Closed_form.Sym_inapplicable m ->
          ( Printf.sprintf
              "no parametric count (%s); bind %s with -p %s=VAL for an \
               exact count"
              m p p,
            None,
            true ))
  | ps ->
      let names = String.concat ", " ps in
      ( Printf.sprintf
          "no parametric count with %d free parameters (%s); bind them \
           with -p NAME=VAL for an exact count"
          (List.length ps) names,
        None,
        true )

let lint_nest_sym ~opts ~checked ~func nest =
  let line_bytes = Archspec.Arch.line_bytes opts.arch in
  let params = all_params opts in
  let layout = Layout.make ~line_bytes checked in
  let extent_of base =
    try Some (Layout.size_of layout base) with Not_found -> None
  in
  let spairs, ctx, free =
    Depend.pairs_sym ~line_bytes ~params ~exact:opts.exact
      ~exact_budget:opts.exact_budget ~extent_of nest
  in
  let with_paths =
    List.map
      (fun (sp : Depend.spair) ->
        (sp, Symbolic.paths ctx sp.Depend.scases))
      spairs
  in
  let races =
    List.concat_map
      (fun ((sp : Depend.spair), paths) ->
        List.filter_map
          (fun (conds, (v, ev)) ->
            if v = Depend.Loop_carried then
              Some
                (race_finding ~func
                   ~region:(region_string ~ctx ~free conds)
                   ~ev sp.Depend.sa sp.Depend.sb)
            else None)
          paths)
      with_paths
  in
  let unknowns =
    let seen = Hashtbl.create 4 in
    List.concat_map
      (fun ((sp : Depend.spair), paths) ->
        List.filter_map
          (fun (conds, (v, ev)) ->
            match v with
            | Depend.Unknown reason when not (Hashtbl.mem seen reason) ->
                Hashtbl.add seen reason ();
                let backend, witness = ev_fields ev in
                Some
                  {
                    Diag.rule = "analysis/unknown";
                    severity = Diag.Warning;
                    span = span_of_refs sp.Depend.sa sp.Depend.sb;
                    func;
                    message =
                      Printf.sprintf "cannot prove %s and %s independent: %s"
                        sp.Depend.sa.Array_ref.repr
                        sp.Depend.sb.Array_ref.repr reason;
                    fixits = [];
                    region = Some (region_string ~ctx ~free conds);
                    symbolic = None;
                    attribution = [];
                    backend;
                    witness;
                    reason = Some reason;
                    cost = None;
                    sched = None;
                    dist = None;
                    fix_verified = None;
                  }
            | _ -> None)
          paths)
      with_paths
  in
  (* conflicting pairs grouped by base, each with its region *)
  let conflicts =
    List.concat_map
      (fun ((sp : Depend.spair), paths) ->
        List.filter_map
          (fun (conds, (v, ev)) ->
            if v = Depend.Line_conflict then Some (sp, conds, ev) else None)
          paths)
      with_paths
  in
  let fs =
    if conflicts = [] then []
    else begin
      let cfg =
        {
          (Fsmodel.Model.default_config ~arch:opts.arch ~threads:opts.threads
             ())
          with
          chunk = opts.chunk;
          params;
        }
      in
      let quant, formula, warn = sym_count ~opts ~checked ~ctx ~free cfg nest in
      let bases =
        List.sort_uniq compare
          (List.map
             (fun ((sp : Depend.spair), _, _) -> sp.Depend.sa.Array_ref.base)
             conflicts)
      in
      List.map
        (fun base ->
          let ps =
            List.filter
              (fun ((sp : Depend.spair), _, _) ->
                sp.Depend.sa.Array_ref.base = base)
              conflicts
          in
          let (example, _, ev) = List.hd ps in
          let span =
            List.fold_left
              (fun s ((sp : Depend.spair), _, _) ->
                Minic.Span.join s (span_of_refs sp.Depend.sa sp.Depend.sb))
              Minic.Span.none ps
          in
          (* the widest region among this base's conflicting paths *)
          let region =
            match ps with
            | (_, conds, _) :: rest
              when List.for_all (fun (_, c, _) -> c = conds) rest ->
                region_string ~ctx ~free conds
            | _ ->
                String.concat "; or "
                  (List.sort_uniq compare
                     (List.map
                        (fun (_, conds, _) -> region_string ~ctx ~free conds)
                        ps))
          in
          let backend, witness = ev_fields ev in
          {
            Diag.rule = "fs/line-conflict";
            severity = (if warn then Diag.Warning else Diag.Info);
            span;
            func;
            message =
              Printf.sprintf
                "%s and %s are byte-disjoint across parallel iterations but \
                 may share a cache line; %s"
                example.Depend.sa.Array_ref.repr
                example.Depend.sb.Array_ref.repr quant;
            fixits = [];
            region = Some region;
            symbolic = formula;
            attribution = [];
            backend;
            witness;
            reason = None;
            cost = None;
            sched = None;
            dist = None;
            fix_verified = None;
          })
        bases
    end
  in
  let fallbacks =
    fallback_findings ~opts ~func
      (List.concat_map
         (fun ((sp : Depend.spair), paths) ->
           List.map
             (fun (_, (_, ev)) ->
               ( span_of_refs sp.Depend.sa sp.Depend.sb,
                 sp.Depend.sa.Array_ref.repr,
                 sp.Depend.sb.Array_ref.repr,
                 ev ))
             paths)
         with_paths)
  in
  races @ unknowns @ fs @ fallbacks

let lint_nest ~opts ~checked ~func ~advice ~fixv nest =
  let line_bytes = Archspec.Arch.line_bytes opts.arch in
  let params = all_params opts in
  if Depend.free_params ~params nest <> [] then
    lint_nest_sym ~opts ~checked ~func nest
  else
    let pairs =
      Depend.pairs ~line_bytes ~params ~exact:opts.exact
        ~exact_budget:opts.exact_budget nest
    in
    let with_verdict v =
      List.filter (fun (p : Depend.pair) -> p.Depend.verdict = v) pairs
    in
    let races = with_verdict Depend.Loop_carried in
    let conflicts = with_verdict Depend.Line_conflict in
    let cfg =
      {
        (Fsmodel.Model.default_config ~arch:opts.arch ~threads:opts.threads ())
        with
        chunk = opts.chunk;
        params;
      }
    in
    let advice = if races = [] then advice else None in
    List.map
      (fun (p : Depend.pair) ->
        race_finding ~func ~ev:p.Depend.ev p.Depend.a p.Depend.b)
      races
    @ unknown_findings ~func pairs
    @ fs_findings ~opts ~checked ~func ~advice ~fixv ~races conflicts cfg nest
    @ fallback_findings ~opts ~func
        (List.map
           (fun (p : Depend.pair) ->
             (span_of_pair p, p.Depend.a.Array_ref.repr,
              p.Depend.b.Array_ref.repr, p.Depend.ev))
           pairs)

let lint_function ~opts ~checked func =
  match Lower.lower_all checked ~func ~params:(all_params opts) with
  | exception Lower.Lower_error m ->
      [
        {
          Diag.rule = "analysis/unknown";
          severity = Diag.Warning;
          span = Minic.Span.none;
          func;
          message = Printf.sprintf "cannot analyze %s: %s" func m;
          fixits = [];
          region = None;
          symbolic = None;
          attribution = [];
          backend = None;
          witness = None;
          reason = Some m;
          cost = None;
          sched = None;
          dist = None;
          fix_verified = None;
        };
      ]
  | nests ->
      (* the advisor sweep is per function; share it across its nests
         and skip it entirely when fix-its are off.  The sweep runs the
         engine per candidate chunk, so the analytic cost model (zero
         engine evaluations) skips it too. *)
      let advice =
        if opts.fixits && opts.cost_model <> `Analytic then
          try
            Some
              (Fsmodel.Advisor.advise ~arch:opts.arch ~threads:opts.threads
                 ~func checked)
          with _ -> None
        else None
      in
      (* the closed fix loop: materialize the advised fix and re-analyze
         the transformed program (Fixer.verify).  Shares the advice
         sweep; forced lazily from fs_findings only where fix-its
         attach, so the analytic path (advice = None) never runs it. *)
      let fixv =
        lazy
          (match advice with
          | None -> None
          | Some a -> (
              match
                Fixer.verify ~arch:opts.arch ~advice:a ?chunk:opts.chunk
                  ~threads:opts.threads ~func checked
              with
              | Fixer.Fix v ->
                  Some
                    {
                      Diag.fv_rewrites =
                        List.map Fsmodel.Transform.describe
                          v.Fixer.plan.Fsmodel.Transform.rewrites;
                      fv_fs_before = v.Fixer.before.Fixer.fs_ref;
                      fv_fs_after = v.Fixer.after.Fixer.fs_ref;
                      fv_removal = 100. *. v.Fixer.removal;
                      fv_cost_ratio = v.Fixer.cost_ratio;
                      fv_ok = v.Fixer.verified;
                    }
              | Fixer.Nothing_to_fix _ -> None
              | exception _ -> None))
      in
      List.concat_map (lint_nest ~opts ~checked ~func ~advice ~fixv) nests

let run ?(opts = default_options) ~uri checked =
  let funcs =
    Lower.find_parallel_functions checked.Minic.Typecheck.prog
  in
  let findings = List.concat_map (lint_function ~opts ~checked) funcs in
  { Diag.uri; findings = Diag.sort findings }

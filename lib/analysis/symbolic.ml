open Loopir

(* ---------------------------------------------------------------- *)
(* Parameter constraint contexts                                     *)
(* ---------------------------------------------------------------- *)

type bound = int option * int option (* inclusive lo / hi; None = open *)
type ctx = (string * bound) list

let empty = []

let declare ctx p ~lo ~hi =
  (p, (lo, hi)) :: List.remove_assoc p ctx

let bounds_of ctx p = List.assoc_opt p ctx
let params ctx = List.map fst ctx

let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* Interval of an affine expression over the parameters of [ctx];
   [None] endpoints mean unbounded. *)
let range ctx a =
  Affine.fold_terms
    (fun v k (lo, hi) ->
      let vlo, vhi =
        match bounds_of ctx v with Some b -> b | None -> (None, None)
      in
      let mul e = Option.map (fun x -> k * x) e in
      if k >= 0 then
        ( (match (lo, mul vlo) with Some l, Some m -> Some (l + m) | _ -> None),
          match (hi, mul vhi) with Some h, Some m -> Some (h + m) | _ -> None )
      else
        ( (match (lo, mul vhi) with Some l, Some m -> Some (l + m) | _ -> None),
          match (hi, mul vlo) with Some h, Some m -> Some (h + m) | _ -> None ))
    a
    (Some (Affine.const_part a), Some (Affine.const_part a))

(* Three-valued truth of [a >= 0] over every parameter valuation
   admitted by [ctx]. *)
let decide ctx a =
  match range ctx a with
  | Some lo, _ when lo >= 0 -> `True
  | _, Some hi when hi < 0 -> `False
  | _ -> `Unknown

(* ---------------------------------------------------------------- *)
(* Conditions: affine atoms, meaning [a >= 0]                        *)
(* ---------------------------------------------------------------- *)

type cond = Affine.t

(* integer negation: not (a >= 0)  <=>  -a - 1 >= 0 *)
let cond_not a = Affine.sub (Affine.const (-1)) a

(* Refine [ctx] under the assumption [a >= 0].  Only single-parameter
   atoms tighten a bound; anything else leaves the context unchanged
   (sound: the context only ever under-approximates what is known). *)
let assume ctx a =
  match Affine.vars a with
  | [ v ] ->
      let c = Affine.coeff a v and k = Affine.const_part a in
      let lo, hi =
        match bounds_of ctx v with Some b -> b | None -> (None, None)
      in
      let merged =
        if c > 0 then
          (* v >= ceil(-k / c) *)
          let l = cdiv (-k) c in
          ((match lo with Some l0 -> Some (max l0 l) | None -> Some l), hi)
        else
          (* v <= floor(k / -c) *)
          let h = fdiv k (-c) in
          (lo, match hi with Some h0 -> Some (min h0 h) | None -> Some h)
      in
      declare ctx v ~lo:(fst merged) ~hi:(snd merged)
  | _ -> ctx

(* A context is unsatisfiable when some parameter's bounds cross. *)
let satisfiable ctx =
  List.for_all
    (fun (_, (lo, hi)) ->
      match (lo, hi) with Some l, Some h -> l <= h | _ -> true)
    ctx

let eval_cond env a = Affine.eval env a >= 0

let cond_to_string a =
  match Affine.vars a with
  | [ v ] ->
      let c = Affine.coeff a v and k = Affine.const_part a in
      if c > 0 then Printf.sprintf "%s >= %d" v (cdiv (-k) c)
      else Printf.sprintf "%s <= %d" v (fdiv k (-c))
  | _ -> Affine.to_string a ^ " >= 0"

(* ---------------------------------------------------------------- *)
(* Case-split trees                                                  *)
(* ---------------------------------------------------------------- *)

type 'a cases = Leaf of 'a | If of cond * 'a cases * 'a cases

let leaf a = Leaf a

let rec bind t f =
  match t with
  | Leaf a -> f a
  | If (c, y, n) -> If (c, bind y f, bind n f)

let map t f = bind t (fun a -> Leaf (f a))

(* boolean combinators over [bool cases] *)
let rec cor a b =
  match a with
  | Leaf true -> Leaf true
  | Leaf false -> b
  | If (c, y, n) -> If (c, cor y b, cor n b)

let rec cand a b =
  match a with
  | Leaf false -> Leaf false
  | Leaf true -> b
  | If (c, y, n) -> If (c, cand y b, cand n b)

let conj conds =
  List.fold_left (fun acc c -> cand acc (If (c, Leaf true, Leaf false)))
    (Leaf true) conds

(* Prune a tree under [ctx]: decide each condition where possible,
   refine the context along both branches, and merge branches that
   become equal. *)
let simplify ?(equal = ( = )) ctx t =
  let rec go ctx t =
    match t with
    | Leaf _ -> t
    | If (c, y, n) -> (
        match decide ctx c with
        | `True -> go ctx y
        | `False -> go ctx n
        | `Unknown ->
            let cy = assume ctx c and cn = assume ctx (cond_not c) in
            let y' = if satisfiable cy then Some (go cy y) else None in
            let n' = if satisfiable cn then Some (go cn n) else None in
            (match (y', n') with
            | Some y', Some n' ->
                let rec eq a b =
                  match (a, b) with
                  | Leaf x, Leaf z -> equal x z
                  | If (c1, y1, n1), If (c2, y2, n2) ->
                      Affine.equal c1 c2 && eq y1 y2 && eq n1 n2
                  | _ -> false
                in
                if eq y' n' then y' else If (c, y', n')
            | Some y', None -> y'
            | None, Some n' -> n'
            | None, None -> t))
  in
  go ctx t

(* All satisfiable paths as (conditions, leaf) pairs, outer conditions
   first. *)
let paths ctx t =
  let acc = ref [] in
  let rec go ctx conds t =
    match t with
    | Leaf a -> acc := (List.rev conds, a) :: !acc
    | If (c, y, n) ->
        let cy = assume ctx c in
        if satisfiable cy then go cy (c :: conds) y;
        let nc = cond_not c in
        let cn = assume ctx nc in
        if satisfiable cn then go cn (nc :: conds) n
  in
  go ctx [] t;
  List.rev !acc

let collapse ?(equal = ( = )) ctx t =
  match paths ctx (simplify ~equal ctx t) with
  | [ (_, a) ] -> Some a
  | (_, a) :: rest when List.for_all (fun (_, b) -> equal a b) rest -> Some a
  | _ -> None

let rec eval env t =
  match t with
  | Leaf a -> a
  | If (c, y, n) -> if eval_cond env c then eval env y else eval env n

open Loopir

type verdict =
  | Independent
  | Loop_carried
  | Line_conflict
  | Unknown of string

type pair = { a : Array_ref.t; b : Array_ref.t; verdict : verdict }

let verdict_name = function
  | Independent -> "independent"
  | Loop_carried -> "loop-carried"
  | Line_conflict -> "line-conflict"
  | Unknown _ -> "unknown"

(* ---------------------------------------------------------------- *)
(* Interval arithmetic over the iteration box                        *)
(* ---------------------------------------------------------------- *)

exception Not_analyzable of string

type interval = { lo : int; hi : int }  (* inclusive *)

(* Banerjee bounds of an affine expression over per-variable intervals. *)
let bounds ranges a =
  let c = Affine.const_part a in
  List.fold_left
    (fun (mn, mx) v ->
      let k = Affine.coeff a v in
      let r =
        match List.assoc_opt v ranges with
        | Some r -> r
        | None -> raise (Not_analyzable ("unbounded variable " ^ v))
      in
      if k >= 0 then (mn + (k * r.lo), mx + (k * r.hi))
      else (mn + (k * r.hi), mx + (k * r.lo)))
    (c, c) (Affine.vars a)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* extended gcd: egcd a b = (g, u, v) with a*u + b*v = g *)
let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else
    let g, u, v = egcd b (a mod b) in
    (g, v, u - (a / b * v))

let range_of ranges v =
  match List.assoc_opt v ranges with
  | Some r -> r
  | None -> raise (Not_analyzable ("unbounded variable " ^ v))

(* The k interval with x0 <= xp + sx*k <= x1 (empty when lo > hi). *)
let k_interval ~xp ~sx ~x0 ~x1 =
  if sx > 0 then (cdiv (x0 - xp) sx, fdiv (x1 - xp) sx)
  else (cdiv (xp - x1) (-sx), fdiv (xp - x0) (-sx))

(* Can [a] take a value in [tlo, thi] over the box?  With at most two
   variables the test is exact (interval intersection, or a bounded
   linear Diophantine solve along the solution line); otherwise the
   classical sufficient-for-impossibility pair — Banerjee interval
   disjointness and GCD inadmissibility — makes [false] a must-not. *)
let feasible ranges a ~tlo ~thi =
  let c = Affine.const_part a in
  match Affine.vars a with
  | [] -> tlo <= c && c <= thi
  | [ v ] ->
      let k = Affine.coeff a v in
      let r = range_of ranges v in
      let lo, hi =
        if k > 0 then (cdiv (tlo - c) k, fdiv (thi - c) k)
        else (cdiv (c - thi) (-k), fdiv (c - tlo) (-k))
      in
      max lo r.lo <= min hi r.hi
  | [ v1; v2 ] ->
      let k1 = Affine.coeff a v1 and k2 = Affine.coeff a v2 in
      let r1 = range_of ranges v1 and r2 = range_of ranges v2 in
      let g, u, w = egcd k1 k2 in
      let g = abs g
      and u = if g < 0 then -u else u
      and w = if g < 0 then -w else w in
      let ok = ref false in
      let t = ref tlo in
      while (not !ok) && !t <= thi do
        let rhs = !t - c in
        if rhs mod g = 0 then begin
          (* particular solution of k1*x + k2*y = rhs, then walk the
             solution line x = xp + (k2/g)k, y = yp - (k1/g)k *)
          let xp = u * (rhs / g) and yp = w * (rhs / g) in
          let klo1, khi1 = k_interval ~xp ~sx:(k2 / g) ~x0:r1.lo ~x1:r1.hi in
          let klo2, khi2 =
            k_interval ~xp:yp ~sx:(-(k1 / g)) ~x0:r2.lo ~x1:r2.hi
          in
          if max klo1 klo2 <= min khi1 khi2 then ok := true
        end;
        incr t
      done;
      !ok
  | vars ->
      let bmin, bmax = bounds ranges a in
      let lo = max tlo bmin and hi = min thi bmax in
      if lo > hi then false
      else
        let g = List.fold_left (fun g v -> gcd g (Affine.coeff a v)) 0 vars in
        if g = 0 then true (* constant, already inside the window *)
        else fdiv (hi - c) g >= cdiv (lo - c) g

(* ---------------------------------------------------------------- *)
(* Building the iteration box                                        *)
(* ---------------------------------------------------------------- *)

let prime v = v ^ "'"

(* Identifiers of a bound expression, for actionable error messages:
   recursion stops at constructs that are non-affine anyway. *)
let rec expr_idents (e : Minic.Ast.expr) acc =
  match e with
  | Minic.Ast.Ident v -> if List.mem v acc then acc else v :: acc
  | Minic.Ast.Unop (_, e) -> expr_idents e acc
  | Minic.Ast.Binop (_, a, b) -> expr_idents a (expr_idents b acc)
  | _ -> acc

(* Why did a bound fail to convert?  If it mentions an identifier that is
   neither a parameter nor an enclosing loop variable, name it and say
   how to bind it; otherwise it is genuinely non-affine. *)
let bound_error ~params ~known l e =
  let unbound =
    List.filter
      (fun v -> (not (List.mem_assoc v params)) && not (known v))
      (expr_idents e [])
  in
  match unbound with
  | v :: _ ->
      Printf.sprintf
        "bound of loop %s references unbound identifier '%s' (bind it with \
         -p %s=VAL)"
        l.Loop_nest.var v v
  | [] ->
      Printf.sprintf "bound of loop %s is not affine" l.Loop_nest.var

(* Evaluate loop bounds outermost-in, each as an affine expression over
   parameters (folded to constants) and enclosing loop variables
   (interval-propagated).  Returns the per-variable value intervals plus a
   per-loop upper bound on the trip count; [None] when the nest certainly
   runs nothing. *)
let box ~params (nest : Loop_nest.t) =
  let ranges = ref [] in
  let lookup v =
    match List.assoc_opt v params with
    | Some k -> Some (Affine.const k)
    | None ->
        if List.mem_assoc v !ranges then Some (Affine.var v) else None
  in
  let trips =
    List.map
      (fun (l : Loop_nest.loop) ->
        let aff_of e =
          match Affine.of_expr lookup e with
          | Some a -> a
          | None ->
              raise
                (Not_analyzable
                   (bound_error ~params
                      ~known:(fun v -> List.mem_assoc v !ranges)
                      l e))
        in
        let lo_lo, _ = bounds !ranges (aff_of l.Loop_nest.lower) in
        let _, up_hi = bounds !ranges (aff_of l.Loop_nest.upper_excl) in
        if up_hi - 1 < lo_lo then raise Exit (* certainly empty nest *)
        else begin
          (* conservative value interval: smallest lower to largest last *)
          ranges := (l.Loop_nest.var, { lo = lo_lo; hi = up_hi - 1 }) :: !ranges;
          (* largest possible trip count *)
          max 0 ((up_hi - lo_lo + l.Loop_nest.step - 1) / l.Loop_nest.step)
        end)
      nest.Loop_nest.loops
  in
  (!ranges, trips)

(* ---------------------------------------------------------------- *)
(* Pair classification                                               *)
(* ---------------------------------------------------------------- *)

let fold_params params a =
  Affine.subst
    (fun v ->
      match List.assoc_opt v params with
      | Some k -> Some (Affine.const k)
      | None -> None)
    a

let classify ~line_bytes ~params ~ranges ~trips (nest : Loop_nest.t)
    (ra : Array_ref.t) (rb : Array_ref.t) =
  let pvar = (Loop_nest.parallel_loop nest).Loop_nest.var in
  let pstep = (Loop_nest.parallel_loop nest).Loop_nest.step in
  let ptrip = List.nth trips nest.Loop_nest.parallel_depth in
  if ptrip <= 1 then Independent (* at most one parallel iteration *)
  else begin
    let offa = fold_params params ra.Array_ref.offset in
    let offb = fold_params params rb.Array_ref.offset in
    (* the second iteration's variables, renamed *)
    let offb' =
      Affine.subst (fun v -> Some (Affine.var (prime v))) offb
    in
    let d = Affine.sub offa offb' in
    (* primed variables share the unprimed intervals *)
    let ranges2 =
      ranges @ List.map (fun (v, r) -> (prime v, r)) ranges
    in
    let dist = "+dist" in
    (* substitute pvar' = pvar +/- step*dist with dist >= 1: the two
       iterations differ at the parallel level *)
    let subst_dir sign =
      Affine.subst
        (fun v ->
          if v = prime pvar then
            Some
              (Affine.add (Affine.var pvar)
                 (Affine.scale (sign * pstep) (Affine.var dist)))
          else None)
        d
    in
    let ranges3 = (dist, { lo = 1; hi = max 1 (ptrip - 1) }) :: ranges2 in
    (* Coupling reduction: when a variable and its primed copy occur with
       opposite coefficients k*v - k*v', collapse them into a single
       difference variable over the symmetric interval.  This often drops
       the expression to <= 2 variables, where [feasible] is exact. *)
    let couple a =
      let rs = ref ranges3 in
      let a =
        List.fold_left
          (fun a (v, (r : interval)) ->
            let kv = Affine.coeff a v and kp = Affine.coeff a (prime v) in
            if kv <> 0 && kp = -kv then begin
              let dv = "+d" ^ v in
              let w = r.hi - r.lo in
              rs := (dv, { lo = -w; hi = w }) :: !rs;
              Affine.subst
                (fun u ->
                  if u = v then Some (Affine.var dv)
                  else if u = prime v then Some (Affine.const 0)
                  else None)
                a
            end
            else a)
          a ranges
      in
      (!rs, a)
    in
    let feasible_window ~tlo ~thi =
      let check sign =
        let rs, a = couple (subst_dir sign) in
        feasible rs a ~tlo ~thi
      in
      check 1 || check (-1)
    in
    let sza = ra.Array_ref.size_bytes and szb = rb.Array_ref.size_bytes in
    if feasible_window ~tlo:(-(szb - 1)) ~thi:(sza - 1) then Loop_carried
    else if
      feasible_window ~tlo:(-(line_bytes - 1)) ~thi:(line_bytes - 1)
    then Line_conflict
    else Independent
  end

let pairs ~line_bytes ~params (nest : Loop_nest.t) =
  let refs = Array.of_list nest.Loop_nest.refs in
  let n = Array.length refs in
  let interesting i j =
    let a = refs.(i) and b = refs.(j) in
    a.Array_ref.base = b.Array_ref.base
    && (Array_ref.is_write a || Array_ref.is_write b)
  in
  let make verdict_of =
    let acc = ref [] in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        if interesting i j then
          acc := { a = refs.(i); b = refs.(j); verdict = verdict_of refs.(i) refs.(j) }
                 :: !acc
      done
    done;
    List.rev !acc
  in
  match box ~params nest with
  | ranges, trips ->
      make (fun a b ->
          try classify ~line_bytes ~params ~ranges ~trips nest a b
          with Not_analyzable m -> Unknown m)
  | exception Exit -> make (fun _ _ -> Independent)
  | exception Not_analyzable m -> make (fun _ _ -> Unknown m)

(* ---------------------------------------------------------------- *)
(* Parametric (symbolic) analysis                                    *)
(* ---------------------------------------------------------------- *)

type spair = {
  sa : Array_ref.t;
  sb : Array_ref.t;
  scases : verdict Symbolic.cases;
}

(* A loop variable's value interval with affine-in-parameters endpoints. *)
type sival = { slo : Affine.t; shi : Affine.t }

(* Range of a mixed affine form (loop variables + parameters) over the
   iteration box, as a pair of affine-in-parameters endpoints: loop
   variables are interval-propagated through their symbolic ranges,
   parameter terms pass through. *)
let sbounds sranges a =
  let is_loop v = List.mem_assoc v sranges in
  let ppart, lpart = Affine.partition (fun v -> not (is_loop v)) a in
  Affine.fold_terms
    (fun v k (lo, hi) ->
      let r = List.assoc v sranges in
      if k >= 0 then
        ( Affine.add lo (Affine.scale k r.slo),
          Affine.add hi (Affine.scale k r.shi) )
      else
        ( Affine.add lo (Affine.scale k r.shi),
          Affine.add hi (Affine.scale k r.slo) ))
    lpart (ppart, ppart)

(* The symbolic iteration box: like [box], but identifiers that are
   neither parameters nor enclosing loop variables become free symbolic
   parameters instead of errors.  Returns the per-loop-variable symbolic
   value intervals (outermost first in reverse, as [box]) and the free
   parameters encountered, in order of first appearance. *)
let sbox ~params (nest : Loop_nest.t) =
  let sranges = ref [] in
  let free = ref [] in
  let lookup v =
    match List.assoc_opt v params with
    | Some k -> Some (Affine.const k)
    | None ->
        if List.mem_assoc v !sranges then Some (Affine.var v)
        else begin
          if not (List.mem v !free) then free := v :: !free;
          Some (Affine.var v)
        end
  in
  List.iter
    (fun (l : Loop_nest.loop) ->
      let aff_of e =
        match Affine.of_expr lookup e with
        | Some a -> a
        | None ->
            raise
              (Not_analyzable
                 (Printf.sprintf "bound of loop %s is not affine"
                    l.Loop_nest.var))
      in
      let lo_lo, _ = sbounds !sranges (aff_of l.Loop_nest.lower) in
      let _, up_hi = sbounds !sranges (aff_of l.Loop_nest.upper_excl) in
      sranges :=
        (l.Loop_nest.var, { slo = lo_lo; shi = Affine.sub up_hi (Affine.const 1) })
        :: !sranges)
    nest.Loop_nest.loops;
  (!sranges, List.rev !free)

(* Can the mixed form [a] (over iteration-space variables whose ranges
   have affine-in-parameters endpoints) take a value in [tlo, thi]?  The
   answer is a [bool Symbolic.cases] tree over the free parameters.

   - all ranges concrete: delegate to the concrete [feasible] (exact for
     <= 2 variables);
   - symbolic ranges: pick one symbolic variable (the parallel distance
     when it qualifies), over-approximate every other symbolic range by
     its hull under the parameter context, and exploit that feasibility
     is monotone in the chosen variable's extent: a binary search with
     concrete probes finds the threshold extent, and the answer is a
     single affine atom.  [false] remains a must-result (the hulls only
     grow the feasible set) and with a single free range the atom is
     exact;
   - when a hull is unbounded or a range's shape is unsupported:
     symbolic Banerjee interval conditions plus the concrete GCD test
     over the whole window (may-results, like the concrete fallback for
     > 2 variables). *)
let sfeasible ctx rs a ~tlo ~thi =
  let c = Affine.const_part a in
  match Affine.vars a with
  | [] -> Symbolic.leaf (tlo <= c && c <= thi)
  | vars -> (
      let rng v =
        match List.assoc_opt v rs with
        | Some r -> r
        | None -> raise (Not_analyzable ("unbounded variable " ^ v))
      in
      let conc v =
        let r = rng v in
        match (Affine.is_const r.slo, Affine.is_const r.shi) with
        | Some lo, Some hi -> Some { lo; hi }
        | _ -> None
      in
      (* hull of a symbolic range under the parameter context *)
      let hull v =
        let r = rng v in
        match (fst (Symbolic.range ctx r.slo), snd (Symbolic.range ctx r.shi))
        with
        | Some lo, Some hi -> Some { lo; hi }
        | _ -> None
      in
      let sym_vars = List.filter (fun v -> conc v = None) vars in
      match sym_vars with
      | [] ->
          let cranges = List.map (fun v -> (v, Option.get (conc v))) vars in
          Symbolic.leaf (feasible cranges a ~tlo ~thi)
      | _ -> (
          (* probe the parallel-distance variable when symbolic (it
             carries the verdict's region structure), else the first *)
          let vs =
            if List.mem "+dist" sym_vars then "+dist" else List.hd sym_vars
          in
          let r = rng vs in
          let ks = Affine.coeff a vs in
          let others = List.filter (fun v -> v <> vs) vars in
          let cothers =
            List.map
              (fun v ->
                match conc v with
                | Some i -> (v, i)
                | None -> (
                    match hull v with
                    | Some i -> (v, i)
                    | None -> raise Exit (* unbounded hull: Banerjee *)))
              others
          in
          (* any solution has |vs| below this: the target window, the
             constant and the other variables' reach bound |ks * vs| *)
          let dmax =
            let sum =
              List.fold_left
                (fun s (v, (r : interval)) ->
                  s + (abs (Affine.coeff a v) * max (abs r.lo) (abs r.hi)))
                0 cothers
            in
            ((sum + abs c + max (abs tlo) (abs thi)) / abs ks) + 2
          in
          let probe lo hi =
            feasible ((vs, { lo; hi }) :: cothers) a ~tlo ~thi
          in
          (* binary search for the smallest saturating extent; [mk x]
             builds the probe interval of extent [x], [atom x] the
             condition "the symbolic extent reaches x" *)
          let search x0 mk atom =
            let xmax = max x0 dmax in
            if not (let l, h = mk xmax in probe l h) then Symbolic.leaf false
            else begin
              let lo = ref x0 and hi = ref xmax in
              while !lo < !hi do
                let mid = !lo + ((!hi - !lo) / 2) in
                if let l, h = mk mid in probe l h then hi := mid
                else lo := mid + 1
              done;
              Symbolic.conj [ atom !lo ]
            end
          in
          match (Affine.is_const r.slo, Affine.is_const r.shi) with
          | Some lo_c, None ->
              (* [lo_c, shi]: monotone in shi *)
              search lo_c
                (fun w -> (lo_c, w))
                (fun w -> Affine.sub r.shi (Affine.const w))
          | None, Some hi_c ->
              (* [slo, hi_c]: monotone as slo decreases *)
              search (-hi_c)
                (fun w -> (-w, hi_c))
                (fun w -> Affine.sub (Affine.const w) r.slo)
          | None, None when Affine.equal r.slo (Affine.neg r.shi) ->
              (* symmetric difference interval [-w, w]: monotone in w *)
              search 0
                (fun w -> (-w, w))
                (fun w -> Affine.sub r.shi (Affine.const w))
          | _ ->
              (* asymmetric fully-symbolic range: Banerjee below *)
              raise Exit))

let sfeasible ctx rs a ~tlo ~thi =
  try sfeasible ctx rs a ~tlo ~thi
  with Exit ->
    (* symbolic Banerjee bounds + the concrete GCD test over the window *)
    let c = Affine.const_part a in
    let bmin, bmax =
      List.fold_left
        (fun (lo, hi) v ->
          let k = Affine.coeff a v in
          let r =
            match List.assoc_opt v rs with
            | Some r -> r
            | None -> raise (Not_analyzable ("unbounded variable " ^ v))
          in
          if k >= 0 then
            ( Affine.add lo (Affine.scale k r.slo),
              Affine.add hi (Affine.scale k r.shi) )
          else
            ( Affine.add lo (Affine.scale k r.shi),
              Affine.add hi (Affine.scale k r.slo) ))
        (Affine.const c, Affine.const c)
        (Affine.vars a)
    in
    let g =
      List.fold_left (fun g v -> gcd g (Affine.coeff a v)) 0 (Affine.vars a)
    in
    if g <> 0 && fdiv (thi - c) g < cdiv (tlo - c) g then Symbolic.leaf false
    else
      Symbolic.conj
        [
          Affine.sub (Affine.const thi) bmin; Affine.sub bmax (Affine.const tlo);
        ]

let classify_sym ~line_bytes ~params ~sranges ~ctx (nest : Loop_nest.t)
    (ra : Array_ref.t) (rb : Array_ref.t) =
  let pvar = (Loop_nest.parallel_loop nest).Loop_nest.var in
  let pstep = (Loop_nest.parallel_loop nest).Loop_nest.step in
  let spr = List.assoc pvar sranges in
  (* parallel iterations apart; [shi - slo] equals ptrip - 1 for unit
     steps and over-approximates it otherwise (which can only weaken
     may-verdicts, never [Independent]) *)
  let width = Affine.sub spr.shi spr.slo in
  let offa = fold_params params ra.Array_ref.offset in
  let offb = fold_params params rb.Array_ref.offset in
  let offb' = Affine.subst (fun v -> Some (Affine.var (prime v))) offb in
  let d = Affine.sub offa offb' in
  let sranges2 = sranges @ List.map (fun (v, r) -> (prime v, r)) sranges in
  let dist = "+dist" in
  let subst_dir sign =
    Affine.subst
      (fun v ->
        if v = prime pvar then
          Some
            (Affine.add (Affine.var pvar)
               (Affine.scale (sign * pstep) (Affine.var dist)))
        else None)
      d
  in
  let sranges3 = (dist, { slo = Affine.const 1; shi = width }) :: sranges2 in
  let couple a =
    let rs = ref sranges3 in
    let a =
      List.fold_left
        (fun a (v, (r : sival)) ->
          let kv = Affine.coeff a v and kp = Affine.coeff a (prime v) in
          if kv <> 0 && kp = -kv then begin
            let dv = "+d" ^ v in
            let w = Affine.sub r.shi r.slo in
            rs := (dv, { slo = Affine.neg w; shi = w }) :: !rs;
            Affine.subst
              (fun u ->
                if u = v then Some (Affine.var dv)
                else if u = prime v then Some (Affine.const 0)
                else None)
              a
          end
          else a)
        a sranges
    in
    (!rs, a)
  in
  let window ~tlo ~thi =
    let check sign =
      let rs, a = couple (subst_dir sign) in
      sfeasible ctx rs a ~tlo ~thi
    in
    Symbolic.cor (check 1) (check (-1))
  in
  let sza = ra.Array_ref.size_bytes and szb = rb.Array_ref.size_bytes in
  let race = window ~tlo:(-(szb - 1)) ~thi:(sza - 1) in
  let tree =
    Symbolic.bind race (function
      | true -> Symbolic.leaf Loop_carried
      | false ->
          Symbolic.bind
            (window ~tlo:(-(line_bytes - 1)) ~thi:(line_bytes - 1))
            (function
              | true -> Symbolic.leaf Line_conflict
              | false -> Symbolic.leaf Independent))
  in
  let tree =
    (* the symbolic counterpart of [classify]'s [ptrip <= 1] shortcut: a
       second parallel iteration exists only when [slo + pstep <= shi].
       Below that threshold the distance range is empty, but the
       per-atom Banerjee conditions cannot see that (each endpoint
       inequality can hold even when the interval itself is empty), so
       without the guard the tree reports conflicts for empty and
       single-iteration loops.  (Found by fsfuzz at [n = 0] and, with
       [i += 3], at [n = 2].) *)
    Symbolic.If
      (Affine.sub width (Affine.const pstep), tree, Symbolic.leaf Independent)
  in
  Symbolic.simplify ctx tree

(* Identifiers in loop bounds that are bound neither by [params] nor by
   an enclosing loop: the nest is parametric exactly when this is
   non-empty. *)
let free_params ~params (nest : Loop_nest.t) =
  match sbox ~params nest with
  | _, free -> free
  | exception Not_analyzable _ -> []

let pairs_sym ~line_bytes ~params ?extent_of (nest : Loop_nest.t) =
  let refs = Array.of_list nest.Loop_nest.refs in
  let n = Array.length refs in
  let interesting i j =
    let a = refs.(i) and b = refs.(j) in
    a.Array_ref.base = b.Array_ref.base
    && (Array_ref.is_write a || Array_ref.is_write b)
  in
  let make verdict_of =
    let acc = ref [] in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        if interesting i j then
          acc :=
            { sa = refs.(i); sb = refs.(j); scases = verdict_of refs.(i) refs.(j) }
            :: !acc
      done
    done;
    List.rev !acc
  in
  match sbox ~params nest with
  | exception Not_analyzable m ->
      (make (fun _ _ -> Symbolic.leaf (Unknown m)), Symbolic.empty, [])
  | sranges, free ->
      (* free size-like parameters are assumed non-negative *)
      let ctx0 =
        List.fold_left
          (fun c p -> Symbolic.declare c p ~lo:(Some 0) ~hi:None)
          Symbolic.empty free
      in
      (* in-bounds refinement: a subscript that stays inside its array's
         declared extent for every executed iteration bounds the free
         parameters (out-of-bounds executions are undefined anyway) *)
      let ctx =
        match extent_of with
        | None -> ctx0
        | Some ext ->
            List.fold_left
              (fun ctx (r : Array_ref.t) ->
                match ext r.Array_ref.base with
                | None -> ctx
                | Some size ->
                    let a = fold_params params r.Array_ref.offset in
                    let lo, hi = sbounds sranges a in
                    let ctx = Symbolic.assume ctx lo in
                    Symbolic.assume ctx
                      (Affine.sub
                         (Affine.const (size - r.Array_ref.size_bytes))
                         hi))
              ctx0 nest.Loop_nest.refs
      in
      (* a loop certainly empty for every parameter value: no iterations *)
      let certainly_empty =
        List.exists
          (fun (_, (r : sival)) ->
            Symbolic.decide ctx (Affine.sub r.shi r.slo) = `False)
          sranges
      in
      if certainly_empty then
        (make (fun _ _ -> Symbolic.leaf Independent), ctx, free)
      else
        ( make (fun a b ->
              try classify_sym ~line_bytes ~params ~sranges ~ctx nest a b
              with Not_analyzable m -> Symbolic.leaf (Unknown m)),
          ctx,
          free )

open Loopir

type verdict =
  | Independent
  | Loop_carried
  | Line_conflict
  | Unknown of string

type backend = Banerjee | Exact | Fallback of string

type witness = {
  w_params : (string * int) list;
  w_a : (string * int) list;
  w_b : (string * int) list;
}

type evidence = {
  ev_backend : backend;
  ev_must : bool;
  ev_witness : witness option;
}

type exact_mode = [ `Auto | `On | `Off ]

let default_exact_budget = 50_000

type pair = {
  a : Array_ref.t;
  b : Array_ref.t;
  verdict : verdict;
  ev : evidence;
}

let verdict_name = function
  | Independent -> "independent"
  | Loop_carried -> "loop-carried"
  | Line_conflict -> "line-conflict"
  | Unknown _ -> "unknown"

let backend_name = function
  | Banerjee -> "banerjee"
  | Exact -> "exact"
  | Fallback m -> "banerjee (fallback: " ^ m ^ ")"

let banerjee_ev ~must = { ev_backend = Banerjee; ev_must = must; ev_witness = None }

(* ---------------------------------------------------------------- *)
(* Interval arithmetic over the iteration box                        *)
(* ---------------------------------------------------------------- *)

exception Not_analyzable of string

type interval = { lo : int; hi : int }  (* inclusive *)

(* Banerjee bounds of an affine expression over per-variable intervals. *)
let bounds ranges a =
  let c = Affine.const_part a in
  List.fold_left
    (fun (mn, mx) v ->
      let k = Affine.coeff a v in
      let r =
        match List.assoc_opt v ranges with
        | Some r -> r
        | None -> raise (Not_analyzable ("unbounded variable " ^ v))
      in
      if k >= 0 then (mn + (k * r.lo), mx + (k * r.hi))
      else (mn + (k * r.hi), mx + (k * r.lo)))
    (c, c) (Affine.vars a)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* extended gcd: egcd a b = (g, u, v) with a*u + b*v = g *)
let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else
    let g, u, v = egcd b (a mod b) in
    (g, v, u - (a / b * v))

let range_of ranges v =
  match List.assoc_opt v ranges with
  | Some r -> r
  | None -> raise (Not_analyzable ("unbounded variable " ^ v))

(* The k interval with x0 <= xp + sx*k <= x1 (empty when lo > hi). *)
let k_interval ~xp ~sx ~x0 ~x1 =
  if sx > 0 then (cdiv (x0 - xp) sx, fdiv (x1 - xp) sx)
  else (cdiv (xp - x1) (-sx), fdiv (xp - x0) (-sx))

(* Can [a] take a value in [tlo, thi] over the box?  With at most two
   variables the test is exact (interval intersection, or a bounded
   linear Diophantine solve along the solution line); otherwise the
   classical sufficient-for-impossibility pair — Banerjee interval
   disjointness and GCD inadmissibility — makes [false] a must-not. *)
let feasible ranges a ~tlo ~thi =
  let c = Affine.const_part a in
  match Affine.vars a with
  | [] -> tlo <= c && c <= thi
  | [ v ] ->
      let k = Affine.coeff a v in
      let r = range_of ranges v in
      let lo, hi =
        if k > 0 then (cdiv (tlo - c) k, fdiv (thi - c) k)
        else (cdiv (c - thi) (-k), fdiv (c - tlo) (-k))
      in
      max lo r.lo <= min hi r.hi
  | [ v1; v2 ] ->
      let k1 = Affine.coeff a v1 and k2 = Affine.coeff a v2 in
      let r1 = range_of ranges v1 and r2 = range_of ranges v2 in
      let g, u, w = egcd k1 k2 in
      let g = abs g
      and u = if g < 0 then -u else u
      and w = if g < 0 then -w else w in
      let ok = ref false in
      let t = ref tlo in
      while (not !ok) && !t <= thi do
        let rhs = !t - c in
        if rhs mod g = 0 then begin
          (* particular solution of k1*x + k2*y = rhs, then walk the
             solution line x = xp + (k2/g)k, y = yp - (k1/g)k *)
          let xp = u * (rhs / g) and yp = w * (rhs / g) in
          let klo1, khi1 = k_interval ~xp ~sx:(k2 / g) ~x0:r1.lo ~x1:r1.hi in
          let klo2, khi2 =
            k_interval ~xp:yp ~sx:(-(k1 / g)) ~x0:r2.lo ~x1:r2.hi
          in
          if max klo1 klo2 <= min khi1 khi2 then ok := true
        end;
        incr t
      done;
      !ok
  | vars ->
      let bmin, bmax = bounds ranges a in
      let lo = max tlo bmin and hi = min thi bmax in
      if lo > hi then false
      else
        let g = List.fold_left (fun g v -> gcd g (Affine.coeff a v)) 0 vars in
        if g = 0 then true (* constant, already inside the window *)
        else fdiv (hi - c) g >= cdiv (lo - c) g

(* ---------------------------------------------------------------- *)
(* Building the iteration box                                        *)
(* ---------------------------------------------------------------- *)

let prime v = v ^ "'"

(* Identifiers of a bound expression, for actionable error messages:
   recursion stops at constructs that are non-affine anyway. *)
let rec expr_idents (e : Minic.Ast.expr) acc =
  match e with
  | Minic.Ast.Ident v -> if List.mem v acc then acc else v :: acc
  | Minic.Ast.Unop (_, e) -> expr_idents e acc
  | Minic.Ast.Binop (_, a, b) -> expr_idents a (expr_idents b acc)
  | _ -> acc

(* Why did a bound fail to convert?  If it mentions an identifier that is
   neither a parameter nor an enclosing loop variable, name it and say
   how to bind it; otherwise it is genuinely non-affine. *)
let bound_error ~params ~known l e =
  let unbound =
    List.filter
      (fun v -> (not (List.mem_assoc v params)) && not (known v))
      (expr_idents e [])
  in
  match unbound with
  | v :: _ ->
      Printf.sprintf
        "bound of loop %s references unbound identifier '%s' (bind it with \
         -p %s=VAL)"
        l.Loop_nest.var v v
  | [] ->
      Printf.sprintf "bound of loop %s is not affine" l.Loop_nest.var

(* Evaluate loop bounds outermost-in, each as an affine expression over
   parameters (folded to constants) and enclosing loop variables
   (interval-propagated).  Returns the per-variable value intervals plus a
   per-loop upper bound on the trip count; [None] when the nest certainly
   runs nothing. *)
let box ~params (nest : Loop_nest.t) =
  let ranges = ref [] in
  let lookup v =
    match List.assoc_opt v params with
    | Some k -> Some (Affine.const k)
    | None ->
        if List.mem_assoc v !ranges then Some (Affine.var v) else None
  in
  let trips =
    List.map
      (fun (l : Loop_nest.loop) ->
        let aff_of e =
          match Affine.of_expr lookup e with
          | Some a -> a
          | None ->
              raise
                (Not_analyzable
                   (bound_error ~params
                      ~known:(fun v -> List.mem_assoc v !ranges)
                      l e))
        in
        let lo_lo, _ = bounds !ranges (aff_of l.Loop_nest.lower) in
        let _, up_hi = bounds !ranges (aff_of l.Loop_nest.upper_excl) in
        if up_hi - 1 < lo_lo then raise Exit (* certainly empty nest *)
        else begin
          (* conservative value interval: smallest lower to largest last *)
          ranges := (l.Loop_nest.var, { lo = lo_lo; hi = up_hi - 1 }) :: !ranges;
          (* largest possible trip count *)
          max 0 ((up_hi - lo_lo + l.Loop_nest.step - 1) / l.Loop_nest.step)
        end)
      nest.Loop_nest.loops
  in
  (!ranges, trips)

(* ---------------------------------------------------------------- *)
(* Pair classification                                               *)
(* ---------------------------------------------------------------- *)

let fold_params params a =
  Affine.subst
    (fun v ->
      match List.assoc_opt v params with
      | Some k -> Some (Affine.const k)
      | None -> None)
    a

let classify ~line_bytes ~params ~ranges ~trips (nest : Loop_nest.t)
    (ra : Array_ref.t) (rb : Array_ref.t) =
  let pvar = (Loop_nest.parallel_loop nest).Loop_nest.var in
  let pstep = (Loop_nest.parallel_loop nest).Loop_nest.step in
  let ptrip = List.nth trips nest.Loop_nest.parallel_depth in
  if ptrip <= 1 then Independent (* at most one parallel iteration *)
  else begin
    let offa = fold_params params ra.Array_ref.offset in
    let offb = fold_params params rb.Array_ref.offset in
    (* the second iteration's variables, renamed *)
    let offb' =
      Affine.subst (fun v -> Some (Affine.var (prime v))) offb
    in
    let d = Affine.sub offa offb' in
    (* primed variables share the unprimed intervals *)
    let ranges2 =
      ranges @ List.map (fun (v, r) -> (prime v, r)) ranges
    in
    let dist = "+dist" in
    (* substitute pvar' = pvar +/- step*dist with dist >= 1: the two
       iterations differ at the parallel level *)
    let subst_dir sign =
      Affine.subst
        (fun v ->
          if v = prime pvar then
            Some
              (Affine.add (Affine.var pvar)
                 (Affine.scale (sign * pstep) (Affine.var dist)))
          else None)
        d
    in
    let ranges3 = (dist, { lo = 1; hi = max 1 (ptrip - 1) }) :: ranges2 in
    (* Coupling reduction: when a variable and its primed copy occur with
       opposite coefficients k*v - k*v', collapse them into a single
       difference variable over the symmetric interval.  This often drops
       the expression to <= 2 variables, where [feasible] is exact. *)
    let couple a =
      let rs = ref ranges3 in
      let a =
        List.fold_left
          (fun a (v, (r : interval)) ->
            let kv = Affine.coeff a v and kp = Affine.coeff a (prime v) in
            if kv <> 0 && kp = -kv then begin
              let dv = "+d" ^ v in
              let w = r.hi - r.lo in
              rs := (dv, { lo = -w; hi = w }) :: !rs;
              Affine.subst
                (fun u ->
                  if u = v then Some (Affine.var dv)
                  else if u = prime v then Some (Affine.const 0)
                  else None)
                a
            end
            else a)
          a ranges
      in
      (!rs, a)
    in
    let feasible_window ~tlo ~thi =
      let check sign =
        let rs, a = couple (subst_dir sign) in
        feasible rs a ~tlo ~thi
      in
      check 1 || check (-1)
    in
    let sza = ra.Array_ref.size_bytes and szb = rb.Array_ref.size_bytes in
    if feasible_window ~tlo:(-(szb - 1)) ~thi:(sza - 1) then Loop_carried
    else if
      feasible_window ~tlo:(-(line_bytes - 1)) ~thi:(line_bytes - 1)
    then Line_conflict
    else Independent
  end

(* ---------------------------------------------------------------- *)
(* Exact backend: Omega-test feasibility over the iteration polyhedron *)
(* ---------------------------------------------------------------- *)

let witness_to_string w =
  let binds l =
    String.concat ", "
      (List.map (fun (v, x) -> Printf.sprintf "%s=%d" v x) l)
  in
  let core =
    binds w.w_a ^ " vs " ^ binds (List.map (fun (v, x) -> (prime v, x)) w.w_b)
  in
  match w.w_params with [] -> core | ps -> binds ps ^ ": " ^ core

exception Free_ident of string

(* The exact encoding of one nest's pair of iterations: every loop
   variable [v] with step [s] is normalized as [v = lo + s*k] with a
   fresh counter [k >= 0], so strides and lower bounds are built into
   the rows exactly.  Loops outside the parallel one are {e shared}
   between the two iterations (the brute-force ground truth compares
   two iterations of the parallel loop within one execution of the
   outer sequential loops); the parallel loop and everything inside it
   get an independent primed copy.  Loop bounds may divide by positive
   constants: [e / c] introduces an auxiliary [q] with
   [c*q <= e <= c*q + c - 1] (exact when [e] is provably non-negative,
   where C truncation and floor agree).  Identifiers bound neither by
   [params] nor by an enclosing loop become shared non-negative solver
   variables when [free_ok], so the backend can decide nests the
   interval box rejects. *)
type xbox = {
  mutable xrows : Affine.t list;
  xval_a : (string * Affine.t) list;  (* loop var -> value, iteration A *)
  xval_b : (string * Affine.t) list;  (* loop var -> value, iteration B *)
  mutable xfree : string list;  (* free identifiers, most recent first *)
  xka : string;  (* parallel counter, iteration A *)
  xkb : string;  (* parallel counter, iteration B *)
  mutable xfresh : int;
  xfree_ok : bool;
  xparams : (string * int) list;
}

let kvar v = "k:" ^ v
let kvar' v = "k:" ^ v ^ "'"

(* Counters and division quotients are the solver's own; source
   identifiers can never collide with them ([:] and [+] are not ident
   characters). *)
let xsolver_var v =
  String.length v >= 1
  && (v.[0] = '+' || (String.length v >= 2 && v.[0] = 'k' && v.[1] = ':'))

(* All solver variables here are non-negative (counters, free size
   parameters, floor quotients of non-negative forms), so non-negative
   coefficients and constant suffice. *)
let provably_nonneg a =
  Affine.const_part a >= 0 && Affine.fold_terms (fun _ k ok -> ok && k >= 0) a true

let xregister xb v =
  if not (List.mem v xb.xfree) then begin
    if not xb.xfree_ok then raise (Free_ident v);
    xb.xfree <- v :: xb.xfree;
    xb.xrows <- Affine.var v :: xb.xrows
  end

let xfreshv xb tag =
  xb.xfresh <- xb.xfresh + 1;
  Printf.sprintf "+%s%d" tag xb.xfresh

(* Compile a bound expression to an affine form over counters and free
   parameters, emitting division rows as needed. *)
let rec xcomp xb ~params env (e : Minic.Ast.expr) =
  let add r = xb.xrows <- r :: xb.xrows in
  match e with
  | Minic.Ast.Int_lit k -> Affine.const k
  | Minic.Ast.Ident v -> (
      match List.assoc_opt v params with
      | Some k -> Affine.const k
      | None -> (
          match List.assoc_opt v env with
          | Some a -> a
          | None ->
              xregister xb v;
              Affine.var v))
  | Minic.Ast.Unop (Minic.Ast.Neg, e) -> Affine.neg (xcomp xb ~params env e)
  | Minic.Ast.Binop (op, e1, e2) -> (
      match op with
      | Minic.Ast.Add ->
          Affine.add (xcomp xb ~params env e1) (xcomp xb ~params env e2)
      | Minic.Ast.Sub ->
          Affine.sub (xcomp xb ~params env e1) (xcomp xb ~params env e2)
      | Minic.Ast.Mul -> (
          match
            Affine.mul (xcomp xb ~params env e1) (xcomp xb ~params env e2)
          with
          | Some a -> a
          | None -> raise (Not_analyzable "non-affine bound"))
      | Minic.Ast.Div | Minic.Ast.Mod -> (
          let a1 = xcomp xb ~params env e1 in
          match Affine.is_const (xcomp xb ~params env e2) with
          | Some c when c > 0 -> (
              match Affine.is_const a1 with
              | Some x ->
                  (* C truncating semantics, as Expr_eval folds it *)
                  Affine.const
                    (if op = Minic.Ast.Div then x / c else x mod c)
              | None ->
                  if not (provably_nonneg a1) then
                    raise
                      (Not_analyzable
                         "division of a possibly negative bound expression")
                  else begin
                    let q = xfreshv xb "q" in
                    let qv = Affine.var q in
                    add qv;
                    add (Affine.sub a1 (Affine.scale c qv));
                    add
                      (Affine.sub
                         (Affine.add (Affine.scale c qv) (Affine.const (c - 1)))
                         a1);
                    if op = Minic.Ast.Div then qv
                    else Affine.sub a1 (Affine.scale c qv)
                  end)
          | _ -> raise (Not_analyzable "non-constant divisor"))
      | _ -> raise (Not_analyzable "non-affine bound"))
  | _ -> raise (Not_analyzable "non-affine bound")

let exact_box ~params ~free_ok (nest : Loop_nest.t) =
  let pvar = (Loop_nest.parallel_loop nest).Loop_nest.var in
  let xb =
    {
      xrows = [];
      xval_a = [];
      xval_b = [];
      xfree = [];
      xka = kvar pvar;
      xkb = kvar' pvar;
      xfresh = 0;
      xfree_ok = free_ok;
      xparams = params;
    }
  in
  let env_a = ref [] and env_b = ref [] in
  let p = nest.Loop_nest.parallel_depth in
  let xb =
    List.iteri
      (fun d (l : Loop_nest.loop) ->
        let v = l.Loop_nest.var in
        let bound env k =
          let lo = xcomp xb ~params !env l.Loop_nest.lower in
          let hi = xcomp xb ~params !env l.Loop_nest.upper_excl in
          let value =
            Affine.add lo (Affine.scale l.Loop_nest.step (Affine.var k))
          in
          xb.xrows <- Affine.var k :: xb.xrows;
          xb.xrows <-
            Affine.sub (Affine.sub hi (Affine.const 1)) value :: xb.xrows;
          value
        in
        if d < p then begin
          let value = bound env_a (kvar v) in
          env_a := (v, value) :: !env_a;
          env_b := (v, value) :: !env_b
        end
        else begin
          let va = bound env_a (kvar v) in
          env_a := (v, va) :: !env_a;
          let vb = bound env_b (kvar' v) in
          env_b := (v, vb) :: !env_b
        end)
      nest.Loop_nest.loops;
    { xb with xval_a = !env_a; xval_b = !env_b }
  in
  xb

(* A reference's byte offset over one iteration's counters.  Leftover
   variables (subscripts mentioning identifiers bound by neither
   [params] nor a loop) become shared free parameters. *)
let xoffset xb ~params env (r : Array_ref.t) =
  let a =
    Affine.subst
      (fun v -> List.assoc_opt v env)
      (fold_params params r.Array_ref.offset)
  in
  List.iter
    (fun v -> if not (xsolver_var v) then xregister xb v)
    (Affine.vars a);
  a

let xvalue m v = match List.assoc_opt v m with Some x -> x | None -> 0

let xwitness xb m =
  let f = xvalue m in
  let at env = List.rev_map (fun (v, a) -> (v, Affine.eval f a)) env in
  {
    w_params = List.rev_map (fun p -> (p, f p)) xb.xfree;
    w_a = at xb.xval_a;
    w_b = at xb.xval_b;
  }

(* Defense in depth: never emit a must-claim whose witness does not
   check out byte-for-byte. *)
let xvalidate ~line_bytes xb ~kind m offa offb sza szb =
  let f = xvalue m in
  let oa = Affine.eval f offa and ob = Affine.eval f offb in
  let byte_overlap = oa <= ob + szb - 1 && ob <= oa + sza - 1 in
  let la0 = fdiv oa line_bytes and la1 = fdiv (oa + sza - 1) line_bytes in
  let lb0 = fdiv ob line_bytes and lb1 = fdiv (ob + szb - 1) line_bytes in
  let line_share = max la0 lb0 <= min la1 lb1 in
  f xb.xka <> f xb.xkb
  &&
  match kind with
  | `Byte -> byte_overlap
  | `Line -> line_share && not byte_overlap

(* The exact decision ladder for one pair: byte-overlap feasibility in
   both parallel directions, then exact line-sharing (an existential
   line index, not a distance window).  [v0] is the Banerjee verdict to
   keep when the backend cannot run to completion. *)
let exact_classify ~line_bytes ~exact_budget xb ~region_rows
    (ra : Array_ref.t) (rb : Array_ref.t) v0 =
  let fallback msg =
    (v0, { ev_backend = Fallback msg; ev_must = false; ev_witness = None })
  in
  match
    let b = Exact.budget exact_budget in
    let offa = xoffset xb ~params:xb.xparams xb.xval_a ra in
    let offb = xoffset xb ~params:xb.xparams xb.xval_b rb in
    let sza = ra.Array_ref.size_bytes and szb = rb.Array_ref.size_bytes in
    let base = List.rev_append region_rows xb.xrows in
    let dir_pos =
      Affine.sub (Affine.sub (Affine.var xb.xkb) (Affine.var xb.xka))
        (Affine.const 1)
    and dir_neg =
      Affine.sub (Affine.sub (Affine.var xb.xka) (Affine.var xb.xkb))
        (Affine.const 1)
    in
    let solve_dirs extra =
      match Exact.solve b { Exact.eqs = []; geqs = dir_pos :: (extra @ base) } with
      | Some m -> Some m
      | None ->
          Exact.solve b { Exact.eqs = []; geqs = dir_neg :: (extra @ base) }
    in
    let overlap =
      [
        Affine.sub (Affine.add offb (Affine.const (szb - 1))) offa;
        Affine.sub (Affine.add offa (Affine.const (sza - 1))) offb;
      ]
    in
    let must = xb.xfree = [] in
    match solve_dirs overlap with
    | Some m ->
        if xvalidate ~line_bytes xb ~kind:`Byte m offa offb sza szb then
          ( Loop_carried,
            {
              ev_backend = Exact;
              ev_must = must;
              ev_witness = Some (xwitness xb m);
            } )
        else fallback "witness validation failed"
    | None -> (
        let l = Affine.var (xfreshv xb "L") in
        let x = Affine.var (xfreshv xb "x") in
        let y = Affine.var (xfreshv xb "y") in
        let line_rows =
          [
            Affine.sub x offa;
            Affine.sub (Affine.add offa (Affine.const (sza - 1))) x;
            Affine.sub y offb;
            Affine.sub (Affine.add offb (Affine.const (szb - 1))) y;
            Affine.sub x (Affine.scale line_bytes l);
            Affine.sub
              (Affine.add (Affine.scale line_bytes l)
                 (Affine.const (line_bytes - 1)))
              x;
            Affine.sub y (Affine.scale line_bytes l);
            Affine.sub
              (Affine.add (Affine.scale line_bytes l)
                 (Affine.const (line_bytes - 1)))
              y;
          ]
        in
        match solve_dirs line_rows with
        | Some m ->
            if xvalidate ~line_bytes xb ~kind:`Line m offa offb sza szb then
              ( Line_conflict,
                {
                  ev_backend = Exact;
                  ev_must = must;
                  ev_witness = Some (xwitness xb m);
                } )
            else fallback "witness validation failed"
        | None ->
            (Independent, { ev_backend = Exact; ev_must = true; ev_witness = None }))
  with
  | result -> result
  | exception Exact.Out_of_budget ->
      fallback (Printf.sprintf "budget exhausted after %d steps" exact_budget)
  | exception Not_analyzable m -> fallback m
  | exception Free_ident v -> fallback ("unbound identifier '" ^ v ^ "'")

let pairs ~line_bytes ~params ?(exact : exact_mode = `Auto)
    ?(exact_budget = default_exact_budget) (nest : Loop_nest.t) =
  let refs = Array.of_list nest.Loop_nest.refs in
  let n = Array.length refs in
  let interesting i j =
    let a = refs.(i) and b = refs.(j) in
    a.Array_ref.base = b.Array_ref.base
    && (Array_ref.is_write a || Array_ref.is_write b)
  in
  let make verdict_of =
    let acc = ref [] in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        if interesting i j then begin
          let verdict, ev = verdict_of refs.(i) refs.(j) in
          acc := { a = refs.(i); b = refs.(j); verdict; ev } :: !acc
        end
      done
    done;
    List.rev !acc
  in
  let concrete =
    match box ~params nest with
    | ranges, trips -> `Box (ranges, trips)
    | exception Exit -> `Empty
    | exception Not_analyzable m -> `Fail m
  in
  let xb =
    lazy
      (if exact = `Off then None
       else
         match exact_box ~params ~free_ok:true nest with
         | xb -> Some xb
         | exception (Not_analyzable _ | Free_ident _) -> None)
  in
  make (fun a b ->
      let banerjee =
        match concrete with
        | `Empty -> (Independent, banerjee_ev ~must:true)
        | `Fail m -> (Unknown m, banerjee_ev ~must:false)
        | `Box (ranges, trips) -> (
            match classify ~line_bytes ~params ~ranges ~trips nest a b with
            | Independent -> (Independent, banerjee_ev ~must:true)
            | v -> (v, banerjee_ev ~must:false)
            | exception Not_analyzable m ->
                (Unknown m, banerjee_ev ~must:false))
      in
      match banerjee with
      | Independent, _ -> banerjee
      | v0, _ -> (
          match Lazy.force xb with
          | None -> banerjee
          | Some xb ->
              exact_classify ~line_bytes ~exact_budget xb ~region_rows:[] a b
                v0))

(* ---------------------------------------------------------------- *)
(* Parametric (symbolic) analysis                                    *)
(* ---------------------------------------------------------------- *)

type spair = {
  sa : Array_ref.t;
  sb : Array_ref.t;
  scases : (verdict * evidence) Symbolic.cases;
}

let sverdicts sp = Symbolic.map sp.scases fst

(* A loop variable's value interval with affine-in-parameters endpoints. *)
type sival = { slo : Affine.t; shi : Affine.t }

(* Range of a mixed affine form (loop variables + parameters) over the
   iteration box, as a pair of affine-in-parameters endpoints: loop
   variables are interval-propagated through their symbolic ranges,
   parameter terms pass through. *)
let sbounds sranges a =
  let is_loop v = List.mem_assoc v sranges in
  let ppart, lpart = Affine.partition (fun v -> not (is_loop v)) a in
  Affine.fold_terms
    (fun v k (lo, hi) ->
      let r = List.assoc v sranges in
      if k >= 0 then
        ( Affine.add lo (Affine.scale k r.slo),
          Affine.add hi (Affine.scale k r.shi) )
      else
        ( Affine.add lo (Affine.scale k r.shi),
          Affine.add hi (Affine.scale k r.slo) ))
    lpart (ppart, ppart)

(* The symbolic iteration box: like [box], but identifiers that are
   neither parameters nor enclosing loop variables become free symbolic
   parameters instead of errors.  Returns the per-loop-variable symbolic
   value intervals (outermost first in reverse, as [box]) and the free
   parameters encountered, in order of first appearance. *)
let sbox ~params (nest : Loop_nest.t) =
  let sranges = ref [] in
  let free = ref [] in
  let lookup v =
    match List.assoc_opt v params with
    | Some k -> Some (Affine.const k)
    | None ->
        if List.mem_assoc v !sranges then Some (Affine.var v)
        else begin
          if not (List.mem v !free) then free := v :: !free;
          Some (Affine.var v)
        end
  in
  List.iter
    (fun (l : Loop_nest.loop) ->
      let aff_of e =
        match Affine.of_expr lookup e with
        | Some a -> a
        | None ->
            raise
              (Not_analyzable
                 (Printf.sprintf "bound of loop %s is not affine"
                    l.Loop_nest.var))
      in
      let lo_lo, _ = sbounds !sranges (aff_of l.Loop_nest.lower) in
      let _, up_hi = sbounds !sranges (aff_of l.Loop_nest.upper_excl) in
      sranges :=
        (l.Loop_nest.var, { slo = lo_lo; shi = Affine.sub up_hi (Affine.const 1) })
        :: !sranges)
    nest.Loop_nest.loops;
  (!sranges, List.rev !free)

(* Can the mixed form [a] (over iteration-space variables whose ranges
   have affine-in-parameters endpoints) take a value in [tlo, thi]?  The
   answer is a [bool Symbolic.cases] tree over the free parameters.

   - all ranges concrete: delegate to the concrete [feasible] (exact for
     <= 2 variables);
   - symbolic ranges: pick one symbolic variable (the parallel distance
     when it qualifies), over-approximate every other symbolic range by
     its hull under the parameter context, and exploit that feasibility
     is monotone in the chosen variable's extent: a binary search with
     concrete probes finds the threshold extent, and the answer is a
     single affine atom.  [false] remains a must-result (the hulls only
     grow the feasible set) and with a single free range the atom is
     exact;
   - when a hull is unbounded or a range's shape is unsupported:
     symbolic Banerjee interval conditions plus the concrete GCD test
     over the whole window (may-results, like the concrete fallback for
     > 2 variables). *)
let sfeasible ctx rs a ~tlo ~thi =
  let c = Affine.const_part a in
  match Affine.vars a with
  | [] -> Symbolic.leaf (tlo <= c && c <= thi)
  | vars -> (
      let rng v =
        match List.assoc_opt v rs with
        | Some r -> r
        | None -> raise (Not_analyzable ("unbounded variable " ^ v))
      in
      let conc v =
        let r = rng v in
        match (Affine.is_const r.slo, Affine.is_const r.shi) with
        | Some lo, Some hi -> Some { lo; hi }
        | _ -> None
      in
      (* hull of a symbolic range under the parameter context *)
      let hull v =
        let r = rng v in
        match (fst (Symbolic.range ctx r.slo), snd (Symbolic.range ctx r.shi))
        with
        | Some lo, Some hi -> Some { lo; hi }
        | _ -> None
      in
      let sym_vars = List.filter (fun v -> conc v = None) vars in
      match sym_vars with
      | [] ->
          let cranges = List.map (fun v -> (v, Option.get (conc v))) vars in
          Symbolic.leaf (feasible cranges a ~tlo ~thi)
      | _ -> (
          (* probe the parallel-distance variable when symbolic (it
             carries the verdict's region structure), else the first *)
          let vs =
            if List.mem "+dist" sym_vars then "+dist" else List.hd sym_vars
          in
          let r = rng vs in
          let ks = Affine.coeff a vs in
          let others = List.filter (fun v -> v <> vs) vars in
          let cothers =
            List.map
              (fun v ->
                match conc v with
                | Some i -> (v, i)
                | None -> (
                    match hull v with
                    | Some i -> (v, i)
                    | None -> raise Exit (* unbounded hull: Banerjee *)))
              others
          in
          (* any solution has |vs| below this: the target window, the
             constant and the other variables' reach bound |ks * vs| *)
          let dmax =
            let sum =
              List.fold_left
                (fun s (v, (r : interval)) ->
                  s + (abs (Affine.coeff a v) * max (abs r.lo) (abs r.hi)))
                0 cothers
            in
            ((sum + abs c + max (abs tlo) (abs thi)) / abs ks) + 2
          in
          let probe lo hi =
            feasible ((vs, { lo; hi }) :: cothers) a ~tlo ~thi
          in
          (* binary search for the smallest saturating extent; [mk x]
             builds the probe interval of extent [x], [atom x] the
             condition "the symbolic extent reaches x" *)
          let search x0 mk atom =
            let xmax = max x0 dmax in
            if not (let l, h = mk xmax in probe l h) then Symbolic.leaf false
            else begin
              let lo = ref x0 and hi = ref xmax in
              while !lo < !hi do
                let mid = !lo + ((!hi - !lo) / 2) in
                if let l, h = mk mid in probe l h then hi := mid
                else lo := mid + 1
              done;
              Symbolic.conj [ atom !lo ]
            end
          in
          match (Affine.is_const r.slo, Affine.is_const r.shi) with
          | Some lo_c, None ->
              (* [lo_c, shi]: monotone in shi *)
              search lo_c
                (fun w -> (lo_c, w))
                (fun w -> Affine.sub r.shi (Affine.const w))
          | None, Some hi_c ->
              (* [slo, hi_c]: monotone as slo decreases *)
              search (-hi_c)
                (fun w -> (-w, hi_c))
                (fun w -> Affine.sub (Affine.const w) r.slo)
          | None, None when Affine.equal r.slo (Affine.neg r.shi) ->
              (* symmetric difference interval [-w, w]: monotone in w *)
              search 0
                (fun w -> (-w, w))
                (fun w -> Affine.sub r.shi (Affine.const w))
          | _ ->
              (* asymmetric fully-symbolic range: Banerjee below *)
              raise Exit))

let sfeasible ctx rs a ~tlo ~thi =
  try sfeasible ctx rs a ~tlo ~thi
  with Exit ->
    (* symbolic Banerjee bounds + the concrete GCD test over the window *)
    let c = Affine.const_part a in
    let bmin, bmax =
      List.fold_left
        (fun (lo, hi) v ->
          let k = Affine.coeff a v in
          let r =
            match List.assoc_opt v rs with
            | Some r -> r
            | None -> raise (Not_analyzable ("unbounded variable " ^ v))
          in
          if k >= 0 then
            ( Affine.add lo (Affine.scale k r.slo),
              Affine.add hi (Affine.scale k r.shi) )
          else
            ( Affine.add lo (Affine.scale k r.shi),
              Affine.add hi (Affine.scale k r.slo) ))
        (Affine.const c, Affine.const c)
        (Affine.vars a)
    in
    let g =
      List.fold_left (fun g v -> gcd g (Affine.coeff a v)) 0 (Affine.vars a)
    in
    if g <> 0 && fdiv (thi - c) g < cdiv (tlo - c) g then Symbolic.leaf false
    else
      Symbolic.conj
        [
          Affine.sub (Affine.const thi) bmin; Affine.sub bmax (Affine.const tlo);
        ]

let classify_sym ~line_bytes ~params ~sranges ~ctx (nest : Loop_nest.t)
    (ra : Array_ref.t) (rb : Array_ref.t) =
  let pvar = (Loop_nest.parallel_loop nest).Loop_nest.var in
  let pstep = (Loop_nest.parallel_loop nest).Loop_nest.step in
  let spr = List.assoc pvar sranges in
  (* parallel iterations apart; [shi - slo] equals ptrip - 1 for unit
     steps and over-approximates it otherwise (which can only weaken
     may-verdicts, never [Independent]) *)
  let width = Affine.sub spr.shi spr.slo in
  let offa = fold_params params ra.Array_ref.offset in
  let offb = fold_params params rb.Array_ref.offset in
  let offb' = Affine.subst (fun v -> Some (Affine.var (prime v))) offb in
  let d = Affine.sub offa offb' in
  let sranges2 = sranges @ List.map (fun (v, r) -> (prime v, r)) sranges in
  let dist = "+dist" in
  let subst_dir sign =
    Affine.subst
      (fun v ->
        if v = prime pvar then
          Some
            (Affine.add (Affine.var pvar)
               (Affine.scale (sign * pstep) (Affine.var dist)))
        else None)
      d
  in
  let sranges3 = (dist, { slo = Affine.const 1; shi = width }) :: sranges2 in
  let couple a =
    let rs = ref sranges3 in
    let a =
      List.fold_left
        (fun a (v, (r : sival)) ->
          let kv = Affine.coeff a v and kp = Affine.coeff a (prime v) in
          if kv <> 0 && kp = -kv then begin
            let dv = "+d" ^ v in
            let w = Affine.sub r.shi r.slo in
            rs := (dv, { slo = Affine.neg w; shi = w }) :: !rs;
            Affine.subst
              (fun u ->
                if u = v then Some (Affine.var dv)
                else if u = prime v then Some (Affine.const 0)
                else None)
              a
          end
          else a)
        a sranges
    in
    (!rs, a)
  in
  let window ~tlo ~thi =
    let check sign =
      let rs, a = couple (subst_dir sign) in
      sfeasible ctx rs a ~tlo ~thi
    in
    Symbolic.cor (check 1) (check (-1))
  in
  let sza = ra.Array_ref.size_bytes and szb = rb.Array_ref.size_bytes in
  let race = window ~tlo:(-(szb - 1)) ~thi:(sza - 1) in
  let tree =
    Symbolic.bind race (function
      | true -> Symbolic.leaf Loop_carried
      | false ->
          Symbolic.bind
            (window ~tlo:(-(line_bytes - 1)) ~thi:(line_bytes - 1))
            (function
              | true -> Symbolic.leaf Line_conflict
              | false -> Symbolic.leaf Independent))
  in
  let tree =
    (* the symbolic counterpart of [classify]'s [ptrip <= 1] shortcut: a
       second parallel iteration exists only when [slo + pstep <= shi].
       Below that threshold the distance range is empty, but the
       per-atom Banerjee conditions cannot see that (each endpoint
       inequality can hold even when the interval itself is empty), so
       without the guard the tree reports conflicts for empty and
       single-iteration loops.  (Found by fsfuzz at [n = 0] and, with
       [i += 3], at [n = 2].) *)
    Symbolic.If
      (Affine.sub width (Affine.const pstep), tree, Symbolic.leaf Independent)
  in
  Symbolic.simplify ctx tree

(* Identifiers in loop bounds that are bound neither by [params] nor by
   an enclosing loop: the nest is parametric exactly when this is
   non-empty. *)
let free_params ~params (nest : Loop_nest.t) =
  match sbox ~params nest with
  | _, free -> free
  | exception Not_analyzable _ ->
      (* bounds the symbolic box cannot express (e.g. [n / 2]): the
         unbound identifiers are still what [-p] would bind, and the
         exact backend can often still decide such nests, so report
         them instead of silently going concrete *)
      let loop_vars =
        List.map (fun (l : Loop_nest.loop) -> l.Loop_nest.var)
          nest.Loop_nest.loops
      in
      let acc = ref [] in
      List.iter
        (fun (l : Loop_nest.loop) ->
          List.iter
            (fun v ->
              if
                (not (List.mem_assoc v params))
                && (not (List.mem v loop_vars))
                && not (List.mem v !acc)
              then acc := v :: !acc)
            (List.rev (expr_idents l.Loop_nest.lower [])
            @ List.rev (expr_idents l.Loop_nest.upper_excl [])))
        nest.Loop_nest.loops;
      List.rev !acc

(* Rows a parameter context contributes to an exact system: each
   declared bound becomes an inequality over the parameter. *)
let ctx_rows ctx =
  List.concat_map
    (fun p ->
      match Symbolic.bounds_of ctx p with
      | None -> []
      | Some (lo, hi) ->
          (match lo with
          | Some lo -> [ Affine.sub (Affine.var p) (Affine.const lo) ]
          | None -> [])
          @
          (match hi with
          | Some hi -> [ Affine.sub (Affine.const hi) (Affine.var p) ]
          | None -> []))
    (Symbolic.params ctx)

(* Region-wise exact refinement of a symbolic verdict tree: under every
   satisfiable path, the path atoms plus the context bounds constrain
   the free parameters, and the exact backend re-decides the leaf.  An
   unsatisfiable region over the whole path upgrades the leaf all the
   way to [Independent] (a must for every parameter value in the
   region); a satisfiable one yields a witness with explicit parameter
   values (realizable, not universal, so [ev_must] stays false). *)
let refine_sym ~line_bytes ~exact_budget ~ctx xb ra rb tree =
  let base_rows = ctx_rows ctx in
  let rec go conds tree =
    match tree with
    | Symbolic.If (c, y, n) ->
        Symbolic.If
          (c, go (c :: conds) y, go (Symbolic.cond_not c :: conds) n)
    | Symbolic.Leaf Independent ->
        Symbolic.Leaf (Independent, banerjee_ev ~must:true)
    | Symbolic.Leaf v0 ->
        Symbolic.Leaf
          (exact_classify ~line_bytes ~exact_budget xb
             ~region_rows:(conds @ base_rows) ra rb v0)
  in
  go [] tree

let pairs_sym ~line_bytes ~params ?(exact : exact_mode = `Auto)
    ?(exact_budget = default_exact_budget) ?extent_of (nest : Loop_nest.t) =
  let refs = Array.of_list nest.Loop_nest.refs in
  let n = Array.length refs in
  let interesting i j =
    let a = refs.(i) and b = refs.(j) in
    a.Array_ref.base = b.Array_ref.base
    && (Array_ref.is_write a || Array_ref.is_write b)
  in
  let make verdict_of =
    let acc = ref [] in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        if interesting i j then
          acc :=
            { sa = refs.(i); sb = refs.(j); scases = verdict_of refs.(i) refs.(j) }
            :: !acc
      done
    done;
    List.rev !acc
  in
  let mk_xb () =
    if exact = `Off then None
    else
      match exact_box ~params ~free_ok:true nest with
      | xb -> Some xb
      | exception (Not_analyzable _ | Free_ident _) -> None
  in
  let plain m = Symbolic.map m (fun v -> (v, banerjee_ev ~must:(v = Independent))) in
  match sbox ~params nest with
  | exception Not_analyzable m -> (
      (* the symbolic box cannot express the bounds; the exact backend
         may still decide the nest with the unbound identifiers as free
         non-negative parameters *)
      match mk_xb () with
      | None ->
          ( make (fun _ _ -> Symbolic.leaf (Unknown m, banerjee_ev ~must:false)),
            Symbolic.empty,
            [] )
      | Some xb ->
          let ps =
            make (fun a b ->
                Symbolic.Leaf
                  (exact_classify ~line_bytes ~exact_budget xb ~region_rows:[]
                     a b (Unknown m)))
          in
          let free = List.rev xb.xfree in
          let ctx0 =
            List.fold_left
              (fun c p -> Symbolic.declare c p ~lo:(Some 0) ~hi:None)
              Symbolic.empty free
          in
          (ps, ctx0, free))
  | sranges, free ->
      (* free size-like parameters are assumed non-negative *)
      let ctx0 =
        List.fold_left
          (fun c p -> Symbolic.declare c p ~lo:(Some 0) ~hi:None)
          Symbolic.empty free
      in
      (* in-bounds refinement: a subscript that stays inside its array's
         declared extent for every executed iteration bounds the free
         parameters (out-of-bounds executions are undefined anyway) *)
      let ctx =
        match extent_of with
        | None -> ctx0
        | Some ext ->
            List.fold_left
              (fun ctx (r : Array_ref.t) ->
                match ext r.Array_ref.base with
                | None -> ctx
                | Some size ->
                    let a = fold_params params r.Array_ref.offset in
                    let lo, hi = sbounds sranges a in
                    let ctx = Symbolic.assume ctx lo in
                    Symbolic.assume ctx
                      (Affine.sub
                         (Affine.const (size - r.Array_ref.size_bytes))
                         hi))
              ctx0 nest.Loop_nest.refs
      in
      (* a loop certainly empty for every parameter value: no iterations *)
      let certainly_empty =
        List.exists
          (fun (_, (r : sival)) ->
            Symbolic.decide ctx (Affine.sub r.shi r.slo) = `False)
          sranges
      in
      if certainly_empty then
        ( make (fun _ _ -> Symbolic.leaf (Independent, banerjee_ev ~must:true)),
          ctx,
          free )
      else
        let xb = lazy (mk_xb ()) in
        ( make (fun a b ->
              let tree =
                try classify_sym ~line_bytes ~params ~sranges ~ctx nest a b
                with Not_analyzable m -> Symbolic.leaf (Unknown m)
              in
              match Lazy.force xb with
              | None -> plain tree
              | Some xb ->
                  Symbolic.simplify
                    ~equal:(fun (v1, _) (v2, _) -> v1 = v2)
                    ctx
                    (refine_sym ~line_bytes ~exact_budget ~ctx xb a b tree)),
          ctx,
          free )

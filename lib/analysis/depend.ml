open Loopir

type verdict =
  | Independent
  | Loop_carried
  | Line_conflict
  | Unknown of string

type pair = { a : Array_ref.t; b : Array_ref.t; verdict : verdict }

let verdict_name = function
  | Independent -> "independent"
  | Loop_carried -> "loop-carried"
  | Line_conflict -> "line-conflict"
  | Unknown _ -> "unknown"

(* ---------------------------------------------------------------- *)
(* Interval arithmetic over the iteration box                        *)
(* ---------------------------------------------------------------- *)

exception Not_analyzable of string

type interval = { lo : int; hi : int }  (* inclusive *)

(* Banerjee bounds of an affine expression over per-variable intervals. *)
let bounds ranges a =
  let c = Affine.const_part a in
  List.fold_left
    (fun (mn, mx) v ->
      let k = Affine.coeff a v in
      let r =
        match List.assoc_opt v ranges with
        | Some r -> r
        | None -> raise (Not_analyzable ("unbounded variable " ^ v))
      in
      if k >= 0 then (mn + (k * r.lo), mx + (k * r.hi))
      else (mn + (k * r.hi), mx + (k * r.lo)))
    (c, c) (Affine.vars a)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* extended gcd: egcd a b = (g, u, v) with a*u + b*v = g *)
let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else
    let g, u, v = egcd b (a mod b) in
    (g, v, u - (a / b * v))

let range_of ranges v =
  match List.assoc_opt v ranges with
  | Some r -> r
  | None -> raise (Not_analyzable ("unbounded variable " ^ v))

(* The k interval with x0 <= xp + sx*k <= x1 (empty when lo > hi). *)
let k_interval ~xp ~sx ~x0 ~x1 =
  if sx > 0 then (cdiv (x0 - xp) sx, fdiv (x1 - xp) sx)
  else (cdiv (xp - x1) (-sx), fdiv (xp - x0) (-sx))

(* Can [a] take a value in [tlo, thi] over the box?  With at most two
   variables the test is exact (interval intersection, or a bounded
   linear Diophantine solve along the solution line); otherwise the
   classical sufficient-for-impossibility pair — Banerjee interval
   disjointness and GCD inadmissibility — makes [false] a must-not. *)
let feasible ranges a ~tlo ~thi =
  let c = Affine.const_part a in
  match Affine.vars a with
  | [] -> tlo <= c && c <= thi
  | [ v ] ->
      let k = Affine.coeff a v in
      let r = range_of ranges v in
      let lo, hi =
        if k > 0 then (cdiv (tlo - c) k, fdiv (thi - c) k)
        else (cdiv (c - thi) (-k), fdiv (c - tlo) (-k))
      in
      max lo r.lo <= min hi r.hi
  | [ v1; v2 ] ->
      let k1 = Affine.coeff a v1 and k2 = Affine.coeff a v2 in
      let r1 = range_of ranges v1 and r2 = range_of ranges v2 in
      let g, u, w = egcd k1 k2 in
      let g = abs g
      and u = if g < 0 then -u else u
      and w = if g < 0 then -w else w in
      let ok = ref false in
      let t = ref tlo in
      while (not !ok) && !t <= thi do
        let rhs = !t - c in
        if rhs mod g = 0 then begin
          (* particular solution of k1*x + k2*y = rhs, then walk the
             solution line x = xp + (k2/g)k, y = yp - (k1/g)k *)
          let xp = u * (rhs / g) and yp = w * (rhs / g) in
          let klo1, khi1 = k_interval ~xp ~sx:(k2 / g) ~x0:r1.lo ~x1:r1.hi in
          let klo2, khi2 =
            k_interval ~xp:yp ~sx:(-(k1 / g)) ~x0:r2.lo ~x1:r2.hi
          in
          if max klo1 klo2 <= min khi1 khi2 then ok := true
        end;
        incr t
      done;
      !ok
  | vars ->
      let bmin, bmax = bounds ranges a in
      let lo = max tlo bmin and hi = min thi bmax in
      if lo > hi then false
      else
        let g = List.fold_left (fun g v -> gcd g (Affine.coeff a v)) 0 vars in
        if g = 0 then true (* constant, already inside the window *)
        else fdiv (hi - c) g >= cdiv (lo - c) g

(* ---------------------------------------------------------------- *)
(* Building the iteration box                                        *)
(* ---------------------------------------------------------------- *)

let prime v = v ^ "'"

(* Evaluate loop bounds outermost-in, each as an affine expression over
   parameters (folded to constants) and enclosing loop variables
   (interval-propagated).  Returns the per-variable value intervals plus a
   per-loop upper bound on the trip count; [None] when the nest certainly
   runs nothing. *)
let box ~params (nest : Loop_nest.t) =
  let ranges = ref [] in
  let lookup v =
    match List.assoc_opt v params with
    | Some k -> Some (Affine.const k)
    | None ->
        if List.mem_assoc v !ranges then Some (Affine.var v) else None
  in
  let trips =
    List.map
      (fun (l : Loop_nest.loop) ->
        let aff_of e =
          match Affine.of_expr lookup e with
          | Some a -> a
          | None ->
              raise
                (Not_analyzable
                   (Printf.sprintf "bound of loop %s is not affine"
                      l.Loop_nest.var))
        in
        let lo_lo, _ = bounds !ranges (aff_of l.Loop_nest.lower) in
        let _, up_hi = bounds !ranges (aff_of l.Loop_nest.upper_excl) in
        if up_hi - 1 < lo_lo then raise Exit (* certainly empty nest *)
        else begin
          (* conservative value interval: smallest lower to largest last *)
          ranges := (l.Loop_nest.var, { lo = lo_lo; hi = up_hi - 1 }) :: !ranges;
          (* largest possible trip count *)
          max 0 ((up_hi - lo_lo + l.Loop_nest.step - 1) / l.Loop_nest.step)
        end)
      nest.Loop_nest.loops
  in
  (!ranges, trips)

(* ---------------------------------------------------------------- *)
(* Pair classification                                               *)
(* ---------------------------------------------------------------- *)

let fold_params params a =
  Affine.subst
    (fun v ->
      match List.assoc_opt v params with
      | Some k -> Some (Affine.const k)
      | None -> None)
    a

let classify ~line_bytes ~params ~ranges ~trips (nest : Loop_nest.t)
    (ra : Array_ref.t) (rb : Array_ref.t) =
  let pvar = (Loop_nest.parallel_loop nest).Loop_nest.var in
  let pstep = (Loop_nest.parallel_loop nest).Loop_nest.step in
  let ptrip = List.nth trips nest.Loop_nest.parallel_depth in
  if ptrip <= 1 then Independent (* at most one parallel iteration *)
  else begin
    let offa = fold_params params ra.Array_ref.offset in
    let offb = fold_params params rb.Array_ref.offset in
    (* the second iteration's variables, renamed *)
    let offb' =
      Affine.subst (fun v -> Some (Affine.var (prime v))) offb
    in
    let d = Affine.sub offa offb' in
    (* primed variables share the unprimed intervals *)
    let ranges2 =
      ranges @ List.map (fun (v, r) -> (prime v, r)) ranges
    in
    let dist = "+dist" in
    (* substitute pvar' = pvar +/- step*dist with dist >= 1: the two
       iterations differ at the parallel level *)
    let subst_dir sign =
      Affine.subst
        (fun v ->
          if v = prime pvar then
            Some
              (Affine.add (Affine.var pvar)
                 (Affine.scale (sign * pstep) (Affine.var dist)))
          else None)
        d
    in
    let ranges3 = (dist, { lo = 1; hi = max 1 (ptrip - 1) }) :: ranges2 in
    (* Coupling reduction: when a variable and its primed copy occur with
       opposite coefficients k*v - k*v', collapse them into a single
       difference variable over the symmetric interval.  This often drops
       the expression to <= 2 variables, where [feasible] is exact. *)
    let couple a =
      let rs = ref ranges3 in
      let a =
        List.fold_left
          (fun a (v, (r : interval)) ->
            let kv = Affine.coeff a v and kp = Affine.coeff a (prime v) in
            if kv <> 0 && kp = -kv then begin
              let dv = "+d" ^ v in
              let w = r.hi - r.lo in
              rs := (dv, { lo = -w; hi = w }) :: !rs;
              Affine.subst
                (fun u ->
                  if u = v then Some (Affine.var dv)
                  else if u = prime v then Some (Affine.const 0)
                  else None)
                a
            end
            else a)
          a ranges
      in
      (!rs, a)
    in
    let feasible_window ~tlo ~thi =
      let check sign =
        let rs, a = couple (subst_dir sign) in
        feasible rs a ~tlo ~thi
      in
      check 1 || check (-1)
    in
    let sza = ra.Array_ref.size_bytes and szb = rb.Array_ref.size_bytes in
    if feasible_window ~tlo:(-(szb - 1)) ~thi:(sza - 1) then Loop_carried
    else if
      feasible_window ~tlo:(-(line_bytes - 1)) ~thi:(line_bytes - 1)
    then Line_conflict
    else Independent
  end

let pairs ~line_bytes ~params (nest : Loop_nest.t) =
  let refs = Array.of_list nest.Loop_nest.refs in
  let n = Array.length refs in
  let interesting i j =
    let a = refs.(i) and b = refs.(j) in
    a.Array_ref.base = b.Array_ref.base
    && (Array_ref.is_write a || Array_ref.is_write b)
  in
  let make verdict_of =
    let acc = ref [] in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        if interesting i j then
          acc := { a = refs.(i); b = refs.(j); verdict = verdict_of refs.(i) refs.(j) }
                 :: !acc
      done
    done;
    List.rev !acc
  in
  match box ~params nest with
  | ranges, trips ->
      make (fun a b ->
          try classify ~line_bytes ~params ~ranges ~trips nest a b
          with Not_analyzable m -> Unknown m)
  | exception Exit -> make (fun _ _ -> Independent)
  | exception Not_analyzable m -> make (fun _ _ -> Unknown m)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf indent t =
  let pad n = String.make (2 * n) ' ' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      (* stable rendering: integers without exponent, else shortest *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          emit buf (indent + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf (indent + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  emit buf 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(** Fix verification: the closed loop from advice to a proven transformed
    program.

    [Fsmodel.Transform] materializes the fix; this module re-runs the
    whole analysis stack on the result — both model engines, the
    dependence analysis, and the analytic reuse-distance cost model —
    and compares against the original.  A fix is {e verified} when

    - the transformed source round-trips (re-parses and re-typechecks to
      the same span-erased AST),
    - both engines agree on the FS count before and after,
    - the attributed FS removal reaches [min_removal] (default 90%),
    - no new race appears, and
    - the analytic [Total_c] does not regress beyond [cost_slack]
      (default 5%).

    The execution-simulator leg of the gate lives with the tests and the
    bench driver ([test/fix_verify.ml]), which link the simulator; this
    library stays simulator-free. *)

type metrics = {
  fs_fast : int;  (** FS cases, [`Fast] engine, summed over all nests *)
  fs_ref : int;  (** FS cases, [`Reference] engine *)
  races : int;  (** loop-carried dependence pairs *)
  cost : float option;
      (** analytic [Total_c] summed over nests; [None] when some nest has
          no analytic certificate *)
}

type verdict = {
  func : string;
  plan : Fsmodel.Transform.plan;
  before : metrics;
  after : metrics;
  removal : float;  (** fraction of attributed FS removed, 1.0 when none *)
  cost_ratio : float option;  (** after/before analytic cost *)
  min_removal : float;
  cost_slack : float;
  roundtrip_ok : bool;
  engines_agree : bool;
  verified : bool;
  transformed : Minic.Typecheck.checked;
  source : string;  (** pretty-printed transformed program *)
}

type outcome =
  | Nothing_to_fix of string
      (** empty plan, parametric nest, or non-lowerable function — the
          string says which *)
  | Fix of verdict

val verify :
  ?arch:Archspec.Arch.t ->
  ?advice:Fsmodel.Advisor.advice ->
  ?min_removal:float ->
  ?cost_slack:float ->
  ?chunk:int ->
  threads:int ->
  func:string ->
  Minic.Typecheck.checked ->
  outcome
(** Plan (via [Fsmodel.Transform.plan], reusing [advice] when the caller
    already ran the chunk sweep), materialize, and measure before/after.
    [chunk] overrides the schedule chunk in both measurements; leave it
    unset so a retuned schedule takes effect in the after-measurement. *)

val to_text : verdict -> string
(** Deterministic multi-line report (plan, before/after metrics, removal,
    cost ratio, verdict) — the text half of [fsdetect fix]. *)

val to_json : verdict -> Json.t
(** The same report as a JSON object, including the transformed source
    under ["transformedSource"]. *)

(* Distribution-valued FS verdicts for nondeterministic schedules.

   A dynamic, guided or work-stealing schedule makes the engine's N_fs a
   random variable; one replayed seed is one sample.  This layer runs K
   seeds (domain-parallel through Par_sweep — every sample is an
   independent Model.run) and summarizes the empirical distribution.
   Seeds are replayed in order, so the same (kind, seed set, config)
   always produces the same summary, which is what lets distribution
   text land in goldens and service cache keys. *)

type t = {
  kind : Ompsched.Dispatch.kind;
  seeds : int array;
  fs : int array;  (* per-seed engine N_fs, in seed order *)
  steals : int array;  (* per-seed steal events (0 for dynamic/guided) *)
  mean : float;
  stddev : float;
  p95 : int;
  min_fs : int;
  max_fs : int;
  mean_steals : float;
}

let seeds_upto k =
  if k < 1 then invalid_arg "Dist.seeds_upto: k < 1";
  Array.init k (fun i -> i)

(* the smallest sample value at or above the 95th percentile rank
   (nearest-rank definition: element ceil(0.95 n) of the sorted order) *)
let percentile_95 sorted =
  let n = Array.length sorted in
  let rank = ((95 * n) + 99) / 100 in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let of_samples ~kind ~seeds ~fs ~steals =
  let n = Array.length fs in
  if n = 0 then invalid_arg "Dist.of_samples: no samples";
  let fn = float_of_int n in
  let mean = Array.fold_left (fun a x -> a +. float_of_int x) 0. fs /. fn in
  let var =
    Array.fold_left
      (fun a x ->
        let d = float_of_int x -. mean in
        a +. (d *. d))
      0. fs
    /. fn
  in
  let sorted = Array.copy fs in
  Array.sort compare sorted;
  {
    kind;
    seeds;
    fs;
    steals;
    mean;
    stddev = sqrt var;
    p95 = percentile_95 sorted;
    min_fs = sorted.(0);
    max_fs = sorted.(n - 1);
    mean_steals =
      Array.fold_left (fun a x -> a +. float_of_int x) 0. steals /. fn;
  }

let run ?(engine = (`Fast : Fsmodel.Model.engine)) ?domains
    ?(seeds = seeds_upto 8) ~kind cfg ~nest ~checked =
  if Array.length seeds = 0 then invalid_arg "Dist.run: empty seed set";
  let samples =
    Fsmodel.Par_sweep.map ?domains
      (fun seed ->
        let r =
          Fsmodel.Model.run ~engine
            { cfg with Fsmodel.Model.sched = Some (kind, seed) }
            ~nest ~checked
        in
        (r.Fsmodel.Model.fs_cases, r.Fsmodel.Model.steals))
      (Array.to_list seeds)
  in
  let fs = Array.of_list (List.map fst samples) in
  let steals = Array.of_list (List.map snd samples) in
  of_samples ~kind ~seeds ~fs ~steals

let summary t =
  let steal_part =
    match t.kind with
    | Ompsched.Dispatch.Work_stealing _ ->
        Printf.sprintf ", %.1f steal(s)/seed" t.mean_steals
    | Ompsched.Dispatch.Dynamic _ | Ompsched.Dispatch.Guided _ -> ""
  in
  Printf.sprintf
    "mean %.1f, stddev %.1f, p95 %d, range %d..%d over %d seed(s)%s" t.mean
    t.stddev t.p95 t.min_fs t.max_fs (Array.length t.seeds) steal_part

let pp ppf t =
  Format.fprintf ppf "%s: %s" (Ompsched.Dispatch.kind_name t.kind) (summary t)

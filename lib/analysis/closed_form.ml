open Loopir

type info = {
  fs_cases : int;
  lines_analyzed : int;
  regions : int;
  regime : string;
}

type result = Exact of info | Inapplicable of string

exception Fallback of string

let bail fmt = Format.kasprintf (fun s -> raise (Fallback s)) fmt

let popcount =
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  fun n -> go n 0

let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

(* A reference resolved within one region: at parallel iteration [q]
   (0-based) it touches bytes [addr0 + stride*q, addr0 + stride*q + size). *)
type rref = { addr0 : int; stride : int; size : int; write : bool }

(* Countable references of one base sharing a stride: at any fixed
   iteration their addresses stay within [spread + maxsz] bytes of each
   other, which bounds the distinct lines they insert over a gap. *)
type sgroup = { s : int; spread : int; maxsz : int }

type binfo = {
  bname : string;
  brefs : rref list;  (* resolved refs; [] when not countable *)
  bwritten : bool;
  countable : bool;  (* every ref affine in the parallel variable only *)
  nrefs_b : int;  (* reference count, including unresolved ones *)
  linespan : int;  (* cache lines the base's refs can reach this region *)
  groups : sgroup list;
}

type region = {
  rn : int;  (* parallel trip count *)
  rchunk : int;
  rip : int;  (* inner iterations per parallel iteration *)
  rsteps : int;  (* lockstep steps: max_steps_per_thread * rip *)
  rbases : binfo list;
  rall_countable : bool;
}

(* Per-line simulation state carried across regions: which threads hold
   the line modified (the engine's sticky written bit) and the global
   lockstep step of each thread's last touch. *)
type lstate = { mutable writers : int; last : int array }

let estimate (cfg : Fsmodel.Model.config) ~(nest : Loop_nest.t) ~checked =
  try
    (match Loop_nest.schedule_kind nest with
    | `Static -> ()
    | `Dynamic | `Guided -> bail "only schedule(static) is round-robin");
    if cfg.Fsmodel.Model.invalidate_on_write then
      bail "the invalidate-on-write ablation is not modeled in closed form";
    let threads = cfg.Fsmodel.Model.threads in
    if threads < 1 then bail "thread count %d < 1" threads;
    if threads > 62 then bail "more than 62 threads (writer-set bitmask)";
    let arch = cfg.Fsmodel.Model.arch in
    let capacity =
      match cfg.Fsmodel.Model.stack with
      | Fsmodel.Model.Level_l1 -> Archspec.Cache_geom.lines arch.Archspec.Arch.l1
      | Fsmodel.Model.Level_l2 -> Archspec.Cache_geom.lines arch.Archspec.Arch.l2
      | Fsmodel.Model.Lines n -> n
      | Fsmodel.Model.Unbounded -> max_int
    in
    if capacity < 1 then bail "stack capacity %d < 1" capacity;
    let params = cfg.Fsmodel.Model.params in
    let lb = Archspec.Arch.line_bytes arch in
    let layout = Layout.make ~line_bytes:lb checked in
    let loops = Array.of_list nest.Loop_nest.loops in
    let nloops = Array.length loops in
    let d = nest.Loop_nest.parallel_depth in
    let ploop = loops.(d) in
    let pvar = ploop.Loop_nest.var in
    let pstep = ploop.Loop_nest.step in
    let idx = Array.make nloops 0 in
    (* same environment the engine uses: parameters shadow loop variables *)
    let env : (string, [ `Param of int | `Slot of int ]) Hashtbl.t =
      Hashtbl.create 16
    in
    Array.iteri
      (fun i (l : Loop_nest.loop) -> Hashtbl.replace env l.Loop_nest.var (`Slot i))
      loops;
    List.iter (fun (v, k) -> Hashtbl.replace env v (`Param k)) (List.rev params);
    let lookup v =
      match Hashtbl.find_opt env v with
      | Some (`Param k) -> Some k
      | Some (`Slot i) -> Some idx.(i)
      | None -> None
    in
    (* analysis work budget: the estimator must stay cheap next to the
       engine it replaces *)
    let ops = ref 0 in
    let tick n =
      ops := !ops + n;
      if !ops > 60_000_000 then bail "analysis budget exceeded"
    in
    let lines_seen = ref 0 in
    (* fold parameters into every offset and shift by the base address *)
    let folded =
      List.map
        (fun (r : Array_ref.t) ->
          let a =
            Affine.subst
              (fun v ->
                match List.assoc_opt v params with
                | Some k -> Some (Affine.const k)
                | None -> None)
              r.Array_ref.offset
          in
          let base_addr =
            try Layout.addr_of layout r.Array_ref.base
            with Not_found -> bail "unknown base %s" r.Array_ref.base
          in
          List.iter
            (fun v ->
              if not (Array.exists (fun (l : Loop_nest.loop) -> l.Loop_nest.var = v) loops)
              then bail "free variable %s in subscript of %s" v r.Array_ref.repr)
            (Affine.vars a);
          (r, Affine.add a (Affine.const base_addr)))
        nest.Loop_nest.refs
    in
    let base_names =
      List.fold_left
        (fun acc (r : Array_ref.t) ->
          if List.mem r.Array_ref.base acc then acc else r.Array_ref.base :: acc)
        [] nest.Loop_nest.refs
      |> List.rev
    in
    (* global per-base address interval, for the line-disjointness check *)
    let extent : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
    let widen name lo hi =
      match Hashtbl.find_opt extent name with
      | None -> Hashtbl.replace extent name (lo, hi)
      | Some (l0, h0) -> Hashtbl.replace extent name (min l0 lo, max h0 hi)
    in
    (* ---- region construction (mirrors Model.run's outer walk) ---- *)
    let regions = ref [] in
    let n_regions = ref 0 in
    let add_region () =
      let par_lower = Expr_eval.eval lookup ploop.Loop_nest.lower in
      let par_trip = Loop_nest.trip_count ploop ~env:lookup in
      if par_trip > 0 then begin
        idx.(d) <- par_lower;
        let inner = Array.sub loops (d + 1) (nloops - d - 1) in
        let inner_lowers =
          Array.map
            (fun (l : Loop_nest.loop) -> Expr_eval.eval lookup l.Loop_nest.lower)
            inner
        in
        let inner_trips =
          Array.map (fun l -> Loop_nest.trip_count l ~env:lookup) inner
        in
        let ip = Array.fold_left ( * ) 1 inner_trips in
        if ip > 0 then begin
          incr n_regions;
          if !n_regions > 4096 then bail "too many sequential regions";
          let chunk =
            match cfg.Fsmodel.Model.chunk with
            | Some c -> c
            | None -> (
                match Loop_nest.chunk_spec nest with
                | Some c -> c
                | None ->
                    Ompsched.Schedule.block_chunk ~threads ~total:par_trip)
          in
          let sched = Ompsched.Schedule.make ~threads ~chunk ~total:par_trip in
          let steps = Ompsched.Schedule.max_steps_per_thread sched * ip in
          let inner_index v =
            let r = ref (-1) in
            Array.iteri
              (fun j (l : Loop_nest.loop) -> if l.Loop_nest.var = v then r := j)
              inner;
            !r
          in
          let rng v =
            if v = pvar then (par_lower, par_lower + ((par_trip - 1) * pstep))
            else
              let j = inner_index v in
              if j < 0 then bail "free variable %s in a subscript" v
              else
                ( inner_lowers.(j),
                  inner_lowers.(j)
                  + ((inner_trips.(j) - 1) * inner.(j).Loop_nest.step) )
          in
          let interval_of a size =
            let c = Affine.const_part a in
            let mn, mx =
              List.fold_left
                (fun (mn, mx) v ->
                  let k = Affine.coeff a v in
                  let vlo, vhi = rng v in
                  if k >= 0 then (mn + (k * vlo), mx + (k * vhi))
                  else (mn + (k * vhi), mx + (k * vlo)))
                (c, c) (Affine.vars a)
            in
            (mn, mx + size - 1)
          in
          let bases =
            List.map
              (fun name ->
                let brs =
                  List.filter
                    (fun ((r : Array_ref.t), _) -> r.Array_ref.base = name)
                    folded
                in
                let written =
                  List.exists (fun (r, _) -> Array_ref.is_write r) brs
                in
                let resolved =
                  List.map
                    (fun ((r : Array_ref.t), a) ->
                      (* fold the current outer-loop values *)
                      let a2 =
                        Affine.subst
                          (fun v ->
                            match Hashtbl.find_opt env v with
                            | Some (`Slot i) when i < d ->
                                Some (Affine.const idx.(i))
                            | _ -> None)
                          a
                      in
                      let lo, hi = interval_of a2 r.Array_ref.size_bytes in
                      widen name lo hi;
                      let par_only =
                        List.for_all (fun v -> v = pvar) (Affine.vars a2)
                      in
                      (r, a2, par_only))
                    brs
                in
                let countable = List.for_all (fun (_, _, p) -> p) resolved in
                if written && not countable then
                  bail
                    "a reference to written base %s depends on an inner loop \
                     variable"
                    name;
                let rrefs =
                  if not countable then []
                  else
                    List.map
                      (fun ((r : Array_ref.t), a2, _) ->
                        let k = Affine.coeff a2 pvar in
                        let stride = k * pstep in
                        let write = Array_ref.is_write r in
                        if write && stride <= 0 then
                          bail
                            "write %s does not advance by a positive stride"
                            r.Array_ref.repr;
                        if stride < 0 then
                          bail "%s sweeps backwards" r.Array_ref.repr;
                        {
                          addr0 = Affine.const_part a2 + (k * par_lower);
                          stride;
                          size = r.Array_ref.size_bytes;
                          write;
                        })
                      resolved
                in
                let groups =
                  (* stride groups with addr0 spread *)
                  let tbl = Hashtbl.create 4 in
                  List.iter
                    (fun (rf : rref) ->
                      match Hashtbl.find_opt tbl rf.stride with
                      | None ->
                          Hashtbl.replace tbl rf.stride
                            (rf.addr0, rf.addr0, rf.size)
                      | Some (lo, hi, ms) ->
                          Hashtbl.replace tbl rf.stride
                            (min lo rf.addr0, max hi rf.addr0, max ms rf.size))
                    rrefs;
                  Hashtbl.fold
                    (fun s (lo, hi, ms) acc ->
                      { s; spread = hi - lo; maxsz = ms } :: acc)
                    tbl []
                  |> List.sort (fun a b -> compare a.s b.s)
                in
                let lo_b, hi_b =
                  List.fold_left
                    (fun (l, h) ((r : Array_ref.t), a2, _) ->
                      let rl, rh = interval_of a2 r.Array_ref.size_bytes in
                      (min l rl, max h rh))
                    (max_int, min_int) resolved
                in
                {
                  bname = name;
                  brefs = rrefs;
                  bwritten = written;
                  countable;
                  nrefs_b = List.length brs;
                  linespan = fdiv hi_b lb - fdiv lo_b lb + 1;
                  groups;
                })
              base_names
          in
          regions :=
            {
              rn = par_trip;
              rchunk = chunk;
              rip = ip;
              rsteps = steps;
              rbases = bases;
              rall_countable = List.for_all (fun b -> b.countable) bases;
            }
            :: !regions
        end
      end
    in
    let rec walk level =
      if level = d then add_region ()
      else begin
        let l = loops.(level) in
        let lo = Expr_eval.eval lookup l.Loop_nest.lower in
        let hi = Expr_eval.eval lookup l.Loop_nest.upper_excl in
        let v = ref lo in
        while !v < hi do
          idx.(level) <- !v;
          walk (level + 1);
          v := !v + l.Loop_nest.step
        done
      end
    in
    walk 0;
    let rs = Array.of_list (List.rev !regions) in
    let r_count = Array.length rs in
    if r_count = 0 then
      Exact { fs_cases = 0; lines_analyzed = 0; regions = 0; regime = "empty" }
    else begin
      (* distinct bases must occupy distinct cache lines, or per-base
         line accounting breaks (only out-of-bounds code violates this) *)
      let names = Hashtbl.fold (fun k v acc -> (k, v) :: acc) extent [] in
      List.iteri
        (fun i (na, (la, ha)) ->
          List.iteri
            (fun j (nb, (lbo, hb)) ->
              if j > i && fdiv ha lb >= fdiv lbo lb && fdiv hb lb >= fdiv la lb
              then bail "bases %s and %s may share cache lines" na nb)
            names)
        names;
      (* Upper bound on the distinct cache lines one thread can insert
         over [w] lockstep steps inside region [r].  Lockstep means the
         thread advances at most [w/ip + 1] parallel-level positions, so
         a stride-[s] group of references stays within a computable byte
         span; inner-dependent references are bounded by their whole-
         region footprint; everything is capped by two lines per
         reference per executed iteration. *)
      let bound (r : region) w =
        let dk = (w / r.rip) + 1 in
        let qspan = (dk + r.rchunk) * threads in
        List.fold_left
          (fun acc b ->
            let by_steps = (w + 1) * 2 * b.nrefs_b in
            let m = min by_steps b.linespan in
            let m =
              if b.countable then
                min m
                  (List.fold_left
                     (fun a g ->
                       a + (((g.s * qspan) + g.spread + g.maxsz) / lb) + 2)
                     0 b.groups)
              else m
            in
            acc + m)
          0 r.rbases
      in
      (* enumerate the lines of one countable base in one region; calls
         [f line events] with events sorted by (parallel step, thread) *)
      let iter_lines (r : region) (b : binfo) f =
        let refs = Array.of_list b.brefs in
        let nr = Array.length refs in
        if nr > 0 then begin
          let lo =
            Array.fold_left (fun m (rf : rref) -> min m rf.addr0) max_int refs
          in
          let hi =
            Array.fold_left
              (fun m (rf : rref) ->
                max m (rf.addr0 + (rf.stride * (r.rn - 1)) + rf.size - 1))
              min_int refs
          in
          let wins = Array.make nr (1, 0) in
          for line = fdiv lo lb to fdiv hi lb do
            let lbyte = line * lb in
            let q0 = ref max_int and q1 = ref min_int in
            for k = 0 to nr - 1 do
              let rf = refs.(k) in
              let w =
                if rf.stride > 0 then
                  ( max 0 (cdiv (lbyte - rf.addr0 - rf.size + 1) rf.stride),
                    min (r.rn - 1) (fdiv (lbyte + lb - 1 - rf.addr0) rf.stride)
                  )
                else if rf.addr0 <= lbyte + lb - 1 && rf.addr0 + rf.size - 1 >= lbyte
                then (0, r.rn - 1)
                else (1, 0)
              in
              wins.(k) <- w;
              let a, z = w in
              if a <= z then begin
                if a < !q0 then q0 := a;
                if z > !q1 then q1 := z
              end
            done;
            if !q0 <= !q1 then begin
              tick (!q1 - !q0 + 1);
              let evs = ref [] in
              for q = !q0 to !q1 do
                let cov = ref false and w = ref false in
                for k = 0 to nr - 1 do
                  let a, z = wins.(k) in
                  if q >= a && q <= z then begin
                    cov := true;
                    if refs.(k).write then w := true
                  end
                done;
                if !cov then begin
                  let cidx = q / r.rchunk in
                  let t = cidx mod threads in
                  let kpar =
                    ((cidx / threads) * r.rchunk) + (q mod r.rchunk)
                  in
                  evs := (kpar, t, !w) :: !evs
                end
              done;
              match !evs with
              | [] -> ()
              | evs ->
                  let arr = Array.of_list (List.rev evs) in
                  Array.sort
                    (fun (k1, t1, _) (k2, t2, _) ->
                      if k1 <> k2 then compare k1 k2 else compare t1 t2)
                    arr;
                  f line arr
            end
          done
        end
      in
      (* ---- exact counting with per-line state carried across regions ---- *)
      let global_fs (sel : region array) =
        let tbl : (int, lstate) Hashtbl.t = Hashtbl.create 1024 in
        let starts = Array.make (Array.length sel) 0 in
        let fs = ref 0 in
        let base_step = ref 0 in
        Array.iteri
          (fun ri r ->
            starts.(ri) <- !base_step;
            let region_of step =
              let i = ref ri in
              while !i > 0 && starts.(!i) > step do decr i done;
              !i
            in
            (* the holder last touched the line at global step [lt]; its
               residency through [step_end] must be certain *)
            let certify lt step_end =
              let w = step_end - lt in
              let lo_r = region_of lt in
              let need = ref 0 in
              for i = lo_r to ri do
                need := !need + bound sel.(i) (min w sel.(i).rsteps)
              done;
              if !need > capacity - 1 then
                bail "line residency across a %d-step gap is uncertain" w
            in
            List.iter
              (fun b ->
                if b.bwritten then
                  iter_lines r b (fun line events ->
                    let st =
                      match Hashtbl.find_opt tbl line with
                      | Some s -> s
                      | None ->
                          incr lines_seen;
                          let s =
                            { writers = 0; last = Array.make threads (-1) }
                          in
                          Hashtbl.add tbl line s;
                          s
                    in
                    let nev = Array.length events in
                    let i = ref 0 in
                    while !i < nev do
                      let kpar, _, _ = events.(!i) in
                      let j = ref !i in
                      while
                        !j < nev
                        && (let k, _, _ = events.(!j) in
                            k = kpar)
                      do
                        incr j
                      done;
                      let step_end =
                        !base_step + (kpar * r.rip) + r.rip - 1
                      in
                      let gmask = ref 0 in
                      for e = !i to !j - 1 do
                        let _, t, _ = events.(e) in
                        gmask := !gmask lor (1 lsl t)
                      done;
                      tick (!j - !i);
                      let s0 = ref 0 in
                      for e = !i to !j - 1 do
                        let _, t, w = events.(e) in
                        let bit = 1 lsl t in
                        (* every thread whose sticky written bit we rely
                           on — holders counted now, and the toucher's own
                           chain — must certainly still be resident *)
                        let check h =
                          if !gmask land (1 lsl h) <> 0 then
                            (* touched at every step of this group *)
                            certify (step_end - 1) step_end
                          else begin
                            let lt = st.last.(h) in
                            if lt < 0 then
                              bail "internal: holder without a prior touch";
                            certify lt step_end
                          end
                        in
                        if st.writers land bit <> 0 then check t;
                        let others = st.writers land lnot bit in
                        if others <> 0 then begin
                          for h = 0 to threads - 1 do
                            if others land (1 lsl h) <> 0 then check h
                          done;
                          s0 := !s0 + popcount others
                        end;
                        if w then st.writers <- st.writers lor bit
                      done;
                      (* inner steps 2..ip repeat the group against the
                         settled mask *)
                      if r.rip > 1 then begin
                        let s1 = ref 0 in
                        for e = !i to !j - 1 do
                          let _, t, _ = events.(e) in
                          s1 := !s1 + popcount (st.writers land lnot (1 lsl t))
                        done;
                        fs := !fs + !s0 + ((r.rip - 1) * !s1)
                      end
                      else fs := !fs + !s0;
                      for e = !i to !j - 1 do
                        let _, t, _ = events.(e) in
                        st.last.(t) <- step_end
                      done;
                      i := !j
                    done))
              r.rbases;
            base_step := !base_step + r.rsteps)
          sel;
        !fs
      in
      (* ---- hold regime: nothing is ever evicted ---- *)
      let hold_fs (r : region) rc =
        let fs = ref 0 in
        List.iter
          (fun b ->
            if b.bwritten then
              iter_lines r b (fun _line events ->
                incr lines_seen;
                let writers = ref 0 in
                let first = ref 0 in
                let nev = Array.length events in
                let i = ref 0 in
                while !i < nev do
                  let kpar, _, _ = events.(!i) in
                  let j = ref !i in
                  while
                    !j < nev
                    && (let k, _, _ = events.(!j) in
                        k = kpar)
                  do
                    incr j
                  done;
                  let s0 = ref 0 in
                  for e = !i to !j - 1 do
                    let _, t, w = events.(e) in
                    s0 := !s0 + popcount (!writers land lnot (1 lsl t));
                    if w then writers := !writers lor (1 lsl t)
                  done;
                  if r.rip > 1 then begin
                    let s1 = ref 0 in
                    for e = !i to !j - 1 do
                      let _, t, _ = events.(e) in
                      s1 := !s1 + popcount (!writers land lnot (1 lsl t))
                    done;
                    first := !first + !s0 + ((r.rip - 1) * !s1)
                  end
                  else first := !first + !s0;
                  i := !j
                done;
                (* steady-state regions: the writer set is complete from
                   region one and never decays *)
                let steady = ref 0 in
                Array.iter
                  (fun (_, t, _) ->
                    steady := !steady + popcount (!writers land lnot (1 lsl t)))
                  events;
                fs := !fs + !first + ((rc - 1) * r.rip * !steady)))
          r.rbases;
        !fs
      in
      (* ---- per-thread distinct-line footprint of one region ---- *)
      let footprint (r : region) =
        let dj = Array.make threads 0 in
        List.iter
          (fun b ->
            if b.countable then
              iter_lines r b (fun _line events ->
                let m = ref 0 in
                Array.iter (fun (_, t, _) -> m := !m lor (1 lsl t)) events;
                for t = 0 to threads - 1 do
                  if !m land (1 lsl t) <> 0 then dj.(t) <- dj.(t) + 1
                done))
          r.rbases;
        dj
      in
      let identical =
        r_count > 1 && Array.for_all (fun r -> r = rs.(0)) rs
      in
      let fs_total, regime =
        if identical then begin
          let r0 = rs.(0) in
          let dj = footprint r0 in
          let sched =
            Ompsched.Schedule.make ~threads ~chunk:r0.rchunk ~total:r0.rn
          in
          let reset_ok = ref true and hold_ok = ref r0.rall_countable in
          for t = 0 to threads - 1 do
            if Ompsched.Schedule.count_of_thread sched ~tid:t > 0
               && dj.(t) - 1 < capacity
            then reset_ok := false;
            if dj.(t) > capacity then hold_ok := false
          done;
          if !reset_ok then
            (* every thread floods its stack with at least capacity+1
               distinct lines per region, so every line is certainly
               evicted between two regions: regions count independently *)
            (r_count * global_fs [| r0 |], "reset")
          else if !hold_ok then
            (* no thread ever exceeds the stack: nothing is evicted *)
            (hold_fs r0 r_count, "hold")
          else
            bail
              "cross-region cache residency is uncertain (per-thread \
               footprint straddles the stack capacity)"
        end
        else (global_fs rs, if r_count = 1 then "single" else "multi")
      in
      Exact
        {
          fs_cases = fs_total;
          lines_analyzed = !lines_seen;
          regions = r_count;
          regime;
        }
    end
  with Fallback m -> Inapplicable m

(* ---------------------------------------------------------------- *)
(* Parametric certificates                                           *)
(* ---------------------------------------------------------------- *)

(* With every parameter but one fixed, the exact count is a
   quasi-polynomial in the free parameter [p]: for p = base + r + M*q
   (0 <= r < M), a polynomial in q whose degree is the number of loops
   whose bounds mention [p].  [M] is the least period of the schedule
   round-robin pattern (chunk * threads) and of every countable stride's
   cache-line phase (line_bytes / gcd(line_bytes, stride)), so shifting
   [p] by [M] adds a fixed pattern of whole lines.  The certificate
   stores the per-residue Newton forward differences; each was fitted on
   degree+1 oracle samples and cross-checked against the oracle at up to
   four further points including the domain's far end. *)
type sym_cert = {
  sc_param : string;
  sc_base : int;  (* domain lower bound *)
  sc_hi : int;  (* domain upper bound, inclusive *)
  sc_modulus : int;
  sc_coeffs : int array array;
      (* [sc_coeffs.(r).(j)] = j-th forward difference for residue r *)
  sc_tail : (int * int) list;
      (* boundary corrections: points near [sc_hi] where the count
         deviates from the quasi-polynomial (e.g. the written segments of
         adjacent outer iterations close to within a line of each other),
         tabulated exactly *)
  sc_regime : string;
}

type sym_result = Sym of sym_cert | Sym_inapplicable of string

(* binomial(q, j) for small j; exact in 63-bit for every q in a domain *)
let binom q j =
  let n = ref 1 and d = ref 1 in
  for i = 0 to j - 1 do
    n := !n * (q - i);
    d := !d * (i + 1)
  done;
  !n / !d

let newton_eval coeffs q =
  let acc = ref 0 in
  Array.iteri (fun j c -> acc := !acc + (c * binom q j)) coeffs;
  !acc

let sym_eval cert p =
  if p < cert.sc_base || p > cert.sc_hi then
    invalid_arg
      (Printf.sprintf "Closed_form.sym_eval: %s = %d outside validated domain \
                       [%d, %d]"
         cert.sc_param p cert.sc_base cert.sc_hi);
  match List.assoc_opt p cert.sc_tail with
  | Some v -> v
  | None ->
      let x = p - cert.sc_base in
      newton_eval cert.sc_coeffs.(x mod cert.sc_modulus) (x / cert.sc_modulus)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

(* trim trailing zero differences so degrees compare meaningfully *)
let trim c =
  let n = ref (Array.length c) in
  while !n > 0 && c.(!n - 1) = 0 do
    decr n
  done;
  Array.sub c 0 !n

let estimate_sym (cfg : Fsmodel.Model.config) ~(nest : Loop_nest.t) ~checked
    ~param ?(hi = 32768) () =
  let mentions e =
    let rec go (e : Minic.Ast.expr) =
      match e with
      | Minic.Ast.Ident v -> v = param
      | Minic.Ast.Unop (_, a) -> go a
      | Minic.Ast.Binop (_, a, b) -> go a || go b
      | _ -> false
    in
    go e
  in
  let threads = cfg.Fsmodel.Model.threads in
  let chunk =
    match cfg.Fsmodel.Model.chunk with
    | Some c -> Some c
    | None -> Loop_nest.chunk_spec nest
  in
  match chunk with
  | None ->
      Sym_inapplicable
        "schedule(static) without a chunk distributes parameter-dependent \
         blocks"
  | Some chunk -> (
      (* modulus: schedule round-robin period, lcm'd with each countable
         stride's line period *)
      let lb = Archspec.Arch.line_bytes cfg.Fsmodel.Model.arch in
      let pvar = (Loop_nest.parallel_loop nest).Loop_nest.var in
      let pstep = (Loop_nest.parallel_loop nest).Loop_nest.step in
      let modulus =
        List.fold_left
          (fun m (r : Array_ref.t) ->
            let k =
              Affine.coeff
                (Affine.subst
                   (fun v ->
                     match List.assoc_opt v cfg.Fsmodel.Model.params with
                     | Some c -> Some (Affine.const c)
                     | None -> None)
                   r.Array_ref.offset)
                pvar
            in
            let stride = k * pstep in
            if stride = 0 then m else lcm m (lb / gcd lb stride))
          (chunk * threads) nest.Loop_nest.refs
      in
      if modulus <= 0 || modulus > 512 then
        Sym_inapplicable
          (Printf.sprintf "round-robin period %d is degenerate or too large"
             modulus)
      else
        let degree =
          let d =
            List.fold_left
              (fun d (l : Loop_nest.loop) ->
                if mentions l.Loop_nest.lower || mentions l.Loop_nest.upper_excl
                then d + 1
                else d)
              0 nest.Loop_nest.loops
          in
          min 3 (max 0 d)
        in
        let fail = ref "" in
        (* oracle: the certifying analytic count where it applies, the
           simulation engine otherwise (its count is the ground truth the
           certificate promises to match, so fitting on it is sound —
           just slower, hence only on analytic inapplicability) *)
        let count_at p =
          let cfg' =
            {
              cfg with
              Fsmodel.Model.params = (param, p) :: cfg.Fsmodel.Model.params;
            }
          in
          match estimate cfg' ~nest ~checked with
          | Exact i -> Some (i.fs_cases, i.regime)
          | Inapplicable m -> (
              match
                try
                  Some
                    (Fsmodel.Model.run cfg' ~nest ~checked)
                      .Fsmodel.Model.fs_cases
                with _ -> None
              with
              | Some c -> Some (c, "engine")
              | None ->
                  fail := Printf.sprintf "at %s = %d: %s" param p m;
                  None)
        in
        let sample p regime_ref =
          match count_at p with
          | None -> None
          | Some (c, regime) -> (
              match !regime_ref with
              | None ->
                  regime_ref := Some regime;
                  Some c
              | Some rg when rg = regime -> Some c
              | Some rg ->
                  fail :=
                    Printf.sprintf "regime changes from %s to %s at %s = %d"
                      rg regime param p;
                  None)
        in
        (* fit starting at [base]; the certificate then covers
           [base, hi], so try small bases first and climb past regime
           transitions *)
        let attempt base =
          let qmax = (hi - base - (modulus - 1)) / modulus in
          if qmax < degree + 2 then None
          else begin
            let regime_ref = ref None in
            let exception Stop in
            try
              let coeffs =
                Array.init modulus (fun r ->
                    let f =
                      Array.init (degree + 1) (fun q ->
                          match
                            sample (base + r + (modulus * q)) regime_ref
                          with
                          | Some v -> v
                          | None -> raise Stop)
                    in
                    (* forward differences in place *)
                    let c = Array.copy f in
                    for j = 1 to degree do
                      for i = degree downto j do
                        c.(i) <- c.(i) - c.(i - 1)
                      done
                    done;
                    (* interior checks; the far end is covered by the
                       boundary scan below *)
                    let checks =
                      List.sort_uniq compare
                        [ degree + 1; degree + 2; qmax / 2; 3 * qmax / 4 ]
                      |> List.filter (fun q -> q > degree && q <= qmax)
                    in
                    List.iter
                      (fun q ->
                        match sample (base + r + (modulus * q)) regime_ref with
                        | None -> raise Stop
                        | Some v ->
                            if v <> newton_eval c q then begin
                              fail :=
                                Printf.sprintf
                                  "fit check failed at %s = %d (residue %d)"
                                  param
                                  (base + r + (modulus * q))
                                  r;
                              raise Stop
                            end)
                      checks;
                    c)
              in
              (* Boundary scan: near [hi] the fit can break even though
                 the bulk is exactly quasi-polynomial — e.g. once the
                 written segments of adjacent outer iterations come
                 within a cache line of each other, lines are shared
                 across rows and the count jumps.  Walk down from [hi]
                 comparing the oracle against the polynomial; tabulate
                 mismatches, and accept once a full period agrees in a
                 row (the same window a +M shift reproduces).  More than
                 two periods of corrections means the fit itself is
                 wrong, not the boundary. *)
              let predict p =
                let x = p - base in
                newton_eval coeffs.(x mod modulus) (x / modulus)
              in
              let tail = ref [] in
              let consec = ref 0 in
              let p = ref hi in
              let floor_p = base + (modulus * (degree + 1)) in
              while !consec < modulus && !p >= floor_p do
                (match count_at !p with
                | None -> raise Stop
                | Some (c, _) ->
                    if c = predict !p then incr consec
                    else begin
                      consec := 0;
                      tail := (!p, c) :: !tail;
                      if List.length !tail > 2 * modulus then begin
                        fail :=
                          Printf.sprintf
                            "fit check failed at %s = %d and %d more points"
                            param !p
                            (List.length !tail - 1);
                        raise Stop
                      end
                    end);
                decr p
              done;
              if !consec < modulus then begin
                fail :=
                  Printf.sprintf
                    "fit never stabilizes below %s = %d" param hi;
                raise Stop
              end;
              Some
                (Sym
                   {
                     sc_param = param;
                     sc_base = base;
                     sc_hi = hi;
                     sc_modulus = modulus;
                     sc_coeffs = coeffs;
                     sc_tail = !tail;
                     sc_regime =
                       (match !regime_ref with Some r -> r | None -> "empty");
                   })
            with Stop -> None
          end
        in
        let ladder =
          List.filter
            (fun b -> b < hi)
            [ 64; 256; 1024; 4096; 8192; 12288; 16384; 20480; 24576; 28672 ]
        in
        let rec try_bases = function
          | [] ->
              Sym_inapplicable
                (if !fail = "" then
                   Printf.sprintf "domain [.., %d] too small to fit and check"
                     hi
                 else !fail)
          | b :: rest -> (
              match attempt b with Some s -> s | None -> try_bases rest)
        in
        try_bases ladder)

let sym_to_string cert =
  let m = cert.sc_modulus in
  let coeffs = Array.map trim cert.sc_coeffs in
  let q_def =
    Printf.sprintf "q = (%s - %d) / %d" cert.sc_param cert.sc_base m
  in
  let r_def =
    Printf.sprintf "r = (%s - %d) mod %d" cert.sc_param cert.sc_base m
  in
  let domain =
    let base =
      Printf.sprintf "for %d <= %s <= %d" cert.sc_base cert.sc_param
        cert.sc_hi
    in
    match cert.sc_tail with
    | [] -> base
    | tail ->
        let ps = List.map fst tail in
        Printf.sprintf
          "%s (exact values tabulated at %d boundary point(s) in [%d, %d])"
          base (List.length tail)
          (List.fold_left min max_int ps)
          (List.fold_left max min_int ps)
  in
  let poly c =
    let terms =
      List.filter
        (fun v -> v <> "")
        (Array.to_list
           (Array.mapi
              (fun j v ->
                if v = 0 then ""
                else if j = 0 then string_of_int v
                else if j = 1 then Printf.sprintf "%d*q" v
                else Printf.sprintf "%d*C(q,%d)" v j)
              c))
    in
    match terms with [] -> "0" | _ -> String.concat " + " terms
  in
  let all_same =
    Array.for_all (fun c -> c = coeffs.(0)) coeffs
  in
  if m = 1 || all_same then
    Printf.sprintf "%s  where %s, %s" (poly coeffs.(0)) q_def domain
  else
    (* common higher-order part, varying intercepts *)
    let tails_same =
      Array.for_all
        (fun c ->
          let t a = if Array.length a <= 1 then [||] else Array.sub a 1 (Array.length a - 1) in
          t c = t coeffs.(0))
        coeffs
    in
    if tails_same then
      let tail =
        let c0 = Array.copy coeffs.(0) in
        if Array.length c0 > 0 then c0.(0) <- 0;
        poly (trim c0)
      in
      let intercepts =
        String.concat ", "
          (Array.to_list
             (Array.map (fun c -> string_of_int (if Array.length c > 0 then c.(0) else 0)) coeffs))
      in
      Printf.sprintf "%s + [%s][r]  where %s, %s, %s" tail intercepts q_def
        r_def domain
    else
      let shown = min m 8 in
      let rows =
        String.concat "; "
          (List.init shown (fun r -> Printf.sprintf "r=%d: %s" r (poly coeffs.(r))))
      in
      Printf.sprintf "piecewise (period %d): %s%s  where %s, %s, %s" m rows
        (if shown < m then "; ..." else "")
        q_def r_def domain

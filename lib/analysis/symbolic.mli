(** Symbolic reasoning over free analysis parameters.

    The parametric analyses ({!Depend.pairs_sym}, {!Closed_form.estimate_sym})
    work with {!Loopir.Affine} linear polynomials whose variables are {e free
    parameters} — identifiers such as a trip count [n] that appear in loop
    bounds but are bound neither by [-p] nor by a [#define].  This module
    supplies the three pieces they need:

    - a {e constraint context} recording what is known about each parameter
      (an inclusive interval, e.g. [n >= 0] by default, tightened to
      [2 <= n <= 480] by path conditions and in-bounds assumptions);
    - {e interval/sign reasoning}: the range of an affine form over a
      context, and a three-valued decision procedure for atoms [a >= 0];
    - {e case-split trees}: verdicts and counts that differ across parameter
      regions are represented as binary decision trees over affine atoms,
      with context-aware pruning, path enumeration and concrete evaluation.

    Soundness: [decide] answers [`True]/[`False] only when the inequality
    holds/fails for {e every} valuation admitted by the context, and
    [assume] only ever tightens single-parameter atoms (anything else
    leaves the context unchanged, which under-approximates the knowledge
    and can only make [decide] answer [`Unknown] more often). *)

type ctx
(** Per-parameter inclusive bounds; missing parameters are unconstrained. *)

val empty : ctx
(** No parameters declared: every valuation is admitted. *)

val declare : ctx -> string -> lo:int option -> hi:int option -> ctx
(** Set (replace) a parameter's bounds; [None] means unbounded. *)

val bounds_of : ctx -> string -> (int option * int option) option
(** The declared [(lo, hi)] of a parameter; [None] if never declared. *)

val params : ctx -> string list
(** Declared parameter names, in declaration order. *)

val range : ctx -> Loopir.Affine.t -> int option * int option
(** Interval of an affine form over all valuations admitted by the
    context ([None] = unbounded on that side). *)

val decide : ctx -> Loopir.Affine.t -> [ `True | `False | `Unknown ]
(** Three-valued truth of [a >= 0] over the whole context. *)

type cond = Loopir.Affine.t
(** An atom, meaning [cond >= 0]. *)

val cond_not : cond -> cond
(** Integer negation: [not (a >= 0)] is [-a - 1 >= 0]. *)

val assume : ctx -> cond -> ctx
(** Refine the context under an atom.  Only single-parameter atoms
    tighten a bound; others are ignored (sound under-approximation). *)

val satisfiable : ctx -> bool
(** [false] iff some parameter's bounds have crossed ([lo > hi]). *)

val eval_cond : (string -> int) -> cond -> bool
(** Truth of the atom at one concrete valuation. *)

val cond_to_string : cond -> string
(** Human form: single-parameter atoms render as ["n >= 5"] / ["n <= 7"],
    anything else as ["<affine> >= 0"]. *)

type 'a cases = Leaf of 'a | If of cond * 'a cases * 'a cases
(** A value that may differ across parameter regions: [If (c, y, n)] is
    [y] where [c >= 0] holds and [n] elsewhere. *)

val leaf : 'a -> 'a cases
(** A region-independent value. *)

val bind : 'a cases -> ('a -> 'b cases) -> 'b cases
(** Graft a dependent case split under every leaf. *)

val map : 'a cases -> ('a -> 'b) -> 'b cases
(** Transform every leaf, keeping the split structure. *)

val cor : bool cases -> bool cases -> bool cases
(** Short-circuit disjunction: [false] leaves are replaced by the
    second tree. *)

val cand : bool cases -> bool cases -> bool cases
(** Short-circuit conjunction: [true] leaves are replaced by the second
    tree. *)

val conj : cond list -> bool cases
(** The conjunction of atoms as a [bool cases] tree. *)

val simplify : ?equal:('a -> 'a -> bool) -> ctx -> 'a cases -> 'a cases
(** Prune: conditions decided by the (path-refined) context disappear,
    unsatisfiable branches are dropped, equal branches merge. *)

val paths : ctx -> 'a cases -> (cond list * 'a) list
(** All context-satisfiable root-to-leaf paths, each as the atoms that
    hold along it (outermost first) with the leaf value. *)

val collapse : ?equal:('a -> 'a -> bool) -> ctx -> 'a cases -> 'a option
(** [Some v] when every satisfiable path yields (an [equal]) [v] — the
    verdict holds for the whole parameter region. *)

val eval : (string -> int) -> 'a cases -> 'a
(** Evaluate the tree at one concrete parameter valuation. *)

open Loopir

type sys = { eqs : Affine.t list; geqs : Affine.t list }

type budget = { mutable left : int; limit : int; mutable fresh : int }

exception Out_of_budget

let budget n = { left = n; limit = n; fresh = 0 }
let spent b = b.limit - b.left

let spend b n =
  b.left <- b.left - n;
  if b.left < 0 then raise Out_of_budget

(* Coefficients past this magnitude signal a blowup that would overflow
   long before it decided anything; treat it as budget exhaustion. *)
let coeff_cap = 1 lsl 44

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)

module SM = Map.Make (String)

type model = int SM.t

let value (m : model) v = match SM.find_opt v m with Some x -> x | None -> 0
let meval m a = Affine.eval (value m) a

(* Rebuild [a] with every coefficient and the constant mapped. *)
let map_coeffs fc fk a =
  Affine.fold_terms
    (fun v k acc -> Affine.add acc (Affine.scale (fk k) (Affine.var v)))
    a
    (Affine.const (fc (Affine.const_part a)))

let var_gcd a = Affine.fold_terms (fun _ k g -> gcd g k) a 0

let check_cap a =
  Affine.fold_terms
    (fun _ k () -> if abs k > coeff_cap then raise Out_of_budget)
    a ();
  if abs (Affine.const_part a) > coeff_cap then raise Out_of_budget

exception Unsat

(* Normalize an inequality [g >= 0]: divide by the coefficient GCD,
   floor-dividing the constant (integer tightening).  [None] for a
   trivially true ground row; raises [Unsat] for a false one. *)
let norm_geq a =
  check_cap a;
  let g = var_gcd a in
  if g = 0 then begin
    if Affine.const_part a >= 0 then None else raise Unsat
  end
  else if g = 1 then Some a
  else Some (map_coeffs (fun c -> fdiv c g) (fun k -> k / g) a)

(* Normalize an equality [e = 0].  [None] for the trivial [0 = 0];
   raises [Unsat] when the constant is not divisible by the GCD. *)
let norm_eq a =
  check_cap a;
  let g = var_gcd a in
  if g = 0 then begin
    if Affine.const_part a = 0 then None else raise Unsat
  end
  else if Affine.const_part a mod g <> 0 then raise Unsat
  else if g = 1 then Some a
  else Some (map_coeffs (fun c -> c / g) (fun k -> k / g) a)

(* Drop duplicate / dominated rows: among rows with the same variable
   part, only the smallest constant constrains. *)
let dedup_geqs rows =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let c = Affine.const_part r in
      let key = Affine.to_string (Affine.sub r (Affine.const c)) in
      match Hashtbl.find_opt tbl key with
      | Some (_, c0) -> if c < c0 then Hashtbl.replace tbl key (r, c)
      | None ->
          order := key :: !order;
          Hashtbl.add tbl key (r, c))
    rows;
  List.rev_map (fun key -> fst (Hashtbl.find tbl key)) !order

(* modhat a m: the representative of [a mod m] in (-m/2, m/2]. *)
let modhat a m = a - (m * fdiv ((2 * a) + m) (2 * m))

(* Eliminate all equalities by substitution, returning the residual
   inequalities and the back-substitution stack (most recent first;
   each entry's expression mentions only variables still alive at its
   elimination time). *)
let rec elim_eqs b eqs geqs back =
  match eqs with
  | [] -> Some (geqs, back)
  | e :: rest -> (
      spend b 1;
      match norm_eq e with
      | None -> elim_eqs b rest geqs back
      | Some e ->
          (* variable with the smallest |coefficient| *)
          let k, ak =
            Affine.fold_terms
              (fun v kv (bv, bk) ->
                if bk = 0 || abs kv < abs bk then (v, kv) else (bv, bk))
              e ("", 0)
          in
          if abs ak = 1 then begin
            (* ak*x + r = 0  =>  x = -ak*r  (|ak| = 1) *)
            let r = Affine.sub e (Affine.scale ak (Affine.var k)) in
            let repl = Affine.scale (-ak) r in
            let sub v = if v = k then Some repl else None in
            elim_eqs b
              (List.map (Affine.subst sub) rest)
              (List.map (Affine.subst sub) geqs)
              ((k, repl) :: back)
          end
          else begin
            (* mod-hat reduction: with m = |ak| + 1, the fresh sigma
               satisfies  sum modhat(ai,m) xi + modhat(c,m) - m*sigma = 0
               for any integer solution, and x_k's coefficient in that
               equation is -sign(ak) = +-1, so x_k can be substituted
               out; the original equality survives with a smaller
               coefficient on the fresh variable. *)
            let m = abs ak + 1 in
            let sigma =
              b.fresh <- b.fresh + 1;
              Printf.sprintf "+sig%d" b.fresh
            in
            let ehat =
              Affine.add
                (map_coeffs (fun c -> modhat c m) (fun c -> modhat c m) e)
                (Affine.scale (-m) (Affine.var sigma))
            in
            let akh = Affine.coeff ehat k in
            let r = Affine.sub ehat (Affine.scale akh (Affine.var k)) in
            let repl = Affine.scale (-akh) r in
            let sub v = if v = k then Some repl else None in
            elim_eqs b
              (List.map (Affine.subst sub) (e :: rest))
              (List.map (Affine.subst sub) geqs)
              ((k, repl) :: back)
          end)

let var_union rows =
  List.sort_uniq compare (List.concat_map Affine.vars rows)

(* max over lower bounds [a x + L >= 0] of ceil(-L/a) at model [m] — the
   smallest admissible x; 0 when there is no lower bound. *)
let lowest_at m lowers =
  List.fold_left
    (fun acc (a, row) ->
      let l = meval m row in
      (* row evaluates L only: x is absent from the model (defaults 0) *)
      max acc (cdiv (-l) a))
    min_int lowers
  |> fun x -> if x = min_int then 0 else x

let highest_at m uppers =
  List.fold_left
    (fun acc (bq, row) ->
      let u = meval m row in
      min acc (fdiv u bq))
    max_int uppers
  |> fun x -> if x = max_int then 0 else x

let rec solve_sys (b : budget) (s : sys) : model option =
  spend b 1;
  match
    let eqs = List.filter_map norm_eq s.eqs in
    let geqs = List.filter_map norm_geq s.geqs in
    elim_eqs b eqs geqs []
  with
  | exception Unsat -> None
  | None -> None
  | Some (geqs, back) -> (
      match solve_geqs b geqs with
      | None -> None
      | Some m ->
          (* rebuild eliminated variables, most recently eliminated
             first: each expression mentions only later-assigned vars *)
          Some
            (List.fold_left
               (fun m (v, e) -> SM.add v (meval m e) m)
               m back))

and solve_geqs b geqs : model option =
  spend b 1;
  match List.filter_map norm_geq geqs with
  | exception Unsat -> None
  | rows -> (
      let rows = dedup_geqs rows in
      match var_union rows with
      | [] -> Some SM.empty
      | vars ->
          (* pick the variable to eliminate: one-sided variables are
             free to project away; otherwise prefer an exact shadow and
             the fewest combinations *)
          let classified =
            List.map
              (fun x ->
                let lowers = ref [] and uppers = ref [] and rest = ref [] in
                List.iter
                  (fun r ->
                    let k = Affine.coeff r x in
                    if k > 0 then lowers := (k, r) :: !lowers
                    else if k < 0 then uppers := (-k, r) :: !uppers
                    else rest := r :: !rest)
                  rows;
                (x, List.rev !lowers, List.rev !uppers, List.rev !rest))
              vars
          in
          let one_sided =
            List.find_opt
              (fun (_, lo, up, _) -> lo = [] || up = [])
              classified
          in
          let x, lowers, uppers, rest =
            match one_sided with
            | Some c -> c
            | None ->
                let cost (_, lo, up, _) =
                  let nl = List.length lo and nu = List.length up in
                  (nl * nu) - nl - nu
                in
                let exact (_, lo, up, _) =
                  List.for_all (fun (a, _) -> a = 1) lo
                  || List.for_all (fun (bq, _) -> bq = 1) up
                in
                List.fold_left
                  (fun best c ->
                    match (exact best, exact c) with
                    | true, false -> best
                    | false, true -> c
                    | _ -> if cost c < cost best then c else best)
                  (List.hd classified) (List.tl classified)
          in
          if lowers = [] || uppers = [] then begin
            (* unbounded on one side: the projection drops every row
               mentioning x, and x is set to its tightest finite bound *)
            match solve_geqs b rest with
            | None -> None
            | Some m ->
                let xv =
                  if uppers = [] then lowest_at m lowers
                  else highest_at m uppers
                in
                Some (SM.add x xv m)
          end
          else begin
            let combine extra (a, row_l) (bq, row_u) =
              spend b 1;
              (* a*(upper part) + b*(lower part): x cancels *)
              Affine.add
                (Affine.add (Affine.scale a row_u) (Affine.scale bq row_l))
                (Affine.const extra)
            in
            let pairs_with extra =
              List.concat_map
                (fun l -> List.map (fun u -> combine extra l u) uppers)
                lowers
            in
            let is_exact =
              List.for_all (fun (a, _) -> a = 1) lowers
              || List.for_all (fun (bq, _) -> bq = 1) uppers
            in
            let with_x m = SM.add x (lowest_at m lowers) m in
            if is_exact then
              match solve_geqs b (rest @ pairs_with 0) with
              | None -> None
              | Some m -> Some (with_x m)
            else begin
              (* dark shadow: a U + b L >= (a-1)(b-1) *)
              let darks =
                List.concat_map
                  (fun (a, rl) ->
                    List.map
                      (fun (bq, ru) ->
                        combine (-((a - 1) * (bq - 1))) (a, rl) (bq, ru))
                      uppers)
                  lowers
              in
              match solve_geqs b (rest @ darks) with
              | Some m -> Some (with_x m)
              | None ->
                  if solve_geqs b (rest @ pairs_with 0) = None then None
                  else begin
                    (* real shadow holds but the dark shadow does not:
                       enumerate the splinters a x + L = i *)
                    let bmax =
                      List.fold_left (fun acc (bq, _) -> max acc bq) 1 uppers
                    in
                    let all_rows =
                      List.concat
                        [
                          rest;
                          List.map snd lowers;
                          List.map snd uppers;
                        ]
                    in
                    let rec try_lowers = function
                      | [] -> None
                      | (a, row_l) :: tl ->
                          let hi = fdiv ((a * bmax) - a - bmax) bmax in
                          let rec try_i i =
                            if i > hi then None
                            else begin
                              spend b 1;
                              match
                                solve_sys b
                                  {
                                    eqs =
                                      [ Affine.add row_l (Affine.const (-i)) ];
                                    geqs = all_rows;
                                  }
                              with
                              | Some m -> Some m
                              | None -> try_i (i + 1)
                            end
                          in
                          (match try_i 0 with
                          | Some m -> Some m
                          | None -> try_lowers tl)
                    in
                    try_lowers lowers
                  end
            end
          end)

let solve b s =
  match solve_sys b s with
  | None -> None
  | Some m -> Some (SM.bindings m)

let decide b s = solve_sys b s <> None

(** Diagnostics: severity-ranked findings with source spans, fix-it
    suggestions, and deterministic text / SARIF-shaped JSON renderers. *)

type severity = Error | Warning | Info

type fixit = { title : string; detail : string }
(** A suggested remediation, e.g. a schedule chunk or struct padding. *)

type finding = {
  rule : string;  (** e.g. ["race/loop-carried"], ["fs/line-conflict"] *)
  severity : severity;
  span : Minic.Span.t;
  func : string;  (** enclosing function, [""] if program-level *)
  message : string;
  fixits : fixit list;
  region : string option;
      (** parametric lint: the parameter region the finding holds in,
          e.g. ["n >= 2"]; [None] for concrete findings *)
  symbolic : string option;
      (** parametric lint: the closed-form count over the free
          parameter, when one was certified *)
  attribution : string list;
      (** concrete FS findings: the top reference-pair attribution
          sentences ("X% of FS cases: ..."), heaviest first; empty when
          the nest was not attributed (races, parametric mode) *)
  backend : string option;
      (** dependence backend that decided the finding
          ("exact", "banerjee", "banerjee (fallback: ...)"); rendered
          as a SARIF [dependenceBackend] property, and as a text
          [backend:] line only for fallbacks *)
  witness : string option;
      (** conflicting iteration pair certified by the exact backend,
          e.g. ["i=0, j=477 vs i'=1, j'=0"]; SARIF [witness] property
          and a text [witness:] line *)
  reason : string option;
      (** for [analysis/unknown] findings: the raw reason string,
          surfaced as a SARIF [unknownReason] property *)
  cost : cost option;
      (** analytic cost context attached when the lint ran with
          [--cost-model analytic|both]: rendered as text [cost:]/[miss:]
          lines and SARIF [predictedMissRate]/[costBreakdown] properties *)
  sched : string option;
      (** the replayed schedule kind (e.g. ["dynamic,1"], ["ws,2"]) when
          the lint drove a nondeterministic schedule: a text [schedule:]
          line and the SARIF [scheduleKind] property *)
  dist : Dist.t option;
      (** the FS distribution over the replayed seed set: a text
          [fs-dist:] line and the SARIF [fsDistribution] property *)
  fix_verified : fix_verified option;
      (** evidence from re-analyzing the materialized fix (see
          {!Fixer}), attached when the lint ran with fixits on a
          concrete static schedule: a text [fix-verified:] line and the
          SARIF [fixVerified] property *)
}

and fix_verified = {
  fv_rewrites : string list;
      (** one [Transform.describe] line per planned rewrite *)
  fv_fs_before : int;  (** attributed FS cases before the fix *)
  fv_fs_after : int;  (** after re-analyzing the transformed program *)
  fv_removal : float;  (** percent of attributed FS removed *)
  fv_cost_ratio : float option;
      (** after/before analytic [Total_c]; [None] without certificates *)
  fv_ok : bool;  (** the full {!Fixer} verification verdict *)
}

and cost = {
  cost_model : string;  (** ["analytic"] (or ["sim"] for engine-backed) *)
  eq1 : Costmodel.Total_cost.eq1;  (** the four reported Eq. 1 terms *)
  fs_percent : float;  (** FS share of the predicted total, in percent *)
  miss_rate : float;  (** predicted beyond-L1 miss share, in [0,1] *)
  mem_fetches : float;  (** predicted DRAM line fetches, machine-wide *)
}

type report = { uri : string; findings : finding list }

val severity_name : severity -> string
(** ["error"], ["warning"], ["note"] — SARIF level names. *)

val sort : finding list -> finding list
(** Stable order: severity (errors first), then span, then rule. *)

val error_count : report -> int
(** Findings at [Error] severity (the [--fail-on] gate counts these). *)

val to_text : report -> string
(** One ["uri:line:col: severity[rule]: message"] line per finding,
    fix-its indented beneath, and a trailing summary line. *)

val to_json : report -> Json.t
(** SARIF 2.1.0-shaped document: one run, one result per finding. *)

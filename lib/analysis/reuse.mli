(** Static reuse-distance profiles and the fully analytic cache cost model.

    Instead of replaying the access stream through {!Cachesim.Lru_stack},
    this module derives a symbolic stack-distance histogram per reference
    group directly from the affine footprints of the loop nest (the
    PPT-Multicore construction): accesses fall into a {e near} bin (spatial
    reuse inside the current line, distance = other groups touched in
    between), a {e far} bin (temporal reuse carried by an enclosing loop,
    distance = the footprint swept between reuses), and a {e cold} bin
    (first touches, infinite distance).  An LRU cache of [W] lines hits
    exactly the accesses with distance [< W], so the histogram folds
    through {!Archspec.Arch} capacities into hit counts per level with no
    simulation.

    Multi-threaded interleaving enters twice, following the
    [schedule(static, chunk)] decomposition of {!Ompsched.Schedule}:
    the per-thread footprint of the parallel loop shrinks to the dealt-out
    share (with [sigma] threads co-resident on each boundary line), and the
    shared L3 sees the socket's interleaved streams, stretching private
    distances by {!Archspec.Arch.l3_sharers}. *)

type level = L1 | L2 | L3 | Mem

val level_name : level -> string

type bin = {
  label : string;  (** ["near"], ["far"] or ["cold"] *)
  distance : int option;  (** LRU stack distance in lines; [None] = cold *)
  count : float;  (** accesses in this bin, per (busiest) thread *)
  level : level;  (** cache level serving the bin under LRU *)
}

type co_service = Co_l3 | Co_c2c | Co_mem
(** How the [sigma - 1] co-touches of a thread-shared line are served:
    from the shared L3 (read-only lines), from the writer's still-resident
    dirty copy (c2c), or from DRAM again (the interleaving evicted the
    copy before the co-touch, forcing writeback + refetch). *)

type group_profile = {
  leader_repr : string;  (** source form of the group leader *)
  members : int;  (** references folded into the group *)
  has_write : bool;
  sigma : int;  (** threads whose shares touch each of its lines *)
  co : co_service;
  bins : bin list;
}

type prediction = {
  threads : int;
  accesses : float;  (** machine-wide reference events *)
  l1_hits : float;
  l2_hits : float;
  l3_hits : float;
  c2c_transfers : float;  (** lines sourced from a remote dirty copy *)
  mem_fetches : float;  (** DRAM line fetches, machine-wide *)
  miss_rate : float;  (** beyond-L1 share of [accesses], in [0,1] *)
  cache_cycles : float;
      (** stall cycles beyond L1 on the busiest thread — the value to feed
          {!Costmodel.Total_cost.compute}'s [cache_cycles] hook *)
  groups : group_profile list;
}
(** [l1_hits + l2_hits + l3_hits + c2c_transfers + mem_fetches = accesses]
    by construction (conservation; the fuzz oracle checks it). *)

val predict :
  ?arch:Archspec.Arch.t ->
  ?chunk:int ->
  ?interleave_window:int ->
  threads:int ->
  env:(string -> int option) ->
  Loopir.Loop_nest.t ->
  prediction
(** Pure histogram extraction — no simulator, no engine.  [chunk]
    overrides the pragma's chunk size; [env] must bind every parameter in
    the bounds; [interleave_window] (default 4, {!Execsim.Interp}'s) sets
    the co-touch residency horizon. *)

type analytic = {
  prediction : prediction;
  breakdown : Costmodel.Total_cost.breakdown;
      (** Eq. 1 with [cache_cycles] taken from [prediction] *)
  eq1 : Costmodel.Total_cost.eq1;
  fs_cases : int option;
      (** the certified {!Closed_form} count; [None] when no certificate
          applies — the analytic path never falls back to the engine *)
  fs_note : string;  (** certificate regime, or why none applied *)
}

val analyze :
  ?arch:Archspec.Arch.t ->
  ?fs_cost_factor:float ->
  ?contention:bool ->
  ?chunk:int ->
  threads:int ->
  params:(string * int) list ->
  checked:Minic.Typecheck.checked ->
  Loopir.Loop_nest.t ->
  analytic
(** The full analytic [Total_c]: reuse-distance cache term, closed-form FS
    term, {!Costmodel} machine/TLB/overhead terms.  Calls neither
    {!Fsmodel.Model.run} nor any simulator ({!Fsmodel.Model.run_count} is
    unchanged across it — tests enforce this). *)

type overhead = {
  threads : int;
  fs_chunk : int;
  nfs_chunk : int;
  n_fs : int;  (** closed-form FS cases at [fs_chunk] *)
  n_nfs : int;  (** closed-form FS cases at [nfs_chunk] *)
  percent : float;  (** excess FS cycles as a share of analytic [Total_c] *)
  analytic : analytic;  (** the [fs_chunk] execution's breakdown *)
}

val overhead :
  ?arch:Archspec.Arch.t ->
  ?fs_cost_factor:float ->
  ?contention:bool ->
  threads:int ->
  fs_chunk:int ->
  nfs_chunk:int ->
  func:string ->
  Minic.Typecheck.checked ->
  overhead option
(** Analytic analogue of {!Fsmodel.Overhead_percent.analyze}: [None] when
    {!Closed_form} certifies neither chunking (the engine-backed path is
    then the only option). *)

val pp_bin : Format.formatter -> bin -> unit
val pp_prediction : Format.formatter -> prediction -> unit
val pp_analytic : Format.formatter -> analytic -> unit

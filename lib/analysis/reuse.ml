type level = L1 | L2 | L3 | Mem

let level_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | Mem -> "mem"

type bin = {
  label : string;
  distance : int option;
  count : float;
  level : level;
}

type co_service = Co_l3 | Co_c2c | Co_mem

type group_profile = {
  leader_repr : string;
  members : int;
  has_write : bool;
  sigma : int;
  co : co_service;
  bins : bin list;
}

type prediction = {
  threads : int;
  accesses : float;
  l1_hits : float;
  l2_hits : float;
  l3_hits : float;
  c2c_transfers : float;
  mem_fetches : float;
  miss_rate : float;
  cache_cycles : float;
  groups : group_profile list;
}

let round_up x a = (x + a - 1) / a * a

let predict ?(arch = Archspec.Arch.paper_machine) ?chunk
    ?(interleave_window = 4) ~threads ~env (nest : Loopir.Loop_nest.t) =
  let line = Archspec.Arch.line_bytes arch in
  let trips = Costmodel.Cache_model.trips_of_nest ~env nest in
  let loops = nest.Loopir.Loop_nest.loops in
  let loop_vars =
    List.map (fun (l : Loopir.Loop_nest.loop) -> l.Loopir.Loop_nest.var) loops
  in
  let nvars = List.length loop_vars in
  let d = nest.Loopir.Loop_nest.parallel_depth in
  let trip_at i = snd (List.nth trips i) in
  let step_at i = (List.nth loops i).Loopir.Loop_nest.step in
  let var_at i = List.nth loop_vars i in
  let prod lo hi =
    let rec go i acc = if i > hi then acc else go (i + 1) (acc * trip_at i) in
    go lo 1
  in
  let regions = prod 0 (d - 1) in
  let parallel_trip = trip_at d in
  let inner_per_parallel = prod (d + 1) (nvars - 1) in
  let chunk =
    match chunk with
    | Some c -> c
    | None -> (
        match Loopir.Loop_nest.chunk_spec nest with
        | Some c -> c
        | None -> Ompsched.Schedule.block_chunk ~threads ~total:parallel_trip)
  in
  let sched = Ompsched.Schedule.make ~threads ~chunk ~total:parallel_trip in
  let max_steps = Ompsched.Schedule.max_steps_per_thread sched in
  let cpt = Ompsched.Schedule.chunks_per_thread sched in
  let groups =
    Loopir.Ref_group.form ~line_bytes:line nest.Loopir.Loop_nest.refs
  in
  let ngroups = List.length groups in
  let w_l1 = Archspec.Arch.capacity_lines arch `L1 in
  let w_l2 = Archspec.Arch.capacity_lines arch `L2 in
  let w_l3 = Archspec.Arch.capacity_lines arch `L3 in
  let sharers = Archspec.Arch.l3_sharers arch ~threads in
  let vars_inside idx = List.filteri (fun i _ -> i > idx) loop_vars in
  (* Temporal-reuse volume between consecutive touches of a group's lines:
     the footprint swept under the innermost enclosing loop whose variable
     is absent from the subscript (same rule as {!Costmodel.Cache_model}). *)
  let carried_reuse off =
    let rec find idx best =
      if idx >= nvars then best
      else
        let best =
          if Loopir.Affine.coeff off (var_at idx) = 0 then Some idx else best
        in
        find (idx + 1) best
    in
    match find 0 None with
    | Some idx ->
        Some
          (Costmodel.Cache_model.footprint_bytes ~line_bytes:line ~trips
             ~levels:(vars_inside idx) nest.Loopir.Loop_nest.refs)
    | None -> None
  in
  (* Cross-group reuse: a group lagging a sibling of the same base by k
     strides of an enclosing loop re-touches the sibling's lines k
     iterations of that loop later. *)
  let cross_group_reuse (g : Loopir.Ref_group.t) =
    let leader = g.Loopir.Ref_group.leader in
    List.filter_map
      (fun (other : Loopir.Ref_group.t) ->
        if
          other == g
          || other.Loopir.Ref_group.leader.Loopir.Array_ref.base
             <> leader.Loopir.Array_ref.base
        then None
        else
          match
            Loopir.Affine.is_const
              (Loopir.Affine.sub
                 other.Loopir.Ref_group.leader.Loopir.Array_ref.offset
                 leader.Loopir.Array_ref.offset)
          with
          | Some gap when gap > 0 ->
              let rec find idx =
                if idx >= nvars then None
                else
                  let c =
                    Loopir.Affine.coeff leader.Loopir.Array_ref.offset
                      (var_at idx)
                  in
                  let trip = trip_at idx in
                  if c > 0 && gap mod c = 0 && gap / c >= 1 && gap / c < trip
                  then
                    Some
                      (gap / c
                      * Costmodel.Cache_model.footprint_bytes ~line_bytes:line
                          ~trips ~levels:(vars_inside idx)
                          nest.Loopir.Loop_nest.refs)
                  else find (idx + 1)
              in
              find 0
          | Some _ | None -> None)
      groups
    |> function
    | [] -> None
    | l -> Some (List.fold_left min max_int l)
  in
  (* LRU verdict for one reuse distance (in lines).  The shared L3 sees the
     interleaved streams of every core on the socket, so a thread's own
     distance is stretched by [sharers] — except that lines shared by
     [sigma] threads recur [sigma] times as often, cancelling part of the
     stretch. *)
  let level_of distance ~sigma =
    match distance with
    | None -> Mem
    | Some dist ->
        if dist < w_l1 then L1
        else if dist < w_l2 then L2
        else
          let d_l3 =
            float_of_int dist
            *. Float.max 1. (float_of_int sharers /. float_of_int sigma)
          in
          if d_l3 < float_of_int w_l3 then L3 else Mem
  in
  let pen =
    let lat g = g.Archspec.Cache_geom.hit_latency in
    let l1 = lat arch.Archspec.Arch.l1 in
    function
    | `L2 -> float_of_int (max 0 (lat arch.Archspec.Arch.l2 - l1))
    | `L3 -> float_of_int (max 0 (lat arch.Archspec.Arch.l3 - l1))
    | `C2c -> float_of_int (max 0 (arch.Archspec.Arch.coherence_latency - l1))
    | `Mem -> float_of_int (max 0 (arch.Archspec.Arch.mem_latency - l1))
  in
  (* Per-thread service counts (l1, l2, l3, c2c, mem) of one bin.  A
     memory-level bin on lines shared by [sigma] threads is fetched from
     DRAM once per line team-wide; the remaining [sigma - 1] co-touches
     are served per the group's co-touch class: the shared L3 for
     read-only lines, a remote dirty copy (c2c) for written lines still
     resident in the writer's private cache, DRAM again (after
     writeback) when the interleaving already evicted them. *)
  let serve (b : bin) ~sigma ~co =
    let s = float_of_int sigma in
    match b.level with
    | L1 -> (b.count, 0., 0., 0., 0.)
    | L2 -> (0., b.count, 0., 0., 0.)
    | L3 -> (0., 0., b.count, 0., 0.)
    | Mem when sigma > 1 -> (
        let fetch = b.count /. s in
        let cot = b.count -. fetch in
        match co with
        | Co_l3 -> (0., 0., cot, 0., fetch)
        | Co_c2c -> (0., 0., 0., cot, fetch)
        | Co_mem -> (0., 0., 0., 0., b.count))
    | Mem -> (0., 0., 0., 0., b.count)
  in
  (* Lines a thread pulls through its caches between two co-touches of a
     shared line: the interpreter (and a real runtime) runs
     [interleave_window] parallel iterations of one thread before the
     next thread reaches the line. *)
  let co_dist_lines =
    interleave_window
    * round_up
        (Costmodel.Cache_model.footprint_bytes ~line_bytes:line ~trips
           ~levels:(vars_inside d) nest.Loopir.Loop_nest.refs)
        line
    / line
  in
  let profile_of (g : Loopir.Ref_group.t) =
    let off = g.Loopir.Ref_group.leader.Loopir.Array_ref.offset in
    let members = List.length g.Loopir.Ref_group.members in
    let c_par = abs (Loopir.Affine.coeff off (var_at d)) in
    let sigma =
      if c_par = 0 then threads
      else
        let chunk_bytes = c_par * step_at d * chunk in
        min threads (max 1 (line / max 1 chunk_bytes))
    in
    (* Distinct lines: the group's team-wide footprint per region, shared
       out — each of its lines is resident in [sigma] private stacks. *)
    let s_region_bytes =
      let rec go i acc =
        if i >= nvars then acc
        else
          let c = abs (Loopir.Affine.coeff off (var_at i)) in
          go (i + 1) (acc + (c * step_at i * max 0 (trip_at i - 1)))
      in
      go d g.Loopir.Ref_group.leader.Loopir.Array_ref.size_bytes
    in
    let s_region_lines = round_up s_region_bytes line / line in
    let d_region =
      float_of_int sigma *. float_of_int s_region_lines
      /. float_of_int threads
    in
    (* Line-entry events: each loop level contributes one potential line
       change per advance; the parallel level's cross-chunk advances jump
       by the dealt-out share instead of one step. *)
    let e_region =
      let frac bytes =
        Float.min 1. (float_of_int bytes /. float_of_int line)
      in
      let rec go k n_outer acc =
        if k >= nvars then acc
        else
          let per_thread_trip = if k = d then max_steps else trip_at k in
          let n_k = n_outer * per_thread_trip in
          let c = abs (Loopir.Affine.coeff off (var_at k)) in
          let adv = c * step_at k in
          let crossings =
            if k = d && threads > 1 && c > 0 then
              let jump = c * step_at d * ((chunk * (threads - 1)) + 1) in
              (float_of_int (n_k - cpt) *. frac adv)
              +. (float_of_int cpt *. frac jump)
            else float_of_int n_k *. frac adv
          in
          go (k + 1) n_k (acc +. crossings)
      in
      go d 1 0.
    in
    (* Sequential outer levels whose variable is absent from the subscript
       revisit the same lines every trip; present ones open fresh lines. *)
    let regions_distinct =
      let rec go i acc =
        if i >= d then acc
        else
          let c = abs (Loopir.Affine.coeff off (var_at i)) in
          go (i + 1) (acc * if c = 0 then 1 else trip_at i)
      in
      go 0 1
    in
    let a_total =
      float_of_int members *. float_of_int regions
      *. float_of_int max_steps *. float_of_int inner_per_parallel
    in
    let d_total =
      Float.min a_total (d_region *. float_of_int regions_distinct)
    in
    let e_total =
      Float.max d_total
        (Float.min a_total (e_region *. float_of_int regions))
    in
    let reuse_volume =
      match carried_reuse off with
      | Some v -> Some v
      | None -> cross_group_reuse g
    in
    let far_distance =
      Option.map (fun v -> round_up v line / line) reuse_volume
    in
    let near =
      {
        label = "near";
        distance = Some (ngroups - 1);
        count = a_total -. e_total;
        level = level_of (Some (ngroups - 1)) ~sigma;
      }
    in
    let far =
      {
        label = "far";
        distance = far_distance;
        count = e_total -. d_total;
        level = level_of far_distance ~sigma;
      }
    in
    let cold = { label = "cold"; distance = None; count = d_total; level = Mem } in
    let co =
      if sigma <= 1 then Co_mem
      else if g.Loopir.Ref_group.has_write then
        if co_dist_lines < w_l2 then Co_c2c else Co_mem
      else if co_dist_lines < w_l3 then Co_l3
      else Co_mem
    in
    {
      leader_repr = g.Loopir.Ref_group.leader.Loopir.Array_ref.repr;
      members;
      has_write = g.Loopir.Ref_group.has_write;
      sigma;
      co;
      bins = [ near; far; cold ];
    }
  in
  let profiles = List.map profile_of groups in
  let l1_t, l2_t, l3_t, c2c_t, mem_t, cyc_t =
    List.fold_left
      (fun acc p ->
        List.fold_left
          (fun (l1, l2, l3, c2c, mem, cyc) b ->
            let b1, b2, b3, bc, bm = serve b ~sigma:p.sigma ~co:p.co in
            ( l1 +. b1,
              l2 +. b2,
              l3 +. b3,
              c2c +. bc,
              mem +. bm,
              cyc
              +. (b2 *. pen `L2)
              +. (b3 *. pen `L3)
              +. (bc *. pen `C2c)
              +. (bm *. pen `Mem) ))
          acc p.bins)
      (0., 0., 0., 0., 0., 0.)
      profiles
  in
  (* Machine-wide scaling: per-bin counts are for the busiest thread
     ([max_steps] parallel steps), so the whole team performs
     [parallel_trip / max_steps] times as much — exactly [threads] when
     the deal is even, less when trailing threads get short shares. *)
  let t =
    if max_steps <= 0 then 0.
    else float_of_int parallel_trip /. float_of_int max_steps
  in
  let accesses = (l1_t +. l2_t +. l3_t +. c2c_t +. mem_t) *. t in
  {
    threads;
    accesses;
    l1_hits = l1_t *. t;
    l2_hits = l2_t *. t;
    l3_hits = l3_t *. t;
    c2c_transfers = c2c_t *. t;
    mem_fetches = mem_t *. t;
    miss_rate =
      (if accesses <= 0. then 0. else (accesses -. (l1_t *. t)) /. accesses);
    cache_cycles = cyc_t;
    groups = profiles;
  }

type analytic = {
  prediction : prediction;
  breakdown : Costmodel.Total_cost.breakdown;
  eq1 : Costmodel.Total_cost.eq1;
  fs_cases : int option;
  fs_note : string;
}

let with_chunk (nest : Loopir.Loop_nest.t) = function
  | None -> nest
  | Some c ->
      {
        nest with
        Loopir.Loop_nest.pragma =
          {
            nest.Loopir.Loop_nest.pragma with
            Minic.Ast.schedule = Some (Minic.Ast.Sched_static (Some c));
          };
      }

let analyze ?(arch = Archspec.Arch.paper_machine)
    ?(fs_cost_factor = Costmodel.Total_cost.default_fs_cost_factor)
    ?(contention = false) ?chunk ~threads ~params ~checked
    (nest : Loopir.Loop_nest.t) =
  let env v = List.assoc_opt v params in
  let nest = with_chunk nest chunk in
  let prediction = predict ~arch ~threads ~env nest in
  let cfg =
    { (Fsmodel.Model.default_config ~arch ~threads ()) with
      Fsmodel.Model.chunk; params }
  in
  let fs_cases, fs_note =
    match Closed_form.estimate cfg ~nest ~checked with
    | Closed_form.Exact i ->
        (Some i.Closed_form.fs_cases, "closed form, " ^ i.Closed_form.regime)
    | Closed_form.Inapplicable reason -> (None, reason)
  in
  let breakdown =
    Costmodel.Total_cost.compute ~fs_cost_factor ~contention
      ~cache_cycles:prediction.cache_cycles ~arch ~threads
      ~fs_cases:(Option.value fs_cases ~default:0)
      ~env ~checked nest
  in
  {
    prediction;
    breakdown;
    eq1 = Costmodel.Total_cost.eq1_of breakdown;
    fs_cases;
    fs_note;
  }

type overhead = {
  threads : int;
  fs_chunk : int;
  nfs_chunk : int;
  n_fs : int;
  n_nfs : int;
  percent : float;
  analytic : analytic;
}

let overhead ?(arch = Archspec.Arch.paper_machine)
    ?(fs_cost_factor = Costmodel.Total_cost.default_fs_cost_factor)
    ?(contention = false) ~threads ~fs_chunk ~nfs_chunk ~func checked =
  let params = [ ("num_threads", threads) ] in
  let nest = Loopir.Lower.lower checked ~func ~params in
  let base = Fsmodel.Model.default_config ~arch ~threads () in
  let count chunk =
    match
      Closed_form.estimate
        { base with Fsmodel.Model.chunk = Some chunk }
        ~nest ~checked
    with
    | Closed_form.Exact i -> Some i.Closed_form.fs_cases
    | Closed_form.Inapplicable _ -> None
  in
  match (count fs_chunk, count nfs_chunk) with
  | Some n_fs, Some n_nfs ->
      let analytic =
        analyze ~arch ~fs_cost_factor ~contention ~chunk:fs_chunk ~threads
          ~params ~checked nest
      in
      let excess =
        float_of_int (max 0 (n_fs - n_nfs))
        *. float_of_int arch.Archspec.Arch.coherence_latency
        *. fs_cost_factor /. float_of_int threads
      in
      let total = analytic.breakdown.Costmodel.Total_cost.total_cycles in
      let percent = if total <= 0. then 0. else 100. *. excess /. total in
      Some { threads; fs_chunk; nfs_chunk; n_fs; n_nfs; percent; analytic }
  | _ -> None

let pp_bin ppf b =
  Format.fprintf ppf "%s d=%s n=%.0f -> %s" b.label
    (match b.distance with Some d -> string_of_int d | None -> "inf")
    b.count (level_name b.level)

let pp_prediction ppf (p : prediction) =
  Format.fprintf ppf
    "@[<v>reuse profile (%d threads): %.0f accesses, miss %.2f%%@,\
     L1 %.0f | L2 %.0f | L3 %.0f | c2c %.0f | mem %.0f; cache stall %.0f \
     cy/thread@,"
    p.threads p.accesses (100. *. p.miss_rate) p.l1_hits p.l2_hits p.l3_hits
    p.c2c_transfers p.mem_fetches p.cache_cycles;
  List.iter
    (fun g ->
      Format.fprintf ppf "  %s x%d%s sigma=%d: %a@," g.leader_repr g.members
        (if g.has_write then " (w)" else "")
        g.sigma
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_bin)
        g.bins)
    p.groups;
  Format.fprintf ppf "@]"

let pp_analytic ppf a =
  Format.fprintf ppf "@[<v>%a@,%a@,%a@,FS count: %s@]" pp_prediction
    a.prediction Costmodel.Total_cost.pp a.breakdown Costmodel.Total_cost.pp_eq1
    a.eq1
    (match a.fs_cases with
    | Some n -> Printf.sprintf "%d (%s)" n a.fs_note
    | None -> "unavailable (" ^ a.fs_note ^ ")")

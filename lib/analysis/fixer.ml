(* The verification half of the fix loop: materialize Transform's plan,
   then re-run both engines, the dependence analysis and the analytic
   cost model on the transformed program and compare against the
   original.  A fix is verified only when the transformed source
   round-trips through the printer, both engines agree, the attributed
   FS drops below the removal threshold, no race appears, and the
   analytic Total_c does not regress beyond the slack. *)

type metrics = {
  fs_fast : int;
  fs_ref : int;
  races : int;
  cost : float option;
}

type verdict = {
  func : string;
  plan : Fsmodel.Transform.plan;
  before : metrics;
  after : metrics;
  removal : float;
  cost_ratio : float option;
  min_removal : float;
  cost_slack : float;
  roundtrip_ok : bool;
  engines_agree : bool;
  verified : bool;
  transformed : Minic.Typecheck.checked;
  source : string;
}

type outcome = Nothing_to_fix of string | Fix of verdict

exception Symbolic_nest of string list

let count_races ps =
  List.length
    (List.filter (fun (p : Depend.pair) -> p.Depend.verdict = Depend.Loop_carried) ps)

let measure ~arch ?chunk ~threads ~func (checked : Minic.Typecheck.checked) =
  let params = [ ("num_threads", threads) ] in
  let nests = Loopir.Lower.lower_all checked ~func ~params in
  (match List.concat_map (Depend.free_params ~params) nests with
  | [] -> ()
  | ps -> raise (Symbolic_nest (List.sort_uniq compare ps)));
  let line_bytes = Archspec.Arch.line_bytes arch in
  let base_cfg = Fsmodel.Model.default_config ~arch ~threads () in
  let cfg = { base_cfg with Fsmodel.Model.chunk } in
  List.fold_left
    (fun (acc, agree) nest ->
      let fast = (Fsmodel.Model.run ~engine:`Fast cfg ~nest ~checked).Fsmodel.Model.fs_cases in
      let refr =
        (Fsmodel.Model.run ~engine:`Reference cfg ~nest ~checked).Fsmodel.Model.fs_cases
      in
      let races = count_races (Depend.pairs ~line_bytes ~params nest) in
      let cost =
        match acc.cost with
        | None -> None
        | Some c -> (
            try
              let a = Reuse.analyze ~arch ?chunk ~threads ~params ~checked nest in
              Some (c +. a.Reuse.eq1.Costmodel.Total_cost.total)
            with _ -> None)
      in
      ( {
          fs_fast = acc.fs_fast + fast;
          fs_ref = acc.fs_ref + refr;
          races = acc.races + races;
          cost;
        },
        agree && fast = refr ))
    ({ fs_fast = 0; fs_ref = 0; races = 0; cost = Some 0. }, true)
    nests

let roundtrip_ok (transformed : Minic.Typecheck.checked) source =
  try
    let reparsed = Minic.Parser.parse_program source in
    let strip p = Minic.Ast.erase_spans { p with Minic.Ast.macros = [] } in
    let rechecked = Minic.Typecheck.check_program reparsed in
    strip rechecked.Minic.Typecheck.prog
    = strip transformed.Minic.Typecheck.prog
  with _ -> false

let verify ?(arch = Archspec.Arch.paper_machine) ?advice
    ?(min_removal = 0.9) ?(cost_slack = 0.05) ?chunk ~threads ~func checked =
  let line_bytes = Archspec.Arch.line_bytes arch in
  match
    let plan = Fsmodel.Transform.plan ?advice ~line_bytes ~threads ~func checked in
    if plan.Fsmodel.Transform.rewrites = [] then
      Nothing_to_fix
        (Printf.sprintf "no false sharing attributed in %s; nothing to fix" func)
    else begin
      let before, agree_before = measure ~arch ?chunk ~threads ~func checked in
      let transformed = Fsmodel.Transform.materialize checked plan in
      let source = Fsmodel.Transform.to_source transformed in
      let after, agree_after = measure ~arch ?chunk ~threads ~func transformed in
      let roundtrip_ok = roundtrip_ok transformed source in
      let removal =
        if before.fs_ref = 0 then 1.0
        else 1.0 -. (float_of_int after.fs_ref /. float_of_int before.fs_ref)
      in
      let cost_ratio =
        match (before.cost, after.cost) with
        | Some b, Some a when b > 0. -> Some (a /. b)
        | _ -> None
      in
      let engines_agree = agree_before && agree_after in
      let verified =
        roundtrip_ok && engines_agree
        && (before.fs_ref = 0 || removal >= min_removal)
        && after.races <= before.races
        && (match cost_ratio with
           | Some r -> r <= 1.0 +. cost_slack
           | None -> true)
      in
      Fix
        {
          func;
          plan;
          before;
          after;
          removal;
          cost_ratio;
          min_removal;
          cost_slack;
          roundtrip_ok;
          engines_agree;
          verified;
          transformed;
          source;
        }
    end
  with
  | outcome -> outcome
  | exception Symbolic_nest ps ->
      Nothing_to_fix
        (Printf.sprintf
           "parametric nest in %s (free: %s); bind sizes with -p to verify a fix"
           func (String.concat ", " ps))
  | exception Loopir.Lower.Lower_error m ->
      Nothing_to_fix (Printf.sprintf "cannot lower %s: %s" func m)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_cost ppf = function
  | Some c -> Format.fprintf ppf "%.6g cycles" c
  | None -> Format.fprintf ppf "n/a"

let to_text v =
  let b = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer b in
  Format.fprintf ppf "@[<v>fix plan for %s (%d rewrite(s)):@," v.func
    (List.length v.plan.Fsmodel.Transform.rewrites);
  List.iter
    (fun r -> Format.fprintf ppf "  - %s@," (Fsmodel.Transform.describe r))
    v.plan.Fsmodel.Transform.rewrites;
  Format.fprintf ppf "before: N_fs %d (fast %d), races %d, predicted cost %a@,"
    v.before.fs_ref v.before.fs_fast v.before.races pp_cost v.before.cost;
  Format.fprintf ppf "after:  N_fs %d (fast %d), races %d, predicted cost %a@,"
    v.after.fs_ref v.after.fs_fast v.after.races pp_cost v.after.cost;
  Format.fprintf ppf
    "attributed-FS removal: %.1f%% (threshold %.0f%%); cost ratio %s@,"
    (100. *. v.removal)
    (100. *. v.min_removal)
    (match v.cost_ratio with
    | Some r -> Printf.sprintf "%.2fx" r
    | None -> "n/a");
  Format.fprintf ppf "round-trip: %s; engines agree: %s@,"
    (if v.roundtrip_ok then "ok" else "FAILED")
    (if v.engines_agree then "yes" else "NO");
  Format.fprintf ppf "verdict: %s@]@."
    (if v.verified then "VERIFIED" else "UNVERIFIED");
  Format.pp_print_flush ppf ();
  Buffer.contents b

let to_json v =
  let open Json in
  Obj
    [
      ("function", Str v.func);
      ( "plan",
        List
          (List.map
             (fun r -> Str (Fsmodel.Transform.describe r))
             v.plan.Fsmodel.Transform.rewrites) );
      ( "before",
        Obj
          [
            ("fs", Int v.before.fs_ref);
            ("fsFast", Int v.before.fs_fast);
            ("races", Int v.before.races);
            ( "predictedCost",
              match v.before.cost with Some c -> Float c | None -> Null );
          ] );
      ( "after",
        Obj
          [
            ("fs", Int v.after.fs_ref);
            ("fsFast", Int v.after.fs_fast);
            ("races", Int v.after.races);
            ( "predictedCost",
              match v.after.cost with Some c -> Float c | None -> Null );
          ] );
      ("removal", Float v.removal);
      ("minRemoval", Float v.min_removal);
      ( "costRatio",
        match v.cost_ratio with Some r -> Float r | None -> Null );
      ("roundtripOk", Bool v.roundtrip_ok);
      ("enginesAgree", Bool v.engines_agree);
      ("verified", Bool v.verified);
      ("transformedSource", Str v.source);
    ]

type severity = Error | Warning | Info

type fixit = { title : string; detail : string }

type finding = {
  rule : string;
  severity : severity;
  span : Minic.Span.t;
  func : string;
  message : string;
  fixits : fixit list;
  region : string option;
      (* parameter region the finding holds in, e.g. "n >= 2" *)
  symbolic : string option;
      (* closed-form count over the free parameter, when available *)
  attribution : string list;
      (* top reference-pair attribution sentences, heaviest first *)
  backend : string option;
      (* dependence backend that decided the finding, when noteworthy *)
  witness : string option;
      (* conflicting iteration pair certified by the exact backend *)
  reason : string option;
      (* for analysis/unknown findings: the raw reason string *)
  cost : cost option;
      (* analytic Eq. 1 cost context, when the lint ran with a cost model *)
  sched : string option;
      (* replayed schedule kind (e.g. "dynamic,1"), when not static *)
  dist : Dist.t option;
      (* FS distribution over the replayed seed set, when the lint ran a
         nondeterministic schedule *)
  fix_verified : fix_verified option;
      (* evidence from re-analyzing the materialized fix, when the lint
         ran with fixits on a concrete static schedule *)
}

and fix_verified = {
  fv_rewrites : string list;  (* Transform.describe, one per rewrite *)
  fv_fs_before : int;
  fv_fs_after : int;
  fv_removal : float;  (* percent of attributed FS removed *)
  fv_cost_ratio : float option;  (* after/before analytic Total_c *)
  fv_ok : bool;  (* the full verification verdict *)
}

and cost = {
  cost_model : string;  (* "analytic" or "sim" *)
  eq1 : Costmodel.Total_cost.eq1;
  fs_percent : float;
  miss_rate : float;  (* predicted beyond-L1 miss share, in [0,1] *)
  mem_fetches : float;
}

type report = { uri : string; findings : finding list }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let sort findings =
  List.stable_sort
    (fun a b ->
      let c = compare (rank a.severity) (rank b.severity) in
      if c <> 0 then c
      else
        let c =
          compare
            (a.span.Minic.Span.line, a.span.Minic.Span.col)
            (b.span.Minic.Span.line, b.span.Minic.Span.col)
        in
        if c <> 0 then c else compare a.rule b.rule)
    findings

let error_count r =
  List.length (List.filter (fun f -> f.severity = Error) r.findings)

let to_text r =
  let buf = Buffer.create 1024 in
  let nerr = ref 0 and nwarn = ref 0 and nnote = ref 0 in
  List.iter
    (fun f ->
      (match f.severity with
      | Error -> incr nerr
      | Warning -> incr nwarn
      | Info -> incr nnote);
      let pos =
        if Minic.Span.is_none f.span then ""
        else Minic.Span.to_string f.span ^ ":"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s:%s %s[%s]: %s\n" r.uri pos
           (severity_name f.severity) f.rule f.message);
      (match f.region with
      | Some c -> Buffer.add_string buf (Printf.sprintf "  where: %s\n" c)
      | None -> ());
      (match f.symbolic with
      | Some s -> Buffer.add_string buf (Printf.sprintf "  count: %s\n" s)
      | None -> ());
      (match f.sched with
      | Some s -> Buffer.add_string buf (Printf.sprintf "  schedule: %s\n" s)
      | None -> ());
      (match f.dist with
      | Some d ->
          Buffer.add_string buf
            (Printf.sprintf "  fs-dist: %s\n" (Dist.summary d))
      | None -> ());
      (match f.witness with
      | Some w -> Buffer.add_string buf (Printf.sprintf "  witness: %s\n" w)
      | None -> ());
      (match f.backend with
      | Some b when b <> "exact" && b <> "banerjee" ->
          Buffer.add_string buf (Printf.sprintf "  backend: %s\n" b)
      | _ -> ());
      (match f.cost with
      | Some c ->
          Buffer.add_string buf
            (Printf.sprintf "  cost: %s\n"
               (Format.asprintf "%a" Costmodel.Total_cost.pp_eq1 c.eq1));
          Buffer.add_string buf
            (Printf.sprintf
               "  miss: %.2f%% predicted miss rate, %.0f memory fetches \
                [%s]\n"
               (100. *. c.miss_rate) c.mem_fetches c.cost_model)
      | None -> ());
      (match f.fix_verified with
      | Some v ->
          Buffer.add_string buf
            (Printf.sprintf
               "  fix-verified: %s; N_fs %d -> %d (%.1f%% removed), cost %s \
                [%s]\n"
               (String.concat "; " v.fv_rewrites)
               v.fv_fs_before v.fv_fs_after v.fv_removal
               (match v.fv_cost_ratio with
               | Some r -> Printf.sprintf "%.2fx" r
               | None -> "n/a")
               (if v.fv_ok then "VERIFIED" else "UNVERIFIED"))
      | None -> ());
      List.iter
        (fun a -> Buffer.add_string buf (Printf.sprintf "  top: %s\n" a))
        f.attribution;
      List.iter
        (fun fx ->
          Buffer.add_string buf
            (Printf.sprintf "  fix: %s — %s\n" fx.title fx.detail))
        f.fixits)
    r.findings;
  Buffer.add_string buf
    (Printf.sprintf "%s: %d error(s), %d warning(s), %d note(s)\n" r.uri
       !nerr !nwarn !nnote);
  Buffer.contents buf

let to_json r =
  let open Json in
  let rules =
    List.sort_uniq compare (List.map (fun f -> f.rule) r.findings)
  in
  let region (s : Minic.Span.t) =
    Obj
      [
        ("startLine", Int s.line);
        ("startColumn", Int s.col);
        ("endLine", Int s.end_line);
        ("endColumn", Int s.end_col);
      ]
  in
  let result f =
    let location =
      Obj
        [
          ( "physicalLocation",
            Obj
              ([ ("artifactLocation", Obj [ ("uri", Str r.uri) ]) ]
              @
              if Minic.Span.is_none f.span then []
              else [ ("region", region f.span) ]) );
        ]
    in
    Obj
      ([
         ("ruleId", Str f.rule);
         ("level", Str (severity_name f.severity));
         ("message", Obj [ ("text", Str f.message) ]);
         ("locations", List [ location ]);
       ]
      @ (let props =
           (if f.func = "" then [] else [ ("function", Str f.func) ])
           @ (match f.region with
             | Some c -> [ ("parameterRegion", Str c) ]
             | None -> [])
           @ (match f.symbolic with
             | Some s -> [ ("symbolicCount", Str s) ]
             | None -> [])
           @ (match f.backend with
             | Some b -> [ ("dependenceBackend", Str b) ]
             | None -> [])
           @ (match f.witness with
             | Some w -> [ ("witness", Str w) ]
             | None -> [])
           @ (match f.reason with
             | Some m -> [ ("unknownReason", Str m) ]
             | None -> [])
           @ (match f.sched with
             | Some s -> [ ("scheduleKind", Str s) ]
             | None -> [])
           @ (match f.dist with
             | Some d ->
                 [
                   ( "fsDistribution",
                     Obj
                       [
                         ("seeds", Int (Array.length d.Dist.seeds));
                         ("mean", Float d.Dist.mean);
                         ("stddev", Float d.Dist.stddev);
                         ("p95", Int d.Dist.p95);
                         ("min", Int d.Dist.min_fs);
                         ("max", Int d.Dist.max_fs);
                         ("meanSteals", Float d.Dist.mean_steals);
                       ] );
                 ]
             | None -> [])
           @ (match f.cost with
             | Some c ->
                 [
                   ("predictedMissRate", Float c.miss_rate);
                   ( "costBreakdown",
                     Obj
                       [
                         ("model", Str c.cost_model);
                         ("loopCycles", Float c.eq1.Costmodel.Total_cost.loop_c);
                         ( "cacheCycles",
                           Float c.eq1.Costmodel.Total_cost.cache_c );
                         ( "machineCycles",
                           Float c.eq1.Costmodel.Total_cost.machine_c );
                         ("fsCycles", Float c.eq1.Costmodel.Total_cost.fs_c);
                         ("totalCycles", Float c.eq1.Costmodel.Total_cost.total);
                         ("fsPercent", Float c.fs_percent);
                         ("memFetches", Float c.mem_fetches);
                       ] );
                 ]
             | None -> [])
           @ (match f.fix_verified with
             | Some v ->
                 [
                   ( "fixVerified",
                     Obj
                       ([
                          ( "rewrites",
                            List (List.map (fun s -> Str s) v.fv_rewrites) );
                          ("fsBefore", Int v.fv_fs_before);
                          ("fsAfter", Int v.fv_fs_after);
                          ("removalPercent", Float v.fv_removal);
                        ]
                       @ (match v.fv_cost_ratio with
                         | Some r -> [ ("costRatio", Float r) ]
                         | None -> [])
                       @ [ ("verified", Bool v.fv_ok) ]) );
                 ]
             | None -> [])
           @
           match f.attribution with
           | [] -> []
           | l -> [ ("topAttribution", List (List.map (fun s -> Str s) l)) ]
         in
         if props = [] then [] else [ ("properties", Obj props) ])
      @
      if f.fixits = [] then []
      else
        [
          ( "fixes",
            List
              (List.map
                 (fun fx ->
                   Obj
                     [
                       ( "description",
                         Obj
                           [ ("text", Str (fx.title ^ " — " ^ fx.detail)) ]
                       );
                     ])
                 f.fixits) );
        ])
  in
  Obj
    [
      ("version", Str "2.1.0");
      ( "$schema",
        Str
          "https://json.schemastore.org/sarif-2.1.0.json" );
      ( "runs",
        List
          [
            Obj
              [
                ( "tool",
                  Obj
                    [
                      ( "driver",
                        Obj
                          [
                            ("name", Str "fslint");
                            ( "rules",
                              List
                                (List.map
                                   (fun id -> Obj [ ("id", Str id) ])
                                   rules) );
                          ] );
                    ] );
                ("results", List (List.map result r.findings));
              ];
          ] );
    ]

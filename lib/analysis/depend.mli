(** Affine dependence analysis over the reference pairs of one loop nest.

    For every pair of references to the same base with at least one write,
    the analyzer decides whether two {e distinct iterations of the parallel
    loop} can touch overlapping bytes (a loop-carried dependence — a data
    race under [omp parallel for]), can touch the same cache line without
    overlapping bytes (a false-sharing candidate), or can do neither
    (independent).

    The machinery is the classical GCD + Banerjee pair: the difference of
    the two byte offsets is formed as an affine expression over the loop
    variables of both iterations (the second iteration's variables renamed),
    the parallel distance is introduced as an explicit variable constrained
    away from zero, and a conflict is declared {e impossible} when either
    the Banerjee interval of the difference misses the overlap window or the
    coefficient GCD admits no solution inside it.  Both tests are sufficient
    conditions for independence, so conflict verdicts are {e may} results
    and [Independent] is a {e must} result. *)

type verdict =
  | Independent
      (** no two distinct parallel iterations can touch the same cache
          line through this pair *)
  | Loop_carried
      (** distinct parallel iterations may touch overlapping bytes: a
          loop-carried dependence, i.e. a potential data race *)
  | Line_conflict
      (** bytes never overlap across parallel iterations, but the same
          cache line may be touched: a false-sharing candidate *)
  | Unknown of string
      (** the pair could not be analyzed (non-affine or unbounded loop
          bounds); no verdict is implied *)

type pair = {
  a : Loopir.Array_ref.t;
  b : Loopir.Array_ref.t;
  verdict : verdict;
}

val pairs :
  line_bytes:int ->
  params:(string * int) list ->
  Loopir.Loop_nest.t ->
  pair list
(** All unordered same-base pairs with at least one write (a reference is
    also paired with itself: a write that different parallel iterations
    aim at the same address is a write-write race).  Loop bounds are
    interval-evaluated outermost-in; bounds that are not affine in
    parameters and outer loop variables yield [Unknown]. *)

val verdict_name : verdict -> string

(** Affine dependence analysis over the reference pairs of one loop nest.

    For every pair of references to the same base with at least one write,
    the analyzer decides whether two {e distinct iterations of the parallel
    loop} can touch overlapping bytes (a loop-carried dependence — a data
    race under [omp parallel for]), can touch the same cache line without
    overlapping bytes (a false-sharing candidate), or can do neither
    (independent).

    Two decision tiers run in sequence:

    - {b Banerjee + GCD} (always): the difference of the two byte offsets
      is formed as an affine expression over the loop variables of both
      iterations (the second iteration's variables renamed), the parallel
      distance is introduced as an explicit variable constrained away from
      zero, and a conflict is declared {e impossible} when either the
      Banerjee interval of the difference misses the overlap window or the
      coefficient GCD admits no solution inside it.  Both tests are
      sufficient conditions for independence, so conflict verdicts are
      {e may} results and [Independent] is a {e must} result.
    - {b Exact (Omega test)} (unless [~exact:`Off]): every pair the first
      tier could not prove independent is re-decided by {!Exact}, an exact
      integer-feasibility procedure over the full iteration polyhedron
      (strides, coupled subscripts, shared outer loops, divisions by
      constants in bounds, and precise line-index arithmetic are all
      encoded as rows).  Surviving conflicts become {e must} results
      carrying a validated witness iteration pair; refuted ones upgrade to
      [Independent]; budget exhaustion falls back to the first tier's
      verdict, recorded in the evidence. *)

type verdict =
  | Independent
      (** no two distinct parallel iterations can touch the same cache
          line through this pair *)
  | Loop_carried
      (** distinct parallel iterations touch (may touch, if the evidence
          is not a must) overlapping bytes: a loop-carried dependence,
          i.e. a data race *)
  | Line_conflict
      (** bytes never overlap across parallel iterations, but the same
          cache line is (or may be) touched: a false-sharing candidate *)
  | Unknown of string
      (** the pair could not be analyzed by either tier (non-affine
          subscripts or bounds); no verdict is implied *)

type backend =
  | Banerjee  (** first tier only: conflicts are may-results *)
  | Exact  (** the Omega-test tier decided the pair exactly *)
  | Fallback of string
      (** the exact tier was attempted but gave up (budget exhaustion or
          an unsupported construct, named by the string); the verdict is
          the Banerjee one *)

type witness = {
  w_params : (string * int) list;
      (** free-parameter values the witness instantiates (empty for
          concrete nests) *)
  w_a : (string * int) list;
      (** loop-variable values of the first iteration, outermost first *)
  w_b : (string * int) list;
      (** loop-variable values of the second iteration; shared outer
          sequential loops repeat the same values *)
}

type evidence = {
  ev_backend : backend;
  ev_must : bool;
      (** the verdict is certain for this configuration: always true for
          [Independent], true for conflicts exactly when the exact tier
          found a witness with no free parameters *)
  ev_witness : witness option;
      (** a concrete conflicting iteration pair, validated against the
          byte/line arithmetic before being emitted *)
}

type exact_mode = [ `Auto | `On | `Off ]
(** [`Off] disables the exact tier ([Banerjee] evidence everywhere);
    [`Auto] and [`On] run it identically — the distinction only drives
    how callers report budget fallbacks ([`On] loudly). *)

val default_exact_budget : int

type pair = {
  a : Loopir.Array_ref.t;
  b : Loopir.Array_ref.t;
  verdict : verdict;
  ev : evidence;
}

val pairs :
  line_bytes:int ->
  params:(string * int) list ->
  ?exact:exact_mode ->
  ?exact_budget:int ->
  Loopir.Loop_nest.t ->
  pair list
(** All unordered same-base pairs with at least one write (a reference is
    also paired with itself: a write that different parallel iterations
    aim at the same address is a write-write race).  Loop bounds are
    interval-evaluated outermost-in; bounds the interval box rejects
    (non-affine, unbound identifiers) yield [Unknown] from the first
    tier, but the exact tier can still decide them — treating unbound
    identifiers as free non-negative parameters, in which case conflict
    witnesses name the parameter values they instantiate and [ev_must]
    stays false.  [exact_budget] caps the solver steps spent per pair. *)

val verdict_name : verdict -> string
val backend_name : backend -> string

val banerjee_ev : must:bool -> evidence
(** First-tier evidence with no witness — the default for callers that
    synthesize findings outside the dependence analysis. *)

val witness_to_string : witness -> string
(** ["i=0, j=477 vs i'=1, j'=0"], prefixed with ["n=66: "] when the
    witness instantiates free parameters. *)

val free_params :
  params:(string * int) list -> Loopir.Loop_nest.t -> string list
(** Identifiers appearing in loop bounds that are bound neither by
    [params] nor by an enclosing loop variable, in order of first
    appearance — the nest is parametric exactly when this is non-empty.
    Bounds the symbolic box cannot express (e.g. division by a
    constant) still report their unbound identifiers, so such nests
    route to the parametric path where the exact tier can decide
    them. *)

type spair = {
  sa : Loopir.Array_ref.t;
  sb : Loopir.Array_ref.t;
  scases : (verdict * evidence) Symbolic.cases;
      (** region-qualified verdict with its evidence: a case-split tree
          over the free parameters *)
}

val sverdicts : spair -> verdict Symbolic.cases
(** The verdict tree with evidence stripped. *)

val pairs_sym :
  line_bytes:int ->
  params:(string * int) list ->
  ?exact:exact_mode ->
  ?exact_budget:int ->
  ?extent_of:(string -> int option) ->
  Loopir.Loop_nest.t ->
  spair list * Symbolic.ctx * string list
(** Parametric variant of {!pairs}: identifiers in loop bounds that are
    bound neither by [params] nor by an enclosing loop become {e free
    symbolic parameters}, and each pair's verdict is a case-split tree
    over them, valid for {e every} non-negative value of the free
    parameters.  Also returns the parameter constraint context (free
    parameters assumed [>= 0], tightened by in-bounds reasoning when
    [extent_of] reports an array's extent in bytes: iterations that index
    outside a declared array are undefined behaviour, so bounds keeping
    every subscript in bounds may be assumed) and the free parameters in
    order of first appearance.

    Soundness mirrors {!pairs} regionwise: in any region, [Independent]
    is a must-result, conflict verdicts are may-results.  When every
    range is concrete the tree is a single leaf equal to the {!pairs}
    verdict.  With free parameters the tree {e refines} the concrete
    analysis: instantiating it at any parameter value yields a verdict
    at least as severe as {!pairs} at that value — never [Independent]
    where the concrete analysis reports a conflict, never
    [Line_conflict] where it reports [Loop_carried].  (Feasibility is
    monotone in the variable ranges on every test path, and the
    symbolic analysis only ever widens ranges: companion variables are
    over-approximated by their parameter-context hulls during
    feasibility probing, and with a non-unit parallel step the distance
    range over-approximates the trip count, which is not affine in the
    parameter.)  The symbolic analysis can therefore be conservative
    where the concrete analysis proves independence, but the empty- and
    single-iteration regions are always recognized exactly.

    The exact tier preserves the contract region-wise: under every
    satisfiable path the leaf is re-decided with the path atoms and the
    context bounds as additional parameter constraints, so an upgrade to
    [Independent] asserts infeasibility for {e every} parameter value in
    the region, while a surviving conflict carries a witness naming one
    realizable parameter valuation ([ev_must] stays false — other values
    in the region may differ).  Because the exact tier only tightens
    ({e within} the region) and never loosens, instantiating the refined
    tree still refines the concrete analysis run with the same
    [exact] configuration. *)

(** Affine dependence analysis over the reference pairs of one loop nest.

    For every pair of references to the same base with at least one write,
    the analyzer decides whether two {e distinct iterations of the parallel
    loop} can touch overlapping bytes (a loop-carried dependence — a data
    race under [omp parallel for]), can touch the same cache line without
    overlapping bytes (a false-sharing candidate), or can do neither
    (independent).

    The machinery is the classical GCD + Banerjee pair: the difference of
    the two byte offsets is formed as an affine expression over the loop
    variables of both iterations (the second iteration's variables renamed),
    the parallel distance is introduced as an explicit variable constrained
    away from zero, and a conflict is declared {e impossible} when either
    the Banerjee interval of the difference misses the overlap window or the
    coefficient GCD admits no solution inside it.  Both tests are sufficient
    conditions for independence, so conflict verdicts are {e may} results
    and [Independent] is a {e must} result. *)

type verdict =
  | Independent
      (** no two distinct parallel iterations can touch the same cache
          line through this pair *)
  | Loop_carried
      (** distinct parallel iterations may touch overlapping bytes: a
          loop-carried dependence, i.e. a potential data race *)
  | Line_conflict
      (** bytes never overlap across parallel iterations, but the same
          cache line may be touched: a false-sharing candidate *)
  | Unknown of string
      (** the pair could not be analyzed (non-affine or unbounded loop
          bounds); no verdict is implied *)

type pair = {
  a : Loopir.Array_ref.t;
  b : Loopir.Array_ref.t;
  verdict : verdict;
}

val pairs :
  line_bytes:int ->
  params:(string * int) list ->
  Loopir.Loop_nest.t ->
  pair list
(** All unordered same-base pairs with at least one write (a reference is
    also paired with itself: a write that different parallel iterations
    aim at the same address is a write-write race).  Loop bounds are
    interval-evaluated outermost-in; bounds that are not affine in
    parameters and outer loop variables yield [Unknown]. *)

val verdict_name : verdict -> string

val free_params :
  params:(string * int) list -> Loopir.Loop_nest.t -> string list
(** Identifiers appearing in loop bounds that are bound neither by
    [params] nor by an enclosing loop variable, in order of first
    appearance — the nest is parametric exactly when this is non-empty.
    Empty when the bounds are not affine at all. *)

type spair = {
  sa : Loopir.Array_ref.t;
  sb : Loopir.Array_ref.t;
  scases : verdict Symbolic.cases;
      (** region-qualified verdict: a case-split tree over the free
          parameters *)
}

val pairs_sym :
  line_bytes:int ->
  params:(string * int) list ->
  ?extent_of:(string -> int option) ->
  Loopir.Loop_nest.t ->
  spair list * Symbolic.ctx * string list
(** Parametric variant of {!pairs}: identifiers in loop bounds that are
    bound neither by [params] nor by an enclosing loop become {e free
    symbolic parameters}, and each pair's verdict is a case-split tree
    over them, valid for {e every} non-negative value of the free
    parameters.  Also returns the parameter constraint context (free
    parameters assumed [>= 0], tightened by in-bounds reasoning when
    [extent_of] reports an array's extent in bytes: iterations that index
    outside a declared array are undefined behaviour, so bounds keeping
    every subscript in bounds may be assumed) and the free parameters in
    order of first appearance.

    Soundness mirrors {!pairs} regionwise: in any region, [Independent]
    is a must-result, conflict verdicts are may-results.  When every
    range is concrete the tree is a single leaf equal to the {!pairs}
    verdict.  With free parameters the tree {e refines} the concrete
    analysis: instantiating it at any parameter value yields a verdict
    at least as severe as {!pairs} at that value — never [Independent]
    where the concrete analysis reports a conflict, never
    [Line_conflict] where it reports [Loop_carried].  (Feasibility is
    monotone in the variable ranges on every test path, and the
    symbolic analysis only ever widens ranges: companion variables are
    over-approximated by their parameter-context hulls during
    feasibility probing, and with a non-unit parallel step the distance
    range over-approximates the trip count, which is not affine in the
    parameter.)  The symbolic analysis can therefore be conservative
    where the concrete analysis proves independence, but the empty- and
    single-iteration regions are always recognized exactly. *)

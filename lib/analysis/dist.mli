(** Distribution-valued false-sharing verdicts.

    Under a nondeterministic schedule the engine's [N_fs] is a random
    variable; each seed replays one concrete execution
    ({!Ompsched.Dispatch}).  [run] draws K seeds domain-parallel and
    summarizes the empirical distribution — the mean/p95 numbers quoted
    in lint text, SARIF [fsDistribution] properties and the bench's
    [sched] section.  Everything is deterministic in the seed set, so
    summaries are stable enough for goldens and cache keys. *)

type t = {
  kind : Ompsched.Dispatch.kind;
  seeds : int array;  (** the replayed seed set, in order *)
  fs : int array;  (** per-seed engine [N_fs] *)
  steals : int array;  (** per-seed steal events (0 unless work stealing) *)
  mean : float;
  stddev : float;  (** population standard deviation *)
  p95 : int;  (** nearest-rank 95th percentile of [fs] *)
  min_fs : int;
  max_fs : int;
  mean_steals : float;
}

val seeds_upto : int -> int array
(** [seeds_upto k] is the canonical seed set [0 .. k-1].
    @raise Invalid_argument when [k < 1]. *)

val run :
  ?engine:Fsmodel.Model.engine ->
  ?domains:int ->
  ?seeds:int array ->
  kind:Ompsched.Dispatch.kind ->
  Fsmodel.Model.config ->
  nest:Loopir.Loop_nest.t ->
  checked:Minic.Typecheck.checked ->
  t
(** Replay every seed (default [seeds_upto 8]) with
    [cfg.sched = Some (kind, seed)] and summarize.  Samples are
    independent {!Fsmodel.Model.run} calls, fanned over domains.
    @raise Invalid_argument on an empty seed set. *)

val of_samples :
  kind:Ompsched.Dispatch.kind ->
  seeds:int array ->
  fs:int array ->
  steals:int array ->
  t
(** Summarize already-collected samples (exposed for tests and bench).
    @raise Invalid_argument when [fs] is empty. *)

val summary : t -> string
(** One-line summary: ["mean 12.3, stddev 1.2, p95 14, range 10..15 over
    8 seed(s)"], plus a steals rate under work stealing.  This exact
    string appears in lint text output. *)

val pp : Format.formatter -> t -> unit

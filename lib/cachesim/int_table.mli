(** An open-addressing hash table specialized for [int] keys.

    Replaces generic [Hashtbl] on the simulation hot paths: multiplicative
    integer hashing (no polymorphic hash), linear probing over a flat key
    array (no bucket chains, no boxed key cells), backward-shift deletion
    (no tombstones).  Lookups allocate nothing: {!find_slot} returns a slot
    index that {!value_at} dereferences.

    Keys may be any [int] except [absent_key] (cache-line indices and byte
    addresses are non-negative, so this never bites in practice). *)

type 'a t

val absent_key : int
(** The reserved key ([min_int]). *)

val create : ?initial:int -> unit -> 'a t
(** [initial] is a capacity hint (rounded up to a power of two). *)

val length : 'a t -> int

val find_slot : 'a t -> int -> int
(** Slot of a key, or [-1] when absent.  Slots are invalidated by the next
    [set]/[remove]/[clear]. *)

val key_at : 'a t -> int -> int
val value_at : 'a t -> int -> 'a
val set_at : 'a t -> int -> 'a -> unit
(** Replace the value in an occupied slot (no rehash, no resize). *)

val mem : 'a t -> int -> bool
val get : 'a t -> int -> default:'a -> 'a
(** Lookup without allocation; [default] when absent. *)

val find_opt : 'a t -> int -> 'a option
val set : 'a t -> int -> 'a -> unit
(** Insert or replace. *)

val remove : 'a t -> int -> bool
(** [true] when the key was present. *)

val clear : 'a t -> unit
val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

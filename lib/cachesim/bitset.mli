(** Flat bit sets and word-level population counts.

    Two things live here: a branch-free SWAR {!popcount} over a single
    OCaml [int] (used by {!Fs_counter}'s single-word fast path and anything
    else holding a bitmask in one machine word), and a growable-free
    fixed-width bit set backed by an [int array] for universes wider than
    one word (e.g. thread counts above 62). *)

val popcount : int -> int
(** Number of set bits, constant time (SWAR over two 32-bit halves —
    OCaml's 63-bit [int] cannot hold the usual 64-bit magic constants). *)

type t

val create : bits:int -> t
(** An empty set over the universe [0 .. bits-1].
    @raise Invalid_argument when [bits < 1]. *)

val bits : t -> int
val set : t -> int -> unit
val unset : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val count : t -> int
val count_excluding : t -> int -> int
(** [count_excluding t i] is [count t] minus one when [i] is a member —
    the 1-to-All comparison without mutating the set. *)

val reset : t -> unit

(* 32-bit words: index arithmetic is a shift/mask and each word's popcount
   fits the classic SWAR reduction without 64-bit constants (OCaml ints are
   63-bit, so 0x5555555555555555 is not representable). *)

let pop32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* the byte-sum multiply wraps at 32 bits in C; OCaml ints are wider, so
     drop the surviving high product bits before extracting the top byte *)
  ((x * 0x01010101) land 0xFFFFFFFF) lsr 24

let popcount x = pop32 (x land 0xFFFFFFFF) + pop32 ((x lsr 32) land 0x7FFFFFFF)

type t = { words : int array; bits : int }

let create ~bits =
  if bits < 1 then invalid_arg "Bitset.create: bits < 1";
  { words = Array.make ((bits + 31) lsr 5) 0; bits }

let bits t = t.bits

let set t i = t.words.(i lsr 5) <- t.words.(i lsr 5) lor (1 lsl (i land 31))

let unset t i =
  t.words.(i lsr 5) <- t.words.(i lsr 5) land lnot (1 lsl (i land 31))

let mem t i = t.words.(i lsr 5) land (1 lsl (i land 31)) <> 0

let is_empty t =
  let n = Array.length t.words in
  let rec go i = i >= n || (Array.unsafe_get t.words i = 0 && go (i + 1)) in
  go 0

let count t =
  let acc = ref 0 in
  for i = 0 to Array.length t.words - 1 do
    acc := !acc + pop32 (Array.unsafe_get t.words i)
  done;
  !acc

let count_excluding t i = count t - if mem t i then 1 else 0

let reset t = Array.fill t.words 0 (Array.length t.words) 0

(** An LRU stack over integer keys (cache-line indices) with an arbitrary
    payload per entry.

    This is the data structure behind the paper's stack-distance analysis
    (§III-C): most-recently-used on top, least-recently-used at the bottom,
    eviction from the bottom when capacity is exceeded — i.e. a fully
    associative LRU cache.  All operations are O(1) except {!distance} and
    {!to_alist}.

    The index is an open-addressing {!Int_table} and a stack at capacity
    reuses the evicted node for the incoming line, so the {!access_int} /
    {!get} / {!remove_key} fast paths allocate nothing in steady state. *)

type 'a t

val no_key : int
(** Sentinel ([min_int]) returned by {!access_int} when nothing was
    evicted; never a valid key. *)

val create : capacity:int -> 'a t
(** [capacity] is the maximum number of entries; use [max_int] for an
    unbounded stack.  @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val size : 'a t -> int
val mem : 'a t -> int -> bool
val find : 'a t -> int -> 'a option
(** [find] does not touch recency. *)

val access : 'a t -> int -> 'a -> (int * 'a) option
(** [access t key payload] inserts [key] at the top (or moves it to the top,
    replacing its payload).  Returns the evicted bottom entry if the insert
    overflowed capacity. *)

val access_int : 'a t -> int -> 'a -> int
(** Allocation-free {!access}: returns the evicted key, or {!no_key}. *)

val touch : 'a t -> int -> bool
(** [touch t key] moves [key] to the top if present (payload unchanged);
    [false] when absent.  One table probe, against two for
    [mem]-then-{!access_int}. *)

val get : 'a t -> int -> default:'a -> 'a
(** Allocation-free {!find}; does not touch recency. *)

val remove_key : 'a t -> int -> bool
(** Allocation-free {!remove}; [true] when the key was present. *)

val update : 'a t -> int -> ('a -> 'a) -> bool
(** Update the payload in place without touching recency; returns [false]
    when absent. *)

val remove : 'a t -> int -> 'a option
(** Remove an entry (invalidation). *)

val distance : 'a t -> int -> int option
(** 0-based stack distance of a key: the number of distinct entries above
    it.  O(distance). *)

val to_alist : 'a t -> (int * 'a) list
(** Entries from most- to least-recently used. *)

val clear : 'a t -> unit

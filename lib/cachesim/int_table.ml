(* Open-addressing, linear-probing table over int keys.  The key array is
   flat (sentinel = absent_key); values live in a parallel array that is
   only materialized on the first insertion, which lets ['a t] be created
   without a witness value.  Deletion backward-shifts the probe chain, so
   there are no tombstones and probe sequences stay short.

   A removed slot keeps its last value in the value array (there is no
   "null" of type 'a); this pins at most [capacity] stale values, which is
   harmless for the int / small-record payloads this table is used for. *)

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;  (* [||] until the first set *)
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable shift : int;  (* 63 - log2 capacity: multiplicative hash shift *)
  mutable size : int;
}

let absent_key = min_int

(* Fibonacci hashing: spreads sequential keys (line indices) across the
   table while staying a single multiply. *)
let mix = 0x2545F4914F6CDD1D

let rec pow2_geq n b bits =
  if b >= n then (b, bits) else pow2_geq n (b * 2) (bits + 1)

let create ?(initial = 16) () =
  let cap, bits = pow2_geq (max 8 initial) 8 3 in
  {
    keys = Array.make cap absent_key;
    vals = [||];
    mask = cap - 1;
    shift = 63 - bits;
    size = 0;
  }

let length t = t.size
let home t k = (k * mix) lsr t.shift

let find_slot t k =
  let keys = t.keys and mask = t.mask in
  let rec probe i =
    let k' = Array.unsafe_get keys i in
    if k' = k then i
    else if k' = absent_key then -1
    else probe ((i + 1) land mask)
  in
  probe (home t k)

let key_at t i = t.keys.(i)
let value_at t i = t.vals.(i)
let set_at t i v = t.vals.(i) <- v
let mem t k = find_slot t k >= 0

let get t k ~default =
  let i = find_slot t k in
  if i < 0 then default else Array.unsafe_get t.vals i

let find_opt t k =
  let i = find_slot t k in
  if i < 0 then None else Some t.vals.(i)

(* slot where [k] lives or should be inserted (first absent on its chain) *)
let insertion_slot t k =
  let keys = t.keys and mask = t.mask in
  let rec probe i =
    let k' = Array.unsafe_get keys i in
    if k' = k || k' = absent_key then i else probe ((i + 1) land mask)
  in
  probe (home t k)

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap absent_key;
  t.mask <- cap - 1;
  t.shift <- t.shift - 1;
  if Array.length old_vals > 0 then
    t.vals <- Array.make cap old_vals.(0);
  Array.iteri
    (fun i k ->
      if k <> absent_key then begin
        let j = insertion_slot t k in
        t.keys.(j) <- k;
        t.vals.(j) <- old_vals.(i)
      end)
    old_keys

let set t k v =
  if k = absent_key then invalid_arg "Int_table.set: reserved key";
  if (t.size + 1) * 4 > (t.mask + 1) * 3 then grow t;
  if Array.length t.vals = 0 then t.vals <- Array.make (t.mask + 1) v;
  let i = insertion_slot t k in
  if t.keys.(i) <> k then begin
    t.keys.(i) <- k;
    t.size <- t.size + 1
  end;
  t.vals.(i) <- v

let remove t k =
  let i = find_slot t k in
  if i < 0 then false
  else begin
    let keys = t.keys and vals = t.vals and mask = t.mask in
    (* backward-shift: walk the chain after the hole and pull back every
       entry whose home position precedes (cyclically covers) the hole *)
    let hole = ref i in
    let j = ref ((i + 1) land mask) in
    let continue_ = ref true in
    while !continue_ do
      let k' = keys.(!j) in
      if k' = absent_key then continue_ := false
      else begin
        let h = home t k' in
        if (!j - h) land mask >= (!j - !hole) land mask then begin
          keys.(!hole) <- k';
          vals.(!hole) <- vals.(!j);
          hole := !j
        end;
        j := (!j + 1) land mask
      end
    done;
    keys.(!hole) <- absent_key;
    t.size <- t.size - 1;
    true
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) absent_key;
  t.size <- 0

let iter f t =
  Array.iteri (fun i k -> if k <> absent_key then f k t.vals.(i)) t.keys

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

(** Deterministic replay of nondeterministic OpenMP schedules.

    [schedule(dynamic)], [schedule(guided)] and randomized work stealing
    assign iterations at runtime, so the false-sharing count of one
    execution is a sample from a distribution, not a scalar.  This module
    turns one execution into a value: a {!plan} is the per-thread
    iteration order of a single run, fully determined by
    [(kind, threads, total, seed)].

    Dynamic and guided dispatch replay a shared chunk counter: the thread
    whose seeded virtual clock is lowest grabs the next chunk (ties go to
    the lowest tid, making the first round the canonical round-robin).
    Consequently a one-thread team, or a chunk at least the trip count,
    reproduces the schedule(static) deal exactly — the static-equivalence
    laws the test tier pins.

    Work stealing starts from the contiguous block partition (the
    [schedule(static)] no-chunk deal) with each block split into
    chunk-sized deque entries; owners pop from the front, and a thread
    whose deque is empty steals the back entry of a victim drawn
    uniformly from the non-empty deques using its own splitmix64 stream.
    The number of steals is recorded so the Cole–Ramachandran bound
    (extra FS misses per steal are O(chunk)) is checkable per seed. *)

type kind =
  | Dynamic of { chunk : int }  (** shared-counter chunks of fixed size *)
  | Guided of { min_chunk : int }
      (** shared-counter chunks of [max min_chunk (ceil (remaining/threads))] *)
  | Work_stealing of { chunk : int }
      (** per-thread deques over the block partition, seeded steal order *)

type plan
(** One replayed execution: per-thread iteration sequences plus the
    steal count.  Iterations are normalized [0 .. total-1]. *)

val plan : threads:int -> total:int -> seed:int -> kind -> plan
(** @raise Invalid_argument unless [threads >= 1], [total >= 0] and the
    kind's chunk is [>= 1]. *)

val nth_iter_int : plan -> tid:int -> int -> int
(** [nth_iter_int p ~tid k] is the iteration thread [tid] executes at its
    own position [k], or [-1] past the thread's last iteration
    (allocation-free, mirroring {!Schedule.nth_iter_int}). *)

val max_steps_per_thread : plan -> int
(** Longest per-thread sequence; the lockstep-evaluation depth. *)

val window : plan -> int
(** The dispatch granularity (chunk / min_chunk): the engines count one
    chunk run per [window] lockstep steps, mirroring the static deal. *)

val steals : plan -> int
(** Steal events in this replay (always 0 for dynamic/guided). *)

val iters_of_thread : plan -> tid:int -> int list
(** A thread's iterations in execution order (test-sized inputs). *)

val kind_chunk : kind -> int
(** The kind's dispatch granularity (chunk or min_chunk). *)

val kind_name : kind -> string
(** Canonical spelling, e.g. ["dynamic,1"], ["guided,4"], ["ws,2"] —
    used in diagnostics, SARIF and service cache keys. *)

val pick_victim : Prng.t -> candidates:int array -> int
(** Uniform draw from [candidates] (exposed for the uniformity test).
    @raise Invalid_argument when [candidates] is empty. *)

val of_string :
  string -> ([ `Static of int option | `Kind of kind ], string) result
(** Parse a [--schedule] argument: [static], [dynamic], [guided] or [ws]
    ([work-stealing] accepted), each with an optional [,chunk].  The
    error string names the valid spellings. *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> plan -> unit

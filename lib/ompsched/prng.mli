(** Seeded splitmix64 streams for schedule replay.

    Nondeterministic schedules (dynamic/guided dispatch order, work-stealing
    victim selection) are modeled as deterministic functions of a seed: every
    random draw comes from a stream fully determined by [(seed, index)], so
    the same seed always replays the same plan.  Distinct indices (one per
    thread/deque) give statistically independent streams. *)

type t

val mix : int64 -> int64
(** The splitmix64 finalizer (exposed for stream-independence tests). *)

val next : t -> int64
(** Advance the state by the golden-ratio gamma and finalize. *)

val stream : seed:int -> index:int -> t
(** The stream for [(seed, index)].  Distinct indices are decorrelated by
    finalizing the index before folding the seed in. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

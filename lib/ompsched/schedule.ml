type t = { threads : int; chunk : int; total : int }

let make ~threads ~chunk ~total =
  if threads < 1 then invalid_arg "Schedule.make: threads < 1";
  if chunk < 1 then invalid_arg "Schedule.make: chunk < 1";
  if total < 0 then invalid_arg "Schedule.make: total < 0";
  { threads; chunk; total }

let block_chunk ~threads ~total =
  if threads < 1 then invalid_arg "Schedule.block_chunk: threads < 1";
  max 1 ((total + threads - 1) / threads)

let chunk_index t q = q / t.chunk
let owner t q = chunk_index t q mod t.threads
let chunk_run_of_iter t q = chunk_index t q / t.threads

let nth_iter_int t ~tid k =
  if k < 0 || tid < 0 || tid >= t.threads then -1
  else begin
    let run = k / t.chunk in
    let pos = k mod t.chunk in
    let q = (((run * t.threads) + tid) * t.chunk) + pos in
    if q < t.total then q else -1
  end

let nth_iter_of_thread t ~tid k =
  match nth_iter_int t ~tid k with -1 -> None | q -> Some q

let count_of_thread t ~tid =
  (* full chunks owned by [tid] plus the possibly-partial last one *)
  let rec go k acc =
    match nth_iter_of_thread t ~tid (k * t.chunk) with
    | None -> acc
    | Some q ->
        let in_chunk = min t.chunk (t.total - q) in
        go (k + 1) (acc + in_chunk)
  in
  go 0 0

let iters_of_thread t ~tid =
  let rec go k acc =
    match nth_iter_of_thread t ~tid k with
    | Some q -> go (k + 1) (q :: acc)
    | None ->
        (* the thread's iterations may resume at the next chunk only if the
           current chunk was cut short by [total]; with this scheme a [None]
           within a chunk means we ran off the end of the loop *)
        List.rev acc
  in
  go 0 []

let chunk_runs_total t =
  let per_run = t.threads * t.chunk in
  (t.total + per_run - 1) / per_run

let max_steps_per_thread t =
  let rec go tid acc =
    if tid >= t.threads then acc else go (tid + 1) (max acc (count_of_thread t ~tid))
  in
  go 0 0

let chunks_per_thread t = (max_steps_per_thread t + t.chunk - 1) / t.chunk

let pp ppf t =
  Format.fprintf ppf "static(chunk=%d) over %d iters on %d threads" t.chunk
    t.total t.threads

(* splitmix64: the schedule-replay generator.  The whole state is one
   64-bit word and a stream is derivable from (seed, index) alone, which
   is exactly the determinism-by-seed contract the dispatcher needs: a
   (seed, thread) pair names one reproducible random sequence, and
   distinct threads' streams are decorrelated by running the index
   through the finalizer before folding the seed in. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let stream ~seed ~index =
  let s = mix (Int64.add (mix (Int64.of_int index)) (Int64.of_int seed)) in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* 62 uniform bits; modulo bias is negligible at dispatcher bounds *)
  Int64.to_int (Int64.shift_right_logical (next t) 2) mod bound

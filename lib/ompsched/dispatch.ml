(* Nondeterministic OpenMP schedules made deterministic by seed.

   The engines evaluate a parallel region in lockstep: at step [k] every
   thread executes the [k]-th iteration of its own sequence.  For
   schedule(static) that sequence is the closed-form round-robin deal
   ({!Schedule}); for dynamic, guided and work-stealing schedules it
   depends on runtime timing, so we replay one concrete execution from a
   seed: per-thread virtual clocks advance by a seeded jitter per grabbed
   chunk, and the thread whose clock is lowest grabs next (ties to the
   lowest tid, so the first round is the canonical round-robin and a
   one-thread team or a trip-sized chunk reproduces the static deal
   exactly).  Work stealing starts from the contiguous block partition
   (the schedule(static) no-chunk deal), splits each block into
   chunk-sized deque entries, pops owned work from the front and steals
   from the back of a uniformly drawn non-empty victim. *)

type kind =
  | Dynamic of { chunk : int }
  | Guided of { min_chunk : int }
  | Work_stealing of { chunk : int }

type plan = {
  threads : int;
  total : int;
  window : int;
  iters : int array array;
  max_steps : int;
  steals : int;
}

let kind_chunk = function
  | Dynamic { chunk } | Work_stealing { chunk } -> chunk
  | Guided { min_chunk } -> min_chunk

let kind_name = function
  | Dynamic { chunk } -> Printf.sprintf "dynamic,%d" chunk
  | Guided { min_chunk } -> Printf.sprintf "guided,%d" min_chunk
  | Work_stealing { chunk } -> Printf.sprintf "ws,%d" chunk

(* Virtual-clock tick per iteration: 1024 plus a per-grab jitter drawn
   from the grabbing thread's stream.  The absolute scale is arbitrary;
   only the seeded relative drift between threads matters. *)
let tick_base = 1024
let tick_jitter = 512

(* An extra fixed latency per steal, so stealing is never free and the
   same seed cannot oscillate between two victims at equal clocks. *)
let steal_latency = 257

let pick_victim rng ~candidates =
  let n = Array.length candidates in
  if n = 0 then invalid_arg "Dispatch.pick_victim: no candidates";
  candidates.(Prng.int rng n)

(* Per-thread chunk sequences are accumulated as (lo, len) ranges, most
   recent first, then expanded once into flat iteration arrays. *)
let expand threads seqs counts =
  Array.init threads (fun t ->
      let a = Array.make counts.(t) 0 in
      let pos = ref counts.(t) in
      List.iter
        (fun (lo, len) ->
          for j = len - 1 downto 0 do
            decr pos;
            a.(!pos) <- lo + j
          done)
        seqs.(t);
      a)

let argmin_clock time =
  let t = ref 0 in
  for i = 1 to Array.length time - 1 do
    if time.(i) < time.(!t) then t := i
  done;
  !t

(* Shared-counter dispenser (dynamic and guided): the next chunk always
   starts at the global counter; only which thread grabs it is random. *)
let dispense ~threads ~total ~seed ~len_of =
  let seqs = Array.make threads [] in
  let counts = Array.make threads 0 in
  let time = Array.make threads 0 in
  let streams = Array.init threads (fun tid -> Prng.stream ~seed ~index:tid) in
  let next = ref 0 in
  while !next < total do
    let t = argmin_clock time in
    let remaining = total - !next in
    let len = min remaining (len_of ~remaining) in
    seqs.(t) <- (!next, len) :: seqs.(t);
    counts.(t) <- counts.(t) + len;
    next := !next + len;
    time.(t) <- time.(t) + (len * (tick_base + Prng.int streams.(t) tick_jitter))
  done;
  (expand threads seqs counts, counts)

let steal_run ~threads ~total ~seed ~chunk =
  (* contiguous block partition, each block split into chunk-sized deque
     entries; front/back indices give O(1) pop and steal *)
  let block = Schedule.block_chunk ~threads ~total in
  let deques =
    Array.init threads (fun i ->
        let lo = min total (i * block) in
        let hi = min total ((i + 1) * block) in
        let n = (hi - lo + chunk - 1) / chunk in
        Array.init n (fun k ->
            let s = lo + (k * chunk) in
            (s, min chunk (hi - s))))
  in
  let front = Array.make threads 0 in
  let back = Array.map Array.length deques in
  let nonempty t = front.(t) < back.(t) in
  let seqs = Array.make threads [] in
  let counts = Array.make threads 0 in
  let time = Array.make threads 0 in
  let streams = Array.init threads (fun tid -> Prng.stream ~seed ~index:tid) in
  let remaining = ref total in
  let steals = ref 0 in
  let victims = Array.make threads 0 in
  while !remaining > 0 do
    let t = argmin_clock time in
    let lo, len, cost =
      if nonempty t then begin
        let r = deques.(t).(front.(t)) in
        front.(t) <- front.(t) + 1;
        (fst r, snd r, 0)
      end
      else begin
        let n = ref 0 in
        for v = 0 to threads - 1 do
          if nonempty v then begin
            victims.(!n) <- v;
            incr n
          end
        done;
        if !n = 0 then (* every deque drained mid-scan: impossible while
                          remaining > 0, but keep the loop total *)
          (0, 0, max_int / 2)
        else begin
          let v =
            pick_victim streams.(t) ~candidates:(Array.sub victims 0 !n)
          in
          back.(v) <- back.(v) - 1;
          incr steals;
          let lo, len = deques.(v).(back.(v)) in
          (lo, len, steal_latency)
        end
      end
    in
    if len > 0 then begin
      seqs.(t) <- (lo, len) :: seqs.(t);
      counts.(t) <- counts.(t) + len;
      remaining := !remaining - len
    end;
    time.(t) <-
      time.(t) + cost + (len * (tick_base + Prng.int streams.(t) tick_jitter))
  done;
  (expand threads seqs counts, counts, !steals)

let plan ~threads ~total ~seed kind =
  if threads < 1 then invalid_arg "Dispatch.plan: threads < 1";
  if total < 0 then invalid_arg "Dispatch.plan: total < 0";
  let window = kind_chunk kind in
  if window < 1 then invalid_arg "Dispatch.plan: chunk < 1";
  let iters, counts, steals =
    match kind with
    | Dynamic { chunk } ->
        let iters, counts =
          dispense ~threads ~total ~seed ~len_of:(fun ~remaining:_ -> chunk)
        in
        (iters, counts, 0)
    | Guided { min_chunk } ->
        let iters, counts =
          dispense ~threads ~total ~seed ~len_of:(fun ~remaining ->
              max min_chunk ((remaining + threads - 1) / threads))
        in
        (iters, counts, 0)
    | Work_stealing { chunk } -> steal_run ~threads ~total ~seed ~chunk
  in
  let max_steps = Array.fold_left max 0 counts in
  { threads; total; window; iters; max_steps; steals }

let nth_iter_int p ~tid k =
  if tid < 0 || tid >= p.threads || k < 0 then -1
  else
    let a = p.iters.(tid) in
    if k < Array.length a then a.(k) else -1

let max_steps_per_thread p = p.max_steps
let window p = p.window
let steals p = p.steals
let iters_of_thread p ~tid = Array.to_list p.iters.(tid)

let of_string s =
  let name, chunk =
    match String.index_opt s ',' with
    | None -> (s, None)
    | Some i ->
        let c = String.sub s (i + 1) (String.length s - i - 1) in
        (String.sub s 0 i, Some c)
  in
  let parse_chunk ~default =
    match chunk with
    | None -> Ok default
    | Some c -> (
        match int_of_string_opt (String.trim c) with
        | Some n when n >= 1 -> Ok n
        | _ -> Error (Printf.sprintf "chunk %S is not a positive integer" c))
  in
  match String.trim name with
  | "static" -> (
      match chunk with
      | None -> Ok (`Static None)
      | Some _ -> (
          match parse_chunk ~default:1 with
          | Ok c -> Ok (`Static (Some c))
          | Error e -> Error e))
  | "dynamic" -> (
      match parse_chunk ~default:1 with
      | Ok chunk -> Ok (`Kind (Dynamic { chunk }))
      | Error e -> Error e)
  | "guided" -> (
      match parse_chunk ~default:1 with
      | Ok min_chunk -> Ok (`Kind (Guided { min_chunk }))
      | Error e -> Error e)
  | "ws" | "work-stealing" -> (
      match parse_chunk ~default:1 with
      | Ok chunk -> Ok (`Kind (Work_stealing { chunk }))
      | Error e -> Error e)
  | other ->
      Error
        (Printf.sprintf
           "unknown schedule %S (one of: static, dynamic, guided, ws, each \
            with an optional ,chunk)"
           other)

let pp_kind ppf k = Format.pp_print_string ppf (kind_name k)

let pp ppf p =
  Format.fprintf ppf "plan over %d iters on %d threads (window %d, %d steals)"
    p.total p.threads p.window p.steals

(** OpenMP [schedule(static, chunk)] iteration scheduling.

    Iterations of the parallel loop are numbered [0 .. total-1] (normalized:
    iteration [q] corresponds to induction-variable value
    [lower + q * step]).  Chunks of [chunk] consecutive iterations are dealt
    to threads round-robin, exactly the paper's assumption (§III): chunk [c]
    goes to thread [c mod threads].

    A {e chunk run} (paper §III-E) is one row of the deal: all [threads]
    threads executing one chunk each, i.e. [chunk * threads] iterations. *)

type t = private { threads : int; chunk : int; total : int }

val make : threads:int -> chunk:int -> total:int -> t
(** @raise Invalid_argument unless [threads >= 1], [chunk >= 1],
    [total >= 0]. *)

val block_chunk : threads:int -> total:int -> int
(** The chunk size OpenMP uses for [schedule(static)] {e without} a chunk
    argument: iterations are divided into contiguous blocks of (at most)
    [ceil(total / threads)], one per thread. *)

val owner : t -> int -> int
(** [owner t q] is the thread executing iteration [q]. *)

val chunk_index : t -> int -> int
(** Index of the chunk containing iteration [q]. *)

val chunk_run_of_iter : t -> int -> int
(** Index of the chunk run containing iteration [q]. *)

val nth_iter_of_thread : t -> tid:int -> int -> int option
(** [nth_iter_of_thread t ~tid k] is the iteration a thread executes at its
    own position [k] (0-based, in its execution order), or [None] past the
    thread's last iteration. *)

val nth_iter_int : t -> tid:int -> int -> int
(** Allocation-free {!nth_iter_of_thread}: [-1] instead of [None]. *)

val count_of_thread : t -> tid:int -> int
(** Number of iterations thread [tid] executes in total. *)

val iters_of_thread : t -> tid:int -> int list
(** All iterations of a thread in execution order (test-sized inputs). *)

val chunk_runs_total : t -> int
(** Number of chunk runs needed to cover all iterations (the paper's
    [x_max]). *)

val max_steps_per_thread : t -> int
(** Maximum over threads of [count_of_thread]; the lockstep-evaluation depth. *)

val chunks_per_thread : t -> int
(** Chunks the busiest thread executes:
    [ceil (max_steps_per_thread / chunk)].  Each is one dealt share, so
    this is also that thread's count of cross-chunk jumps plus one. *)

val pp : Format.formatter -> t -> unit

(** Bounded, domain-safe, content-addressed memo cache.

    One cache holds every pipeline stage of the service: entries are
    keyed by [(stage, key)] where [key] is built from content digests
    (source text, arch spec, parameter bindings), so two requests that
    share upstream work — the same source linted twice, the same file
    analyzed under a new arch — meet in the same entry.

    Eviction is LRU over {e all} stages with a bounded entry count: a
    long-running [fsdetect serve] holds the hottest parse trees, lowered
    nests and responses and lets cold corpora age out.  Hits, misses and
    evictions are counted globally and per stage (the per-stage counters
    are how the invalidation tests pin down {e which} stages a given
    digest change re-runs).

    All operations are guarded by one mutex; [find_or_add] computes
    misses {e outside} the lock, so concurrent domains never serialize
    on each other's analyses.  Two domains racing on the same missing
    key may both compute it — both results are identical by construction
    (the pipeline is deterministic), the second insert is dropped. *)

type 'v t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val create : ?capacity:int -> unit -> 'v t
(** [capacity] (default [1024]) bounds the entry count across all
    stages.  @raise Invalid_argument when [capacity < 1]. *)

val find_or_add : 'v t -> stage:string -> key:string -> (unit -> 'v) -> 'v
(** Return the cached value for [(stage, key)], or compute, insert and
    return it.  The computation runs unlocked; an exception it raises
    propagates and caches nothing. *)

val mem : 'v t -> stage:string -> key:string -> bool
(** Presence test (does not touch recency or counters). *)

val stats : 'v t -> stats

val stage_stats : 'v t -> string -> int * int
(** [(hits, misses)] recorded for one stage name ([(0, 0)] for a stage
    never seen). *)

val clear : 'v t -> unit
(** Drop every entry (counters keep accumulating). *)

(** [fsdetect serve] — analysis as a long-running service.

    Newline-delimited JSON-RPC over stdin/stdout: one request object per
    line in, one response object per line out.  Requests are
    [{"id": ..., "method": ..., "params": {...}}]; responses echo the
    id with either a ["result"] or an ["error"] object.  Every analysis
    method shares one {!Api.store}, so repeated and incremental queries
    hit the content-addressed cache and return without re-running the
    pipeline.

    Methods: the six analyses ({!Req.of_json} decodes their params),
    ["batch"] (shard a request list across domains, streaming one
    [{"id", "item": i, "result": ...}] line per entry as it completes,
    then a final [{"id", "done": true, "items": n}]), plus ["ping"],
    ["version"], ["kernels"], ["cache_stats"] and ["shutdown"].

    Requests are handled by a {!Fsmodel.Par_sweep.Pool} of [jobs]
    worker domains; responses are emitted in completion order (with
    [jobs = 1] the server is fully deterministic: FIFO handling, batch
    items streamed in list order).  Malformed JSON, unknown methods and
    bad params produce JSON-RPC error responses — the server never
    crashes on input. *)

val run :
  ?jobs:int ->
  ?capacity:int ->
  ?ic:in_channel ->
  ?oc:out_channel ->
  unit ->
  unit
(** Serve until [ic] (default stdin) reaches EOF or a ["shutdown"]
    request arrives; in-flight requests drain before returning.
    [jobs] defaults to {!Fsmodel.Par_sweep.recommended_domains};
    [capacity] is the cache bound of {!Api.create_store}. *)

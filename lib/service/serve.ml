module J = Analysis.Json
module Pool = Fsmodel.Par_sweep.Pool

let analysis_methods =
  [ "analyze"; "lint"; "explain"; "advise"; "eliminate"; "fix"; "dump" ]

let payload_json (p : Api.payload) =
  J.Obj
    [
      ("output", J.Str p.output); ("err", J.Str p.err); ("code", J.Int p.code);
    ]

(* Every response — results, protocol errors, batch item streams — goes
   through the pool, so with one worker the output order is exactly the
   input order (the protocol goldens diff against that), and with many
   workers the single writer lock keeps lines whole. *)
let run ?jobs ?capacity ?(ic = stdin) ?(oc = stdout) () =
  let jobs =
    match jobs with
    | Some j ->
        if j < 1 then invalid_arg "Serve.run: jobs < 1";
        j
    | None -> Fsmodel.Par_sweep.recommended_domains ()
  in
  let store = Api.create_store ?capacity () in
  let out_lock = Mutex.create () in
  let send json =
    let line = Jsonp.to_line json in
    Mutex.lock out_lock;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_lock
  in
  let respond id fields = send (J.Obj (("id", id) :: fields)) in
  let error_obj code msg =
    J.Obj [ ("code", J.Int code); ("message", J.Str msg) ]
  in
  let error id code msg = respond id [ ("error", error_obj code msg) ] in
  let decode_call r =
    match Jsonp.member "method" r with
    | Some (J.Str m) when List.mem m analysis_methods ->
        let p = Option.value ~default:(J.Obj []) (Jsonp.member "params" r) in
        Req.of_json ~meth:m p
    | Some (J.Str m) -> Error (Printf.sprintf "unknown method %S" m)
    | Some _ -> Error "\"method\" must be a string"
    | None -> Error "missing \"method\""
  in
  let batch id params () =
    match Jsonp.member "requests" params with
    | Some (J.List reqs) ->
        let on_result i = function
          | Ok p -> respond id [ ("item", J.Int i); ("result", payload_json p) ]
          | Error e ->
              respond id [ ("item", J.Int i); ("error", error_obj (-32602) e) ]
        in
        (* One shard per domain: requests fan out over [jobs] domains and
           each result line leaves as soon as its nest is analyzed. *)
        ignore
          (Fsmodel.Par_sweep.map_stream ~domains:jobs ~on_result
             (fun r -> Result.map (Api.exec store) (decode_call r))
             reqs);
        respond id [ ("done", J.Bool true); ("items", J.Int (List.length reqs)) ]
    | Some _ -> error id (-32602) "\"requests\" must be a list"
    | None -> error id (-32602) "missing \"requests\""
  in
  let kernels_json () =
    J.Obj
      [
        ( "kernels",
          J.List
            (List.map
               (fun k ->
                 J.Obj
                   [
                     ("name", J.Str k.Kernels.Kernel.name);
                     ("description", J.Str k.Kernels.Kernel.description);
                     ("func", J.Str k.Kernels.Kernel.func);
                     ("fs_chunk", J.Int k.Kernels.Kernel.fs_chunk);
                     ("nfs_chunk", J.Int k.Kernels.Kernel.nfs_chunk);
                     ("parametric", J.Bool (k.Kernels.Kernel.parametric <> None));
                   ])
               (Kernels.Registry.all ())) );
      ]
  in
  let pool = Pool.create ~domains:jobs () in
  let continue_ = ref true in
  while !continue_ do
    match input_line ic with
    | exception End_of_file -> continue_ := false
    | line when String.trim line = "" -> ()
    | line -> (
        match Jsonp.parse line with
        | Error msg ->
            Pool.submit pool (fun () ->
                error J.Null (-32700) ("parse error: " ^ msg))
        | Ok json -> (
            let id =
              Option.value ~default:J.Null (Jsonp.member "id" json)
            in
            match Jsonp.member "method" json with
            | None ->
                Pool.submit pool (fun () ->
                    error id (-32600) "missing \"method\"")
            | Some (J.Str meth) -> (
                let params =
                  Option.value ~default:(J.Obj []) (Jsonp.member "params" json)
                in
                match meth with
                | "ping" ->
                    Pool.submit pool (fun () ->
                        respond id
                          [ ("result", J.Obj [ ("pong", J.Bool true) ]) ])
                | "version" ->
                    Pool.submit pool (fun () ->
                        respond id
                          [
                            ( "result",
                              J.Obj
                                [
                                  ("name", J.Str "fsdetect");
                                  ("version", J.Str Api.version);
                                  ( "arch",
                                    J.Str
                                      (Req.arch_key
                                         Archspec.Arch.paper_machine) );
                                  ("protocol", J.Int 1);
                                ] );
                          ])
                | "kernels" ->
                    Pool.submit pool (fun () ->
                        respond id [ ("result", kernels_json ()) ])
                | "cache_stats" ->
                    Pool.submit pool (fun () ->
                        respond id [ ("result", Api.stats_json store) ])
                | "shutdown" ->
                    Pool.submit pool (fun () ->
                        respond id
                          [ ("result", J.Obj [ ("ok", J.Bool true) ]) ]);
                    continue_ := false
                | "batch" -> Pool.submit pool (batch id params)
                | m when List.mem m analysis_methods ->
                    Pool.submit pool (fun () ->
                        match Req.of_json ~meth:m params with
                        | Error e -> error id (-32602) e
                        | Ok req ->
                            respond id
                              [ ("result", payload_json (Api.exec store req)) ])
                | m ->
                    Pool.submit pool (fun () ->
                        error id (-32601) (Printf.sprintf "unknown method %S" m))
                )
            | Some _ ->
                Pool.submit pool (fun () ->
                    error id (-32600) "\"method\" must be a string")))
  done;
  Pool.wait pool;
  Pool.shutdown pool

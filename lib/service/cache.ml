(* Hashtbl + intrusive doubly-linked recency list, one mutex.  The DLL
   uses a sentinel node so link/unlink have no edge cases; most-recent
   entries sit right after the sentinel, eviction pops the node right
   before it. *)

type 'v node = {
  full_key : string;
  value : 'v;
  mutable prev : 'v node;
  mutable next : 'v node;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type 'v t = {
  capacity : int;
  table : (string, 'v node) Hashtbl.t;
  mutable sentinel : 'v node option;  (* allocated lazily: 'v has no zero *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  per_stage : (string, int ref * int ref) Hashtbl.t;
  lock : Mutex.t;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create 64;
    sentinel = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    per_stage = Hashtbl.create 8;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let full_key ~stage ~key = stage ^ "\x00" ^ key

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let link_front sentinel node =
  node.prev <- sentinel;
  node.next <- sentinel.next;
  sentinel.next.prev <- node;
  sentinel.next <- node

let sentinel_for t value =
  match t.sentinel with
  | Some s -> s
  | None ->
      (* self-linked dummy carrying an arbitrary value; never looked up *)
      let rec s = { full_key = ""; value; prev = s; next = s } in
      t.sentinel <- Some s;
      s

let stage_counters t stage =
  match Hashtbl.find_opt t.per_stage stage with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace t.per_stage stage c;
      c

let find_or_add t ~stage ~key f =
  let fk = full_key ~stage ~key in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.table fk with
        | Some node ->
            t.hits <- t.hits + 1;
            incr (fst (stage_counters t stage));
            (match t.sentinel with
            | Some s ->
                unlink node;
                link_front s node
            | None -> assert false);
            Some node.value
        | None ->
            t.misses <- t.misses + 1;
            incr (snd (stage_counters t stage));
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = f () in
      locked t (fun () ->
          if not (Hashtbl.mem t.table fk) then begin
            let s = sentinel_for t v in
            let node = { full_key = fk; value = v; prev = s; next = s } in
            link_front s node;
            Hashtbl.replace t.table fk node;
            if Hashtbl.length t.table > t.capacity then begin
              let victim = s.prev in
              unlink victim;
              Hashtbl.remove t.table victim.full_key;
              t.evictions <- t.evictions + 1
            end
          end);
      v

let mem t ~stage ~key =
  locked t (fun () -> Hashtbl.mem t.table (full_key ~stage ~key))

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let stage_stats t stage =
  locked t (fun () ->
      match Hashtbl.find_opt t.per_stage stage with
      | Some (h, m) -> (!h, !m)
      | None -> (0, 0))

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      match t.sentinel with
      | Some s ->
          s.next <- s;
          s.prev <- s
      | None -> ())

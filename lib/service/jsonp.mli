(** JSON parsing and one-line printing for the serve protocol.

    {!Analysis.Json} deliberately ships only the pretty printer the lint
    goldens need; the newline-delimited JSON-RPC protocol of
    [fsdetect serve] additionally needs to {e read} JSON and to emit each
    response as a single line.  Both directions reuse the
    {!Analysis.Json.t} tree so the service layer has exactly one JSON
    representation. *)

val parse : string -> (Analysis.Json.t, string) result
(** Parse one JSON document.  Numbers without ['.'], ['e'] or ['E'] become
    [Int], everything else [Float]; [\uXXXX] escapes are decoded to UTF-8.
    Trailing non-whitespace after the document is an error.  The error
    string names the byte offset of the problem. *)

val to_line : Analysis.Json.t -> string
(** Compact single-line rendering (no newlines, no indentation), suitable
    for one-response-per-line framing.  Strings are escaped with
    {!Analysis.Json.escape}, so embedded newlines stay inside the line. *)

(** {2 Accessors}

    Small total helpers over {!Analysis.Json.t} used by request
    decoding; all return [None] on a shape mismatch. *)

val member : string -> Analysis.Json.t -> Analysis.Json.t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val to_string_opt : Analysis.Json.t -> string option
val to_int_opt : Analysis.Json.t -> int option
val to_bool_opt : Analysis.Json.t -> bool option
val to_list_opt : Analysis.Json.t -> Analysis.Json.t list option

(** Typed analysis requests — the service's wire- and cache-facing
    contract.

    Every CLI analysis subcommand (analyze/lint/explain/advise/
    eliminate/dump) is a pure function of one of these records; the CLI
    builds them from flags, [fsdetect serve] decodes them from JSON-RPC
    params.  {!cache_key} derives the content-addressed response key:
    source digest, arch spec, schedule/params and the analysis kind —
    and nothing else (no file paths, no timestamps), so identical
    content always meets in the cache. *)

type source =
  | Text of { name : string; content : string }
      (** in-memory mini-C source; [name] is only used as the report URI *)
  | Kernel of string  (** a bundled registry kernel *)
  | Sym_kernel of string
      (** a kernel's size-free parametric variant (symbolic lint path) *)

type fail_on = Race | Fs | Never

type exact_mode = Analysis.Depend.exact_mode

val exact_name : exact_mode -> string
(** ["auto"], ["on"], ["off"] — the CLI/JSON spelling. *)

type cost_model = Analysis.Lint.cost_model
(** [`Sim] (engine-backed, default), [`Analytic] (reuse-distance +
    closed form, zero simulator calls) or [`Both]; part of the cache
    key. *)

type kind =
  | Analyze of {
      func : string option;
      threads : int;
      fs_chunk : int option;  (** default: kernel's, or 1 for sources *)
      nfs_chunk : int option;  (** default: kernel's, or 16 for sources *)
      predict : int option;
      contention : bool;
      exact : exact_mode;
      exact_budget : int;
      cost_model : cost_model;
      json : bool;  (** structured (JSON) report instead of text *)
    }
  | Lint of {
      threads : int;
      chunk : int option;
      json : bool;
      fixits : bool;
      params : (string * int) list;
      fail_on : fail_on;
      exact : exact_mode;  (** exact dependence tier (see {!Analysis.Lint}) *)
      exact_budget : int;
      cost_model : cost_model;
      sched : Ompsched.Dispatch.kind option;
          (** replay a nondeterministic schedule ([--schedule]); [None]
              follows the pragma *)
      seeds : int;  (** seed-set size for distribution-valued verdicts *)
    }
  | Explain of {
      func : string option;
      threads : int;
      chunk : int option;
      params : (string * int) list;
      engine : Fsmodel.Model.engine;
      format : [ `Text | `Heatmap | `Trace ];
      top : int;
      trace_cap : int option;
      sched : Ompsched.Dispatch.kind option;
          (** replay a nondeterministic schedule; attribution aggregates
              across the seed set *)
      seeds : int;
    }
  | Advise of { func : string option; threads : int; jobs : int option }
  | Eliminate of { func : string option; threads : int }
  | Fix of {
      func : string option;
      threads : int;
      jobs : int option;
          (** parallelizes the advisor sweep only; not in the cache key *)
      json : bool;  (** structured verdict instead of the text report *)
    }
      (** materialize the advised fix and re-verify it (see
          {!Analysis.Fixer}) *)
  | Dump of { threads : int }

type t = { source : source; arch : Archspec.Arch.t; kind : kind }

val v : ?arch:Archspec.Arch.t -> source -> kind -> t
(** [arch] defaults to {!Archspec.Arch.paper_machine} (what every CLI
    subcommand uses). *)

val lint_defaults : source -> t
(** The CLI's default lint request (8 threads, pragma chunk, fix-its
    on): what [fsdetect lint] runs with no flags. *)

val arch_key : Archspec.Arch.t -> string
(** Canonical digest of an arch spec covering every field that can
    change an analysis (geometry, latencies, per-class core model). *)

val source_text : source -> (string * string, string) result
(** [(uri, content)] the source resolves to: the display URI the CLI
    would use ([FILE], ["kernel:NAME"], ["kernel:NAME:parametric"]) and
    the mini-C text.  [Error msg] when a kernel name is unknown or has
    no parametric variant; [msg] matches the CLI diagnostic. *)

val source_digest : source -> (string, string) result
(** Hex digest of the source {e content} (kernels resolve to their
    bundled text).  [Error msg] when a kernel name is unknown or has no
    parametric variant; [msg] matches the CLI diagnostic. *)

val cache_key : t -> (string, string) result
(** The response-stage cache key (kind tag + source digest + arch key +
    every option that affects output bytes). *)

val method_name : kind -> string
(** Protocol method the kind answers to ("analyze", "lint", ...). *)

val of_json : meth:string -> Analysis.Json.t -> (t, string) result
(** Decode JSON-RPC [params] for method [meth].  Source is given as
    ["source"] (+ optional ["name"]) or ["kernel"] (+ optional
    ["parametric": true]); ["arch"] is ["paper"] (default) or
    ["small_test"], with an optional ["line_bytes"] override; remaining
    fields mirror the CLI flags of the subcommand. *)

(** The analysis service: every subcommand as a pure
    [request -> response] function over a shared staged memo cache.

    A {!payload} is exactly what the CLI process would do with the
    request: [output] is the bytes for stdout, [err] the bytes for
    stderr, [code] the exit code.  [bin/fsdetect.ml] subcommands are
    thin wrappers that print the three; [fsdetect serve] encodes them
    into JSON-RPC results.  Responses are deterministic functions of the
    request record — same request, same bytes, whether computed cold or
    returned from cache.

    {b Staging.}  One {!store} holds four content-addressed stages:
    ["parse"] (source digest → AST), ["typecheck"] (source digest →
    checked program), ["lower"]/["lower_all"] (source digest + function
    + parameter bindings → loop IR) and ["resp"] (full request key →
    payload).  A request that misses the response stage still reuses
    every upstream stage another request already paid for: re-linting an
    edited file re-parses, but re-linting the same file under a new arch
    spec or chunk size reuses parse, typecheck and lowering. *)

type store
(** A bounded LRU over all stages; safe to share across domains. *)

val create_store : ?capacity:int -> unit -> store
(** [capacity] (default [1024] entries) is the {!Cache} bound. *)

val stats : store -> Cache.stats
val stage_stats : store -> string -> int * int
(** [(hits, misses)] for one of the stage names above. *)

val clear : store -> unit

val version : string
(** Tool version, e.g. ["1.0.0"]; printed by [fsdetect --version] and
    returned by the serve ["version"] method. *)

val version_string : string
(** [version] plus the active default arch key
    (["1.0.0+arch.<digest12>"]) — pins which machine model the reported
    numbers default to. *)

type payload = { output : string; err : string; code : int }
(** [output]/[err] are the exact stdout/stderr bytes of the equivalent
    CLI invocation; [code] its exit code ([0] success, [1] analysis or
    input failure / [--fail-on] gate, [3] internal invariant breach). *)

val exec : store -> Req.t -> payload
(** Run (or recall) one request.  Never raises: analysis-level errors
    (parse/type/lowering failures, unknown kernels, unbound parameters)
    come back as payloads with a non-zero [code] and the CLI's
    diagnostic in [err]. *)

val stats_json : store -> Analysis.Json.t
(** Cache counters as a JSON object (the serve ["cache_stats"] method). *)

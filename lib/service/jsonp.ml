(* Recursive-descent JSON reader and a compact printer over the
   Analysis.Json tree.  The reader is strict where the protocol needs it
   to be (a malformed request must produce an error response, never a
   crash) and small everywhere else: no streaming, documents arrive one
   per line and are a few kilobytes at most. *)

open Analysis

exception Bad of int * string

let fail pos msg = raise (Bad (pos, msg))

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  let n = String.length st.s in
  while
    st.pos < n
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st.pos (Printf.sprintf "expected '%c'" c)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

(* \uXXXX -> UTF-8 bytes; surrogate pairs combine, unpaired surrogates
   encode as-is (the protocol only ever carries ASCII, this is
   completeness, not a unicode stack) *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let read_hex4 st =
  if st.pos + 4 > String.length st.s then fail st.pos "truncated \\u escape";
  let code = ref 0 in
  for k = 0 to 3 do
    let v = hex_val st.s.[st.pos + k] in
    if v < 0 then fail (st.pos + k) "bad \\u escape";
    code := (!code * 16) + v
  done;
  st.pos <- st.pos + 4;
  !code

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | None -> fail st.pos "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let code = read_hex4 st in
                if
                  code >= 0xd800 && code <= 0xdbff
                  && st.pos + 2 <= String.length st.s
                  && st.s.[st.pos] = '\\'
                  && st.s.[st.pos + 1] = 'u'
                then begin
                  let save = st.pos in
                  st.pos <- st.pos + 2;
                  let lo = read_hex4 st in
                  if lo >= 0xdc00 && lo <= 0xdfff then
                    add_utf8 buf
                      (0x10000 + ((code - 0xd800) lsl 10) + (lo - 0xdc00))
                  else begin
                    st.pos <- save;
                    add_utf8 buf code
                  end
                end
                else add_utf8 buf code
            | c -> fail (st.pos - 1) (Printf.sprintf "bad escape '\\%c'" c)));
        go ()
    | Some c when Char.code c < 0x20 -> fail st.pos "control byte in string"
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let n = String.length st.s in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < n && is_num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
  in
  if is_float then
    match float_of_string_opt tok with
    | Some f -> Json.Float f
    | None -> fail start ("bad number " ^ tok)
  else
    match int_of_string_opt tok with
    | Some i -> Json.Int i
    | None -> fail start ("bad number " ^ tok)

let expect_word st w v =
  let n = String.length w in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = w
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st.pos ("expected " ^ w)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '"' -> Json.Str (parse_string st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Json.Obj []
      end
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              go ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st.pos "expected ',' or '}'"
        in
        go ();
        Json.Obj (List.rev !fields)
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Json.List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              go ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st.pos "expected ',' or ']'"
        in
        go ();
        Json.List (List.rev !items)
      end
  | Some 't' -> expect_word st "true" (Json.Bool true)
  | Some 'f' -> expect_word st "false" (Json.Bool false)
  | Some 'n' -> expect_word st "null" Json.Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected '%c'" c)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing input at byte %d" st.pos)
      else Ok v
  | exception Bad (pos, msg) ->
      Error (Printf.sprintf "%s at byte %d" msg pos)

let rec add_line buf t =
  match t with
  | Json.Null -> Buffer.add_string buf "null"
  | Json.Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Json.Int n -> Buffer.add_string buf (string_of_int n)
  | Json.Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Json.Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (Json.escape s);
      Buffer.add_char buf '"'
  | Json.List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add_line buf item)
        items;
      Buffer.add_char buf ']'
  | Json.Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (Json.escape k);
          Buffer.add_string buf "\":";
          add_line buf v)
        fields;
      Buffer.add_char buf '}'

let to_line t =
  let buf = Buffer.create 256 in
  add_line buf t;
  Buffer.contents buf

let member key = function
  | Json.Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function Json.Str s -> Some s | _ -> None
let to_int_opt = function Json.Int i -> Some i | _ -> None
let to_bool_opt = function Json.Bool b -> Some b | _ -> None
let to_list_opt = function Json.List l -> Some l | _ -> None

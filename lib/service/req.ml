type source =
  | Text of { name : string; content : string }
  | Kernel of string
  | Sym_kernel of string

type fail_on = Race | Fs | Never

type exact_mode = Analysis.Depend.exact_mode

let exact_name = function `Auto -> "auto" | `On -> "on" | `Off -> "off"

type cost_model = Analysis.Lint.cost_model

type kind =
  | Analyze of {
      func : string option;
      threads : int;
      fs_chunk : int option;
      nfs_chunk : int option;
      predict : int option;
      contention : bool;
      exact : exact_mode;
      exact_budget : int;
      cost_model : cost_model;
      json : bool;
    }
  | Lint of {
      threads : int;
      chunk : int option;
      json : bool;
      fixits : bool;
      params : (string * int) list;
      fail_on : fail_on;
      exact : exact_mode;
      exact_budget : int;
      cost_model : cost_model;
      sched : Ompsched.Dispatch.kind option;
      seeds : int;
    }
  | Explain of {
      func : string option;
      threads : int;
      chunk : int option;
      params : (string * int) list;
      engine : Fsmodel.Model.engine;
      format : [ `Text | `Heatmap | `Trace ];
      top : int;
      trace_cap : int option;
      sched : Ompsched.Dispatch.kind option;
      seeds : int;
    }
  | Advise of { func : string option; threads : int; jobs : int option }
  | Eliminate of { func : string option; threads : int }
  | Fix of {
      func : string option;
      threads : int;
      jobs : int option;
      json : bool;
    }
  | Dump of { threads : int }

type t = { source : source; arch : Archspec.Arch.t; kind : kind }

let v ?(arch = Archspec.Arch.paper_machine) source kind =
  { source; arch; kind }

let lint_defaults source =
  v source
    (Lint
       {
         threads = 8;
         chunk = None;
         json = false;
         fixits = true;
         params = [];
         fail_on = Race;
         exact = `Auto;
         exact_budget = Analysis.Depend.default_exact_budget;
         cost_model = `Sim;
         sched = None;
         seeds = 8;
       })

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

(* Latency.t holds per-class functions, so the arch cannot be keyed by
   marshalling; spell out every field that can steer an analysis. *)
let arch_key (a : Archspec.Arch.t) =
  let buf = Buffer.create 256 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let geom (g : Archspec.Cache_geom.t) =
    bpf "%s/%d/%d/%d/%d;" g.Archspec.Cache_geom.name
      g.Archspec.Cache_geom.size_bytes g.Archspec.Cache_geom.line_bytes
      g.Archspec.Cache_geom.associativity g.Archspec.Cache_geom.hit_latency
  in
  bpf "%s;%d;%d;%h;" a.Archspec.Arch.name a.Archspec.Arch.cores
    a.Archspec.Arch.cores_per_socket a.Archspec.Arch.freq_ghz;
  bpf "%s/%d" a.Archspec.Arch.core.Archspec.Latency.name
    a.Archspec.Arch.core.Archspec.Latency.issue_width;
  List.iter
    (fun c ->
      bpf "/%d:%d"
        (a.Archspec.Arch.core.Archspec.Latency.latency c)
        (a.Archspec.Arch.core.Archspec.Latency.units_per_cycle c))
    Archspec.Latency.all_classes;
  bpf ";";
  geom a.Archspec.Arch.l1;
  geom a.Archspec.Arch.l2;
  geom a.Archspec.Arch.l3;
  bpf "%d;%h;%d;%d;%d;%d" a.Archspec.Arch.mem_latency
    a.Archspec.Arch.mem_bandwidth_bytes_per_cycle
    a.Archspec.Arch.coherence_latency a.Archspec.Arch.tlb_entries
    a.Archspec.Arch.page_bytes a.Archspec.Arch.tlb_miss_latency;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let unknown_kernel k =
  Printf.sprintf "unknown kernel %S (try: %s)" k
    (String.concat ", " (Kernels.Registry.names ()))

let source_text source =
  match source with
  | Text { name; content } -> Ok (name, content)
  | Kernel k -> (
      match Kernels.Registry.find k with
      | Some kern -> Ok ("kernel:" ^ k, kern.Kernels.Kernel.source)
      | None -> Error (unknown_kernel k))
  | Sym_kernel k -> (
      match Kernels.Registry.find k with
      | Some { Kernels.Kernel.parametric = Some p; _ } ->
          Ok ("kernel:" ^ k ^ ":parametric", p.Kernels.Kernel.psource)
      | Some _ ->
          Error (Printf.sprintf "kernel %s has no parametric variant" k)
      | None -> Error (unknown_kernel k))

let source_digest source =
  Result.map
    (fun (_, content) -> Digest.to_hex (Digest.string content))
    (source_text source)

let params_key params =
  String.concat ";"
    (List.map (fun (k, v) -> k ^ "=" ^ string_of_int v) params)

let opt_int = function None -> "-" | Some i -> string_of_int i
let opt_str = function None -> "-" | Some s -> s

(* the schedule component of a cache key: distribution output depends on
   both the replayed kind and the seed-set size *)
let sched_key sched seeds =
  Printf.sprintf "%s/%d"
    (match sched with
    | None -> "-"
    | Some k -> Ompsched.Dispatch.kind_name k)
    seeds

let kind_key = function
  | Analyze
      {
        func;
        threads;
        fs_chunk;
        nfs_chunk;
        predict;
        contention;
        exact;
        exact_budget;
        cost_model;
        json;
      } ->
      Printf.sprintf "analyze:%s:%d:%s:%s:%s:%b:%s:%d:%s:%b" (opt_str func)
        threads (opt_int fs_chunk) (opt_int nfs_chunk) (opt_int predict)
        contention (exact_name exact) exact_budget
        (Analysis.Lint.cost_model_name cost_model)
        json
  | Lint
      {
        threads;
        chunk;
        json;
        fixits;
        params;
        fail_on;
        exact;
        exact_budget;
        cost_model;
        sched;
        seeds;
      } ->
      Printf.sprintf "lint:%d:%s:%b:%b:%s:%s:%s:%d:%s:%s" threads
        (opt_int chunk) json fixits (params_key params)
        (match fail_on with Race -> "race" | Fs -> "fs" | Never -> "never")
        (exact_name exact) exact_budget
        (Analysis.Lint.cost_model_name cost_model)
        (sched_key sched seeds)
  | Explain
      {
        func;
        threads;
        chunk;
        params;
        engine;
        format;
        top;
        trace_cap;
        sched;
        seeds;
      } ->
      Printf.sprintf "explain:%s:%d:%s:%s:%s:%s:%d:%s:%s" (opt_str func)
        threads (opt_int chunk) (params_key params)
        (match engine with `Fast -> "fast" | `Reference -> "reference")
        (match format with
        | `Text -> "text"
        | `Heatmap -> "heatmap"
        | `Trace -> "trace")
        top (opt_int trace_cap) (sched_key sched seeds)
  | Advise { func; threads; jobs = _ } ->
      (* jobs only parallelizes the sweep; results are identical *)
      Printf.sprintf "advise:%s:%d" (opt_str func) threads
  | Eliminate { func; threads } ->
      Printf.sprintf "eliminate:%s:%d" (opt_str func) threads
  | Fix { func; threads; jobs = _; json } ->
      (* jobs only parallelizes the advisor sweep; results are identical *)
      Printf.sprintf "fix:%s:%d:%b" (opt_str func) threads json
  | Dump { threads } -> Printf.sprintf "dump:%d" threads

(* The lint report URI renders into the output text, so two sources with
   equal content but different display names must not share a response
   entry; fold the URI in alongside the content digest. *)
let cache_key t =
  Result.map
    (fun (uri, content) ->
      Printf.sprintf "%s|%s|%s|%s"
        (Digest.to_hex (Digest.string content))
        (Digest.to_hex (Digest.string uri))
        (arch_key t.arch) (kind_key t.kind))
    (source_text t.source)

let method_name = function
  | Analyze _ -> "analyze"
  | Lint _ -> "lint"
  | Explain _ -> "explain"
  | Advise _ -> "advise"
  | Eliminate _ -> "eliminate"
  | Fix _ -> "fix"
  | Dump _ -> "dump"

(* ------------------------------------------------------------------ *)
(* JSON decoding                                                       *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field_int params name default =
  match Jsonp.member name params with
  | None -> Ok default
  | Some j -> (
      match Jsonp.to_int_opt j with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S must be an integer" name))

let field_int_opt params name =
  match Jsonp.member name params with
  | None | Some Analysis.Json.Null -> Ok None
  | Some j -> (
      match Jsonp.to_int_opt j with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "field %S must be an integer" name))

let field_bool params name default =
  match Jsonp.member name params with
  | None -> Ok default
  | Some j -> (
      match Jsonp.to_bool_opt j with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %S must be a boolean" name))

let field_str_opt params name =
  match Jsonp.member name params with
  | None | Some Analysis.Json.Null -> Ok None
  | Some j -> (
      match Jsonp.to_string_opt j with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "field %S must be a string" name))

let field_enum params name default table =
  let* s = field_str_opt params name in
  match s with
  | None -> Ok default
  | Some s -> (
      match List.assoc_opt s table with
      | Some v -> Ok v
      | None ->
          Error
            (Printf.sprintf "field %S must be one of: %s" name
               (String.concat ", " (List.map fst table))))

(* {"n": 1024, "m": 8} -> [("n", 1024); ("m", 8)] *)
let field_params params name =
  match Jsonp.member name params with
  | None -> Ok []
  | Some (Analysis.Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Jsonp.to_int_opt v with
          | Some i -> Ok (acc @ [ (k, i) ])
          | None ->
              Error
                (Printf.sprintf "field %S: binding %S must be an integer"
                   name k))
        (Ok []) fields
  | Some _ ->
      Error (Printf.sprintf "field %S must be an object of integers" name)

let decode_source params =
  let* src = field_str_opt params "source" in
  let* kern = field_str_opt params "kernel" in
  let* parametric = field_bool params "parametric" false in
  match (src, kern) with
  | Some content, None ->
      let* name = field_str_opt params "name" in
      Ok (Text { name = Option.value ~default:"<request>" name; content })
  | None, Some k -> Ok (if parametric then Sym_kernel k else Kernel k)
  | Some _, Some _ -> Error "give either \"source\" or \"kernel\", not both"
  | None, None -> Error "missing \"source\" or \"kernel\""

let decode_arch params =
  let* base =
    field_enum params "arch" Archspec.Arch.paper_machine
      [
        ("paper", Archspec.Arch.paper_machine);
        ("small_test", Archspec.Arch.small_test_machine);
      ]
  in
  let* line = field_int_opt params "line_bytes" in
  match line with
  | None -> Ok base
  | Some b -> (
      try Ok (Archspec.Arch.with_line_bytes base b)
      with Invalid_argument m -> Error m)

let decode_cost_model params =
  field_enum params "cost_model" `Sim
    [ ("sim", `Sim); ("analytic", `Analytic); ("both", `Both) ]

(* "schedule": "dynamic,2" | "guided" | "ws,4" | "static".  Static is
   the default path (use "chunk" for a static chunk), so it maps to no
   replayed kind. *)
let decode_sched params =
  let* s = field_str_opt params "schedule" in
  match s with
  | None -> Ok None
  | Some s -> (
      match Ompsched.Dispatch.of_string s with
      | Ok (`Kind k) -> Ok (Some k)
      | Ok (`Static None) -> Ok None
      | Ok (`Static (Some _)) ->
          Error
            "field \"schedule\": use \"chunk\" for a static chunk \
             (\"schedule\" takes static without one)"
      | Error m -> Error (Printf.sprintf "field \"schedule\": %s" m))

let decode_seeds params =
  let* seeds = field_int params "seeds" 8 in
  if seeds < 1 then Error "field \"seeds\" must be >= 1" else Ok seeds

let decode_exact params =
  let* exact =
    field_enum params "exact" `Auto
      [ ("auto", `Auto); ("on", `On); ("off", `Off) ]
  in
  let* exact_budget =
    field_int params "exact_budget" Analysis.Depend.default_exact_budget
  in
  Ok (exact, exact_budget)

let of_json ~meth params =
  let* source = decode_source params in
  let* arch = decode_arch params in
  let* threads = field_int params "threads" 8 in
  let* kind =
    match meth with
    | "analyze" ->
        let* func = field_str_opt params "func" in
        let* fs_chunk = field_int_opt params "fs_chunk" in
        let* nfs_chunk = field_int_opt params "nfs_chunk" in
        let* predict = field_int_opt params "predict" in
        let* contention = field_bool params "contention" false in
        let* exact, exact_budget = decode_exact params in
        let* cost_model = decode_cost_model params in
        let* json = field_bool params "json" false in
        Ok
          (Analyze
             {
               func;
               threads;
               fs_chunk;
               nfs_chunk;
               predict;
               contention;
               exact;
               exact_budget;
               cost_model;
               json;
             })
    | "lint" ->
        let* chunk = field_int_opt params "chunk" in
        let* json = field_bool params "json" false in
        let* fixits = field_bool params "fixits" true in
        let* bindings = field_params params "params" in
        let* fail_on =
          field_enum params "fail_on" Race
            [ ("race", Race); ("fs", Fs); ("never", Never) ]
        in
        let* exact, exact_budget = decode_exact params in
        let* cost_model = decode_cost_model params in
        let* sched = decode_sched params in
        let* seeds = decode_seeds params in
        Ok
          (Lint
             {
               threads;
               chunk;
               json;
               fixits;
               params = bindings;
               fail_on;
               exact;
               exact_budget;
               cost_model;
               sched;
               seeds;
             })
    | "explain" ->
        let* func = field_str_opt params "func" in
        let* chunk = field_int_opt params "chunk" in
        let* bindings = field_params params "params" in
        let* engine =
          field_enum params "engine" `Fast
            [ ("fast", `Fast); ("reference", `Reference) ]
        in
        let* format =
          field_enum params "format" `Text
            [ ("text", `Text); ("heatmap", `Heatmap); ("trace", `Trace) ]
        in
        let* top = field_int params "top" 3 in
        let* trace_cap = field_int_opt params "trace_cap" in
        let* sched = decode_sched params in
        let* seeds = decode_seeds params in
        Ok
          (Explain
             {
               func;
               threads;
               chunk;
               params = bindings;
               engine;
               format;
               top;
               trace_cap;
               sched;
               seeds;
             })
    | "advise" ->
        let* func = field_str_opt params "func" in
        let* jobs = field_int_opt params "jobs" in
        Ok (Advise { func; threads; jobs })
    | "eliminate" ->
        let* func = field_str_opt params "func" in
        Ok (Eliminate { func; threads })
    | "fix" ->
        let* func = field_str_opt params "func" in
        let* jobs = field_int_opt params "jobs" in
        let* json = field_bool params "json" false in
        Ok (Fix { func; threads; jobs; json })
    | "dump" -> Ok (Dump { threads })
    | m -> Error (Printf.sprintf "unknown method %S" m)
  in
  Ok { source; arch; kind }

(* Request execution over the staged cache.

   The output-byte contract with bin/fsdetect.ml is load-bearing: the
   golden CLI transcripts and lint goldens must not change when the
   subcommands become wrappers over this module.  Where the CLI printed
   through Format.printf, the same format strings run through
   Format.asprintf here (fresh formatters share the default margin, so
   the rendering is identical); where it printed errors and exited, the
   same message lands in [err] with the same exit code. *)

type payload = { output : string; err : string; code : int }

(* Tool identity: surfaced by [fsdetect --version] and the serve
   "version" method.  The arch key pins the default machine model the
   reported numbers are computed against. *)
let version = "1.0.0"

let version_string =
  version ^ "+arch."
  ^ String.sub (Req.arch_key Archspec.Arch.paper_machine) 0 12

type value =
  | V_ast of Minic.Ast.program
  | V_checked of Minic.Typecheck.checked
  | V_nest of Loopir.Loop_nest.t
  | V_nests of Loopir.Loop_nest.t list
  | V_payload of payload

type store = value Cache.t

let create_store ?capacity () : store = Cache.create ?capacity ()
let stats = Cache.stats
let stage_stats = Cache.stage_stats
let clear = Cache.clear

let params_key params =
  String.concat ";"
    (List.map (fun (k, v) -> k ^ "=" ^ string_of_int v) params)

(* Stage accessors.  The expect_* mismatches are unreachable: every
   stage writes exactly one constructor and stage names partition the
   key space. *)

let expect_ast = function V_ast a -> a | _ -> assert false
let expect_checked = function V_checked c -> c | _ -> assert false
let expect_nest = function V_nest n -> n | _ -> assert false
let expect_nests = function V_nests n -> n | _ -> assert false
let expect_payload = function V_payload p -> p | _ -> assert false

let ast store ~digest ~text =
  expect_ast
    (Cache.find_or_add store ~stage:"parse" ~key:digest (fun () ->
         V_ast (Minic.Parser.parse_program text)))

let checked store ~digest ~text =
  expect_checked
    (Cache.find_or_add store ~stage:"typecheck" ~key:digest (fun () ->
         V_checked (Minic.Typecheck.check_program (ast store ~digest ~text))))

let lower store ~digest ~checked ~func ~params =
  let key = Printf.sprintf "%s:%s:%s" digest func (params_key params) in
  expect_nest
    (Cache.find_or_add store ~stage:"lower" ~key (fun () ->
         V_nest (Loopir.Lower.lower checked ~func ~params)))

let lower_all store ~digest ~checked ~func ~params =
  let key = Printf.sprintf "%s:%s:%s" digest func (params_key params) in
  expect_nests
    (Cache.find_or_add store ~stage:"lower_all" ~key (fun () ->
         V_nests (Loopir.Lower.lower_all checked ~func ~params)))

(* ------------------------------------------------------------------ *)
(* Error translation (the CLI's `wrap`, as data)                       *)
(* ------------------------------------------------------------------ *)

let fail buf msg = { output = Buffer.contents buf; err = msg; code = 1 }

let guard buf f =
  try f () with
  | Minic.Parser.Error (m, l) ->
      fail buf (Printf.sprintf "parse error (line %d): %s\n" l m)
  | Minic.Lexer.Error (m, l) ->
      fail buf (Printf.sprintf "lex error (line %d): %s\n" l m)
  | Minic.Preproc.Error (m, l) ->
      fail buf (Printf.sprintf "preprocessor error (line %d): %s\n" l m)
  | Minic.Typecheck.Type_error m ->
      fail buf (Printf.sprintf "type error: %s\n" m)
  | Loopir.Lower.Lower_error m ->
      fail buf (Printf.sprintf "analysis error: %s\n" m)
  | Loopir.Expr_eval.Unbound v ->
      fail buf
        (Printf.sprintf
           "analysis error: unbound identifier '%s' (bind it with -p \
            %s=VAL)\n"
           v v)

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let kernel_of_source = function
  | Req.Kernel k | Req.Sym_kernel k -> Kernels.Registry.find k
  | Req.Text _ -> None

let func_for store ~digest ~text req = function
  | Some f -> Ok f
  | None -> (
      match kernel_of_source req.Req.source with
      | Some k -> Ok k.Kernels.Kernel.func
      | None -> (
          let c = checked store ~digest ~text in
          match
            Loopir.Lower.find_parallel_functions c.Minic.Typecheck.prog
          with
          | [ one ] -> Ok one
          | [] -> Error "no function with an omp parallel for; use --func"
          | several ->
              Error
                (Printf.sprintf "several parallel functions (%s); use --func"
                   (String.concat ", " several))))

(* One line per reference pair: verdict, deciding backend, witness. *)
let dependence_summary ~line_bytes ~threads ~exact ~exact_budget nest =
  match
    Analysis.Depend.pairs ~line_bytes
      ~params:[ ("num_threads", threads) ]
      ~exact ~exact_budget nest
  with
  | [] -> ""
  | pairs ->
      let b = Buffer.create 256 in
      Buffer.add_string b "dependence:\n";
      List.iter
        (fun (p : Analysis.Depend.pair) ->
          Buffer.add_string b
            (Printf.sprintf "  %s vs %s: %s [%s%s]%s\n"
               p.Analysis.Depend.a.Loopir.Array_ref.repr
               p.Analysis.Depend.b.Loopir.Array_ref.repr
               (Analysis.Depend.verdict_name p.Analysis.Depend.verdict)
               (Analysis.Depend.backend_name
                  p.Analysis.Depend.ev.Analysis.Depend.ev_backend)
               (if p.Analysis.Depend.ev.Analysis.Depend.ev_must then ", must"
                else "")
               (match p.Analysis.Depend.ev.Analysis.Depend.ev_witness with
               | Some w ->
                   " witness " ^ Analysis.Depend.witness_to_string w
               | None -> "")))
        pairs;
      Buffer.contents b

(* JSON views of the analyze pieces (the [--format json] path). *)

let breakdown_json (b : Costmodel.Total_cost.breakdown) =
  let open Analysis.Json in
  Obj
    [
      ("machineCycles", Float b.Costmodel.Total_cost.machine_cycles);
      ("cacheCycles", Float b.Costmodel.Total_cost.cache_cycles);
      ("tlbCycles", Float b.Costmodel.Total_cost.tlb_cycles);
      ("contentionCycles", Float b.Costmodel.Total_cost.contention_cycles);
      ( "parallelOverheadCycles",
        Float b.Costmodel.Total_cost.parallel_overhead_cycles );
      ("loopOverheadCycles", Float b.Costmodel.Total_cost.loop_overhead_cycles);
      ( "falseSharingCycles",
        Float b.Costmodel.Total_cost.false_sharing_cycles );
      ("totalCycles", Float b.Costmodel.Total_cost.total_cycles);
      ("seconds", Float b.Costmodel.Total_cost.seconds);
      ("itersPerThread", Int b.Costmodel.Total_cost.iters_per_thread);
      ("regions", Int b.Costmodel.Total_cost.regions);
    ]

let eq1_json (e : Costmodel.Total_cost.eq1) =
  let open Analysis.Json in
  Obj
    [
      ("loopCycles", Float e.Costmodel.Total_cost.loop_c);
      ("cacheCycles", Float e.Costmodel.Total_cost.cache_c);
      ("machineCycles", Float e.Costmodel.Total_cost.machine_c);
      ("fsCycles", Float e.Costmodel.Total_cost.fs_c);
      ("totalCycles", Float e.Costmodel.Total_cost.total);
    ]

let prediction_json (p : Analysis.Reuse.prediction) =
  let open Analysis.Json in
  Obj
    [
      ("threads", Int p.Analysis.Reuse.threads);
      ("accesses", Float p.Analysis.Reuse.accesses);
      ("l1Hits", Float p.Analysis.Reuse.l1_hits);
      ("l2Hits", Float p.Analysis.Reuse.l2_hits);
      ("l3Hits", Float p.Analysis.Reuse.l3_hits);
      ("c2cTransfers", Float p.Analysis.Reuse.c2c_transfers);
      ("memFetches", Float p.Analysis.Reuse.mem_fetches);
      ("missRate", Float p.Analysis.Reuse.miss_rate);
      ("cacheCyclesPerThread", Float p.Analysis.Reuse.cache_cycles);
      ( "groups",
        List
          (List.map
             (fun (g : Analysis.Reuse.group_profile) ->
               Obj
                 [
                   ("leader", Str g.Analysis.Reuse.leader_repr);
                   ("members", Int g.Analysis.Reuse.members);
                   ("hasWrite", Bool g.Analysis.Reuse.has_write);
                   ("sigma", Int g.Analysis.Reuse.sigma);
                   ( "bins",
                     List
                       (List.map
                          (fun (b : Analysis.Reuse.bin) ->
                            Obj
                              [
                                ("label", Str b.Analysis.Reuse.label);
                                ( "distance",
                                  match b.Analysis.Reuse.distance with
                                  | Some d -> Int d
                                  | None -> Null );
                                ("count", Float b.Analysis.Reuse.count);
                                ( "level",
                                  Str
                                    (Analysis.Reuse.level_name
                                       b.Analysis.Reuse.level) );
                              ])
                          g.Analysis.Reuse.bins) );
                 ])
             p.Analysis.Reuse.groups) );
    ]

let analytic_json (a : Analysis.Reuse.analytic) =
  let open Analysis.Json in
  Obj
    [
      ("prediction", prediction_json a.Analysis.Reuse.prediction);
      ("breakdown", breakdown_json a.Analysis.Reuse.breakdown);
      ("eq1", eq1_json a.Analysis.Reuse.eq1);
      ( "fsCases",
        match a.Analysis.Reuse.fs_cases with Some n -> Int n | None -> Null );
      ("fsNote", Str a.Analysis.Reuse.fs_note);
      ( "fsPercent",
        Float
          (Costmodel.Total_cost.fs_percent ~fs:a.Analysis.Reuse.breakdown) );
    ]

let dependence_json ~line_bytes ~threads ~exact ~exact_budget nest =
  let open Analysis.Json in
  match
    Analysis.Depend.pairs ~line_bytes
      ~params:[ ("num_threads", threads) ]
      ~exact ~exact_budget nest
  with
  | pairs ->
      List
        (List.map
           (fun (p : Analysis.Depend.pair) ->
             Obj
               [
                 ("a", Str p.Analysis.Depend.a.Loopir.Array_ref.repr);
                 ("b", Str p.Analysis.Depend.b.Loopir.Array_ref.repr);
                 ( "verdict",
                   Str
                     (Analysis.Depend.verdict_name p.Analysis.Depend.verdict)
                 );
                 ( "backend",
                   Str
                     (Analysis.Depend.backend_name
                        p.Analysis.Depend.ev.Analysis.Depend.ev_backend) );
                 ("must", Bool p.Analysis.Depend.ev.Analysis.Depend.ev_must);
                 ( "witness",
                   match p.Analysis.Depend.ev.Analysis.Depend.ev_witness with
                   | Some w -> Str (Analysis.Depend.witness_to_string w)
                   | None -> Null );
               ])
           pairs)
  | exception _ -> List []

let run_analyze store ~digest ~text req ~func ~threads ~fs_chunk ~nfs_chunk
    ~predict ~contention ~exact ~exact_budget ~cost_model ~json =
  let buf = Buffer.create 1024 in
  guard buf @@ fun () ->
  match func_for store ~digest ~text req func with
  | Error e -> fail buf (e ^ "\n")
  | Ok func ->
      let c = checked store ~digest ~text in
      let fs_chunk, nfs_chunk =
        match kernel_of_source req.Req.source with
        | Some k ->
            ( Option.value ~default:k.Kernels.Kernel.fs_chunk fs_chunk,
              Option.value ~default:k.Kernels.Kernel.nfs_chunk nfs_chunk )
        | None ->
            (Option.value ~default:1 fs_chunk,
             Option.value ~default:16 nfs_chunk)
      in
      let nest =
        lower store ~digest ~checked:c ~func
          ~params:[ ("num_threads", threads) ]
      in
      let line_bytes =
        req.Req.arch.Archspec.Arch.l1.Archspec.Cache_geom.line_bytes
      in
      (* engine-backed Eq. 5 comparison; never run under [`Analytic] *)
      let sim_overhead () =
        let mode =
          match predict with
          | Some runs -> Fsmodel.Overhead_percent.Predicted runs
          | None -> Fsmodel.Overhead_percent.Full
        in
        Fsmodel.Overhead_percent.analyze ~mode ~arch:req.Req.arch ~contention
          ~threads ~fs_chunk ~nfs_chunk ~func c
      in
      let analytic () =
        match
          Analysis.Reuse.overhead ~arch:req.Req.arch ~contention ~threads
            ~fs_chunk ~nfs_chunk ~func c
        with
        | Some o -> (Some o, o.Analysis.Reuse.analytic)
        | None ->
            ( None,
              Analysis.Reuse.analyze ~arch:req.Req.arch ~contention
                ~chunk:fs_chunk ~threads
                ~params:[ ("num_threads", threads) ]
                ~checked:c nest )
        | exception _ ->
            ( None,
              Analysis.Reuse.analyze ~arch:req.Req.arch ~contention
                ~chunk:fs_chunk ~threads
                ~params:[ ("num_threads", threads) ]
                ~checked:c nest )
      in
      if json then begin
        let open Analysis.Json in
        let deps =
          dependence_json ~line_bytes ~threads ~exact ~exact_budget nest
        in
        let sim_fields =
          match cost_model with
          | `Analytic -> []
          | `Sim | `Both ->
              let a = sim_overhead () in
              [
                ( "overhead",
                  Obj
                    [
                      ("threads", Int a.Fsmodel.Overhead_percent.threads);
                      ("fsChunk", Int a.Fsmodel.Overhead_percent.fs_chunk);
                      ("nfsChunk", Int a.Fsmodel.Overhead_percent.nfs_chunk);
                      ("nFs", Int a.Fsmodel.Overhead_percent.n_fs);
                      ("nNfs", Int a.Fsmodel.Overhead_percent.n_nfs);
                      ("percent", Float a.Fsmodel.Overhead_percent.percent);
                    ] );
                ("breakdown", breakdown_json a.Fsmodel.Overhead_percent.breakdown);
                ( "eq1",
                  eq1_json
                    (Costmodel.Total_cost.eq1_of
                       a.Fsmodel.Overhead_percent.breakdown) );
              ]
        in
        let analytic_fields =
          match cost_model with
          | `Sim -> []
          | `Analytic | `Both ->
              let o, a = analytic () in
              [
                ( "analytic",
                  Obj
                    ((match o with
                     | Some o ->
                         [
                           ("nFs", Int o.Analysis.Reuse.n_fs);
                           ("nNfs", Int o.Analysis.Reuse.n_nfs);
                           ("percent", Float o.Analysis.Reuse.percent);
                         ]
                     | None -> [])
                    @ [ ("cost", analytic_json a) ]) );
              ]
        in
        let doc =
          Obj
            ([
               ("func", Str func);
               ("threads", Int threads);
               ("fsChunk", Int fs_chunk);
               ("nfsChunk", Int nfs_chunk);
               ("costModel", Str (Analysis.Lint.cost_model_name cost_model));
               ("nest", Str (Format.asprintf "%a" Loopir.Loop_nest.pp nest));
               ("dependence", deps);
             ]
            @ sim_fields @ analytic_fields)
        in
        { output = Analysis.Json.to_string doc; err = ""; code = 0 }
      end
      else begin
        Buffer.add_string buf
          (Format.asprintf "%a@." Loopir.Loop_nest.pp nest);
        (try
           Buffer.add_string buf
             (dependence_summary ~line_bytes ~threads ~exact ~exact_budget
                nest)
         with _ -> ());
        (match cost_model with
        | `Sim | `Both ->
            let a = sim_overhead () in
            Buffer.add_string buf
              (Format.asprintf "%a@.%a@." Fsmodel.Overhead_percent.pp a
                 Costmodel.Total_cost.pp a.Fsmodel.Overhead_percent.breakdown)
        | `Analytic -> ());
        (match cost_model with
        | `Sim -> ()
        | `Analytic | `Both -> (
            let o, a = analytic () in
            (match o with
            | Some o ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "threads=%d chunk %d vs %d: N_fs=%d N_nfs=%d -> %.1f%% \
                      of loop time (analytic)\n"
                     o.Analysis.Reuse.threads o.Analysis.Reuse.fs_chunk
                     o.Analysis.Reuse.nfs_chunk o.Analysis.Reuse.n_fs
                     o.Analysis.Reuse.n_nfs o.Analysis.Reuse.percent)
            | None -> ());
            Buffer.add_string buf
              (Format.asprintf "%a@." Analysis.Reuse.pp_analytic a)));
        { output = Buffer.contents buf; err = ""; code = 0 }
      end

let run_lint store ~digest ~text ~uri req ~threads ~chunk ~json ~fixits
    ~params ~fail_on ~exact ~exact_budget ~cost_model ~sched ~seeds =
  let buf = Buffer.create 1024 in
  guard buf @@ fun () ->
  let c = checked store ~digest ~text in
  let opts =
    {
      Analysis.Lint.arch = req.Req.arch;
      threads;
      chunk;
      fixits;
      params;
      exact;
      exact_budget;
      cost_model;
      sched;
      seeds;
    }
  in
  let report = Analysis.Lint.run ~opts ~uri c in
  let output =
    if json then Analysis.Json.to_string (Analysis.Diag.to_json report)
    else Analysis.Diag.to_text report
  in
  let gate =
    match fail_on with
    | Req.Never -> false
    | Req.Race -> Analysis.Diag.error_count report > 0
    | Req.Fs ->
        Analysis.Diag.error_count report > 0
        || List.exists
             (fun (f : Analysis.Diag.finding) ->
               f.Analysis.Diag.rule = "fs/line-conflict"
               && f.Analysis.Diag.severity <> Analysis.Diag.Info)
             report.Analysis.Diag.findings
  in
  { output; err = ""; code = (if gate then 1 else 0) }

let run_explain store ~digest ~text ~uri req ~func ~threads ~chunk ~params
    ~engine ~format ~top ~trace_cap ~sched ~seeds =
  let buf = Buffer.create 1024 in
  guard buf @@ fun () ->
  match func_for store ~digest ~text req func with
  | Error e -> fail buf (e ^ "\n")
  | Ok func ->
      let c = checked store ~digest ~text in
      let params = ("num_threads", threads) :: params in
      let nest = lower store ~digest ~checked:c ~func ~params in
      let cfg =
        {
          (Fsmodel.Model.default_config ~arch:req.Req.arch ~threads ()) with
          chunk;
          params;
        }
      in
      let sched =
        Option.map (fun k -> (k, Array.init seeds (fun i -> i))) sched
      in
      let a =
        Explain.analyze ~engine ?trace_cap ?sched ~uri ~func cfg ~nest
          ~checked:c
      in
      let output =
        match format with
        | `Text -> Explain.to_text ~source:text ~top a
        | `Heatmap -> Explain.heatmap a
        | `Trace -> Analysis.Json.to_string (Explain.trace_json a)
      in
      if not (Explain.conservation_ok a) then
        {
          output;
          err =
            "internal error: attribution does not sum back to the engine \
             count\n";
          code = 3;
        }
      else { output; err = ""; code = 0 }

let run_advise store ~digest ~text req ~func ~threads ~jobs =
  let buf = Buffer.create 1024 in
  guard buf @@ fun () ->
  match func_for store ~digest ~text req func with
  | Error e -> fail buf (e ^ "\n")
  | Ok func ->
      let c = checked store ~digest ~text in
      let a =
        Fsmodel.Advisor.advise ~arch:req.Req.arch ?domains:jobs ~threads
          ~func c
      in
      {
        output = Format.asprintf "%a@." Fsmodel.Advisor.pp a;
        err = "";
        code = 0;
      }

let run_eliminate store ~digest ~text req ~func ~threads =
  let buf = Buffer.create 1024 in
  guard buf @@ fun () ->
  match func_for store ~digest ~text req func with
  | Error e -> fail buf (e ^ "\n")
  | Ok func -> (
      let c = checked store ~digest ~text in
      match Fsmodel.Eliminate.eliminate ~arch:req.Req.arch ~threads ~func c with
      | after, plan ->
          {
            output =
              Format.asprintf "/* fsdetect: %a*/@.%s"
                Fsmodel.Eliminate.pp_plan plan
                (Minic.Pretty.program_to_string after.Minic.Typecheck.prog);
            err =
              (* an empty plan is a result, not silence: say why the
                 program came back unchanged *)
              (if plan.Fsmodel.Eliminate.rewrites = [] then
                 Printf.sprintf
                   "fsdetect: no false sharing attributed in %s; nothing to \
                    fix\n"
                   func
               else "");
            code = 0;
          }
      | exception Fsmodel.Eliminate.Unsupported m ->
          fail buf (Printf.sprintf "cannot eliminate: %s\n" m))

let run_fix store ~digest ~text req ~func ~threads ~jobs ~json =
  let buf = Buffer.create 1024 in
  guard buf @@ fun () ->
  match func_for store ~digest ~text req func with
  | Error e -> fail buf (e ^ "\n")
  | Ok func -> (
      let c = checked store ~digest ~text in
      let advice =
        Fsmodel.Advisor.advise ~arch:req.Req.arch ?domains:jobs ~threads
          ~func c
      in
      match
        Analysis.Fixer.verify ~arch:req.Req.arch ~advice ~threads ~func c
      with
      | Analysis.Fixer.Nothing_to_fix reason ->
          { output = ""; err = Printf.sprintf "fsdetect: %s\n" reason; code = 0 }
      | Analysis.Fixer.Fix v ->
          let output =
            if json then Analysis.Json.to_string (Analysis.Fixer.to_json v)
            else Analysis.Fixer.to_text v ^ "\n" ^ v.Analysis.Fixer.source
          in
          (* an unverified fix is still printed (the report says why), but
             the exit code gates on the verdict so CI can rely on it *)
          {
            output;
            err = "";
            code = (if v.Analysis.Fixer.verified then 0 else 1);
          })

let run_dump store ~digest ~text ~threads =
  let buf = Buffer.create 1024 in
  guard buf @@ fun () ->
  let c = checked store ~digest ~text in
  Buffer.add_string buf
    (Format.asprintf "%s@."
       (Minic.Pretty.program_to_string c.Minic.Typecheck.prog));
  List.iter
    (fun f ->
      List.iter
        (fun nest ->
          Buffer.add_string buf
            (Format.asprintf "%a@." Loopir.Loop_nest.pp nest))
        (lower_all store ~digest ~checked:c ~func:f
           ~params:[ ("num_threads", threads) ]))
    (Loopir.Lower.find_parallel_functions c.Minic.Typecheck.prog);
  { output = Buffer.contents buf; err = ""; code = 0 }

let compute store (req : Req.t) ~uri ~text =
  let digest = Digest.to_hex (Digest.string text) in
  match req.Req.kind with
  | Req.Analyze
      {
        func;
        threads;
        fs_chunk;
        nfs_chunk;
        predict;
        contention;
        exact;
        exact_budget;
        cost_model;
        json;
      } ->
      run_analyze store ~digest ~text req ~func ~threads ~fs_chunk
        ~nfs_chunk ~predict ~contention ~exact ~exact_budget ~cost_model
        ~json
  | Req.Lint
      {
        threads;
        chunk;
        json;
        fixits;
        params;
        fail_on;
        exact;
        exact_budget;
        cost_model;
        sched;
        seeds;
      } ->
      run_lint store ~digest ~text ~uri req ~threads ~chunk ~json ~fixits
        ~params ~fail_on ~exact ~exact_budget ~cost_model ~sched ~seeds
  | Req.Explain
      {
        func;
        threads;
        chunk;
        params;
        engine;
        format;
        top;
        trace_cap;
        sched;
        seeds;
      } ->
      run_explain store ~digest ~text ~uri req ~func ~threads ~chunk ~params
        ~engine ~format ~top ~trace_cap ~sched ~seeds
  | Req.Advise { func; threads; jobs } ->
      run_advise store ~digest ~text req ~func ~threads ~jobs
  | Req.Eliminate { func; threads } ->
      run_eliminate store ~digest ~text req ~func ~threads
  | Req.Fix { func; threads; jobs; json } ->
      run_fix store ~digest ~text req ~func ~threads ~jobs ~json
  | Req.Dump { threads } -> run_dump store ~digest ~text ~threads

let exec store (req : Req.t) =
  match Req.cache_key req with
  | Error msg -> { output = ""; err = msg ^ "\n"; code = 1 }
  | Ok key ->
      expect_payload
        (Cache.find_or_add store ~stage:"resp" ~key (fun () ->
             let uri, text =
               match Req.source_text req.Req.source with
               | Ok ut -> ut
               | Error _ -> assert false (* cache_key already resolved it *)
             in
             V_payload (compute store req ~uri ~text)))

let stats_json store =
  let s = stats store in
  Analysis.Json.Obj
    [
      ("hits", Analysis.Json.Int s.Cache.hits);
      ("misses", Analysis.Json.Int s.Cache.misses);
      ("evictions", Analysis.Json.Int s.Cache.evictions);
      ("entries", Analysis.Json.Int s.Cache.entries);
      ("capacity", Analysis.Json.Int s.Cache.capacity);
    ]

let source ?(n = 30722) ?(steps = 16) () =
  Printf.sprintf
    {|#define N %d
#define STEPS %d

double u[N];
double v[N];

void init(void) {
  int i;
  for (i = 0; i < N; i++) {
    u[i] = 0.0001 * i * i;
    v[i] = 0.0;
  }
}

void stencil(void) {
  int t;
  int i;
  for (t = 0; t < STEPS; t++) {
    #pragma omp parallel for private(i) schedule(static,1)
    for (i = 1; i < N - 1; i++) {
      v[i] = 0.5 * u[i] + 0.25 * (u[i-1] + u[i+1]);
    }
  }
}
|}
    n steps

(* Grid length left free: the parallel interior runs to [n - 1] for a
   global [n], so the stencil's neighbour offsets must be reasoned about
   for every admissible n. *)
let parametric_source ?(n = 30722) ?(steps = 16) () =
  Printf.sprintf
    {|#define N %d
#define STEPS %d

int n;

double u[N];
double v[N];

void init(void) {
  int i;
  for (i = 0; i < N; i++) {
    u[i] = 0.0001 * i * i;
    v[i] = 0.0;
  }
}

void stencil(void) {
  int t;
  int i;
  for (t = 0; t < STEPS; t++) {
    #pragma omp parallel for private(i) schedule(static,1)
    for (i = 1; i < n - 1; i++) {
      v[i] = 0.5 * u[i] + 0.25 * (u[i-1] + u[i+1]);
    }
  }
}
|}
    n steps

let kernel ?n ?steps () =
  {
    Kernel.name = "stencil1d";
    description = "1-D 3-point stencil under a sequential time loop";
    source = source ?n ?steps ();
    func = "stencil";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 16;
    pred_runs = 20;
    parametric =
      Some
        {
          Kernel.param = "n";
          value = Option.value n ~default:30722;
          psource = parametric_source ?n ?steps ();
        };
  }

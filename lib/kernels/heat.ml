(* The interior column count (cols-2) should be divisible by
   threads*chunk for every team size measured (2..48 and chunk 64), so
   that static scheduling stays load-balanced and timing differences
   reflect false sharing, not stragglers.  The default interior width
   30720 = 64 * LCM-of-team-sizes(480) satisfies all of 2,4,8,16,24,32,
   40,48. *)
let source ?(rows = 18) ?(cols = 30722) () =
  Printf.sprintf
    {|#define ROWS %d
#define COLS %d

double A[ROWS][COLS];
double B[ROWS][COLS];

void init(void) {
  int i;
  int j;
  for (i = 0; i < ROWS; i++) {
    for (j = 0; j < COLS; j++) {
      A[i][j] = 0.001 * i + 0.002 * j;
      B[i][j] = 0.0;
    }
  }
}

void heat_step(void) {
  int i;
  int j;
  for (i = 1; i < ROWS - 1; i++) {
    #pragma omp parallel for private(j) schedule(static,1)
    for (j = 1; j < COLS - 1; j++) {
      B[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);
    }
  }
}
|}
    rows cols

(* Interior width left free: the parallel column sweep runs to [n - 1]
   for a global [n] while the row extent and array shapes stay
   concrete. *)
let parametric_source ?(rows = 18) ?(cols = 30722) () =
  Printf.sprintf
    {|#define ROWS %d
#define COLS %d

int n;

double A[ROWS][COLS];
double B[ROWS][COLS];

void init(void) {
  int i;
  int j;
  for (i = 0; i < ROWS; i++) {
    for (j = 0; j < COLS; j++) {
      A[i][j] = 0.001 * i + 0.002 * j;
      B[i][j] = 0.0;
    }
  }
}

void heat_step(void) {
  int i;
  int j;
  for (i = 1; i < ROWS - 1; i++) {
    #pragma omp parallel for private(j) schedule(static,1)
    for (j = 1; j < n - 1; j++) {
      B[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);
    }
  }
}
|}
    rows cols

let kernel ?rows ?cols () =
  {
    Kernel.name = "heat";
    description = "2-D heat diffusion (5-point Jacobi), inner loop parallel";
    source = source ?rows ?cols ();
    func = "heat_step";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 64;
    pred_runs = 20;
    parametric =
      Some
        {
          Kernel.param = "n";
          value = Option.value cols ~default:30722;
          psource = parametric_source ?rows ?cols ();
        };
  }

type parametric = { param : string; value : int; psource : string }

type t = {
  name : string;
  description : string;
  source : string;
  func : string;
  init_func : string option;
  fs_chunk : int;
  nfs_chunk : int;
  pred_runs : int;
  parametric : parametric option;
}

let parse t = Minic.Typecheck.check_program (Minic.Parser.parse_program t.source)

let parse_parametric p =
  Minic.Typecheck.check_program (Minic.Parser.parse_program p.psource)

(* Micro-pattern kernels: the canonical false-sharing shapes the fix
   machinery is built to handle, each small enough that both engines run
   it in milliseconds.  They live in their own registry tier
   (Registry.micros) so the pinned seven-kernel registry goldens stay
   untouched; `fsdetect -k <name>` finds them all the same. *)

let counter_slots () =
  {
    Kernel.name = "counter_slots";
    description =
      "per-thread counters in adjacent 8-byte slots; every increment \
       invalidates the whole team's line (fix: spread 8x)";
    source =
      {|long counters[8];

void init(void) {
  int t;
  for (t = 0; t < 8; t++) {
    counters[t] = 0;
  }
}

void count(void) {
  int t;
  int r;
  #pragma omp parallel for private(t,r) schedule(static,1)
  for (t = 0; t < 8; t++) {
    for (r = 0; r < 2048; r++) {
      counters[t] += 1;
    }
  }
}
|};
    func = "count";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 8;
    pred_runs = 16;
    parametric = None;
  }

let bytes_adjacent () =
  {
    Kernel.name = "bytes_adjacent";
    description =
      "adjacent 1-byte flags, 64 writers per line under schedule(static,1) \
       (fix: spread 64x)";
    source =
      {|char flags[8192];

void mark(void) {
  int i;
  int r;
  #pragma omp parallel for private(i,r) schedule(static,1)
  for (i = 0; i < 8192; i++) {
    for (r = 0; r < 4; r++) {
      flags[i] = 1;
    }
  }
}
|};
    func = "mark";
    init_func = None;
    fs_chunk = 1;
    nfs_chunk = 64;
    pred_runs = 16;
    parametric = None;
  }

let struct_xy () =
  {
    Kernel.name = "struct_xy";
    description =
      "16-byte {x,y} points, four per line; neighbour iterations write \
       neighbour elements (fix: pad the struct to 64 bytes)";
    source =
      {|struct point {
  double x;
  double y;
};

struct point pts[4096];

void init(void) {
  int i;
  for (i = 0; i < 4096; i++) {
    pts[i].x = 0.0;
    pts[i].y = 1.0;
  }
}

void move(void) {
  int i;
  int r;
  #pragma omp parallel for private(i,r) schedule(static,1)
  for (i = 0; i < 4096; i++) {
    for (r = 0; r < 4; r++) {
      pts[i].x += 0.5;
    }
  }
}
|};
    func = "move";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 4;
    pred_runs = 16;
    parametric = None;
  }

let struct_xy_padded () =
  {
    Kernel.name = "struct_xy_padded";
    description =
      "the padded control for struct_xy: a 48-byte tail makes each point \
       line-exclusive, so there is nothing to fix";
    source =
      {|struct ppoint {
  double x;
  double y;
  char pad[48];
};

struct ppoint pts[4096];

void init(void) {
  int i;
  for (i = 0; i < 4096; i++) {
    pts[i].x = 0.0;
    pts[i].y = 1.0;
  }
}

void move(void) {
  int i;
  int r;
  #pragma omp parallel for private(i,r) schedule(static,1)
  for (i = 0; i < 4096; i++) {
    for (r = 0; r < 4; r++) {
      pts[i].x += 0.5;
    }
  }
}
|};
    func = "move";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 1;
    pred_runs = 16;
    parametric = None;
  }

let padded_slots () =
  {
    Kernel.name = "padded_slots";
    description =
      "the spread control for counter_slots: slots already 64 bytes apart, \
       so there is nothing to fix";
    source =
      {|long slots[64];

void init(void) {
  int t;
  for (t = 0; t < 64; t++) {
    slots[t] = 0;
  }
}

void bump(void) {
  int t;
  int r;
  #pragma omp parallel for private(t,r) schedule(static,1)
  for (t = 0; t < 8; t++) {
    for (r = 0; r < 2048; r++) {
      slots[t * 8] += 1;
    }
  }
}
|};
    func = "bump";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 1;
    pred_runs = 16;
    parametric = None;
  }

let histogram () =
  {
    Kernel.name = "histogram";
    description =
      "histogram merge: each parallel task reduces its data segment into \
       one adjacent 4-byte bin (fix: spread the bins a line apart)";
    source =
      {|int hist[32];
int data[16384];

void init(void) {
  int i;
  for (i = 0; i < 16384; i++) {
    data[i] = i;
  }
  for (i = 0; i < 32; i++) {
    hist[i] = 0;
  }
}

void build(void) {
  int s;
  int r;
  #pragma omp parallel for private(s,r) schedule(static,1)
  for (s = 0; s < 32; s++) {
    for (r = 0; r < 512; r++) {
      hist[s] += data[512 * s + r];
    }
  }
}
|};
    func = "build";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 16;
    pred_runs = 16;
    parametric = None;
  }

let reduction_sum () =
  {
    Kernel.name = "reduction_sum";
    description =
      "a shared scalar accumulator updated by every iteration — a race and \
       line ping-pong in one (fix: privatize via reduction(+:total))";
    source =
      {|double total;
double a[8192];

void init(void) {
  int i;
  for (i = 0; i < 8192; i++) {
    a[i] = 0.5 * i;
  }
}

void reduce(void) {
  int i;
  #pragma omp parallel for private(i) schedule(static,1)
  for (i = 0; i < 8192; i++) {
    total += a[i];
  }
}
|};
    func = "reduce";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 8;
    pred_runs = 16;
    parametric = None;
  }

let all () =
  [
    counter_slots ();
    bytes_adjacent ();
    struct_xy ();
    struct_xy_padded ();
    padded_slots ();
    histogram ();
    reduction_sum ();
  ]

let source ?(n = 30720) () =
  Printf.sprintf
    {|#define N %d

double x[N];
double y[N];

void init(void) {
  int i;
  for (i = 0; i < N; i++) {
    x[i] = 1.0 * i;
    y[i] = 0.5 * i;
  }
}

void saxpy(void) {
  int i;
  #pragma omp parallel for private(i) schedule(static,1)
  for (i = 0; i < N; i++) {
    y[i] += 2.5 * x[i];
  }
}
|}
    n

(* Same kernel with the trip count left free: arrays keep the concrete
   capacity, but the parallel loop runs to a global [n] the analyses
   must treat symbolically. *)
let parametric_source ?(n = 30720) () =
  Printf.sprintf
    {|#define N %d

int n;

double x[N];
double y[N];

void init(void) {
  int i;
  for (i = 0; i < N; i++) {
    x[i] = 1.0 * i;
    y[i] = 0.5 * i;
  }
}

void saxpy(void) {
  int i;
  #pragma omp parallel for private(i) schedule(static,1)
  for (i = 0; i < n; i++) {
    y[i] += 2.5 * x[i];
  }
}
|}
    n

let kernel ?n () =
  {
    Kernel.name = "saxpy";
    description = "vector update y += a*x, single parallel loop";
    source = source ?n ();
    func = "saxpy";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 8;
    pred_runs = 16;
    parametric =
      Some
        {
          Kernel.param = "n";
          value = Option.value n ~default:30720;
          psource = parametric_source ?n ();
        };
  }

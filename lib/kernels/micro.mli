(** Micro-pattern kernels: one small kernel per canonical false-sharing
    shape from the literature — a shared counter array, adjacent 1-byte
    slots, unpadded/padded {x,y} structs, already-spread slots, a
    segmented histogram, and a scalar reduction.  They form the
    {!Registry.micros} tier: findable by name, exercised by the fix
    verification gate, but excluded from {!Registry.all} so the pinned
    seven-kernel goldens stay stable.

    The FS members expect a specific fix: spreading ([counter_slots],
    [bytes_adjacent], [histogram]), struct padding ([struct_xy]), or
    privatization ([reduction_sum]); the [_padded]/[padded_] controls
    expect an empty plan. *)

val counter_slots : unit -> Kernel.t
val bytes_adjacent : unit -> Kernel.t
val struct_xy : unit -> Kernel.t
val struct_xy_padded : unit -> Kernel.t
val padded_slots : unit -> Kernel.t
val histogram : unit -> Kernel.t
val reduction_sum : unit -> Kernel.t

val all : unit -> Kernel.t list
(** The seven micro-pattern kernels, in the order above. *)

(** All bundled kernels, by name. *)

val all : unit -> Kernel.t list
(** Default-sized instances of every paper kernel.  The list (and its
    order) is pinned by the registry goldens; new kernels go into
    {!micros}. *)

val micros : unit -> Kernel.t list
(** The {!Micro} tier: one kernel per canonical FS micro-pattern, used by
    the fix verification gate. *)

val find : string -> Kernel.t option
(** Look up by name across {!all} and {!micros}. *)

val names : unit -> string list
(** Names of {!all} only (pinned by the service goldens). *)

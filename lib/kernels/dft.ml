(* 30720 samples = 16 * LCM-of-team-sizes(480) * 4: the inner trip is
   divisible by threads*chunk for chunks 1 and 16 at every measured team
   size, keeping static scheduling balanced. *)
let source ?(freqs = 16) ?(samples = 30720) () =
  Printf.sprintf
    {|#define K %d
#define N %d

double in_re[N];
double tmp_re[N];
double tmp_im[N];

void init(void) {
  int n;
  for (n = 0; n < N; n++) {
    in_re[n] = sin(0.05 * n) + 0.5 * sin(0.17 * n);
    tmp_re[n] = 0.0;
    tmp_im[n] = 0.0;
  }
}

void dft(void) {
  int k;
  int n;
  for (k = 0; k < K; k++) {
    #pragma omp parallel for private(n) schedule(static,1)
    for (n = 0; n < N; n++) {
      tmp_re[n] = in_re[n] * cos(6.283185307179586 * k * n / N);
      tmp_im[n] = 0.0 - in_re[n] * sin(6.283185307179586 * k * n / N);
    }
  }
}
|}
    freqs samples

(* Sample count left free.  The free global is named [m] because the
   parallel induction variable is already called [n]. *)
let parametric_source ?(freqs = 16) ?(samples = 30720) () =
  Printf.sprintf
    {|#define K %d
#define N %d

int m;

double in_re[N];
double tmp_re[N];
double tmp_im[N];

void init(void) {
  int n;
  for (n = 0; n < N; n++) {
    in_re[n] = sin(0.05 * n) + 0.5 * sin(0.17 * n);
    tmp_re[n] = 0.0;
    tmp_im[n] = 0.0;
  }
}

void dft(void) {
  int k;
  int n;
  for (k = 0; k < K; k++) {
    #pragma omp parallel for private(n) schedule(static,1)
    for (n = 0; n < m; n++) {
      tmp_re[n] = in_re[n] * cos(6.283185307179586 * k * n / N);
      tmp_im[n] = 0.0 - in_re[n] * sin(6.283185307179586 * k * n / N);
    }
  }
}
|}
    freqs samples

let kernel ?freqs ?samples () =
  {
    Kernel.name = "dft";
    description = "discrete Fourier transform, inner loop parallel";
    source = source ?freqs ?samples ();
    func = "dft";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 16;
    pred_runs = 50;
    parametric =
      Some
        {
          Kernel.param = "m";
          value = Option.value samples ~default:30720;
          psource = parametric_source ?freqs ?samples ();
        };
  }

let source ?(n = 480) () =
  Printf.sprintf
    {|#define N %d

double A[N][N];
double B[N][N];

void init(void) {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      A[i][j] = 1.0 * i * N + j;
      B[i][j] = 0.0;
    }
  }
}

void transpose(void) {
  int i;
  int j;
  #pragma omp parallel for private(i,j) schedule(static,1)
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      B[j][i] = A[i][j];
    }
  }
}
|}
    n

(* Logical matrix order left free: both transpose loops run to a global
   [n] over the concrete-capacity (row stride N) arrays, so the
   column-write pattern must be classified for every n at once. *)
let parametric_source ?(n = 480) () =
  Printf.sprintf
    {|#define N %d

int n;

double A[N][N];
double B[N][N];

void init(void) {
  int i;
  int j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      A[i][j] = 1.0 * i * N + j;
      B[i][j] = 0.0;
    }
  }
}

void transpose(void) {
  int i;
  int j;
  #pragma omp parallel for private(i,j) schedule(static,1)
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      B[j][i] = A[i][j];
    }
  }
}
|}
    n

let kernel ?n () =
  {
    Kernel.name = "transpose";
    description = "matrix transpose, outer loop parallel, column writes";
    source = source ?n ();
    func = "transpose";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 8;
    pred_runs = 12;
    parametric =
      Some
        {
          Kernel.param = "n";
          value = Option.value n ~default:480;
          psource = parametric_source ?n ();
        };
  }

(* 4800 work units = 10 * LCM-of-team-sizes(480): the parallel trip is
   divisible by threads*chunk for chunks 1 and 10 at every measured team
   size, keeping static scheduling balanced. *)
let source ?(nacc = 4800) ?(m = 512) () =
  Printf.sprintf
    {|#define NACC %d
#define M %d

struct point {
  double x;
  double y;
};

struct acc {
  double sx;
  double sxx;
  double sy;
  double syy;
  double sxy;
};

struct acc tid_args[NACC];
struct point points[M];

void init(void) {
  int i;
  for (i = 0; i < M; i++) {
    points[i].x = 0.01 * i;
    points[i].y = 3.0 + 0.5 * points[i].x;
  }
}

void linear_regression(void) {
  int i;
  int j;
  #pragma omp parallel for private(i) schedule(static,1)
  for (j = 0; j < NACC; j++) {
    for (i = 0; i < M / num_threads; i++) {
      tid_args[j].sx += points[i].x;
      tid_args[j].sxx += points[i].x * points[i].x;
      tid_args[j].sy += points[i].y;
      tid_args[j].syy += points[i].y * points[i].y;
      tid_args[j].sxy += points[i].x * points[i].y;
    }
  }
}
|}
    nacc m

(* Accumulator count left free: the parallel loop strides over [n]
   40-byte struct slots of the concrete-capacity array. *)
let parametric_source ?(nacc = 4800) ?(m = 512) () =
  Printf.sprintf
    {|#define NACC %d
#define M %d

int n;

struct point {
  double x;
  double y;
};

struct acc {
  double sx;
  double sxx;
  double sy;
  double syy;
  double sxy;
};

struct acc tid_args[NACC];
struct point points[M];

void init(void) {
  int i;
  for (i = 0; i < M; i++) {
    points[i].x = 0.01 * i;
    points[i].y = 3.0 + 0.5 * points[i].x;
  }
}

void linear_regression(void) {
  int i;
  int j;
  #pragma omp parallel for private(i) schedule(static,1)
  for (j = 0; j < n; j++) {
    for (i = 0; i < M / num_threads; i++) {
      tid_args[j].sx += points[i].x;
      tid_args[j].sxx += points[i].x * points[i].x;
      tid_args[j].sy += points[i].y;
      tid_args[j].syy += points[i].y * points[i].y;
      tid_args[j].sxy += points[i].x * points[i].y;
    }
  }
}
|}
    nacc m

let kernel ?nacc ?m () =
  {
    Kernel.name = "linear_regression";
    description =
      "Phoenix linear regression, outer loop parallel, struct accumulators";
    source = source ?nacc ?m ();
    func = "linear_regression";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 10;
    pred_runs = 10;
    parametric =
      Some
        {
          Kernel.param = "n";
          value = Option.value nacc ~default:4800;
          psource = parametric_source ?nacc ?m ();
        };
  }

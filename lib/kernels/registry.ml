let all () =
  [
    Heat.kernel ();
    Dft.kernel ();
    Linreg_kernel.kernel ();
    Saxpy.kernel ();
    Stencil1d.kernel ();
    Matvec.kernel ();
    Transpose.kernel ();
  ]

let micros () = Micro.all ()

let find name =
  List.find_opt (fun k -> k.Kernel.name = name) (all () @ micros ())

let names () = List.map (fun k -> k.Kernel.name) (all ())

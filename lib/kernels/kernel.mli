(** A benchmark kernel: mini-C source plus the paper's experiment
    parameters (FS-prone and optimized chunk sizes, prediction depth). *)

type parametric = {
  param : string;  (** the size identifier left free in [psource] *)
  value : int;  (** its value in the concrete [source] *)
  psource : string;
      (** the kernel with that size unbound: same arrays and schedule,
          but the parallel trip count reads the free global [param].
          Instantiating the symbolic verdicts and counts at [value] must
          reproduce the concrete analysis exactly. *)
}

type t = {
  name : string;
  description : string;
  source : string;
  func : string;  (** the OpenMP-parallel kernel function *)
  init_func : string option;  (** sequential initialization to run first *)
  fs_chunk : int;  (** chunk size exhibiting false sharing *)
  nfs_chunk : int;  (** optimized chunk size (paper's non-FS case) *)
  pred_runs : int;  (** chunk runs the paper's prediction evaluates *)
  parametric : parametric option;
      (** size-free variant for the symbolic analyses; [None] when the
          kernel was constructed with non-default sizes *)
}

val parse : t -> Minic.Typecheck.checked
(** Parse and typecheck the kernel's source.
    @raise Minic.Parser.Error or Minic.Typecheck.Type_error on bad source —
    kernels ship with the library, so failures indicate a bug. *)

val parse_parametric : parametric -> Minic.Typecheck.checked
(** Parse and typecheck the size-free variant. *)

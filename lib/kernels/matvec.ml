let source ?(rows = 960) ?(cols = 256) () =
  Printf.sprintf
    {|#define ROWS %d
#define COLS %d

double A[ROWS][COLS];
double x[COLS];
double y[ROWS];

void init(void) {
  int i;
  int j;
  for (j = 0; j < COLS; j++) {
    x[j] = 1.0 / (1.0 + j);
  }
  for (i = 0; i < ROWS; i++) {
    y[i] = 0.0;
    for (j = 0; j < COLS; j++) {
      A[i][j] = 0.25 * i - 0.125 * j;
    }
  }
}

void matvec(void) {
  int i;
  int j;
  #pragma omp parallel for private(i,j) schedule(static,1)
  for (i = 0; i < ROWS; i++) {
    for (j = 0; j < COLS; j++) {
      y[i] += A[i][j] * x[j];
    }
  }
}
|}
    rows cols

(* Row count left free: the parallel loop covers [n] rows of the
   concrete-capacity matrix. *)
let parametric_source ?(rows = 960) ?(cols = 256) () =
  Printf.sprintf
    {|#define ROWS %d
#define COLS %d

int n;

double A[ROWS][COLS];
double x[COLS];
double y[ROWS];

void init(void) {
  int i;
  int j;
  for (j = 0; j < COLS; j++) {
    x[j] = 1.0 / (1.0 + j);
  }
  for (i = 0; i < ROWS; i++) {
    y[i] = 0.0;
    for (j = 0; j < COLS; j++) {
      A[i][j] = 0.25 * i - 0.125 * j;
    }
  }
}

void matvec(void) {
  int i;
  int j;
  #pragma omp parallel for private(i,j) schedule(static,1)
  for (i = 0; i < n; i++) {
    for (j = 0; j < COLS; j++) {
      y[i] += A[i][j] * x[j];
    }
  }
}
|}
    rows cols

let kernel ?rows ?cols () =
  {
    Kernel.name = "matvec";
    description = "dense matrix-vector product, outer loop parallel";
    source = source ?rows ?cols ();
    func = "matvec";
    init_func = Some "init";
    fs_chunk = 1;
    nfs_chunk = 8;
    pred_runs = 12;
    parametric =
      Some
        {
          Kernel.param = "n";
          value = Option.value rows ~default:960;
          psource = parametric_source ?rows ?cols ();
        };
  }

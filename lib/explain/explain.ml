(* Aggregation and rendering of FS-case provenance.  The recorder is
   filled by Fsmodel.Model.run; everything here is post-processing, so
   clarity wins over allocation discipline. *)

type ref_info = {
  index : int;
  repr : string;
  base : string;
  write : bool;
  span : Minic.Span.t;
}

type pair_agg = {
  writer : ref_info option;
  victim : ref_info;
  pair_count : int;
  thread_pairs : (int * int * int) list;
}

type t = {
  uri : string;
  func : string;
  threads : int;
  chunk : int option;
  engine : Fsmodel.Model.engine;
  sched : (string * int) option;
      (* (replayed schedule kind, seed count) when nondeterministic *)
  engine_fs : int;
  total : int;
  refs : ref_info array;
  pairs : pair_agg list;
  arrays : (string * string * int) list;
  lines : (int * int) list;
  line_bytes : int;
  layout : Loopir.Layout.t;
  recorder : Fsmodel.Attrib.t;
  verdicts : string list;
  cost : string list;
}

let ref_info_of i (r : Loopir.Array_ref.t) =
  {
    index = i;
    repr = r.Loopir.Array_ref.repr;
    base = r.Loopir.Array_ref.base;
    write = Loopir.Array_ref.is_write r;
    span = r.Loopir.Array_ref.span;
  }

let sum_desc tbl =
  (* Hashtbl of key -> count, descending count then ascending key *)
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
  |> List.sort (fun (k1, c1) (k2, c2) ->
         let c = compare c2 c1 in
         if c <> 0 then c else compare k1 k2)

let aggregate ~uri ~func ~threads ~chunk ~engine ~sched ~engine_fs ~refs
    ~line_bytes ~layout recorder =
  let total = Fsmodel.Attrib.total recorder in
  if total <> engine_fs then
    failwith
      (Printf.sprintf
         "Explain.analyze: conservation broken — engine counts %d, recorder \
          holds %d"
         engine_fs total);
  (* (writer_ref, victim_ref) -> (count, thread-pair table) *)
  let ptbl : (int * int, int ref * (int * int, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let atbl : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
  Fsmodel.Attrib.fold_pairs recorder ~init:()
    ~f:(fun () ~writer_ref ~victim_ref ~writer_tid ~victim_tid ~count ->
      let key = (writer_ref, victim_ref) in
      let tot, tp =
        match Hashtbl.find_opt ptbl key with
        | Some x -> x
        | None ->
            let x = (ref 0, Hashtbl.create 8) in
            Hashtbl.add ptbl key x;
            x
      in
      tot := !tot + count;
      let tkey = (writer_tid, victim_tid) in
      Hashtbl.replace tp tkey
        (count + Option.value ~default:0 (Hashtbl.find_opt tp tkey));
      let wbase =
        if writer_ref < 0 then "?" else refs.(writer_ref).base
      in
      let akey = (wbase, refs.(victim_ref).base) in
      Hashtbl.replace atbl akey
        (count + Option.value ~default:0 (Hashtbl.find_opt atbl akey)));
  let pairs =
    Hashtbl.fold
      (fun (wr, vr) (tot, tp) acc ->
        ( {
            writer = (if wr < 0 then None else Some refs.(wr));
            victim = refs.(vr);
            pair_count = !tot;
            thread_pairs =
              List.map (fun ((wt, vt), c) -> (wt, vt, c)) (sum_desc tp);
          },
          (wr, vr) )
        :: acc)
      ptbl []
    |> List.sort (fun ((a : pair_agg), k1) (b, k2) ->
           let c = compare b.pair_count a.pair_count in
           if c <> 0 then c else compare k1 k2)
    |> List.map fst
  in
  let arrays = List.map (fun ((w, v), c) -> (w, v, c)) (sum_desc atbl) in
  let lines =
    Fsmodel.Attrib.fold_lines recorder ~init:[] ~f:(fun acc ~line ~count ->
        (line, count) :: acc)
    |> List.sort (fun (l1, c1) (l2, c2) ->
           let c = compare c2 c1 in
           if c <> 0 then c else compare l1 l2)
  in
  {
    uri;
    func;
    threads;
    chunk;
    engine;
    sched;
    engine_fs;
    total;
    refs;
    pairs;
    arrays;
    lines;
    line_bytes;
    layout;
    recorder;
    verdicts = [];
    cost = [];
  }

let analyze ?(engine = (`Fast : Fsmodel.Model.engine)) ?trace_cap ?sched ~uri
    ~func (cfg : Fsmodel.Model.config) ~nest ~checked =
  let refs =
    Array.of_list
      (List.mapi ref_info_of (nest : Loopir.Loop_nest.t).Loopir.Loop_nest.refs)
  in
  let recorder =
    Fsmodel.Attrib.create ?trace_cap ~threads:cfg.Fsmodel.Model.threads
      ~nrefs:(Array.length refs) ()
  in
  (* under a nondeterministic schedule every seed replays into the same
     recorder, so the aggregates are the union over the seed set and
     conservation holds against the summed engine count *)
  let engine_fs, sched =
    match sched with
    | None ->
        let r = Fsmodel.Model.run ~engine ~attrib:recorder cfg ~nest ~checked in
        (r.Fsmodel.Model.fs_cases, None)
    | Some (kind, seeds) ->
        let sum =
          Array.fold_left
            (fun acc seed ->
              let r =
                Fsmodel.Model.run ~engine ~attrib:recorder
                  { cfg with Fsmodel.Model.sched = Some (kind, seed) }
                  ~nest ~checked
              in
              acc + r.Fsmodel.Model.fs_cases)
            0 seeds
        in
        (sum, Some (Ompsched.Dispatch.kind_name kind, Array.length seeds))
  in
  let line_bytes = Archspec.Arch.line_bytes cfg.Fsmodel.Model.arch in
  let layout = Loopir.Layout.make ~line_bytes checked in
  let verdicts =
    try
      List.map
        (fun (p : Analysis.Depend.pair) ->
          Printf.sprintf "%s vs %s: %s [%s%s]%s"
            p.Analysis.Depend.a.Loopir.Array_ref.repr
            p.Analysis.Depend.b.Loopir.Array_ref.repr
            (Analysis.Depend.verdict_name p.Analysis.Depend.verdict)
            (Analysis.Depend.backend_name
               p.Analysis.Depend.ev.Analysis.Depend.ev_backend)
            (if p.Analysis.Depend.ev.Analysis.Depend.ev_must then ", must"
             else "")
            (match p.Analysis.Depend.ev.Analysis.Depend.ev_witness with
            | Some w ->
                ", witness " ^ Analysis.Depend.witness_to_string w
            | None -> ""))
        (Analysis.Depend.pairs ~line_bytes ~params:cfg.Fsmodel.Model.params
           nest)
    with _ -> []
  in
  let cost =
    (* the reuse model is static-schedule semantics; no Eq. 1 view for a
       replayed nondeterministic schedule *)
    if sched <> None then []
    else
      try
        let a =
          Analysis.Reuse.analyze ~arch:cfg.Fsmodel.Model.arch
            ?chunk:cfg.Fsmodel.Model.chunk ~threads:cfg.Fsmodel.Model.threads
            ~params:cfg.Fsmodel.Model.params ~checked nest
        in
      let p = a.Analysis.Reuse.prediction in
      [
        Format.asprintf "%a" Costmodel.Total_cost.pp_eq1
          a.Analysis.Reuse.eq1;
        Printf.sprintf
          "FS share %.1f%% of predicted total; miss rate %.2f%%, %.0f \
           memory fetches"
          (Costmodel.Total_cost.fs_percent ~fs:a.Analysis.Reuse.breakdown)
          (100. *. p.Analysis.Reuse.miss_rate)
          p.Analysis.Reuse.mem_fetches;
      ]
    with _ -> []
  in
  {
    (aggregate ~uri ~func ~threads:cfg.Fsmodel.Model.threads
       ~chunk:cfg.Fsmodel.Model.chunk ~engine ~sched ~engine_fs ~refs
       ~line_bytes ~layout recorder)
    with
    verdicts;
    cost;
  }

let conservation_ok t =
  t.total = t.engine_fs
  && Fsmodel.Attrib.fold_pairs t.recorder ~init:0
       ~f:(fun a ~writer_ref:_ ~victim_ref:_ ~writer_tid:_ ~victim_tid:_
               ~count -> a + count)
     = t.total
  && Fsmodel.Attrib.fold_lines t.recorder ~init:0
       ~f:(fun a ~line:_ ~count -> a + count)
     = t.total
  && Fsmodel.Attrib.fold_cells t.recorder ~init:0
       ~f:(fun a ~line:_ ~tid:_ ~count -> a + count)
     = t.total
  && List.fold_left (fun a p -> a + p.pair_count) 0 t.pairs = t.total
  && List.fold_left (fun a (_, _, c) -> a + c) 0 t.arrays = t.total
  && List.fold_left (fun a (_, c) -> a + c) 0 t.lines = t.total

(* ------------------------------------------------------------------ *)
(* Rendering helpers                                                   *)
(* ------------------------------------------------------------------ *)

let pct t n =
  if t.total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int t.total

let access_word (r : ref_info) = if r.write then "written" else "read"

let chunk_str = function
  | Some c -> string_of_int c
  | None -> "pragma"

let engine_name = function `Fast -> "fast" | `Reference -> "reference"

(* the array a byte address falls in, if any *)
let array_at t addr =
  List.find_map
    (fun (name, base, size) ->
      if addr >= base && addr < base + size then Some (name, addr - base)
      else None)
    (Loopir.Layout.globals t.layout)

let line_label t line =
  let addr = line * t.line_bytes in
  match array_at t addr with
  | Some (name, off) -> Printf.sprintf "%d (%s +%d)" line name off
  | None -> string_of_int line

let pair_sentence t (p : pair_agg) =
  let wt, vt =
    match p.thread_pairs with (wt, vt, _) :: _ -> (wt, vt) | [] -> (0, 0)
  in
  let writer_part =
    match p.writer with
    | Some w -> Printf.sprintf "%s written by T%d" w.repr wt
    | None -> Printf.sprintf "a write by T%d" wt
  in
  let more =
    match List.length p.thread_pairs with
    | 0 | 1 -> ""
    | n -> Printf.sprintf " and %d more thread pair(s)" (n - 1)
  in
  Printf.sprintf "%.1f%% of FS cases: %s invalidates %s %s by T%d (%d \
                  case(s)%s)"
    (pct t p.pair_count) writer_part p.victim.repr (access_word p.victim) vt
    p.pair_count more

(* ------------------------------------------------------------------ *)
(* Text renderer (annotated source)                                    *)
(* ------------------------------------------------------------------ *)

let header t =
  match t.sched with
  | Some (name, seeds) ->
      Printf.sprintf
        "%s: %d false-sharing case(s) in %s at %d thread(s), schedule(%s) \
         over %d seed(s) (%s engine)\n"
        t.uri t.engine_fs t.func t.threads name seeds (engine_name t.engine)
  | None ->
      Printf.sprintf
        "%s: %d false-sharing case(s) in %s at %d thread(s), chunk %s (%s \
         engine)\n"
        t.uri t.engine_fs t.func t.threads (chunk_str t.chunk)
        (engine_name t.engine)

let take n l = List.filteri (fun i _ -> i < n) l

let to_text ?source ?(top = 3) t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (header t);
  if t.verdicts <> [] then begin
    Buffer.add_string buf "\ndependence verdicts:\n";
    List.iter
      (fun v -> Buffer.add_string buf ("  " ^ v ^ "\n"))
      t.verdicts
  end;
  if t.cost <> [] then begin
    Buffer.add_string buf "\nanalytic cost (Eq. 1):\n";
    List.iter
      (fun v -> Buffer.add_string buf ("  " ^ v ^ "\n"))
      t.cost
  end;
  if t.total = 0 then
    Buffer.add_string buf
      "no false sharing recorded: every access stays on thread-private \
       cache lines under this schedule.\n"
  else begin
    let top_pairs = take top t.pairs in
    Buffer.add_string buf "\nreference pairs (by share of all cases):\n";
    List.iter
      (fun p -> Buffer.add_string buf ("  " ^ pair_sentence t p ^ "\n"))
      top_pairs;
    (match List.length t.pairs - List.length top_pairs with
    | 0 -> ()
    | n ->
        Buffer.add_string buf
          (Printf.sprintf "  ... and %d more pair(s)\n" n));
    Buffer.add_string buf "\nby array (writer -> victim):\n";
    List.iter
      (fun (w, v, c) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %6.1f%%  %d case(s)\n"
             (Printf.sprintf "%s -> %s" w v)
             (pct t c) c))
      t.arrays;
    Buffer.add_string buf "\nhottest cache lines:\n";
    List.iter
      (fun (l, c) ->
        Buffer.add_string buf
          (Printf.sprintf "  line %-18s %6.1f%%  %d case(s)\n"
             (line_label t l) (pct t c) c))
      (take 5 t.lines);
    (match List.length t.lines with
    | n when n > 5 ->
        Buffer.add_string buf
          (Printf.sprintf "  ... and %d more line(s)\n" (n - 5))
    | _ -> ());
    (* annotated source: one attribution line under each victim span *)
    match source with
    | None -> ()
    | Some src ->
        let by_line : (int, (int * string) list) Hashtbl.t =
          Hashtbl.create 8
        in
        List.iter
          (fun p ->
            let s = p.victim.span in
            if not (Minic.Span.is_none s) then
              Hashtbl.replace by_line s.Minic.Span.line
                ((s.Minic.Span.col, pair_sentence t p)
                :: Option.value ~default:[]
                     (Hashtbl.find_opt by_line s.Minic.Span.line)))
          top_pairs;
        if Hashtbl.length by_line > 0 then begin
          Buffer.add_string buf "\nannotated source:\n";
          let lines = String.split_on_char '\n' src in
          List.iteri
            (fun i line ->
              let lno = i + 1 in
              Buffer.add_string buf (Printf.sprintf "%5d | %s\n" lno line);
              match Hashtbl.find_opt by_line lno with
              | None -> ()
              | Some anns ->
                  List.iter
                    (fun (col, msg) ->
                      Buffer.add_string buf
                        (Printf.sprintf "      | %s^ %s\n"
                           (String.make (max 0 (col - 1)) ' ')
                           msg))
                    (List.sort compare anns))
            lines
        end
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Heatmap renderer                                                    *)
(* ------------------------------------------------------------------ *)

let density_chars = " .:-=+*#%@"

let heatmap ?(rows = 24) ?(cols = 16) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header t);
  if t.total = 0 then (
    Buffer.add_string buf "no false sharing recorded: nothing to map.\n";
    Buffer.contents buf)
  else begin
    let lo = List.fold_left (fun a (l, _) -> min a l) max_int t.lines in
    let hi = List.fold_left (fun a (l, _) -> max a l) min_int t.lines in
    let span = hi - lo + 1 in
    let nrows = max 1 (min rows span) in
    let per_row = (span + nrows - 1) / nrows in
    let shown_threads = min cols t.threads in
    let grid = Array.make_matrix nrows shown_threads 0 in
    let overflow = ref 0 in
    Fsmodel.Attrib.fold_cells t.recorder ~init:() ~f:(fun () ~line ~tid ~count ->
        let r = (line - lo) / per_row in
        if tid < shown_threads then grid.(r).(tid) <- grid.(r).(tid) + count
        else overflow := !overflow + count);
    let maxcell =
      Array.fold_left
        (fun a row -> Array.fold_left max a row)
        1 grid
    in
    Buffer.add_string buf
      (Printf.sprintf
         "\ncache line x victim thread (%d B lines, %d line(s) per row, max \
          cell = %d case(s))\n"
         t.line_bytes per_row maxcell);
    Buffer.add_string buf "  lines              arrays        ";
    for tid = 0 to shown_threads - 1 do
      Buffer.add_string buf (Printf.sprintf "%d" (tid mod 10))
    done;
    Buffer.add_char buf '\n';
    for r = 0 to nrows - 1 do
      let first = lo + (r * per_row) in
      let last = min hi (first + per_row - 1) in
      (* arrays whose bytes overlap this row's line range *)
      let labels =
        List.filter_map
          (fun (name, base, size) ->
            let b0 = first * t.line_bytes
            and b1 = ((last + 1) * t.line_bytes) - 1 in
            if base <= b1 && base + size - 1 >= b0 then Some name else None)
          (Loopir.Layout.globals t.layout)
      in
      let label =
        match labels with [] -> "-" | l -> String.concat "," l
      in
      let range =
        if first = last then string_of_int first
        else Printf.sprintf "%d..%d" first last
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-18s %-13s " range
           (if String.length label > 13 then String.sub label 0 13 else label));
      for tid = 0 to shown_threads - 1 do
        let c = grid.(r).(tid) in
        let ch =
          if c = 0 then ' '
          else
            let n = String.length density_chars in
            let i = 1 + (c * (n - 2) / maxcell) in
            density_chars.[min (n - 1) i]
        in
        Buffer.add_char buf ch
      done;
      Buffer.add_char buf '\n'
    done;
    if t.threads > shown_threads then
      Buffer.add_string buf
        (Printf.sprintf
           "  (%d case(s) on threads T%d..T%d not shown; raise --cols)\n"
           !overflow shown_threads (t.threads - 1));
    Buffer.add_string buf
      (Printf.sprintf "  scale: '%s' (blank = 0)\n"
         (String.sub density_chars 1 (String.length density_chars - 1)));
    Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

let trace_json t =
  let open Analysis.Json in
  let rec_ = t.recorder in
  let repr_of i = if i < 0 then "?" else t.refs.(i).repr in
  let meta =
    Obj
      [
        ("name", Str "process_name");
        ("ph", Str "M");
        ("pid", Int 0);
        ("args", Obj [ ("name", Str ("fsdetect model: " ^ t.uri)) ]);
      ]
    :: List.init t.threads (fun tid ->
           Obj
             [
               ("name", Str "thread_name");
               ("ph", Str "M");
               ("pid", Int 0);
               ("tid", Int tid);
               ("args", Obj [ ("name", Str (Printf.sprintf "T%d" tid)) ]);
             ])
  in
  let events =
    List.init (Fsmodel.Attrib.trace_len rec_) (fun i ->
        let wref = Fsmodel.Attrib.trace_writer_ref rec_ i in
        let vref = Fsmodel.Attrib.trace_victim_ref rec_ i in
        Obj
          [
            ( "name",
              Str (Printf.sprintf "FS %s -> %s" (repr_of wref) (repr_of vref))
            );
            ("ph", Str "i");
            ("s", Str "t");
            ("ts", Int (Fsmodel.Attrib.trace_step rec_ i));
            ("pid", Int 0);
            ("tid", Int (Fsmodel.Attrib.trace_victim_tid rec_ i));
            ( "args",
              Obj
                [
                  ("line", Int (Fsmodel.Attrib.trace_line rec_ i));
                  ("writerThread", Int (Fsmodel.Attrib.trace_writer_tid rec_ i));
                  ("writerRef", Str (repr_of wref));
                  ("victimRef", Str (repr_of vref));
                ] );
          ])
  in
  Obj
    [
      ("displayTimeUnit", Str "ns");
      ( "otherData",
        Obj
          [
            ("tool", Str "fsdetect explain");
            ("uri", Str t.uri);
            ("func", Str t.func);
            ("threads", Int t.threads);
            ("engineFs", Int t.engine_fs);
            ("recordedEvents", Int (Fsmodel.Attrib.trace_len rec_));
            ("droppedEvents", Int (Fsmodel.Attrib.trace_dropped rec_));
          ] );
      ("traceEvents", List (meta @ events));
    ]

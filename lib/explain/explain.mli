(** Attribution and explanation of false-sharing counts (the layer
    behind [fsdetect explain]).

    {!Fsmodel.Model.run} reduces a loop nest to one scalar [fs_cases];
    this module runs the engine with an {!Fsmodel.Attrib} recorder
    attached and aggregates the per-event provenance into the views a
    developer fixing false sharing actually needs:

    - {b reference pairs} — which written reference invalidates which
      other reference, with the thread pairs involved;
    - {b arrays} — the same, folded to base arrays;
    - {b cache lines} — which lines the cases concentrate on.

    Three renderers turn a summary into output: {!to_text} (annotated
    source: each hot reference's span is underlined with its share of
    all cases), {!heatmap} (an ASCII cache-line × victim-thread density
    map), and {!trace_json} (a Chrome [trace_event] document loadable in
    Perfetto / [chrome://tracing] for step-by-step inspection).

    The conservation invariant — per-pair counts sum exactly to the
    engine's [fs_cases] — holds by construction and is re-checked by
    {!analyze} (which raises on a mismatch) as well as by the test suite
    and the fuzzing oracle matrix. *)

type ref_info = {
  index : int;  (** compiled reference index ({!Fsmodel.Ownership}) *)
  repr : string;  (** source rendering, e.g. ["a[i][j]"] *)
  base : string;  (** base array the reference is rooted at *)
  write : bool;
  span : Minic.Span.t;
}

type pair_agg = {
  writer : ref_info option;
      (** [None] for the unknown writer (never produced by the engine) *)
  victim : ref_info;
  pair_count : int;
  thread_pairs : (int * int * int) list;
      (** (writer thread, victim thread, count), descending count *)
}

type t = {
  uri : string;  (** what was analyzed, for rendering *)
  func : string;
  threads : int;
  chunk : int option;
  engine : Fsmodel.Model.engine;
  sched : (string * int) option;
      (** (replayed schedule kind, seed count) when the analysis drove a
          nondeterministic schedule; aggregates then cover the whole
          seed set *)
  engine_fs : int;  (** the engine's [fs_cases] (summed over seeds) *)
  total : int;  (** recorded events; equals [engine_fs] *)
  refs : ref_info array;
  pairs : pair_agg list;  (** descending count *)
  arrays : (string * string * int) list;
      (** (writer base, victim base, count), descending *)
  lines : (int * int) list;  (** (cache line, count), descending *)
  line_bytes : int;
  layout : Loopir.Layout.t;
  recorder : Fsmodel.Attrib.t;  (** the raw recorder, for the trace *)
  verdicts : string list;
      (** one rendered {!Analysis.Depend} line per reference pair —
          verdict, deciding backend, must-ness, witness iteration pair —
          shown as the [dependence verdicts] section of {!to_text};
          empty when the nest's pairs cannot be formed *)
  cost : string list;
      (** the analytic Eq. 1 view from {!Analysis.Reuse.analyze} — the
          one-line breakdown plus the FS share / predicted miss-rate
          sentence — shown as the [analytic cost] section of {!to_text};
          empty when the reuse model cannot evaluate the nest *)
}

val analyze :
  ?engine:Fsmodel.Model.engine ->
  ?trace_cap:int ->
  ?sched:Ompsched.Dispatch.kind * int array ->
  uri:string ->
  func:string ->
  Fsmodel.Model.config ->
  nest:Loopir.Loop_nest.t ->
  checked:Minic.Typecheck.checked ->
  t
(** Run the model with a recorder attached and aggregate.  [trace_cap]
    bounds the per-event ring kept for {!trace_json} (default [65536]).
    [sched] replays a nondeterministic schedule once per seed into the
    same recorder, so pair/array/line aggregates cover the whole seed
    set and [engine_fs] is the summed count (per-seed attribution
    aggregation); runs are sequential — the recorder is not thread-safe.
    @raise Failure if the recorded total disagrees with the engine's
    count (a broken conservation invariant is a bug, not a result). *)

val to_text : ?source:string -> ?top:int -> t -> string
(** The annotated-source report: a header with the totals, the [top]
    (default 3) reference pairs with their share of all cases and
    hottest thread pairs, the per-array and per-line concentration
    tables — and, when [source] is given, the program listing with each
    hot span underlined by its attribution line. *)

val heatmap : ?rows:int -> ?cols:int -> t -> string
(** ASCII cache-line × victim-thread heatmap: touched lines are bucketed
    into at most [rows] (default 24) contiguous row ranges labelled with
    the arrays they fall in, one column per victim thread (capped at
    [cols], default 16), cells scaled [.:-=+*#%@] by event density. *)

val trace_json : t -> Analysis.Json.t
(** Chrome [trace_event] export: one instant event per recorded FS case
    ([ph = "i"], [ts] = lockstep step, [tid] = victim thread), thread
    name metadata, and an [otherData] block with the totals.  Events
    past the recorder's ring capacity are dropped (the header says how
    many); aggregates in {!t} always cover every case. *)

val conservation_ok : t -> bool
(** Re-check the invariant: {!total} = [engine_fs] and all three
    aggregate views sum back to it.  Exposed for tests and the fuzzing
    oracle. *)

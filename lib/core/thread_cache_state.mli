(** Step 3 of the paper's method (§III-C): one thread's cache state — a
    fully-associative LRU stack of cache lines, each tagged with whether
    this thread has written it (the "W" state the φ function tests).

    The stack-distance analysis is exactly the paper's: insert at the top,
    move-to-top on re-access, evict from the bottom when the number of
    distinct lines exceeds the stack size. *)

type t

val no_line : int
(** Sentinel returned by {!insert_fast} when nothing was evicted. *)

val create : capacity:int -> t
(** [capacity] in lines ({!of_cache} derives it from a geometry); use
    [max_int] for the unbounded-stack ablation. *)

val of_cache : Archspec.Cache_geom.t -> t
(** {!create} with the geometry's line capacity (size / line bytes). *)

val insert : t -> line:int -> written:bool -> (int * bool) option
(** Insert or refresh a line; a line once written stays in written state
    (it is dirty until evicted).  Returns the LRU entry (line, written)
    evicted by the insertion, if any. *)

val insert_fast : t -> line:int -> written:bool -> int
(** Allocation-free {!insert}: returns the evicted line, or {!no_line}. *)

val holds : t -> int -> bool
(** Does this state contain the line (in any state)? *)

val holds_modified : t -> int -> bool
(** The φ test: does this state contain the line in written state? *)

val invalidate : t -> int -> bool
(** Drop a line (only used by the write-invalidate ablation). *)

val size : t -> int
(** Distinct lines currently held. *)

val clear : t -> unit
(** Empty the stack (between chunk runs / configurations). *)

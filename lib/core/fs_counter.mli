(** The model's FS-counting engine: per-thread stack-distance cache states
    plus an O(1) bitmask index of which threads hold each line in written
    state.  Semantically identical to folding {!Detect.fs_cases_for_insert}
    over the states (tests cross-check the two); this version makes the
    1-to-All comparison a constant-time SWAR popcount.

    Up to 62 threads the per-line mask is a single word; wider thread
    counts transparently switch to a {!Cachesim.Bitset} per line. *)

type t

val create : threads:int -> capacity:int -> t
(** @raise Invalid_argument when [threads < 1]. *)

val process : t -> me:int -> line:int -> written:bool -> int
(** Count the FS cases triggered by thread [me] inserting [line] (the φ
    comparison against all other states), then insert it. *)

val process_attr :
  t ->
  me:int ->
  line:int ->
  written:bool ->
  ref_id:int ->
  step:int ->
  Attrib.t ->
  int
(** {!process} with provenance: each counted FS case is also recorded
    into the {!Attrib} sink as (writer thread, its last writing
    reference) invalidating (thread [me], reference [ref_id]) at
    lockstep [step].  The returned count is bit-identical to
    {!process}; the recording overhead is paid only on accesses that
    trigger cases.  A run must use either {!process} or {!process_attr}
    consistently (both maintain the same counting state, but only this
    one maintains writer provenance). *)

val process_entries : t -> me:int -> Ownership.entry list -> int
(** Fold {!process} over an ownership list. *)

val invalidate_others : t -> me:int -> line:int -> unit
(** Drop [line] from every other thread's state (write-invalidate
    ablation). *)

val state : t -> int -> Thread_cache_state.t
(** Direct access to one thread's stack (for tests). *)

val threads : t -> int

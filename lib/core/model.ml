type stack_policy = Level_l1 | Level_l2 | Lines of int | Unbounded

type config = {
  arch : Archspec.Arch.t;
  threads : int;
  chunk : int option;
  params : (string * int) list;
  stack : stack_policy;
  invalidate_on_write : bool;
  sched : (Ompsched.Dispatch.kind * int) option;
}

let default_config ?(arch = Archspec.Arch.paper_machine) ~threads () =
  {
    arch;
    threads;
    chunk = None;
    params = [ ("num_threads", threads) ];
    stack = Level_l1;
    invalidate_on_write = false;
    sched = None;
  }

type run_sample = { chunk_run : int; cumulative_fs : int }

type result = {
  fs_cases : int;
  thread_steps : int;
  iterations_evaluated : int;
  chunk_runs : int;
  samples : run_sample list;
  truncated : bool;
  steals : int;
}

type engine = [ `Fast | `Reference ]

exception Stop

type state = {
  mutable fs : int;
  mutable steps : int;
  mutable iters : int;
  mutable runs : int;
  mutable samples : run_sample list;
  mutable truncated : bool;
  mutable plan_steals : int;
}

let capacity_of cfg =
  match cfg.stack with
  | Level_l1 -> Archspec.Cache_geom.lines cfg.arch.Archspec.Arch.l1
  | Level_l2 -> Archspec.Cache_geom.lines cfg.arch.Archspec.Arch.l2
  | Lines n -> n
  | Unbounded -> max_int

(* Geometry of one parallel region, evaluated with the current outer-index
   values (and the parallel variable pinned at its lower bound). *)
type region = {
  par_lower : int;
  par_step : int;
  inner : Loopir.Loop_nest.loop array;
  inner_lowers : int array;
  inner_trips : int array;
  inner_per_par : int;
  chunk : int;
  sched : Ompsched.Schedule.t;
}

let runs = ref 0
let run_count () = !runs

let run ?max_chunk_runs ?(record_samples = false) ?(engine = (`Fast : engine))
    ?attrib cfg ~(nest : Loopir.Loop_nest.t) ~checked =
  if cfg.threads < 1 then invalid_arg "Model.run: threads < 1";
  incr runs;
  let arch = cfg.arch in
  let line_bytes = Archspec.Arch.line_bytes arch in
  let layout = Loopir.Layout.make ~line_bytes checked in
  let loops = Array.of_list nest.Loopir.Loop_nest.loops in
  let nloops = Array.length loops in
  let d = nest.Loopir.Loop_nest.parallel_depth in
  let var_slots =
    List.map (fun (l : Loopir.Loop_nest.loop) -> l.Loopir.Loop_nest.var)
      nest.Loopir.Loop_nest.loops
  in
  let own =
    Ownership.compile ~layout ~line_bytes ~params:cfg.params ~var_slots nest
  in
  let chunk_spec =
    match cfg.chunk with
    | Some c -> Some c
    | None -> Loopir.Loop_nest.chunk_spec nest
  in
  (* Which dispatcher drives the region: an explicit config override wins;
     otherwise a dynamic/guided pragma is replayed at seed 0, and static
     keeps the closed-form round-robin deal (the paper's §III path,
     untouched). *)
  let dispatch =
    match cfg.sched with
    | Some _ as s -> s
    | None -> (
        match Loopir.Loop_nest.schedule_kind nest with
        | `Static -> None
        | `Dynamic ->
            Some
              ( Ompsched.Dispatch.Dynamic
                  { chunk = Option.value ~default:1 chunk_spec },
                0 )
        | `Guided ->
            Some
              ( Ompsched.Dispatch.Guided
                  { min_chunk = Option.value ~default:1 chunk_spec },
                0 ))
  in
  let idx = Array.make nloops 0 in
  (* variable lookup, precompiled: each name resolves once to either a
     parameter value or a loop slot read from [idx], instead of walking
     the params assoc list on every bound evaluation *)
  let env : (string, [ `Param of int | `Slot of int ]) Hashtbl.t =
    Hashtbl.create 16
  in
  Array.iteri
    (fun i (l : Loopir.Loop_nest.loop) ->
      Hashtbl.replace env l.Loopir.Loop_nest.var (`Slot i))
    loops;
  (* params shadow loop variables, first binding winning (assoc order) *)
  List.iter (fun (v, k) -> Hashtbl.replace env v (`Param k))
    (List.rev cfg.params);
  let lookup v =
    match Hashtbl.find_opt env v with
    | Some (`Param k) -> Some k
    | Some (`Slot i) -> Some idx.(i)
    | None -> None
  in
  let st =
    {
      fs = 0;
      steps = 0;
      iters = 0;
      runs = 0;
      samples = [];
      truncated = false;
      plan_steals = 0;
    }
  in
  let run_limit = Option.value ~default:max_int max_chunk_runs in
  let complete_chunk_run () =
    st.runs <- st.runs + 1;
    if record_samples then
      st.samples <- { chunk_run = st.runs; cumulative_fs = st.fs } :: st.samples;
    if st.runs >= run_limit then begin
      st.truncated <- true;
      raise Stop
    end
  in
  (* Region geometry for the outer-variable values currently in [idx];
     [None] when the region executes no iterations. *)
  let region_geometry () =
    let ploop = loops.(d) in
    let par_lower = Loopir.Expr_eval.eval lookup ploop.Loopir.Loop_nest.lower in
    let par_trip = Loopir.Loop_nest.trip_count ploop ~env:lookup in
    if par_trip <= 0 then None
    else begin
      (* inner loop geometry, parallel variable pinned at its lower bound *)
      idx.(d) <- par_lower;
      let inner = Array.sub loops (d + 1) (nloops - d - 1) in
      let inner_lowers =
        Array.map
          (fun (l : Loopir.Loop_nest.loop) ->
            Loopir.Expr_eval.eval lookup l.Loopir.Loop_nest.lower)
          inner
      in
      let inner_trips =
        Array.map
          (fun (l : Loopir.Loop_nest.loop) ->
            Loopir.Loop_nest.trip_count l ~env:lookup)
          inner
      in
      let inner_per_par = Array.fold_left ( * ) 1 inner_trips in
      if inner_per_par <= 0 then None
      else begin
        let chunk =
          match chunk_spec with
          | Some c -> c
          | None ->
              (* schedule(static) without a chunk: contiguous blocks *)
              Ompsched.Schedule.block_chunk ~threads:cfg.threads
                ~total:par_trip
        in
        Some
          {
            par_lower;
            par_step = ploop.Loopir.Loop_nest.step;
            inner;
            inner_lowers;
            inner_trips;
            inner_per_par;
            chunk;
            sched =
              Ompsched.Schedule.make ~threads:cfg.threads ~chunk
                ~total:par_trip;
          }
      end
    end
  in
  (* Fast engine: incremental odometer over the inner loops (no div/mod on
     the step counter), ownership lists strength-reduced through a cursor
     into a reused buffer, FS counting through the bitmask counter. *)
  let eval_region_fast counter cur buf =
    match region_geometry () with
    | None -> ()
    | Some r ->
        let n_inner = Array.length r.inner in
        let max_par_steps = Ompsched.Schedule.max_steps_per_thread r.sched in
        let max_steps = max_par_steps * r.inner_per_par in
        let run_span = r.chunk * r.inner_per_par in
        for l = 0 to d - 1 do
          Ownership.cursor_set cur l idx.(l)
        done;
        let pos = Array.make (max 1 n_inner) 0 in
        for j = 0 to n_inner - 1 do
          Ownership.cursor_set cur (d + 1 + j) r.inner_lowers.(j)
        done;
        let k_par = ref 0 in
        for s = 0 to max_steps - 1 do
          for t = 0 to cfg.threads - 1 do
            let q = Ompsched.Schedule.nth_iter_int r.sched ~tid:t !k_par in
            if q >= 0 then begin
              Ownership.cursor_set cur d (r.par_lower + (q * r.par_step));
              Ownership.fill cur buf;
              for i = 0 to Ownership.buf_len buf - 1 do
                let line = Ownership.buf_line buf i in
                let written = Ownership.buf_written buf i in
                let fs = Fs_counter.process counter ~me:t ~line ~written in
                if cfg.invalidate_on_write && written then
                  Fs_counter.invalidate_others counter ~me:t ~line;
                st.fs <- st.fs + fs
              done;
              st.iters <- st.iters + 1
            end
          done;
          st.steps <- st.steps + 1;
          if (s + 1) mod run_span = 0 then complete_chunk_run ();
          (* advance the inner odometer (innermost varies fastest); a full
             wrap moves every thread to its next parallel iteration *)
          let rec bump j =
            if j < 0 then incr k_par
            else begin
              let p = pos.(j) + 1 in
              if p = r.inner_trips.(j) then begin
                pos.(j) <- 0;
                Ownership.cursor_set cur (d + 1 + j) r.inner_lowers.(j);
                bump (j - 1)
              end
              else begin
                pos.(j) <- p;
                Ownership.cursor_set cur (d + 1 + j)
                  (r.inner_lowers.(j)
                  + (p * r.inner.(j).Loopir.Loop_nest.step))
              end
            end
          in
          bump (n_inner - 1)
        done;
        (* a trailing partial chunk run still counts as a run *)
        if max_steps mod run_span <> 0 then complete_chunk_run ()
  in
  (* The fast region evaluator with an attribution sink attached: same
     odometer and cursor, but FS counting goes through
     [Fs_counter.process_attr] so every case lands in the recorder.
     Kept as a separate loop so the plain path stays branch-free. *)
  let eval_region_fast_attr sink counter cur buf =
    match region_geometry () with
    | None -> ()
    | Some r ->
        let n_inner = Array.length r.inner in
        let max_par_steps = Ompsched.Schedule.max_steps_per_thread r.sched in
        let max_steps = max_par_steps * r.inner_per_par in
        let run_span = r.chunk * r.inner_per_par in
        for l = 0 to d - 1 do
          Ownership.cursor_set cur l idx.(l)
        done;
        let pos = Array.make (max 1 n_inner) 0 in
        for j = 0 to n_inner - 1 do
          Ownership.cursor_set cur (d + 1 + j) r.inner_lowers.(j)
        done;
        let k_par = ref 0 in
        for s = 0 to max_steps - 1 do
          for t = 0 to cfg.threads - 1 do
            let q = Ompsched.Schedule.nth_iter_int r.sched ~tid:t !k_par in
            if q >= 0 then begin
              Ownership.cursor_set cur d (r.par_lower + (q * r.par_step));
              Ownership.fill cur buf;
              for i = 0 to Ownership.buf_len buf - 1 do
                let line = Ownership.buf_line buf i in
                let written = Ownership.buf_written buf i in
                let fs =
                  Fs_counter.process_attr counter ~me:t ~line ~written
                    ~ref_id:(Ownership.buf_ref buf i) ~step:st.steps sink
                in
                if cfg.invalidate_on_write && written then
                  Fs_counter.invalidate_others counter ~me:t ~line;
                st.fs <- st.fs + fs
              done;
              st.iters <- st.iters + 1
            end
          done;
          st.steps <- st.steps + 1;
          if (s + 1) mod run_span = 0 then complete_chunk_run ();
          let rec bump j =
            if j < 0 then incr k_par
            else begin
              let p = pos.(j) + 1 in
              if p = r.inner_trips.(j) then begin
                pos.(j) <- 0;
                Ownership.cursor_set cur (d + 1 + j) r.inner_lowers.(j);
                bump (j - 1)
              end
              else begin
                pos.(j) <- p;
                Ownership.cursor_set cur (d + 1 + j)
                  (r.inner_lowers.(j)
                  + (p * r.inner.(j).Loopir.Loop_nest.step))
              end
            end
          in
          bump (n_inner - 1)
        done;
        if max_steps mod run_span <> 0 then complete_chunk_run ()
  in
  (* Reference engine: the direct transcription of the paper's procedure —
     per-step div/mod index decomposition, freshly built ownership lists,
     and the 1-to-All φ comparison as a scan over all other thread states.
     Kept as the oracle the fast engine is property-checked against. *)
  let eval_region_ref states =
    match region_geometry () with
    | None -> ()
    | Some r ->
        let max_par_steps = Ompsched.Schedule.max_steps_per_thread r.sched in
        let max_steps = max_par_steps * r.inner_per_par in
        let run_span = r.chunk * r.inner_per_par in
        for s = 0 to max_steps - 1 do
          let k_par = s / r.inner_per_par in
          let k_in = s mod r.inner_per_par in
          for t = 0 to cfg.threads - 1 do
            match Ompsched.Schedule.nth_iter_of_thread r.sched ~tid:t k_par with
            | None -> ()
            | Some q ->
                idx.(d) <- r.par_lower + (q * r.par_step);
                (* mixed-radix decomposition of the inner iteration *)
                let rem = ref k_in in
                for j = Array.length r.inner - 1 downto 0 do
                  let trip = r.inner_trips.(j) in
                  let v = !rem mod trip in
                  rem := !rem / trip;
                  idx.(d + 1 + j) <-
                    r.inner_lowers.(j)
                    + (v * r.inner.(j).Loopir.Loop_nest.step)
                done;
                let entries = Ownership.lines_ref own idx in
                List.iter
                  (fun { Ownership.line; written } ->
                    let fs = Detect.fs_cases_for_insert ~states ~me:t ~line in
                    ignore
                      (Thread_cache_state.insert states.(t) ~line ~written);
                    if cfg.invalidate_on_write && written then
                      Array.iteri
                        (fun j s ->
                          if j <> t then
                            ignore (Thread_cache_state.invalidate s line))
                        states;
                    st.fs <- st.fs + fs)
                  entries;
                st.iters <- st.iters + 1
          done;
          st.steps <- st.steps + 1;
          if (s + 1) mod run_span = 0 then complete_chunk_run ()
        done;
        (* a trailing partial chunk run still counts as a run *)
        if max_steps mod run_span <> 0 then complete_chunk_run ()
  in
  (* Reference-engine attribution: same traversal as [eval_region_ref],
     with writer provenance carried in one [Hashtbl] per thread (line ->
     last writing reference).  Events are recorded in the same order as
     the fast path, so the two recorders end up identical. *)
  let eval_region_ref_attr sink states wtbl =
    match region_geometry () with
    | None -> ()
    | Some r ->
        let max_par_steps = Ompsched.Schedule.max_steps_per_thread r.sched in
        let max_steps = max_par_steps * r.inner_per_par in
        let run_span = r.chunk * r.inner_per_par in
        for s = 0 to max_steps - 1 do
          let k_par = s / r.inner_per_par in
          let k_in = s mod r.inner_per_par in
          for t = 0 to cfg.threads - 1 do
            match Ompsched.Schedule.nth_iter_of_thread r.sched ~tid:t k_par with
            | None -> ()
            | Some q ->
                idx.(d) <- r.par_lower + (q * r.par_step);
                let rem = ref k_in in
                for j = Array.length r.inner - 1 downto 0 do
                  let trip = r.inner_trips.(j) in
                  let v = !rem mod trip in
                  rem := !rem / trip;
                  idx.(d + 1 + j) <-
                    r.inner_lowers.(j)
                    + (v * r.inner.(j).Loopir.Loop_nest.step)
                done;
                let entries = Ownership.lines_with_refs own idx in
                List.iter
                  (fun { Ownership.a_line = line; a_written = written;
                         a_ref = rid } ->
                    Array.iteri
                      (fun j sj ->
                        if j <> t && Thread_cache_state.holds_modified sj line
                        then
                          Attrib.record sink ~step:st.steps ~line
                            ~writer_tid:j
                            ~writer_ref:
                              (Option.value ~default:(-1)
                                 (Hashtbl.find_opt wtbl.(j) line))
                            ~victim_tid:t ~victim_ref:rid)
                      states;
                    let fs = Detect.fs_cases_for_insert ~states ~me:t ~line in
                    ignore
                      (Thread_cache_state.insert states.(t) ~line ~written);
                    if written then Hashtbl.replace wtbl.(t) line rid;
                    if cfg.invalidate_on_write && written then
                      Array.iteri
                        (fun j s ->
                          if j <> t then
                            ignore (Thread_cache_state.invalidate s line))
                        states;
                    st.fs <- st.fs + fs)
                  entries;
                st.iters <- st.iters + 1
          done;
          st.steps <- st.steps + 1;
          if (s + 1) mod run_span = 0 then complete_chunk_run ()
        done;
        if max_steps mod run_span <> 0 then complete_chunk_run ()
  in
  (* Plan-driven fast engine: the static evaluator with the round-robin
     deal swapped for a seed-replayed {!Ompsched.Dispatch.plan} (dynamic,
     guided or work-stealing iteration order).  The attribution branch is
     folded in — replayed plans are test/sweep-scale, so the static
     path's branch-free duplication is not warranted here. *)
  let eval_region_plan_fast kind seed attrib counter cur buf =
    match region_geometry () with
    | None -> ()
    | Some r ->
        let total = r.sched.Ompsched.Schedule.total in
        let plan =
          Ompsched.Dispatch.plan ~threads:cfg.threads ~total ~seed kind
        in
        st.plan_steals <- st.plan_steals + Ompsched.Dispatch.steals plan;
        let n_inner = Array.length r.inner in
        let max_par_steps = Ompsched.Dispatch.max_steps_per_thread plan in
        let max_steps = max_par_steps * r.inner_per_par in
        let run_span = Ompsched.Dispatch.window plan * r.inner_per_par in
        for l = 0 to d - 1 do
          Ownership.cursor_set cur l idx.(l)
        done;
        let pos = Array.make (max 1 n_inner) 0 in
        for j = 0 to n_inner - 1 do
          Ownership.cursor_set cur (d + 1 + j) r.inner_lowers.(j)
        done;
        let k_par = ref 0 in
        for s = 0 to max_steps - 1 do
          for t = 0 to cfg.threads - 1 do
            let q = Ompsched.Dispatch.nth_iter_int plan ~tid:t !k_par in
            if q >= 0 then begin
              Ownership.cursor_set cur d (r.par_lower + (q * r.par_step));
              Ownership.fill cur buf;
              for i = 0 to Ownership.buf_len buf - 1 do
                let line = Ownership.buf_line buf i in
                let written = Ownership.buf_written buf i in
                let fs =
                  match attrib with
                  | None -> Fs_counter.process counter ~me:t ~line ~written
                  | Some sink ->
                      Fs_counter.process_attr counter ~me:t ~line ~written
                        ~ref_id:(Ownership.buf_ref buf i) ~step:st.steps sink
                in
                if cfg.invalidate_on_write && written then
                  Fs_counter.invalidate_others counter ~me:t ~line;
                st.fs <- st.fs + fs
              done;
              st.iters <- st.iters + 1
            end
          done;
          st.steps <- st.steps + 1;
          if (s + 1) mod run_span = 0 then complete_chunk_run ();
          let rec bump j =
            if j < 0 then incr k_par
            else begin
              let p = pos.(j) + 1 in
              if p = r.inner_trips.(j) then begin
                pos.(j) <- 0;
                Ownership.cursor_set cur (d + 1 + j) r.inner_lowers.(j);
                bump (j - 1)
              end
              else begin
                pos.(j) <- p;
                Ownership.cursor_set cur (d + 1 + j)
                  (r.inner_lowers.(j)
                  + (p * r.inner.(j).Loopir.Loop_nest.step))
              end
            end
          in
          bump (n_inner - 1)
        done;
        if max_steps > 0 && max_steps mod run_span <> 0 then
          complete_chunk_run ()
  in
  (* Plan-driven reference engine: the paper-transcription traversal over
     the same replayed plan, with the attribution recorder fed in the
     same event order as the fast path so the two recorders match. *)
  let eval_region_plan_ref kind seed attrib states wtbl =
    match region_geometry () with
    | None -> ()
    | Some r ->
        let total = r.sched.Ompsched.Schedule.total in
        let plan =
          Ompsched.Dispatch.plan ~threads:cfg.threads ~total ~seed kind
        in
        st.plan_steals <- st.plan_steals + Ompsched.Dispatch.steals plan;
        let max_par_steps = Ompsched.Dispatch.max_steps_per_thread plan in
        let max_steps = max_par_steps * r.inner_per_par in
        let run_span = Ompsched.Dispatch.window plan * r.inner_per_par in
        for s = 0 to max_steps - 1 do
          let k_par = s / r.inner_per_par in
          let k_in = s mod r.inner_per_par in
          for t = 0 to cfg.threads - 1 do
            let q = Ompsched.Dispatch.nth_iter_int plan ~tid:t k_par in
            if q >= 0 then begin
              idx.(d) <- r.par_lower + (q * r.par_step);
              let rem = ref k_in in
              for j = Array.length r.inner - 1 downto 0 do
                let trip = r.inner_trips.(j) in
                let v = !rem mod trip in
                rem := !rem / trip;
                idx.(d + 1 + j) <-
                  r.inner_lowers.(j) + (v * r.inner.(j).Loopir.Loop_nest.step)
              done;
              (match attrib with
              | None ->
                  let entries = Ownership.lines_ref own idx in
                  List.iter
                    (fun { Ownership.line; written } ->
                      let fs =
                        Detect.fs_cases_for_insert ~states ~me:t ~line
                      in
                      ignore
                        (Thread_cache_state.insert states.(t) ~line ~written);
                      if cfg.invalidate_on_write && written then
                        Array.iteri
                          (fun j s ->
                            if j <> t then
                              ignore (Thread_cache_state.invalidate s line))
                          states;
                      st.fs <- st.fs + fs)
                    entries
              | Some sink ->
                  let entries = Ownership.lines_with_refs own idx in
                  List.iter
                    (fun { Ownership.a_line = line; a_written = written;
                           a_ref = rid } ->
                      Array.iteri
                        (fun j sj ->
                          if
                            j <> t
                            && Thread_cache_state.holds_modified sj line
                          then
                            Attrib.record sink ~step:st.steps ~line
                              ~writer_tid:j
                              ~writer_ref:
                                (Option.value ~default:(-1)
                                   (Hashtbl.find_opt wtbl.(j) line))
                              ~victim_tid:t ~victim_ref:rid)
                        states;
                      let fs =
                        Detect.fs_cases_for_insert ~states ~me:t ~line
                      in
                      ignore
                        (Thread_cache_state.insert states.(t) ~line ~written);
                      if written then Hashtbl.replace wtbl.(t) line rid;
                      if cfg.invalidate_on_write && written then
                        Array.iteri
                          (fun j s ->
                            if j <> t then
                              ignore (Thread_cache_state.invalidate s line))
                          states;
                      st.fs <- st.fs + fs)
                    entries);
              st.iters <- st.iters + 1
            end
          done;
          st.steps <- st.steps + 1;
          if (s + 1) mod run_span = 0 then complete_chunk_run ()
        done;
        if max_steps > 0 && max_steps mod run_span <> 0 then
          complete_chunk_run ()
  in
  (* enumerate the sequential outer loops *)
  let rec outer body level =
    if level = d then body ()
    else begin
      let loop = loops.(level) in
      let lo = Loopir.Expr_eval.eval lookup loop.Loopir.Loop_nest.lower in
      let hi = Loopir.Expr_eval.eval lookup loop.Loopir.Loop_nest.upper_excl in
      let v = ref lo in
      while !v < hi do
        idx.(level) <- !v;
        outer body (level + 1);
        v := !v + loop.Loopir.Loop_nest.step
      done
    end
  in
  (try
     match (engine, dispatch) with
     | `Fast, None ->
         let counter =
           Fs_counter.create ~threads:cfg.threads ~capacity:(capacity_of cfg)
         in
         let cur = Ownership.cursor own in
         let buf = Ownership.buffer () in
         (match attrib with
         | None -> outer (fun () -> eval_region_fast counter cur buf) 0
         | Some sink ->
             outer (fun () -> eval_region_fast_attr sink counter cur buf) 0)
     | `Fast, Some (kind, seed) ->
         let counter =
           Fs_counter.create ~threads:cfg.threads ~capacity:(capacity_of cfg)
         in
         let cur = Ownership.cursor own in
         let buf = Ownership.buffer () in
         outer
           (fun () -> eval_region_plan_fast kind seed attrib counter cur buf)
           0
     | `Reference, None ->
         let states =
           Array.init cfg.threads (fun _ ->
               Thread_cache_state.create ~capacity:(capacity_of cfg))
         in
         (match attrib with
         | None -> outer (fun () -> eval_region_ref states) 0
         | Some sink ->
             let wtbl =
               Array.init cfg.threads (fun _ -> Hashtbl.create 64)
             in
             outer (fun () -> eval_region_ref_attr sink states wtbl) 0)
     | `Reference, Some (kind, seed) ->
         let states =
           Array.init cfg.threads (fun _ ->
               Thread_cache_state.create ~capacity:(capacity_of cfg))
         in
         let wtbl = Array.init cfg.threads (fun _ -> Hashtbl.create 64) in
         outer
           (fun () -> eval_region_plan_ref kind seed attrib states wtbl)
           0
   with Stop -> ());
  {
    fs_cases = st.fs;
    thread_steps = st.steps;
    iterations_evaluated = st.iters;
    chunk_runs = st.runs;
    samples = List.rev st.samples;
    truncated = st.truncated;
    steals = st.plan_steals;
  }

type rewrite =
  | Pad_struct of { struct_name : string; pad_bytes : int }
  | Spread_array of { base : string; factor : int }

type plan = { rewrites : rewrite list }

exception Unsupported of string

let rec elem_of = function
  | Minic.Ast.Tarray (t, _) -> elem_of t
  | t -> t

let rec dims_of = function
  | Minic.Ast.Tarray (t, _) -> 1 + dims_of t
  | _ -> 0

let plan_for (checked : Minic.Typecheck.checked) ~line_bytes victims =
  let rewrites =
    List.map
      (fun (v : Advisor.victim) ->
        let ty =
          match
            List.assoc_opt v.Advisor.base checked.Minic.Typecheck.global_types
          with
          | Some t -> t
          | None -> raise (Unsupported ("unknown victim " ^ v.Advisor.base))
        in
        match elem_of ty with
        | Minic.Ast.Tstruct s ->
            Pad_struct { struct_name = s; pad_bytes = v.Advisor.padding_bytes }
        | Minic.Ast.Tchar | Minic.Ast.Tint | Minic.Ast.Tlong
        | Minic.Ast.Tfloat | Minic.Ast.Tdouble ->
            let stride = max 1 v.Advisor.parallel_stride in
            Spread_array
              {
                base = v.Advisor.base;
                factor = (line_bytes + stride - 1) / stride;
              }
        | Minic.Ast.Tvoid | Minic.Ast.Tarray _ ->
            raise (Unsupported ("victim " ^ v.Advisor.base
                                ^ " has an unsupported element type")))
      victims
  in
  (* dedupe struct pads targeting the same struct *)
  let seen = Hashtbl.create 4 in
  let rewrites =
    List.filter
      (fun r ->
        let key =
          match r with
          | Pad_struct { struct_name; _ } -> "s:" ^ struct_name
          | Spread_array { base; _ } -> "a:" ^ base
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      rewrites
  in
  { rewrites }

(* ---------------------------------------------------------------- *)
(* AST rewriting                                                      *)
(* ---------------------------------------------------------------- *)

(* depth of an Index-only access path below [base]; None when the
   expression is not such a path *)
let rec depth_from_base base = function
  | Minic.Ast.Ident v when v = base -> Some 0
  | Minic.Ast.Index (p, _) ->
      Option.map (fun d -> d + 1) (depth_from_base base p)
  | _ -> None

let rec spread_expr ~base ~dims ~factor e =
  let rw = spread_expr ~base ~dims ~factor in
  match e with
  | Minic.Ast.Index (p, idx) ->
      let idx' = rw idx in
      let scaled =
        match depth_from_base base p with
        | Some d when d = dims - 1 ->
            Minic.Ast.Binop (Minic.Ast.Mul, idx', Minic.Ast.Int_lit factor)
        | _ -> idx'
      in
      Minic.Ast.Index (rw p, scaled)
  | Minic.Ast.Int_lit _ | Minic.Ast.Float_lit _ | Minic.Ast.Ident _ -> e
  | Minic.Ast.Binop (op, a, b) -> Minic.Ast.Binop (op, rw a, rw b)
  | Minic.Ast.Unop (op, a) -> Minic.Ast.Unop (op, rw a)
  | Minic.Ast.Field (p, f) -> Minic.Ast.Field (rw p, f)
  | Minic.Ast.Call (f, args) -> Minic.Ast.Call (f, List.map rw args)

let rec spread_stmt ~base ~dims ~factor s =
  let rw_e = spread_expr ~base ~dims ~factor in
  let rw_s = spread_stmt ~base ~dims ~factor in
  match s with
  | Minic.Ast.Sexpr e -> Minic.Ast.Sexpr (rw_e e)
  | Minic.Ast.Sassign (sp, l, op, r) ->
      Minic.Ast.Sassign (sp, rw_e l, op, rw_e r)
  | Minic.Ast.Sdecl (t, n, init) ->
      Minic.Ast.Sdecl (t, n, Option.map rw_e init)
  | Minic.Ast.Sblock ss -> Minic.Ast.Sblock (List.map rw_s ss)
  | Minic.Ast.Sif (c, t, e) ->
      Minic.Ast.Sif (rw_e c, rw_s t, Option.map rw_s e)
  | Minic.Ast.Sfor loop ->
      Minic.Ast.Sfor
        {
          loop with
          Minic.Ast.init_expr = rw_e loop.Minic.Ast.init_expr;
          cond = rw_e loop.Minic.Ast.cond;
          step =
            {
              loop.Minic.Ast.step with
              Minic.Ast.step_by = rw_e loop.Minic.Ast.step.Minic.Ast.step_by;
            };
          body = rw_s loop.Minic.Ast.body;
        }
  | Minic.Ast.Swhile (c, body) -> Minic.Ast.Swhile (rw_e c, rw_s body)
  | Minic.Ast.Sbreak -> Minic.Ast.Sbreak
  | Minic.Ast.Scontinue -> Minic.Ast.Scontinue
  | Minic.Ast.Sreturn e -> Minic.Ast.Sreturn (Option.map rw_e e)

(* enlarge the innermost dimension of an array type *)
let rec inflate_innermost factor = function
  | Minic.Ast.Tarray (((Minic.Ast.Tarray _) as inner), n) ->
      Minic.Ast.Tarray (inflate_innermost factor inner, n)
  | Minic.Ast.Tarray (elem, n) -> Minic.Ast.Tarray (elem, n * factor)
  | t -> t

let apply_one (prog : Minic.Ast.program) rewrite =
  match rewrite with
  | Pad_struct { struct_name; pad_bytes } ->
      let globals =
        List.map
          (function
            | Minic.Ast.Gstruct_def (s, fields) when s = struct_name ->
                Minic.Ast.Gstruct_def
                  ( s,
                    fields
                    @ [ (Minic.Ast.Tarray (Minic.Ast.Tchar, pad_bytes),
                         "_fs_pad") ] )
            | g -> g)
          prog.Minic.Ast.globals
      in
      { prog with Minic.Ast.globals }
  | Spread_array { base; factor } ->
      let dims =
        match
          List.find_map
            (function
              | Minic.Ast.Gvar (t, n) when n = base -> Some (dims_of t)
              | _ -> None)
            prog.Minic.Ast.globals
        with
        | Some d -> d
        | None -> raise (Unsupported ("no global named " ^ base))
      in
      let globals =
        List.map
          (function
            | Minic.Ast.Gvar (t, n) when n = base ->
                Minic.Ast.Gvar (inflate_innermost factor t, n)
            | Minic.Ast.Gfunc f ->
                Minic.Ast.Gfunc
                  {
                    f with
                    Minic.Ast.body =
                      List.map (spread_stmt ~base ~dims ~factor)
                        f.Minic.Ast.body;
                  }
            | g -> g)
          prog.Minic.Ast.globals
      in
      { prog with Minic.Ast.globals }

let apply (checked : Minic.Typecheck.checked) plan =
  let prog =
    List.fold_left apply_one checked.Minic.Typecheck.prog plan.rewrites
  in
  Minic.Typecheck.check_program prog

let eliminate ?(arch = Archspec.Arch.paper_machine) ~threads ~func checked =
  let advice = Advisor.advise ~arch ~threads ~func checked in
  let plan =
    plan_for checked ~line_bytes:(Archspec.Arch.line_bytes arch)
      advice.Advisor.victims
  in
  (apply checked plan, plan)

let pp_plan ppf plan =
  Format.fprintf ppf "@[<v>";
  if plan.rewrites = [] then Format.fprintf ppf "no rewrites needed@,";
  List.iter
    (function
      | Pad_struct { struct_name; pad_bytes } ->
          Format.fprintf ppf "pad struct %s with %d byte(s)@," struct_name
            pad_bytes
      | Spread_array { base; factor } ->
          Format.fprintf ppf "spread array %s by %dx@," base factor)
    plan.rewrites;
  Format.fprintf ppf "@]"

(* Which threads hold a line in written state, indexed by line.  Up to 62
   threads the per-line mask is a single immediate int (the historical fast
   path); beyond that it is a Cachesim.Bitset.  Either way the 1-to-All
   comparison is a constant-time popcount and the hot path allocates
   nothing (Small path) or only one bitset per distinct line (Big path). *)

type masks =
  | Small of int Cachesim.Int_table.t  (* line -> bitmask of writer-holders *)
  | Big of Cachesim.Bitset.t Cachesim.Int_table.t

type t = {
  states : Thread_cache_state.t array;
  masks : masks;
  (* per-thread line -> index of the reference whose write last put the
     line in written state there; only consulted for threads whose mask
     bit is set, so stale entries after eviction are harmless (a set
     mask bit implies a later written insert refreshed the entry) *)
  wref : int Cachesim.Int_table.t array;
}

let small_limit = 62

let create ~threads ~capacity =
  if threads < 1 then invalid_arg "Fs_counter.create: threads < 1";
  {
    states = Array.init threads (fun _ -> Thread_cache_state.create ~capacity);
    masks =
      (if threads <= small_limit then
         Small (Cachesim.Int_table.create ~initial:4096 ())
       else Big (Cachesim.Int_table.create ~initial:4096 ()));
    wref = Array.init threads (fun _ -> Cachesim.Int_table.create ~initial:64 ());
  }

let clear_bit t line tid =
  match t.masks with
  | Small tbl ->
      let s = Cachesim.Int_table.find_slot tbl line in
      if s >= 0 then begin
        let m = Cachesim.Int_table.value_at tbl s land lnot (1 lsl tid) in
        if m = 0 then ignore (Cachesim.Int_table.remove tbl line)
        else Cachesim.Int_table.set_at tbl s m
      end
  | Big tbl ->
      let s = Cachesim.Int_table.find_slot tbl line in
      if s >= 0 then Cachesim.Bitset.unset (Cachesim.Int_table.value_at tbl s) tid

let process t ~me ~line ~written =
  let prior_written = Thread_cache_state.holds_modified t.states.(me) line in
  let evicted = Thread_cache_state.insert_fast t.states.(me) ~line ~written in
  (* the evicted line is never [line] itself, so its mask update cannot
     move [line]'s table entry once we probe below *)
  if evicted <> Thread_cache_state.no_line then clear_bit t evicted me;
  match t.masks with
  | Small tbl ->
      let s = Cachesim.Int_table.find_slot tbl line in
      let mask = if s >= 0 then Cachesim.Int_table.value_at tbl s else 0 in
      let fs = Cachesim.Bitset.popcount (mask land lnot (1 lsl me)) in
      if written || prior_written then
        if s >= 0 then Cachesim.Int_table.set_at tbl s (mask lor (1 lsl me))
        else Cachesim.Int_table.set tbl line (mask lor (1 lsl me));
      fs
  | Big tbl ->
      let s = Cachesim.Int_table.find_slot tbl line in
      let fs =
        if s >= 0 then
          Cachesim.Bitset.count_excluding (Cachesim.Int_table.value_at tbl s) me
        else 0
      in
      if written || prior_written then begin
        let bs =
          if s >= 0 then Cachesim.Int_table.value_at tbl s
          else begin
            let bs = Cachesim.Bitset.create ~bits:(Array.length t.states) in
            Cachesim.Int_table.set tbl line bs;
            bs
          end
        in
        Cachesim.Bitset.set bs me
      end;
      fs

(* [process] plus provenance: before inserting, each other thread
   holding [line] in written state yields one FS case recorded into
   [sink] as (that thread, its last writing reference) -> (me, ref_id).
   Counting is bit-identical to [process]; the extra work is O(threads)
   only on accesses that actually trigger FS cases. *)
let process_attr t ~me ~line ~written ~ref_id ~step sink =
  let prior_written = Thread_cache_state.holds_modified t.states.(me) line in
  let evicted = Thread_cache_state.insert_fast t.states.(me) ~line ~written in
  if evicted <> Thread_cache_state.no_line then clear_bit t evicted me;
  let fs =
    match t.masks with
    | Small tbl ->
        let s = Cachesim.Int_table.find_slot tbl line in
        let mask = if s >= 0 then Cachesim.Int_table.value_at tbl s else 0 in
        let others = mask land lnot (1 lsl me) in
        let fs = Cachesim.Bitset.popcount others in
        if fs > 0 then
          for j = 0 to Array.length t.states - 1 do
            if others land (1 lsl j) <> 0 then
              Attrib.record sink ~step ~line ~writer_tid:j
                ~writer_ref:(Cachesim.Int_table.get t.wref.(j) line ~default:(-1))
                ~victim_tid:me ~victim_ref:ref_id
          done;
        if written || prior_written then
          if s >= 0 then Cachesim.Int_table.set_at tbl s (mask lor (1 lsl me))
          else Cachesim.Int_table.set tbl line (mask lor (1 lsl me));
        fs
    | Big tbl ->
        let s = Cachesim.Int_table.find_slot tbl line in
        let fs =
          if s >= 0 then
            Cachesim.Bitset.count_excluding (Cachesim.Int_table.value_at tbl s)
              me
          else 0
        in
        if fs > 0 then begin
          let bs = Cachesim.Int_table.value_at tbl s in
          for j = 0 to Array.length t.states - 1 do
            if j <> me && Cachesim.Bitset.mem bs j then
              Attrib.record sink ~step ~line ~writer_tid:j
                ~writer_ref:(Cachesim.Int_table.get t.wref.(j) line ~default:(-1))
                ~victim_tid:me ~victim_ref:ref_id
          done
        end;
        if written || prior_written then begin
          let bs =
            if s >= 0 then Cachesim.Int_table.value_at tbl s
            else begin
              let bs = Cachesim.Bitset.create ~bits:(Array.length t.states) in
              Cachesim.Int_table.set tbl line bs;
              bs
            end
          in
          Cachesim.Bitset.set bs me
        end;
        fs
  in
  if written then Cachesim.Int_table.set t.wref.(me) line ref_id;
  fs

let process_entries t ~me entries =
  List.fold_left
    (fun acc { Ownership.line; written } ->
      acc + process t ~me ~line ~written)
    0 entries

let invalidate_others t ~me ~line =
  Array.iteri
    (fun j s ->
      if j <> me then
        if Thread_cache_state.invalidate s line then clear_bit t line j)
    t.states

let state t i = t.states.(i)
let threads t = Array.length t.states

(** The compile-time false-sharing cost model (paper §III): evaluates the
    loop nest symbolically — [all_iterations / num_threads] lockstep steps,
    each performing steps 2–4 (ownership lists, stack-distance update,
    1-to-All detection) — and returns the total number of FS cases.

    Threads advance in lockstep, one innermost iteration per step, through
    their [schedule(static, chunk)] shares; sequential loops enclosing the
    parallel loop are executed in order (cache states persist across them).
    Inner loop bounds are evaluated per region with the parallel variable
    at its lower bound (rectangular-inner assumption). *)

type stack_policy =
  | Level_l1  (** stack sized as the private L1 — the paper's setting *)
  | Level_l2
  | Lines of int
  | Unbounded  (** ablation: no eviction (stale lines accumulate) *)

type config = {
  arch : Archspec.Arch.t;
  threads : int;
  chunk : int option;  (** overrides the pragma's chunk size when given *)
  params : (string * int) list;
      (** bindings for free identifiers in bounds; bind ["num_threads"]
          consistently with [threads] *)
  stack : stack_policy;
  invalidate_on_write : bool;
      (** ablation: remove a written line from other threads' states
          (the paper's model does not) *)
  sched : (Ompsched.Dispatch.kind * int) option;
      (** drive the parallel loop with a seed-replayed dynamic, guided or
          work-stealing plan instead of the static deal.  The second
          component is the replay seed.  [None] (the default) keeps the
          paper's [schedule(static)] path, except that a
          [schedule(dynamic)] / [schedule(guided)] pragma in the source
          is replayed at seed 0. *)
}

val default_config :
  ?arch:Archspec.Arch.t -> threads:int -> unit -> config
(** Paper machine, pragma chunk, L1 stack, no invalidation;
    [params = \[("num_threads", threads)\]]. *)

type run_sample = { chunk_run : int; cumulative_fs : int }

type engine = [ `Fast | `Reference ]
(** [`Fast] (the default) is the allocation-free engine: ownership lists
    strength-reduced through an incremental cursor into a reused buffer,
    inner indices advanced by an odometer instead of per-step div/mod,
    and FS counting through {!Fs_counter}'s bitmask popcount.
    [`Reference] is the direct transcription of the paper's procedure
    ({!Ownership.lines_ref} + {!Detect.fs_cases_for_insert}); it exists
    as the oracle the fast engine is property-checked against.  Both
    produce identical results. *)

type result = {
  fs_cases : int;  (** the paper's [N_fs_model] *)
  thread_steps : int;  (** lockstep steps evaluated (per-thread depth) *)
  iterations_evaluated : int;  (** innermost iterations across all threads *)
  chunk_runs : int;  (** complete chunk runs evaluated *)
  samples : run_sample list;
      (** cumulative FS after each chunk run (empty unless
          [record_samples]) *)
  truncated : bool;  (** stopped early by [max_chunk_runs] *)
  steals : int;
      (** steal events across all replayed work-stealing plans (0 for the
          static deal and for dynamic/guided dispatch) — the per-seed
          input to the Cole–Ramachandran steal-bound check *)
}

val run_count : unit -> int
(** Number of {!run} invocations so far in this process.  The analytic
    cost path ([--cost-model analytic]) promises zero engine evaluations;
    tests snapshot this counter around it to enforce the promise. *)

val run :
  ?max_chunk_runs:int ->
  ?record_samples:bool ->
  ?engine:engine ->
  ?attrib:Attrib.t ->
  config ->
  nest:Loopir.Loop_nest.t ->
  checked:Minic.Typecheck.checked ->
  result
(** Evaluate the model.  [max_chunk_runs] bounds the evaluation (used by
    the linear-regression predictor, §III-E); [record_samples] keeps the
    per-chunk-run cumulative series (paper Fig. 6).

    [attrib], when given, receives per-event provenance for every FS
    case — (writer thread, writing reference) invalidating (victim
    thread, victim reference) on a cache line at a lockstep step — under
    either engine, with identical event streams ({!Attrib.total} equals
    the returned [fs_cases]).  Without it the engines run exactly the
    pre-attribution code paths, so the fast path stays allocation-free. *)

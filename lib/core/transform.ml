(* Materialize elimination advice as concrete mini-C.

   Extends Eliminate's data-layout rewrites (struct padding, element
   spreading) with the two pragma-level fixes the paper's related work
   applies by hand: privatizing scalar reduction targets via a
   reduction clause, and retuning schedule(static, c) to the advisor's
   recommended chunk.  The result is a whole transformed program that
   pretty-prints, re-parses and re-typechecks, so every downstream
   analysis can be re-run on it unchanged. *)

type rewrite =
  | Layout of Eliminate.rewrite
  | Privatize of { func : string; var : string; op : Minic.Ast.binop }
  | Retune of { func : string; chunk : int }

type plan = { func : string; rewrites : rewrite list }

let describe = function
  | Layout (Eliminate.Pad_struct { struct_name; pad_bytes }) ->
      Printf.sprintf "pad struct %s with %d byte(s)" struct_name pad_bytes
  | Layout (Eliminate.Spread_array { base; factor }) ->
      Printf.sprintf "spread array %s by %dx" base factor
  | Privatize { func; var; op } ->
      Printf.sprintf "privatize %s in %s via reduction(%s:%s)" var func
        (Minic.Ast.binop_name op) var
  | Retune { func; chunk } ->
      Printf.sprintf "retune %s to schedule(static,%d)" func chunk

let pp_plan ppf (p : plan) =
  Format.fprintf ppf "@[<v>";
  (match p.rewrites with
  | [] -> Format.fprintf ppf "no false sharing attributed in %s; nothing to fix@," p.func
  | rs -> List.iter (fun r -> Format.fprintf ppf "%s@," (describe r)) rs);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Statement walking                                                   *)
(* ------------------------------------------------------------------ *)

let rec fold_stmts f acc s =
  let acc = f acc s in
  match s with
  | Minic.Ast.Sblock ss -> List.fold_left (fold_stmts f) acc ss
  | Minic.Ast.Sif (_, t, e) -> (
      let acc = fold_stmts f acc t in
      match e with Some s -> fold_stmts f acc s | None -> acc)
  | Minic.Ast.Sfor l -> fold_stmts f acc l.Minic.Ast.body
  | Minic.Ast.Swhile (_, b) -> fold_stmts f acc b
  | _ -> acc

(* Classify a scalar assignment [v op= rhs] as a reduction update.
   [v = v + e] / [v = e + v] (and * / left-sided -) count as the
   equivalent compound form; anything else disqualifies the variable. *)
let reduction_op (op : Minic.Ast.assign_op) (lhs_var : string)
    (rhs : Minic.Ast.expr) =
  match op with
  | Minic.Ast.A_add -> Some Minic.Ast.Add
  | Minic.Ast.A_sub -> Some Minic.Ast.Sub
  | Minic.Ast.A_mul -> Some Minic.Ast.Mul
  | Minic.Ast.A_div -> None
  | Minic.Ast.A_set -> (
      match rhs with
      | Minic.Ast.Binop
          (((Minic.Ast.Add | Minic.Ast.Mul) as bop), Minic.Ast.Ident v, _)
        when v = lhs_var ->
          Some bop
      | Minic.Ast.Binop
          (((Minic.Ast.Add | Minic.Ast.Mul) as bop), _, Minic.Ast.Ident v)
        when v = lhs_var ->
          Some bop
      | Minic.Ast.Binop (Minic.Ast.Sub, Minic.Ast.Ident v, _)
        when v = lhs_var ->
          Some Minic.Ast.Sub
      | _ -> None)

(* Every direct scalar write in a subtree, with its reduction class. *)
let scalar_writes body =
  fold_stmts
    (fun acc s ->
      match s with
      | Minic.Ast.Sassign (_, Minic.Ast.Ident v, op, rhs) ->
          (v, reduction_op op v rhs) :: acc
      | _ -> acc)
    [] body

(* [var] is a pure reduction target of [body] under [op]: written at
   least once, and every write is the same compound update. *)
let reduces body var op =
  let ws = List.filter (fun (v, _) -> v = var) (scalar_writes body) in
  ws <> [] && List.for_all (fun (_, o) -> o = Some op) ws

let is_global_scalar (checked : Minic.Typecheck.checked) v =
  match List.assoc_opt v checked.Minic.Typecheck.global_types with
  | Some
      ( Minic.Ast.Tchar | Minic.Ast.Tint | Minic.Ast.Tlong | Minic.Ast.Tfloat
      | Minic.Ast.Tdouble ) ->
      true
  | _ -> false

let pragma_loops (f : Minic.Ast.func) =
  List.rev
    (List.fold_left
       (fold_stmts (fun acc s ->
            match s with
            | Minic.Ast.Sfor ({ Minic.Ast.pragma = Some _; _ } as loop) ->
                loop :: acc
            | _ -> acc))
       [] f.Minic.Ast.body)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

let layout_rewrites checked ~line_bytes victims =
  let rewrites =
    List.concat_map
      (fun v ->
        match Eliminate.plan_for checked ~line_bytes [ v ] with
        | p -> List.map (fun r -> Layout r) p.Eliminate.rewrites
        | exception Eliminate.Unsupported _ -> [])
      victims
  in
  let seen = Hashtbl.create 4 in
  List.filter
    (fun r ->
      let key =
        match r with
        | Layout (Eliminate.Pad_struct { struct_name; _ }) -> "s:" ^ struct_name
        | Layout (Eliminate.Spread_array { base; _ }) -> "a:" ^ base
        | _ -> assert false
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    rewrites

let privatize_rewrites checked ~func =
  match Minic.Ast.find_func checked.Minic.Typecheck.prog func with
  | None -> []
  | Some f ->
      let candidates =
        List.concat_map
          (fun (loop : Minic.Ast.for_loop) ->
            let p = Option.get loop.Minic.Ast.pragma in
            let already =
              p.Minic.Ast.private_vars
              @ List.concat_map snd p.Minic.Ast.reduction
            in
            let vars =
              List.sort_uniq compare
                (List.map fst (scalar_writes loop.Minic.Ast.body))
            in
            List.filter_map
              (fun v ->
                if (not (is_global_scalar checked v)) || List.mem v already
                then None
                else
                  match
                    List.find_opt
                      (fun op -> reduces loop.Minic.Ast.body v op)
                      [ Minic.Ast.Add; Minic.Ast.Sub; Minic.Ast.Mul ]
                  with
                  | Some op -> Some (v, op)
                  | None -> None)
              vars)
          (pragma_loops f)
      in
      let seen = Hashtbl.create 4 in
      List.filter_map
        (fun (var, op) ->
          if Hashtbl.mem seen var then None
          else begin
            Hashtbl.replace seen var ();
            Some (Privatize { func; var; op })
          end)
        candidates

let plan ?advice ?(line_bytes = 64) ~threads ~func
    (checked : Minic.Typecheck.checked) =
  let params = [ ("num_threads", threads) ] in
  let nests =
    try Loopir.Lower.lower_all checked ~func ~params
    with Loopir.Lower.Lower_error _ -> []
  in
  let victims =
    let syntactic =
      List.concat_map (fun n -> Advisor.find_victims ~line_bytes n) nests
    in
    let advised =
      match advice with Some a -> a.Advisor.victims | None -> []
    in
    let seen = Hashtbl.create 4 in
    List.filter
      (fun (v : Advisor.victim) ->
        if Hashtbl.mem seen v.Advisor.base then false
        else begin
          Hashtbl.replace seen v.Advisor.base ();
          true
        end)
      (advised @ syntactic)
  in
  let layout = layout_rewrites checked ~line_bytes victims in
  let privatize = privatize_rewrites checked ~func in
  let retune =
    match advice with
    | Some a when layout = [] && privatize = [] -> (
        let baseline = match a.Advisor.sweep with (_, fs) :: _ -> fs | [] -> 0 in
        match a.Advisor.best_chunk with
        | Some c when baseline > 0 -> [ Retune { func; chunk = c } ]
        | _ -> [])
    | _ -> []
  in
  { func; rewrites = layout @ privatize @ retune }

(* ------------------------------------------------------------------ *)
(* Materialization                                                     *)
(* ------------------------------------------------------------------ *)

let apply_edit ~body (pr : Minic.Ast.pragma) = function
  | Layout _ -> pr
  | Privatize { var; op; _ } ->
      let already =
        List.mem var pr.Minic.Ast.private_vars
        || List.exists (fun (_, vs) -> List.mem var vs) pr.Minic.Ast.reduction
      in
      if already || not (reduces body var op) then pr
      else
        {
          pr with
          Minic.Ast.reduction = pr.Minic.Ast.reduction @ [ (op, [ var ]) ];
          Minic.Ast.shared_vars =
            List.filter (fun v -> v <> var) pr.Minic.Ast.shared_vars;
        }
  | Retune { chunk; _ } ->
      { pr with Minic.Ast.schedule = Some (Minic.Ast.Sched_static (Some chunk)) }

let rec edit_stmt edits s =
  match s with
  | Minic.Ast.Sfor loop ->
      let body = edit_stmt edits loop.Minic.Ast.body in
      let pragma =
        match loop.Minic.Ast.pragma with
        | None -> None
        | Some pr -> Some (List.fold_left (apply_edit ~body) pr edits)
      in
      Minic.Ast.Sfor { loop with Minic.Ast.pragma; Minic.Ast.body = body }
  | Minic.Ast.Sblock ss -> Minic.Ast.Sblock (List.map (edit_stmt edits) ss)
  | Minic.Ast.Sif (c, t, e) ->
      Minic.Ast.Sif (c, edit_stmt edits t, Option.map (edit_stmt edits) e)
  | Minic.Ast.Swhile (c, b) -> Minic.Ast.Swhile (c, edit_stmt edits b)
  | s -> s

let materialize (checked : Minic.Typecheck.checked) (p : plan) =
  let layouts =
    List.filter_map (function Layout r -> Some r | _ -> None) p.rewrites
  in
  let checked =
    if layouts = [] then checked
    else Eliminate.apply checked { Eliminate.rewrites = layouts }
  in
  let edits =
    List.filter (function Layout _ -> false | _ -> true) p.rewrites
  in
  if edits = [] then checked
  else begin
    let prog = checked.Minic.Typecheck.prog in
    let globals =
      List.map
        (function
          | Minic.Ast.Gfunc f when f.Minic.Ast.fname = p.func ->
              Minic.Ast.Gfunc
                {
                  f with
                  Minic.Ast.body = List.map (edit_stmt edits) f.Minic.Ast.body;
                }
          | g -> g)
        prog.Minic.Ast.globals
    in
    Minic.Typecheck.check_program { prog with Minic.Ast.globals }
  end

let to_source (checked : Minic.Typecheck.checked) =
  Minic.Pretty.program_to_string checked.Minic.Typecheck.prog

(** Parallel configuration sweeps over OCaml domains.

    [map f xs] evaluates [f] on every element, fanning the work out over
    domains when more than one is available, and returns the results in
    input order.  Each element must be an independent computation (every
    {!Model.run} / {!Predict.predict} call builds its own state, so model
    sweeps qualify).  Results are bit-identical to [List.map f xs]
    whatever the domain count; a raised exception is re-raised in the
    calling domain. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], clamped to [1..8]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [domains] defaults to {!recommended_domains}; [1] forces the
    sequential path.  @raise Invalid_argument when [domains < 1]. *)

val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the element's input-order index. *)

val map_stream :
  ?domains:int ->
  on_result:(int -> 'b -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** {!map}, but [on_result i r] fires as soon as element [i]'s result
    exists — from whichever domain computed it, concurrently with other
    callbacks — so a server can stream per-item results of a sharded
    batch while the rest is still running.  The callback must do its own
    locking.  The returned list is in input order, identical to
    {!map}'s; with [domains = 1] callbacks fire sequentially in input
    order.  A raised exception is re-raised in the calling domain after
    all domains join (no callback fires for the failed element). *)

(** Long-lived worker domains consuming a FIFO job queue — the serving
    counterpart to the one-shot {!map}: domains are up before the first
    request and stay warm between requests. *)
module Pool : sig
  type t

  val create : ?domains:int -> ?on_error:(exn -> unit) -> unit -> t
  (** Spawn [domains] workers (default {!recommended_domains}).  A job
      that raises reports to [on_error] (default: ignore) and never
      kills its worker.  @raise Invalid_argument when [domains < 1]. *)

  val size : t -> int
  (** Worker count. *)

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue a job; jobs start in submission order.  With one worker
      the pool is a deterministic serial executor.
      @raise Invalid_argument after {!shutdown}. *)

  val wait : t -> unit
  (** Block until the queue is empty and no job is running. *)

  val shutdown : t -> unit
  (** Drain remaining jobs, then join every worker.  Idempotent in
      effect; [submit] afterwards raises. *)
end

(** Parallel configuration sweeps over OCaml domains.

    [map f xs] evaluates [f] on every element, fanning the work out over
    domains when more than one is available, and returns the results in
    input order.  Each element must be an independent computation (every
    {!Model.run} / {!Predict.predict} call builds its own state, so model
    sweeps qualify).  Results are bit-identical to [List.map f xs]
    whatever the domain count; a raised exception is re-raised in the
    calling domain. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], clamped to [1..8]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [domains] defaults to {!recommended_domains}; [1] forces the
    sequential path.  @raise Invalid_argument when [domains < 1]. *)

val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the element's input-order index. *)

(** Per-event provenance of false-sharing cases (the attribution layer
    behind [fsdetect explain]).

    {!Model.run} counts one FS case whenever a thread's access inserts a
    cache line that another thread holds in written state (the paper's
    1-to-All φ comparison).  An attribution recorder, when passed to the
    engine, captures {e who did what to whom} for every such case:

    - the {b victim} — the (thread, compiled reference) whose access
      suffers the case, and
    - the {b writer} — the (thread, compiled reference) whose earlier
      write put the line in written state in that thread's cache,

    together with the cache line and the lockstep parallel step the case
    occurred at.  Reference indices follow the compilation order of
    {!Ownership.compile}, i.e. the order of
    [Loop_nest.refs] (program order of the innermost body).

    The recorder is built for the allocation-free fast engine: aggregate
    histograms live in open-addressing {!Cachesim.Int_table}s keyed by
    packed integers, and the optional per-event trace is a bounded
    struct-of-arrays ring, so the hot path performs no boxing and no
    per-event allocation (amortized: tables and the ring grow by
    doubling up to their caps).

    {b Conservation invariant}: after a run, {!total} equals the
    engine's [fs_cases], and each aggregate view ({!fold_pairs},
    {!fold_lines}, {!fold_cells}) sums back to {!total}.  The test suite
    and the fuzzing oracle matrix enforce this on both engines. *)

type t

val create : ?trace_cap:int -> threads:int -> nrefs:int -> unit -> t
(** A fresh recorder for a team of [threads] over [nrefs] compiled
    references.  [trace_cap] bounds the per-event ring (default [65536];
    [0] keeps aggregates only).  The first [trace_cap] events are kept
    and later ones only aggregated — {!trace_dropped} reports how many.
    @raise Invalid_argument when [threads < 1] or [nrefs < 0]. *)

val record :
  t ->
  step:int ->
  line:int ->
  writer_tid:int ->
  writer_ref:int ->
  victim_tid:int ->
  victim_ref:int ->
  unit
(** Record one FS case.  [writer_ref] may be [-1] when the writing
    reference is unknown (never produced by {!Model.run}; tolerated so
    partial recorders stay usable). *)

val total : t -> int
(** Events recorded so far — the engine's [fs_cases] after a run. *)

val threads : t -> int
val nrefs : t -> int

(** {2 Aggregates} *)

val fold_pairs :
  t ->
  init:'a ->
  f:
    ('a ->
    writer_ref:int ->
    victim_ref:int ->
    writer_tid:int ->
    victim_tid:int ->
    count:int ->
    'a) ->
  'a
(** Fold over the (writer reference, victim reference, writer thread,
    victim thread) histogram, in unspecified order. *)

val fold_lines : t -> init:'a -> f:('a -> line:int -> count:int -> 'a) -> 'a
(** Fold over the per-cache-line histogram. *)

val fold_cells :
  t -> init:'a -> f:('a -> line:int -> tid:int -> count:int -> 'a) -> 'a
(** Fold over the (cache line, victim thread) histogram — the heatmap's
    cells. *)

type pair_stat = {
  writer_ref : int;
  victim_ref : int;
  writer_tid : int;
  victim_tid : int;
  count : int;
}

val top_pairs : ?n:int -> t -> pair_stat list
(** The [n] (default 3) heaviest histogram entries, by descending count;
    ties break deterministically (ascending packed key). *)

(** {2 Trace ring} *)

val trace_len : t -> int
(** Events retained in the ring ([min total trace_cap]). *)

val trace_dropped : t -> int
(** Events aggregated but not retained ([total - trace_len]). *)

val trace_step : t -> int -> int
val trace_line : t -> int -> int
val trace_writer_tid : t -> int -> int
val trace_writer_ref : t -> int -> int
val trace_victim_tid : t -> int -> int
val trace_victim_ref : t -> int -> int
(** Field accessors for ring entry [i], [0 <= i < trace_len], in
    recording order. *)

type entry = { line : int; written : bool }
type attr_entry = { a_line : int; a_written : bool; a_ref : int }

type compiled_ref = {
  const_off : int;  (* base address + constant offset *)
  terms : (int * int) array;  (* (slot, coefficient) pairs *)
  size : int;
  write : bool;
}

type t = {
  refs : compiled_ref array;
  srcs : Loopir.Array_ref.t array;  (* same order as [refs] *)
  line_bytes : int;
  nslots : int;
}

let compile ~layout ~line_bytes ~params ~var_slots (nest : Loopir.Loop_nest.t)
    =
  let slot_of v =
    let rec go i = function
      | [] -> None
      | x :: rest -> if x = v then Some i else go (i + 1) rest
    in
    go 0 var_slots
  in
  let compile_ref (r : Loopir.Array_ref.t) =
    let base = Loopir.Layout.addr_of layout r.Loopir.Array_ref.base in
    let off = r.Loopir.Array_ref.offset in
    (* fold parameters into the constant part *)
    let folded =
      Loopir.Affine.subst
        (fun v ->
          match List.assoc_opt v params with
          | Some k -> Some (Loopir.Affine.const k)
          | None -> None)
        off
    in
    let terms =
      List.map
        (fun v ->
          match slot_of v with
          | Some slot -> (slot, Loopir.Affine.coeff folded v)
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Ownership.compile: variable %s of %s is neither a loop \
                    variable nor a parameter"
                   v r.Loopir.Array_ref.repr))
        (Loopir.Affine.vars folded)
    in
    {
      const_off = base + Loopir.Affine.const_part folded;
      terms = Array.of_list terms;
      size = r.Loopir.Array_ref.size_bytes;
      write = Loopir.Array_ref.is_write r;
    }
  in
  {
    refs = Array.of_list (List.map compile_ref nest.Loopir.Loop_nest.refs);
    srcs = Array.of_list nest.Loopir.Loop_nest.refs;
    line_bytes;
    nslots = List.length var_slots;
  }

let lines_ref t idx =
  let acc = ref [] in
  (* first-touch order with write-domination; reference lists are short so a
     linear merge beats hashing *)
  let rec merge line written = function
    | [] -> acc := { line; written } :: !acc
    | e :: _ when e.line = line ->
        if written && not e.written then
          acc :=
            List.map
              (fun x -> if x.line = line then { x with written = true } else x)
              !acc
    | _ :: rest -> merge line written rest
  in
  Array.iter
    (fun r ->
      let addr = ref r.const_off in
      Array.iter
        (fun (slot, coeff) -> addr := !addr + (coeff * idx.(slot)))
        r.terms;
      let first = !addr / t.line_bytes in
      let last = (!addr + r.size - 1) / t.line_bytes in
      for line = first to last do
        merge line r.write !acc
      done)
    t.refs;
  List.rev !acc

let lines = lines_ref

(* [lines_ref] with per-entry provenance: each deduplicated line carries
   the index of the reference it is attributed to — the first write
   touching it, else the first touch.  Entry order and written flags are
   exactly those of [lines_ref]. *)
let lines_with_refs t idx =
  let acc = ref [] in
  let rec merge line written rid = function
    | [] -> acc := { a_line = line; a_written = written; a_ref = rid } :: !acc
    | e :: _ when e.a_line = line ->
        if written && not e.a_written then
          acc :=
            List.map
              (fun x ->
                if x.a_line = line then
                  { x with a_written = true; a_ref = rid }
                else x)
              !acc
    | _ :: rest -> merge line written rid rest
  in
  Array.iteri
    (fun rid r ->
      let addr = ref r.const_off in
      Array.iter
        (fun (slot, coeff) -> addr := !addr + (coeff * idx.(slot)))
        r.terms;
      let first = !addr / t.line_bytes in
      let last = (!addr + r.size - 1) / t.line_bytes in
      for line = first to last do
        merge line r.write rid !acc
      done)
    t.refs;
  List.rev !acc

let ref_count t = Array.length t.refs
let source_ref t i = t.srcs.(i)

(* ------------------------------------------------------------------ *)
(* Incremental evaluation: a cursor keeps one running address per
   reference and updates it from index deltas (strength reduction of the
   per-iteration multiply-adds), and a reusable buffer receives the
   deduplicated ownership list without allocating. *)

type cursor = {
  own : t;
  addr : int array;  (* running address of each reference *)
  cur : int array;  (* current index value of each slot *)
  slot_refs : (int * int) array array;
      (* per slot: the (ref index, coefficient) pairs it feeds *)
}

let cursor t =
  let per_slot = Array.make t.nslots [] in
  Array.iteri
    (fun r cref ->
      Array.iter
        (fun (slot, coeff) ->
          if coeff <> 0 then per_slot.(slot) <- (r, coeff) :: per_slot.(slot))
        cref.terms)
    t.refs;
  {
    own = t;
    addr = Array.map (fun cref -> cref.const_off) t.refs;
    cur = Array.make (max 1 t.nslots) 0;
    slot_refs = Array.map (fun l -> Array.of_list (List.rev l)) per_slot;
  }

let cursor_set c slot v =
  let dv = v - Array.unsafe_get c.cur slot in
  if dv <> 0 then begin
    let refs = Array.unsafe_get c.slot_refs slot in
    for i = 0 to Array.length refs - 1 do
      let r, coeff = Array.unsafe_get refs i in
      Array.unsafe_set c.addr r (Array.unsafe_get c.addr r + (coeff * dv))
    done;
    Array.unsafe_set c.cur slot v
  end

type buffer = {
  mutable lin : int array;
  mutable wr : bool array;
  mutable rid : int array;  (* attributed reference per entry *)
  mutable len : int;
}

let buffer () =
  { lin = Array.make 8 0; wr = Array.make 8 false; rid = Array.make 8 0;
    len = 0 }

let buf_len b = b.len
let buf_line b i = b.lin.(i)
let buf_written b i = b.wr.(i)
let buf_ref b i = b.rid.(i)

let push b line written r =
  (* linear-scan dedup with write domination; ownership lists are a
     handful of entries, first-touch order is preserved.  The entry is
     attributed to the first write touching the line (else the first
     touch), mirroring [lines_with_refs]. *)
  let n = b.len in
  let rec seek i =
    if i >= n then begin
      if n = Array.length b.lin then begin
        let lin = Array.make (2 * n) 0
        and wr = Array.make (2 * n) false
        and rid = Array.make (2 * n) 0 in
        Array.blit b.lin 0 lin 0 n;
        Array.blit b.wr 0 wr 0 n;
        Array.blit b.rid 0 rid 0 n;
        b.lin <- lin;
        b.wr <- wr;
        b.rid <- rid
      end;
      b.lin.(n) <- line;
      b.wr.(n) <- written;
      b.rid.(n) <- r;
      b.len <- n + 1
    end
    else if Array.unsafe_get b.lin i = line then begin
      if written && not (Array.unsafe_get b.wr i) then begin
        Array.unsafe_set b.wr i true;
        Array.unsafe_set b.rid i r
      end
    end
    else seek (i + 1)
  in
  seek 0

let fill c b =
  b.len <- 0;
  let t = c.own in
  for r = 0 to Array.length t.refs - 1 do
    let cref = Array.unsafe_get t.refs r in
    let addr = Array.unsafe_get c.addr r in
    let first = addr / t.line_bytes in
    let last = (addr + cref.size - 1) / t.line_bytes in
    for line = first to last do
      push b line cref.write r
    done
  done

let fold_lines c b ~init ~f =
  fill c b;
  let acc = ref init in
  for i = 0 to b.len - 1 do
    acc := f !acc ~line:(Array.unsafe_get b.lin i)
             ~written:(Array.unsafe_get b.wr i)
  done;
  !acc

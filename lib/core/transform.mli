(** Fix materialization: turn elimination advice into a concrete
    transformed mini-C program.

    {!Eliminate} decides {e what} layout change removes the attributed
    false sharing; this module widens the repertoire with the two
    pragma-level fixes from the paper's related work and actually edits
    the AST:

    - {b layout}: {!Eliminate.rewrite} applied verbatim (struct padding
      to a 64-byte multiple, element spreading of scalar arrays);
    - {b privatization}: a shared scalar that every parallel write
      updates with the same compound operator (a reduction target such
      as [sum += a[i]]) gets a [reduction(op:var)] clause, so the
      lowering pass treats it as thread-private;
    - {b retuning}: when no layout or privatization fix applies but the
      {!Advisor} sweep found a chunk that removes the predicted FS, the
      loop's schedule is rewritten to [schedule(static, c)].

    The transformed program round-trips through {!Minic.Pretty}: it
    re-parses, re-typechecks, and re-lints, which is how {!module-Advisor}
    consumers verify a fix (see [Analysis.Fixer]). *)

type rewrite =
  | Layout of Eliminate.rewrite  (** padding / spreading, applied program-wide *)
  | Privatize of { func : string; var : string; op : Minic.Ast.binop }
      (** add [reduction(op:var)] to the parallel pragmas of [func] whose
          bodies reduce [var] with [op] *)
  | Retune of { func : string; chunk : int }
      (** set [schedule(static, chunk)] on the parallel pragmas of [func] *)

type plan = { func : string; rewrites : rewrite list }
(** An ordered fix plan for one function; empty [rewrites] means nothing
    to fix. *)

val describe : rewrite -> string
(** One-line human-readable description (stable; used in reports,
    lint evidence and goldens). *)

val plan :
  ?advice:Advisor.advice ->
  ?line_bytes:int ->
  threads:int ->
  func:string ->
  Minic.Typecheck.checked ->
  plan
(** Decide the fix plan for [func].  Victims come from [advice] when
    given, unioned with a per-nest {!Advisor.find_victims} scan over
    every parallel nest of the function ([line_bytes] defaults to 64).
    Privatization candidates are found syntactically.  Retuning requires
    [advice] with a baseline FS above zero and a recommended chunk, and
    is only planned when no layout/privatization rewrite applies.
    Functions that fail to lower still get privatization fixes; layout
    planning is skipped for them. *)

val materialize :
  Minic.Typecheck.checked -> plan -> Minic.Typecheck.checked
(** Apply the plan: layout rewrites through {!Eliminate.apply}, then the
    pragma edits, then one final re-typecheck.  Idempotent on an empty
    plan (returns the input unchanged). *)

val to_source : Minic.Typecheck.checked -> string
(** Pretty-print the (transformed) program back to mini-C source.  Note
    that [#define] macros are already substituted at parse time, so the
    output uses literal sizes. *)

val pp_plan : Format.formatter -> plan -> unit
(** Render the plan, one {!describe} line per rewrite, or an explicit
    "nothing to fix" notice when empty. *)

type t = bool Cachesim.Lru_stack.t

let no_line = Cachesim.Lru_stack.no_key

let create ~capacity : t = Cachesim.Lru_stack.create ~capacity

let of_cache geom =
  create ~capacity:(Archspec.Cache_geom.lines geom)

let holds (t : t) line = Cachesim.Lru_stack.mem t line

let holds_modified (t : t) line =
  Cachesim.Lru_stack.get t line ~default:false

let insert_fast (t : t) ~line ~written =
  let written = written || holds_modified t line in
  Cachesim.Lru_stack.access_int t line written

let insert (t : t) ~line ~written =
  let written = written || holds_modified t line in
  Cachesim.Lru_stack.access t line written

let invalidate (t : t) line = Cachesim.Lru_stack.remove_key t line
let size (t : t) = Cachesim.Lru_stack.size t
let clear (t : t) = Cachesim.Lru_stack.clear t

(** FS elimination advisor — the paper's stated future work (§VI) built on
    the cost model: search chunk sizes for the smallest one that removes
    (almost all) false sharing, and point at the victim data structures
    with a padding suggestion.

    The chunk search uses the §III-E predictor, so advice costs a few
    chunk runs per candidate, not a full-loop evaluation. *)

type victim = {
  base : string;  (** the falsely-shared array *)
  repr : string;  (** a representative written reference *)
  parallel_stride : int;
      (** bytes between consecutive parallel iterations' writes *)
  padding_bytes : int;
      (** padding per element that would push neighbours onto distinct
          lines *)
}

type advice = {
  threads : int;
  sweep : (int * int) list;  (** (chunk, predicted FS cases), ascending *)
  best_chunk : int option;
      (** smallest candidate whose FS is below [threshold] of chunk 1's
          (None when even the largest candidate does not reach it) *)
  victims : victim list;  (** written refs whose stride < line size *)
}

val find_victims : line_bytes:int -> Loopir.Loop_nest.t -> victim list
(** Syntactic victim scan over one lowered nest: written references whose
    stride between consecutive parallel iterations is positive but below
    [line_bytes], deduplicated by base array.  {!advise} runs this on the
    function's first nest; [Transform.plan] runs it on every nest. *)

val advise :
  ?arch:Archspec.Arch.t ->
  ?chunks:int list ->
  ?threshold:float ->
  ?pred_runs:int ->
  ?domains:int ->
  threads:int ->
  func:string ->
  Minic.Typecheck.checked ->
  advice
(** Defaults: chunks [1;2;4;8;16;32;64], threshold 0.05, 16 prediction
    runs.  The candidate sweep runs through {!Par_sweep.map} ([domains]
    defaults to the recommended domain count; results are identical at
    any domain count). *)

val pp : Format.formatter -> advice -> unit

(* Independent model/predictor evaluations (one per configuration) have no
   shared mutable state — each Model.run builds its own counter and cache
   states — so a sweep parallelizes trivially across OCaml domains.  Work
   is dealt by an atomic cursor; results are keyed by input index, so the
   output order (and content) is identical however many domains run. *)

let recommended_domains () =
  max 1 (min 8 (Domain.recommended_domain_count ()))

let map ?domains f xs =
  let items = Array.of_list xs in
  let len = Array.length items in
  let n =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Par_sweep.map: domains < 1";
        d
    | None -> recommended_domains ()
  in
  if n <= 1 || len <= 1 then List.map f xs
  else begin
    let results = Array.make len None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < len then begin
          let r = try Ok (f items.(i)) with e -> Error e in
          results.(i) <- Some r;
          go ()
        end
      in
      go ()
    in
    let doms =
      Array.init (min n len - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join doms;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

let mapi ?domains f xs =
  map ?domains (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

let map_stream ?domains ~on_result f xs =
  let items = Array.of_list xs in
  let len = Array.length items in
  let n =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Par_sweep.map_stream: domains < 1";
        d
    | None -> recommended_domains ()
  in
  if n <= 1 || len <= 1 then
    List.mapi
      (fun i x ->
        let r = f x in
        on_result i r;
        r)
      xs
  else begin
    let results = Array.make len None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < len then begin
          let r = try Ok (f items.(i)) with e -> Error e in
          results.(i) <- Some r;
          (match r with Ok v -> on_result i v | Error _ -> ());
          go ()
        end
      in
      go ()
    in
    let doms = Array.init (min n len - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join doms;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

(* ------------------------------------------------------------------ *)
(* Long-lived worker pool                                              *)
(* ------------------------------------------------------------------ *)

(* A server wants its domains up before the first request and alive
   after the last: Pool keeps [domains] workers blocked on a condition
   variable, jobs are closures run FIFO.  With one worker the pool is a
   deterministic serial executor (the serve protocol goldens rely on
   this); job exceptions are swallowed after [on_error] so a poisoned
   request can never kill a worker. *)

module Pool = struct
  type t = {
    jobs : (unit -> unit) Queue.t;
    lock : Mutex.t;
    have_work : Condition.t;
    idle : Condition.t;
    mutable running : int;  (* jobs currently executing *)
    mutable closed : bool;
    mutable workers : unit Domain.t array;
    on_error : exn -> unit;
  }

  let worker t () =
    let rec go () =
      Mutex.lock t.lock;
      while Queue.is_empty t.jobs && not t.closed do
        Condition.wait t.have_work t.lock
      done;
      if Queue.is_empty t.jobs && t.closed then Mutex.unlock t.lock
      else begin
        let job = Queue.pop t.jobs in
        t.running <- t.running + 1;
        Mutex.unlock t.lock;
        (try job () with e -> t.on_error e);
        Mutex.lock t.lock;
        t.running <- t.running - 1;
        if Queue.is_empty t.jobs && t.running = 0 then
          Condition.broadcast t.idle;
        Mutex.unlock t.lock;
        go ()
      end
    in
    go ()

  let create ?domains ?(on_error = fun _ -> ()) () =
    let n =
      match domains with
      | Some d ->
          if d < 1 then invalid_arg "Par_sweep.Pool.create: domains < 1";
          d
      | None -> recommended_domains ()
    in
    let t =
      {
        jobs = Queue.create ();
        lock = Mutex.create ();
        have_work = Condition.create ();
        idle = Condition.create ();
        running = 0;
        closed = false;
        workers = [||];
        on_error;
      }
    in
    t.workers <- Array.init n (fun _ -> Domain.spawn (worker t));
    t

  let size t = Array.length t.workers

  let submit t job =
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      invalid_arg "Par_sweep.Pool.submit: pool is shut down"
    end;
    Queue.push job t.jobs;
    Condition.signal t.have_work;
    Mutex.unlock t.lock

  let wait t =
    Mutex.lock t.lock;
    while not (Queue.is_empty t.jobs && t.running = 0) do
      Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock

  let shutdown t =
    Mutex.lock t.lock;
    t.closed <- true;
    Condition.broadcast t.have_work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
end

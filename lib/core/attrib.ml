(* FS-case provenance: packed-int histograms plus a bounded
   struct-of-arrays event ring.  Nothing here allocates per event once
   the tables and the ring have grown to their working size, so the fast
   engine keeps its allocation-free hot path when a recorder is
   attached. *)

type t = {
  threads : int;
  nrefs : int;
  (* (writer_ref, victim_ref, writer_tid, victim_tid) -> count, the key
     packed as ((wr * nrefs + vr) * threads + wt) * threads + vt; a
     writer_ref of -1 (unknown) is folded in by biasing refs by one *)
  pairs : int Cachesim.Int_table.t;
  lines : int Cachesim.Int_table.t;  (* line -> count *)
  cells : int Cachesim.Int_table.t;  (* line * threads + victim_tid -> count *)
  mutable total : int;
  (* bounded trace ring: first [cap] events, recording order *)
  cap : int;
  mutable len : int;
  mutable e_step : int array;
  mutable e_line : int array;
  mutable e_wtid : int array;
  mutable e_wref : int array;
  mutable e_vtid : int array;
  mutable e_vref : int array;
}

let create ?(trace_cap = 65536) ~threads ~nrefs () =
  if threads < 1 then invalid_arg "Attrib.create: threads < 1";
  if nrefs < 0 then invalid_arg "Attrib.create: nrefs < 0";
  if trace_cap < 0 then invalid_arg "Attrib.create: trace_cap < 0";
  let initial = min 64 (max 1 trace_cap) in
  {
    threads;
    nrefs;
    pairs = Cachesim.Int_table.create ~initial:256 ();
    lines = Cachesim.Int_table.create ~initial:256 ();
    cells = Cachesim.Int_table.create ~initial:256 ();
    total = 0;
    cap = trace_cap;
    len = 0;
    e_step = Array.make initial 0;
    e_line = Array.make initial 0;
    e_wtid = Array.make initial 0;
    e_wref = Array.make initial 0;
    e_vtid = Array.make initial 0;
    e_vref = Array.make initial 0;
  }

let threads t = t.threads
let nrefs t = t.nrefs
let total t = t.total

(* refs biased by one so the unknown writer (-1) packs as 0 *)
let pack t ~writer_ref ~victim_ref ~writer_tid ~victim_tid =
  ((((writer_ref + 1) * (t.nrefs + 1)) + (victim_ref + 1)) * t.threads
  + writer_tid)
  * t.threads
  + victim_tid

let unpack t key =
  let victim_tid = key mod t.threads in
  let key = key / t.threads in
  let writer_tid = key mod t.threads in
  let key = key / t.threads in
  let victim_ref = (key mod (t.nrefs + 1)) - 1 in
  let writer_ref = (key / (t.nrefs + 1)) - 1 in
  (writer_ref, victim_ref, writer_tid, victim_tid)

let bump tbl key =
  let s = Cachesim.Int_table.find_slot tbl key in
  if s >= 0 then
    Cachesim.Int_table.set_at tbl s (Cachesim.Int_table.value_at tbl s + 1)
  else Cachesim.Int_table.set tbl key 1

let grow t =
  let n = Array.length t.e_step in
  let n' = min t.cap (2 * n) in
  let extend a = let b = Array.make n' 0 in Array.blit a 0 b 0 n; b in
  t.e_step <- extend t.e_step;
  t.e_line <- extend t.e_line;
  t.e_wtid <- extend t.e_wtid;
  t.e_wref <- extend t.e_wref;
  t.e_vtid <- extend t.e_vtid;
  t.e_vref <- extend t.e_vref

let record t ~step ~line ~writer_tid ~writer_ref ~victim_tid ~victim_ref =
  bump t.pairs (pack t ~writer_ref ~victim_ref ~writer_tid ~victim_tid);
  bump t.lines line;
  bump t.cells ((line * t.threads) + victim_tid);
  if t.len < t.cap then begin
    if t.len = Array.length t.e_step then grow t;
    let i = t.len in
    t.e_step.(i) <- step;
    t.e_line.(i) <- line;
    t.e_wtid.(i) <- writer_tid;
    t.e_wref.(i) <- writer_ref;
    t.e_vtid.(i) <- victim_tid;
    t.e_vref.(i) <- victim_ref;
    t.len <- i + 1
  end;
  t.total <- t.total + 1

let fold_pairs t ~init ~f =
  Cachesim.Int_table.fold
    (fun key count acc ->
      let writer_ref, victim_ref, writer_tid, victim_tid = unpack t key in
      f acc ~writer_ref ~victim_ref ~writer_tid ~victim_tid ~count)
    t.pairs init

let fold_lines t ~init ~f =
  Cachesim.Int_table.fold (fun line count acc -> f acc ~line ~count) t.lines
    init

let fold_cells t ~init ~f =
  Cachesim.Int_table.fold
    (fun key count acc ->
      f acc ~line:(key / t.threads) ~tid:(key mod t.threads) ~count)
    t.cells init

type pair_stat = {
  writer_ref : int;
  victim_ref : int;
  writer_tid : int;
  victim_tid : int;
  count : int;
}

let top_pairs ?(n = 3) t =
  let all =
    Cachesim.Int_table.fold (fun key count acc -> (key, count) :: acc) t.pairs
      []
  in
  let sorted =
    List.sort
      (fun (k1, c1) (k2, c2) ->
        let c = compare c2 c1 in
        if c <> 0 then c else compare k1 k2)
      all
  in
  List.filteri (fun i _ -> i < n) sorted
  |> List.map (fun (key, count) ->
         let writer_ref, victim_ref, writer_tid, victim_tid = unpack t key in
         { writer_ref; victim_ref; writer_tid; victim_tid; count })

let trace_len t = t.len
let trace_dropped t = t.total - t.len

let check t i name =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Attrib.%s: index %d out of [0, %d)" name i t.len)

let trace_step t i = check t i "trace_step"; t.e_step.(i)
let trace_line t i = check t i "trace_line"; t.e_line.(i)
let trace_writer_tid t i = check t i "trace_writer_tid"; t.e_wtid.(i)
let trace_writer_ref t i = check t i "trace_writer_ref"; t.e_wref.(i)
let trace_victim_tid t i = check t i "trace_victim_tid"; t.e_vtid.(i)
let trace_victim_ref t i = check t i "trace_victim_ref"; t.e_vref.(i)

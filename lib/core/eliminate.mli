(** FS elimination by data-layout transformation — the future work the paper
    sketches in §VI, using the transformations its related work describes
    (Jeremiassen & Eggers: array padding and alignment).

    Two rewrites, chosen per victim found by {!Advisor}:

    - {b struct padding}: when the victim array's elements are structs, a
      [char _fs_pad[k]] tail field pushes consecutive elements onto
      different cache lines (e.g. the 40-byte linreg accumulator grows to
      64 bytes);
    - {b element spreading}: when the elements are scalars, the array is
      inflated by a factor [line_bytes / elem_size] and every subscript on
      the victim's element dimension is multiplied by the same factor, so
      neighbouring parallel iterations no longer share a line (classic
      inter-element padding, traded against memory footprint).

    The transform rewrites the whole program (all functions, including
    initialization), re-typechecks it, and returns the new program; the
    kernel's own loads/stores are preserved reference-for-reference, so the
    model and the execution simulator can be re-run on the result to
    confirm the false sharing is gone. *)

type rewrite =
  | Pad_struct of { struct_name : string; pad_bytes : int }
      (** append [char _fs_pad[pad_bytes]] to [struct_name], growing its
          elements to a cache-line multiple *)
  | Spread_array of { base : string; factor : int }
      (** inflate array [base] by [factor] and scale every subscript on
          its element dimension to match *)

type plan = { rewrites : rewrite list }
(** One layout rewrite per victim; empty means no false sharing was
    attributed.  [Fsmodel.Transform] widens these layout-only plans
    with privatization and schedule retuning and materializes them as
    source. *)

exception Unsupported of string
(** Raised by {!plan_for} on a victim whose array element is neither a
    struct nor a scalar. *)

val plan_for :
  Minic.Typecheck.checked -> line_bytes:int -> Advisor.victim list -> plan
(** Decide a rewrite per victim.  @raise Unsupported when a victim's array
    element is neither a struct nor a scalar (not produced by the current
    frontend). *)

val apply : Minic.Typecheck.checked -> plan -> Minic.Typecheck.checked
(** Apply the plan and re-typecheck.  Spreading renames nothing; programs
    keep working with the same function names. *)

val eliminate :
  ?arch:Archspec.Arch.t ->
  threads:int ->
  func:string ->
  Minic.Typecheck.checked ->
  Minic.Typecheck.checked * plan
(** [eliminate ~threads ~func checked] = advise, plan, apply. *)

val pp_plan : Format.formatter -> plan -> unit
(** Render the plan, one line per rewrite, or an explicit "nothing to
    fix" notice when empty (mirrored by the [fsdetect eliminate]
    stderr notice). *)

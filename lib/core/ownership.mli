(** Step 2 of the paper's method (§III-B): the cache-line ownership list —
    for given values of the loop indices, the set of cache lines a thread
    reads/writes in that iteration.

    References are compiled once (base addresses resolved through
    {!Loopir.Layout}, parameters folded) so that per-iteration evaluation is
    a handful of integer multiply-adds.  Lines touched more than once in an
    iteration are merged, a write dominating reads. *)

type entry = { line : int; written : bool }

type attr_entry = { a_line : int; a_written : bool; a_ref : int }
(** An ownership-list entry with provenance: [a_ref] is the index (in
    compilation order, see {!source_ref}) of the reference the line is
    attributed to — the first write touching it in the iteration, else
    the first touch. *)

type t

val compile :
  layout:Loopir.Layout.t ->
  line_bytes:int ->
  params:(string * int) list ->
  var_slots:string list ->
  Loopir.Loop_nest.t ->
  t
(** [var_slots] fixes the order in which {!lines} expects index values
    (normally the nest's loop variables, outermost first).
    @raise Invalid_argument if a reference uses a variable outside
    [var_slots] and [params]. *)

val lines : t -> int array -> entry list
(** Ownership list for the iteration whose index values are given in
    [var_slots] order.  The result is freshly allocated, deduplicated,
    in first-touch order. *)

val lines_ref : t -> int array -> entry list
(** Alias of {!lines}: the list-building reference implementation the
    incremental {!cursor}/{!fill} engine is checked against. *)

val lines_with_refs : t -> int array -> attr_entry list
(** {!lines_ref} with per-entry provenance; same entries, same order,
    same write domination.  Used by the reference engine's attribution
    path. *)

val ref_count : t -> int
(** Number of compiled references (the length of the nest's
    [Loop_nest.refs]). *)

val source_ref : t -> int -> Loopir.Array_ref.t
(** The source-level reference a compiled index came from; indices are
    in compilation order ([0 .. ref_count - 1]).
    @raise Invalid_argument on an out-of-range index. *)

(** {2 Incremental evaluation}

    The allocation-free engine behind {!Model}'s fast path: a {!cursor}
    keeps one running address per compiled reference and folds index
    changes in as deltas ([coefficient * (new - old)] per affected
    reference — the strength-reduced form of re-evaluating every affine
    term), and a {!buffer} is refilled in place with the deduplicated
    ownership list.  {!fill} produces exactly the entries {!lines} would,
    in the same first-touch order with the same write domination. *)

type cursor

val cursor : t -> cursor
(** A cursor positioned at index value 0 in every slot. *)

val cursor_set : cursor -> int -> int -> unit
(** [cursor_set c slot v] moves one index to [v]; O(refs using slot),
    free when the value is unchanged. *)

type buffer

val buffer : unit -> buffer
(** A reusable ownership-list buffer; it grows to the largest list ever
    filled into it and is reset by each {!fill}. *)

val buf_len : buffer -> int
val buf_line : buffer -> int -> int
val buf_written : buffer -> int -> bool

val buf_ref : buffer -> int -> int
(** Reference index entry [i] is attributed to (see {!attr_entry});
    {!fill} computes the same attribution {!lines_with_refs} would. *)

val fill : cursor -> buffer -> unit
(** Replace [buffer]'s contents with the ownership list at the cursor's
    current index values. *)

val fold_lines :
  cursor ->
  buffer ->
  init:'a ->
  f:('a -> line:int -> written:bool -> 'a) ->
  'a
(** {!fill} then fold over the buffer. *)

(** Least-squares line fitting for the FS prediction model (paper §III-E).

    The paper derives, from minimizing [(a·x + b − y)ᵀ(a·x + b − y)] the
    two-step solution [a = Σxᵢyᵢ / Σxᵢ²], [b = Σ(yᵢ − a·xᵢ)/n]; {!fit_paper}
    implements those formulas verbatim.  {!fit_ols} is the standard
    mean-centered ordinary least squares, provided for comparison (they
    agree exactly on data that is exactly linear through any intercept
    close to zero, which Fig. 6 shows FS counts are). *)

type line = { a : float; b : float }

val fit_paper : (float * float) list -> line
(** @raise Invalid_argument on an empty list or all-zero x. *)

val fit_ols : (float * float) list -> line
(** Standard OLS; for a single point or zero x-variance the slope falls
    back to [fit_paper]'s. *)

val predict : line -> float -> float
(** [predict l x] is [l.a *. x +. l.b]. *)

val residual_rms : line -> (float * float) list -> float
(** Root-mean-square of [y - predict l x] over the points; [0.] on an
    empty list. *)

val pp : Format.formatter -> line -> unit
(** Renders as ["y = <a> * x + <b>"]. *)

(** Abstract syntax of the mini-C dialect. *)

type ctype =
  | Tvoid
  | Tchar
  | Tint
  | Tlong
  | Tfloat
  | Tdouble
  | Tstruct of string
  | Tarray of ctype * int  (** element type, dimension *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Float_lit of float
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of expr * expr  (** [a\[i\]] *)
  | Field of expr * string  (** [a.f] *)
  | Call of string * expr list  (** math builtins: sin, cos, sqrt, ... *)

type assign_op = A_set | A_add | A_sub | A_mul | A_div

(** OpenMP worksharing annotation attached to a [for] loop. *)
type schedule =
  | Sched_static of int option  (** [schedule(static[,chunk])] *)
  | Sched_dynamic of int option  (** [schedule(dynamic[,chunk])] *)
  | Sched_guided of int option  (** [schedule(guided[,min_chunk])] *)

type pragma = {
  private_vars : string list;
  shared_vars : string list;
  reduction : (binop * string list) list;
  schedule : schedule option;
  num_threads : int option;
}

val empty_pragma : pragma

(** Loop step, normalized from [i++], [i--], [i += k], [i = i + k]. *)
type step = { step_var : string; step_by : expr }

type stmt =
  | Sexpr of expr
  | Sassign of Span.t * expr * assign_op * expr
      (** source span, lvalue, op, rvalue; rewrites use {!Span.none} *)
  | Sdecl of ctype * string * expr option
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Sfor of for_loop
  | Swhile of expr * stmt
  | Sbreak
  | Scontinue
  | Sreturn of expr option

and for_loop = {
  pragma : pragma option;
  span : Span.t;  (** the [for] keyword's position (or the pragma's) *)
  init_var : string;
  init_expr : expr;
  cond : expr;  (** must be [init_var < e], [<=], [>], or [>=] *)
  step : step;
  body : stmt;
}

type global =
  | Gstruct_def of string * (ctype * string) list
  | Gvar of ctype * string
  | Gfunc of func

and func = {
  ret : ctype;
  fname : string;
  params : (ctype * string) list;
  body : stmt list;
}

type program = { macros : Preproc.macros; globals : global list }

val binop_name : binop -> string
val assign_op_name : assign_op -> string

val erase_spans : program -> program
(** Replace every statement/loop span by {!Span.none} — for structural
    comparisons (e.g. pretty round-trips) where positions must not
    participate in equality. *)

val struct_defs : program -> (string * (ctype * string) list) list
val global_vars : program -> (string * ctype) list
val funcs : program -> func list
val find_func : program -> string -> func option

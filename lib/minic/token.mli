(** Tokens of the mini-C dialect.

    The dialect covers what the paper's analysis consumes: scalar and struct
    types, multi-dimensional global arrays, [for]-loop nests, compound
    assignments, arithmetic/relational expressions, calls to a few math
    builtins, and [#pragma omp parallel for] annotations (kept as raw text
    tokens, parsed by {!Pragma}). *)

type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT
  | KW_LONG
  | KW_FLOAT
  | KW_DOUBLE
  | KW_CHAR
  | KW_VOID
  | KW_STRUCT
  | KW_FOR
  | KW_IF
  | KW_ELSE
  | KW_RETURN
  | KW_WHILE
  | KW_BREAK
  | KW_CONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | COLON
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | AMPAMP
  | BARBAR
  | BANG
  | PLUSPLUS
  | MINUSMINUS
  | PRAGMA of string  (** raw text after [#pragma], one full line *)
  | EOF

val to_string : t -> string

type located = { tok : t; line : int; col : int; end_col : int }
(** [col] is the 1-based column of the token's first character,
    [end_col] the column one past its last character. *)

val span_of : located -> Span.t

type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT
  | KW_LONG
  | KW_FLOAT
  | KW_DOUBLE
  | KW_CHAR
  | KW_VOID
  | KW_STRUCT
  | KW_FOR
  | KW_IF
  | KW_ELSE
  | KW_RETURN
  | KW_WHILE
  | KW_BREAK
  | KW_CONTINUE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | COLON
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | AMPAMP
  | BARBAR
  | BANG
  | PLUSPLUS
  | MINUSMINUS
  | PRAGMA of string
  | EOF

let to_string = function
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_LONG -> "long"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_CHAR -> "char"
  | KW_VOID -> "void"
  | KW_STRUCT -> "struct"
  | KW_FOR -> "for"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_RETURN -> "return"
  | KW_WHILE -> "while"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | COLON -> ":"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | BANG -> "!"
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | PRAGMA s -> "#pragma " ^ s
  | EOF -> "<eof>"

type located = { tok : t; line : int; col : int; end_col : int }

let span_of { line; col; end_col; _ } =
  if line = 0 then Span.none
  else Span.make ~line ~col ~end_line:line ~end_col

type ctype =
  | Tvoid
  | Tchar
  | Tint
  | Tlong
  | Tfloat
  | Tdouble
  | Tstruct of string
  | Tarray of ctype * int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Float_lit of float
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of expr * expr
  | Field of expr * string
  | Call of string * expr list

type assign_op = A_set | A_add | A_sub | A_mul | A_div

type schedule =
  | Sched_static of int option
  | Sched_dynamic of int option
  | Sched_guided of int option

type pragma = {
  private_vars : string list;
  shared_vars : string list;
  reduction : (binop * string list) list;
  schedule : schedule option;
  num_threads : int option;
}

let empty_pragma =
  {
    private_vars = [];
    shared_vars = [];
    reduction = [];
    schedule = None;
    num_threads = None;
  }

type step = { step_var : string; step_by : expr }

type stmt =
  | Sexpr of expr
  | Sassign of Span.t * expr * assign_op * expr
  | Sdecl of ctype * string * expr option
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Sfor of for_loop
  | Swhile of expr * stmt
  | Sbreak
  | Scontinue
  | Sreturn of expr option

and for_loop = {
  pragma : pragma option;
  span : Span.t;
  init_var : string;
  init_expr : expr;
  cond : expr;
  step : step;
  body : stmt;
}

type global =
  | Gstruct_def of string * (ctype * string) list
  | Gvar of ctype * string
  | Gfunc of func

and func = {
  ret : ctype;
  fname : string;
  params : (ctype * string) list;
  body : stmt list;
}

type program = { macros : Preproc.macros; globals : global list }

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let assign_op_name = function
  | A_set -> "="
  | A_add -> "+="
  | A_sub -> "-="
  | A_mul -> "*="
  | A_div -> "/="

let struct_defs p =
  List.filter_map
    (function Gstruct_def (n, fs) -> Some (n, fs) | Gvar _ | Gfunc _ -> None)
    p.globals

let global_vars p =
  List.filter_map
    (function Gvar (t, n) -> Some (n, t) | Gstruct_def _ | Gfunc _ -> None)
    p.globals

let funcs p =
  List.filter_map
    (function Gfunc f -> Some f | Gstruct_def _ | Gvar _ -> None)
    p.globals

let find_func p name = List.find_opt (fun f -> f.fname = name) (funcs p)

let rec erase_spans_stmt = function
  | Sassign (_, l, op, r) -> Sassign (Span.none, l, op, r)
  | Sblock ss -> Sblock (List.map erase_spans_stmt ss)
  | Sif (c, t, e) ->
      Sif (c, erase_spans_stmt t, Option.map erase_spans_stmt e)
  | Sfor f -> Sfor { f with span = Span.none; body = erase_spans_stmt f.body }
  | Swhile (c, b) -> Swhile (c, erase_spans_stmt b)
  | (Sexpr _ | Sdecl _ | Sbreak | Scontinue | Sreturn _) as s -> s

let erase_spans p =
  {
    p with
    globals =
      List.map
        (function
          | Gfunc f ->
              Gfunc { f with body = List.map erase_spans_stmt f.body }
          | g -> g)
        p.globals;
  }

exception Type_error of string

(* A [Type_error] that has already been given a source position by the
   nearest enclosing located statement; converted back to [Type_error] at
   the [check_program] boundary so the public exception stays a string. *)
exception Located_error of Span.t * string

type checked = {
  prog : Ast.program;
  structs : Ctypes.struct_env;
  global_types : (string * Ast.ctype) list;
}

let builtins =
  [
    ("sin", 1); ("cos", 1); ("tan", 1); ("sqrt", 1); ("fabs", 1); ("exp", 1);
    ("log", 1); ("pow", 2); ("fmin", 2); ("fmax", 2);
  ]

let implicit_params = [ ("num_threads", Ast.Tint) ]

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* Attach [sp] to any plain [Type_error] raised inside [f]: the innermost
   span wins because an already-located error passes through untouched. *)
let locate sp f =
  if Span.is_none sp then f ()
  else try f () with Type_error m -> raise (Located_error (sp, m))

let numeric = function
  | Ast.Tchar | Ast.Tint | Ast.Tlong | Ast.Tfloat | Ast.Tdouble -> true
  | Ast.Tvoid | Ast.Tstruct _ | Ast.Tarray _ -> false

let integral = function
  | Ast.Tchar | Ast.Tint | Ast.Tlong -> true
  | Ast.Tvoid | Ast.Tfloat | Ast.Tdouble | Ast.Tstruct _ | Ast.Tarray _ ->
      false

(* usual arithmetic conversions, restricted to our scalar set *)
let promote a b =
  let rank = function
    | Ast.Tdouble -> 5
    | Ast.Tfloat -> 4
    | Ast.Tlong -> 3
    | Ast.Tint -> 2
    | Ast.Tchar -> 1
    | Ast.Tvoid | Ast.Tstruct _ | Ast.Tarray _ -> 0
  in
  if rank a >= rank b then a else b

let rec type_of_expr structs lookup expr =
  match expr with
  | Ast.Int_lit _ -> Ast.Tint
  | Ast.Float_lit _ -> Ast.Tdouble
  | Ast.Ident v -> (
      match lookup v with
      | Some t -> t
      | None -> err "undeclared identifier %S" v)
  | Ast.Unop (Ast.Neg, e) ->
      let t = type_of_expr structs lookup e in
      if numeric t then t else err "unary - applied to non-numeric value"
  | Ast.Unop (Ast.Not, e) ->
      let t = type_of_expr structs lookup e in
      if numeric t then Ast.Tint else err "! applied to non-numeric value"
  | Ast.Binop (op, a, b) -> (
      let ta = type_of_expr structs lookup a in
      let tb = type_of_expr structs lookup b in
      if not (numeric ta && numeric tb) then
        err "operator %s applied to non-numeric operands" (Ast.binop_name op);
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> promote ta tb
      | Ast.Mod ->
          if integral ta && integral tb then promote ta tb
          else err "%% requires integer operands"
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.And | Ast.Or
        ->
          Ast.Tint)
  | Ast.Index (e, idx) -> (
      let te = type_of_expr structs lookup e in
      let ti = type_of_expr structs lookup idx in
      if not (integral ti) then err "array subscript is not an integer";
      match te with
      | Ast.Tarray (t, _) -> t
      | _ -> err "subscripted value is not an array")
  | Ast.Field (e, f) -> (
      let te = type_of_expr structs lookup e in
      match te with
      | Ast.Tstruct s -> (
          try Ctypes.field_type structs s f
          with
          | Ctypes.Unknown_field (s, f) -> err "struct %s has no field %s" s f
          | Ctypes.Unknown_struct s -> err "unknown struct %s" s)
      | _ -> err "field access .%s on a non-struct value" f)
  | Ast.Call (name, args) -> (
      match List.assoc_opt name builtins with
      | None -> err "call to unknown function %S (only math builtins)" name
      | Some arity ->
          if List.length args <> arity then
            err "%s expects %d argument(s), got %d" name arity
              (List.length args);
          List.iter
            (fun a ->
              let t = type_of_expr structs lookup a in
              if not (numeric t) then err "%s argument is not numeric" name)
            args;
          Ast.Tdouble)

let rec is_lvalue = function
  | Ast.Ident _ -> true
  | Ast.Index (e, _) | Ast.Field (e, _) -> is_lvalue e
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Binop _ | Ast.Unop _ | Ast.Call _ ->
      false

let rec check_type_resolves structs = function
  | Ast.Tstruct s ->
      if List.assoc_opt s structs = None then err "unknown struct %s" s
  | Ast.Tarray (t, n) ->
      if n <= 0 then err "array dimension must be positive";
      check_type_resolves structs t
  | Ast.Tvoid | Ast.Tchar | Ast.Tint | Ast.Tlong | Ast.Tfloat | Ast.Tdouble ->
      ()

(* scope is an association list, innermost first *)
let rec check_stmt structs scope stmt =
  let lookup scope v = List.assoc_opt v scope in
  let typeof scope e = type_of_expr structs (lookup scope) e in
  match stmt with
  | Ast.Sexpr e ->
      ignore (typeof scope e);
      scope
  | Ast.Sassign (sp, lhs, _op, rhs) ->
      locate sp (fun () ->
          if not (is_lvalue lhs) then err "assignment target is not an lvalue";
          let tl = typeof scope lhs in
          let tr = typeof scope rhs in
          if not (numeric tl) then err "assignment target is not scalar";
          if not (numeric tr) then err "assigned value is not scalar");
      scope
  | Ast.Sdecl (ty, name, init) ->
      check_type_resolves structs ty;
      (match init with
      | None -> ()
      | Some e ->
          let t = typeof scope e in
          if not (numeric t && numeric ty) then
            err "initializer of %s is not scalar" name);
      (name, ty) :: scope
  | Ast.Sblock stmts ->
      ignore (List.fold_left (check_stmt structs) scope stmts);
      scope
  | Ast.Sif (cond, then_, else_) ->
      let tc = typeof scope cond in
      if not (numeric tc) then err "if condition is not numeric";
      ignore (check_stmt structs scope then_);
      (match else_ with
      | Some s -> ignore (check_stmt structs scope s)
      | None -> ());
      scope
  | Ast.Sfor loop ->
      locate loop.Ast.span (fun () ->
          let scope' =
            match List.assoc_opt loop.Ast.init_var scope with
            | Some t ->
                if not (integral t) then
                  err "loop variable %s is not integral" loop.Ast.init_var;
                scope
            | None -> (loop.Ast.init_var, Ast.Tint) :: scope
          in
          ignore (typeof scope' loop.Ast.init_expr);
          let tc = typeof scope' loop.Ast.cond in
          if not (numeric tc) then err "loop condition is not numeric";
          if loop.Ast.step.Ast.step_var <> loop.Ast.init_var then
            err "loop step variable %s differs from induction variable %s"
              loop.Ast.step.Ast.step_var loop.Ast.init_var;
          ignore (typeof scope' loop.Ast.step.Ast.step_by);
          ignore (check_stmt structs scope' loop.Ast.body));
      scope
  | Ast.Swhile (cond, body) ->
      let tc = typeof scope cond in
      if not (numeric tc) then err "while condition is not numeric";
      ignore (check_stmt structs scope body);
      scope
  | Ast.Sbreak | Ast.Scontinue -> scope
  | Ast.Sreturn None -> scope
  | Ast.Sreturn (Some e) ->
      ignore (typeof scope e);
      scope

let check_func structs global_types (f : Ast.func) =
  List.iter (fun (t, _) -> check_type_resolves structs t) f.Ast.params;
  let scope =
    List.map (fun (t, n) -> (n, t)) f.Ast.params
    @ global_types @ implicit_params
  in
  ignore (List.fold_left (check_stmt structs) scope f.Ast.body)

let check_program_exn prog =
  let structs = Ctypes.struct_env_of_program prog in
  (* struct field types must resolve (and not be recursive by construction:
     a struct can only reference structs defined before it) *)
  let rec check_structs seen = function
    | [] -> ()
    | (name, fields) :: rest ->
        if List.mem_assoc name seen then err "duplicate struct %s" name;
        List.iter (fun (t, _) -> check_type_resolves seen t) fields;
        check_structs ((name, fields) :: seen) rest
  in
  check_structs [] structs;
  let global_types = Ast.global_vars prog in
  let rec check_dup = function
    | [] -> ()
    | (n, _) :: rest ->
        if List.mem_assoc n rest then err "duplicate global %s" n;
        check_dup rest
  in
  check_dup global_types;
  List.iter (fun (_, t) -> check_type_resolves structs t) global_types;
  List.iter (check_func structs global_types) (Ast.funcs prog);
  { prog; structs; global_types }

let check_program prog =
  try check_program_exn prog
  with Located_error (sp, m) ->
    raise (Type_error (Format.asprintf "%a: %s" Span.pp sp m))

let locals_of_func checked (f : Ast.func) =
  let acc = ref (List.map (fun (t, n) -> (n, t)) f.Ast.params) in
  let add name ty = if not (List.mem_assoc name !acc) then acc := (name, ty) :: !acc in
  let rec go = function
    | Ast.Sdecl (ty, name, _) -> add name ty
    | Ast.Sblock ss -> List.iter go ss
    | Ast.Sif (_, t, e) -> (
        go t;
        match e with Some s -> go s | None -> ())
    | Ast.Sfor loop ->
        if not (List.mem_assoc loop.Ast.init_var checked.global_types) then
          add loop.Ast.init_var Ast.Tint;
        go loop.Ast.body
    | Ast.Swhile (_, body) -> go body
    | Ast.Sexpr _ | Ast.Sassign _ | Ast.Sbreak | Ast.Scontinue
    | Ast.Sreturn _ ->
        ()
  in
  List.iter go f.Ast.body;
  List.rev !acc

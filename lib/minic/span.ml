type t = { line : int; col : int; end_line : int; end_col : int }

let none = { line = 0; col = 0; end_line = 0; end_col = 0 }
let is_none s = s.line = 0

let point ~line ~col = { line; col; end_line = line; end_col = col }

let make ~line ~col ~end_line ~end_col = { line; col; end_line; end_col }

let join a b =
  if is_none a then b
  else if is_none b then a
  else begin
    let lo, lo_col =
      if (a.line, a.col) <= (b.line, b.col) then (a.line, a.col)
      else (b.line, b.col)
    in
    let hi, hi_col =
      if (a.end_line, a.end_col) >= (b.end_line, b.end_col) then
        (a.end_line, a.end_col)
      else (b.end_line, b.end_col)
    in
    { line = lo; col = lo_col; end_line = hi; end_col = hi_col }
  end

let pp ppf s =
  if is_none s then Format.pp_print_string ppf "?:?"
  else Format.fprintf ppf "%d:%d" s.line s.col

let to_string s = Format.asprintf "%a" pp s

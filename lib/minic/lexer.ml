exception Error of string * int

let keyword_of = function
  | "int" -> Some Token.KW_INT
  | "long" -> Some Token.KW_LONG
  | "float" -> Some Token.KW_FLOAT
  | "double" -> Some Token.KW_DOUBLE
  | "char" -> Some Token.KW_CHAR
  | "void" -> Some Token.KW_VOID
  | "struct" -> Some Token.KW_STRUCT
  | "for" -> Some Token.KW_FOR
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "return" -> Some Token.KW_RETURN
  | "while" -> Some Token.KW_WHILE
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(* The lexer walks the string with an index, a current line counter and the
   index of the current line's first character (so 1-based columns are
   [i - bol + 1]).  A leading '#' introduces a directive that consumes the
   rest of the line. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let i = ref 0 in
  (* [start] is the index of the token's first character; the token ends
     just before the current position *)
  let emit ~start tok =
    toks :=
      { Token.tok; line = !line; col = start - !bol + 1;
        end_col = !i - !bol + 1 }
      :: !toks
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let rec skip_block_comment start_line =
    if !i + 1 >= n then raise (Error ("unterminated comment", start_line))
    else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
    else begin
      if src.[!i] = '\n' then begin incr line; bol := !i + 1 end;
      incr i;
      skip_block_comment start_line
    end
  in
  let read_line_rest () =
    let start = !i in
    while !i < n && src.[!i] <> '\n' do incr i done;
    String.sub src start (!i - start)
  in
  let read_number () =
    let start = !i in
    while !i < n && is_digit src.[!i] do incr i done;
    let is_float =
      (!i < n && src.[!i] = '.')
      || (!i < n && (src.[!i] = 'e' || src.[!i] = 'E'))
    in
    if is_float then begin
      if !i < n && src.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      let s = String.sub src start (!i - start) in
      emit ~start (Token.FLOAT_LIT (float_of_string s))
    end
    else begin
      let s = String.sub src start (!i - start) in
      (* swallow integer suffixes: 100L, 100UL *)
      while !i < n && (src.[!i] = 'l' || src.[!i] = 'L' || src.[!i] = 'u'
                       || src.[!i] = 'U') do incr i done;
      emit ~start (Token.INT_LIT (int_of_string s))
    end
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i; bol := !i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then ignore (read_line_rest ())
    else if c = '/' && peek 1 = Some '*' then begin
      let start_line = !line in
      i := !i + 2;
      skip_block_comment start_line
    end
    else if c = '#' then begin
      let start = !i in
      incr i;
      let rest = read_line_rest () in
      let rest = String.trim rest in
      if String.length rest >= 6 && String.sub rest 0 6 = "pragma" then
        emit ~start
          (Token.PRAGMA (String.trim (String.sub rest 6 (String.length rest - 6))))
      else
        raise
          (Error
             ( "unsupported preprocessor directive (run Preproc first): #"
               ^ rest,
               !line ))
    end
    else if is_digit c then read_number ()
    else if c = '.' && (match peek 1 with Some d -> is_digit d | None -> false)
    then read_number ()
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      match keyword_of s with
      | Some kw -> emit ~start kw
      | None -> emit ~start (Token.IDENT s)
    end
    else begin
      let start = !i in
      let two tok = i := !i + 2; emit ~start tok in
      let one tok = incr i; emit ~start tok in
      match c, peek 1 with
      | '+', Some '+' -> two Token.PLUSPLUS
      | '+', Some '=' -> two Token.PLUSEQ
      | '-', Some '-' -> two Token.MINUSMINUS
      | '-', Some '=' -> two Token.MINUSEQ
      | '*', Some '=' -> two Token.STAREQ
      | '/', Some '=' -> two Token.SLASHEQ
      | '<', Some '=' -> two Token.LE
      | '>', Some '=' -> two Token.GE
      | '=', Some '=' -> two Token.EQEQ
      | '!', Some '=' -> two Token.NE
      | '&', Some '&' -> two Token.AMPAMP
      | '|', Some '|' -> two Token.BARBAR
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | '*', _ -> one Token.STAR
      | '/', _ -> one Token.SLASH
      | '%', _ -> one Token.PERCENT
      | '<', _ -> one Token.LT
      | '>', _ -> one Token.GT
      | '=', _ -> one Token.ASSIGN
      | '!', _ -> one Token.BANG
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '{', _ -> one Token.LBRACE
      | '}', _ -> one Token.RBRACE
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | ';', _ -> one Token.SEMI
      | ',', _ -> one Token.COMMA
      | '.', _ -> one Token.DOT
      | ':', _ -> one Token.COLON
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit ~start:!i Token.EOF;
  List.rev !toks

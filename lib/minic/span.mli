(** Source spans: 1-based line/column ranges attached to tokens, statements
    and loops, and threaded through {!Typecheck} error messages and the
    [Loopir] reference lists into the diagnostics of the lint pass.

    The unknown span {!none} (line 0) marks nodes produced by program
    rewrites ({!module:Ast} transformations) rather than by the parser. *)

type t = { line : int; col : int; end_line : int; end_col : int }

val none : t
(** The unknown span; {!pp} renders it as ["?:?"]. *)

val is_none : t -> bool
val point : line:int -> col:int -> t
val make : line:int -> col:int -> end_line:int -> end_col:int -> t

val join : t -> t -> t
(** Smallest span covering both; {!none} is the identity. *)

val pp : Format.formatter -> t -> unit
(** ["line:col"] of the start position. *)

val to_string : t -> string

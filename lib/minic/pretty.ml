open Format

(* Render the declarator part of a (possibly array) type around a name:
   [int a[2][3]] rather than OCaml-style nesting. *)
let rec base_type = function
  | Ast.Tarray (t, _) -> base_type t
  | t -> t

let rec array_dims = function
  | Ast.Tarray (t, n) -> n :: array_dims t
  | _ -> []

let pp_base ppf = function
  | Ast.Tvoid -> pp_print_string ppf "void"
  | Ast.Tchar -> pp_print_string ppf "char"
  | Ast.Tint -> pp_print_string ppf "int"
  | Ast.Tlong -> pp_print_string ppf "long"
  | Ast.Tfloat -> pp_print_string ppf "float"
  | Ast.Tdouble -> pp_print_string ppf "double"
  | Ast.Tstruct s -> fprintf ppf "struct %s" s
  | Ast.Tarray _ -> assert false

let pp_ctype ppf t =
  pp_base ppf (base_type t);
  List.iter (fun d -> fprintf ppf "[%d]" d) (array_dims t)

let pp_declarator ppf (t, name) =
  fprintf ppf "%a %s" pp_base (base_type t) name;
  List.iter (fun d -> fprintf ppf "[%d]" d) (array_dims t)

(* Precedence levels for minimal parenthesisation *)
let prec_of_binop = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Ne -> 3
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 4
  | Ast.Add | Ast.Sub -> 5
  | Ast.Mul | Ast.Div | Ast.Mod -> 6

let rec pp_expr_prec prec ppf = function
  | Ast.Int_lit n -> pp_print_int ppf n
  | Ast.Float_lit f ->
      if Float.is_integer f && Float.abs f < 1e15 then fprintf ppf "%.1f" f
      else begin
        (* shortest decimal that parses back to the same float, so
           transformed programs round-trip bit-exactly *)
        let s = Printf.sprintf "%.15g" f in
        let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
        pp_print_string ppf s
      end
  | Ast.Ident v -> pp_print_string ppf v
  | Ast.Unop (Ast.Neg, (Ast.Unop (Ast.Neg, _) as e)) ->
      (* avoid "--x", which would lex as the decrement operator *)
      fprintf ppf "-(%a)" (pp_expr_prec 0) e
  | Ast.Unop (Ast.Neg, e) -> fprintf ppf "-%a" (pp_expr_prec 7) e
  | Ast.Unop (Ast.Not, e) -> fprintf ppf "!%a" (pp_expr_prec 7) e
  | Ast.Binop (op, a, b) ->
      let p = prec_of_binop op in
      let body ppf () =
        fprintf ppf "%a %s %a" (pp_expr_prec p) a (Ast.binop_name op)
          (pp_expr_prec (p + 1)) b
      in
      if p < prec then fprintf ppf "(%a)" body () else body ppf ()
  | Ast.Index (e, i) ->
      fprintf ppf "%a[%a]" (pp_expr_prec 8) e (pp_expr_prec 0) i
  | Ast.Field (e, f) -> fprintf ppf "%a.%s" (pp_expr_prec 8) e f
  | Ast.Call (f, args) ->
      fprintf ppf "%s(%a)" f
        (pp_print_list
           ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
           (pp_expr_prec 0))
        args

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_pragma ppf (p : Ast.pragma) =
  fprintf ppf "#pragma omp parallel for";
  (match p.Ast.private_vars with
  | [] -> ()
  | vs -> fprintf ppf " private(%s)" (String.concat "," vs));
  (match p.Ast.shared_vars with
  | [] -> ()
  | vs -> fprintf ppf " shared(%s)" (String.concat "," vs));
  List.iter
    (fun (op, vs) ->
      fprintf ppf " reduction(%s:%s)" (Ast.binop_name op) (String.concat "," vs))
    p.Ast.reduction;
  (match p.Ast.schedule with
  | Some (Ast.Sched_static None) -> fprintf ppf " schedule(static)"
  | Some (Ast.Sched_static (Some c)) -> fprintf ppf " schedule(static,%d)" c
  | Some (Ast.Sched_dynamic None) -> fprintf ppf " schedule(dynamic)"
  | Some (Ast.Sched_dynamic (Some c)) -> fprintf ppf " schedule(dynamic,%d)" c
  | Some (Ast.Sched_guided None) -> fprintf ppf " schedule(guided)"
  | Some (Ast.Sched_guided (Some c)) -> fprintf ppf " schedule(guided,%d)" c
  | None -> ());
  match p.Ast.num_threads with
  | Some n -> fprintf ppf " num_threads(%d)" n
  | None -> ()

let rec pp_stmt ppf = function
  | Ast.Sexpr e -> fprintf ppf "%a;" pp_expr e
  | Ast.Sassign (_, l, op, r) ->
      fprintf ppf "%a %s %a;" pp_expr l (Ast.assign_op_name op) pp_expr r
  | Ast.Sdecl (t, name, init) -> (
      match init with
      | None -> fprintf ppf "%a;" pp_declarator (t, name)
      | Some e -> fprintf ppf "%a = %a;" pp_declarator (t, name) pp_expr e)
  | Ast.Sblock stmts ->
      fprintf ppf "{@;<0 2>@[<v>%a@]@,}"
        (pp_print_list ~pp_sep:pp_print_cut pp_stmt)
        stmts
  | Ast.Sif (c, t, e) -> (
      fprintf ppf "if (%a) %a" pp_expr c pp_stmt t;
      match e with
      | Some s -> fprintf ppf " else %a" pp_stmt s
      | None -> ())
  | Ast.Sfor loop ->
      (match loop.Ast.pragma with
      | Some p -> fprintf ppf "%a@," pp_pragma p
      | None -> ());
      fprintf ppf "for (%s = %a; %a; %s += %a) %a" loop.Ast.init_var pp_expr
        loop.Ast.init_expr pp_expr loop.Ast.cond loop.Ast.step.Ast.step_var
        pp_expr loop.Ast.step.Ast.step_by pp_stmt loop.Ast.body
  | Ast.Swhile (c, body) ->
      fprintf ppf "while (%a) %a" pp_expr c pp_stmt body
  | Ast.Sbreak -> pp_print_string ppf "break;"
  | Ast.Scontinue -> pp_print_string ppf "continue;"
  | Ast.Sreturn None -> pp_print_string ppf "return;"
  | Ast.Sreturn (Some e) -> fprintf ppf "return %a;" pp_expr e

let pp_global ppf = function
  | Ast.Gstruct_def (name, fields) ->
      fprintf ppf "@[<v>struct %s {@;<0 2>@[<v>%a@]@,};@]" name
        (pp_print_list ~pp_sep:pp_print_cut (fun ppf (t, f) ->
             fprintf ppf "%a;" pp_declarator (t, f)))
        fields
  | Ast.Gvar (t, name) -> fprintf ppf "%a;" pp_declarator (t, name)
  | Ast.Gfunc f ->
      fprintf ppf "@[<v>%a %s(%a) {@;<0 2>@[<v>%a@]@,}@]" pp_base
        (base_type f.Ast.ret) f.Ast.fname
        (pp_print_list
           ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
           pp_declarator)
        (List.map (fun (t, n) -> (t, n)) f.Ast.params)
        (pp_print_list ~pp_sep:pp_print_cut pp_stmt)
        f.Ast.body

let pp_program ppf (p : Ast.program) =
  fprintf ppf "@[<v>%a@]"
    (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf "@,@,") pp_global)
    p.Ast.globals

let expr_to_string e = Format.asprintf "%a" pp_expr e
let program_to_string p = Format.asprintf "%a@." pp_program p

exception Error of string * int

type state = {
  toks : Token.located array;
  mutable pos : int;
  macros : Preproc.macros;
}

let cur st = st.toks.(st.pos).Token.tok
let cur_line st = st.toks.(st.pos).Token.line
let cur_span st = Token.span_of st.toks.(st.pos)
let prev_span st = Token.span_of st.toks.(max 0 (st.pos - 1))
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1
let fail st msg = raise (Error (msg, cur_line st))

let expect st tok =
  if cur st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (cur st)))

let expect_ident st =
  match cur st with
  | Token.IDENT s -> advance st; s
  | t -> fail st ("expected identifier, found " ^ Token.to_string t)

let accept st tok = if cur st = tok then (advance st; true) else false

(* ------------------------------------------------------------------ *)
(* Expressions: precedence cascade                                     *)
(*   or < and < equality < relational < additive < multiplicative      *)
(*   < unary < postfix < atom                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_or st

and parse_or st =
  let rec go lhs =
    if accept st Token.BARBAR then go (Ast.Binop (Ast.Or, lhs, parse_and st))
    else lhs
  in
  go (parse_and st)

and parse_and st =
  let rec go lhs =
    if accept st Token.AMPAMP then go (Ast.Binop (Ast.And, lhs, parse_equality st))
    else lhs
  in
  go (parse_equality st)

and parse_equality st =
  let rec go lhs =
    if accept st Token.EQEQ then go (Ast.Binop (Ast.Eq, lhs, parse_relational st))
    else if accept st Token.NE then go (Ast.Binop (Ast.Ne, lhs, parse_relational st))
    else lhs
  in
  go (parse_relational st)

and parse_relational st =
  let rec go lhs =
    if accept st Token.LT then go (Ast.Binop (Ast.Lt, lhs, parse_additive st))
    else if accept st Token.LE then go (Ast.Binop (Ast.Le, lhs, parse_additive st))
    else if accept st Token.GT then go (Ast.Binop (Ast.Gt, lhs, parse_additive st))
    else if accept st Token.GE then go (Ast.Binop (Ast.Ge, lhs, parse_additive st))
    else lhs
  in
  go (parse_additive st)

and parse_additive st =
  let rec go lhs =
    if accept st Token.PLUS then go (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    else if accept st Token.MINUS then go (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    else lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    if accept st Token.STAR then go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    else if accept st Token.SLASH then go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    else if accept st Token.PERCENT then go (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    else lhs
  in
  go (parse_unary st)

and parse_unary st =
  if accept st Token.MINUS then Ast.Unop (Ast.Neg, parse_unary st)
  else if accept st Token.BANG then Ast.Unop (Ast.Not, parse_unary st)
  else if accept st Token.PLUS then parse_unary st
  else parse_postfix st

and parse_postfix st =
  let rec go e =
    if accept st Token.LBRACKET then begin
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      go (Ast.Index (e, idx))
    end
    else if accept st Token.DOT then begin
      let f = expect_ident st in
      go (Ast.Field (e, f))
    end
    else e
  in
  go (parse_atom st)

and parse_atom st =
  match cur st with
  | Token.INT_LIT n -> advance st; Ast.Int_lit n
  | Token.FLOAT_LIT f -> advance st; Ast.Float_lit f
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.IDENT name -> (
      advance st;
      if cur st = Token.LPAREN then begin
        advance st;
        let args =
          if cur st = Token.RPAREN then []
          else begin
            let rec go acc =
              let a = parse_expr st in
              if accept st Token.COMMA then go (a :: acc)
              else List.rev (a :: acc)
            in
            go []
          end
        in
        expect st Token.RPAREN;
        Ast.Call (name, args)
      end
      else
        match Preproc.lookup st.macros name with
        | Some v -> Ast.Int_lit v
        | None -> Ast.Ident name)
  | t -> fail st ("unexpected token in expression: " ^ Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Pragmas                                                             *)
(* ------------------------------------------------------------------ *)

let binop_of_reduction_tok st = function
  | Token.PLUS -> Ast.Add
  | Token.MINUS -> Ast.Sub
  | Token.STAR -> Ast.Mul
  | t -> fail st ("unsupported reduction operator " ^ Token.to_string t)

let parse_pragma_tokens st =
  (match cur st with
  | Token.IDENT "omp" -> advance st
  | _ -> fail st "only '#pragma omp ...' pragmas are supported");
  (match cur st with
  | Token.IDENT "parallel" -> advance st
  | _ -> fail st "expected 'parallel' in omp pragma");
  expect st Token.KW_FOR;
  let pragma = ref Ast.empty_pragma in
  let parse_ident_list () =
    expect st Token.LPAREN;
    let rec go acc =
      let v = expect_ident st in
      if accept st Token.COMMA then go (v :: acc) else List.rev (v :: acc)
    in
    let vars = go [] in
    expect st Token.RPAREN;
    vars
  in
  let parse_const_int () =
    (* chunk sizes and thread counts in pragmas must be compile-time
       constants; parse a full expression and fold it *)
    let e = parse_expr st in
    let rec fold = function
      | Ast.Int_lit n -> n
      | Ast.Unop (Ast.Neg, e) -> -fold e
      | Ast.Binop (op, a, b) -> (
          let a = fold a and b = fold b in
          match op with
          | Ast.Add -> a + b
          | Ast.Sub -> a - b
          | Ast.Mul -> a * b
          | Ast.Div ->
              if b = 0 then fail st "division by zero in pragma constant"
              else a / b
          | Ast.Mod ->
              if b = 0 then fail st "modulo by zero in pragma constant"
              else a mod b
          | _ -> fail st "non-arithmetic operator in pragma constant")
      | _ -> fail st "pragma argument must be a constant expression"
    in
    fold e
  in
  let rec clauses () =
    match cur st with
    | Token.EOF -> ()
    | Token.IDENT "private" | Token.IDENT "firstprivate" ->
        advance st;
        let vars = parse_ident_list () in
        pragma := { !pragma with Ast.private_vars = !pragma.Ast.private_vars @ vars };
        clauses ()
    | Token.IDENT "shared" ->
        advance st;
        let vars = parse_ident_list () in
        pragma := { !pragma with Ast.shared_vars = !pragma.Ast.shared_vars @ vars };
        clauses ()
    | Token.IDENT "reduction" ->
        advance st;
        expect st Token.LPAREN;
        let op = binop_of_reduction_tok st (cur st) in
        advance st;
        expect st Token.COLON;
        let rec go acc =
          let v = expect_ident st in
          if accept st Token.COMMA then go (v :: acc) else List.rev (v :: acc)
        in
        let vars = go [] in
        expect st Token.RPAREN;
        pragma :=
          { !pragma with Ast.reduction = !pragma.Ast.reduction @ [ (op, vars) ] };
        clauses ()
    | Token.IDENT "schedule" ->
        advance st;
        expect st Token.LPAREN;
        let kind =
          match cur st with
          | Token.IDENT "static" -> advance st; `Static
          | Token.IDENT "dynamic" -> advance st; `Dynamic
          | Token.IDENT "guided" -> advance st; `Guided
          | t ->
              fail st
                ("schedule kind must be static, dynamic or guided, found "
                ^ Token.to_string t)
        in
        let chunk =
          if accept st Token.COMMA then Some (parse_const_int ()) else None
        in
        expect st Token.RPAREN;
        let schedule =
          match kind with
          | `Static -> Ast.Sched_static chunk
          | `Dynamic -> Ast.Sched_dynamic chunk
          | `Guided -> Ast.Sched_guided chunk
        in
        pragma := { !pragma with Ast.schedule = Some schedule };
        clauses ()
    | Token.IDENT "num_threads" ->
        advance st;
        expect st Token.LPAREN;
        let n = parse_const_int () in
        expect st Token.RPAREN;
        pragma := { !pragma with Ast.num_threads = Some n };
        clauses ()
    | Token.IDENT "nowait" -> advance st; clauses ()
    | t -> fail st ("unknown omp clause starting with " ^ Token.to_string t)
  in
  clauses ();
  !pragma

let parse_pragma macros text line =
  let toks =
    try Lexer.tokenize text
    with Lexer.Error (m, _) -> raise (Error (m, line))
  in
  let st = { toks = Array.of_list toks; pos = 0; macros } in
  parse_pragma_tokens st

(* ------------------------------------------------------------------ *)
(* Types and declarations                                              *)
(* ------------------------------------------------------------------ *)

let parse_base_type st =
  match cur st with
  | Token.KW_VOID -> advance st; Ast.Tvoid
  | Token.KW_CHAR -> advance st; Ast.Tchar
  | Token.KW_INT -> advance st; Ast.Tint
  | Token.KW_LONG -> advance st; Ast.Tlong
  | Token.KW_FLOAT -> advance st; Ast.Tfloat
  | Token.KW_DOUBLE -> advance st; Ast.Tdouble
  | Token.KW_STRUCT ->
      advance st;
      let name = expect_ident st in
      Ast.Tstruct name
  | t -> fail st ("expected a type, found " ^ Token.to_string t)

let looks_like_type st =
  match cur st with
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_INT | Token.KW_LONG
  | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_STRUCT ->
      true
  | _ -> false

let const_int_of_expr st e =
  let rec fold = function
    | Ast.Int_lit n -> n
    | Ast.Unop (Ast.Neg, e) -> -fold e
    | Ast.Binop (Ast.Add, a, b) -> fold a + fold b
    | Ast.Binop (Ast.Sub, a, b) -> fold a - fold b
    | Ast.Binop (Ast.Mul, a, b) -> fold a * fold b
    | Ast.Binop (Ast.Div, a, b) ->
        let d = fold b in
        if d = 0 then fail st "division by zero in array dimension"
        else fold a / d
    | _ -> fail st "array dimension must be a constant expression"
  in
  fold e

(* array dims attach outermost-first: int a[2][3] is array 2 of array 3 *)
let parse_array_dims st base =
  let rec dims acc =
    if accept st Token.LBRACKET then begin
      let e = parse_expr st in
      expect st Token.RBRACKET;
      dims (const_int_of_expr st e :: acc)
    end
    else List.rev acc
  in
  let ds = dims [] in
  List.fold_right (fun d t -> Ast.Tarray (t, d)) ds base

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_step st =
  let var = expect_ident st in
  match cur st with
  | Token.PLUSPLUS ->
      advance st;
      { Ast.step_var = var; step_by = Ast.Int_lit 1 }
  | Token.MINUSMINUS ->
      advance st;
      { Ast.step_var = var; step_by = Ast.Int_lit (-1) }
  | Token.PLUSEQ ->
      advance st;
      { Ast.step_var = var; step_by = parse_expr st }
  | Token.MINUSEQ ->
      advance st;
      let e = parse_expr st in
      { Ast.step_var = var; step_by = Ast.Unop (Ast.Neg, e) }
  | Token.ASSIGN -> (
      advance st;
      let e = parse_expr st in
      match e with
      | Ast.Binop (Ast.Add, Ast.Ident v, rhs) when v = var ->
          { Ast.step_var = var; step_by = rhs }
      | Ast.Binop (Ast.Add, lhs, Ast.Ident v) when v = var ->
          { Ast.step_var = var; step_by = lhs }
      | Ast.Binop (Ast.Sub, Ast.Ident v, rhs) when v = var ->
          { Ast.step_var = var; step_by = Ast.Unop (Ast.Neg, rhs) }
      | _ -> fail st "unsupported loop step form")
  | t -> fail st ("unsupported loop step starting with " ^ Token.to_string t)

let rec parse_stmt st =
  match cur st with
  | Token.PRAGMA text ->
      let line = cur_line st in
      let pragma_span = cur_span st in
      advance st;
      let pragma = parse_pragma st.macros text line in
      (match cur st with
      | Token.KW_FOR -> ()
      | _ -> fail st "an omp pragma must be followed by a for loop");
      let loop = parse_for st in
      Ast.Sfor { loop with Ast.pragma = Some pragma; span = pragma_span }
  | Token.KW_FOR -> Ast.Sfor (parse_for st)
  | Token.LBRACE ->
      advance st;
      let rec go acc =
        if accept st Token.RBRACE then List.rev acc
        else go (parse_stmt st :: acc)
      in
      Ast.Sblock (go [])
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_ = parse_stmt st in
      let else_ = if accept st Token.KW_ELSE then Some (parse_stmt st) else None in
      Ast.Sif (cond, then_, else_)
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      Ast.Swhile (cond, body)
  | Token.KW_BREAK ->
      advance st;
      expect st Token.SEMI;
      Ast.Sbreak
  | Token.KW_CONTINUE ->
      advance st;
      expect st Token.SEMI;
      Ast.Scontinue
  | Token.KW_RETURN ->
      advance st;
      if accept st Token.SEMI then Ast.Sreturn None
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        Ast.Sreturn (Some e)
      end
  | _ when looks_like_type st ->
      let base = parse_base_type st in
      let name = expect_ident st in
      let ty = parse_array_dims st base in
      let init = if accept st Token.ASSIGN then Some (parse_expr st) else None in
      expect st Token.SEMI;
      Ast.Sdecl (ty, name, init)
  | _ ->
      let sp = cur_span st in
      let lhs = parse_expr st in
      let assign op =
        advance st;
        let rhs = parse_expr st in
        Ast.Sassign (Span.join sp (prev_span st), lhs, op, rhs)
      in
      let stmt =
        match cur st with
        | Token.ASSIGN -> assign Ast.A_set
        | Token.PLUSEQ -> assign Ast.A_add
        | Token.MINUSEQ -> assign Ast.A_sub
        | Token.STAREQ -> assign Ast.A_mul
        | Token.SLASHEQ -> assign Ast.A_div
        | Token.PLUSPLUS ->
            advance st;
            Ast.Sassign (Span.join sp (prev_span st), lhs, Ast.A_add,
                         Ast.Int_lit 1)
        | Token.MINUSMINUS ->
            advance st;
            Ast.Sassign (Span.join sp (prev_span st), lhs, Ast.A_sub,
                         Ast.Int_lit 1)
        | _ -> Ast.Sexpr lhs
      in
      expect st Token.SEMI;
      stmt

and parse_for st =
  let span = cur_span st in
  expect st Token.KW_FOR;
  expect st Token.LPAREN;
  (* init: 'i = e' or 'int i = e' *)
  let init_var, init_expr =
    if looks_like_type st then begin
      let _ty = parse_base_type st in
      let v = expect_ident st in
      expect st Token.ASSIGN;
      (v, parse_expr st)
    end
    else begin
      let v = expect_ident st in
      expect st Token.ASSIGN;
      (v, parse_expr st)
    end
  in
  expect st Token.SEMI;
  let cond = parse_expr st in
  expect st Token.SEMI;
  let step = parse_step st in
  expect st Token.RPAREN;
  let body = parse_stmt st in
  { Ast.pragma = None; span; init_var; init_expr; cond; step; body }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_struct_def st =
  expect st Token.KW_STRUCT;
  let name = expect_ident st in
  expect st Token.LBRACE;
  let rec fields acc =
    if accept st Token.RBRACE then List.rev acc
    else begin
      let base = parse_base_type st in
      let fname = expect_ident st in
      let ty = parse_array_dims st base in
      expect st Token.SEMI;
      fields ((ty, fname) :: acc)
    end
  in
  let fs = fields [] in
  expect st Token.SEMI;
  Ast.Gstruct_def (name, fs)

let parse_params st =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else if cur st = Token.KW_VOID
          && st.toks.(st.pos + 1).Token.tok = Token.RPAREN then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec go acc =
      let base = parse_base_type st in
      let name = expect_ident st in
      let ty = parse_array_dims st base in
      if accept st Token.COMMA then go ((ty, name) :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev ((ty, name) :: acc)
      end
    in
    go []
  end

let parse_global st =
  if cur st = Token.KW_STRUCT
     && st.toks.(st.pos + 2).Token.tok = Token.LBRACE then
    parse_struct_def st
  else begin
    let base = parse_base_type st in
    let name = expect_ident st in
    if cur st = Token.LPAREN then begin
      let params = parse_params st in
      expect st Token.LBRACE;
      let rec go acc =
        if accept st Token.RBRACE then List.rev acc
        else go (parse_stmt st :: acc)
      in
      Ast.Gfunc { Ast.ret = base; fname = name; params; body = go [] }
    end
    else begin
      let ty = parse_array_dims st base in
      (* global initializers are not supported: globals are zero-initialized
         like C statics *)
      expect st Token.SEMI;
      Ast.Gvar (ty, name)
    end
  end

let parse_program src =
  let macros, cleaned = Preproc.run src in
  let toks =
    try Lexer.tokenize cleaned
    with Lexer.Error (m, l) -> raise (Error (m, l))
  in
  let st = { toks = Array.of_list toks; pos = 0; macros } in
  let rec go acc =
    if cur st = Token.EOF then List.rev acc else go (parse_global st :: acc)
  in
  { Ast.macros; globals = go [] }

let parse_expr_string macros src =
  let toks = Lexer.tokenize src in
  let st = { toks = Array.of_list toks; pos = 0; macros } in
  let e = parse_expr st in
  (match cur st with
  | Token.EOF -> ()
  | t -> fail st ("trailing token after expression: " ^ Token.to_string t));
  e

(* Random mini-C loop nests, biased toward the places false-sharing
   analyses get subtle: offsets straddling cache-line boundaries, trip
   counts adjacent to chunk*threads multiples, struct fields packing
   several writers onto one line, coupled and deliberately nonaffine
   subscripts, and parametric bounds left for the symbolic layer. *)

open Spec

let line_bytes = 64

(* constant element offsets, biased around the line boundary of the
   element type (8 doubles or 16 floats/ints per 64-byte line) *)
let pick_offset rng elem =
  let le = line_bytes / elem_size elem in
  Rng.weighted rng
    [
      (10, 0); (4, 1); (2, 2); (2, 3);
      (3, le - 1); (3, le); (2, le + 1);
      (2, (2 * le) - 1); (2, 2 * le); (1, (4 * le) + 1);
      (1, Rng.range rng 0 (4 * le));
    ]

let pick_ci rng = Rng.weighted rng [ (2, 0); (10, 1); (4, 2); (2, 3); (1, 8) ]

let pick_cj rng = Rng.weighted rng [ (6, 0); (6, 1); (2, 2); (1, -1) ]

let pick_ct rng = Rng.weighted rng [ (10, 0); (3, 1); (1, 8) ]

let pick_sub rng ~elem ~parametric =
  let square = (not parametric) && Rng.int rng 100 < 5 in
  {
    ci = (if parametric then Rng.weighted rng [ (8, 1); (3, 2); (1, 3) ]
          else pick_ci rng);
    cj = pick_cj rng;
    ct = pick_ct rng;
    k = pick_offset rng elem;
    square;
  }

let pick_elem rng =
  Rng.weighted rng [ (6, Edouble); (2, Efloat); (2, Eint) ]

let pick_array rng idx =
  let elem = pick_elem rng in
  let fields = if Rng.int rng 100 < 25 then Rng.range rng 2 4 else 0 in
  {
    arr_name = Printf.sprintf "a%d" idx;
    arr_elem = elem;
    arr_fields = fields;
    arr_slack =
      Rng.weighted rng [ (6, 0); (2, 1); (2, line_bytes / elem_size elem) ];
  }

let pick_rref rng arrays ~parametric =
  let r_arr = Rng.int rng (List.length arrays) in
  let arr = List.nth arrays r_arr in
  let r_field =
    if arr.arr_fields = 0 then None else Some (Rng.int rng arr.arr_fields)
  in
  { r_arr; r_sub = pick_sub rng ~elem:arr.arr_elem ~parametric; r_field }

let pick_term rng arrays ~parametric =
  Rng.weighted rng
    [
      (10, `Ref); (2, `Float); (1, `Int); (1, `Math);
    ]
  |> function
  | `Ref -> Tref (pick_rref rng arrays ~parametric)
  | `Float -> Tfloat (Rng.choose rng [| 0.5; 1.0; 2.5; 0.25; 3.0; 0.125 |])
  | `Int -> Tint (Rng.range rng 0 7)
  | `Math ->
      Tmath
        ( Rng.choose rng [| "sin"; "cos"; "sqrt" |],
          pick_rref rng arrays ~parametric )

let pick_stmt rng arrays ~parametric =
  {
    a_lhs = pick_rref rng arrays ~parametric;
    a_op = Rng.weighted rng [ (8, Minic.Ast.A_set); (3, Minic.Ast.A_add);
                              (1, Minic.Ast.A_mul) ];
    a_rhs =
      List.init (Rng.weighted rng [ (5, 1); (4, 2); (1, 3) ]) (fun _ ->
          pick_term rng arrays ~parametric);
    a_mul = Rng.int rng 100 < 10;
  }

let spec ~seed ~index =
  let rng = Rng.stream ~seed ~index in
  let threads = Rng.choose rng [| 1; 2; 2; 3; 4; 4; 5; 7; 8; 8; 9 |] in
  let chunk =
    Rng.weighted rng
      [ (3, None); (4, Some 1); (3, Some 2); (2, Some 3); (2, Some 4);
        (1, Some (Rng.range rng 5 9)) ]
  in
  let cval = match chunk with Some c -> c | None -> 1 in
  let kind = Rng.weighted rng [ (7, `Const); (2, `Param); (1, `Threads) ] in
  let parametric = kind = `Param in
  (* trip counts hugging schedule and line boundaries *)
  let round = cval * threads in
  let pick_trip hi_cap =
    min hi_cap
      (max 0
         (Rng.weighted rng
            [
              (3, Rng.range rng 0 6);
              (2, round); (2, round + 1); (2, (2 * round) - 1);
              (2, 8 * threads); (1, (8 * threads) + 1);
              (2, Rng.range rng 7 40); (1, Rng.range rng 41 96);
            ]))
  in
  let par_bound =
    match kind with
    | `Const -> Bconst (pick_trip 96)
    | `Threads -> Bthreads
    | `Param ->
        (* cap chosen so even stride-3 subscripts stay in modest arrays *)
        Bparam (max 8 (Rng.weighted rng
                         [ (3, Rng.range rng 32 96);
                           (2, (Rng.range rng 2 6 * round) + Rng.int rng 2);
                           (1, Rng.range rng 97 192) ]))
  in
  let inner = Rng.weighted rng [ (5, 0); (2, 1); (2, Rng.range rng 2 6) ] in
  let arrays =
    List.init (Rng.weighted rng [ (5, 1); (4, 2); (1, 3) ]) (pick_array rng)
  in
  let stmts =
    List.init (Rng.weighted rng [ (6, 1); (3, 2); (1, 3) ]) (fun _ ->
        pick_stmt rng arrays ~parametric)
  in
  normalize
    {
      sp_seed = seed;
      sp_index = index;
      threads;
      chunk;
      outer = Rng.weighted rng [ (6, 0); (2, 1); (1, 2); (1, 3) ];
      par_lo = Rng.weighted rng [ (8, 0); (1, 1); (1, 2) ];
      par_bound;
      par_step = Rng.weighted rng [ (8, 1); (1, 2); (1, 3) ];
      le = (not parametric) && kind = `Const && Rng.int rng 100 < 10;
      inner;
      inner_tri = inner > 0 && Rng.int rng 100 < 15;
      priv = Rng.int rng 100 < 30;
      reduction = Rng.int rng 100 < 10;
      arrays;
      stmts;
    }

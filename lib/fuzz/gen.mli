(** Seeded random case generation.

    [spec ~seed ~index] is a pure function of its arguments (each case
    owns an {!Rng} stream derived from both), so a run is reproducible
    case-by-case and parallel sweeps generate the same corpus as
    sequential ones.  Constants are biased toward cache-line and
    chunk-boundary edge cases; about a fifth of the cases leave the
    parallel trip count as a free parameter for the symbolic layer. *)

val line_bytes : int

val spec : seed:int -> index:int -> Spec.t

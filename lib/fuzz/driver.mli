(** The fuzzing loop: replay the seed corpus, then generate and check
    [count] cases in parallel batches over {!Fsmodel.Par_sweep} domains.
    Per-case RNG streams are derived from (seed, index), so the corpus
    is identical whatever the domain count, and any failing case is
    shrunk to a minimal counterexample and written to [out_dir]. *)

type config = {
  seed : int;
  count : int;
  time_budget : float option;  (** seconds; [None] = run all [count] *)
  jobs : int option;  (** domains; [None] = recommended *)
  mutate : Oracle.mutation option;  (** harness self-test fault injection *)
  out_dir : string option;  (** where shrunk counterexamples are written *)
  corpus : string option;  (** directory of [.c] seeds to replay first *)
  promote_dir : string option;
      (** corpus mining: write any generated case whose materialized fix
          underdelivers (see {!Oracle.outcome}[.promote]) here, under a
          content-addressed [fix-<digest>.c] name so re-discoveries
          dedup across runs *)
  max_failures : int;  (** stop after this many distinct failures *)
  brute_budget : int;
}

val default : config
(** seed 0, count 1000, no budget, recommended domains, no mutation,
    no output directory, no corpus, stop at the first failure,
    brute-force budget 300000. *)

type failure = {
  f_origin : string;  (** ["case 123"] or ["corpus foo.c"] *)
  f_check : string;
  f_detail : string;
  f_source : string;  (** minimal counterexample, header included *)
  f_path : string option;  (** where it was written, when [out_dir] set *)
  f_shrink_evals : int;
}

type summary = {
  cases_run : int;
  corpus_run : int;
  promoted : (string * string) list;
      (** [(path, reason)] per newly promoted corpus file *)
  failures : failure list;
  exercised : (string * int) list;  (** check -> cases it ran on, sorted *)
  elapsed : float;
}

val run : ?progress:(string -> unit) -> config -> summary
val summary_to_string : summary -> string

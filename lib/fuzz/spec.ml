(* The structured description of one fuzz case.  The generator draws a
   [t], the oracle matrix turns it into mini-C text through the real
   pretty-printer, and the shrinker edits the structure (never the text),
   so every reduction step stays well-formed by construction. *)

open Minic

type elem = Edouble | Efloat | Eint

type array_decl = {
  arr_name : string;
  arr_elem : elem;
  arr_fields : int;  (* 0 = scalar elements; else struct with f0..f<n-1> *)
  arr_slack : int;  (* extra elements beyond the minimal in-bounds extent *)
}

type sub = {
  ci : int;  (* coefficient of the parallel variable (ignored if square) *)
  cj : int;  (* coefficient of the inner variable *)
  ct : int;  (* coefficient of the sequential outer variable *)
  k : int;  (* constant offset, in elements *)
  square : bool;  (* nonaffine: the i-term is [i * i] *)
}

type rref = { r_arr : int; r_sub : sub; r_field : int option }

type term = Tref of rref | Tint of int | Tfloat of float | Tmath of string * rref

type assign = {
  a_lhs : rref;
  a_op : Ast.assign_op;
  a_rhs : term list;  (* combined left to right *)
  a_mul : bool;  (* combine with [*] instead of [+] *)
}

type bound =
  | Bconst of int  (* i < c (exclusive) *)
  | Bparam of int  (* i < n with n free; the int is the sampling cap *)
  | Bthreads  (* i < num_threads *)

type t = {
  sp_seed : int;
  sp_index : int;
  threads : int;
  chunk : int option;
  outer : int;  (* sequential outer trip count; 0 = absent *)
  par_lo : int;
  par_bound : bound;
  par_step : int;
  le : bool;  (* render the condition as [i <= c-1] instead of [i < c] *)
  inner : int;  (* inner trip count; 0 = absent *)
  inner_tri : bool;  (* triangular inner bound [j < i + inner] *)
  priv : bool;  (* emit private(i) on the pragma *)
  reduction : bool;  (* reduction(+:acc) plus an [acc +=] statement *)
  arrays : array_decl list;
  stmts : assign list;
}

let elem_size = function Edouble -> 8 | Efloat | Eint -> 4

let elem_ctype = function
  | Edouble -> Ast.Tdouble
  | Efloat -> Ast.Tfloat
  | Eint -> Ast.Tint

(* ------------------------------------------------------------------ *)
(* Iteration-space bounds of a subscript                               *)
(* ------------------------------------------------------------------ *)

let max_threads = 9
(* the generator never draws a larger team; [Bthreads] extents rely on it *)

let par_hi_excl t =
  match t.par_bound with Bconst c -> c | Bparam v -> v | Bthreads -> max_threads

(* last value the parallel variable takes (par_lo when the loop is empty) *)
let par_i_max t =
  let hi = par_hi_excl t in
  if hi <= t.par_lo then t.par_lo
  else t.par_lo + ((hi - 1 - t.par_lo) / t.par_step * t.par_step)

let inner_j_max_excl t =
  if t.inner = 0 then 0
  else if t.inner_tri then par_i_max t + t.inner
  else t.inner

(* inclusive (min, max) of a subscript over the whole iteration space *)
let sub_bounds t (s : sub) =
  let span c lo hi = if c >= 0 then (c * lo, c * hi) else (c * hi, c * lo) in
  let i_lo, i_hi =
    if s.square then
      let m = par_i_max t in
      (t.par_lo * t.par_lo, m * m)
    else span s.ci t.par_lo (par_i_max t)
  in
  let j_lo, j_hi =
    if t.inner = 0 then (0, 0) else span s.cj 0 (max 0 (inner_j_max_excl t - 1))
  in
  let t_lo, t_hi =
    if t.outer = 0 then (0, 0) else span s.ct 0 (t.outer - 1)
  in
  (i_lo + j_lo + t_lo + s.k, i_hi + j_hi + t_hi + s.k)

let refs_of_stmt (a : assign) =
  a.a_lhs
  :: List.filter_map
       (function Tref r | Tmath (_, r) -> Some r | Tint _ | Tfloat _ -> None)
       a.a_rhs

let all_refs t = List.concat_map refs_of_stmt t.stmts

(* Shift constant offsets so every subscript is provably >= 0, then size
   each array to its minimal in-bounds extent plus the declared slack.
   Every generated and every shrunk spec goes through this. *)
let normalize t =
  (* [i <= c-1] only makes sense for a positive constant bound *)
  let t =
    match t.par_bound with
    | Bconst c when c >= 1 -> t
    | _ -> { t with le = false }
  in
  let shift (r : rref) =
    let lo, _ = sub_bounds t r.r_sub in
    if lo < 0 then { r with r_sub = { r.r_sub with k = r.r_sub.k - lo } }
    else r
  in
  let shift_term = function
    | Tref r -> Tref (shift r)
    | Tmath (f, r) -> Tmath (f, shift r)
    | (Tint _ | Tfloat _) as x -> x
  in
  {
    t with
    stmts =
      List.map
        (fun a ->
          { a with a_lhs = shift a.a_lhs; a_rhs = List.map shift_term a.a_rhs })
        t.stmts;
  }

let array_len t idx =
  let needed =
    List.fold_left
      (fun acc (r : rref) ->
        if r.r_arr = idx then max acc (snd (sub_bounds t r.r_sub) + 1) else acc)
      1 (all_refs t)
  in
  needed + (List.nth t.arrays idx).arr_slack

(* largest value of the free parameter keeping every subscript inside its
   declared array (= the sampling cap, by construction of [array_len]) *)
let param_cap t = match t.par_bound with Bparam v -> v | _ -> par_hi_excl t

let is_parametric t = match t.par_bound with Bparam _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* AST construction                                                    *)
(* ------------------------------------------------------------------ *)

let cvar = "i"
let jvar = "j"
let tvar = "t"

(* magnitude only: [sub_expr] renders the sign via Add/Sub/Neg *)
let term_expr c v =
  if abs c = 1 then Ast.Ident v
  else Ast.Binop (Ast.Mul, Ast.Int_lit (abs c), Ast.Ident v)

(* c1*i (+|-) c2*j (+|-) c3*t (+|-) k, omitting zero terms *)
let sub_expr t (s : sub) =
  let terms = ref [] in
  let push c e = if c <> 0 then terms := (c, e) :: !terms in
  if s.square then
    push 1 (Ast.Binop (Ast.Mul, Ast.Ident cvar, Ast.Ident cvar))
  else push s.ci (term_expr s.ci cvar);
  if t.inner > 0 then push s.cj (term_expr s.cj jvar);
  if t.outer > 0 then push s.ct (term_expr s.ct tvar);
  if s.k <> 0 then push s.k (Ast.Int_lit (abs s.k));
  match List.rev !terms with
  | [] -> Ast.Int_lit 0
  | (c0, e0) :: rest ->
      let first = if c0 < 0 then Ast.Unop (Ast.Neg, e0) else e0 in
      List.fold_left
        (fun acc (c, e) ->
          if c < 0 then Ast.Binop (Ast.Sub, acc, e)
          else Ast.Binop (Ast.Add, acc, e))
        first rest

let rref_expr t (r : rref) =
  let arr = List.nth t.arrays r.r_arr in
  let idx = Ast.Index (Ast.Ident arr.arr_name, sub_expr t r.r_sub) in
  match r.r_field with
  | Some f -> Ast.Field (idx, Printf.sprintf "f%d" f)
  | None -> idx

let term_expr_of t = function
  | Tref r -> rref_expr t r
  | Tint n -> Ast.Int_lit n
  | Tfloat f -> Ast.Float_lit f
  | Tmath (f, r) -> Ast.Call (f, [ rref_expr t r ])

let assign_stmt t (a : assign) =
  let rhs =
    match List.map (term_expr_of t) a.a_rhs with
    | [] -> Ast.Float_lit 1.0
    | e0 :: rest ->
        let op = if a.a_mul then Ast.Mul else Ast.Add in
        List.fold_left (fun acc e -> Ast.Binop (op, acc, e)) e0 rest
  in
  Ast.Sassign (Span.none, rref_expr t a.a_lhs, a.a_op, rhs)

let bound_expr t =
  match t.par_bound with
  | Bconst c -> if t.le then Ast.Int_lit (c - 1) else Ast.Int_lit c
  | Bparam _ -> Ast.Ident "n"
  | Bthreads -> Ast.Ident "num_threads"

let to_ast t =
  let t = normalize t in
  let body_stmts =
    List.map (assign_stmt t) t.stmts
    @
    if t.reduction then
      [
        Ast.Sassign
          (Span.none, Ast.Ident "acc", Ast.A_add, Ast.Float_lit 0.5);
      ]
    else []
  in
  let innermost =
    if t.inner = 0 then Ast.Sblock body_stmts
    else
      let upper =
        if t.inner_tri then
          Ast.Binop (Ast.Add, Ast.Ident cvar, Ast.Int_lit t.inner)
        else Ast.Int_lit t.inner
      in
      Ast.Sblock
        [
          Ast.Sfor
            {
              Ast.pragma = None;
              span = Span.none;
              init_var = jvar;
              init_expr = Ast.Int_lit 0;
              cond = Ast.Binop (Ast.Lt, Ast.Ident jvar, upper);
              step = { Ast.step_var = jvar; step_by = Ast.Int_lit 1 };
              body = Ast.Sblock body_stmts;
            };
        ]
  in
  let pragma =
    {
      Ast.private_vars = (if t.priv then [ cvar ] else []);
      shared_vars = [];
      reduction = (if t.reduction then [ (Ast.Add, [ "acc" ]) ] else []);
      schedule = Some (Ast.Sched_static t.chunk);
      num_threads = None;
    }
  in
  let par_loop =
    Ast.Sfor
      {
        Ast.pragma = Some pragma;
        span = Span.none;
        init_var = cvar;
        init_expr = Ast.Int_lit t.par_lo;
        cond =
          Ast.Binop ((if t.le then Ast.Le else Ast.Lt), Ast.Ident cvar,
                     bound_expr t);
        step = { Ast.step_var = cvar; step_by = Ast.Int_lit t.par_step };
        body = innermost;
      }
  in
  let outermost =
    if t.outer = 0 then par_loop
    else
      Ast.Sfor
        {
          Ast.pragma = None;
          span = Span.none;
          init_var = tvar;
          init_expr = Ast.Int_lit 0;
          cond = Ast.Binop (Ast.Lt, Ast.Ident tvar, Ast.Int_lit t.outer);
          step = { Ast.step_var = tvar; step_by = Ast.Int_lit 1 };
          body = Ast.Sblock [ par_loop ];
        }
  in
  let decls =
    [ Ast.Sdecl (Ast.Tint, cvar, None) ]
    @ (if t.inner > 0 then [ Ast.Sdecl (Ast.Tint, jvar, None) ] else [])
    @ if t.outer > 0 then [ Ast.Sdecl (Ast.Tint, tvar, None) ] else []
  in
  let func =
    Ast.Gfunc
      {
        Ast.ret = Ast.Tvoid;
        fname = "f";
        params = [];
        body = decls @ [ outermost ];
      }
  in
  let struct_defs =
    List.filter_map
      (fun a ->
        if a.arr_fields = 0 then None
        else
          Some
            (Ast.Gstruct_def
               ( "s_" ^ a.arr_name,
                 List.init a.arr_fields (fun i ->
                     (elem_ctype a.arr_elem, Printf.sprintf "f%d" i)) )))
      t.arrays
  in
  let param_decl =
    if is_parametric t then [ Ast.Gvar (Ast.Tint, "n") ] else []
  in
  let acc_decl =
    if t.reduction then [ Ast.Gvar (Ast.Tdouble, "acc") ] else []
  in
  let array_decls =
    List.mapi
      (fun i a ->
        let ety =
          if a.arr_fields = 0 then elem_ctype a.arr_elem
          else Ast.Tstruct ("s_" ^ a.arr_name)
        in
        Ast.Gvar (Ast.Tarray (ety, array_len t i), a.arr_name))
      t.arrays
  in
  {
    Ast.macros = [];
    globals = struct_defs @ param_decl @ acc_decl @ array_decls @ [ func ];
  }

let to_source t = Pretty.program_to_string (to_ast t)

let describe t =
  Printf.sprintf
    "case %d/%d: threads=%d chunk=%s outer=%d par=[%d,%s) step=%d inner=%d%s \
     stmts=%d%s%s"
    t.sp_seed t.sp_index t.threads
    (match t.chunk with Some c -> string_of_int c | None -> "static")
    t.outer t.par_lo
    (match t.par_bound with
    | Bconst c -> string_of_int c
    | Bparam v -> Printf.sprintf "n<=%d" v
    | Bthreads -> "num_threads")
    t.par_step t.inner
    (if t.inner_tri then "(tri)" else "")
    (List.length t.stmts)
    (if t.reduction then " red" else "")
    (if List.exists (fun (r : rref) -> r.r_sub.square) (all_refs t) then
       " nonaffine"
     else "")

let header ~check ~detail t =
  String.concat "\n"
    [
      "/* fsfuzz counterexample (replayed by the corpus regression runner)";
      " * check: " ^ check;
      " * detail: " ^ detail;
      Printf.sprintf " * seed: %d case: %d" t.sp_seed t.sp_index;
      Printf.sprintf " * threads: %d" t.threads;
      Printf.sprintf " * chunk: %s"
        (match t.chunk with Some c -> string_of_int c | None -> "pragma");
      Printf.sprintf " * reproduce: fsdetect fuzz --seed %d --count %d"
        t.sp_seed (t.sp_index + 1);
      " */";
      "";
    ]

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

(* remove arrays no statement references, remapping indices *)
let drop_unused_arrays t =
  let used = List.sort_uniq compare (List.map (fun r -> r.r_arr) (all_refs t)) in
  if List.length used = List.length t.arrays then None
  else
    let remap = List.mapi (fun nu old -> (old, nu)) used in
    let fix (r : rref) = { r with r_arr = List.assoc r.r_arr remap } in
    let fix_term = function
      | Tref r -> Tref (fix r)
      | Tmath (f, r) -> Tmath (f, fix r)
      | x -> x
    in
    Some
      {
        t with
        arrays = List.filteri (fun i _ -> List.mem i used) t.arrays;
        stmts =
          List.map
            (fun a ->
              { a with a_lhs = fix a.a_lhs; a_rhs = List.map fix_term a.a_rhs })
            t.stmts;
      }

(* convert a struct array to plain elements, clearing field selectors *)
let unstruct t idx =
  let arr = List.nth t.arrays idx in
  if arr.arr_fields = 0 then None
  else
    let fix (r : rref) =
      if r.r_arr = idx then { r with r_field = None } else r
    in
    let fix_term = function
      | Tref r -> Tref (fix r)
      | Tmath (f, r) -> Tmath (f, fix r)
      | x -> x
    in
    Some
      {
        t with
        arrays =
          List.mapi
            (fun i a -> if i = idx then { a with arr_fields = 0 } else a)
            t.arrays;
        stmts =
          List.map
            (fun a ->
              { a with a_lhs = fix a.a_lhs; a_rhs = List.map fix_term a.a_rhs })
            t.stmts;
      }

let map_subs f t =
  let fix (r : rref) = { r with r_sub = f r.r_sub } in
  let fix_term = function
    | Tref r -> Tref (fix r)
    | Tmath (g, r) -> Tmath (g, fix r)
    | x -> x
  in
  {
    t with
    stmts =
      List.map
        (fun a ->
          { a with a_lhs = fix a.a_lhs; a_rhs = List.map fix_term a.a_rhs })
        t.stmts;
  }

let shrink_steps t =
  let cands = ref [] in
  let add c = cands := c :: !cands in
  (* structure first: fewer statements / loops beats smaller constants *)
  if List.length t.stmts > 1 then
    List.iteri (fun i _ -> add { t with stmts = drop_nth i t.stmts }) t.stmts;
  List.iteri
    (fun i (a : assign) ->
      if List.length a.a_rhs > 1 then
        List.iteri
          (fun j _ ->
            add
              {
                t with
                stmts =
                  List.mapi
                    (fun i' a' ->
                      if i' = i then { a' with a_rhs = drop_nth j a'.a_rhs }
                      else a')
                    t.stmts;
              })
          a.a_rhs;
      List.iteri
        (fun j term ->
          match term with
          | Tmath (_, r) ->
              add
                {
                  t with
                  stmts =
                    List.mapi
                      (fun i' a' ->
                        if i' = i then
                          {
                            a' with
                            a_rhs =
                              List.mapi
                                (fun j' x -> if j' = j then Tref r else x)
                                a'.a_rhs;
                          }
                        else a')
                      t.stmts;
                }
          | _ -> ())
        a.a_rhs;
      if a.a_op <> Ast.A_set then
        add
          {
            t with
            stmts =
              List.mapi
                (fun i' a' ->
                  if i' = i then { a' with a_op = Ast.A_set } else a')
                t.stmts;
          };
      if a.a_mul then
        add
          {
            t with
            stmts =
              List.mapi
                (fun i' a' -> if i' = i then { a' with a_mul = false } else a')
                t.stmts;
          })
    t.stmts;
  if t.reduction then add { t with reduction = false };
  (match drop_unused_arrays t with Some t' -> add t' | None -> ());
  List.iteri (fun i _ -> match unstruct t i with
    | Some t' -> add t'
    | None -> ()) t.arrays;
  if t.outer > 0 then add { t with outer = 0 };
  if t.outer > 1 then add { t with outer = t.outer / 2 };
  if t.inner > 0 then add { t with inner = 0; inner_tri = false };
  if t.inner > 1 then add { t with inner = t.inner / 2 };
  if t.inner_tri then add { t with inner_tri = false };
  (match t.par_bound with
  | Bparam v ->
      add { t with par_bound = Bconst v };
      if v > 4 then add { t with par_bound = Bparam (v / 2) }
  | Bthreads -> add { t with par_bound = Bconst t.threads }
  | Bconst c ->
      if c > 1 then add { t with par_bound = Bconst (c / 2) };
      if c > 0 then add { t with par_bound = Bconst (c - 1) });
  if t.le then add { t with le = false };
  if t.par_lo > 0 then add { t with par_lo = 0 };
  if t.par_step > 1 then add { t with par_step = 1 };
  if t.threads > 1 then add { t with threads = t.threads / 2 };
  if t.threads > 1 then add { t with threads = t.threads - 1 };
  (match t.chunk with
  | Some c ->
      add { t with chunk = None };
      if c > 1 then add { t with chunk = Some (c / 2) }
  | None -> ());
  if t.priv then add { t with priv = false };
  List.iteri
    (fun i a ->
      if a.arr_slack > 0 then
        add
          {
            t with
            arrays =
              List.mapi
                (fun i' a' -> if i' = i then { a' with arr_slack = 0 } else a')
                t.arrays;
          };
      if a.arr_elem <> Edouble then
        add
          {
            t with
            arrays =
              List.mapi
                (fun i' a' ->
                  if i' = i then { a' with arr_elem = Edouble } else a')
                t.arrays;
          })
    t.arrays;
  (* subscript simplifications, applied to every reference at once; the
     per-reference variants would explode the candidate list *)
  let sub_cands =
    [
      (fun s -> if s.square then { s with square = false; ci = 1 } else s);
      (fun s -> if s.ci > 1 then { s with ci = 1 } else s);
      (fun s -> if s.cj <> 0 then { s with cj = 0 } else s);
      (fun s -> if s.ct <> 0 then { s with ct = 0 } else s);
      (fun s -> if s.k <> 0 then { s with k = 0 } else s);
      (fun s -> if abs s.k > 1 then { s with k = s.k / 2 } else s);
    ]
  in
  List.iter
    (fun f ->
      let t' = map_subs f t in
      if t' <> t then add t')
    sub_cands;
  List.rev !cands

(* The oracle matrix.  One generated case flows parse -> typecheck ->
   lint -> lower and then through all four analysis paths, which are
   cross-checked against each other and against brute force; the first
   disagreement aborts the case with a (check, detail) pair the shrinker
   and the driver key on. *)

type mutation =
  | Fast
  | Closed
  | Depend_m
  | Sym
  | Attrib_m
  | Exact_m
  | Reuse_m
  | Sched_m
  | Fix_m

let mutation_of_string = function
  | "fast" -> Some Fast
  | "closed" -> Some Closed
  | "depend" -> Some Depend_m
  | "sym" -> Some Sym
  | "attrib" -> Some Attrib_m
  | "exact" -> Some Exact_m
  | "reuse" -> Some Reuse_m
  | "sched" -> Some Sched_m
  | "fix" -> Some Fix_m
  | _ -> None

let mutation_name = function
  | Fast -> "fast"
  | Closed -> "closed"
  | Depend_m -> "depend"
  | Sym -> "sym"
  | Attrib_m -> "attrib"
  | Exact_m -> "exact"
  | Reuse_m -> "reuse"
  | Sched_m -> "sched"
  | Fix_m -> "fix"

let mutation_names =
  [
    "fast"; "closed"; "depend"; "sym"; "attrib"; "exact"; "reuse"; "sched";
    "fix";
  ]

type outcome = {
  failure : (string * string) option;
  exercised : string list;
  promote : string option;
}

exception Fail of string * string

let line_bytes = 64

(* ------------------------------------------------------------------ *)
(* Brute-force dependence oracle                                       *)
(* ------------------------------------------------------------------ *)

exception Too_big

let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y)

(* Enumerate distinct iterations of the parallel loop (same values of
   the sequential outer variables, inner variables free within their
   real — possibly triangular — bounds) and look for byte overlap and
   cache-line sharing between [a] in one and [b] in the other.  This is
   the ground truth Depend's must-claims are judged against:
   [Independent] forbids both, [Line_conflict] forbids byte overlap.
   Gives up (returns [None]) past [budget] elementary steps. *)
let brute_pair ~params ~budget (nest : Loopir.Loop_nest.t)
    (a : Loopir.Array_ref.t) (b : Loopir.Array_ref.t) =
  let loops = nest.Loopir.Loop_nest.loops in
  let p = nest.Loopir.Loop_nest.parallel_depth in
  let outer = List.filteri (fun i _ -> i < p) loops in
  let par = List.nth loops p in
  let inner = List.filteri (fun i _ -> i > p) loops in
  let eval env e =
    Loopir.Expr_eval.eval
      (fun v ->
        match List.assoc_opt v env with
        | Some _ as r -> r
        | None -> List.assoc_opt v params)
      e
  in
  let values (l : Loopir.Loop_nest.loop) env =
    let lo = eval env l.lower and hi = eval env l.upper_excl in
    let rec go v acc =
      if v >= hi then List.rev acc else go (v + l.step) (v :: acc)
    in
    go lo []
  in
  let rec envs ls env =
    match ls with
    | [] -> [ env ]
    | (l : Loopir.Loop_nest.loop) :: rest ->
        List.concat_map (fun v -> envs rest ((l.var, v) :: env)) (values l env)
  in
  let cost = ref 0 in
  let bump () =
    incr cost;
    if !cost > budget then raise Too_big
  in
  let offsets (r : Loopir.Array_ref.t) env =
    List.map
      (fun e ->
        bump ();
        Loopir.Affine.eval (fun v -> List.assoc v e) r.Loopir.Array_ref.offset)
      (envs inner env)
  in
  try
    let bytes = ref false and line = ref false in
    List.iter
      (fun oenv ->
        let tbl =
          List.map
            (fun v ->
              let env = (par.Loopir.Loop_nest.var, v) :: oenv in
              (v, offsets a env, offsets b env))
            (values par oenv)
        in
        List.iter
          (fun (v1, oa, _) ->
            List.iter
              (fun (v2, _, ob) ->
                if v1 <> v2 && not (!bytes && !line) then
                  List.iter
                    (fun x ->
                      List.iter
                        (fun y ->
                          bump ();
                          let ex = x + a.Loopir.Array_ref.size_bytes - 1
                          and ey = y + b.Loopir.Array_ref.size_bytes - 1 in
                          if x <= ey && y <= ex then bytes := true;
                          if
                            fdiv x line_bytes <= fdiv ey line_bytes
                            && fdiv y line_bytes <= fdiv ex line_bytes
                          then line := true)
                        ob)
                    oa)
              tbl)
          tbl)
      (envs outer []);
    Some (!bytes, !line)
  with Too_big -> None

(* Corrupt the first exact witness so the witness-replay check has a
   bug to catch under --mutate exact. *)
let apply_exact_mutation mutate pairs =
  match mutate with
  | Some Exact_m ->
      let injected = ref false in
      List.map
        (fun (p : Analysis.Depend.pair) ->
          match p.Analysis.Depend.ev.Analysis.Depend.ev_witness with
          | Some w when not !injected ->
              injected := true;
              let w_b =
                match List.rev w.Analysis.Depend.w_b with
                | (v, x) :: tl -> List.rev ((v, x + 1) :: tl)
                | [] -> []
              in
              {
                p with
                Analysis.Depend.ev =
                  {
                    p.Analysis.Depend.ev with
                    Analysis.Depend.ev_witness =
                      Some { w with Analysis.Depend.w_b };
                  };
              }
          | _ -> p)
        pairs
  | _ -> pairs

let apply_depend_mutation mutate pairs =
  match mutate with
  | Some Depend_m ->
      let injected = ref false in
      List.map
        (fun (p : Analysis.Depend.pair) ->
          if (not !injected) && p.verdict = Analysis.Depend.Line_conflict then (
            injected := true;
            { p with Analysis.Depend.verdict = Analysis.Depend.Independent })
          else p)
        pairs
  | _ -> pairs

(* ------------------------------------------------------------------ *)
(* Per-nest analysis cross-checks                                      *)
(* ------------------------------------------------------------------ *)

let analyze_nest ~mutate ~threads ~chunk ~brute_budget ~sym_cap ~mark ~fail
    (nest : Loopir.Loop_nest.t) (checked : Minic.Typecheck.checked) =
  let base_params = [ ("num_threads", threads) ] in
  let cfg =
    { (Fsmodel.Model.default_config ~threads ()) with chunk; params = base_params }
  in
  let nrefs = List.length nest.Loopir.Loop_nest.refs in
  let pair_hist r =
    List.sort compare
      (Fsmodel.Attrib.fold_pairs r ~init:[]
         ~f:(fun acc ~writer_ref ~victim_ref ~writer_tid ~victim_tid ~count ->
           (writer_ref, victim_ref, writer_tid, victim_tid, count) :: acc))
  in
  let engines ps label =
    let c = { cfg with Fsmodel.Model.params = ps } in
    let fast_rec = Fsmodel.Attrib.create ~trace_cap:0 ~threads ~nrefs () in
    let ref_rec = Fsmodel.Attrib.create ~trace_cap:0 ~threads ~nrefs () in
    let fast =
      Fsmodel.Model.run ~engine:`Fast ~attrib:fast_rec c ~nest ~checked
    in
    let refr =
      Fsmodel.Model.run ~engine:`Reference ~attrib:ref_rec c ~nest ~checked
    in
    let fast_fs =
      fast.Fsmodel.Model.fs_cases + (if mutate = Some Fast then 1 else 0)
    in
    mark "engine/fast-vs-ref";
    if
      fast_fs <> refr.Fsmodel.Model.fs_cases
      || fast.thread_steps <> refr.thread_steps
      || fast.iterations_evaluated <> refr.iterations_evaluated
      || fast.chunk_runs <> refr.chunk_runs
    then
      fail "engine/fast-vs-ref"
        (Printf.sprintf
           "%s: fast fs=%d steps=%d iters=%d runs=%d, reference fs=%d \
            steps=%d iters=%d runs=%d"
           label fast_fs fast.thread_steps fast.iterations_evaluated
           fast.chunk_runs refr.Fsmodel.Model.fs_cases refr.thread_steps
           refr.iterations_evaluated refr.chunk_runs);
    (* attribution conservation: each recorder's total and per-pair sum
       must equal its engine's count *)
    let fast_total =
      Fsmodel.Attrib.total fast_rec
      + (if mutate = Some Attrib_m then 1 else 0)
    in
    let pair_sum r =
      List.fold_left (fun a (_, _, _, _, c) -> a + c) 0 (pair_hist r)
    in
    mark "attrib/conserve";
    if
      fast_total <> fast.Fsmodel.Model.fs_cases
      || Fsmodel.Attrib.total ref_rec <> refr.Fsmodel.Model.fs_cases
      || pair_sum fast_rec <> Fsmodel.Attrib.total fast_rec
      || pair_sum ref_rec <> Fsmodel.Attrib.total ref_rec
    then
      fail "attrib/conserve"
        (Printf.sprintf
           "%s: fast recorded %d (pairs %d) of %d, reference recorded %d \
            (pairs %d) of %d"
           label fast_total (pair_sum fast_rec) fast.Fsmodel.Model.fs_cases
           (Fsmodel.Attrib.total ref_rec)
           (pair_sum ref_rec) refr.Fsmodel.Model.fs_cases);
    (* both engines must attribute every case to the same provenance *)
    mark "attrib/engines";
    if pair_hist fast_rec <> pair_hist ref_rec then
      fail "attrib/engines"
        (label ^ ": fast and reference recorders disagree on a pair");
    refr.Fsmodel.Model.fs_cases
  in
  (* check one must-claim against ground truth: [Independent] forbids
     any sharing, [Line_conflict] forbids byte overlap *)
  let brute_verdict ~check ~who ps a b v =
    match v with
    | Analysis.Depend.Loop_carried | Analysis.Depend.Unknown _ ->
        (* may-results: any ground truth is consistent *)
        ()
    | _ -> (
        match brute_pair ~params:ps ~budget:brute_budget nest a b with
        | None -> ()
        | Some (bytes, line) ->
            mark check;
            let bad =
              match v with
              | Analysis.Depend.Independent -> bytes || line
              | Analysis.Depend.Line_conflict -> bytes
              | _ -> false
            in
            if bad then
              fail check
                (Printf.sprintf "%s vs %s%s: verdict %s but brute force \
                                 finds %s"
                   a.Loopir.Array_ref.repr b.Loopir.Array_ref.repr who
                   (Analysis.Depend.verdict_name v)
                   (if bytes then "byte overlap" else "line sharing")))
  in
  (* replay an exact witness: distinct parallel iterations, and the
     claimed byte overlap / line sharing must hold at those values *)
  let witness_ok ps (p : Analysis.Depend.pair)
      (w : Analysis.Depend.witness) =
    let par =
      (List.nth nest.Loopir.Loop_nest.loops
         nest.Loopir.Loop_nest.parallel_depth)
        .Loopir.Loop_nest.var
    in
    let env side v =
      match List.assoc_opt v side with
      | Some x -> x
      | None -> (
          match List.assoc_opt v w.Analysis.Depend.w_params with
          | Some x -> x
          | None -> List.assoc v ps)
    in
    match
      ( List.assoc_opt par w.Analysis.Depend.w_a,
        List.assoc_opt par w.Analysis.Depend.w_b )
    with
    | Some ka, Some kb when ka <> kb -> (
        let oa =
          Loopir.Affine.eval (env w.Analysis.Depend.w_a)
            p.Analysis.Depend.a.Loopir.Array_ref.offset
        and ob =
          Loopir.Affine.eval (env w.Analysis.Depend.w_b)
            p.Analysis.Depend.b.Loopir.Array_ref.offset
        in
        let ea = oa + p.Analysis.Depend.a.Loopir.Array_ref.size_bytes - 1
        and eb = ob + p.Analysis.Depend.b.Loopir.Array_ref.size_bytes - 1 in
        let bytes = oa <= eb && ob <= ea in
        let line =
          max (fdiv oa line_bytes) (fdiv ob line_bytes)
          <= min (fdiv ea line_bytes) (fdiv eb line_bytes)
        in
        match p.Analysis.Depend.verdict with
        | Analysis.Depend.Loop_carried -> bytes
        | Analysis.Depend.Line_conflict -> line && not bytes
        | _ -> false)
    | _ -> false
  in
  let rank = function
    | Analysis.Depend.Independent -> 0
    | Analysis.Depend.Line_conflict -> 1
    | Analysis.Depend.Loop_carried -> 2
    | Analysis.Depend.Unknown _ -> 3
  in
  let brute ps =
    (* legacy invariants on the first tier alone *)
    let banerjee =
      Analysis.Depend.pairs ~line_bytes ~params:ps ~exact:`Off nest
    in
    let banerjee = apply_depend_mutation mutate banerjee in
    List.iter
      (fun (p : Analysis.Depend.pair) ->
        brute_verdict ~check:"depend/brute" ~who:"" ps p.a p.b p.verdict)
      banerjee;
    let exact = Analysis.Depend.pairs ~line_bytes ~params:ps nest in
    let exact = apply_exact_mutation mutate exact in
    List.iter2
      (fun (bp : Analysis.Depend.pair) (xp : Analysis.Depend.pair) ->
        (* the exact tier only tightens the Banerjee verdict *)
        mark "exact/refines";
        (match (xp.verdict, bp.verdict) with
        | _, Analysis.Depend.Unknown _ -> ()
        | Analysis.Depend.Unknown _, _ ->
            fail "exact/refines"
              (Printf.sprintf "%s vs %s: exact says unknown, banerjee says %s"
                 xp.a.Loopir.Array_ref.repr xp.b.Loopir.Array_ref.repr
                 (Analysis.Depend.verdict_name bp.verdict))
        | x, y ->
            if rank x > rank y then
              fail "exact/refines"
                (Printf.sprintf
                   "%s vs %s: exact says %s, strictly worse than banerjee %s"
                   xp.a.Loopir.Array_ref.repr xp.b.Loopir.Array_ref.repr
                   (Analysis.Depend.verdict_name x)
                   (Analysis.Depend.verdict_name y)));
        (* exact must-verdicts are exact in both directions *)
        (match (xp.ev.Analysis.Depend.ev_backend, xp.ev.ev_must) with
        | Analysis.Depend.Exact, true -> (
            match brute_pair ~params:ps ~budget:brute_budget nest xp.a xp.b with
            | None -> ()
            | Some (bytes, line) ->
                mark "exact/brute";
                let want =
                  match xp.verdict with
                  | Analysis.Depend.Independent -> (false, false)
                  | Analysis.Depend.Line_conflict -> (false, true)
                  | Analysis.Depend.Loop_carried -> (bytes, line)
                  | Analysis.Depend.Unknown _ -> (bytes, line)
                in
                let bad =
                  match xp.verdict with
                  | Analysis.Depend.Loop_carried -> not bytes
                  | _ -> (bytes, line) <> want
                in
                if bad then
                  fail "exact/brute"
                    (Printf.sprintf
                       "%s vs %s: exact must-verdict %s but brute force sees \
                        bytes=%b line=%b"
                       xp.a.Loopir.Array_ref.repr xp.b.Loopir.Array_ref.repr
                       (Analysis.Depend.verdict_name xp.verdict)
                       bytes line))
        | _ -> ());
        (* every emitted witness must replay *)
        match xp.ev.Analysis.Depend.ev_witness with
        | Some w ->
            mark "exact/witness";
            if not (witness_ok ps xp w) then
              fail "exact/witness"
                (Printf.sprintf "%s vs %s: witness %s does not replay for %s"
                   xp.a.Loopir.Array_ref.repr xp.b.Loopir.Array_ref.repr
                   (Analysis.Depend.witness_to_string w)
                   (Analysis.Depend.verdict_name xp.verdict))
        | None -> ())
      banerjee exact
  in
  match Analysis.Depend.free_params ~params:base_params nest with
  | [] ->
      let fs = engines base_params "concrete" in
      (* seeded-schedule laws (concrete nests only): replay determinism
         across runs and engines, the static-equivalence collapse, and
         the Cole-Ramachandran steal bound against the block deal *)
      let model ?(threads = threads) ?engine sched =
        Fsmodel.Model.run ?engine
          { cfg with Fsmodel.Model.threads; sched }
          ~nest ~checked
      in
      let dyn1 = Ompsched.Dispatch.Dynamic { chunk = 1 } in
      let r1 = model (Some (dyn1, 3)) in
      let replay_fs =
        (model (Some (dyn1, 3))).Fsmodel.Model.fs_cases
        + (if mutate = Some Sched_m then 1 else 0)
      in
      let rref = model ~engine:`Reference (Some (dyn1, 3)) in
      mark "sched/replay";
      if
        r1.Fsmodel.Model.fs_cases <> replay_fs
        || r1.Fsmodel.Model.fs_cases <> rref.Fsmodel.Model.fs_cases
      then
        fail "sched/replay"
          (Printf.sprintf
             "dynamic,1 seed 3: fast counts %d then %d on replay, reference \
              %d"
             r1.Fsmodel.Model.fs_cases replay_fs rref.Fsmodel.Model.fs_cases);
      (* a one-thread team, or one chunk covering the whole trip, must
         reproduce the static deal exactly *)
      let solo = (model ~threads:1 None).Fsmodel.Model.fs_cases in
      let whole =
        max 1
          (Loopir.Loop_nest.total_iterations nest ~env:(fun v ->
               List.assoc_opt v base_params))
      in
      let big =
        (model (Some (Ompsched.Dispatch.Dynamic { chunk = whole }, 7)))
          .Fsmodel.Model.fs_cases
      in
      let one = (model ~threads:1 (Some (dyn1, 9))).Fsmodel.Model.fs_cases in
      mark "sched/static-equiv";
      if big <> solo || one <> solo then
        fail "sched/static-equiv"
          (Printf.sprintf
             "one-thread static counts %d, trip-chunk dynamic counts %d, \
              one-thread dynamic counts %d"
             solo big one);
      (* work stealing departs from the block deal only at steals, and
         each steal relocates one chunk: the extra FS cases are bounded
         by (conflicting accesses per relocated iteration) * chunk per
         steal *)
      (if
         Loopir.Loop_nest.schedule_kind nest = `Static
         && Loopir.Loop_nest.chunk_spec nest = None
         && chunk = None
       then
         let ws_chunk = 2 in
         (* the O(chunk) of the bound is in innermost accesses: each
            relocated parallel iteration expands to the nest's inner
            work (loose when outer sequential loops exist — the factor
            only ever widens the bound) *)
         let par_trip =
           match
             Loopir.Loop_nest.trip_count
               (Loopir.Loop_nest.parallel_loop nest)
               ~env:(fun v -> List.assoc_opt v base_params)
           with
           | t -> max 1 t
           | exception _ -> 1
         in
         let inner_per = max 1 (whole / par_trip) in
         let per_steal = 2 * threads * nrefs * ws_chunk * inner_per in
         List.iter
           (fun seed ->
             let r =
               model
                 (Some (Ompsched.Dispatch.Work_stealing { chunk = ws_chunk },
                        seed))
             in
             mark "sched/steal-bound";
             let bound = fs + (per_steal * r.Fsmodel.Model.steals) in
             if r.Fsmodel.Model.fs_cases > bound then
               fail "sched/steal-bound"
                 (Printf.sprintf
                    "ws,%d seed %d: %d FS case(s) with %d steal(s) exceeds \
                     block deal %d + %d/steal"
                    ws_chunk seed r.Fsmodel.Model.fs_cases
                    r.Fsmodel.Model.steals fs per_steal))
           [ 0; 1; 2 ]);
      (* the static reuse model must conserve accesses across its hit
         buckets on every nest it can evaluate *)
      (match
         Analysis.Reuse.predict ~arch:cfg.Fsmodel.Model.arch ~threads
           ~env:(fun v -> List.assoc_opt v base_params)
           nest
       with
      | p ->
          mark "reuse/conserve";
          let open Analysis.Reuse in
          let sum =
            p.l1_hits +. p.l2_hits +. p.l3_hits +. p.c2c_transfers
            +. p.mem_fetches
            +. (if mutate = Some Reuse_m then 1. else 0.)
          in
          if
            Float.abs (sum -. p.accesses) > 1e-3
            || p.miss_rate < 0. || p.miss_rate > 1.
            || p.cache_cycles < 0.
          then
            fail "reuse/conserve"
              (Printf.sprintf
                 "buckets sum to %.3f of %.0f accesses (miss %.3f, stall \
                  %.0f)"
                 sum p.accesses p.miss_rate p.cache_cycles)
      | exception _ -> ());
      (match Analysis.Closed_form.estimate cfg ~nest ~checked with
      | Analysis.Closed_form.Exact info ->
          let c =
            info.Analysis.Closed_form.fs_cases
            + (if mutate = Some Closed then 1 else 0)
          in
          mark "closed/exact";
          if c <> fs then
            fail "closed/exact"
              (Printf.sprintf "closed form %d (regime %s) vs engine %d" c
                 info.Analysis.Closed_form.regime fs)
      | Analysis.Closed_form.Inapplicable _ -> ());
      brute base_params
  | [ pname ] ->
      let cap = max 0 sym_cap in
      let clip v = v >= 0 && v <= cap in
      let samples =
        List.sort_uniq compare
          (List.filter clip
             [ 0; 1; 2; 3; threads; (2 * threads) + 1; cap - 1; cap ])
      in
      let engine_at = Hashtbl.create 8 in
      let engine v =
        match Hashtbl.find_opt engine_at v with
        | Some fs -> fs
        | None ->
            let fs =
              engines
                ((pname, v) :: base_params)
                (Printf.sprintf "%s=%d" pname v)
            in
            Hashtbl.add engine_at v fs;
            fs
      in
      let engine_samples =
        List.sort_uniq compare (List.filter clip [ 1; cap / 2; cap ])
      in
      List.iter (fun v -> ignore (engine v)) engine_samples;
      brute ((pname, min cap (2 * threads)) :: base_params);
      (* the symbolic case split refines the concrete analysis:
         instantiated anywhere it must be at least as severe as the
         concrete verdict (the symbolic side only ever widens variable
         ranges, and feasibility is monotone in them), and its own
         must-claims must survive brute force *)
      let spairs, _ctx, _fp =
        Analysis.Depend.pairs_sym ~line_bytes ~params:base_params nest
      in
      let spairs_off, _, _ =
        Analysis.Depend.pairs_sym ~line_bytes ~params:base_params ~exact:`Off
          nest
      in
      List.iter
        (fun v ->
          let conc =
            Analysis.Depend.pairs ~line_bytes
              ~params:((pname, v) :: base_params)
              nest
          in
          if List.length conc <> List.length spairs then
            fail "sym/depend"
              (Printf.sprintf "%s=%d: %d symbolic pairs vs %d concrete" pname
                 v (List.length spairs) (List.length conc));
          List.iter2
            (fun (sp : Analysis.Depend.spair) (cp : Analysis.Depend.pair) ->
              let valuation x =
                if x = pname then v else List.assoc x base_params
              in
              let inst, _ = Analysis.Symbolic.eval valuation sp.scases in
              let inst =
                if mutate = Some Sym then Analysis.Depend.Independent
                else inst
              in
              mark "sym/depend";
              let refines =
                match (inst, cp.Analysis.Depend.verdict) with
                (* concrete Unknown: the symbolic exact tier may decide *)
                | _, Analysis.Depend.Unknown _ -> true
                | Analysis.Depend.Unknown _, _ -> false
                | x, y -> rank x >= rank y
              in
              if not refines then
                fail "sym/depend"
                  (Printf.sprintf
                     "%s vs %s at %s=%d: symbolic says %s, concrete says %s \
                      (symbolic must be at least as severe)"
                     sp.sa.Loopir.Array_ref.repr sp.sb.Loopir.Array_ref.repr
                     pname v
                     (Analysis.Depend.verdict_name inst)
                     (Analysis.Depend.verdict_name cp.Analysis.Depend.verdict));
              brute_verdict ~check:"sym/depend-sound"
                ~who:(Printf.sprintf " at %s=%d" pname v)
                ((pname, v) :: base_params)
                sp.sa sp.sb inst)
            spairs conc;
          (* the refined symbolic tree only tightens the unrefined one *)
          List.iter2
            (fun (sp : Analysis.Depend.spair) (so : Analysis.Depend.spair) ->
              let valuation x =
                if x = pname then v else List.assoc x base_params
              in
              let xi, _ = Analysis.Symbolic.eval valuation sp.scases in
              let oi, _ = Analysis.Symbolic.eval valuation so.scases in
              mark "exact/sym";
              let ok =
                match (xi, oi) with
                | _, Analysis.Depend.Unknown _ -> true
                | Analysis.Depend.Unknown _, _ -> false
                | x, y -> rank x <= rank y
              in
              if not ok then
                fail "exact/sym"
                  (Printf.sprintf
                     "%s vs %s at %s=%d: refined tree says %s, unrefined %s"
                     sp.sa.Loopir.Array_ref.repr sp.sb.Loopir.Array_ref.repr
                     pname v
                     (Analysis.Depend.verdict_name xi)
                     (Analysis.Depend.verdict_name oi)))
            spairs spairs_off)
        samples;
      (* a certified quasi-polynomial must equal the engine count *)
      (match
         Analysis.Closed_form.estimate_sym cfg ~nest ~checked ~param:pname
           ~hi:cap ()
       with
      | Analysis.Closed_form.Sym cert ->
          List.iter
            (fun v ->
              if
                v >= cert.Analysis.Closed_form.sc_base
                && v <= cert.Analysis.Closed_form.sc_hi
              then (
                let predicted =
                  Analysis.Closed_form.sym_eval cert v
                  + (if mutate = Some Sym then 1 else 0)
                in
                let fs = engine v in
                mark "sym/count";
                if predicted <> fs then
                  fail "sym/count"
                    (Printf.sprintf
                       "%s=%d: certificate gives %d, engine counts %d \
                        (regime %s)"
                       pname v predicted fs
                       cert.Analysis.Closed_form.sc_regime)))
            engine_samples
      | Analysis.Closed_form.Sym_inapplicable _ -> ())
  | _ :: _ :: _ ->
      (* several free parameters: region-qualified verdicts must at
         least come out without raising *)
      ignore
        (Analysis.Depend.pairs_sym ~line_bytes ~params:base_params nest);
      mark "sym/multi-param"

(* ------------------------------------------------------------------ *)
(* Front end shared by spec and source checks                          *)
(* ------------------------------------------------------------------ *)

let run_lint ~threads ~chunk ~fixits checked =
  let opts =
    {
      Analysis.Lint.default_options with
      threads;
      chunk;
      fixits;
      params = [];
    }
  in
  Analysis.Lint.run ~opts ~uri:"fuzz.c" checked

let lint_checks ~threads ~chunk ~fixits ~mark ~fail checked =
  let report =
    match run_lint ~threads ~chunk ~fixits checked with
    | r -> r
    | exception e -> fail "lint/crash" (Printexc.to_string e); assert false
  in
  let text = Analysis.Diag.to_text report in
  if String.length text = 0 then fail "lint/render" "empty text report";
  mark "lint/render";
  (match
     Json_check.validate_sarif
       (Analysis.Json.to_string (Analysis.Diag.to_json report))
   with
  | Ok () -> mark "lint/json"
  | Error m -> fail "lint/json" m);
  report

(* The fix loop's own laws.  [Fixer.verify] is called WITHOUT advice:
   the advisor runs a Par_sweep internally, and nesting domain pools
   inside the fuzzing pool is both slow and unnecessary here — the
   layout/privatization rewrites do not depend on the chunk sweep.
   Underdelivery (a materialized fix that does not verify) is NOT an
   oracle failure: it is exactly the mining yield the continuous corpus
   miner promotes into test/corpus/, so it lands in [promote]. *)
let fix_checks ~mutate ~threads ~func ~mark ~fail ~promote checked =
  match Analysis.Fixer.verify ~threads ~func checked with
  | Analysis.Fixer.Nothing_to_fix _ -> ()
  | Analysis.Fixer.Fix v ->
      mark "fix/roundtrip";
      if not v.Analysis.Fixer.roundtrip_ok then
        fail "fix/roundtrip"
          (func
         ^ ": transformed source does not re-parse/re-typecheck to the \
            same span-erased AST");
      mark "fix/verified";
      (* verdicts are a pure function of the program: a second run must
         reproduce every claimed metric bit-for-bit *)
      let again =
        match Analysis.Fixer.verify ~threads ~func checked with
        | Analysis.Fixer.Fix v2 -> v2
        | Analysis.Fixer.Nothing_to_fix r ->
            fail "fix/verified"
              (func ^ ": second verify found nothing to fix: " ^ r);
            assert false
      in
      let claimed_after =
        v.Analysis.Fixer.after.Analysis.Fixer.fs_ref
        + (if mutate = Some Fix_m then 1 else 0)
      in
      if
        claimed_after <> again.Analysis.Fixer.after.Analysis.Fixer.fs_ref
        || v.Analysis.Fixer.before.Analysis.Fixer.fs_ref
           <> again.Analysis.Fixer.before.Analysis.Fixer.fs_ref
        || v.Analysis.Fixer.verified <> again.Analysis.Fixer.verified
      then
        fail "fix/verified"
          (Printf.sprintf
             "%s: verdict not deterministic: N_fs %d->%d verified=%b, then \
              %d->%d verified=%b"
             func v.Analysis.Fixer.before.Analysis.Fixer.fs_ref claimed_after
             v.Analysis.Fixer.verified
             again.Analysis.Fixer.before.Analysis.Fixer.fs_ref
             again.Analysis.Fixer.after.Analysis.Fixer.fs_ref
             again.Analysis.Fixer.verified);
      if not v.Analysis.Fixer.engines_agree then
        fail "fix/verified"
          (func ^ ": fast and reference engines disagree across the fix");
      (* the reported removal must be what the before/after counts say *)
      (if v.Analysis.Fixer.before.Analysis.Fixer.fs_ref > 0 then
         let want =
           1.
           -. float_of_int v.Analysis.Fixer.after.Analysis.Fixer.fs_ref
              /. float_of_int v.Analysis.Fixer.before.Analysis.Fixer.fs_ref
         in
         if Float.abs (want -. v.Analysis.Fixer.removal) > 1e-9 then
           fail "fix/verified"
             (Printf.sprintf "%s: removal %.6f inconsistent with N_fs %d->%d"
                func v.Analysis.Fixer.removal
                v.Analysis.Fixer.before.Analysis.Fixer.fs_ref
                v.Analysis.Fixer.after.Analysis.Fixer.fs_ref));
      if
        v.Analysis.Fixer.before.Analysis.Fixer.fs_ref > 0
        && not v.Analysis.Fixer.verified
      then
        promote
          (Printf.sprintf
             "fix underdelivers in %s: N_fs %d -> %d (%.1f%% removed), cost \
              %s"
             func v.Analysis.Fixer.before.Analysis.Fixer.fs_ref
             v.Analysis.Fixer.after.Analysis.Fixer.fs_ref
             (100. *. v.Analysis.Fixer.removal)
             (match v.Analysis.Fixer.cost_ratio with
             | Some r -> Printf.sprintf "%.2fx" r
             | None -> "n/a"))

let has_unknown_finding (report : Analysis.Diag.report) =
  List.exists
    (fun (f : Analysis.Diag.finding) -> f.rule = "analysis/unknown")
    report.findings

let outcome_of body =
  let exercised = ref [] in
  let mark c = if not (List.mem c !exercised) then exercised := c :: !exercised in
  let fail c d = raise (Fail (c, d)) in
  let promoted = ref None in
  let promote reason = if !promoted = None then promoted := Some reason in
  let failure =
    try
      body ~mark ~fail ~promote;
      None
    with
    | Fail (c, d) -> Some (c, d)
    | e -> Some ("oracle/exn", Printexc.to_string e)
  in
  { failure; exercised = List.rev !exercised; promote = !promoted }

let check_spec ?mutate ?(brute_budget = 300_000) (spec : Spec.t) =
  outcome_of (fun ~mark ~fail ~promote ->
      let src = Spec.to_source spec in
      let ast =
        match Minic.Parser.parse_program src with
        | a -> a
        | exception Minic.Parser.Error (m, l) ->
            fail "pipeline/parse" (Printf.sprintf "%s (line %d)" m l);
            assert false
      in
      mark "pipeline/parse";
      let want = Minic.Ast.erase_spans (Spec.to_ast spec) in
      if Minic.Ast.erase_spans ast <> want then
        fail "roundtrip/pretty"
          "pretty-printed program reparses to a different AST";
      mark "roundtrip/pretty";
      let checked =
        match Minic.Typecheck.check_program ast with
        | c -> c
        | exception Minic.Typecheck.Type_error m ->
            fail "pipeline/typecheck" m;
            assert false
      in
      mark "pipeline/typecheck";
      let threads = spec.Spec.threads in
      let report =
        lint_checks ~threads ~chunk:None
          ~fixits:(spec.Spec.sp_index mod 7 = 0)
          ~mark ~fail checked
      in
      let nonaffine =
        List.exists
          (fun (r : Spec.rref) -> r.r_sub.Spec.square)
          (Spec.all_refs spec)
      in
      let params = [ ("num_threads", threads) ] in
      let lowered = ref None in
      (match Loopir.Lower.lower_all checked ~func:"f" ~params with
      | exception Loopir.Lower.Lower_error m ->
          if not nonaffine then
            fail "pipeline/lower" ("unexpected lowering failure: " ^ m);
          (* lowering rejections must surface to the user as findings *)
          if not (has_unknown_finding report) then
            fail "lower/lint-unknown"
              "nonaffine nest produced no analysis/unknown finding";
          mark "lower/nonaffine"
      | [ nest ] when not nonaffine ->
          mark "pipeline/lower";
          lowered := Some nest;
          analyze_nest ~mutate ~threads ~chunk:None ~brute_budget
            ~sym_cap:(Spec.param_cap spec) ~mark ~fail nest checked
      | nests ->
          if nonaffine then
            fail "lower/nonaffine"
              "nonaffine subscript was lowered without error"
          else
            fail "pipeline/lower"
              (Printf.sprintf "expected one nest, found %d" (List.length nests)));
      (* a deterministic sliver of cases also closes the fix loop:
         materialize the advised rewrite and hold the verdict to the
         Fixer laws (round-trip, determinism, engine agreement) *)
      if (not nonaffine) && spec.Spec.sp_index mod 13 = 0 then
        fix_checks ~mutate ~threads ~func:"f" ~mark ~fail ~promote checked;
      (* a deterministic sliver of cases also runs end to end through the
         instrumented interpreter (crash-freedom, not value checking) *)
      if (not nonaffine) && spec.Spec.sp_index mod 61 = 0 then begin
        (match
           let it = Execsim.Interp.create ~threads checked in
           Execsim.Interp.exec it ~func:"f"
         with
        | () -> mark "execsim/run"
        | exception Execsim.Interp.Runtime_error m -> fail "execsim/run" m);
        (* and, when the nest is concrete, the reuse model's beyond-L1
           traffic must land within a loose band of the instrumented
           cache simulator's — a drift tripwire, not an accuracy gate *)
        match !lowered with
        | Some nest
          when Analysis.Depend.free_params ~params nest = [] -> (
            let arch = Archspec.Arch.small_test_machine in
            match
              Analysis.Reuse.predict ~arch ~threads
                ~env:(fun v -> List.assoc_opt v params)
                nest
            with
            | exception _ -> ()
            | p -> (
                let coherence =
                  Cachesim.Coherence.create ~cores:threads arch
                in
                let sink =
                  {
                    Execsim.Interp.mem_access =
                      (fun ~tid ~addr ~size ~write ->
                        ignore
                          (Cachesim.Coherence.access coherence ~core:tid
                             ~addr ~size ~write));
                    cpu = (fun ~tid:_ _ -> ());
                    region_begin = (fun ~threads:_ -> ());
                    region_end = (fun ~chunks_per_thread:_ -> ());
                  }
                in
                match
                  let it =
                    Execsim.Interp.create ~threads ~sink checked
                  in
                  Execsim.Interp.exec it ~func:"f"
                with
                | exception Execsim.Interp.Runtime_error _ -> ()
                | () ->
                    let st =
                      Cachesim.Coherence.aggregate_stats coherence
                    in
                    let sim_acc =
                      float_of_int (Cachesim.Stats.accesses st)
                    in
                    let sim_beyond =
                      sim_acc
                      -. float_of_int st.Cachesim.Stats.l1_hits
                    in
                    let pred_beyond =
                      p.Analysis.Reuse.accesses
                      -. p.Analysis.Reuse.l1_hits
                    in
                    mark "reuse/sim";
                    (* the interpreter also counts scalar-global traffic
                       the nest IR does not model, hence one-sided on
                       accesses and a factor-8 + slack band on misses *)
                    if
                      p.Analysis.Reuse.accesses > sim_acc +. 0.5
                      || pred_beyond > (8. *. sim_beyond) +. 256.
                      || sim_beyond > (8. *. pred_beyond) +. 256.
                    then
                      fail "reuse/sim"
                        (Printf.sprintf
                           "predicted %.0f accesses / %.0f beyond-L1 vs \
                            simulated %.0f / %.0f"
                           p.Analysis.Reuse.accesses pred_beyond sim_acc
                           sim_beyond)))
        | _ -> ()
      end)

let check_source ?mutate ?(brute_budget = 300_000) ~threads ~chunk src =
  outcome_of (fun ~mark ~fail ~promote ->
      let ast =
        match Minic.Parser.parse_program src with
        | a -> a
        | exception Minic.Parser.Error (m, l) ->
            fail "pipeline/parse" (Printf.sprintf "%s (line %d)" m l);
            assert false
      in
      mark "pipeline/parse";
      (* printer/parser fixpoint: pretty output must reparse to the
         same span-erased AST *)
      (match Minic.Parser.parse_program (Minic.Pretty.program_to_string ast) with
      | ast2 ->
          if Minic.Ast.erase_spans ast2 <> Minic.Ast.erase_spans ast then
            fail "roundtrip/pretty"
              "pretty-printed program reparses to a different AST"
      | exception Minic.Parser.Error (m, l) ->
          fail "roundtrip/pretty"
            (Printf.sprintf "pretty output does not reparse: %s (line %d)" m l));
      mark "roundtrip/pretty";
      let checked =
        match Minic.Typecheck.check_program ast with
        | c -> c
        | exception Minic.Typecheck.Type_error m ->
            fail "pipeline/typecheck" m;
            assert false
      in
      mark "pipeline/typecheck";
      let report = lint_checks ~threads ~chunk ~fixits:true ~mark ~fail checked in
      let funcs = Loopir.Lower.find_parallel_functions ast in
      let params = [ ("num_threads", threads) ] in
      List.iter
        (fun func ->
          match Loopir.Lower.lower_all checked ~func ~params with
          | exception Loopir.Lower.Lower_error _ ->
              if not (has_unknown_finding report) then
                fail "lower/lint-unknown"
                  (func ^ ": lowering failed with no analysis/unknown finding");
              mark "lower/nonaffine"
          | nests ->
              mark "pipeline/lower";
              List.iter
                (fun nest ->
                  analyze_nest ~mutate ~threads ~chunk ~brute_budget
                    ~sym_cap:16 ~mark ~fail nest checked)
                nests)
        funcs;
      (* corpus files are few: always interpret them and always close
         the fix loop *)
      List.iter
        (fun func ->
          fix_checks ~mutate ~threads ~func ~mark ~fail ~promote checked;
          match
            let it = Execsim.Interp.create ~threads checked in
            Execsim.Interp.exec it ~func
          with
          | () -> mark "execsim/run"
          | exception Execsim.Interp.Runtime_error m ->
              fail "execsim/run" (func ^ ": " ^ m))
        funcs)

let scan_header src =
  let threads = ref 4 and chunk = ref None in
  let strip_prefix p l =
    if String.length l >= String.length p && String.sub l 0 (String.length p) = p
    then Some (String.trim (String.sub l (String.length p) (String.length l - String.length p)))
    else None
  in
  List.iter
    (fun l ->
      let l = String.trim l in
      match strip_prefix "* threads:" l with
      | Some v -> (
          match int_of_string_opt v with Some t -> threads := t | None -> ())
      | None -> (
          match strip_prefix "* chunk:" l with
          | Some "pragma" -> chunk := None
          | Some v -> (
              match int_of_string_opt v with
              | Some c -> chunk := Some c
              | None -> ())
          | None -> ()))
    (String.split_on_char '\n' src);
  (!threads, !chunk)

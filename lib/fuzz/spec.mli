(** Structured fuzz cases.

    A [t] describes one OpenMP loop nest — schedule, bounds, subscripts,
    statement list — as plain data.  The oracle matrix renders it to
    mini-C text through {!Minic.Pretty} (so the printer itself is under
    test), and the shrinker edits the structure rather than the text, so
    every reduction stays parseable and well-typed by construction. *)

type elem = Edouble | Efloat | Eint

type array_decl = {
  arr_name : string;
  arr_elem : elem;
  arr_fields : int;
      (** 0 = plain elements; else a struct with fields [f0..f<n-1>] *)
  arr_slack : int;
      (** extra elements declared beyond the minimal in-bounds extent *)
}

type sub = {
  ci : int;  (** coefficient of the parallel variable (ignored if square) *)
  cj : int;  (** coefficient of the inner variable *)
  ct : int;  (** coefficient of the sequential outer variable *)
  k : int;  (** constant element offset *)
  square : bool;  (** deliberately nonaffine: the i-term is [i * i] *)
}

type rref = { r_arr : int; r_sub : sub; r_field : int option }

type term = Tref of rref | Tint of int | Tfloat of float | Tmath of string * rref

type assign = {
  a_lhs : rref;
  a_op : Minic.Ast.assign_op;
  a_rhs : term list;
  a_mul : bool;  (** combine the terms with [*] instead of [+] *)
}

type bound =
  | Bconst of int  (** [i < c] *)
  | Bparam of int  (** [i < n] with [n] free; the int caps the sampling *)
  | Bthreads  (** [i < num_threads] *)

type t = {
  sp_seed : int;
  sp_index : int;
  threads : int;
  chunk : int option;
  outer : int;
  par_lo : int;
  par_bound : bound;
  par_step : int;
  le : bool;  (** render the condition as [i <= c-1] *)
  inner : int;
  inner_tri : bool;  (** triangular inner bound [j < i + inner] *)
  priv : bool;
  reduction : bool;
  arrays : array_decl list;
  stmts : assign list;
}

val elem_size : elem -> int
val max_threads : int

val normalize : t -> t
(** Shift subscript offsets non-negative and drop an impossible [le]
    rendering; [to_ast] applies it automatically. *)

val par_hi_excl : t -> int
(** Exclusive parallel upper bound (the sampling cap when parametric). *)

val array_len : t -> int -> int
(** Declared extent of array [idx]: minimal in-bounds elements + slack. *)

val param_cap : t -> int
(** Largest free-parameter value keeping every subscript in bounds. *)

val is_parametric : t -> bool
val all_refs : t -> rref list

val to_ast : t -> Minic.Ast.program
val to_source : t -> string

val describe : t -> string
(** One-line summary for progress and failure messages. *)

val header : check:string -> detail:string -> t -> string
(** Comment block prepended to a saved counterexample; the corpus
    replayer parses the [threads:] and [chunk:] lines back out. *)

val shrink_steps : t -> t list
(** Single-step reductions, most aggressive first.  Every candidate is a
    well-formed spec; the shrinker keeps a candidate only when it still
    fails the oracle. *)

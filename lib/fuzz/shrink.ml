(* Greedy first-failing-candidate descent to a fixpoint.  Candidate
   order (most aggressive first) comes from Spec.shrink_steps; taking
   the first still-failing candidate and restarting keeps the cost at
   O(depth * candidates) oracle calls while staying deterministic. *)

let minimize ?(max_evals = 2000) ~fails spec0 =
  let evals = ref 0 in
  let rec descend spec =
    let rec try_candidates = function
      | [] -> spec
      | c :: rest ->
          if !evals >= max_evals then spec
          else (
            incr evals;
            if fails c then descend c else try_candidates rest)
    in
    try_candidates (Spec.shrink_steps spec)
  in
  let result = descend spec0 in
  (result, !evals)

(** Greedy structural shrinking.

    [minimize ~fails spec] repeatedly replaces [spec] by the first
    {!Spec.shrink_steps} candidate that still satisfies [fails]
    (normally "fails the same oracle check as the original"), until no
    candidate does or the evaluation budget runs out.  The result is
    locally minimal w.r.t. the step set when the budget was not
    exhausted.  Returns the shrunk spec and the number of oracle
    evaluations spent. *)

val minimize :
  ?max_evals:int -> fails:(Spec.t -> bool) -> Spec.t -> Spec.t * int
(** [max_evals] defaults to 2000. *)

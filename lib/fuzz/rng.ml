(* splitmix64: a tiny, fast, statistically solid generator whose whole
   state is one 64-bit word — ideal here because a per-case stream must
   be derivable from (seed, index) alone. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let stream ~seed ~index =
  (* decorrelate the per-case streams by running the index through the
     finalizer before folding the seed in *)
  let s = mix (Int64.add (mix (Int64.of_int index)) (Int64.of_int seed)) in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* 62 uniform bits; modulo bias is irrelevant at fuzzing bounds *)
  Int64.to_int (Int64.shift_right_logical (next t) 2) mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty";
  a.(int t (Array.length a))

let weighted t l =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 l in
  if total <= 0 then invalid_arg "Rng.weighted: no positive weight";
  let k = int t total in
  let rec pick k = function
    | [] -> assert false
    | (w, x) :: rest -> if k < max 0 w then x else pick (k - max 0 w) rest
  in
  pick k l

(** Minimal JSON reader used only to validate the lint renderer's
    output: {!Analysis.Json} is print-only by design, so the fuzzer
    brings its own parser to prove the emitted SARIF is well-formed and
    carries the required top-level shape. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    failing byte position. *)

val member : string -> value -> value option
(** Field lookup on an [Obj]; [None] on missing fields and non-objects. *)

val validate_sarif : string -> (unit, string) result
(** Parse and check the SARIF shape the lint renderer promises: a
    top-level object with a ["version"] and a non-empty ["runs"] array
    whose first run has a ["tool"] and a ["results"] array. *)

val validate_trace : string -> (int, string) result
(** Parse and check the Chrome [trace_event] shape the explain trace
    renderer promises: a ["traceEvents"] array of metadata ([ph = "M"])
    and instant ([ph = "i"], with numeric [ts]/[pid]/[tid]) events.
    [Ok n] carries the instant-event count, which callers reconcile
    with the recorder's retained-trace length. *)

(* The fuzzing loop.  Cases are generated and checked in parallel
   batches (Par_sweep keeps results in input order and bit-identical to
   the sequential path); shrinking happens sequentially in the calling
   domain because it is rare and needs the oracle many times on one
   case. *)

type config = {
  seed : int;
  count : int;
  time_budget : float option;
  jobs : int option;
  mutate : Oracle.mutation option;
  out_dir : string option;
  corpus : string option;
  promote_dir : string option;
  max_failures : int;
  brute_budget : int;
}

let default =
  {
    seed = 0;
    count = 1000;
    time_budget = None;
    jobs = None;
    mutate = None;
    out_dir = None;
    corpus = None;
    promote_dir = None;
    max_failures = 1;
    brute_budget = 300_000;
  }

type failure = {
  f_origin : string;
  f_check : string;
  f_detail : string;
  f_source : string;
  f_path : string option;
  f_shrink_evals : int;
}

type summary = {
  cases_run : int;
  corpus_run : int;
  promoted : (string * string) list;
  failures : failure list;
  exercised : (string * int) list;
  elapsed : float;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then (
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let run ?(progress = fun _ -> ()) cfg =
  let t0 = Unix.gettimeofday () in
  let failures = ref [] in
  let promoted = ref [] in
  (* corpus mining: a generated nest whose fix underdelivers is itself a
     regression case worth keeping.  Content-addressed filenames dedup
     re-discoveries across runs and seeds. *)
  let promote_case spec reason =
    match cfg.promote_dir with
    | None -> ()
    | Some dir ->
        let source =
          Spec.header ~check:"fix/underdelivers" ~detail:reason spec
          ^ Spec.to_source spec
        in
        let digest =
          String.sub (Digest.to_hex (Digest.string (Spec.to_source spec))) 0 12
        in
        let path = Filename.concat dir ("fix-" ^ digest ^ ".c") in
        if not (Sys.file_exists path) then begin
          mkdir_p dir;
          write_file path source;
          progress (Printf.sprintf "promoted %s: %s" path reason);
          promoted := (path, reason) :: !promoted
        end
  in
  let exercised : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let bump cs =
    List.iter
      (fun c ->
        Hashtbl.replace exercised c
          (1 + Option.value ~default:0 (Hashtbl.find_opt exercised c)))
      cs
  in
  let over_budget () =
    match cfg.time_budget with
    | Some b -> Unix.gettimeofday () -. t0 > b
    | None -> false
  in
  let saturated () = List.length !failures >= cfg.max_failures in
  (* ---- corpus replay ---- *)
  let corpus_run = ref 0 in
  (match cfg.corpus with
  | None -> ()
  | Some dir when Sys.file_exists dir && Sys.is_directory dir ->
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".c")
        |> List.sort compare
      in
      List.iter
        (fun f ->
          if not (saturated ()) then (
            let path = Filename.concat dir f in
            let src = read_file path in
            let threads, chunk = Oracle.scan_header src in
            incr corpus_run;
            let o =
              Oracle.check_source ?mutate:cfg.mutate
                ~brute_budget:cfg.brute_budget ~threads ~chunk src
            in
            bump o.Oracle.exercised;
            match o.Oracle.failure with
            | None -> ()
            | Some (check, detail) ->
                progress
                  (Printf.sprintf "corpus %s: %s (%s)" f check detail);
                failures :=
                  {
                    f_origin = "corpus " ^ f;
                    f_check = check;
                    f_detail = detail;
                    f_source = src;
                    f_path = Some path;
                    f_shrink_evals = 0;
                  }
                  :: !failures))
        files
  | Some dir -> progress (Printf.sprintf "corpus directory %s not found" dir));
  (* ---- random cases ---- *)
  let domains =
    match cfg.jobs with
    | Some j -> max 1 j
    | None -> Fsmodel.Par_sweep.recommended_domains ()
  in
  let batch = max 16 (domains * 16) in
  let cases_run = ref 0 in
  let next = ref 0 in
  while (not (saturated ())) && (not (over_budget ())) && !next < cfg.count do
    let hi = min cfg.count (!next + batch) in
    let idxs = List.init (hi - !next) (fun k -> !next + k) in
    let results =
      Fsmodel.Par_sweep.map ~domains
        (fun idx ->
          let spec = Gen.spec ~seed:cfg.seed ~index:idx in
          ( idx,
            spec,
            Oracle.check_spec ?mutate:cfg.mutate
              ~brute_budget:cfg.brute_budget spec ))
        idxs
    in
    List.iter
      (fun (idx, spec, (o : Oracle.outcome)) ->
        if not (saturated ()) then (
          incr cases_run;
          bump o.Oracle.exercised;
          (match (o.Oracle.failure, o.Oracle.promote) with
          | None, Some reason -> promote_case spec reason
          | _ -> ());
          match o.Oracle.failure with
          | None -> ()
          | Some (check, detail) ->
              progress
                (Printf.sprintf "case %d: %s (%s), shrinking..." idx check
                   detail);
              let still_fails s =
                match
                  (Oracle.check_spec ?mutate:cfg.mutate
                     ~brute_budget:cfg.brute_budget s)
                    .Oracle.failure
                with
                | Some (c, _) -> c = check
                | None -> false
              in
              let small, evals = Shrink.minimize ~fails:still_fails spec in
              let detail' =
                match
                  (Oracle.check_spec ?mutate:cfg.mutate
                     ~brute_budget:cfg.brute_budget small)
                    .Oracle.failure
                with
                | Some (_, d) -> d
                | None -> detail
              in
              let source =
                Spec.header ~check ~detail:detail' small
                ^ Spec.to_source small
              in
              let path =
                match cfg.out_dir with
                | None -> None
                | Some dir ->
                    mkdir_p dir;
                    let slug =
                      String.map (fun c -> if c = '/' then '-' else c) check
                    in
                    let p =
                      Filename.concat dir
                        (Printf.sprintf "seed%d-case%d-%s.c" cfg.seed idx slug)
                    in
                    write_file p source;
                    Some p
              in
              failures :=
                {
                  f_origin = Printf.sprintf "case %d" idx;
                  f_check = check;
                  f_detail = detail';
                  f_source = source;
                  f_path = path;
                  f_shrink_evals = evals;
                }
                :: !failures))
      results;
    next := hi
  done;
  {
    cases_run = !cases_run;
    corpus_run = !corpus_run;
    promoted = List.rev !promoted;
    failures = List.rev !failures;
    exercised =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) exercised []
      |> List.sort compare;
    elapsed = Unix.gettimeofday () -. t0;
  }

let summary_to_string s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "fuzz: %d generated case%s, %d corpus file%s, %.1fs\n"
       s.cases_run
       (if s.cases_run = 1 then "" else "s")
       s.corpus_run
       (if s.corpus_run = 1 then "" else "s")
       s.elapsed);
  Buffer.add_string b "checks exercised:\n";
  List.iter
    (fun (c, n) -> Buffer.add_string b (Printf.sprintf "  %-22s %d\n" c n))
    s.exercised;
  (match s.promoted with
  | [] -> ()
  | ps ->
      Buffer.add_string b
        (Printf.sprintf "%d case%s promoted to the corpus:\n" (List.length ps)
           (if List.length ps = 1 then "" else "s"));
      List.iter
        (fun (path, reason) ->
          Buffer.add_string b (Printf.sprintf "  %s: %s\n" path reason))
        ps);
  (match s.failures with
  | [] -> Buffer.add_string b "no oracle disagreements.\n"
  | fs ->
      Buffer.add_string b
        (Printf.sprintf "%d oracle disagreement%s:\n" (List.length fs)
           (if List.length fs = 1 then "" else "s"));
      List.iter
        (fun f ->
          Buffer.add_string b
            (Printf.sprintf "  %s: %s\n    %s\n" f.f_origin f.f_check
               f.f_detail);
          (match f.f_path with
          | Some p ->
              Buffer.add_string b
                (Printf.sprintf "    counterexample: %s\n" p)
          | None -> ());
          if f.f_shrink_evals > 0 then
            Buffer.add_string b
              (Printf.sprintf "    (shrunk with %d oracle calls)\n"
                 f.f_shrink_evals))
        fs);
  Buffer.contents b

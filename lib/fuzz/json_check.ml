(* Minimal JSON reader used only to validate the lint renderer's output:
   the repository's Analysis.Json is print-only by design, so the fuzzer
   brings its own parser to prove the emitted SARIF is well-formed and
   carries the required top-level shape. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

exception Bad of string * int  (* message, position *)

let parse (s : string) : (value, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let err m = raise (Bad (m, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> err (Printf.sprintf "expected %c, got %c" c c')
    | None -> err (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
    else err ("bad literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance (); Buffer.contents b
        | '\\' ->
            advance ();
            (if !pos >= n then err "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then err "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   String.iter
                     (function
                       | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                       | _ -> err "bad \\u escape")
                     hex;
                   (* validation only: the code point itself is not needed *)
                   Buffer.add_string b "?";
                   pos := !pos + 4
               | c -> err (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c when Char.code c < 0x20 -> err "unescaped control character"
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      let rec go () =
        match peek () with
        | Some '0' .. '9' -> incr d; advance (); go ()
        | _ -> ()
      in
      go ();
      if !d = 0 then err "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' -> advance (); digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> err "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> err "expected , or ] in array"
          in
          items []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> err (Printf.sprintf "unexpected character %c" c)
    | None -> err "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then err "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (m, p) -> Error (Printf.sprintf "%s at byte %d" m p)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* the SARIF shape Diag.to_json promises: a version and one run carrying
   a tool and a results array *)
let validate_sarif s =
  match parse s with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok v -> (
      match member "version" v with
      | None -> Error "missing \"version\""
      | Some _ -> (
          match member "runs" v with
          | Some (List (run :: _)) -> (
              match (member "tool" run, member "results" run) with
              | Some _, Some (List _) -> Ok ()
              | None, _ -> Error "run missing \"tool\""
              | _, _ -> Error "run missing \"results\" array")
          | Some (List []) -> Error "empty \"runs\""
          | _ -> Error "missing \"runs\" array"))

(* the Chrome trace_event shape Explain.trace_json promises: an object
   with a traceEvents array whose entries all carry a "ph" phase; every
   instant event (ph = "i") needs ts/pid/tid numbers.  Returns the
   instant-event count so callers can reconcile it with the recorder. *)
let validate_trace s =
  match parse s with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok v -> (
      match member "traceEvents" v with
      | Some (List events) ->
          let rec go n = function
            | [] -> Ok n
            | e :: rest -> (
                match member "ph" e with
                | Some (Str "M") -> go n rest
                | Some (Str "i") -> (
                    match (member "ts" e, member "pid" e, member "tid" e) with
                    | Some (Num _), Some (Num _), Some (Num _) ->
                        go (n + 1) rest
                    | _ -> Error "instant event missing ts/pid/tid")
                | Some (Str ph) -> Error ("unexpected phase " ^ ph)
                | _ -> Error "event missing \"ph\"")
          in
          go 0 events
      | _ -> Error "missing \"traceEvents\" array")

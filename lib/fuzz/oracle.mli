(** The oracle matrix: every generated nest is pushed through the whole
    pipeline and the four analysis paths are cross-checked against each
    other and against brute force.

    Checks, in pipeline order:

    - [pipeline/parse], [roundtrip/pretty]: the pretty-printed source
      reparses, and to the same (span-erased) AST the generator built;
    - [pipeline/typecheck]: generated programs are well-typed by
      construction;
    - [lint/render], [lint/json]: the lint pass and both renderers run
      without raising, and the SARIF output is well-formed JSON of the
      promised shape;
    - [pipeline/lower] / [lower/nonaffine]: affine nests lower, nests
      with a deliberately nonaffine subscript are rejected by {!Loopir.Lower}
      {e and} surface as an [analysis/unknown] lint finding;
    - [engine/fast-vs-ref]: the fast and reference model engines agree
      exactly (FS count, lockstep steps, iterations, chunk runs);
    - [attrib/conserve], [attrib/engines]: an {!Fsmodel.Attrib}
      recorder attached to each engine records exactly [fs_cases]
      events whose per-pair histogram sums back to that total, and both
      engines attribute every case to the same (writer reference,
      victim reference, thread pair) provenance;
    - [closed/exact]: when {!Analysis.Closed_form.estimate} certifies a
      count, it equals the engine's;
    - [depend/brute]: first-tier ([~exact:`Off]) [Independent] /
      [Line_conflict] must-claims hold against brute-force enumeration
      of distinct parallel iterations (skipped per pair when the
      iteration space exceeds the budget);
    - [exact/refines], [exact/brute], [exact/witness]: the exact tier's
      verdict is never strictly worse than the Banerjee verdict for the
      same pair, its must-verdicts match the brute-force byte/line
      classification {e exactly} (both directions, not just soundness),
      and every emitted witness replays: distinct parallel iterations
      whose evaluated offsets exhibit exactly the claimed overlap;
    - [exact/sym]: on single-parameter nests, the exact-refined
      symbolic tree instantiated at sampled values is never strictly
      worse than the unrefined ([~exact:`Off]) tree;
    - [sym/depend], [sym/depend-sound], [sym/count]: on single-parameter
      nests, instantiated symbolic verdicts refine the concrete analysis
      at sampled values (at least as severe, per the {!Analysis.Depend}
      contract), their own must-claims survive brute force, and a
      certified quasi-polynomial matches the engine count;
    - [sched/replay], [sched/static-equiv], [sched/steal-bound]: on
      concrete nests, a seeded schedule replay is one value (two fast
      runs and a reference run of [(dynamic,1)] at the same seed agree
      exactly), a one-thread team or a chunk covering the whole trip
      collapses dynamic dispatch back to the static deal, and — when
      the pragma is the no-chunk static deal — every work-stealing
      seed's FS count stays within the Cole–Ramachandran bound
      (block-deal count plus O(chunk) extra cases per steal);
    - [reuse/conserve]: on concrete nests, the static reuse-distance
      model's hit buckets sum exactly back to its access count, and its
      miss rate and stall estimate are well-formed;
    - [fix/roundtrip], [fix/verified]: on a deterministic subset of
      generated cases (and on every corpus file), the fix loop's laws:
      when {!Analysis.Fixer.verify} materializes a fix, the transformed
      source round-trips through the printer, a second verify reproduces
      every claimed metric bit-for-bit, both engines agree across the
      transformation, and the reported removal is consistent with the
      before/after counts.  A fix that {e underdelivers} (does not
      verify) is not an oracle failure — it lands in [promote] as
      mining yield for the corpus;
    - [reuse/sim]: on the same deterministic subset as [execsim/run],
      the reuse model's beyond-L1 traffic agrees with the instrumented
      cache simulator within a loose factor-of-eight band — a drift
      tripwire, not an accuracy gate (the pinned per-kernel tolerances
      in the test suite are the accuracy gate);
    - [execsim/run]: on a deterministic subset, the instrumented
      interpreter executes the program without raising.

    [mutate] injects a known fault into one of the analysis paths so
    the harness itself can be tested: a run with a mutation must report
    a disagreement and shrink it. *)

type mutation =
  | Fast  (** off-by-one the fast engine's FS count *)
  | Closed  (** off-by-one the closed-form count *)
  | Depend_m  (** demote a [Line_conflict] verdict to [Independent] *)
  | Sym  (** corrupt symbolic verdicts and counts *)
  | Attrib_m  (** off-by-one the attribution recorder's total *)
  | Exact_m  (** corrupt the first exact witness's iteration values *)
  | Reuse_m  (** off-by-one the reuse model's bucket conservation *)
  | Sched_m  (** off-by-one a seeded-schedule replay's FS count *)
  | Fix_m  (** off-by-one the fix verdict's claimed after-count *)

val mutation_of_string : string -> mutation option
val mutation_name : mutation -> string
val mutation_names : string list

type outcome = {
  failure : (string * string) option;  (** (check, detail); [None] = pass *)
  exercised : string list;  (** checks that actually ran on this case *)
  promote : string option;
      (** set when the case is promotion-worthy for the regression
          corpus (a materialized fix underdelivered); the string says
          why *)
}

val check_spec : ?mutate:mutation -> ?brute_budget:int -> Spec.t -> outcome
(** Run the whole matrix on one generated case.  [brute_budget] caps the
    per-pair work of the brute-force dependence oracle (default 300000
    elementary comparisons). *)

val check_source :
  ?mutate:mutation ->
  ?brute_budget:int ->
  threads:int ->
  chunk:int option ->
  string ->
  outcome
(** Source-level variant for corpus replay: the same matrix minus the
    spec-specific checks (round-trip against the generating structure,
    expected-nonaffine bookkeeping).  Every parallel function and nest
    of the program is checked. *)

val scan_header : string -> int * int option
(** Parse the [threads:] / [chunk:] lines of a counterexample header
    comment (see {!Spec.header}); defaults to [(4, None)]. *)

(** Deterministic splitmix64 stream for the fuzzer.

    Every generated case draws from its own stream, derived from the run
    seed and the case index, so cases are reproducible individually (no
    shared cursor) and a parallel sweep generates exactly the same corpus
    as a sequential one. *)

type t

val stream : seed:int -> index:int -> t
(** An independent stream for case [index] of run [seed]. *)

val int : t -> int -> int
(** Uniform in [\[0, bound)].  @raise Invalid_argument when [bound <= 0]. *)

val range : t -> int -> int -> int
(** Uniform in the inclusive range. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element.  @raise Invalid_argument on an empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** Element with probability proportional to its weight.
    @raise Invalid_argument when all weights are [<= 0]. *)
